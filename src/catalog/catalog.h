#ifndef VDG_CATALOG_CATALOG_H_
#define VDG_CATALOG_CATALOG_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/batch.h"
#include "catalog/journal.h"
#include "catalog/query.h"
#include "catalog/snapshot.h"
#include "common/strings.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "types/type_system.h"
#include "vdl/parser.h"

namespace vdg {

/// A Virtual Data Catalog (VDC, Section 4): the service that maintains
/// the five-object virtual data schema for one scope (a person, group,
/// or collaboration). The catalog is the single source of truth for
/// the planner, executor, provenance, and federation layers.
///
/// Storage: an in-memory object graph with secondary indexes; every
/// mutation streams through a CatalogJournal, so the same class serves
/// as the memory-only backend (NullJournal) and the persistent
/// log-file backend (FileJournal, recovered by replay in Open()).
///
/// Threading: snapshot-isolated readers with serialized writers.
/// Writers take one `std::shared_mutex` exclusively, mutate the object
/// graph and the copy-on-write index structures, append to the journal
/// buffer, and on the way out flush the journal and publish a fresh
/// immutable CatalogSnapshot by swapping a shared_ptr slot guarded by
/// its own tiny mutex (components that did not change are shared with
/// the previous snapshot). Queries — Find*/Get*/Has*/Explain*/
/// All*Names/ChangesSince/navigation — pin one snapshot with a single
/// pointer copy under that slot mutex (held only for the copy, never
/// across a query) and run entirely against it: they never take the
/// catalog lock and never block on writers, journal compaction, or
/// each other.
/// Replica/invocation lookups and exports still read the writer-side
/// graph under the shared lock. The journal backend is only touched
/// while holding the exclusive lock, so backends need no
/// synchronization of their own.
///
/// Publication order (the snapshot protocol): mutate graph and COW
/// indexes -> buffer journal records -> bump the version sequence and
/// changelog -> flush the journal (the group-commit point) -> swap
/// the snapshot pointer under its slot mutex -> store the atomic
/// version counter last. A version() poll therefore never reports a
/// version whose snapshot is not yet visible.
///
/// Interning: object names, attribute keys, and type names are
/// interned into 32-bit symbol ids; index posting lists are compressed
/// id-ordered block structures (PostingBlocks). Queries keep their
/// lexicographic result order by mapping surviving ids through the
/// snapshot's id->row maps (rows are name-sorted).
///
/// Lock ordering: the catalog acquires no other lock while holding
/// its own (it never calls into FederatedIndex or another catalog),
/// so catalog locks are always leaves — see FederatedIndex for the
/// index→client→catalog ordering rule. There are no lock-bypassing
/// accessors: the type universe is written via DefineType and read
/// via TypeConforms/HasType/TypesSnapshot.
class VirtualDataCatalog {
 public:
  /// `name` identifies this catalog in vdp:// URIs (the authority).
  explicit VirtualDataCatalog(
      std::string name,
      std::unique_ptr<CatalogJournal> journal = nullptr);

  VirtualDataCatalog(const VirtualDataCatalog&) = delete;
  VirtualDataCatalog& operator=(const VirtualDataCatalog&) = delete;

  /// Replays the journal into memory. Must be called once before use
  /// when a persistent journal is attached; a no-op otherwise.
  Status Open();

  const std::string& name() const { return name_; }

  /// Pins the current published snapshot: one shared_ptr copy under
  /// the snapshot slot mutex — held only for the copy, never while a
  /// query runs, and never contended by the catalog's writer lock.
  /// Every query on the returned view observes exactly one catalog
  /// version, regardless of concurrent writers.
  CatalogView View() const {
    std::lock_guard<std::mutex> slot(snapshot_mu_);
    return CatalogView(snapshot_);
  }

  /// Conformance check against the published type universe, safe to
  /// call while another thread runs DefineType.
  bool TypeConforms(const DatasetType& type, const DatasetType& against) const;

  /// True when `type_name` is defined in dimension `dim`.
  bool HasType(TypeDimension dim, std::string_view type_name) const;

  /// A point-in-time copy of the whole type universe, for enumeration
  /// and inspection. Communities define their own type names (Section
  /// 3.1); LoadTypePreset() installs the paper's Appendix-C hierarchy.
  /// The snapshot is detached: later DefineType calls do not appear in
  /// it, and mutating the copy never touches the catalog.
  TypeRegistry TypesSnapshot() const;

  // ------------------------------------------------------------------
  // Definition (the "composition" facet of Figure 5)
  // ------------------------------------------------------------------

  /// Defines a dataset-type name in one dimension's hierarchy,
  /// journaled so persistent catalogs recover their type universe.
  /// Prefer this over mutating types() directly when durability
  /// matters.
  Status DefineType(TypeDimension dim, std::string_view type_name,
                    std::string_view parent);
  /// Installs the Appendix-C preset hierarchy, journaled. Commits as
  /// one batch: one version bump, one journal flush.
  Status LoadTypePreset();

  /// Defines a dataset. Its type components must be registered.
  Status DefineDataset(Dataset dataset);
  /// Defines a transformation after structural validation.
  Status DefineTransformation(Transformation transformation);
  /// Defines a derivation, type-checking it against its transformation
  /// (local TRs only; vdp:// TRs are checked by the federation layer).
  /// Output datasets that are not yet defined are auto-defined as
  /// virtual datasets typed from the formal argument, with `producer`
  /// set to this derivation.
  Status DefineDerivation(Derivation derivation);
  /// Registers a physical replica; assigns and returns its id.
  Result<std::string> AddReplica(Replica replica);
  /// Records an invocation; assigns and returns its id.
  Result<std::string> RecordInvocation(Invocation invocation);

  /// Applies N mutations under ONE lock acquisition, ONE version bump,
  /// and ONE journal flush (group commit). Per-op outcomes land in the
  /// result; by default every op runs regardless of earlier failures
  /// (exactly what N single-op calls would do), `options.stop_on_error`
  /// aborts the remainder after the first failure. All changelog
  /// entries of the batch share the single bumped version, so
  /// ChangesSince delivers a batch atomically.
  BatchResult ApplyBatch(const std::vector<CatalogMutation>& mutations,
                         const BatchOptions& options = {});

  /// Imports every definition in a parsed VDL program, in order, as
  /// one batch (one version bump, one journal flush).
  Status ImportProgram(const VdlProgram& program);
  /// Parses and imports VDL source text.
  Status ImportVdl(std::string_view source);

  // ------------------------------------------------------------------
  // Point lookups
  // ------------------------------------------------------------------

  Result<Dataset> GetDataset(std::string_view name) const;
  Result<Transformation> GetTransformation(std::string_view name) const;
  Result<Derivation> GetDerivation(std::string_view name) const;
  Result<Replica> GetReplica(std::string_view id) const;
  Result<Invocation> GetInvocation(std::string_view id) const;

  bool HasDataset(std::string_view name) const;
  bool HasTransformation(std::string_view name) const;
  bool HasDerivation(std::string_view name) const;

  // ------------------------------------------------------------------
  // Updates & removal
  // ------------------------------------------------------------------

  /// Annotates an object with user metadata (Section 2
  /// "Documentation"). `kind` is one of "dataset", "transformation",
  /// "derivation", "replica", "invocation".
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value);

  /// Updates a dataset's logical size (learned after materialization).
  Status SetDatasetSize(std::string_view name, int64_t size_bytes);

  /// Marks a replica invalid (e.g. after upstream invalidation).
  Status InvalidateReplica(std::string_view id);

  Status RemoveDataset(std::string_view name);
  Status RemoveTransformation(std::string_view name);
  Status RemoveDerivation(std::string_view name);
  Status RemoveReplica(std::string_view id);

  // ------------------------------------------------------------------
  // Navigation (provenance building blocks)
  // ------------------------------------------------------------------

  /// Replicas of a dataset; `valid_only` filters invalidated copies.
  std::vector<Replica> ReplicasOf(std::string_view dataset,
                                  bool valid_only = true) const;
  /// True when the dataset has at least one valid replica (i.e. is
  /// materialized rather than virtual).
  bool IsMaterialized(std::string_view dataset) const;

  /// The derivation that produces `dataset` (NotFound for raw inputs).
  Result<std::string> ProducerOf(std::string_view dataset) const;
  /// Derivations that read `dataset`. Like every NameList returned
  /// below, the list pins the answering snapshot and views its symbol
  /// spine — zero name copies (DESIGN.md §15).
  NameList ConsumersOf(std::string_view dataset) const;
  /// Invocations recorded for `derivation`, in record order.
  std::vector<Invocation> InvocationsOf(std::string_view derivation) const;
  /// Derivations that invoke `transformation`.
  NameList DerivationsUsing(std::string_view transformation) const;

  // ------------------------------------------------------------------
  // Discovery
  // ------------------------------------------------------------------

  /// Discovery runs through a small predicate planner: each query's
  /// indexable conditions (attribute equalities, type conformance,
  /// materialization state, derivation edges) become posting lists,
  /// the most selective one drives enumeration, the rest are
  /// intersected, and only residual predicates are evaluated per
  /// candidate. Queries with no indexable condition fall back to a
  /// name-prefix range scan or a full scan. All of it runs against a
  /// pinned snapshot (see View()).
  NameList FindDatasets(const DatasetQuery& query) const;
  NameList FindTransformations(const TransformationQuery& query) const;
  NameList FindDerivations(const DerivationQuery& query) const;

  /// The access path FindDatasets/FindDerivations would choose for
  /// `query`, without running it. Lets tests pin selectivity ordering
  /// and operators inspect why a query is slow.
  QueryPlan ExplainFindDatasets(const DatasetQuery& query) const;
  QueryPlan ExplainFindDerivations(const DerivationQuery& query) const;

  /// The "has this computation been performed before?" query (Section
  /// 1). Returns the name of an existing derivation with the same
  /// content signature, if any.
  Result<std::string> FindEquivalentDerivation(
      const Derivation& derivation) const;
  /// True when an equivalent derivation exists AND all of its outputs
  /// are materialized — re-use beats re-computation.
  bool HasBeenComputed(const Derivation& derivation) const;

  /// All names, for enumeration by indexes and tests. Replica and
  /// invocation ids stay owned vectors: they enumerate writer-side
  /// state, not the snapshot result plane.
  NameList AllDatasetNames() const;
  NameList AllTransformationNames() const;
  NameList AllDerivationNames() const;
  std::vector<std::string> AllReplicaIds() const;      // result-api-ok: writer-side state
  std::vector<std::string> AllInvocationIds() const;   // result-api-ok: writer-side state

  CatalogStats Stats() const;

  /// Monotonic edit counter; bumped by every successful mutation
  /// commit (a whole batch bumps it once). Federated indexes use it to
  /// detect staleness cheaply; the load is atomic so staleness polls
  /// never contend with the catalog lock. Stored after the snapshot
  /// pointer, so a version seen here is always queryable via View().
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Every change with version > `since_version`, oldest first,
  /// answered from the published snapshot's changelog window. Versions
  /// in the window are consecutive and a batch's entries all share one
  /// version, so the result is complete over its range and batches
  /// arrive whole. Fails with ResourceExhausted when the bounded
  /// changelog no longer reaches back to `since_version` (the caller
  /// must fall back to a full rescan) and InvalidArgument when
  /// `since_version` is from the future.
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) const;

  /// Oldest version ChangesSince can answer from (the window floor).
  uint64_t changelog_floor() const;

  /// Caps the in-memory changelog length (default 4096 changes).
  /// Shrinking may immediately raise changelog_floor(). Trimming never
  /// splits a batch's entries: whole version groups are evicted.
  void set_changelog_capacity(size_t capacity);
  size_t changelog_capacity() const;

  /// Partition mode: this catalog holds one hash shard of a larger
  /// logical catalog (see ShardedCatalogClient). Two local rules
  /// relax, because the routing layer owns them instead:
  ///  - DefineDerivation accepts input datasets unknown locally (they
  ///    live on their own shards; the sharded client checks existence
  ///    before routing);
  ///  - DefineDerivation does NOT auto-define missing output datasets
  ///    (the sharded client pre-creates them on their hash-owned home
  ///    shards, so an auto-define here would misplace them).
  /// Producer backfill and single-producer conflicts still apply to
  /// outputs that are local. Not journaled: set it before Open() and
  /// before the catalog is shared across threads, exactly like
  /// set_changelog_capacity.
  void set_partition_mode(bool on) { partition_mode_ = on; }
  bool partition_mode() const { return partition_mode_; }

  Status SyncJournal();

  /// The minimal journal records that reproduce the catalog's current
  /// state (types, then datasets, transformations, derivations,
  /// replicas, invocations — a replay-safe order).
  std::vector<std::string> CurrentStateRecords() const;  // result-api-ok: journal records

  /// Log compaction: atomically rewrites the journal to
  /// CurrentStateRecords(), discarding superseded history (annotate
  /// re-puts, removed objects, invalidation flips). The in-memory
  /// state is untouched; reopening from the compacted journal yields
  /// an observationally identical catalog.
  Status CompactJournal();

  /// Whole-catalog dump as VDL text (DS/TR/DV declarations; replicas,
  /// invocations, and annotations are not expressible in text VDL —
  /// use ExportProgram + ProgramToXml for a lossless document).
  std::string ExportVdl() const;

  /// Whole-catalog dump as schema objects (annotations included).
  VdlProgram ExportProgram() const;

  // ------------------------------------------------------------------
  // Flat-snapshot persistence (the mmap cold-start path)
  // ------------------------------------------------------------------

  /// How the last Open()/OpenFromSnapshot() call restored state.
  struct SnapshotLoadReport {
    bool attempted = false;  // a flat-snapshot load was tried
    bool used = false;       // state was installed from the snapshot
    /// Why the snapshot was rejected (empty when used or not attempted).
    std::string fallback_reason;
    uint64_t snapshot_version = 0;   // version_seq captured in the file
    size_t tail_records_replayed = 0;   // journal records after the anchor
    size_t total_records_replayed = 0;  // all records applied this open
  };

  /// Serializes the current catalog state (symbol table, type
  /// universe, all five object classes, every posting index, the
  /// materialized set) into one relocatable flat buffer with a
  /// checksummed header and writes it to `path` (atomically, via a
  /// temp file + rename). The file anchors to the durable journal
  /// (record count + chain CRC) so a later load knows which journal
  /// tail is newer than the image.
  Status SaveSnapshotFile(const std::string& path) const;

  /// Open() variant that first tries to mmap the flat snapshot at
  /// `path`: on success, state is installed directly from the image
  /// (posting payloads borrowed zero-copy from the mapping) and only
  /// the journal records past the snapshot's anchor are replayed. Any
  /// mismatch — missing file, bad magic/version/checksum, truncation,
  /// or a journal that no longer extends the anchored chain — falls
  /// back to a full journal replay and reports why. Returns an error
  /// only when the fallback replay itself fails.
  Status OpenFromSnapshot(const std::string& path);

  /// Diagnostics for the last open (cold-start observability).
  SnapshotLoadReport last_snapshot_load() const;

 private:
  using Id = SymbolTable::Id;
  using PostingList = CatalogSnapshot::PostingList;

  /// Writer-side row: the interned id plus an immutable object.
  /// Mutation = clone, modify the clone, swap the pointer — published
  /// snapshots keep the old object alive.
  template <typename T>
  struct ObjEntry {
    Id id = 0;
    std::shared_ptr<const T> object;
  };
  template <typename T>
  using ObjMap = std::map<std::string, ObjEntry<T>, std::less<>>;

  /// Which snapshot components the pending commit invalidated. Clean
  /// components are shared with the previous snapshot at publish (the
  /// small-delta path).
  struct Dirty {
    bool datasets = false;
    bool transformations = false;
    bool derivations = false;
    bool attr = false;
    bool type = false;
    bool consumers = false;
    bool producers = false;
    bool by_transformation = false;
    bool by_bare = false;
    bool materialized = false;
    bool types_registry = false;
    bool changelog = false;
    bool any() const {
      return datasets || transformations || derivations || attr || type ||
             consumers || producers || by_transformation || by_bare ||
             materialized || types_registry || changelog;
    }
  };

  // The *Locked tier holds the real implementations; the public
  // methods are thin shims that take mu_ exclusively, delegate, and
  // commit (flush the journal buffer, publish the snapshot). Internal
  // reentrancy — replay applies records through the same code,
  // DefineDerivation auto-defines datasets, RemoveDataset cascades to
  // replicas — stays inside one lock acquisition because Locked
  // methods only call Locked methods.
  Status ApplyRecord(const std::string& record);
  Status Journal(const std::string& record);
  const DatasetType* LookupDatasetType(std::string_view name) const;

  Status DefineTypeLocked(TypeDimension dim, std::string_view type_name,
                          std::string_view parent);
  Status DefineDatasetLocked(Dataset dataset);
  Status DefineTransformationLocked(Transformation transformation);
  Status DefineDerivationLocked(Derivation derivation);
  Result<std::string> AddReplicaLocked(Replica replica);
  Result<std::string> RecordInvocationLocked(Invocation invocation);
  Status AnnotateLocked(std::string_view kind, std::string_view name,
                        std::string_view key, AttributeValue value);
  Status SetDatasetSizeLocked(std::string_view name, int64_t size_bytes);
  Status InvalidateReplicaLocked(std::string_view id);
  Status ImportProgramLocked(const VdlProgram& program);
  Status RemoveDatasetLocked(std::string_view name);
  Status RemoveTransformationLocked(std::string_view name);
  Status RemoveDerivationLocked(std::string_view name);
  Status RemoveReplicaLocked(std::string_view id);
  bool IsMaterializedLocked(std::string_view dataset) const;
  Result<std::string> FindEquivalentDerivationLocked(
      const Derivation& derivation) const;
  VdlProgram ExportProgramLocked() const;
  std::vector<std::string> CurrentStateRecordsLocked() const;  // result-api-ok: journal records

  /// Dispatches one batch op; `result` carries ids assigned by earlier
  /// ops for intra-batch references.
  Status ApplyMutationLocked(const CatalogMutation& mutation, size_t index,
                             BatchResult* result);

  /// Commit tail of every public mutation: flush the journal buffer
  /// (the group-commit point) and publish the snapshot. The op status
  /// wins over a flush error.
  Status CommitLocked(Status op_status);
  Result<std::string> CommitLocked(Result<std::string> op_result);

  /// Builds and atomically publishes a CatalogSnapshot from the writer
  /// state, copying only dirty components; a no-op when nothing
  /// changed since the last publish.
  void PublishSnapshotLocked();

  /// Assigns the next version (or the batch's single shared version)
  /// and appends the matching changelog entry.
  void BumpVersion(char op, std::string_view kind, std::string_view name);
  /// Evicts whole version groups from the changelog front until within
  /// capacity (never splits a batch).
  void TrimChangelogLocked();

  /// Builds the name-sorted row vector; when `row_of_id` is non-null,
  /// also builds the inverse id -> row-index map (sized to the symbol
  /// universe, CatalogSnapshot::kNoRow for non-members).
  template <typename T>
  std::shared_ptr<const CatalogSnapshot::Rows<T>> BuildRows(
      const ObjMap<T>& map,
      std::shared_ptr<const std::vector<uint32_t>>* row_of_id) const;

  /// COW posting-list edits: always clone (published snapshots share
  /// the old blocks), multiset semantics.
  void PostingInsert(PostingList* list, Id id);
  void PostingErase(PostingList* list, Id id);
  template <typename Map, typename Key>
  void IndexPostingInsert(Map* map, const Key& key, Id id, bool* dirty);
  template <typename Map, typename Key>
  void IndexPostingErase(Map* map, const Key& key, Id id, bool* dirty);

  void IndexDatasetAttributes(const Dataset& dataset, Id id);
  void UnindexDatasetAttributes(const Dataset& dataset, Id id);
  void IndexDatasetType(const Dataset& dataset, Id id);
  void UnindexDatasetType(const Dataset& dataset, Id id);
  void NoteReplicaState(const Replica* before, const Replica* after);

  std::string name_;
  /// Writer lock over the object graph, the COW indexes, the
  /// changelog, and the journal backend. Readers of replicas/
  /// invocations/exports take it shared; snapshot queries never
  /// take it.
  mutable std::shared_mutex mu_;
  std::unique_ptr<CatalogJournal> journal_;
  bool replaying_ = false;
  bool partition_mode_ = false;
  bool opened_ = false;
  /// Durable-journal anchor for flat snapshots: how many records the
  /// in-memory state reflects and the running CRC of that record chain
  /// (guarded by mu_). Non-persistent journals are not counted.
  uint64_t journal_records_ = 0;
  uint32_t journal_chain_crc_ = 0;
  SnapshotLoadReport last_snapshot_load_;
  /// Published version, stored last in the commit protocol; atomic so
  /// version() can poll without locking.
  std::atomic<uint64_t> version_{0};
  /// Writer-side version sequence (guarded by mu_).
  uint64_t version_seq_ = 0;
  /// Batch mode: all BumpVersion calls share one version.
  bool in_batch_ = false;
  bool batch_bumped_ = false;
  Dirty dirty_;

  /// Interns object names, attribute keys, and type names (guarded by
  /// mu_ for writes; readers use the snapshot's published View).
  SymbolTable symbols_;

  TypeRegistry types_;

  ObjMap<Dataset> datasets_;
  ObjMap<Transformation> transformations_;
  ObjMap<Derivation> derivations_;
  std::map<std::string, Replica, std::less<>> replicas_;
  std::map<std::string, Invocation, std::less<>> invocations_;

  // Secondary indexes, all COW posting lists over interned ids.
  /// (interned attribute key, tagged wire value) -> datasets. Lets
  /// FindDatasets answer kEq predicates without a full scan.
  std::map<CatalogSnapshot::AttrKey, PostingList> attr_index_;
  /// Packed (dimension, interned ancestor) -> datasets, for every
  /// ancestor (excluding the dimension base) of every non-empty
  /// component of the dataset's type: the type-conformance closure.
  std::map<uint64_t, PostingList> type_index_;
  std::map<Id, PostingList> consumers_;   // dataset -> derivations reading it
  std::map<Id, PostingList> producers_;   // dataset -> derivations writing it
  std::map<Id, PostingList> by_transformation_;  // qualified TR -> derivations
  /// Bare transformation name -> derivation, only for derivations
  /// whose qualified name differs (DerivationQuery matches either).
  std::map<Id, PostingList> by_bare_transformation_;
  /// Dataset ids with >= 1 valid replica (the snapshot's materialized
  /// set; the count map below is the writer's bookkeeping).
  PostingList materialized_;
  std::map<std::string, size_t, std::less<>> valid_replicas_by_dataset_;

  std::multimap<uint64_t, std::string> derivations_by_signature_;
  std::multimap<std::string, std::string, std::less<>> replicas_by_dataset_;
  std::multimap<std::string, std::string, std::less<>>
      invocations_by_derivation_;

  /// Bounded mutation changelog backing ChangesSince(); entries are
  /// shared with published snapshots.
  std::deque<std::shared_ptr<const CatalogChange>> changelog_;
  size_t changelog_capacity_ = 4096;

  /// The published snapshot (see class comment for the protocol).
  /// Guarded by snapshot_mu_, a dedicated slot mutex held only long
  /// enough to copy or swap the pointer: libstdc++'s
  /// atomic<shared_ptr> hides its synchronization from
  /// ThreadSanitizer, and a plain mutex costs the same here.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const CatalogSnapshot> snapshot_;

  uint64_t next_replica_id_ = 1;
  uint64_t next_invocation_id_ = 1;
};

}  // namespace vdg

#endif  // VDG_CATALOG_CATALOG_H_
