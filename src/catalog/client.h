#ifndef VDG_CATALOG_CLIENT_H_
#define VDG_CATALOG_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {

/// Names one catalog object for batched lookup: `kind` is "dataset",
/// "transformation", or "derivation".
struct ObjectKey {
  std::string kind;
  std::string name;
};

/// One batched-lookup result. Exactly one of the optionals is engaged
/// when `status` is OK; a NotFound status is a real answer (the object
/// is gone), not a transport failure.
struct ObjectRecord {
  std::string kind;
  std::string name;
  Status status = Status::OK();
  std::optional<Dataset> dataset;
  std::optional<Transformation> transformation;
  std::optional<Derivation> derivation;
  /// Datasets only: whether it had a valid replica at snapshot time.
  bool materialized = false;
};

/// Everything one hop of a provenance walk needs, fetched as a single
/// server-side compound call: the paper's lineage chains make one
/// round trip per link instead of four (exists / producer / derivation
/// / invocations).
struct ProvenanceStep {
  std::string dataset;
  bool exists = false;
  std::string producer;  // "" for raw inputs
  std::optional<Derivation> derivation;
  std::vector<Invocation> invocations;
};

/// Shard layout of the logical catalog behind a client. A non-sharded
/// client is one implicit shard with fingerprint 0. The fingerprint is
/// a stable hash over the shard authorities and count: any resharding
/// (count change, backend swap) changes it, which is what lets caches
/// and federated indexes detect that per-shard anchors and cached
/// query results belong to a dead topology.
struct ShardTopology {
  uint32_t shard_count = 1;
  uint64_t fingerprint = 0;
};

/// The service boundary in front of a Virtual Data Catalog (Section 4:
/// every VDC is a *server* reached through vdp:// hyperlinks). All
/// cross-catalog consumers — the registry, federated indexes,
/// provenance walks, promotion, the executor's provenance writes —
/// speak this interface instead of dereferencing VirtualDataCatalog
/// directly, so the same code runs over an in-process adapter
/// (zero-cost, today's behavior) or a simulated/real RPC transport
/// where round trips can be counted, batched, cached, and made to
/// fail.
///
/// Conventions:
///  - Every read returns Result<> even where the catalog API returns a
///    plain value: a remote call can always fail in transport.
///  - Mutations on a read-only handle fail with PermissionDenied
///    before touching the catalog.
///  - Batched calls (BatchGet, GetProvenanceStep) are semantically
///    equivalent to the matching sequence of point calls; transports
///    may coalesce each into one round trip.
///
/// Lock ordering: clients may hold internal locks (e.g. a cache
/// mutex) while calling into the catalog, and FederatedIndex holds its
/// own lock while calling clients — the global order is
/// index -> client -> catalog, and the catalog lock stays a leaf.
class CatalogClient {
 public:
  virtual ~CatalogClient() = default;

  /// The vdp:// authority this client reaches. Configuration, not a
  /// remote call — never costs a round trip.
  virtual const std::string& authority() const = 0;

  /// True when this handle rejects every mutation.
  virtual bool read_only() const = 0;

  /// The local catalog when this client is a zero-cost in-process
  /// adapter, nullptr for any remote transport. Escape hatch for
  /// callers that provably share an address space (tests, the CLI);
  /// federation code must not use it.
  virtual VirtualDataCatalog* local_catalog() const { return nullptr; }

  // ------------------------------------------------------------------
  // Reads
  // ------------------------------------------------------------------

  /// The catalog's monotonic edit version (staleness poll). For a
  /// sharded client this is the *composite* version — the sum of the
  /// per-shard versions — which is still monotone under mutation but
  /// is not addressable in any single shard's changelog; delta
  /// consumers use ShardVersions/ShardChangesSince instead.
  virtual Result<uint64_t> Version() = 0;
  /// The catalog changelog since `since_version` (see
  /// VirtualDataCatalog::ChangesSince for the window contract).
  virtual Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) = 0;

  /// Shard layout behind this client. Defaults to one shard with
  /// fingerprint 0; layering clients (caching, resilient) forward it.
  /// Configuration, not a remote call.
  virtual ShardTopology shard_topology() const { return ShardTopology{}; }

  /// Per-shard versions, indexed by shard. Sums to Version(). The
  /// default adapts any single-shard client.
  virtual Result<std::vector<uint64_t>> ShardVersions();

  /// One shard's changelog since that shard's `since_version` (same
  /// window contract as ChangesSince). Delta consumers anchor to the
  /// version of the last change seen *per shard*; the composite
  /// version is only a staleness poll.
  virtual Result<std::vector<CatalogChange>> ShardChangesSince(
      uint32_t shard, uint64_t since_version);

  virtual Result<Dataset> GetDataset(std::string_view name) = 0;
  virtual Result<Transformation> GetTransformation(std::string_view name) = 0;
  virtual Result<Derivation> GetDerivation(std::string_view name) = 0;
  virtual Result<bool> HasDataset(std::string_view name) = 0;
  virtual Result<bool> IsMaterialized(std::string_view dataset) = 0;
  virtual Result<std::string> ProducerOf(std::string_view dataset) = 0;
  virtual Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) = 0;

  /// Discovery results are NameLists: immutable shared lists whose
  /// views stay valid for the list's lifetime regardless of transport
  /// (in-process lists pin the answering snapshot; wire transports pin
  /// the decoded response arena; caches share one list across hits).
  /// See DESIGN.md §15.
  virtual Result<NameList> FindDatasets(const DatasetQuery& query) = 0;
  virtual Result<NameList> FindTransformations(
      const TransformationQuery& query) = 0;
  virtual Result<NameList> FindDerivations(const DerivationQuery& query) = 0;
  /// All object names of `kind` ("dataset"|"transformation"|
  /// "derivation").
  virtual Result<NameList> AllNames(std::string_view kind) = 0;

  /// Type conformance judged by the owning catalog's type universe.
  virtual Result<bool> TypeConforms(const DatasetType& type,
                                    const DatasetType& against) = 0;

  // ------------------------------------------------------------------
  // Batched reads — one round trip regardless of count
  // ------------------------------------------------------------------

  /// Snapshots of many objects in one call; the result is positionally
  /// aligned with `keys` and per-entry NotFound is reported in the
  /// record, not as a call failure.
  virtual Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) = 0;

  /// One provenance hop (exists + producer + derivation + invocations)
  /// as a single compound call. A missing dataset is reported via
  /// `exists = false`, not an error.
  virtual Result<ProvenanceStep> GetProvenanceStep(
      std::string_view dataset) = 0;

  // ------------------------------------------------------------------
  // Mutations (PermissionDenied on read-only handles)
  // ------------------------------------------------------------------

  virtual Status DefineDataset(Dataset dataset) = 0;
  virtual Status DefineTransformation(Transformation transformation) = 0;
  virtual Status DefineDerivation(Derivation derivation) = 0;
  virtual Status Annotate(std::string_view kind, std::string_view name,
                          std::string_view key, AttributeValue value) = 0;
  virtual Result<std::string> AddReplica(Replica replica) = 0;
  virtual Result<std::string> RecordInvocation(Invocation invocation) = 0;
  virtual Status SetDatasetSize(std::string_view name,
                                int64_t size_bytes) = 0;
  virtual Status InvalidateReplica(std::string_view id) = 0;

  /// Applies a group of mutations. Semantically equivalent to issuing
  /// the ops one by one (with cross-op id references resolved — see
  /// CatalogMutation); transports may coalesce the whole batch into
  /// one round trip and the catalog commits it under one lock
  /// acquisition, one version bump, and one journal flush. The base
  /// implementation decomposes into the single-op virtuals above — the
  /// naive N-round-trip baseline — so every transport supports
  /// batching even before it optimizes for it.
  virtual Result<BatchResult> ApplyBatch(
      const std::vector<CatalogMutation>& mutations,
      const BatchOptions& options = {});
};

/// The zero-cost adapter: forwards every call straight into an
/// in-process VirtualDataCatalog, preserving the pre-boundary behavior
/// bit-for-bit. Thread-safe to exactly the extent the catalog is (the
/// adapter itself keeps no mutable state).
class InProcessCatalogClient : public CatalogClient {
 public:
  /// Read-write (or explicitly read-only) handle on a local catalog.
  explicit InProcessCatalogClient(VirtualDataCatalog* catalog,
                                  bool read_only = false);
  /// A const catalog yields a read-only handle: every mutation is
  /// rejected before the underlying object is ever touched, so the
  /// internal const_cast can never be observed.
  explicit InProcessCatalogClient(const VirtualDataCatalog* catalog);

  const std::string& authority() const override { return authority_; }
  bool read_only() const override { return read_only_; }
  VirtualDataCatalog* local_catalog() const override {
    return read_only_ ? nullptr : catalog_;
  }

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// Forwards to VirtualDataCatalog::ApplyBatch: one lock, one version
  /// bump, one journal flush for the whole group.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

  /// Snapshots one catalog object into an ObjectRecord (shared with
  /// remote transports, which execute the same logic server-side).
  static ObjectRecord SnapshotObject(const VirtualDataCatalog& catalog,
                                     std::string_view kind,
                                     std::string_view name);

 private:
  Status CheckWritable() const;

  VirtualDataCatalog* catalog_;
  std::string authority_;
  bool read_only_;
};

}  // namespace vdg

#endif  // VDG_CATALOG_CLIENT_H_
