#include "catalog/catalog.h"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <variant>

#include "catalog/codec.h"
#include "common/hash.h"
#include "common/strings.h"
#include "common/uri.h"
#include "schema/validation.h"
#include "vdl/printer.h"

namespace vdg {

namespace {

// Removes one (key, value) pair from a multimap index.
template <typename Map, typename K, typename V>
void EraseIndexEntry(Map* map, const K& key, const V& value) {
  auto [lo, hi] = map->equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == value) {
      map->erase(it);
      return;
    }
  }
}

}  // namespace

std::string_view AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kNamePrefixRange:
      return "name-prefix-range";
    case AccessPath::kAttributeIndex:
      return "attribute-index";
    case AccessPath::kTypeIndex:
      return "type-index";
    case AccessPath::kMaterializedSet:
      return "materialized-set";
    case AccessPath::kTransformationIndex:
      return "transformation-index";
    case AccessPath::kReadsIndex:
      return "reads-index";
    case AccessPath::kWritesIndex:
      return "writes-index";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// COW posting-list maintenance
// ---------------------------------------------------------------------

void VirtualDataCatalog::PostingInsert(PostingList* list, Id id) {
  auto next = *list == nullptr ? std::make_shared<PostingBlocks>()
                               : std::make_shared<PostingBlocks>(**list);
  next->Add(id);
  *list = std::move(next);
}

void VirtualDataCatalog::PostingErase(PostingList* list, Id id) {
  if (*list == nullptr) return;
  auto next = std::make_shared<PostingBlocks>(**list);
  next->Remove(id);
  *list = std::move(next);
}

template <typename Map, typename Key>
void VirtualDataCatalog::IndexPostingInsert(Map* map, const Key& key, Id id,
                                            bool* dirty) {
  PostingInsert(&(*map)[key], id);
  *dirty = true;
}

template <typename Map, typename Key>
void VirtualDataCatalog::IndexPostingErase(Map* map, const Key& key, Id id,
                                           bool* dirty) {
  auto it = map->find(key);
  if (it == map->end()) return;
  PostingErase(&it->second, id);
  if (it->second->empty()) map->erase(it);
  *dirty = true;
}

void VirtualDataCatalog::IndexDatasetAttributes(const Dataset& dataset,
                                                Id id) {
  for (const auto& [key, value] : dataset.annotations) {
    IndexPostingInsert(
        &attr_index_,
        CatalogSnapshot::AttrKey(symbols_.Intern(key),
                                 snapshot_internal::TaggedAttrValue(value)),
        id, &dirty_.attr);
  }
}

void VirtualDataCatalog::UnindexDatasetAttributes(const Dataset& dataset,
                                                  Id id) {
  for (const auto& [key, value] : dataset.annotations) {
    IndexPostingErase(
        &attr_index_,
        CatalogSnapshot::AttrKey(symbols_.Intern(key),
                                 snapshot_internal::TaggedAttrValue(value)),
        id, &dirty_.attr);
  }
}

void VirtualDataCatalog::IndexDatasetType(const Dataset& dataset, Id id) {
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const std::string& component = dataset.type.component(dim);
    if (component.empty()) continue;
    const TypeHierarchy& h = types_.dimension(dim);
    Result<std::vector<std::string>> ancestry = h.AncestryOf(component);
    if (!ancestry.ok()) continue;  // unvalidated type: not indexable
    for (const std::string& ancestor : *ancestry) {
      if (ancestor == h.base_name()) continue;  // base matches any type
      IndexPostingInsert(
          &type_index_,
          snapshot_internal::PackTypeKey(dim, symbols_.Intern(ancestor)), id,
          &dirty_.type);
    }
  }
}

void VirtualDataCatalog::UnindexDatasetType(const Dataset& dataset, Id id) {
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const std::string& component = dataset.type.component(dim);
    if (component.empty()) continue;
    const TypeHierarchy& h = types_.dimension(dim);
    Result<std::vector<std::string>> ancestry = h.AncestryOf(component);
    if (!ancestry.ok()) continue;
    for (const std::string& ancestor : *ancestry) {
      if (ancestor == h.base_name()) continue;
      IndexPostingErase(
          &type_index_,
          snapshot_internal::PackTypeKey(dim, symbols_.Intern(ancestor)), id,
          &dirty_.type);
    }
  }
}

void VirtualDataCatalog::NoteReplicaState(const Replica* before,
                                          const Replica* after) {
  if (before != nullptr && before->valid) {
    auto it = valid_replicas_by_dataset_.find(before->dataset);
    if (it != valid_replicas_by_dataset_.end() && --it->second == 0) {
      valid_replicas_by_dataset_.erase(it);
      PostingErase(&materialized_, symbols_.Intern(before->dataset));
      dirty_.materialized = true;
    }
  }
  if (after != nullptr && after->valid) {
    if (++valid_replicas_by_dataset_[after->dataset] == 1) {
      PostingInsert(&materialized_, symbols_.Intern(after->dataset));
      dirty_.materialized = true;
    }
  }
}

// ---------------------------------------------------------------------
// Versioning, changelog, publication
// ---------------------------------------------------------------------

void VirtualDataCatalog::BumpVersion(char op, std::string_view kind,
                                     std::string_view name) {
  // One version per mutation — except inside a batch, where every
  // mutation shares the single bumped version so a ChangesSince delta
  // carries the batch whole or not at all.
  if (!in_batch_) {
    ++version_seq_;
  } else if (!batch_bumped_) {
    ++version_seq_;
    batch_bumped_ = true;
  }
  changelog_.push_back(std::make_shared<const CatalogChange>(CatalogChange{
      version_seq_, op, std::string(kind), std::string(name)}));
  dirty_.changelog = true;
  if (!in_batch_) TrimChangelogLocked();
}

void VirtualDataCatalog::TrimChangelogLocked() {
  // Evict whole version groups so a batch's entries never split; an
  // oversized batch empties the window entirely, which ChangesSince
  // reports as ResourceExhausted (the rescan fallback).
  while (changelog_.size() > changelog_capacity_) {
    uint64_t v = changelog_.front()->version;
    do {
      changelog_.pop_front();
    } while (!changelog_.empty() && changelog_.front()->version == v);
    dirty_.changelog = true;
  }
}

void VirtualDataCatalog::set_changelog_capacity(size_t capacity) {
  std::unique_lock lock(mu_);
  changelog_capacity_ = capacity;
  TrimChangelogLocked();
  PublishSnapshotLocked();
}

size_t VirtualDataCatalog::changelog_capacity() const {
  std::shared_lock lock(mu_);
  return changelog_capacity_;
}

uint64_t VirtualDataCatalog::changelog_floor() const {
  return View().changelog_floor();
}

template <typename T>
std::shared_ptr<const CatalogSnapshot::Rows<T>> VirtualDataCatalog::BuildRows(
    const ObjMap<T>& map,
    std::shared_ptr<const std::vector<uint32_t>>* row_of_id) const {
  auto rows = std::make_shared<CatalogSnapshot::Rows<T>>();
  rows->reserve(map.size());
  // Map iteration is name order, which is exactly Rows' sort order.
  for (const auto& [name, entry] : map) {
    (void)name;
    rows->push_back(CatalogSnapshot::Row<T>{symbols_.NameOf(entry.id),
                                            entry.id, entry.object});
  }
  if (row_of_id != nullptr) {
    // Inverse map: id -> row index, sized to the symbol universe. Built
    // together with the rows so the pair is always mutually consistent.
    auto inverse =
        std::make_shared<std::vector<uint32_t>>(symbols_.size(),
                                                CatalogSnapshot::kNoRow);
    for (size_t i = 0; i < rows->size(); ++i) {
      (*inverse)[(*rows)[i].id] = static_cast<uint32_t>(i);
    }
    *row_of_id = std::move(inverse);
  }
  return rows;
}

void VirtualDataCatalog::PublishSnapshotLocked() {
  std::shared_ptr<const CatalogSnapshot> prev;
  {
    std::lock_guard<std::mutex> slot(snapshot_mu_);
    prev = snapshot_;
  }
  if (prev != nullptr && prev->version == version_seq_ && !dirty_.any() &&
      !symbols_.dirty()) {
    return;  // nothing to publish
  }
  auto next = std::make_shared<CatalogSnapshot>();
  next->version = version_seq_;
  next->symbols = symbols_.Publish();
  bool fresh = prev == nullptr;
  next->types = (fresh || dirty_.types_registry)
                    ? std::make_shared<const TypeRegistry>(types_)
                    : prev->types;
  if (fresh || dirty_.datasets) {
    next->datasets = BuildRows(datasets_, &next->dataset_row_of_id);
  } else {
    next->datasets = prev->datasets;
    next->dataset_row_of_id = prev->dataset_row_of_id;
  }
  next->transformations = (fresh || dirty_.transformations)
                              ? BuildRows(transformations_, nullptr)
                              : prev->transformations;
  if (fresh || dirty_.derivations) {
    next->derivations = BuildRows(derivations_, &next->derivation_row_of_id);
  } else {
    next->derivations = prev->derivations;
    next->derivation_row_of_id = prev->derivation_row_of_id;
  }
  next->attr_index =
      (fresh || dirty_.attr)
          ? std::make_shared<
                const std::map<CatalogSnapshot::AttrKey, PostingList>>(
                attr_index_)
          : prev->attr_index;
  next->type_index =
      (fresh || dirty_.type)
          ? std::make_shared<const std::map<uint64_t, PostingList>>(
                type_index_)
          : prev->type_index;
  next->consumers =
      (fresh || dirty_.consumers)
          ? std::make_shared<const std::map<Id, PostingList>>(consumers_)
          : prev->consumers;
  next->producers =
      (fresh || dirty_.producers)
          ? std::make_shared<const std::map<Id, PostingList>>(producers_)
          : prev->producers;
  next->by_transformation =
      (fresh || dirty_.by_transformation)
          ? std::make_shared<const std::map<Id, PostingList>>(
                by_transformation_)
          : prev->by_transformation;
  next->by_bare_transformation =
      (fresh || dirty_.by_bare)
          ? std::make_shared<const std::map<Id, PostingList>>(
                by_bare_transformation_)
          : prev->by_bare_transformation;
  next->materialized = materialized_;
  if (fresh || dirty_.changelog) {
    auto log = std::make_shared<
        std::vector<std::shared_ptr<const CatalogChange>>>();
    log->assign(changelog_.begin(), changelog_.end());
    next->changelog = std::move(log);
  } else {
    next->changelog = prev->changelog;
  }
  dirty_ = Dirty{};
  // The snapshot pointer first, the polled version last: a version()
  // observation always has its snapshot visible.
  {
    std::lock_guard<std::mutex> slot(snapshot_mu_);
    snapshot_ = std::move(next);
  }
  version_.store(version_seq_, std::memory_order_release);
}

Status VirtualDataCatalog::CommitLocked(Status op_status) {
  Status flushed = journal_->Flush();
  PublishSnapshotLocked();
  if (!op_status.ok()) return op_status;
  return flushed;
}

Result<std::string> VirtualDataCatalog::CommitLocked(
    Result<std::string> op_result) {
  Status flushed = journal_->Flush();
  PublishSnapshotLocked();
  if (!op_result.ok()) return op_result;
  if (!flushed.ok()) return flushed;
  return op_result;
}

Status VirtualDataCatalog::SyncJournal() {
  // Exclusive: journal backends are unsynchronized and rely on the
  // catalog lock for mutual exclusion with Append/Rewrite.
  std::unique_lock lock(mu_);
  return journal_->Sync();
}

Status VirtualDataCatalog::CompactJournal() {
  std::unique_lock lock(mu_);
  std::vector<std::string> records = CurrentStateRecordsLocked();
  Status rewritten = journal_->Rewrite(records);
  if (rewritten.ok() && journal_->persistent()) {
    // The journal now starts over with the compacted state; re-anchor
    // the tail-replay counters. Flat snapshots saved before compaction
    // no longer match the chain and fall back to full replay.
    journal_records_ = records.size();
    journal_chain_crc_ = 0;
    for (const std::string& r : records) {
      journal_chain_crc_ = Crc32Extend(journal_chain_crc_, r);
    }
  }
  return rewritten;
}

bool VirtualDataCatalog::TypeConforms(const DatasetType& type,
                                      const DatasetType& against) const {
  return View().types().Conforms(type, against);
}

bool VirtualDataCatalog::HasType(TypeDimension dim,
                                 std::string_view type_name) const {
  return View().types().dimension(dim).Contains(type_name);
}

TypeRegistry VirtualDataCatalog::TypesSnapshot() const {
  return View().types();
}

Result<std::vector<CatalogChange>> VirtualDataCatalog::ChangesSince(
    uint64_t since_version) const {
  return View().ChangesSince(since_version);
}

VirtualDataCatalog::VirtualDataCatalog(
    std::string name, std::unique_ptr<CatalogJournal> journal)
    : name_(std::move(name)),
      journal_(journal ? std::move(journal) : std::make_unique<NullJournal>()),
      materialized_(std::make_shared<const PostingBlocks>()) {
  // Publish the empty version-0 snapshot so View() never sees null.
  PublishSnapshotLocked();
}

Status VirtualDataCatalog::Open() {
  std::unique_lock lock(mu_);
  if (opened_) return Status::OK();
  opened_ = true;
  VDG_ASSIGN_OR_RETURN(std::vector<std::string> records, journal_->ReadAll());
  replaying_ = true;
  for (const std::string& record : records) {
    Status s = ApplyRecord(record);
    if (!s.ok()) {
      replaying_ = false;
      PublishSnapshotLocked();
      return Status::IoError("journal replay failed on record '" + record +
                             "': " + s.ToString());
    }
    ++journal_records_;
    journal_chain_crc_ = Crc32Extend(journal_chain_crc_, record);
  }
  replaying_ = false;
  PublishSnapshotLocked();
  return Status::OK();
}

Status VirtualDataCatalog::Journal(const std::string& record) {
  if (replaying_) return Status::OK();
  Status appended = journal_->Append(record);
  if (appended.ok() && journal_->persistent()) {
    // Tracks how far into the durable journal the in-memory state has
    // advanced: flat snapshots anchor their journal-tail replay here
    // (count + running CRC over the record chain).
    ++journal_records_;
    journal_chain_crc_ = Crc32Extend(journal_chain_crc_, record);
  }
  return appended;
}

const DatasetType* VirtualDataCatalog::LookupDatasetType(
    std::string_view name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second.object->type;
}

// ---------------------------------------------------------------------
// Definition
// ---------------------------------------------------------------------

Status VirtualDataCatalog::DefineType(TypeDimension dim,
                                      std::string_view type_name,
                                      std::string_view parent) {
  std::unique_lock lock(mu_);
  return CommitLocked(DefineTypeLocked(dim, type_name, parent));
}

Status VirtualDataCatalog::DefineTypeLocked(TypeDimension dim,
                                            std::string_view type_name,
                                            std::string_view parent) {
  Status defined = types_.Define(dim, type_name, parent);
  if (defined.IsAlreadyExists() && replaying_) return Status::OK();
  VDG_RETURN_IF_ERROR(defined);
  symbols_.Intern(type_name);
  dirty_.types_registry = true;
  BumpVersion('U', "type", type_name);
  return Journal(codec::JoinRecord(
      {"TY", std::to_string(static_cast<int>(dim)), std::string(type_name),
       std::string(parent)}));
}

Status VirtualDataCatalog::LoadTypePreset() {
  std::unique_lock lock(mu_);
  // Route through a scratch registry to obtain the preset's edges,
  // then journal each through DefineType. The whole preset commits as
  // one batch: one version bump, one journal flush.
  TypeRegistry preset;
  VDG_RETURN_IF_ERROR(preset.LoadAppendixCPreset());
  in_batch_ = true;
  batch_bumped_ = false;
  Status result = Status::OK();
  for (int d = 0; d < kNumTypeDimensions && result.ok(); ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const TypeHierarchy& h = preset.dimension(dim);
    // Parents must be defined before children: insert by depth.
    std::vector<std::pair<int, std::string>> by_depth;
    for (std::string_view name : h.AllTypes()) {
      Result<int> depth = h.DepthOf(name);
      by_depth.emplace_back(depth.ok() ? *depth : 0, std::string(name));
    }
    std::sort(by_depth.begin(), by_depth.end());
    for (const auto& [depth, name] : by_depth) {
      (void)depth;
      Result<std::string> parent = h.ParentOf(name);
      if (!parent.ok()) {
        result = parent.status();
        break;
      }
      if (types_.dimension(dim).Contains(name)) continue;  // idempotent
      result = DefineTypeLocked(dim, name, *parent);
      if (!result.ok()) break;
    }
  }
  in_batch_ = false;
  batch_bumped_ = false;
  TrimChangelogLocked();
  return CommitLocked(std::move(result));
}

Status VirtualDataCatalog::DefineDataset(Dataset dataset) {
  std::unique_lock lock(mu_);
  return CommitLocked(DefineDatasetLocked(std::move(dataset)));
}

Status VirtualDataCatalog::DefineDatasetLocked(Dataset dataset) {
  VDG_RETURN_IF_ERROR(dataset.Validate());
  VDG_RETURN_IF_ERROR(types_.Validate(dataset.type));
  auto it = datasets_.find(dataset.name);
  if (it != datasets_.end()) {
    if (!replaying_) {
      return Status::AlreadyExists("dataset already defined: " +
                                   dataset.name);
    }
    // Replay upsert: drop the superseded object's index entries.
    UnindexDatasetAttributes(*it->second.object, it->second.id);
    UnindexDatasetType(*it->second.object, it->second.id);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(dataset)));
  Id id = symbols_.Intern(dataset.name);
  IndexDatasetAttributes(dataset, id);
  IndexDatasetType(dataset, id);
  BumpVersion('U', "dataset", dataset.name);
  dirty_.datasets = true;
  std::string name = dataset.name;
  datasets_.insert_or_assign(
      std::move(name),
      ObjEntry<Dataset>{id, std::make_shared<const Dataset>(
                                std::move(dataset))});
  return Status::OK();
}

Status VirtualDataCatalog::DefineTransformation(Transformation transformation) {
  std::unique_lock lock(mu_);
  return CommitLocked(DefineTransformationLocked(std::move(transformation)));
}

Status VirtualDataCatalog::DefineTransformationLocked(
    Transformation transformation) {
  VDG_RETURN_IF_ERROR(transformation.Validate());
  for (const FormalArg& arg : transformation.args()) {
    for (const DatasetType& type : arg.types) {
      VDG_RETURN_IF_ERROR(types_.Validate(type));
    }
  }
  auto it = transformations_.find(transformation.name());
  if (it != transformations_.end() && !replaying_) {
    return Status::AlreadyExists("transformation already defined: " +
                                 transformation.name());
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeTransformation(transformation)));
  Id id = symbols_.Intern(transformation.name());
  BumpVersion('U', "transformation", transformation.name());
  dirty_.transformations = true;
  std::string name = transformation.name();
  transformations_.insert_or_assign(
      std::move(name),
      ObjEntry<Transformation>{id, std::make_shared<const Transformation>(
                                       std::move(transformation))});
  return Status::OK();
}

Status VirtualDataCatalog::DefineDerivation(Derivation derivation) {
  std::unique_lock lock(mu_);
  return CommitLocked(DefineDerivationLocked(std::move(derivation)));
}

Status VirtualDataCatalog::DefineDerivationLocked(Derivation derivation) {
  VDG_RETURN_IF_ERROR(derivation.Validate());
  if (derivations_.count(derivation.name()) != 0 && !replaying_) {
    return Status::AlreadyExists("derivation already defined: " +
                                 derivation.name());
  }

  // Type-check against the transformation when it is locally resolvable.
  const std::string& tr_name = derivation.transformation();
  const Transformation* tr = nullptr;
  if (!IsVdpUri(tr_name)) {
    auto it = transformations_.find(tr_name);
    if (it == transformations_.end()) {
      return Status::NotFound("derivation " + derivation.name() +
                              " references unknown transformation " +
                              tr_name);
    }
    tr = it->second.object.get();
    ValidationPolicy policy;
    policy.allow_external_inputs = partition_mode_;
    VDG_RETURN_IF_ERROR(ValidateDerivationAgainst(
        derivation, *tr, types_,
        [this](std::string_view ds) { return LookupDatasetType(ds); },
        policy));
  }

  // Auto-define missing output datasets as virtual data, typed from
  // the formal they bind (first union element when present). In
  // partition mode a missing output is owned by another shard: the
  // sharded client pre-creates it on its home shard, so it is skipped
  // here rather than misplaced on this one.
  for (const ActualArg& arg : derivation.args()) {
    if (!arg.is_dataset() || !DirectionWrites(*arg.direction)) continue;
    if (IsVdpUri(*arg.dataset)) continue;  // lives in another catalog
    auto existing = datasets_.find(*arg.dataset);
    if (existing == datasets_.end()) {
      if (partition_mode_) continue;
      Dataset out;
      out.name = *arg.dataset;
      out.producer = derivation.name();
      if (tr != nullptr) {
        const FormalArg* formal = tr->FindArg(arg.formal);
        if (formal != nullptr && !formal->types.empty()) {
          out.type = formal->types.front();
        }
      }
      out.descriptor = DatasetDescriptor::File(out.name);
      VDG_RETURN_IF_ERROR(DefineDatasetLocked(std::move(out)));
    } else if (existing->second.object->producer.empty()) {
      Dataset updated = *existing->second.object;
      updated.producer = derivation.name();
      VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(updated)));
      existing->second.object =
          std::make_shared<const Dataset>(std::move(updated));
      dirty_.datasets = true;
    } else if (existing->second.object->producer != derivation.name() &&
               !replaying_) {
      // A compound derivation's expansion children (named
      // "<parent>.cK" by the planner) legitimately re-produce the
      // parent's outputs; the parent remains the recorded producer.
      bool expansion_child = StartsWith(
          derivation.name(), existing->second.object->producer + ".");
      if (!expansion_child) {
        return Status::AlreadyExists(
            "dataset " + *arg.dataset +
            " is already produced by derivation " +
            existing->second.object->producer +
            " (a dataset has exactly one producing recipe)");
      }
    }
  }

  VDG_RETURN_IF_ERROR(Journal(codec::EncodeDerivation(derivation)));

  // Index maintenance.
  Id dv_id = symbols_.Intern(derivation.name());
  derivations_by_signature_.emplace(derivation.Signature(),
                                    derivation.name());
  IndexPostingInsert(&by_transformation_,
                     symbols_.Intern(derivation.QualifiedTransformation()),
                     dv_id, &dirty_.by_transformation);
  if (derivation.QualifiedTransformation() != derivation.transformation()) {
    IndexPostingInsert(&by_bare_transformation_,
                       symbols_.Intern(derivation.transformation()), dv_id,
                       &dirty_.by_bare);
  }
  for (const std::string& input : derivation.InputDatasets()) {
    IndexPostingInsert(&consumers_, symbols_.Intern(input), dv_id,
                       &dirty_.consumers);
  }
  for (const std::string& output : derivation.OutputDatasets()) {
    IndexPostingInsert(&producers_, symbols_.Intern(output), dv_id,
                       &dirty_.producers);
  }
  BumpVersion('U', "derivation", derivation.name());
  dirty_.derivations = true;
  std::string name = derivation.name();
  derivations_.insert_or_assign(
      std::move(name),
      ObjEntry<Derivation>{dv_id, std::make_shared<const Derivation>(
                                      std::move(derivation))});
  return Status::OK();
}

Result<std::string> VirtualDataCatalog::AddReplica(Replica replica) {
  std::unique_lock lock(mu_);
  return CommitLocked(AddReplicaLocked(std::move(replica)));
}

Result<std::string> VirtualDataCatalog::AddReplicaLocked(Replica replica) {
  if (replica.id.empty()) {
    replica.id = "rp-" + std::to_string(next_replica_id_++);
  } else {
    // Replayed / imported id: keep the counter ahead of it.
    if (StartsWith(replica.id, "rp-")) {
      uint64_t n = std::strtoull(replica.id.c_str() + 3, nullptr, 10);
      next_replica_id_ = std::max(next_replica_id_, n + 1);
    }
  }
  VDG_RETURN_IF_ERROR(replica.Validate());
  if (datasets_.find(replica.dataset) == datasets_.end()) {
    return Status::NotFound("replica " + replica.id +
                            " references unknown dataset " + replica.dataset);
  }
  auto existing = replicas_.find(replica.id);
  bool existed = existing != replicas_.end();
  if (existed && !replaying_) {
    return Status::AlreadyExists("replica already exists: " + replica.id);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeReplica(replica)));
  if (!existed) {
    replicas_by_dataset_.emplace(replica.dataset, replica.id);
  }
  NoteReplicaState(existed ? &existing->second : nullptr, &replica);
  // Index-visible effect of a replica mutation: its dataset's
  // materialized bit may flip, so the changelog records a dataset
  // upsert.
  BumpVersion('U', "dataset", replica.dataset);
  std::string id = replica.id;
  replicas_.insert_or_assign(id, std::move(replica));
  return id;
}

Result<std::string> VirtualDataCatalog::RecordInvocation(
    Invocation invocation) {
  std::unique_lock lock(mu_);
  return CommitLocked(RecordInvocationLocked(std::move(invocation)));
}

Result<std::string> VirtualDataCatalog::RecordInvocationLocked(
    Invocation invocation) {
  if (invocation.id.empty()) {
    invocation.id = "iv-" + std::to_string(next_invocation_id_++);
  } else if (StartsWith(invocation.id, "iv-")) {
    uint64_t n = std::strtoull(invocation.id.c_str() + 3, nullptr, 10);
    next_invocation_id_ = std::max(next_invocation_id_, n + 1);
  }
  VDG_RETURN_IF_ERROR(invocation.Validate());
  // New invocations must anchor to a defined derivation; replayed ones
  // may legitimately be orphans (their derivation was removed later,
  // but the execution history is retained as the audit record).
  if (!replaying_ &&
      derivations_.find(invocation.derivation) == derivations_.end()) {
    return Status::NotFound("invocation " + invocation.id +
                            " references unknown derivation " +
                            invocation.derivation);
  }
  bool existed = invocations_.count(invocation.id) != 0;
  if (existed && !replaying_) {
    return Status::AlreadyExists("invocation already exists: " +
                                 invocation.id);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeInvocation(invocation)));
  if (!existed) {
    invocations_by_derivation_.emplace(invocation.derivation, invocation.id);
  }
  BumpVersion('U', "invocation", invocation.id);
  std::string id = invocation.id;
  invocations_.insert_or_assign(id, std::move(invocation));
  return id;
}

// ---------------------------------------------------------------------
// Batched mutation (group commit)
// ---------------------------------------------------------------------

Status VirtualDataCatalog::ApplyMutationLocked(const CatalogMutation& mutation,
                                               size_t index,
                                               BatchResult* result) {
  return std::visit(
      [&](const auto& op) -> Status {
        using Op = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<Op, CatalogMutation::DefineDatasetOp>) {
          return DefineDatasetLocked(op.dataset);
        } else if constexpr (std::is_same_v<
                                 Op, CatalogMutation::DefineTransformationOp>) {
          return DefineTransformationLocked(op.transformation);
        } else if constexpr (std::is_same_v<
                                 Op, CatalogMutation::DefineDerivationOp>) {
          return DefineDerivationLocked(op.derivation);
        } else if constexpr (std::is_same_v<Op, CatalogMutation::AnnotateOp>) {
          std::string target = op.name;
          if (op.name_from_op.has_value()) {
            if (*op.name_from_op >= index ||
                result->assigned_ids[*op.name_from_op].empty()) {
              return Status::InvalidArgument(
                  "annotate references batch op " +
                  std::to_string(*op.name_from_op) +
                  " which assigned no id");
            }
            target = result->assigned_ids[*op.name_from_op];
          }
          return AnnotateLocked(op.kind, target, op.key, op.value);
        } else if constexpr (std::is_same_v<Op,
                                            CatalogMutation::AddReplicaOp>) {
          VDG_ASSIGN_OR_RETURN(std::string id, AddReplicaLocked(op.replica));
          result->assigned_ids[index] = std::move(id);
          return Status::OK();
        } else if constexpr (std::is_same_v<
                                 Op, CatalogMutation::RecordInvocationOp>) {
          Invocation iv = op.invocation;
          for (size_t pos : op.produced_from_ops) {
            if (pos >= index || result->assigned_ids[pos].empty()) {
              return Status::InvalidArgument(
                  "invocation references batch op " + std::to_string(pos) +
                  " which assigned no id");
            }
            iv.produced_replicas.push_back(result->assigned_ids[pos]);
          }
          VDG_ASSIGN_OR_RETURN(std::string id,
                               RecordInvocationLocked(std::move(iv)));
          result->assigned_ids[index] = std::move(id);
          return Status::OK();
        } else if constexpr (std::is_same_v<
                                 Op, CatalogMutation::SetDatasetSizeOp>) {
          return SetDatasetSizeLocked(op.name, op.size_bytes);
        } else {
          static_assert(
              std::is_same_v<Op, CatalogMutation::InvalidateReplicaOp>);
          return InvalidateReplicaLocked(op.id);
        }
      },
      mutation.op);
}

BatchResult VirtualDataCatalog::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  std::unique_lock lock(mu_);
  BatchResult result;
  result.statuses.reserve(mutations.size());
  result.assigned_ids.resize(mutations.size());
  in_batch_ = true;
  batch_bumped_ = false;
  bool aborted = false;
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (aborted) {
      result.statuses.push_back(
          Status::FailedPrecondition("batch aborted by earlier failure"));
      continue;
    }
    Status s = ApplyMutationLocked(mutations[i], i, &result);
    if (s.ok()) {
      ++result.applied;
    } else {
      if (result.first_error.ok()) result.first_error = s;
      if (options.stop_on_error) aborted = true;
    }
    result.statuses.push_back(std::move(s));
  }
  in_batch_ = false;
  batch_bumped_ = false;
  TrimChangelogLocked();
  Status flushed = journal_->Flush();
  if (!flushed.ok() && result.first_error.ok()) result.first_error = flushed;
  PublishSnapshotLocked();
  result.version = version_seq_;
  return result;
}

Status VirtualDataCatalog::ImportProgram(const VdlProgram& program) {
  std::unique_lock lock(mu_);
  in_batch_ = true;
  batch_bumped_ = false;
  Status s = ImportProgramLocked(program);
  in_batch_ = false;
  batch_bumped_ = false;
  TrimChangelogLocked();
  return CommitLocked(std::move(s));
}

Status VirtualDataCatalog::ImportProgramLocked(const VdlProgram& program) {
  for (const Dataset& ds : program.datasets) {
    VDG_RETURN_IF_ERROR(DefineDatasetLocked(ds));
  }
  for (const Transformation& tr : program.transformations) {
    VDG_RETURN_IF_ERROR(DefineTransformationLocked(tr));
  }
  for (const Derivation& dv : program.derivations) {
    VDG_RETURN_IF_ERROR(DefineDerivationLocked(dv));
  }
  return Status::OK();
}

Status VirtualDataCatalog::ImportVdl(std::string_view source) {
  // Parsing touches no catalog state; keep it outside the lock.
  VDG_ASSIGN_OR_RETURN(VdlProgram program, ParseVdl(source));
  return ImportProgram(program);
}

// ---------------------------------------------------------------------
// Point lookups
// ---------------------------------------------------------------------

Result<Dataset> VirtualDataCatalog::GetDataset(std::string_view name) const {
  return View().GetDataset(name);
}

Result<Transformation> VirtualDataCatalog::GetTransformation(
    std::string_view name) const {
  return View().GetTransformation(name);
}

Result<Derivation> VirtualDataCatalog::GetDerivation(
    std::string_view name) const {
  return View().GetDerivation(name);
}

Result<Replica> VirtualDataCatalog::GetReplica(std::string_view id) const {
  std::shared_lock lock(mu_);
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  return it->second;
}

Result<Invocation> VirtualDataCatalog::GetInvocation(
    std::string_view id) const {
  std::shared_lock lock(mu_);
  auto it = invocations_.find(id);
  if (it == invocations_.end()) {
    return Status::NotFound("invocation not found: " + std::string(id));
  }
  return it->second;
}

bool VirtualDataCatalog::HasDataset(std::string_view name) const {
  return View().HasDataset(name);
}
bool VirtualDataCatalog::HasTransformation(std::string_view name) const {
  return View().HasTransformation(name);
}
bool VirtualDataCatalog::HasDerivation(std::string_view name) const {
  return View().HasDerivation(name);
}

// ---------------------------------------------------------------------
// Updates & removal
// ---------------------------------------------------------------------

Status VirtualDataCatalog::Annotate(std::string_view kind,
                                    std::string_view name,
                                    std::string_view key,
                                    AttributeValue value) {
  std::unique_lock lock(mu_);
  return CommitLocked(AnnotateLocked(kind, name, key, std::move(value)));
}

Status VirtualDataCatalog::AnnotateLocked(std::string_view kind,
                                          std::string_view name,
                                          std::string_view key,
                                          AttributeValue value) {
  if (kind == "dataset") {
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("dataset not found: " + std::string(name));
    }
    UnindexDatasetAttributes(*it->second.object, it->second.id);
    Dataset updated = *it->second.object;
    updated.annotations.Set(key, std::move(value));
    IndexDatasetAttributes(updated, it->second.id);
    BumpVersion('U', "dataset", name);
    dirty_.datasets = true;
    Status journaled = Journal(codec::EncodeDataset(updated));
    it->second.object = std::make_shared<const Dataset>(std::move(updated));
    return journaled;
  }
  if (kind == "transformation") {
    auto it = transformations_.find(name);
    if (it == transformations_.end()) {
      return Status::NotFound("transformation not found: " +
                              std::string(name));
    }
    Transformation updated = *it->second.object;
    updated.annotations().Set(key, std::move(value));
    BumpVersion('U', "transformation", name);
    dirty_.transformations = true;
    Status journaled = Journal(codec::EncodeTransformation(updated));
    it->second.object =
        std::make_shared<const Transformation>(std::move(updated));
    return journaled;
  }
  if (kind == "derivation") {
    auto it = derivations_.find(name);
    if (it == derivations_.end()) {
      return Status::NotFound("derivation not found: " + std::string(name));
    }
    Derivation updated = *it->second.object;
    updated.annotations().Set(key, std::move(value));
    BumpVersion('U', "derivation", name);
    dirty_.derivations = true;
    Status journaled = Journal(codec::EncodeDerivation(updated));
    it->second.object = std::make_shared<const Derivation>(std::move(updated));
    return journaled;
  }
  if (kind == "replica") {
    auto it = replicas_.find(name);
    if (it == replicas_.end()) {
      return Status::NotFound("replica not found: " + std::string(name));
    }
    it->second.annotations.Set(key, std::move(value));
    BumpVersion('U', "dataset", it->second.dataset);
    return Journal(codec::EncodeReplica(it->second));
  }
  if (kind == "invocation") {
    auto it = invocations_.find(name);
    if (it == invocations_.end()) {
      return Status::NotFound("invocation not found: " + std::string(name));
    }
    it->second.annotations.Set(key, std::move(value));
    BumpVersion('U', "invocation", name);
    return Journal(codec::EncodeInvocation(it->second));
  }
  return Status::InvalidArgument("unknown object kind: " + std::string(kind));
}

Status VirtualDataCatalog::SetDatasetSize(std::string_view name,
                                          int64_t size_bytes) {
  std::unique_lock lock(mu_);
  return CommitLocked(SetDatasetSizeLocked(name, size_bytes));
}

Status VirtualDataCatalog::SetDatasetSizeLocked(std::string_view name,
                                                int64_t size_bytes) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  if (size_bytes < 0) {
    return Status::InvalidArgument("negative dataset size");
  }
  Dataset updated = *it->second.object;
  updated.size_bytes = size_bytes;
  BumpVersion('U', "dataset", name);
  dirty_.datasets = true;
  Status journaled = Journal(codec::EncodeDataset(updated));
  it->second.object = std::make_shared<const Dataset>(std::move(updated));
  return journaled;
}

Status VirtualDataCatalog::InvalidateReplica(std::string_view id) {
  std::unique_lock lock(mu_);
  return CommitLocked(InvalidateReplicaLocked(id));
}

Status VirtualDataCatalog::InvalidateReplicaLocked(std::string_view id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  if (!it->second.valid) return Status::OK();
  Replica before = it->second;
  it->second.valid = false;
  NoteReplicaState(&before, &it->second);
  BumpVersion('U', "dataset", it->second.dataset);
  return Journal(codec::EncodeReplica(it->second));
}

Status VirtualDataCatalog::RemoveDataset(std::string_view name) {
  std::unique_lock lock(mu_);
  return CommitLocked(RemoveDatasetLocked(name));
}

Status VirtualDataCatalog::RemoveDatasetLocked(std::string_view name) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  // Cascade to its replicas.
  std::vector<std::string> replica_ids;
  auto [lo, hi] = replicas_by_dataset_.equal_range(name);
  for (auto r = lo; r != hi; ++r) replica_ids.push_back(r->second);
  for (const std::string& id : replica_ids) {
    VDG_RETURN_IF_ERROR(RemoveReplicaLocked(id));
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('S', name)));
  UnindexDatasetAttributes(*it->second.object, it->second.id);
  UnindexDatasetType(*it->second.object, it->second.id);
  auto vit = valid_replicas_by_dataset_.find(name);
  if (vit != valid_replicas_by_dataset_.end()) {
    valid_replicas_by_dataset_.erase(vit);
    PostingErase(&materialized_, it->second.id);
    dirty_.materialized = true;
  }
  BumpVersion('D', "dataset", name);
  dirty_.datasets = true;
  datasets_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveTransformation(std::string_view name) {
  std::unique_lock lock(mu_);
  return CommitLocked(RemoveTransformationLocked(name));
}

Status VirtualDataCatalog::RemoveTransformationLocked(std::string_view name) {
  auto it = transformations_.find(name);
  if (it == transformations_.end()) {
    return Status::NotFound("transformation not found: " + std::string(name));
  }
  Id tr_id = symbols_.Find(name);
  if (tr_id != SymbolTable::kNoSymbol &&
      by_transformation_.count(tr_id) != 0) {
    return Status::FailedPrecondition(
        "transformation " + std::string(name) +
        " is referenced by derivations and cannot be removed");
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('T', name)));
  BumpVersion('D', "transformation", name);
  dirty_.transformations = true;
  transformations_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveDerivation(std::string_view name) {
  std::unique_lock lock(mu_);
  return CommitLocked(RemoveDerivationLocked(name));
}

Status VirtualDataCatalog::RemoveDerivationLocked(std::string_view name) {
  auto it = derivations_.find(name);
  if (it == derivations_.end()) {
    return Status::NotFound("derivation not found: " + std::string(name));
  }
  const Derivation& dv = *it->second.object;
  Id dv_id = it->second.id;
  EraseIndexEntry(&derivations_by_signature_, dv.Signature(),
                  std::string(name));
  IndexPostingErase(&by_transformation_,
                    symbols_.Intern(dv.QualifiedTransformation()), dv_id,
                    &dirty_.by_transformation);
  if (dv.QualifiedTransformation() != dv.transformation()) {
    IndexPostingErase(&by_bare_transformation_,
                      symbols_.Intern(dv.transformation()), dv_id,
                      &dirty_.by_bare);
  }
  for (const std::string& input : dv.InputDatasets()) {
    IndexPostingErase(&consumers_, symbols_.Intern(input), dv_id,
                      &dirty_.consumers);
  }
  for (const std::string& output : dv.OutputDatasets()) {
    IndexPostingErase(&producers_, symbols_.Intern(output), dv_id,
                      &dirty_.producers);
  }
  // Outputs lose their producer but remain defined.
  for (const std::string& output : dv.OutputDatasets()) {
    auto ds = datasets_.find(output);
    if (ds != datasets_.end() && ds->second.object->producer == name) {
      Dataset updated = *ds->second.object;
      updated.producer.clear();
      VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(updated)));
      ds->second.object = std::make_shared<const Dataset>(std::move(updated));
      dirty_.datasets = true;
    }
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('D', name)));
  BumpVersion('D', "derivation", name);
  dirty_.derivations = true;
  derivations_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveReplica(std::string_view id) {
  std::unique_lock lock(mu_);
  return CommitLocked(RemoveReplicaLocked(id));
}

Status VirtualDataCatalog::RemoveReplicaLocked(std::string_view id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  EraseIndexEntry(&replicas_by_dataset_, it->second.dataset, std::string(id));
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('R', id)));
  NoteReplicaState(&it->second, nullptr);
  BumpVersion('U', "dataset", it->second.dataset);
  replicas_.erase(it);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------

std::vector<Replica> VirtualDataCatalog::ReplicasOf(std::string_view dataset,
                                                    bool valid_only) const {
  std::shared_lock lock(mu_);
  std::vector<Replica> out;
  auto [lo, hi] = replicas_by_dataset_.equal_range(dataset);
  for (auto it = lo; it != hi; ++it) {
    auto r = replicas_.find(it->second);
    if (r == replicas_.end()) continue;
    if (valid_only && !r->second.valid) continue;
    out.push_back(r->second);
  }
  return out;
}

bool VirtualDataCatalog::IsMaterialized(std::string_view dataset) const {
  return View().IsMaterialized(dataset);
}

bool VirtualDataCatalog::IsMaterializedLocked(std::string_view dataset) const {
  // The incremental materialized set only holds datasets with a
  // positive valid-replica count, so membership is the answer.
  return valid_replicas_by_dataset_.find(dataset) !=
         valid_replicas_by_dataset_.end();
}

Result<std::string> VirtualDataCatalog::ProducerOf(
    std::string_view dataset) const {
  return View().ProducerOf(dataset);
}

NameList VirtualDataCatalog::ConsumersOf(
    std::string_view dataset) const {
  return View().ConsumersOf(dataset);
}

std::vector<Invocation> VirtualDataCatalog::InvocationsOf(
    std::string_view derivation) const {
  std::shared_lock lock(mu_);
  std::vector<Invocation> out;
  auto [lo, hi] = invocations_by_derivation_.equal_range(derivation);
  for (auto it = lo; it != hi; ++it) {
    auto iv = invocations_.find(it->second);
    if (iv != invocations_.end()) out.push_back(iv->second);
  }
  return out;
}

NameList VirtualDataCatalog::DerivationsUsing(
    std::string_view transformation) const {
  return View().DerivationsUsing(transformation);
}

// ---------------------------------------------------------------------
// Discovery (delegated to the pinned snapshot)
// ---------------------------------------------------------------------

NameList VirtualDataCatalog::FindDatasets(
    const DatasetQuery& query) const {
  return View().FindDatasets(query);
}

QueryPlan VirtualDataCatalog::ExplainFindDatasets(
    const DatasetQuery& query) const {
  return View().ExplainFindDatasets(query);
}

NameList VirtualDataCatalog::FindTransformations(
    const TransformationQuery& query) const {
  return View().FindTransformations(query);
}

NameList VirtualDataCatalog::FindDerivations(
    const DerivationQuery& query) const {
  return View().FindDerivations(query);
}

QueryPlan VirtualDataCatalog::ExplainFindDerivations(
    const DerivationQuery& query) const {
  return View().ExplainFindDerivations(query);
}

Result<std::string> VirtualDataCatalog::FindEquivalentDerivation(
    const Derivation& derivation) const {
  std::shared_lock lock(mu_);
  return FindEquivalentDerivationLocked(derivation);
}

Result<std::string> VirtualDataCatalog::FindEquivalentDerivationLocked(
    const Derivation& derivation) const {
  std::string want = derivation.SignatureText();
  auto [lo, hi] = derivations_by_signature_.equal_range(derivation.Signature());
  for (auto it = lo; it != hi; ++it) {
    auto dv = derivations_.find(it->second);
    if (dv != derivations_.end() &&
        dv->second.object->SignatureText() == want) {
      return it->second;
    }
  }
  return Status::NotFound("no equivalent derivation recorded");
}

bool VirtualDataCatalog::HasBeenComputed(const Derivation& derivation) const {
  std::shared_lock lock(mu_);
  Result<std::string> existing = FindEquivalentDerivationLocked(derivation);
  if (!existing.ok()) return false;
  auto dv = derivations_.find(*existing);
  if (dv == derivations_.end()) return false;
  std::vector<std::string> outputs = dv->second.object->OutputDatasets();
  if (outputs.empty()) return false;
  for (const std::string& output : outputs) {
    if (!IsMaterializedLocked(output)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Enumeration & stats
// ---------------------------------------------------------------------

namespace {
template <typename Map>
std::vector<std::string> Keys(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [key, value] : map) {
    (void)value;
    out.push_back(key);
  }
  return out;
}
}  // namespace

NameList VirtualDataCatalog::AllDatasetNames() const {
  return View().AllDatasetNames();
}
NameList VirtualDataCatalog::AllTransformationNames() const {
  return View().AllTransformationNames();
}
NameList VirtualDataCatalog::AllDerivationNames() const {
  return View().AllDerivationNames();
}
std::vector<std::string> VirtualDataCatalog::AllReplicaIds() const {
  std::shared_lock lock(mu_);
  return Keys(replicas_);
}
std::vector<std::string> VirtualDataCatalog::AllInvocationIds() const {
  std::shared_lock lock(mu_);
  return Keys(invocations_);
}

CatalogStats VirtualDataCatalog::Stats() const {
  std::shared_lock lock(mu_);
  CatalogStats stats;
  stats.datasets = datasets_.size();
  stats.transformations = transformations_.size();
  stats.derivations = derivations_.size();
  stats.replicas = replicas_.size();
  stats.invocations = invocations_.size();
  return stats;
}

std::vector<std::string> VirtualDataCatalog::CurrentStateRecords() const {
  std::shared_lock lock(mu_);
  return CurrentStateRecordsLocked();
}

std::vector<std::string> VirtualDataCatalog::CurrentStateRecordsLocked()
    const {
  std::vector<std::string> records;
  // Types, parents before children (sorted by depth per dimension).
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const TypeHierarchy& h = types_.dimension(dim);
    std::vector<std::pair<int, std::string>> by_depth;
    for (std::string_view name : h.AllTypes()) {
      Result<int> depth = h.DepthOf(name);
      by_depth.emplace_back(depth.ok() ? *depth : 0, std::string(name));
    }
    std::sort(by_depth.begin(), by_depth.end());
    for (const auto& [depth, name] : by_depth) {
      (void)depth;
      Result<std::string> parent = h.ParentOf(name);
      records.push_back(codec::JoinRecord(
          {"TY", std::to_string(d), name,
           parent.ok() ? *parent : std::string(h.base_name())}));
    }
  }
  for (const auto& [name, ds] : datasets_) {
    (void)name;
    records.push_back(codec::EncodeDataset(*ds.object));
  }
  for (const auto& [name, tr] : transformations_) {
    (void)name;
    records.push_back(codec::EncodeTransformation(*tr.object));
  }
  for (const auto& [name, dv] : derivations_) {
    (void)name;
    records.push_back(codec::EncodeDerivation(*dv.object));
  }
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    records.push_back(codec::EncodeReplica(replica));
  }
  for (const auto& [id, iv] : invocations_) {
    (void)id;
    records.push_back(codec::EncodeInvocation(iv));
  }
  return records;
}

std::string VirtualDataCatalog::ExportVdl() const {
  VdlProgram program;
  {
    std::shared_lock lock(mu_);
    program = ExportProgramLocked();
  }
  // Printing works on the copied program; no need to hold the lock.
  return PrintProgram(program);
}

VdlProgram VirtualDataCatalog::ExportProgram() const {
  std::shared_lock lock(mu_);
  return ExportProgramLocked();
}

VdlProgram VirtualDataCatalog::ExportProgramLocked() const {
  VdlProgram program;
  for (const auto& [name, ds] : datasets_) {
    (void)name;
    program.datasets.push_back(*ds.object);
  }
  for (const auto& [name, tr] : transformations_) {
    (void)name;
    program.transformations.push_back(*tr.object);
  }
  for (const auto& [name, dv] : derivations_) {
    (void)name;
    program.derivations.push_back(*dv.object);
  }
  return program;
}

// ---------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------

Status VirtualDataCatalog::ApplyRecord(const std::string& record) {
  VDG_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                       codec::SplitRecord(record));
  if (fields.empty()) return Status::ParseError("empty journal record");
  const std::string& tag = fields[0];

  if (tag == "DS" || tag == "TR" || tag == "DV") {
    if (fields.size() < 2) {
      return Status::ParseError("object record missing VDL text");
    }
    VDG_ASSIGN_OR_RETURN(VdlProgram program, ParseVdl(fields[1]));
    VDG_ASSIGN_OR_RETURN(AttributeSet attrs,
                         codec::ParseAttributes(fields, 2));
    if (tag == "DS" && program.datasets.size() == 1) {
      Dataset ds = std::move(program.datasets[0]);
      ds.annotations = std::move(attrs);
      return DefineDatasetLocked(std::move(ds));
    }
    if (tag == "TR" && program.transformations.size() == 1) {
      Transformation tr = std::move(program.transformations[0]);
      tr.annotations() = std::move(attrs);
      return DefineTransformationLocked(std::move(tr));
    }
    if (tag == "DV" && program.derivations.size() == 1) {
      Derivation dv = std::move(program.derivations[0]);
      dv.annotations() = std::move(attrs);
      auto existing = derivations_.find(dv.name());
      if (existing != derivations_.end()) {
        // A re-emitted define is an annotation upsert (the live path
        // rejects duplicate names, so the signature is unchanged).
        // Don't re-validate inputs: they were valid when the original
        // define was journaled and may have been removed since.
        Derivation updated = *existing->second.object;
        updated.annotations() = dv.annotations();
        existing->second.object =
            std::make_shared<const Derivation>(std::move(updated));
        dirty_.derivations = true;
        return Status::OK();
      }
      return DefineDerivationLocked(std::move(dv));
    }
    return Status::ParseError("record tag/content mismatch: " + tag);
  }
  if (tag == "RP") {
    VDG_ASSIGN_OR_RETURN(Replica r, codec::DecodeReplica(fields));
    // Upsert semantics: replica re-puts carry annotation/invalidation
    // updates.
    auto existing = replicas_.find(r.id);
    if (existing != replicas_.end()) {
      NoteReplicaState(&existing->second, &r);
      replicas_.insert_or_assign(r.id, std::move(r));
      return Status::OK();
    }
    Result<std::string> added = AddReplicaLocked(std::move(r));
    return added.ok() ? Status::OK() : added.status();
  }
  if (tag == "IV") {
    VDG_ASSIGN_OR_RETURN(Invocation iv, codec::DecodeInvocation(fields));
    if (invocations_.count(iv.id) != 0) {
      invocations_.insert_or_assign(iv.id, std::move(iv));
      return Status::OK();
    }
    return RecordInvocationLocked(std::move(iv)).status();
  }
  if (tag == "TY") {
    if (fields.size() < 4) return Status::ParseError("short TY record");
    int dim = static_cast<int>(std::strtol(fields[1].c_str(), nullptr, 10));
    if (dim < 0 || dim >= kNumTypeDimensions) {
      return Status::ParseError("bad TY dimension");
    }
    return DefineTypeLocked(static_cast<TypeDimension>(dim), fields[2],
                            fields[3]);
  }
  if (tag.size() == 2 && tag[0] == 'X') {
    if (fields.size() < 2) return Status::ParseError("removal missing name");
    const std::string& name = fields[1];
    switch (tag[1]) {
      case 'S':
        return RemoveDatasetLocked(name);
      case 'T':
        return RemoveTransformationLocked(name);
      case 'D':
        return RemoveDerivationLocked(name);
      case 'R':
        return RemoveReplicaLocked(name);
      default:
        return Status::ParseError("unknown removal tag: " + tag);
    }
  }
  return Status::ParseError("unknown journal record tag: " + tag);
}

}  // namespace vdg
