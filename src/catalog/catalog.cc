#include "catalog/catalog.h"

#include <algorithm>
#include <iterator>
#include <mutex>

#include "catalog/codec.h"
#include "common/strings.h"
#include "common/uri.h"
#include "schema/validation.h"
#include "vdl/printer.h"

namespace vdg {

namespace {

// Removes one (key, value) pair from a multimap index.
template <typename Map, typename K, typename V>
void EraseIndexEntry(Map* map, const K& key, const V& value) {
  auto [lo, hi] = map->equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == value) {
      map->erase(it);
      return;
    }
  }
}

// Normalized index key for one attribute (key, value) pair. Numbers
// collapse to one text form so int 5 and double 5.0 index identically,
// matching AttributePredicate's coercing comparison. The wire form is
// used (not the %.6g display form) so doubles differing past the sixth
// significant digit get distinct posting lists.
std::string AttrIndexKey(std::string_view key, const AttributeValue& value) {
  std::string out(key);
  out.push_back('\x1f');
  if (value.AsNumber().has_value()) {
    out += "n:";
  } else if (value.is_bool()) {
    out += "b:";
  } else {
    out += "s:";
  }
  out += value.ToWireString();
  return out;
}

// Index key for one (dimension, type-name) pair of the type index.
std::string TypeIndexKey(TypeDimension dim, std::string_view type_name) {
  std::string out(1, static_cast<char>('0' + static_cast<int>(dim)));
  out.push_back('\x1f');
  out += type_name;
  return out;
}

// Collects a multimap's posting list for `key`, sorted and deduplicated
// so it can drive set intersection.
template <typename Map, typename K>
std::vector<std::string> SortedPosting(const Map& map, const K& key) {
  std::vector<std::string> out;
  auto [lo, hi] = map.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Intersection of two sorted unique name lists.
std::vector<std::string> IntersectSorted(const std::vector<std::string>& a,
                                         const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::string_view AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kNamePrefixRange:
      return "name-prefix-range";
    case AccessPath::kAttributeIndex:
      return "attribute-index";
    case AccessPath::kTypeIndex:
      return "type-index";
    case AccessPath::kMaterializedSet:
      return "materialized-set";
    case AccessPath::kTransformationIndex:
      return "transformation-index";
    case AccessPath::kReadsIndex:
      return "reads-index";
    case AccessPath::kWritesIndex:
      return "writes-index";
  }
  return "unknown";
}

void VirtualDataCatalog::IndexDatasetAttributes(const Dataset& dataset) {
  for (const auto& [key, value] : dataset.annotations) {
    datasets_by_attr_.emplace(AttrIndexKey(key, value), dataset.name);
  }
}

void VirtualDataCatalog::UnindexDatasetAttributes(const Dataset& dataset) {
  for (const auto& [key, value] : dataset.annotations) {
    EraseIndexEntry(&datasets_by_attr_, AttrIndexKey(key, value),
                    dataset.name);
  }
}

void VirtualDataCatalog::IndexDatasetType(const Dataset& dataset) {
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const std::string& component = dataset.type.component(dim);
    if (component.empty()) continue;
    const TypeHierarchy& h = types_.dimension(dim);
    Result<std::vector<std::string>> ancestry = h.AncestryOf(component);
    if (!ancestry.ok()) continue;  // unvalidated type: not indexable
    for (const std::string& ancestor : *ancestry) {
      if (ancestor == h.base_name()) continue;  // base matches any type
      datasets_by_type_.emplace(TypeIndexKey(dim, ancestor), dataset.name);
    }
  }
}

void VirtualDataCatalog::UnindexDatasetType(const Dataset& dataset) {
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const std::string& component = dataset.type.component(dim);
    if (component.empty()) continue;
    const TypeHierarchy& h = types_.dimension(dim);
    Result<std::vector<std::string>> ancestry = h.AncestryOf(component);
    if (!ancestry.ok()) continue;
    for (const std::string& ancestor : *ancestry) {
      if (ancestor == h.base_name()) continue;
      EraseIndexEntry(&datasets_by_type_, TypeIndexKey(dim, ancestor),
                      dataset.name);
    }
  }
}

void VirtualDataCatalog::NoteReplicaState(const Replica* before,
                                          const Replica* after) {
  if (before != nullptr && before->valid) {
    auto it = valid_replicas_by_dataset_.find(before->dataset);
    if (it != valid_replicas_by_dataset_.end() && --it->second == 0) {
      valid_replicas_by_dataset_.erase(it);
    }
  }
  if (after != nullptr && after->valid) {
    ++valid_replicas_by_dataset_[after->dataset];
  }
}

void VirtualDataCatalog::BumpVersion(char op, std::string_view kind,
                                     std::string_view name) {
  // Caller holds the exclusive lock; the atomic store only publishes
  // the new version to lock-free version() polls.
  uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  changelog_.push_back(
      CatalogChange{v, op, std::string(kind), std::string(name)});
  while (changelog_.size() > changelog_capacity_) changelog_.pop_front();
}

void VirtualDataCatalog::set_changelog_capacity(size_t capacity) {
  std::unique_lock lock(mu_);
  changelog_capacity_ = capacity;
  while (changelog_.size() > changelog_capacity_) changelog_.pop_front();
}

size_t VirtualDataCatalog::changelog_capacity() const {
  std::shared_lock lock(mu_);
  return changelog_capacity_;
}

uint64_t VirtualDataCatalog::ChangelogFloorLocked() const {
  return changelog_.empty() ? version_.load(std::memory_order_relaxed)
                            : changelog_.front().version - 1;
}

uint64_t VirtualDataCatalog::changelog_floor() const {
  std::shared_lock lock(mu_);
  return ChangelogFloorLocked();
}

Status VirtualDataCatalog::SyncJournal() {
  // Exclusive: journal backends are unsynchronized and rely on the
  // catalog lock for mutual exclusion with Append/Rewrite.
  std::unique_lock lock(mu_);
  return journal_->Sync();
}

Status VirtualDataCatalog::CompactJournal() {
  std::unique_lock lock(mu_);
  return journal_->Rewrite(CurrentStateRecordsLocked());
}

bool VirtualDataCatalog::TypeConforms(const DatasetType& type,
                                      const DatasetType& against) const {
  std::shared_lock lock(mu_);
  return types_.Conforms(type, against);
}

bool VirtualDataCatalog::HasType(TypeDimension dim,
                                 std::string_view type_name) const {
  std::shared_lock lock(mu_);
  return types_.dimension(dim).Contains(type_name);
}

TypeRegistry VirtualDataCatalog::TypesSnapshot() const {
  std::shared_lock lock(mu_);
  return types_;
}

Result<std::vector<CatalogChange>> VirtualDataCatalog::ChangesSince(
    uint64_t since_version) const {
  std::shared_lock lock(mu_);
  uint64_t version = version_.load(std::memory_order_relaxed);
  if (since_version > version) {
    return Status::InvalidArgument(
        "since_version " + std::to_string(since_version) +
        " is ahead of catalog version " + std::to_string(version));
  }
  if (since_version == version) return std::vector<CatalogChange>{};
  // Exactly one change per version bump, so the window is gap-free iff
  // it reaches back to since_version + 1.
  if (changelog_.empty() || changelog_.front().version > since_version + 1) {
    return Status::ResourceExhausted(
        "changelog window starts at version " +
        std::to_string(ChangelogFloorLocked()) + ", cannot answer since " +
        std::to_string(since_version));
  }
  auto it = std::lower_bound(
      changelog_.begin(), changelog_.end(), since_version + 1,
      [](const CatalogChange& c, uint64_t v) { return c.version < v; });
  return std::vector<CatalogChange>(it, changelog_.end());
}

VirtualDataCatalog::VirtualDataCatalog(
    std::string name, std::unique_ptr<CatalogJournal> journal)
    : name_(std::move(name)),
      journal_(journal ? std::move(journal) : std::make_unique<NullJournal>()) {}

Status VirtualDataCatalog::Open() {
  std::unique_lock lock(mu_);
  if (opened_) return Status::OK();
  opened_ = true;
  VDG_ASSIGN_OR_RETURN(std::vector<std::string> records, journal_->ReadAll());
  replaying_ = true;
  for (const std::string& record : records) {
    Status s = ApplyRecord(record);
    if (!s.ok()) {
      replaying_ = false;
      return Status::IoError("journal replay failed on record '" + record +
                             "': " + s.ToString());
    }
  }
  replaying_ = false;
  return Status::OK();
}

Status VirtualDataCatalog::Journal(const std::string& record) {
  if (replaying_) return Status::OK();
  return journal_->Append(record);
}

const DatasetType* VirtualDataCatalog::LookupDatasetType(
    std::string_view name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second.type;
}

// ---------------------------------------------------------------------
// Definition
// ---------------------------------------------------------------------

Status VirtualDataCatalog::DefineType(TypeDimension dim,
                                      std::string_view type_name,
                                      std::string_view parent) {
  std::unique_lock lock(mu_);
  return DefineTypeLocked(dim, type_name, parent);
}

Status VirtualDataCatalog::DefineTypeLocked(TypeDimension dim,
                                            std::string_view type_name,
                                            std::string_view parent) {
  Status defined = types_.Define(dim, type_name, parent);
  if (defined.IsAlreadyExists() && replaying_) return Status::OK();
  VDG_RETURN_IF_ERROR(defined);
  BumpVersion('U', "type", type_name);
  return Journal(codec::JoinRecord(
      {"TY", std::to_string(static_cast<int>(dim)), std::string(type_name),
       std::string(parent)}));
}

Status VirtualDataCatalog::LoadTypePreset() {
  std::unique_lock lock(mu_);
  // Route through a scratch registry to obtain the preset's edges,
  // then journal each through DefineType.
  TypeRegistry preset;
  VDG_RETURN_IF_ERROR(preset.LoadAppendixCPreset());
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const TypeHierarchy& h = preset.dimension(dim);
    // Parents must be defined before children: insert by depth.
    std::vector<std::pair<int, std::string>> by_depth;
    for (const std::string& name : h.AllTypes()) {
      Result<int> depth = h.DepthOf(name);
      by_depth.emplace_back(depth.ok() ? *depth : 0, name);
    }
    std::sort(by_depth.begin(), by_depth.end());
    for (const auto& [depth, name] : by_depth) {
      (void)depth;
      VDG_ASSIGN_OR_RETURN(std::string parent, h.ParentOf(name));
      if (types_.dimension(dim).Contains(name)) continue;  // idempotent
      VDG_RETURN_IF_ERROR(DefineTypeLocked(dim, name, parent));
    }
  }
  return Status::OK();
}

Status VirtualDataCatalog::DefineDataset(Dataset dataset) {
  std::unique_lock lock(mu_);
  return DefineDatasetLocked(std::move(dataset));
}

Status VirtualDataCatalog::DefineDatasetLocked(Dataset dataset) {
  VDG_RETURN_IF_ERROR(dataset.Validate());
  VDG_RETURN_IF_ERROR(types_.Validate(dataset.type));
  auto it = datasets_.find(dataset.name);
  if (it != datasets_.end()) {
    if (!replaying_) {
      return Status::AlreadyExists("dataset already defined: " +
                                   dataset.name);
    }
    // Replay upsert: drop the superseded object's index entries.
    UnindexDatasetAttributes(it->second);
    UnindexDatasetType(it->second);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(dataset)));
  IndexDatasetAttributes(dataset);
  IndexDatasetType(dataset);
  BumpVersion('U', "dataset", dataset.name);
  datasets_.insert_or_assign(dataset.name, std::move(dataset));
  return Status::OK();
}

Status VirtualDataCatalog::DefineTransformation(Transformation transformation) {
  std::unique_lock lock(mu_);
  return DefineTransformationLocked(std::move(transformation));
}

Status VirtualDataCatalog::DefineTransformationLocked(
    Transformation transformation) {
  VDG_RETURN_IF_ERROR(transformation.Validate());
  for (const FormalArg& arg : transformation.args()) {
    for (const DatasetType& type : arg.types) {
      VDG_RETURN_IF_ERROR(types_.Validate(type));
    }
  }
  auto it = transformations_.find(transformation.name());
  if (it != transformations_.end() && !replaying_) {
    return Status::AlreadyExists("transformation already defined: " +
                                 transformation.name());
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeTransformation(transformation)));
  BumpVersion('U', "transformation", transformation.name());
  transformations_.insert_or_assign(transformation.name(),
                                    std::move(transformation));
  return Status::OK();
}

Status VirtualDataCatalog::DefineDerivation(Derivation derivation) {
  std::unique_lock lock(mu_);
  return DefineDerivationLocked(std::move(derivation));
}

Status VirtualDataCatalog::DefineDerivationLocked(Derivation derivation) {
  VDG_RETURN_IF_ERROR(derivation.Validate());
  if (derivations_.count(derivation.name()) != 0 && !replaying_) {
    return Status::AlreadyExists("derivation already defined: " +
                                 derivation.name());
  }

  // Type-check against the transformation when it is locally resolvable.
  const std::string& tr_name = derivation.transformation();
  const Transformation* tr = nullptr;
  if (!IsVdpUri(tr_name)) {
    auto it = transformations_.find(tr_name);
    if (it == transformations_.end()) {
      return Status::NotFound("derivation " + derivation.name() +
                              " references unknown transformation " +
                              tr_name);
    }
    tr = &it->second;
    VDG_RETURN_IF_ERROR(ValidateDerivationAgainst(
        derivation, *tr, types_,
        [this](std::string_view ds) { return LookupDatasetType(ds); }));
  }

  // Auto-define missing output datasets as virtual data, typed from
  // the formal they bind (first union element when present).
  for (const ActualArg& arg : derivation.args()) {
    if (!arg.is_dataset() || !DirectionWrites(*arg.direction)) continue;
    if (IsVdpUri(*arg.dataset)) continue;  // lives in another catalog
    auto existing = datasets_.find(*arg.dataset);
    if (existing == datasets_.end()) {
      Dataset out;
      out.name = *arg.dataset;
      out.producer = derivation.name();
      if (tr != nullptr) {
        const FormalArg* formal = tr->FindArg(arg.formal);
        if (formal != nullptr && !formal->types.empty()) {
          out.type = formal->types.front();
        }
      }
      out.descriptor = DatasetDescriptor::File(out.name);
      VDG_RETURN_IF_ERROR(DefineDatasetLocked(std::move(out)));
    } else if (existing->second.producer.empty()) {
      existing->second.producer = derivation.name();
      VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(existing->second)));
    } else if (existing->second.producer != derivation.name() &&
               !replaying_) {
      // A compound derivation's expansion children (named
      // "<parent>.cK" by the planner) legitimately re-produce the
      // parent's outputs; the parent remains the recorded producer.
      bool expansion_child = StartsWith(
          derivation.name(), existing->second.producer + ".");
      if (!expansion_child) {
        return Status::AlreadyExists(
            "dataset " + *arg.dataset +
            " is already produced by derivation " +
            existing->second.producer +
            " (a dataset has exactly one producing recipe)");
      }
    }
  }

  VDG_RETURN_IF_ERROR(Journal(codec::EncodeDerivation(derivation)));

  // Index maintenance.
  derivations_by_signature_.emplace(derivation.Signature(),
                                    derivation.name());
  derivations_by_transformation_.emplace(derivation.QualifiedTransformation(),
                                         derivation.name());
  if (derivation.QualifiedTransformation() != derivation.transformation()) {
    derivations_by_bare_transformation_.emplace(derivation.transformation(),
                                                derivation.name());
  }
  for (const std::string& input : derivation.InputDatasets()) {
    consumers_by_dataset_.emplace(input, derivation.name());
  }
  for (const std::string& output : derivation.OutputDatasets()) {
    producers_by_dataset_.emplace(output, derivation.name());
  }
  BumpVersion('U', "derivation", derivation.name());
  std::string name = derivation.name();
  derivations_.insert_or_assign(std::move(name), std::move(derivation));
  return Status::OK();
}

Result<std::string> VirtualDataCatalog::AddReplica(Replica replica) {
  std::unique_lock lock(mu_);
  return AddReplicaLocked(std::move(replica));
}

Result<std::string> VirtualDataCatalog::AddReplicaLocked(Replica replica) {
  if (replica.id.empty()) {
    replica.id = "rp-" + std::to_string(next_replica_id_++);
  } else {
    // Replayed / imported id: keep the counter ahead of it.
    if (StartsWith(replica.id, "rp-")) {
      uint64_t n = std::strtoull(replica.id.c_str() + 3, nullptr, 10);
      next_replica_id_ = std::max(next_replica_id_, n + 1);
    }
  }
  VDG_RETURN_IF_ERROR(replica.Validate());
  if (datasets_.find(replica.dataset) == datasets_.end()) {
    return Status::NotFound("replica " + replica.id +
                            " references unknown dataset " + replica.dataset);
  }
  auto existing = replicas_.find(replica.id);
  bool existed = existing != replicas_.end();
  if (existed && !replaying_) {
    return Status::AlreadyExists("replica already exists: " + replica.id);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeReplica(replica)));
  if (!existed) {
    replicas_by_dataset_.emplace(replica.dataset, replica.id);
  }
  NoteReplicaState(existed ? &existing->second : nullptr, &replica);
  // Index-visible effect of a replica mutation: its dataset's
  // materialized bit may flip, so the changelog records a dataset
  // upsert.
  BumpVersion('U', "dataset", replica.dataset);
  std::string id = replica.id;
  replicas_.insert_or_assign(id, std::move(replica));
  return id;
}

Result<std::string> VirtualDataCatalog::RecordInvocation(
    Invocation invocation) {
  std::unique_lock lock(mu_);
  return RecordInvocationLocked(std::move(invocation));
}

Result<std::string> VirtualDataCatalog::RecordInvocationLocked(
    Invocation invocation) {
  if (invocation.id.empty()) {
    invocation.id = "iv-" + std::to_string(next_invocation_id_++);
  } else if (StartsWith(invocation.id, "iv-")) {
    uint64_t n = std::strtoull(invocation.id.c_str() + 3, nullptr, 10);
    next_invocation_id_ = std::max(next_invocation_id_, n + 1);
  }
  VDG_RETURN_IF_ERROR(invocation.Validate());
  // New invocations must anchor to a defined derivation; replayed ones
  // may legitimately be orphans (their derivation was removed later,
  // but the execution history is retained as the audit record).
  if (!replaying_ &&
      derivations_.find(invocation.derivation) == derivations_.end()) {
    return Status::NotFound("invocation " + invocation.id +
                            " references unknown derivation " +
                            invocation.derivation);
  }
  bool existed = invocations_.count(invocation.id) != 0;
  if (existed && !replaying_) {
    return Status::AlreadyExists("invocation already exists: " +
                                 invocation.id);
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeInvocation(invocation)));
  if (!existed) {
    invocations_by_derivation_.emplace(invocation.derivation, invocation.id);
  }
  BumpVersion('U', "invocation", invocation.id);
  std::string id = invocation.id;
  invocations_.insert_or_assign(id, std::move(invocation));
  return id;
}

Status VirtualDataCatalog::ImportProgram(const VdlProgram& program) {
  std::unique_lock lock(mu_);
  return ImportProgramLocked(program);
}

Status VirtualDataCatalog::ImportProgramLocked(const VdlProgram& program) {
  for (const Dataset& ds : program.datasets) {
    VDG_RETURN_IF_ERROR(DefineDatasetLocked(ds));
  }
  for (const Transformation& tr : program.transformations) {
    VDG_RETURN_IF_ERROR(DefineTransformationLocked(tr));
  }
  for (const Derivation& dv : program.derivations) {
    VDG_RETURN_IF_ERROR(DefineDerivationLocked(dv));
  }
  return Status::OK();
}

Status VirtualDataCatalog::ImportVdl(std::string_view source) {
  // Parsing touches no catalog state; keep it outside the lock.
  VDG_ASSIGN_OR_RETURN(VdlProgram program, ParseVdl(source));
  std::unique_lock lock(mu_);
  return ImportProgramLocked(program);
}

// ---------------------------------------------------------------------
// Point lookups
// ---------------------------------------------------------------------

Result<Dataset> VirtualDataCatalog::GetDataset(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  return it->second;
}

Result<Transformation> VirtualDataCatalog::GetTransformation(
    std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = transformations_.find(name);
  if (it == transformations_.end()) {
    return Status::NotFound("transformation not found: " + std::string(name));
  }
  return it->second;
}

Result<Derivation> VirtualDataCatalog::GetDerivation(
    std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = derivations_.find(name);
  if (it == derivations_.end()) {
    return Status::NotFound("derivation not found: " + std::string(name));
  }
  return it->second;
}

Result<Replica> VirtualDataCatalog::GetReplica(std::string_view id) const {
  std::shared_lock lock(mu_);
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  return it->second;
}

Result<Invocation> VirtualDataCatalog::GetInvocation(
    std::string_view id) const {
  std::shared_lock lock(mu_);
  auto it = invocations_.find(id);
  if (it == invocations_.end()) {
    return Status::NotFound("invocation not found: " + std::string(id));
  }
  return it->second;
}

bool VirtualDataCatalog::HasDataset(std::string_view name) const {
  std::shared_lock lock(mu_);
  return datasets_.count(name) != 0;
}
bool VirtualDataCatalog::HasTransformation(std::string_view name) const {
  std::shared_lock lock(mu_);
  return transformations_.count(name) != 0;
}
bool VirtualDataCatalog::HasDerivation(std::string_view name) const {
  std::shared_lock lock(mu_);
  return derivations_.count(name) != 0;
}

// ---------------------------------------------------------------------
// Updates & removal
// ---------------------------------------------------------------------

Status VirtualDataCatalog::Annotate(std::string_view kind,
                                    std::string_view name,
                                    std::string_view key,
                                    AttributeValue value) {
  std::unique_lock lock(mu_);
  if (kind == "dataset") {
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("dataset not found: " + std::string(name));
    }
    UnindexDatasetAttributes(it->second);
    it->second.annotations.Set(key, std::move(value));
    IndexDatasetAttributes(it->second);
    BumpVersion('U', "dataset", name);
    return Journal(codec::EncodeDataset(it->second));
  }
  if (kind == "transformation") {
    auto it = transformations_.find(name);
    if (it == transformations_.end()) {
      return Status::NotFound("transformation not found: " +
                              std::string(name));
    }
    it->second.annotations().Set(key, std::move(value));
    BumpVersion('U', "transformation", name);
    return Journal(codec::EncodeTransformation(it->second));
  }
  if (kind == "derivation") {
    auto it = derivations_.find(name);
    if (it == derivations_.end()) {
      return Status::NotFound("derivation not found: " + std::string(name));
    }
    it->second.annotations().Set(key, std::move(value));
    BumpVersion('U', "derivation", name);
    return Journal(codec::EncodeDerivation(it->second));
  }
  if (kind == "replica") {
    auto it = replicas_.find(name);
    if (it == replicas_.end()) {
      return Status::NotFound("replica not found: " + std::string(name));
    }
    it->second.annotations.Set(key, std::move(value));
    BumpVersion('U', "dataset", it->second.dataset);
    return Journal(codec::EncodeReplica(it->second));
  }
  if (kind == "invocation") {
    auto it = invocations_.find(name);
    if (it == invocations_.end()) {
      return Status::NotFound("invocation not found: " + std::string(name));
    }
    it->second.annotations.Set(key, std::move(value));
    BumpVersion('U', "invocation", name);
    return Journal(codec::EncodeInvocation(it->second));
  }
  return Status::InvalidArgument("unknown object kind: " + std::string(kind));
}

Status VirtualDataCatalog::SetDatasetSize(std::string_view name,
                                          int64_t size_bytes) {
  std::unique_lock lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  if (size_bytes < 0) {
    return Status::InvalidArgument("negative dataset size");
  }
  it->second.size_bytes = size_bytes;
  BumpVersion('U', "dataset", name);
  return Journal(codec::EncodeDataset(it->second));
}

Status VirtualDataCatalog::InvalidateReplica(std::string_view id) {
  std::unique_lock lock(mu_);
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  if (!it->second.valid) return Status::OK();
  Replica before = it->second;
  it->second.valid = false;
  NoteReplicaState(&before, &it->second);
  BumpVersion('U', "dataset", it->second.dataset);
  return Journal(codec::EncodeReplica(it->second));
}

Status VirtualDataCatalog::RemoveDataset(std::string_view name) {
  std::unique_lock lock(mu_);
  return RemoveDatasetLocked(name);
}

Status VirtualDataCatalog::RemoveDatasetLocked(std::string_view name) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  // Cascade to its replicas.
  std::vector<std::string> replica_ids;
  auto [lo, hi] = replicas_by_dataset_.equal_range(name);
  for (auto r = lo; r != hi; ++r) replica_ids.push_back(r->second);
  for (const std::string& id : replica_ids) {
    VDG_RETURN_IF_ERROR(RemoveReplicaLocked(id));
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('S', name)));
  UnindexDatasetAttributes(it->second);
  UnindexDatasetType(it->second);
  valid_replicas_by_dataset_.erase(std::string(name));
  BumpVersion('D', "dataset", name);
  datasets_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveTransformation(std::string_view name) {
  std::unique_lock lock(mu_);
  return RemoveTransformationLocked(name);
}

Status VirtualDataCatalog::RemoveTransformationLocked(std::string_view name) {
  auto it = transformations_.find(name);
  if (it == transformations_.end()) {
    return Status::NotFound("transformation not found: " + std::string(name));
  }
  if (derivations_by_transformation_.count(std::string(name)) != 0) {
    return Status::FailedPrecondition(
        "transformation " + std::string(name) +
        " is referenced by derivations and cannot be removed");
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('T', name)));
  BumpVersion('D', "transformation", name);
  transformations_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveDerivation(std::string_view name) {
  std::unique_lock lock(mu_);
  return RemoveDerivationLocked(name);
}

Status VirtualDataCatalog::RemoveDerivationLocked(std::string_view name) {
  auto it = derivations_.find(name);
  if (it == derivations_.end()) {
    return Status::NotFound("derivation not found: " + std::string(name));
  }
  const Derivation& dv = it->second;
  EraseIndexEntry(&derivations_by_signature_, dv.Signature(),
                  std::string(name));
  EraseIndexEntry(&derivations_by_transformation_,
                  dv.QualifiedTransformation(), std::string(name));
  if (dv.QualifiedTransformation() != dv.transformation()) {
    EraseIndexEntry(&derivations_by_bare_transformation_, dv.transformation(),
                    std::string(name));
  }
  for (const std::string& input : dv.InputDatasets()) {
    EraseIndexEntry(&consumers_by_dataset_, input, std::string(name));
  }
  for (const std::string& output : dv.OutputDatasets()) {
    EraseIndexEntry(&producers_by_dataset_, output, std::string(name));
  }
  // Outputs lose their producer but remain defined.
  for (const std::string& output : dv.OutputDatasets()) {
    auto ds = datasets_.find(output);
    if (ds != datasets_.end() && ds->second.producer == name) {
      ds->second.producer.clear();
      VDG_RETURN_IF_ERROR(Journal(codec::EncodeDataset(ds->second)));
    }
  }
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('D', name)));
  BumpVersion('D', "derivation", name);
  derivations_.erase(it);
  return Status::OK();
}

Status VirtualDataCatalog::RemoveReplica(std::string_view id) {
  std::unique_lock lock(mu_);
  return RemoveReplicaLocked(id);
}

Status VirtualDataCatalog::RemoveReplicaLocked(std::string_view id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not found: " + std::string(id));
  }
  EraseIndexEntry(&replicas_by_dataset_, it->second.dataset, std::string(id));
  VDG_RETURN_IF_ERROR(Journal(codec::EncodeRemoval('R', id)));
  NoteReplicaState(&it->second, nullptr);
  BumpVersion('U', "dataset", it->second.dataset);
  replicas_.erase(it);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------

std::vector<Replica> VirtualDataCatalog::ReplicasOf(std::string_view dataset,
                                                    bool valid_only) const {
  std::shared_lock lock(mu_);
  std::vector<Replica> out;
  auto [lo, hi] = replicas_by_dataset_.equal_range(dataset);
  for (auto it = lo; it != hi; ++it) {
    auto r = replicas_.find(it->second);
    if (r == replicas_.end()) continue;
    if (valid_only && !r->second.valid) continue;
    out.push_back(r->second);
  }
  return out;
}

bool VirtualDataCatalog::IsMaterialized(std::string_view dataset) const {
  std::shared_lock lock(mu_);
  return IsMaterializedLocked(dataset);
}

bool VirtualDataCatalog::IsMaterializedLocked(std::string_view dataset) const {
  // The incremental materialized set only holds datasets with a
  // positive valid-replica count, so membership is the answer.
  return valid_replicas_by_dataset_.find(dataset) !=
         valid_replicas_by_dataset_.end();
}

Result<std::string> VirtualDataCatalog::ProducerOf(
    std::string_view dataset) const {
  std::shared_lock lock(mu_);
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  if (it->second.producer.empty()) {
    return Status::NotFound("dataset " + std::string(dataset) +
                            " has no producing derivation (raw input)");
  }
  return it->second.producer;
}

std::vector<std::string> VirtualDataCatalog::ConsumersOf(
    std::string_view dataset) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  auto [lo, hi] = consumers_by_dataset_.equal_range(dataset);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  // Canonical order: multimap insertion order depends on mutation
  // history (e.g. annotate re-puts), which must not leak into results.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Invocation> VirtualDataCatalog::InvocationsOf(
    std::string_view derivation) const {
  std::shared_lock lock(mu_);
  std::vector<Invocation> out;
  auto [lo, hi] = invocations_by_derivation_.equal_range(derivation);
  for (auto it = lo; it != hi; ++it) {
    auto iv = invocations_.find(it->second);
    if (iv != invocations_.end()) out.push_back(iv->second);
  }
  return out;
}

std::vector<std::string> VirtualDataCatalog::DerivationsUsing(
    std::string_view transformation) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  auto [lo, hi] = derivations_by_transformation_.equal_range(transformation);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------

std::vector<VirtualDataCatalog::Posting> VirtualDataCatalog::DatasetPostings(
    const DatasetQuery& query) const {
  std::vector<Posting> postings;
  for (const AttributePredicate& predicate : query.predicates) {
    if (predicate.op != PredicateOp::kEq) continue;
    Posting p;
    p.path = AccessPath::kAttributeIndex;
    p.driver = "attr " + predicate.key + "=" + predicate.operand.ToString();
    p.names = SortedPosting(datasets_by_attr_,
                            AttrIndexKey(predicate.key, predicate.operand));
    postings.push_back(std::move(p));
  }
  if (query.type && !query.type->IsAny()) {
    for (int d = 0; d < kNumTypeDimensions; ++d) {
      auto dim = static_cast<TypeDimension>(d);
      const std::string& component = query.type->component(dim);
      const TypeHierarchy& h = types_.dimension(dim);
      // An empty or base-typed component accepts anything — no list.
      if (component.empty() || component == h.base_name()) continue;
      Posting p;
      p.path = AccessPath::kTypeIndex;
      p.driver =
          "type " + std::string(TypeDimensionName(dim)) + ":" + component;
      p.names = SortedPosting(datasets_by_type_, TypeIndexKey(dim, component));
      postings.push_back(std::move(p));
    }
  }
  return postings;
}

std::vector<std::string> VirtualDataCatalog::FindDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  // Residual filter: re-checks every condition, so the driving index
  // only needs to be a superset of the answer.
  auto matches = [this, &query](const std::string& name,
                                const Dataset& ds) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    if (query.type && !types_.Conforms(ds.type, *query.type)) return false;
    if (!MatchesAll(ds.annotations, query.predicates)) return false;
    if (query.require_materialized && !IsMaterializedLocked(name)) {
      return false;
    }
    if (query.only_virtual && IsMaterializedLocked(name)) return false;
    return true;
  };

  std::vector<std::string> out;

  // Indexed path: intersect the posting lists, smallest first, then
  // apply the residual filter to the survivors.
  std::vector<Posting> postings = DatasetPostings(query);
  if (!postings.empty()) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.names.size() < b.names.size();
              });
    std::vector<std::string> candidates = std::move(postings[0].names);
    for (size_t i = 1; i < postings.size() && !candidates.empty(); ++i) {
      candidates = IntersectSorted(candidates, postings[i].names);
    }
    for (const std::string& name : candidates) {
      auto ds = datasets_.find(name);
      if (ds == datasets_.end()) continue;
      if (!matches(name, ds->second)) continue;
      out.push_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  // Materialized-set path: enumerate only datasets with valid replicas.
  if (query.require_materialized) {
    for (const auto& [name, count] : valid_replicas_by_dataset_) {
      (void)count;
      auto ds = datasets_.find(name);
      if (ds == datasets_.end()) continue;
      if (!matches(name, ds->second)) continue;
      out.push_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  // Name-prefix path: bounded range scan on the ordered map.
  auto it = query.name_prefix.empty()
                ? datasets_.begin()
                : datasets_.lower_bound(query.name_prefix);
  for (; it != datasets_.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->first, query.name_prefix)) {
      break;
    }
    if (!matches(it->first, it->second)) continue;
    out.push_back(it->first);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

QueryPlan VirtualDataCatalog::ExplainFindDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  QueryPlan plan;
  std::vector<Posting> postings = DatasetPostings(query);
  if (!postings.empty()) {
    const Posting* smallest = &postings[0];
    for (const Posting& p : postings) {
      if (p.names.size() < smallest->names.size()) smallest = &p;
    }
    plan.path = smallest->path;
    plan.driver = smallest->driver;
    plan.estimated_candidates = smallest->names.size();
    plan.posting_lists = postings.size();
    return plan;
  }
  if (query.require_materialized) {
    plan.path = AccessPath::kMaterializedSet;
    plan.driver = "materialized-set";
    plan.estimated_candidates = valid_replicas_by_dataset_.size();
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = datasets_.size();  // upper bound
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "datasets";
  plan.estimated_candidates = datasets_.size();
  return plan;
}

std::vector<std::string> VirtualDataCatalog::FindTransformations(
    const TransformationQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  // Prefix queries scan only the matching range of the ordered map.
  auto begin = query.name_prefix.empty()
                   ? transformations_.begin()
                   : transformations_.lower_bound(query.name_prefix);
  for (auto it = begin; it != transformations_.end(); ++it) {
    const std::string& name = it->first;
    const Transformation& tr = it->second;
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      break;
    }
    if (!MatchesAll(tr.annotations(), query.predicates)) continue;
    if (query.consumes) {
      bool accepts = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionReads(arg.direction)) continue;
        if (types_.ConformsToAny(*query.consumes, arg.types)) {
          accepts = true;
          break;
        }
      }
      if (!accepts) continue;
    }
    if (query.produces) {
      bool yields = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionWrites(arg.direction)) continue;
        if (arg.types.empty()) {
          yields = query.produces->IsAny();
        } else {
          for (const DatasetType& t : arg.types) {
            if (types_.Conforms(t, *query.produces)) {
              yields = true;
              break;
            }
          }
        }
        if (yields) break;
      }
      if (!yields) continue;
    }
    out.push_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<VirtualDataCatalog::Posting>
VirtualDataCatalog::DerivationPostings(const DerivationQuery& query) const {
  std::vector<Posting> postings;
  if (!query.transformation.empty()) {
    Posting p;
    p.path = AccessPath::kTransformationIndex;
    p.driver = "transformation " + query.transformation;
    // A query name matches either the qualified or the bare form; the
    // union of both maps' posting lists is exactly that predicate.
    p.names = SortedPosting(derivations_by_transformation_,
                            query.transformation);
    std::vector<std::string> bare = SortedPosting(
        derivations_by_bare_transformation_, query.transformation);
    if (!bare.empty()) {
      std::vector<std::string> merged;
      std::set_union(p.names.begin(), p.names.end(), bare.begin(), bare.end(),
                     std::back_inserter(merged));
      p.names = std::move(merged);
    }
    postings.push_back(std::move(p));
  }
  if (!query.reads_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kReadsIndex;
    p.driver = "reads " + query.reads_dataset;
    p.names = SortedPosting(consumers_by_dataset_, query.reads_dataset);
    postings.push_back(std::move(p));
  }
  if (!query.writes_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kWritesIndex;
    p.driver = "writes " + query.writes_dataset;
    p.names = SortedPosting(producers_by_dataset_, query.writes_dataset);
    postings.push_back(std::move(p));
  }
  return postings;
}

std::vector<std::string> VirtualDataCatalog::FindDerivations(
    const DerivationQuery& query) const {
  std::shared_lock lock(mu_);
  // The posting lists answer the transformation/reads/writes
  // conditions exactly, so the residual covers only prefix and
  // annotation predicates (and, on scan paths, everything indexed is
  // empty anyway).
  auto residual = [&query](const std::string& name, const Derivation& dv) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    return MatchesAll(dv.annotations(), query.predicates);
  };

  std::vector<std::string> out;
  std::vector<Posting> postings = DerivationPostings(query);
  if (!postings.empty()) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.names.size() < b.names.size();
              });
    std::vector<std::string> candidates = std::move(postings[0].names);
    for (size_t i = 1; i < postings.size() && !candidates.empty(); ++i) {
      candidates = IntersectSorted(candidates, postings[i].names);
    }
    for (const std::string& name : candidates) {
      auto dv = derivations_.find(name);
      if (dv == derivations_.end()) continue;
      if (!residual(name, dv->second)) continue;
      out.push_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  auto begin = query.name_prefix.empty()
                   ? derivations_.begin()
                   : derivations_.lower_bound(query.name_prefix);
  for (auto it = begin; it != derivations_.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->first, query.name_prefix)) {
      break;
    }
    if (!residual(it->first, it->second)) continue;
    out.push_back(it->first);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

QueryPlan VirtualDataCatalog::ExplainFindDerivations(
    const DerivationQuery& query) const {
  std::shared_lock lock(mu_);
  QueryPlan plan;
  std::vector<Posting> postings = DerivationPostings(query);
  if (!postings.empty()) {
    const Posting* smallest = &postings[0];
    for (const Posting& p : postings) {
      if (p.names.size() < smallest->names.size()) smallest = &p;
    }
    plan.path = smallest->path;
    plan.driver = smallest->driver;
    plan.estimated_candidates = smallest->names.size();
    plan.posting_lists = postings.size();
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = derivations_.size();  // upper bound
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "derivations";
  plan.estimated_candidates = derivations_.size();
  return plan;
}

Result<std::string> VirtualDataCatalog::FindEquivalentDerivation(
    const Derivation& derivation) const {
  std::shared_lock lock(mu_);
  return FindEquivalentDerivationLocked(derivation);
}

Result<std::string> VirtualDataCatalog::FindEquivalentDerivationLocked(
    const Derivation& derivation) const {
  std::string want = derivation.SignatureText();
  auto [lo, hi] = derivations_by_signature_.equal_range(derivation.Signature());
  for (auto it = lo; it != hi; ++it) {
    auto dv = derivations_.find(it->second);
    if (dv != derivations_.end() && dv->second.SignatureText() == want) {
      return it->second;
    }
  }
  return Status::NotFound("no equivalent derivation recorded");
}

bool VirtualDataCatalog::HasBeenComputed(const Derivation& derivation) const {
  std::shared_lock lock(mu_);
  Result<std::string> existing = FindEquivalentDerivationLocked(derivation);
  if (!existing.ok()) return false;
  auto dv = derivations_.find(*existing);
  if (dv == derivations_.end()) return false;
  std::vector<std::string> outputs = dv->second.OutputDatasets();
  if (outputs.empty()) return false;
  for (const std::string& output : outputs) {
    if (!IsMaterializedLocked(output)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Enumeration & stats
// ---------------------------------------------------------------------

namespace {
template <typename Map>
std::vector<std::string> Keys(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [key, value] : map) {
    (void)value;
    out.push_back(key);
  }
  return out;
}
}  // namespace

std::vector<std::string> VirtualDataCatalog::AllDatasetNames() const {
  std::shared_lock lock(mu_);
  return Keys(datasets_);
}
std::vector<std::string> VirtualDataCatalog::AllTransformationNames() const {
  std::shared_lock lock(mu_);
  return Keys(transformations_);
}
std::vector<std::string> VirtualDataCatalog::AllDerivationNames() const {
  std::shared_lock lock(mu_);
  return Keys(derivations_);
}
std::vector<std::string> VirtualDataCatalog::AllReplicaIds() const {
  std::shared_lock lock(mu_);
  return Keys(replicas_);
}
std::vector<std::string> VirtualDataCatalog::AllInvocationIds() const {
  std::shared_lock lock(mu_);
  return Keys(invocations_);
}

CatalogStats VirtualDataCatalog::Stats() const {
  std::shared_lock lock(mu_);
  CatalogStats stats;
  stats.datasets = datasets_.size();
  stats.transformations = transformations_.size();
  stats.derivations = derivations_.size();
  stats.replicas = replicas_.size();
  stats.invocations = invocations_.size();
  return stats;
}

std::vector<std::string> VirtualDataCatalog::CurrentStateRecords() const {
  std::shared_lock lock(mu_);
  return CurrentStateRecordsLocked();
}

std::vector<std::string> VirtualDataCatalog::CurrentStateRecordsLocked()
    const {
  std::vector<std::string> records;
  // Types, parents before children (sorted by depth per dimension).
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const TypeHierarchy& h = types_.dimension(dim);
    std::vector<std::pair<int, std::string>> by_depth;
    for (const std::string& name : h.AllTypes()) {
      Result<int> depth = h.DepthOf(name);
      by_depth.emplace_back(depth.ok() ? *depth : 0, name);
    }
    std::sort(by_depth.begin(), by_depth.end());
    for (const auto& [depth, name] : by_depth) {
      (void)depth;
      Result<std::string> parent = h.ParentOf(name);
      records.push_back(codec::JoinRecord(
          {"TY", std::to_string(d), name,
           parent.ok() ? *parent : std::string(h.base_name())}));
    }
  }
  for (const auto& [name, ds] : datasets_) {
    (void)name;
    records.push_back(codec::EncodeDataset(ds));
  }
  for (const auto& [name, tr] : transformations_) {
    (void)name;
    records.push_back(codec::EncodeTransformation(tr));
  }
  for (const auto& [name, dv] : derivations_) {
    (void)name;
    records.push_back(codec::EncodeDerivation(dv));
  }
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    records.push_back(codec::EncodeReplica(replica));
  }
  for (const auto& [id, iv] : invocations_) {
    (void)id;
    records.push_back(codec::EncodeInvocation(iv));
  }
  return records;
}

std::string VirtualDataCatalog::ExportVdl() const {
  VdlProgram program;
  {
    std::shared_lock lock(mu_);
    program = ExportProgramLocked();
  }
  // Printing works on the copied program; no need to hold the lock.
  return PrintProgram(program);
}

VdlProgram VirtualDataCatalog::ExportProgram() const {
  std::shared_lock lock(mu_);
  return ExportProgramLocked();
}

VdlProgram VirtualDataCatalog::ExportProgramLocked() const {
  VdlProgram program;
  for (const auto& [name, ds] : datasets_) {
    (void)name;
    program.datasets.push_back(ds);
  }
  for (const auto& [name, tr] : transformations_) {
    (void)name;
    program.transformations.push_back(tr);
  }
  for (const auto& [name, dv] : derivations_) {
    (void)name;
    program.derivations.push_back(dv);
  }
  return program;
}

// ---------------------------------------------------------------------
// Journal replay
// ---------------------------------------------------------------------

Status VirtualDataCatalog::ApplyRecord(const std::string& record) {
  VDG_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                       codec::SplitRecord(record));
  if (fields.empty()) return Status::ParseError("empty journal record");
  const std::string& tag = fields[0];

  if (tag == "DS" || tag == "TR" || tag == "DV") {
    if (fields.size() < 2) {
      return Status::ParseError("object record missing VDL text");
    }
    VDG_ASSIGN_OR_RETURN(VdlProgram program, ParseVdl(fields[1]));
    VDG_ASSIGN_OR_RETURN(AttributeSet attrs,
                         codec::ParseAttributes(fields, 2));
    if (tag == "DS" && program.datasets.size() == 1) {
      Dataset ds = std::move(program.datasets[0]);
      ds.annotations = std::move(attrs);
      return DefineDatasetLocked(std::move(ds));
    }
    if (tag == "TR" && program.transformations.size() == 1) {
      Transformation tr = std::move(program.transformations[0]);
      tr.annotations() = std::move(attrs);
      return DefineTransformationLocked(std::move(tr));
    }
    if (tag == "DV" && program.derivations.size() == 1) {
      Derivation dv = std::move(program.derivations[0]);
      dv.annotations() = std::move(attrs);
      auto existing = derivations_.find(dv.name());
      if (existing != derivations_.end()) {
        // A re-emitted define is an annotation upsert (the live path
        // rejects duplicate names, so the signature is unchanged).
        // Don't re-validate inputs: they were valid when the original
        // define was journaled and may have been removed since.
        existing->second.annotations() = dv.annotations();
        return Status::OK();
      }
      return DefineDerivationLocked(std::move(dv));
    }
    return Status::ParseError("record tag/content mismatch: " + tag);
  }
  if (tag == "RP") {
    VDG_ASSIGN_OR_RETURN(Replica r, codec::DecodeReplica(fields));
    // Upsert semantics: replica re-puts carry annotation/invalidation
    // updates.
    auto existing = replicas_.find(r.id);
    if (existing != replicas_.end()) {
      NoteReplicaState(&existing->second, &r);
      replicas_.insert_or_assign(r.id, std::move(r));
      return Status::OK();
    }
    Result<std::string> added = AddReplicaLocked(std::move(r));
    return added.ok() ? Status::OK() : added.status();
  }
  if (tag == "IV") {
    VDG_ASSIGN_OR_RETURN(Invocation iv, codec::DecodeInvocation(fields));
    if (invocations_.count(iv.id) != 0) {
      invocations_.insert_or_assign(iv.id, std::move(iv));
      return Status::OK();
    }
    return RecordInvocationLocked(std::move(iv)).status();
  }
  if (tag == "TY") {
    if (fields.size() < 4) return Status::ParseError("short TY record");
    int dim = static_cast<int>(std::strtol(fields[1].c_str(), nullptr, 10));
    if (dim < 0 || dim >= kNumTypeDimensions) {
      return Status::ParseError("bad TY dimension");
    }
    return DefineTypeLocked(static_cast<TypeDimension>(dim), fields[2],
                            fields[3]);
  }
  if (tag.size() == 2 && tag[0] == 'X') {
    if (fields.size() < 2) return Status::ParseError("removal missing name");
    const std::string& name = fields[1];
    switch (tag[1]) {
      case 'S':
        return RemoveDatasetLocked(name);
      case 'T':
        return RemoveTransformationLocked(name);
      case 'D':
        return RemoveDerivationLocked(name);
      case 'R':
        return RemoveReplicaLocked(name);
      default:
        return Status::ParseError("unknown removal tag: " + tag);
    }
  }
  return Status::ParseError("unknown journal record tag: " + tag);
}

}  // namespace vdg
