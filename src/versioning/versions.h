#ifndef VDG_VERSIONING_VERSIONS_H_
#define VDG_VERSIONING_VERSIONS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace vdg {

/// Structured transformation versioning (Section 8: "it is important
/// that we be able not only to track precisely what version of a
/// transformation was executed ... but also to express 'equivalence'
/// among different versions").
///
/// Versions are registered as an ordered chain per logical
/// transformation name; *compatibility assertions* declare that two
/// concrete transformation names produce equivalent results, merging
/// their equivalence classes (union-find). The dedup machinery can
/// then recognize a derivation as already-computed even when it names
/// a different-but-asserted-equivalent version.
class TransformationVersionGraph {
 public:
  /// Registers `version_name` (a concrete catalog transformation name,
  /// e.g. "maxBcg-v2") as a version of logical `family` following any
  /// previously registered versions of that family.
  Status RegisterVersion(std::string_view family,
                         std::string_view version_name);

  /// Versions of `family`, oldest first.
  std::vector<std::string> VersionsOf(std::string_view family) const;
  /// The most recently registered version; NotFound for unknown
  /// families.
  Result<std::string> LatestOf(std::string_view family) const;
  /// The family a version belongs to; NotFound if unregistered.
  Result<std::string> FamilyOf(std::string_view version_name) const;

  /// Asserts that results of `a` and `b` are interchangeable. Both
  /// sides are auto-registered as singleton versions if unknown.
  /// Symmetric and transitive (classes merge).
  Status AssertEquivalent(std::string_view a, std::string_view b);

  /// True when an equivalence chain connects `a` and `b` (reflexive).
  bool AreEquivalent(std::string_view a, std::string_view b) const;
  /// Every name asserted equivalent to `name` (including itself).
  std::vector<std::string> EquivalenceClassOf(std::string_view name) const;

  size_t version_count() const { return parent_.size(); }

 private:
  /// Union-find root, path-halving. Unknown names are their own root.
  std::string Find(std::string name) const;

  mutable std::map<std::string, std::string, std::less<>> parent_;
  std::map<std::string, std::vector<std::string>, std::less<>> families_;
  std::map<std::string, std::string, std::less<>> family_of_;
};

/// Version-aware dedup: like VirtualDataCatalog::FindEquivalentDerivation
/// but also matching derivations whose transformation is a different,
/// asserted-equivalent version. Returns the matched derivation name.
Result<std::string> FindEquivalentDerivationModuloVersion(
    const VirtualDataCatalog& catalog,
    const TransformationVersionGraph& versions,
    const Derivation& derivation);

/// Version-aware "has this been computed?": true when some equivalent
/// (modulo version) derivation exists with all outputs materialized.
bool HasBeenComputedModuloVersion(const VirtualDataCatalog& catalog,
                                  const TransformationVersionGraph& versions,
                                  const Derivation& derivation);

/// One entry of a dataset's update log (Section 8: "dealing with
/// 'update' as an operation a proc can perform on a DS; this maintains
/// provenance but loses re-createability unless there is a transaction
/// log for some type of undo operation").
struct UpdateRecord {
  uint64_t sequence = 0;       // 1-based position in the dataset's log
  std::string dataset;
  std::string derivation;      // the updating derivation
  SimTime updated_at = 0;
  int64_t size_before = 0;
  int64_t size_after = 0;
  std::string note;            // free-form description of the change
};

/// Transaction log for in-place dataset updates, restoring
/// re-createability: an updated dataset's state is
/// (producing derivation) + (the ordered update suffix), and Undo
/// rolls the suffix back.
class DatasetUpdateLog {
 public:
  /// Appends an update performed by `derivation` on `dataset`.
  Result<UpdateRecord> RecordUpdate(VirtualDataCatalog* catalog,
                                    std::string_view dataset,
                                    std::string_view derivation,
                                    int64_t size_after, SimTime now,
                                    std::string note = "");

  /// The dataset's updates, oldest first.
  std::vector<UpdateRecord> HistoryOf(std::string_view dataset) const;
  /// Number of updates applied to `dataset`.
  uint64_t UpdateCountOf(std::string_view dataset) const;

  /// Rolls back the most recent update: restores the catalog's
  /// recorded size and pops the log entry. FailedPrecondition when no
  /// updates remain.
  Result<UpdateRecord> UndoLastUpdate(VirtualDataCatalog* catalog,
                                      std::string_view dataset);

  /// True when the dataset's current state is reproducible from its
  /// derivation alone (i.e. the update log is empty).
  bool IsPristine(std::string_view dataset) const {
    return UpdateCountOf(dataset) == 0;
  }

 private:
  std::map<std::string, std::vector<UpdateRecord>, std::less<>> logs_;
};

}  // namespace vdg

#endif  // VDG_VERSIONING_VERSIONS_H_
