#include "versioning/versions.h"

#include "common/strings.h"

namespace vdg {

std::string TransformationVersionGraph::Find(std::string name) const {
  while (true) {
    auto it = parent_.find(name);
    if (it == parent_.end() || it->second == name) return name;
    // Path halving keeps later lookups cheap.
    auto grand = parent_.find(it->second);
    if (grand != parent_.end()) it->second = grand->second;
    name = it->second;
  }
}

Status TransformationVersionGraph::RegisterVersion(
    std::string_view family, std::string_view version_name) {
  if (!IsValidIdentifier(family) || !IsValidIdentifier(version_name)) {
    return Status::InvalidArgument("invalid family or version name");
  }
  if (family_of_.count(version_name) != 0) {
    return Status::AlreadyExists("version already registered: " +
                                 std::string(version_name));
  }
  family_of_.emplace(std::string(version_name), std::string(family));
  families_[std::string(family)].push_back(std::string(version_name));
  parent_.emplace(std::string(version_name), std::string(version_name));
  return Status::OK();
}

std::vector<std::string> TransformationVersionGraph::VersionsOf(
    std::string_view family) const {
  auto it = families_.find(family);
  if (it == families_.end()) return {};
  return it->second;
}

Result<std::string> TransformationVersionGraph::LatestOf(
    std::string_view family) const {
  auto it = families_.find(family);
  if (it == families_.end() || it->second.empty()) {
    return Status::NotFound("unknown transformation family: " +
                            std::string(family));
  }
  return it->second.back();
}

Result<std::string> TransformationVersionGraph::FamilyOf(
    std::string_view version_name) const {
  auto it = family_of_.find(version_name);
  if (it == family_of_.end()) {
    return Status::NotFound("unregistered version: " +
                            std::string(version_name));
  }
  return it->second;
}

Status TransformationVersionGraph::AssertEquivalent(std::string_view a,
                                                    std::string_view b) {
  if (!IsValidIdentifier(a) || !IsValidIdentifier(b)) {
    return Status::InvalidArgument("invalid transformation name");
  }
  // Auto-register unknown names as singleton families.
  for (std::string_view name : {a, b}) {
    if (family_of_.count(name) == 0) {
      VDG_RETURN_IF_ERROR(RegisterVersion(name, name));
    }
  }
  std::string ra = Find(std::string(a));
  std::string rb = Find(std::string(b));
  if (ra != rb) parent_[ra] = rb;
  return Status::OK();
}

bool TransformationVersionGraph::AreEquivalent(std::string_view a,
                                               std::string_view b) const {
  if (a == b) return true;
  return Find(std::string(a)) == Find(std::string(b));
}

std::vector<std::string> TransformationVersionGraph::EquivalenceClassOf(
    std::string_view name) const {
  std::string root = Find(std::string(name));
  std::vector<std::string> out;
  bool saw_self = false;
  for (const auto& [member, parent] : parent_) {
    (void)parent;
    if (Find(member) == root) {
      out.push_back(member);
      if (member == name) saw_self = true;
    }
  }
  if (!saw_self) out.push_back(std::string(name));
  return out;
}

Result<std::string> FindEquivalentDerivationModuloVersion(
    const VirtualDataCatalog& catalog,
    const TransformationVersionGraph& versions,
    const Derivation& derivation) {
  // Exact match first (cheapest, and correct when versions are equal).
  Result<std::string> exact = catalog.FindEquivalentDerivation(derivation);
  if (exact.ok()) return exact;

  for (const std::string& alias :
       versions.EquivalenceClassOf(derivation.transformation())) {
    if (alias == derivation.transformation()) continue;
    Derivation retargeted = derivation;
    retargeted.set_transformation(alias);
    Result<std::string> hit = catalog.FindEquivalentDerivation(retargeted);
    if (hit.ok()) return hit;
  }
  return Status::NotFound(
      "no equivalent derivation (even modulo version assertions)");
}

bool HasBeenComputedModuloVersion(const VirtualDataCatalog& catalog,
                                  const TransformationVersionGraph& versions,
                                  const Derivation& derivation) {
  Result<std::string> hit =
      FindEquivalentDerivationModuloVersion(catalog, versions, derivation);
  if (!hit.ok()) return false;
  Result<Derivation> existing = catalog.GetDerivation(*hit);
  if (!existing.ok()) return false;
  std::vector<std::string> outputs = existing->OutputDatasets();
  if (outputs.empty()) return false;
  for (const std::string& output : outputs) {
    if (!catalog.IsMaterialized(output)) return false;
  }
  return true;
}

Result<UpdateRecord> DatasetUpdateLog::RecordUpdate(
    VirtualDataCatalog* catalog, std::string_view dataset,
    std::string_view derivation, int64_t size_after, SimTime now,
    std::string note) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  VDG_ASSIGN_OR_RETURN(Dataset ds, catalog->GetDataset(dataset));
  if (!derivation.empty() && !catalog->HasDerivation(derivation)) {
    return Status::NotFound("updating derivation not defined: " +
                            std::string(derivation));
  }
  UpdateRecord record;
  record.dataset = std::string(dataset);
  record.derivation = std::string(derivation);
  record.updated_at = now;
  record.size_before = ds.size_bytes;
  record.size_after = size_after;
  record.note = std::move(note);

  auto& log = logs_[std::string(dataset)];
  record.sequence = log.size() + 1;
  VDG_RETURN_IF_ERROR(catalog->SetDatasetSize(dataset, size_after));
  VDG_RETURN_IF_ERROR(catalog->Annotate(
      "dataset", dataset, "vdg.updates",
      AttributeValue(static_cast<int64_t>(record.sequence))));
  log.push_back(record);
  return record;
}

std::vector<UpdateRecord> DatasetUpdateLog::HistoryOf(
    std::string_view dataset) const {
  auto it = logs_.find(dataset);
  if (it == logs_.end()) return {};
  return it->second;
}

uint64_t DatasetUpdateLog::UpdateCountOf(std::string_view dataset) const {
  auto it = logs_.find(dataset);
  return it == logs_.end() ? 0 : it->second.size();
}

Result<UpdateRecord> DatasetUpdateLog::UndoLastUpdate(
    VirtualDataCatalog* catalog, std::string_view dataset) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  auto it = logs_.find(dataset);
  if (it == logs_.end() || it->second.empty()) {
    return Status::FailedPrecondition("no updates to undo for " +
                                      std::string(dataset));
  }
  UpdateRecord undone = it->second.back();
  VDG_RETURN_IF_ERROR(catalog->SetDatasetSize(dataset, undone.size_before));
  it->second.pop_back();
  VDG_RETURN_IF_ERROR(catalog->Annotate(
      "dataset", dataset, "vdg.updates",
      AttributeValue(static_cast<int64_t>(it->second.size()))));
  if (it->second.empty()) logs_.erase(it);
  return undone;
}

}  // namespace vdg
