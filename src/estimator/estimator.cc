#include "estimator/estimator.h"

#include <cmath>

namespace vdg {

void WelfordAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double WelfordAccumulator::stddev() const {
  if (count_ < 2) return 0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void CostEstimator::RecordRuntime(std::string_view transformation,
                                  std::string_view site, double seconds) {
  by_tr_site_[Key(transformation, site)].Add(seconds);
  by_transformation_[std::string(transformation)].Add(seconds);
}

void CostEstimator::RecordOutputSize(std::string_view transformation,
                                     int64_t bytes) {
  output_sizes_[std::string(transformation)].Add(
      static_cast<double>(bytes));
}

Status CostEstimator::LearnFromCatalog(const VirtualDataCatalog& catalog) {
  for (std::string_view dv_name : catalog.AllDerivationNames()) {
    VDG_ASSIGN_OR_RETURN(Derivation dv, catalog.GetDerivation(dv_name));
    std::string tr = dv.QualifiedTransformation();
    for (const Invocation& iv : catalog.InvocationsOf(dv_name)) {
      if (!iv.succeeded) continue;
      RecordRuntime(tr, iv.context.site, iv.duration_s);
    }
    for (const std::string& output : dv.OutputDatasets()) {
      Result<Dataset> ds = catalog.GetDataset(output);
      if (ds.ok() && ds->size_bytes > 0) {
        RecordOutputSize(tr, ds->size_bytes);
      }
    }
  }
  return Status::OK();
}

double CostEstimator::EstimateRuntime(std::string_view transformation,
                                      std::string_view site) const {
  auto local = by_tr_site_.find(Key(transformation, site));
  if (local != by_tr_site_.end() && local->second.count() > 0) {
    return local->second.mean();
  }
  auto global = by_transformation_.find(transformation);
  if (global != by_transformation_.end() && global->second.count() > 0) {
    return global->second.mean();
  }
  return default_runtime_;
}

double CostEstimator::EstimateRuntimeUpperBound(
    std::string_view transformation, std::string_view site,
    double z) const {
  auto local = by_tr_site_.find(Key(transformation, site));
  if (local != by_tr_site_.end() && local->second.count() > 0) {
    return local->second.mean() + z * local->second.stddev();
  }
  auto global = by_transformation_.find(transformation);
  if (global != by_transformation_.end() && global->second.count() > 0) {
    return global->second.mean() + z * global->second.stddev();
  }
  return default_runtime_;
}

int64_t CostEstimator::EstimateOutputSize(
    std::string_view transformation) const {
  auto it = output_sizes_.find(transformation);
  if (it == output_sizes_.end() || it->second.count() == 0) return 0;
  return static_cast<int64_t>(it->second.mean());
}

double CostEstimator::EstimateTransfer(const GridTopology& topology,
                                       std::string_view from,
                                       std::string_view to,
                                       int64_t bytes) const {
  return topology.TransferSeconds(from, to, bytes);
}

uint64_t CostEstimator::ObservationCount(std::string_view transformation,
                                         std::string_view site) const {
  if (site.empty()) {
    auto it = by_transformation_.find(transformation);
    return it == by_transformation_.end() ? 0 : it->second.count();
  }
  auto it = by_tr_site_.find(Key(transformation, site));
  return it == by_tr_site_.end() ? 0 : it->second.count();
}

}  // namespace vdg
