#ifndef VDG_ESTIMATOR_ESTIMATOR_H_
#define VDG_ESTIMATOR_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "grid/topology.h"

namespace vdg {

/// Streaming mean/variance accumulator (Welford's algorithm).
class WelfordAccumulator {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample standard deviation; 0 with fewer than two samples.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Cost estimation (Section 5.3): predicts derivation runtimes and
/// transfer times from the statistics recorded with past invocations —
/// "resource requirements recorded with provenance information can be
/// used to guide subsequent planning decisions" (Section 2).
///
/// Runtime prediction resolution order:
///   1. per-(transformation, site) history,
///   2. per-transformation history across sites,
///   3. the configured default.
class CostEstimator {
 public:
  CostEstimator() = default;

  /// Runtime assumed for transformations never seen before.
  void set_default_runtime(double seconds) { default_runtime_ = seconds; }
  double default_runtime() const { return default_runtime_; }

  /// Records one observed execution.
  void RecordRuntime(std::string_view transformation, std::string_view site,
                     double seconds);
  /// Records one observed output volume of a transformation.
  void RecordOutputSize(std::string_view transformation, int64_t bytes);

  /// Ingests every successful invocation already recorded in
  /// `catalog` (duration + site, resolved through the derivation).
  Status LearnFromCatalog(const VirtualDataCatalog& catalog);

  /// Predicted runtime of `transformation` at `site`.
  double EstimateRuntime(std::string_view transformation,
                         std::string_view site) const;

  /// Conservative runtime: mean + `z` standard deviations over the
  /// best available history (z = 0 reduces to EstimateRuntime; z ~= 2
  /// gives a ~97.7th-percentile bound under normal noise). Interactive
  /// feasibility questions ("can I have it within an hour?") should
  /// use this rather than the mean — a deadline met on average is
  /// missed half the time.
  double EstimateRuntimeUpperBound(std::string_view transformation,
                                   std::string_view site, double z) const;
  /// Predicted output bytes (default 0 when unobserved).
  int64_t EstimateOutputSize(std::string_view transformation) const;

  /// Predicted seconds to move `bytes` between sites.
  double EstimateTransfer(const GridTopology& topology,
                          std::string_view from, std::string_view to,
                          int64_t bytes) const;

  /// Number of runtime observations for (transformation, site);
  /// site="" aggregates across sites.
  uint64_t ObservationCount(std::string_view transformation,
                            std::string_view site = "") const;

  size_t transformation_count() const { return by_transformation_.size(); }

 private:
  static std::string Key(std::string_view tr, std::string_view site) {
    return std::string(tr) + "@" + std::string(site);
  }

  std::map<std::string, WelfordAccumulator, std::less<>> by_tr_site_;
  std::map<std::string, WelfordAccumulator, std::less<>> by_transformation_;
  std::map<std::string, WelfordAccumulator, std::less<>> output_sizes_;
  double default_runtime_ = 60.0;
};

}  // namespace vdg

#endif  // VDG_ESTIMATOR_ESTIMATOR_H_
