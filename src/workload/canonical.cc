#include "workload/canonical.h"

#include <deque>
#include <set>

#include "common/rng.h"

namespace vdg {
namespace workload {

std::set<std::string> CanonicalGraph::TrueAncestors(
    const std::string& dataset) const {
  std::set<std::string> seen;
  std::deque<std::string> frontier{dataset};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    auto it = truth_inputs.find(current);
    if (it == truth_inputs.end()) continue;  // raw input
    for (const std::string& input : it->second) {
      if (seen.insert(input).second) frontier.push_back(input);
    }
  }
  return seen;
}

Result<CanonicalGraph> GenerateCanonicalGraph(
    VirtualDataCatalog* catalog, const CanonicalGraphOptions& options) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  if (options.num_raw_inputs == 0 || options.num_transformations == 0) {
    return Status::InvalidArgument(
        "canonical graph needs raw inputs and transformations");
  }
  Rng rng(options.seed);
  CanonicalGraph graph;

  // Content type for this graph's datasets.
  std::string type_name = options.prefix + "-data";
  Status type_status = catalog->DefineType(
      TypeDimension::kContent, type_name,
      TypeDimensionBaseName(TypeDimension::kContent));
  if (!type_status.ok() && !type_status.IsAlreadyExists()) {
    return type_status;
  }
  DatasetType data_type;
  data_type.content = type_name;

  // Transformations with varying arity: canon-trK takes K%max+1
  // inputs, a couple of tuning strings, and one output.
  for (size_t t = 0; t < options.num_transformations; ++t) {
    Transformation tr(options.prefix + "-tr" + std::to_string(t),
                      Transformation::Kind::kSimple);
    int inputs = 1 + static_cast<int>(
                         t % static_cast<size_t>(
                                 options.max_inputs_per_derivation));
    FormalArg out;
    out.name = "out";
    out.direction = ArgDirection::kOut;
    out.types = {data_type};
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(out)));
    // Every third shape writes a second output (log/sideband file),
    // exercising multi-output provenance.
    bool dual_output = t % 3 == 2;
    if (dual_output) {
      FormalArg aux;
      aux.name = "aux";
      aux.direction = ArgDirection::kOut;
      aux.types = {data_type};
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(aux)));
      ArgumentTemplate aux_template;
      aux_template.name = "aux";
      aux_template.expr = {TemplatePiece::Literal("-x "),
                           TemplatePiece::Ref("aux", ArgDirection::kOut)};
      tr.AddArgumentTemplate(std::move(aux_template));
    }
    for (int i = 0; i < inputs; ++i) {
      FormalArg in;
      in.name = "in" + std::to_string(i);
      in.direction = ArgDirection::kIn;
      in.types = {data_type};
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(in)));
      ArgumentTemplate arg_template;
      arg_template.name = "f" + std::to_string(i);
      arg_template.expr = {TemplatePiece::Literal("-i "),
                           TemplatePiece::Ref("in" + std::to_string(i),
                                              ArgDirection::kIn)};
      tr.AddArgumentTemplate(std::move(arg_template));
    }
    int strings = static_cast<int>(t) % (options.max_string_args + 1);
    for (int s = 0; s < strings; ++s) {
      FormalArg param;
      param.name = "p" + std::to_string(s);
      param.direction = ArgDirection::kNone;
      param.default_string = std::to_string(100 * (s + 1));
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(param)));
    }
    ArgumentTemplate stdout_template;
    stdout_template.name = "stdout";
    stdout_template.expr = {TemplatePiece::Ref("out", ArgDirection::kOut)};
    tr.AddArgumentTemplate(std::move(stdout_template));
    tr.set_executable("/usr/bin/" + options.prefix + "-app" +
                      std::to_string(t));
    tr.annotations().Set("sim.runtime_s", options.runtime_mean_s);
    tr.annotations().Set("sim.output_mb", options.output_mb);
    VDG_RETURN_IF_ERROR(catalog->DefineTransformation(std::move(tr)));
  }

  // Raw inputs.
  for (size_t i = 0; i < options.num_raw_inputs; ++i) {
    Dataset ds;
    ds.name = options.prefix + "-raw" + std::to_string(i);
    ds.type = data_type;
    ds.size_bytes = static_cast<int64_t>(options.output_mb * 1024 * 1024);
    ds.descriptor = DatasetDescriptor::File("/raw/" + ds.name);
    graph.raw_inputs.push_back(ds.name);
    VDG_RETURN_IF_ERROR(catalog->DefineDataset(std::move(ds)));
  }

  // Derivations: each consumes random earlier datasets.
  std::vector<std::string> pool = graph.raw_inputs;
  std::set<std::string> consumed;
  for (size_t d = 0; d < options.num_derivations; ++d) {
    size_t tr_index = rng.Index(options.num_transformations);
    std::string tr_name =
        options.prefix + "-tr" + std::to_string(tr_index);
    VDG_ASSIGN_OR_RETURN(Transformation tr,
                         catalog->GetTransformation(tr_name));

    Derivation dv(options.prefix + "-dv" + std::to_string(d), tr_name);
    std::string output = options.prefix + "-out" + std::to_string(d);
    VDG_RETURN_IF_ERROR(
        dv.AddArg(ActualArg::DatasetRef("out", output, ArgDirection::kOut)));
    std::string aux_output;
    if (tr.FindArg("aux") != nullptr) {
      aux_output = output + ".aux";
      VDG_RETURN_IF_ERROR(dv.AddArg(
          ActualArg::DatasetRef("aux", aux_output, ArgDirection::kOut)));
    }

    std::vector<std::string> inputs;
    for (const FormalArg& formal : tr.args()) {
      if (formal.is_string()) {
        // Bind half the strings explicitly; rest use defaults.
        if (rng.Chance(0.5)) {
          VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::String(
              formal.name, std::to_string(rng.UniformInt(1, 1000)))));
        }
        continue;
      }
      if (formal.direction != ArgDirection::kIn) continue;
      const std::string& input = pool[rng.Index(pool.size())];
      VDG_RETURN_IF_ERROR(dv.AddArg(
          ActualArg::DatasetRef(formal.name, input, ArgDirection::kIn)));
      inputs.push_back(input);
      consumed.insert(input);
    }

    VDG_RETURN_IF_ERROR(catalog->DefineDerivation(std::move(dv)));
    graph.derivations.push_back(options.prefix + "-dv" + std::to_string(d));
    graph.outputs.push_back(output);
    if (!aux_output.empty()) {
      graph.aux_outputs.push_back(aux_output);
      graph.truth_inputs.emplace(aux_output, inputs);
      pool.push_back(aux_output);
    }
    graph.truth_inputs.emplace(output, std::move(inputs));
    pool.push_back(output);
  }

  for (const std::string& output : graph.outputs) {
    if (consumed.count(output) == 0) graph.sinks.push_back(output);
  }
  return graph;
}

}  // namespace workload
}  // namespace vdg
