#include "workload/hep.h"

namespace vdg {
namespace workload {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;

Status EnsureContentType(VirtualDataCatalog* catalog,
                         const std::string& name,
                         const std::string& parent) {
  if (catalog->HasType(TypeDimension::kContent, name)) return Status::OK();
  if (!catalog->HasType(TypeDimension::kContent, parent) &&
      parent != TypeDimensionBaseName(TypeDimension::kContent)) {
    VDG_RETURN_IF_ERROR(catalog->DefineType(
        TypeDimension::kContent, parent,
        TypeDimensionBaseName(TypeDimension::kContent)));
  }
  return catalog->DefineType(TypeDimension::kContent, name, parent);
}

struct StageSpec {
  const char* suffix;
  const char* input_formal;
  const char* output_formal;
  const char* output_content;
  const char* exec;
};

}  // namespace

Result<HepWorkload> GenerateHep(VirtualDataCatalog* catalog,
                                const HepOptions& options) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  if (options.num_batches <= 0) {
    return Status::InvalidArgument("HEP workload needs batches");
  }

  // CMS content tree (subset of Appendix C, defined on demand).
  VDG_RETURN_IF_ERROR(EnsureContentType(catalog, "CMS-config", "CMS"));
  VDG_RETURN_IF_ERROR(EnsureContentType(catalog, "Simulation", "CMS"));
  VDG_RETURN_IF_ERROR(
      EnsureContentType(catalog, "Zebra-file", "Simulation"));
  VDG_RETURN_IF_ERROR(EnsureContentType(catalog, "Analysis", "CMS"));
  VDG_RETURN_IF_ERROR(
      EnsureContentType(catalog, "Reco-objects", "Analysis"));
  VDG_RETURN_IF_ERROR(
      EnsureContentType(catalog, "PAW-ntuple-file", "Analysis"));

  auto content_type = [](const char* name) {
    DatasetType type;
    type.content = name;
    return type;
  };

  const StageSpec stages[4] = {
      {"generate", "config", "events", "Simulation", "/cms/bin/cmkin"},
      {"simulate", "events", "hits", "Zebra-file", "/cms/bin/cmsim"},
      {"reconstruct", "hits", "reco", "Reco-objects", "/cms/bin/orca"},
      {"analyze", "reco", "ntuple", "PAW-ntuple-file", "/cms/bin/paw"},
  };
  const char* input_content[4] = {"CMS-config", "Simulation", "Zebra-file",
                                  "Reco-objects"};

  // Every dataset/transformation/derivation definition accumulates
  // into one batch, committed at the end under a single catalog lock
  // acquisition, version bump, and journal flush.
  std::vector<CatalogMutation> defs;
  HepWorkload workload;
  for (int s = 0; s < 4; ++s) {
    const StageSpec& spec = stages[s];
    Transformation tr(options.prefix + "-" + spec.suffix,
                      Transformation::Kind::kSimple);
    FormalArg in;
    in.name = spec.input_formal;
    in.direction = ArgDirection::kIn;
    in.types = {content_type(input_content[s])};
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(in)));
    FormalArg out;
    out.name = spec.output_formal;
    out.direction = ArgDirection::kOut;
    out.types = {content_type(spec.output_content)};
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(out)));
    if (s == 0) {
      FormalArg nevents;
      nevents.name = "nevents";
      nevents.direction = ArgDirection::kNone;
      nevents.default_string = "1000";
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(nevents)));
      ArgumentTemplate n_arg;
      n_arg.name = "nevents";
      n_arg.expr = {TemplatePiece::Literal("-n "),
                    TemplatePiece::Ref("nevents", ArgDirection::kNone)};
      tr.AddArgumentTemplate(std::move(n_arg));
    }
    ArgumentTemplate in_arg;
    in_arg.name = "stdin";
    in_arg.expr = {TemplatePiece::Ref(spec.input_formal, ArgDirection::kIn)};
    tr.AddArgumentTemplate(std::move(in_arg));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref(spec.output_formal,
                                       ArgDirection::kOut)};
    tr.AddArgumentTemplate(std::move(out_arg));
    tr.set_executable(spec.exec);
    tr.SetEnv("CMS_STAGE", {TemplatePiece::Literal(spec.suffix)});
    tr.annotations().Set("sim.runtime_s", options.stage_runtime_s[s]);
    tr.annotations().Set("sim.output_mb", options.stage_output_mb[s]);
    tr.annotations().Set("science", "physics");
    defs.push_back(CatalogMutation::DefineTransformation(std::move(tr)));
    ++workload.transformation_count;
  }

  if (options.use_compound) {
    Transformation pipeline(options.prefix + "-pipeline",
                            Transformation::Kind::kCompound);
    FormalArg config{.name = "config",
                     .direction = ArgDirection::kIn,
                     .types = {content_type("CMS-config")}};
    FormalArg ntuple{.name = "ntuple",
                     .direction = ArgDirection::kOut,
                     .types = {content_type("PAW-ntuple-file")}};
    FormalArg nevents{.name = "nevents", .direction = ArgDirection::kNone};
    nevents.default_string = "1000";
    VDG_RETURN_IF_ERROR(pipeline.AddArg(std::move(config)));
    VDG_RETURN_IF_ERROR(pipeline.AddArg(std::move(ntuple)));
    VDG_RETURN_IF_ERROR(pipeline.AddArg(std::move(nevents)));
    const char* temps[3] = {"events", "hits", "reco"};
    const char* temp_content[3] = {"Simulation", "Zebra-file",
                                   "Reco-objects"};
    for (int t = 0; t < 3; ++t) {
      FormalArg temp;
      temp.name = temps[t];
      temp.direction = ArgDirection::kInOut;
      temp.types = {content_type(temp_content[t])};
      temp.default_dataset = std::string("scratch-") + temps[t];
      VDG_RETURN_IF_ERROR(pipeline.AddArg(std::move(temp)));
    }
    CompoundCall gen;
    gen.callee = options.prefix + "-generate";
    gen.bindings = {
        {"config", TemplatePiece::Ref("config", ArgDirection::kIn)},
        {"events", TemplatePiece::Ref("events", ArgDirection::kOut)},
        {"nevents", TemplatePiece::Ref("nevents")}};
    pipeline.AddCall(std::move(gen));
    CompoundCall sim;
    sim.callee = options.prefix + "-simulate";
    sim.bindings = {
        {"events", TemplatePiece::Ref("events", ArgDirection::kIn)},
        {"hits", TemplatePiece::Ref("hits", ArgDirection::kOut)}};
    pipeline.AddCall(std::move(sim));
    CompoundCall reco;
    reco.callee = options.prefix + "-reconstruct";
    reco.bindings = {
        {"hits", TemplatePiece::Ref("hits", ArgDirection::kIn)},
        {"reco", TemplatePiece::Ref("reco", ArgDirection::kOut)}};
    pipeline.AddCall(std::move(reco));
    CompoundCall ana;
    ana.callee = options.prefix + "-analyze";
    ana.bindings = {
        {"reco", TemplatePiece::Ref("reco", ArgDirection::kIn)},
        {"ntuple", TemplatePiece::Ref("ntuple", ArgDirection::kOut)}};
    pipeline.AddCall(std::move(ana));
    pipeline.annotations().Set("science", "physics");
    defs.push_back(CatalogMutation::DefineTransformation(std::move(pipeline)));
    ++workload.transformation_count;
  }

  // Raw generator configurations + per-batch derivation chains with
  // multi-modal descriptors.
  for (int b = 0; b < options.num_batches; ++b) {
    std::string batch = options.prefix + ".batch" + std::to_string(b);
    Dataset config;
    config.name = batch + ".config";
    config.type.content = "CMS-config";
    config.size_bytes = 64 * 1024;
    config.descriptor = DatasetDescriptor::File("/cms/cfg/" + batch);
    defs.push_back(CatalogMutation::DefineDataset(std::move(config)));
    workload.config_datasets.push_back(batch + ".config");

    std::string ntuple = batch + ".ntuple";
    if (options.use_compound) {
      Derivation dv(options.prefix + "-batch" + std::to_string(b),
                    options.prefix + "-pipeline");
      VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
          "config", batch + ".config", ArgDirection::kIn)));
      VDG_RETURN_IF_ERROR(dv.AddArg(
          ActualArg::DatasetRef("ntuple", ntuple, ArgDirection::kOut)));
      VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::String(
          "nevents", std::to_string(options.events_per_batch))));
      defs.push_back(CatalogMutation::DefineDerivation(std::move(dv)));
      workload.derivations.push_back(options.prefix + "-batch" +
                                     std::to_string(b));
      std::string dv_name =
          options.prefix + "-batch" + std::to_string(b);
      workload.intermediates.push_back({dv_name + ".events",
                                        dv_name + ".hits",
                                        dv_name + ".reco"});
    } else {
      const char* stage_tr[4] = {"generate", "simulate", "reconstruct",
                                 "analyze"};
      std::string stage_outputs[4] = {batch + ".events", batch + ".hits",
                                      batch + ".reco", ntuple};
      // Multi-modal intermediate descriptors: Zebra file, OODB object
      // closure, then a plain ntuple file.
      Dataset hits;
      hits.name = batch + ".hits";
      hits.type.content = "Zebra-file";
      hits.descriptor = DatasetDescriptor::FileSet(
          {"/cms/zebra/" + batch + ".1", "/cms/zebra/" + batch + ".2"});
      defs.push_back(CatalogMutation::DefineDataset(std::move(hits)));
      Dataset reco;
      reco.name = batch + ".reco";
      reco.type.content = "Reco-objects";
      reco.descriptor =
          DatasetDescriptor::ObjectClosure("objy://cms-db", batch);
      defs.push_back(CatalogMutation::DefineDataset(std::move(reco)));

      std::string prev = batch + ".config";
      const char* in_formal[4] = {"config", "events", "hits", "reco"};
      const char* out_formal[4] = {"events", "hits", "reco", "ntuple"};
      for (int s = 0; s < 4; ++s) {
        Derivation dv(options.prefix + "-b" + std::to_string(b) + "-" +
                          stage_tr[s],
                      options.prefix + "-" + stage_tr[s]);
        VDG_RETURN_IF_ERROR(dv.AddArg(
            ActualArg::DatasetRef(in_formal[s], prev, ArgDirection::kIn)));
        VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
            out_formal[s], stage_outputs[s], ArgDirection::kOut)));
        if (s == 0) {
          VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::String(
              "nevents", std::to_string(options.events_per_batch))));
        }
        defs.push_back(CatalogMutation::DefineDerivation(std::move(dv)));
        prev = stage_outputs[s];
      }
      workload.derivations.push_back(options.prefix + "-b" +
                                     std::to_string(b) + "-analyze");
      workload.intermediates.push_back(
          {stage_outputs[0], stage_outputs[1], stage_outputs[2]});
    }
    workload.ntuples.push_back(ntuple);
  }
  BatchOptions commit;
  commit.stop_on_error = true;  // later defs reference earlier ones
  VDG_RETURN_IF_ERROR(catalog->ApplyBatch(defs, commit).first_error);
  return workload;
}

}  // namespace workload
}  // namespace vdg
