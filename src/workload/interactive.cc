#include "workload/interactive.h"

namespace vdg {
namespace workload {

Result<InteractiveWorkload> GenerateInteractive(
    VirtualDataCatalog* catalog, const InteractiveOptions& options) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  if (options.num_iterations <= 0 || options.cuts_per_iteration <= 0) {
    return Status::InvalidArgument("interactive workload needs iterations");
  }

  auto ensure_content = [catalog](const std::string& name) -> Status {
    if (catalog->HasType(TypeDimension::kContent, name)) {
      return Status::OK();
    }
    return catalog->DefineType(
        TypeDimension::kContent, name,
        TypeDimensionBaseName(TypeDimension::kContent));
  };
  VDG_RETURN_IF_ERROR(ensure_content("Event-store"));
  VDG_RETURN_IF_ERROR(ensure_content("Cut-set"));
  VDG_RETURN_IF_ERROR(ensure_content("Histogram"));
  VDG_RETURN_IF_ERROR(ensure_content("Physics-graph"));

  auto content_type = [](const char* name) {
    DatasetType type;
    type.content = name;
    return type;
  };

  InteractiveWorkload workload;

  // The shared event store: rows in a relational store, the paper's
  // "multi-modal" case.
  Dataset events;
  events.name = options.prefix + ".events";
  events.type = content_type("Event-store");
  events.size_bytes = 512LL * 1024 * 1024;
  events.descriptor = DatasetDescriptor::SqlRows("cms-events", "events",
                                                 "run-1000", "run-2000");
  workload.event_store = events.name;
  VDG_RETURN_IF_ERROR(catalog->DefineDataset(std::move(events)));

  // Histogram combiner (one version is enough; the *analysis* code is
  // what changes between iterations).
  {
    Transformation hist(options.prefix + "-histogram",
                        Transformation::Kind::kSimple);
    FormalArg in{.name = "cuts",
                 .direction = ArgDirection::kIn,
                 .types = {content_type("Cut-set")}};
    FormalArg out{.name = "hist",
                  .direction = ArgDirection::kOut,
                  .types = {content_type("Histogram")}};
    FormalArg variable{.name = "variable", .direction = ArgDirection::kNone};
    variable.default_string = "pt";
    FormalArg bins{.name = "bins", .direction = ArgDirection::kNone};
    bins.default_string = std::to_string(options.points_per_histogram);
    VDG_RETURN_IF_ERROR(hist.AddArg(std::move(in)));
    VDG_RETURN_IF_ERROR(hist.AddArg(std::move(out)));
    VDG_RETURN_IF_ERROR(hist.AddArg(std::move(variable)));
    VDG_RETURN_IF_ERROR(hist.AddArg(std::move(bins)));
    ArgumentTemplate arg;
    arg.name = "stdin";
    arg.expr = {TemplatePiece::Ref("cuts", ArgDirection::kIn)};
    hist.AddArgumentTemplate(std::move(arg));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref("hist", ArgDirection::kOut)};
    hist.AddArgumentTemplate(std::move(out_arg));
    hist.set_executable("/opt/root/bin/makehist");
    hist.annotations().Set("sim.runtime_s", options.hist_runtime_s);
    hist.annotations().Set("sim.output_mb", 0.1);
    VDG_RETURN_IF_ERROR(catalog->DefineTransformation(std::move(hist)));
  }

  // Graph combiner: variable arity over all histograms produced in
  // the session.
  int total_hists = options.num_iterations * options.cuts_per_iteration;
  {
    Transformation graph(options.prefix + "-graph",
                         Transformation::Kind::kSimple);
    for (int h = 0; h < total_hists; ++h) {
      FormalArg in;
      in.name = "h" + std::to_string(h);
      in.direction = ArgDirection::kIn;
      in.types = {content_type("Histogram")};
      VDG_RETURN_IF_ERROR(graph.AddArg(std::move(in)));
      ArgumentTemplate arg;
      arg.name = "h" + std::to_string(h);
      arg.expr = {TemplatePiece::Literal("-h "),
                  TemplatePiece::Ref("h" + std::to_string(h),
                                     ArgDirection::kIn)};
      graph.AddArgumentTemplate(std::move(arg));
    }
    FormalArg out{.name = "graph",
                  .direction = ArgDirection::kOut,
                  .types = {content_type("Physics-graph")}};
    VDG_RETURN_IF_ERROR(graph.AddArg(std::move(out)));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref("graph", ArgDirection::kOut)};
    graph.AddArgumentTemplate(std::move(out_arg));
    graph.set_executable("/opt/root/bin/combine");
    graph.annotations().Set("sim.runtime_s", 2.0);
    graph.annotations().Set("sim.output_mb", 0.05);
    VDG_RETURN_IF_ERROR(catalog->DefineTransformation(std::move(graph)));
  }

  // Iterations: a new version of the select code each time.
  for (int it = 0; it < options.num_iterations; ++it) {
    std::string version = "v" + std::to_string(it + 1);
    std::string select_name = options.prefix + "-select-" + version;
    Transformation select(select_name, Transformation::Kind::kSimple);
    FormalArg in{.name = "events",
                 .direction = ArgDirection::kIn,
                 .types = {content_type("Event-store")}};
    FormalArg out{.name = "cuts",
                  .direction = ArgDirection::kOut,
                  .types = {content_type("Cut-set")}};
    FormalArg cut{.name = "cut", .direction = ArgDirection::kNone};
    VDG_RETURN_IF_ERROR(select.AddArg(std::move(in)));
    VDG_RETURN_IF_ERROR(select.AddArg(std::move(out)));
    VDG_RETURN_IF_ERROR(select.AddArg(std::move(cut)));
    ArgumentTemplate cut_arg;
    cut_arg.name = "cut";
    cut_arg.expr = {TemplatePiece::Literal("-c "),
                    TemplatePiece::Ref("cut", ArgDirection::kNone)};
    select.AddArgumentTemplate(std::move(cut_arg));
    ArgumentTemplate in_arg;
    in_arg.name = "stdin";
    in_arg.expr = {TemplatePiece::Ref("events", ArgDirection::kIn)};
    select.AddArgumentTemplate(std::move(in_arg));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref("cuts", ArgDirection::kOut)};
    select.AddArgumentTemplate(std::move(out_arg));
    select.set_executable("/home/phys/select-" + version);
    select.set_version(version);
    select.annotations().Set("sim.runtime_s", options.select_runtime_s);
    select.annotations().Set("sim.output_mb", 4.0);
    select.annotations().Set("code.version", version);
    VDG_RETURN_IF_ERROR(catalog->DefineTransformation(std::move(select)));
    workload.analysis_codes.push_back(select_name);

    for (int c = 0; c < options.cuts_per_iteration; ++c) {
      std::string tag =
          version + ".cut" + std::to_string(c);
      std::string cutset = options.prefix + ".cutset." + tag;
      Derivation dv(options.prefix + "-select-" + tag, select_name);
      VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
          "events", workload.event_store, ArgDirection::kIn)));
      VDG_RETURN_IF_ERROR(dv.AddArg(
          ActualArg::DatasetRef("cuts", cutset, ArgDirection::kOut)));
      VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::String(
          "cut", "pt>" + std::to_string(20 + 5 * c) + "GeV")));
      VDG_RETURN_IF_ERROR(catalog->DefineDerivation(std::move(dv)));
      workload.cut_sets.push_back(cutset);
      ++workload.derivation_count;

      std::string hist = options.prefix + ".hist." + tag;
      Derivation hv(options.prefix + "-hist-" + tag,
                    options.prefix + "-histogram");
      VDG_RETURN_IF_ERROR(hv.AddArg(
          ActualArg::DatasetRef("cuts", cutset, ArgDirection::kIn)));
      VDG_RETURN_IF_ERROR(
          hv.AddArg(ActualArg::DatasetRef("hist", hist, ArgDirection::kOut)));
      VDG_RETURN_IF_ERROR(catalog->DefineDerivation(std::move(hv)));
      workload.histograms.push_back(hist);
      ++workload.derivation_count;
    }
  }

  // The final graph over every histogram of the session.
  workload.final_graph = options.prefix + ".graph.final";
  Derivation graph_dv(options.prefix + "-graph-final",
                      options.prefix + "-graph");
  for (int h = 0; h < total_hists; ++h) {
    VDG_RETURN_IF_ERROR(graph_dv.AddArg(ActualArg::DatasetRef(
        "h" + std::to_string(h), workload.histograms[static_cast<size_t>(h)],
        ArgDirection::kIn)));
  }
  VDG_RETURN_IF_ERROR(graph_dv.AddArg(ActualArg::DatasetRef(
      "graph", workload.final_graph, ArgDirection::kOut)));
  VDG_RETURN_IF_ERROR(catalog->DefineDerivation(std::move(graph_dv)));
  ++workload.derivation_count;

  return workload;
}

}  // namespace workload
}  // namespace vdg
