#include "workload/testbed.h"

namespace vdg {
namespace workload {

namespace {

SiteConfig MakeSite(const std::string& name, int hosts, double cpu_factor,
                    int64_t storage_bytes = 0) {
  SiteConfig site;
  site.name = name;
  site.hosts.reserve(static_cast<size_t>(hosts));
  for (int i = 0; i < hosts; ++i) {
    HostConfig host;
    host.name = name + "-n" + std::to_string(i);
    host.cpu_factor = cpu_factor;
    host.slots = 1;
    site.hosts.push_back(std::move(host));
  }
  StorageElementConfig se;
  se.name = "se0";
  se.capacity_bytes = storage_bytes;
  site.storage.push_back(std::move(se));
  return site;
}

void MustAdd(GridTopology* topology, SiteConfig site) {
  Status s = topology->AddSite(std::move(site));
  (void)s;
}

void MustLink(GridTopology* topology, const std::string& a,
              const std::string& b, double mbps, double latency) {
  LinkConfig link;
  link.from = a;
  link.to = b;
  link.bandwidth_bytes_per_s = mbps * 1e6 / 8.0;  // megabits -> bytes
  link.latency_s = latency;
  Status s = topology->AddLink(std::move(link));
  (void)s;
}

}  // namespace

GridTopology GriphynTestbed() {
  GridTopology topology;
  MustAdd(&topology, MakeSite("uchicago", 252, 1.0));
  MustAdd(&topology, MakeSite("wisconsin", 300, 0.9));
  MustAdd(&topology, MakeSite("fermilab", 128, 1.2));
  MustAdd(&topology, MakeSite("caltech", 120, 1.1));
  // 2003-era Abilene-class links (fractional OC-12 shares).
  MustLink(&topology, "uchicago", "wisconsin", 155, 0.012);
  MustLink(&topology, "uchicago", "fermilab", 622, 0.004);
  MustLink(&topology, "uchicago", "caltech", 155, 0.030);
  MustLink(&topology, "wisconsin", "fermilab", 155, 0.010);
  MustLink(&topology, "wisconsin", "caltech", 100, 0.032);
  MustLink(&topology, "fermilab", "caltech", 155, 0.028);
  return topology;
}

GridTopology SmallTestbed() {
  GridTopology topology;
  MustAdd(&topology, MakeSite("east", 4, 1.0));
  MustAdd(&topology, MakeSite("west", 4, 1.0));
  MustLink(&topology, "east", "west", 100, 0.02);
  return topology;
}

GridTopology TieredTestbed(int regionals, int leaves_per_regional,
                           int64_t leaf_storage_bytes,
                           std::map<std::string, std::string>* parents) {
  GridTopology topology;
  MustAdd(&topology, MakeSite("root", 4, 1.0));
  if (parents != nullptr) (*parents)["root"] = "";
  for (int r = 0; r < regionals; ++r) {
    std::string regional = "region" + std::to_string(r);
    MustAdd(&topology, MakeSite(regional, 4, 1.0,
                                leaf_storage_bytes * 4));
    MustLink(&topology, "root", regional, 622, 0.010);
    if (parents != nullptr) (*parents)[regional] = "root";
    for (int l = 0; l < leaves_per_regional; ++l) {
      std::string leaf = regional + "-leaf" + std::to_string(l);
      MustAdd(&topology, MakeSite(leaf, 2, 1.0, leaf_storage_bytes));
      MustLink(&topology, regional, leaf, 100, 0.005);
      MustLink(&topology, "root", leaf, 45, 0.020);
      if (parents != nullptr) (*parents)[leaf] = regional;
    }
  }
  return topology;
}

}  // namespace workload
}  // namespace vdg
