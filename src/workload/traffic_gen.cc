#include "workload/traffic_gen.h"

#include <chrono>
#include <functional>
#include <random>
#include <utility>

#include "catalog/batch.h"
#include "schema/derivation.h"
#include "schema/transformation.h"

namespace vdg {
namespace workload {

namespace {

constexpr char kTransformation[] = "xf-traffic";

/// Seconds elapsed since `start` on the real (wall) clock — the
/// measured service time that feeds the virtual-time queues.
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string BucketPrefix(uint32_t bucket) {
  static const char kHex[] = "0123456789abcdef";
  std::string prefix = "ds-";
  prefix.push_back(kHex[(bucket >> 4) & 0xf]);
  prefix.push_back(kHex[bucket & 0xf]);
  prefix.push_back('-');
  return prefix;
}

uint64_t VirtualNanos(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<uint64_t>(seconds * 1e9);
}

/// Executes one scatter/gather discovery op: issues `leg` against
/// every shard (the same per-shard query ShardedCatalogClient sends),
/// measures each leg and charges it to that shard's virtual clock,
/// then measures the client-side gather merge. False when any leg
/// fails (the op errors; no latency is recorded, matching the
/// fail-the-gather contract).
bool GatherOp(const std::vector<std::shared_ptr<CatalogClient>>& shards,
              const std::function<Result<NameList>(CatalogClient&)>& leg,
              double now, size_t merge_limit, std::vector<double>* free_at,
              double* completion_out) {
  std::vector<NameList> lists;
  lists.reserve(shards.size());
  double completion = now;
  for (size_t k = 0; k < shards.size(); ++k) {
    const auto start = std::chrono::steady_clock::now();
    Result<NameList> result = leg(*shards[k]);
    const double service = SecondsSince(start);
    if (!result.ok()) return false;
    lists.push_back(*std::move(result));
    double leg_done = std::max(now, (*free_at)[k]) + service;
    (*free_at)[k] = leg_done;
    if (leg_done > completion) completion = leg_done;
  }
  if (shards.size() > 1) {
    // The merge runs on the issuing user's client, modeled as
    // infinitely parallel: it delays this op but occupies no shard.
    const auto start = std::chrono::steady_clock::now();
    NameList merged = MergeSortedNameLists(lists, merge_limit);
    completion += SecondsSince(start);
    if (merged.size() > lists.size()) {
      // Data dependency so the optimizer cannot hoist the merge.
      lists.clear();
    }
  }
  *completion_out = completion;
  return true;
}

}  // namespace

TrafficHarness::TrafficHarness(
    std::vector<std::shared_ptr<CatalogClient>> shards,
    TrafficOptions options)
    : shards_(std::move(shards)), options_(options) {
  ShardedClientOptions client_options;
  client_options.id_tag = "tg";
  client_ =
      std::make_unique<ShardedCatalogClient>(shards_, client_options);
}

Status TrafficHarness::SeedCorpus() {
  if (!corpus_.empty()) return Status::OK();
  if (shards_.empty()) return Status::InvalidArgument("no shards");
  if (options_.corpus_buckets == 0) {
    return Status::InvalidArgument("corpus needs at least one bucket");
  }

  Transformation xf(kTransformation, Transformation::Kind::kSimple);
  FormalArg out;
  out.name = "out";
  out.direction = ArgDirection::kOut;
  VDG_RETURN_IF_ERROR(xf.AddArg(std::move(out)));
  FormalArg in;
  in.name = "in";
  in.direction = ArgDirection::kIn;
  VDG_RETURN_IF_ERROR(xf.AddArg(std::move(in)));
  xf.set_executable("/usr/bin/traffic-app");
  Status defined = client_->DefineTransformation(std::move(xf));
  if (!defined.ok() && !defined.IsAlreadyExists()) return defined;

  corpus_.reserve(options_.corpus_datasets);
  std::vector<CatalogMutation> batch;
  constexpr size_t kBatchSize = 2048;
  for (uint64_t n = 0; n < options_.corpus_datasets; ++n) {
    const uint32_t bucket =
        static_cast<uint32_t>(n % options_.corpus_buckets);
    Dataset ds;
    ds.name = BucketPrefix(bucket) + std::to_string(n);
    ds.descriptor = DatasetDescriptor::File("/traffic/" + ds.name);
    ds.size_bytes = 1 << 20;
    ds.annotations.Set("bin", static_cast<int64_t>(bucket));
    corpus_.push_back(ds.name);
    batch.push_back(CatalogMutation::DefineDataset(std::move(ds)));
    if (batch.size() == kBatchSize || n + 1 == options_.corpus_datasets) {
      VDG_ASSIGN_OR_RETURN(BatchResult result, client_->ApplyBatch(batch));
      if (!result.first_error.ok() && !result.first_error.IsAlreadyExists()) {
        return result.first_error;
      }
      batch.clear();
    }
  }
  return Status::OK();
}

Result<double> TrafficHarness::MeasureQueryWork(const DatasetQuery& query) {
  double total = 0;
  for (const std::shared_ptr<CatalogClient>& shard : shards_) {
    const auto start = std::chrono::steady_clock::now();
    VDG_RETURN_IF_ERROR(shard->FindDatasets(query).status());
    total += SecondsSince(start);
  }
  return total;
}

Result<double> TrafficHarness::CalibrateOfferedRate() {
  // S_ref: mean total (across-shard) service time of a bucket query.
  // The per-shard indexes partition the same corpus, so the sum of
  // leg times is (nearly) topology-independent and two harnesses over
  // different shard counts land on (nearly) the same offered rate.
  const uint32_t samples = std::min<uint32_t>(8, options_.corpus_buckets);
  double total = 0;
  for (uint32_t b = 0; b < samples; ++b) {
    DatasetQuery query;
    query.name_prefix = BucketPrefix(b);
    VDG_ASSIGN_OR_RETURN(double work, MeasureQueryWork(query));
    query.predicates = {
        {"bin", PredicateOp::kEq, static_cast<int64_t>(b)}};
    VDG_ASSIGN_OR_RETURN(double predicate_work, MeasureQueryWork(query));
    total += (work + predicate_work) / 2;
  }
  const double s_ref = std::max(total / samples, 1e-7);
  return options_.overload_factor / s_ref;
}

Result<TrafficReport> TrafficHarness::Run() {
  if (corpus_.empty()) {
    return Status::FailedPrecondition("SeedCorpus() has not run");
  }
  if (calibrated_rate_ == 0.0) {
    if (options_.offered_rate > 0) {
      calibrated_rate_ = options_.offered_rate;
    } else {
      VDG_ASSIGN_OR_RETURN(calibrated_rate_, CalibrateOfferedRate());
    }
  }
  const double rate = calibrated_rate_;

  TrafficReport report;
  report.operations = options_.operations;
  report.shard_count = static_cast<uint32_t>(shards_.size());
  report.offered_rate = rate;

  std::mt19937_64 rng(options_.seed);
  std::exponential_distribution<double> gap(rate);
  std::uniform_real_distribution<double> mix(0.0, 1.0);
  std::vector<double> free_at(shards_.size(), 0.0);
  double now = 0.0;
  double horizon = 0.0;  // last completion seen

  for (uint64_t i = 0; i < options_.operations; ++i) {
    now += gap(rng);
    const uint64_t user = rng() % std::max<uint64_t>(1, options_.users);
    const double pick = mix(rng);

    if (pick < options_.discovery_fraction) {
      const uint32_t bucket =
          static_cast<uint32_t>(user % options_.corpus_buckets);
      double completion = now;
      bool ok;
      if (rng() % 100 < 15) {
        DerivationQuery query;
        query.name_prefix = "dv-traffic-";
        query.limit = 256;
        ok = GatherOp(
            shards_,
            [&](CatalogClient& c) { return c.FindDerivations(query); }, now,
            query.limit, &free_at, &completion);
      } else {
        DatasetQuery query;
        query.name_prefix = BucketPrefix(bucket);
        if (rng() % 10 < 3) {
          query.predicates = {
              {"bin", PredicateOp::kEq, static_cast<int64_t>(bucket)}};
        }
        ok = GatherOp(
            shards_, [&](CatalogClient& c) { return c.FindDatasets(query); },
            now, query.limit, &free_at, &completion);
      }
      if (!ok) {
        ++report.errors;
        continue;
      }
      ++report.discovery_ops;
      const uint64_t latency = VirtualNanos(completion - now);
      report.latency.Record(latency);
      report.discovery_latency.Record(latency);
      if (completion > horizon) horizon = completion;
      continue;
    }

    // Mutations go through the sharded client (the system under test)
    // and occupy their home shard for the measured duration.
    std::string target;
    Status status = Status::OK();
    double service = 0.0;
    if (pick < options_.discovery_fraction + options_.derivation_fraction) {
      const uint64_t seq = derivation_seq_++;
      std::string name = "dv-traffic-" + std::to_string(seq);
      Derivation dv(name, kTransformation);
      Status arg_status = dv.AddArg(ActualArg::DatasetRef(
          "out", "dx-traffic-" + std::to_string(seq), ArgDirection::kOut));
      if (arg_status.ok()) {
        arg_status = dv.AddArg(ActualArg::DatasetRef(
            "in", corpus_[rng() % corpus_.size()], ArgDirection::kIn));
      }
      target = std::move(name);
      const auto start = std::chrono::steady_clock::now();
      status = arg_status.ok() ? client_->DefineDerivation(std::move(dv))
                               : arg_status;
      service = SecondsSince(start);
      if (status.ok()) ++report.derivation_ops;
    } else {
      target = corpus_[user % corpus_.size()];
      const auto start = std::chrono::steady_clock::now();
      status = client_->Annotate("dataset", target, "hot",
                                 static_cast<int64_t>(i));
      service = SecondsSince(start);
      if (status.ok()) ++report.annotation_ops;
    }
    if (!status.ok()) {
      ++report.errors;
      continue;
    }
    const uint32_t home = client_->ShardOf(target);
    const double completion = std::max(now, free_at[home]) + service;
    free_at[home] = completion;
    if (completion > horizon) horizon = completion;
    const uint64_t latency = VirtualNanos(completion - now);
    report.latency.Record(latency);
    report.mutation_latency.Record(latency);
  }

  report.virtual_seconds = std::max(horizon, now);
  if (report.virtual_seconds > 0) {
    const double completed =
        static_cast<double>(options_.operations - report.errors);
    report.completed_rate = completed / report.virtual_seconds;
    report.query_rate =
        static_cast<double>(report.discovery_ops) / report.virtual_seconds;
  }
  return report;
}

Result<std::unique_ptr<TrafficWorld>> MakeTrafficWorld(
    uint32_t shard_count, TrafficOptions options) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard_count must be positive");
  }
  auto world = std::make_unique<TrafficWorld>();
  std::vector<std::shared_ptr<CatalogClient>> clients;
  for (uint32_t k = 0; k < shard_count; ++k) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "traffic-s" + std::to_string(k) + ".org");
    // Cross-shard referential checks move to the sharded client; a
    // single shard keeps full local validation (the unsharded
    // baseline stays bit-identical to a plain catalog).
    if (shard_count > 1) catalog->set_partition_mode(true);
    VDG_RETURN_IF_ERROR(catalog->Open());
    clients.push_back(
        std::make_shared<InProcessCatalogClient>(catalog.get()));
    world->catalogs.push_back(std::move(catalog));
  }
  world->harness =
      std::make_unique<TrafficHarness>(std::move(clients), options);
  VDG_RETURN_IF_ERROR(world->harness->SeedCorpus());
  return world;
}

}  // namespace workload
}  // namespace vdg
