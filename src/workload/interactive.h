#ifndef VDG_WORKLOAD_INTERACTIVE_H_
#define VDG_WORKLOAD_INTERACTIVE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {
namespace workload {

/// Options for the interactive-analysis challenge (Section 6): a
/// physicist iterates "in an unstructured manner over a small number
/// of changeable analysis codes", selecting and filtering events,
/// producing cut sets, then histograms combined into final graphs —
/// with the goal of "a detailed data lineage report" for "each data
/// point in the final graph".
struct InteractiveOptions {
  int num_iterations = 5;     // edit-code / re-filter cycles
  int cuts_per_iteration = 3; // cut sets produced per analysis version
  int points_per_histogram = 8;
  double select_runtime_s = 30.0;
  double hist_runtime_s = 5.0;
  std::string prefix = "ana";
};

struct InteractiveWorkload {
  std::string event_store;                 // raw multi-modal input
  std::vector<std::string> analysis_codes; // one TR version per iteration
  std::vector<std::string> cut_sets;
  std::vector<std::string> histograms;
  std::string final_graph;                 // combines all histograms
  size_t derivation_count = 0;
};

/// Populates `catalog` with the iterative analysis session: versioned
/// select transformations (v1..vN, each annotated with its version),
/// cut-set derivations over a shared event store (sql-rows
/// descriptor), histogram derivations per cut set, and one final
/// graph combining every histogram — so the graph's lineage fans out
/// across every iteration of the session.
Result<InteractiveWorkload> GenerateInteractive(
    VirtualDataCatalog* catalog, const InteractiveOptions& options);

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_INTERACTIVE_H_
