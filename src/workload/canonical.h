#ifndef VDG_WORKLOAD_CANONICAL_H_
#define VDG_WORKLOAD_CANONICAL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {
namespace workload {

/// Options for the Chimera-0 "canonical application" generator: the
/// paper's synthetic programs "that could mimic arbitrary argument
/// passing conventions and file I/O behavior", used "to create large
/// application dependency graphs to validate our provenance tracking
/// mechanism" (Section 6).
struct CanonicalGraphOptions {
  size_t num_derivations = 100;
  size_t num_raw_inputs = 10;
  size_t num_transformations = 5;
  int max_inputs_per_derivation = 3;
  int max_string_args = 2;
  double runtime_mean_s = 5.0;
  double output_mb = 1.0;
  uint64_t seed = 1;
  /// Prefix for all generated object names (lets several graphs share
  /// a catalog without collisions).
  std::string prefix = "canon";
};

/// Ground truth of a generated graph, for validating provenance
/// queries against what was actually constructed.
struct CanonicalGraph {
  std::vector<std::string> raw_inputs;
  std::vector<std::string> derivations;   // in creation order
  std::vector<std::string> outputs;       // primary output per derivation
  /// Secondary outputs of multi-output derivations (the "arbitrary
  /// file I/O behavior" dimension: every third transformation shape
  /// writes two datasets).
  std::vector<std::string> aux_outputs;
  std::vector<std::string> sinks;         // outputs nothing consumes
  /// output dataset -> the exact input datasets of its derivation.
  std::map<std::string, std::vector<std::string>> truth_inputs;

  /// Ground-truth ancestor closure of `dataset`, computed from
  /// truth_inputs (independent of the catalog's answer).
  std::set<std::string> TrueAncestors(const std::string& dataset) const;
};

/// Generates `options.num_derivations` derivations over
/// `options.num_transformations` synthetic transformations, each
/// consuming 1..max_inputs random earlier outputs (or raw inputs) —
/// a random DAG by construction. Defines everything in `catalog`.
Result<CanonicalGraph> GenerateCanonicalGraph(
    VirtualDataCatalog* catalog, const CanonicalGraphOptions& options);

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_CANONICAL_H_
