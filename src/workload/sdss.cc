#include "workload/sdss.h"

namespace vdg {
namespace workload {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;

// Defines a content type under SDSS if the Appendix-C preset (or a
// previous call) has not already.
Status EnsureContentType(VirtualDataCatalog* catalog,
                         const std::string& name,
                         const std::string& parent) {
  if (catalog->HasType(TypeDimension::kContent, name)) {
    return Status::OK();
  }
  if (!catalog->HasType(TypeDimension::kContent, parent) &&
      parent != TypeDimensionBaseName(TypeDimension::kContent)) {
    VDG_RETURN_IF_ERROR(catalog->DefineType(
        TypeDimension::kContent, parent,
        TypeDimensionBaseName(TypeDimension::kContent)));
  }
  return catalog->DefineType(TypeDimension::kContent, name, parent);
}

}  // namespace

Result<SdssWorkload> GenerateSdss(VirtualDataCatalog* catalog,
                                  const SdssOptions& options) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  if (options.num_stripes <= 0 || options.fields_per_stripe <= 0) {
    return Status::InvalidArgument("SDSS workload needs stripes and fields");
  }

  VDG_RETURN_IF_ERROR(EnsureContentType(catalog, "FITS-file", "SDSS"));
  VDG_RETURN_IF_ERROR(EnsureContentType(catalog, "Object-map", "SDSS"));
  VDG_RETURN_IF_ERROR(
      EnsureContentType(catalog, "Cluster-catalog", "SDSS"));

  // All object definitions accumulate into one batch, committed at the
  // end under a single catalog lock acquisition, version bump, and
  // journal flush.
  std::vector<CatalogMutation> defs;

  DatasetType field_type;
  field_type.content = "FITS-file";
  DatasetType bcg_type;
  bcg_type.content = "Object-map";
  DatasetType cluster_type;
  cluster_type.content = "Cluster-catalog";

  // maxBcg: one field image in, one BCG candidate list out.
  {
    Transformation tr(options.prefix + "-maxBcg",
                      Transformation::Kind::kSimple);
    FormalArg field{.name = "field",
                    .direction = ArgDirection::kIn,
                    .types = {field_type}};
    FormalArg bcg{.name = "bcg",
                  .direction = ArgDirection::kOut,
                  .types = {bcg_type}};
    FormalArg zmax{.name = "zmax", .direction = ArgDirection::kNone};
    zmax.default_string = "0.4";
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(field)));
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(bcg)));
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(zmax)));
    ArgumentTemplate in_arg;
    in_arg.name = "field";
    in_arg.expr = {TemplatePiece::Literal("-f "),
                   TemplatePiece::Ref("field", ArgDirection::kIn)};
    tr.AddArgumentTemplate(std::move(in_arg));
    ArgumentTemplate z_arg;
    z_arg.name = "zmax";
    z_arg.expr = {TemplatePiece::Literal("-z "),
                  TemplatePiece::Ref("zmax", ArgDirection::kNone)};
    tr.AddArgumentTemplate(std::move(z_arg));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref("bcg", ArgDirection::kOut)};
    tr.AddArgumentTemplate(std::move(out_arg));
    tr.set_executable("/opt/sdss/bin/maxBcg");
    tr.annotations().Set("sim.runtime_s", options.search_runtime_s);
    tr.annotations().Set("sim.output_mb", options.bcg_mb);
    tr.annotations().Set("science", "astronomy");
    defs.push_back(CatalogMutation::DefineTransformation(std::move(tr)));
  }

  // brightestCluster: coalesces a stripe's BCG lists into a cluster
  // catalog. Variable arity is modelled as a file-set input.
  {
    Transformation tr(options.prefix + "-brightestCluster",
                      Transformation::Kind::kSimple);
    for (int f = 0; f < options.fields_per_stripe; ++f) {
      FormalArg in;
      in.name = "bcg" + std::to_string(f);
      in.direction = ArgDirection::kIn;
      in.types = {bcg_type};
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(in)));
      ArgumentTemplate arg;
      arg.name = "bcg" + std::to_string(f);
      arg.expr = {TemplatePiece::Literal("-b "),
                  TemplatePiece::Ref("bcg" + std::to_string(f),
                                     ArgDirection::kIn)};
      tr.AddArgumentTemplate(std::move(arg));
    }
    FormalArg out;
    out.name = "clusters";
    out.direction = ArgDirection::kOut;
    out.types = {cluster_type};
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(out)));
    ArgumentTemplate out_arg;
    out_arg.name = "stdout";
    out_arg.expr = {TemplatePiece::Ref("clusters", ArgDirection::kOut)};
    tr.AddArgumentTemplate(std::move(out_arg));
    tr.set_executable("/opt/sdss/bin/brightestCluster");
    tr.annotations().Set("sim.runtime_s", options.merge_runtime_s);
    tr.annotations().Set("sim.output_mb", options.cluster_mb);
    tr.annotations().Set("science", "astronomy");
    defs.push_back(CatalogMutation::DefineTransformation(std::move(tr)));
  }

  SdssWorkload workload;
  for (int s = 0; s < options.num_stripes; ++s) {
    std::vector<std::string> stripe_fields;
    std::vector<std::string> stripe_bcgs;
    for (int f = 0; f < options.fields_per_stripe; ++f) {
      std::string field = options.prefix + ".stripe" + std::to_string(s) +
                          ".field" + std::to_string(f);
      Dataset ds;
      ds.name = field;
      ds.type = field_type;
      ds.size_bytes = static_cast<int64_t>(options.field_mb * kMiB);
      ds.descriptor = DatasetDescriptor::File("/sdss/dr1/" + field);
      ds.annotations.Set("stripe", static_cast<int64_t>(s));
      defs.push_back(CatalogMutation::DefineDataset(std::move(ds)));
      workload.field_datasets.push_back(field);
      stripe_fields.push_back(field);

      std::string bcg = field + ".bcg";
      Derivation dv(options.prefix + "-search-s" + std::to_string(s) + "-f" +
                        std::to_string(f),
                    options.prefix + "-maxBcg");
      VDG_RETURN_IF_ERROR(
          dv.AddArg(ActualArg::DatasetRef("field", field, ArgDirection::kIn)));
      VDG_RETURN_IF_ERROR(
          dv.AddArg(ActualArg::DatasetRef("bcg", bcg, ArgDirection::kOut)));
      defs.push_back(CatalogMutation::DefineDerivation(std::move(dv)));
      workload.bcg_datasets.push_back(bcg);
      stripe_bcgs.push_back(bcg);
      ++workload.derivation_count;
    }
    std::string clusters =
        options.prefix + ".stripe" + std::to_string(s) + ".clusters";
    Derivation merge(options.prefix + "-merge-s" + std::to_string(s),
                     options.prefix + "-brightestCluster");
    for (int f = 0; f < options.fields_per_stripe; ++f) {
      VDG_RETURN_IF_ERROR(merge.AddArg(ActualArg::DatasetRef(
          "bcg" + std::to_string(f), stripe_bcgs[static_cast<size_t>(f)],
          ArgDirection::kIn)));
    }
    VDG_RETURN_IF_ERROR(merge.AddArg(
        ActualArg::DatasetRef("clusters", clusters, ArgDirection::kOut)));
    defs.push_back(CatalogMutation::DefineDerivation(std::move(merge)));
    workload.cluster_catalogs.push_back(clusters);
    workload.stripe_fields.push_back(std::move(stripe_fields));
    ++workload.derivation_count;
  }
  BatchOptions commit;
  commit.stop_on_error = true;  // later defs reference earlier ones
  VDG_RETURN_IF_ERROR(catalog->ApplyBatch(defs, commit).first_error);
  return workload;
}

Status StageSdssInputs(const SdssWorkload& workload,
                       const SdssOptions& options, GridSimulator* grid,
                       VirtualDataCatalog* catalog) {
  if (grid == nullptr) return Status::InvalidArgument("null grid");
  std::vector<std::string> sites = grid->topology().SiteNames();
  if (sites.empty()) return Status::FailedPrecondition("grid has no sites");
  int64_t bytes = static_cast<int64_t>(options.field_mb * kMiB);
  std::vector<CatalogMutation> staged;
  for (size_t i = 0; i < workload.field_datasets.size(); ++i) {
    const std::string& field = workload.field_datasets[i];
    const std::string& site = sites[i % sites.size()];
    VDG_RETURN_IF_ERROR(grid->PlaceFile(site, field, bytes, /*pinned=*/true));
    if (catalog != nullptr) {
      Replica replica;
      replica.dataset = field;
      replica.site = site;
      replica.storage_element = "se0";
      replica.physical_path = "/archive/" + field;
      replica.size_bytes = bytes;
      staged.push_back(CatalogMutation::AddReplica(std::move(replica)));
    }
  }
  if (catalog != nullptr) {
    BatchOptions commit;
    commit.stop_on_error = true;
    VDG_RETURN_IF_ERROR(catalog->ApplyBatch(staged, commit).first_error);
  }
  return Status::OK();
}

}  // namespace workload
}  // namespace vdg
