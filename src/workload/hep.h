#ifndef VDG_WORKLOAD_HEP_H_
#define VDG_WORKLOAD_HEP_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {
namespace workload {

/// Options for the high-energy-physics challenge of Section 6: "a
/// high energy physics collision event simulation application that
/// consisted of four separate program executions with intermediate and
/// final results passing between the stages as files", the last two
/// stages using object-oriented database files — which we model with
/// multi-modal dataset descriptors (file / object-closure / sql-rows).
struct HepOptions {
  int num_batches = 10;   // independent event batches
  int events_per_batch = 1000;
  /// Per-stage nominal runtimes (generate, simulate, reconstruct,
  /// analyze).
  double stage_runtime_s[4] = {50.0, 400.0, 200.0, 60.0};
  /// Per-stage output sizes in MiB.
  double stage_output_mb[4] = {2.0, 40.0, 20.0, 1.0};
  /// Also define a compound transformation chaining the four stages,
  /// and express the per-batch derivations through it (exercises
  /// compound expansion end-to-end).
  bool use_compound = true;
  std::string prefix = "cms";
};

struct HepWorkload {
  std::vector<std::string> config_datasets;  // raw generator configs
  std::vector<std::string> ntuples;          // final per-batch outputs
  /// Intermediate datasets per batch: [batch][stage 0..2].
  std::vector<std::vector<std::string>> intermediates;
  std::vector<std::string> derivations;      // per-batch top-level DVs
  size_t transformation_count = 0;
};

/// Defines CMS types (content tree from Appendix C), the four stage
/// transformations (plus the compound when requested), raw generator
/// configuration datasets, and a derivation chain per batch.
Result<HepWorkload> GenerateHep(VirtualDataCatalog* catalog,
                                const HepOptions& options);

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_HEP_H_
