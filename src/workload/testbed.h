#ifndef VDG_WORKLOAD_TESTBED_H_
#define VDG_WORKLOAD_TESTBED_H_

#include <map>
#include <string>

#include "grid/topology.h"

namespace vdg {
namespace workload {

/// The GriPhyN-like grid of the paper's SDSS experiment (Section 6):
/// "a grid consisting of almost 800 hosts spread across four sites".
/// Sites: uchicago (252), wisconsin (300), fermilab (128),
/// caltech (120) = 800 hosts, WAN-linked at 2003-era bandwidths.
GridTopology GriphynTestbed();

/// A compact 2-site x 4-host grid for unit tests and the quickstart.
GridTopology SmallTestbed();

/// A three-tier hierarchy for replication experiments: one root
/// (archive) site, `regionals` mid-tier sites, `leaves_per_regional`
/// leaf sites each. `parents` (out) receives the site hierarchy the
/// cascading policy needs.
GridTopology TieredTestbed(int regionals, int leaves_per_regional,
                           int64_t leaf_storage_bytes,
                           std::map<std::string, std::string>* parents);

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_TESTBED_H_
