#ifndef VDG_WORKLOAD_SDSS_H_
#define VDG_WORKLOAD_SDSS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "grid/simulator.h"

namespace vdg {
namespace workload {

/// Options for the SDSS MaxBCG galaxy-cluster challenge (Section 6 and
/// reference [1]): per-field brightest-cluster-galaxy search followed
/// by per-stripe cluster coalescing. The paper's full run created
/// ~5000 derivations in DAGs of several hundred nodes.
struct SdssOptions {
  int num_stripes = 10;
  int fields_per_stripe = 25;
  /// Nominal per-field search runtime and per-stripe merge runtime.
  double search_runtime_s = 100.0;
  double merge_runtime_s = 30.0;
  /// Field image size and derived-catalog sizes.
  double field_mb = 6.0;
  double bcg_mb = 0.5;
  double cluster_mb = 2.0;
  uint64_t seed = 42;
  std::string prefix = "sdss";
};

/// The generated workload: raw field images, one maxBcg derivation
/// per field, one brightestCluster merge per stripe.
struct SdssWorkload {
  std::vector<std::string> field_datasets;          // raw inputs
  std::vector<std::vector<std::string>> stripe_fields;  // per stripe
  std::vector<std::string> bcg_datasets;            // per field
  std::vector<std::string> cluster_catalogs;        // per-stripe sinks
  size_t derivation_count = 0;
};

/// Defines the SDSS type tree (content: SDSS > FITS-file etc., from
/// the Appendix-C preset), the two transformations, and the full
/// derivation space in `catalog`.
Result<SdssWorkload> GenerateSdss(VirtualDataCatalog* catalog,
                                  const SdssOptions& options);

/// Stages the raw field images onto the grid, round-robin across
/// sites (the survey archive is distributed), and records matching
/// replicas in the catalog.
Status StageSdssInputs(const SdssWorkload& workload,
                       const SdssOptions& options, GridSimulator* grid,
                       VirtualDataCatalog* catalog);

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_SDSS_H_
