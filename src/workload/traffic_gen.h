#ifndef VDG_WORKLOAD_TRAFFIC_GEN_H_
#define VDG_WORKLOAD_TRAFFIC_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/sharding.h"
#include "common/metrics.h"

namespace vdg {
namespace workload {

/// Shape of the modeled user population and its offered load.
///
/// The harness is OPEN-LOOP: arrivals are a Poisson process at a fixed
/// offered rate — the superposition of `users` independent thin
/// streams, which is how a million real users present to a shared
/// catalog — and an op's latency includes the time it queued behind
/// earlier ops, so saturation shows up as unbounded p99 instead of the
/// silent back-off a closed loop would produce.
struct TrafficOptions {
  /// Modeled user population. Each arrival is attributed to a user;
  /// the user's identity picks its discovery locality (name-prefix
  /// bucket) and annotation targets.
  uint64_t users = 1'000'000;
  /// Arrivals to simulate per Run().
  uint64_t operations = 4000;
  /// Corpus size seeded before the run.
  uint64_t corpus_datasets = 20000;
  /// Name-prefix buckets the corpus (and discovery queries) spread
  /// across; also the cardinality of the "bin" predicate attribute.
  uint32_t corpus_buckets = 32;
  /// Offered load in ops per virtual second. 0 = calibrate from
  /// measured service times: rate = overload_factor / S_ref where
  /// S_ref is the mean TOTAL service time of a sample discovery query
  /// summed across shards — a topology-independent quantity, so two
  /// harnesses over different shard counts calibrate to (nearly) the
  /// same offered load. To compare topologies at EXACTLY equal load,
  /// run one harness, read report.offered_rate, and pin it here for
  /// the rest.
  double offered_rate = 0.0;
  double overload_factor = 6.0;
  /// Op mix: discovery (predicate queries), derivation definition,
  /// annotation. Remainder after the first two is annotation.
  double discovery_fraction = 0.70;
  double derivation_fraction = 0.15;
  uint64_t seed = 42;
};

/// What one Run() produced. Latencies are VIRTUAL nanoseconds (see
/// TrafficHarness); rates are per virtual second.
struct TrafficReport {
  uint64_t operations = 0;
  uint64_t discovery_ops = 0;
  uint64_t derivation_ops = 0;
  uint64_t annotation_ops = 0;
  uint64_t errors = 0;
  uint32_t shard_count = 1;
  double offered_rate = 0.0;
  /// Ops per virtual second actually sustained: operations divided by
  /// first-arrival-to-last-completion. Equals offered_rate when the
  /// shards keep up; collapses to aggregate service capacity when
  /// they saturate — the scaling number the 1-vs-8-shard gate reads.
  double completed_rate = 0.0;
  /// Discovery (predicate-query) ops per virtual second.
  double query_rate = 0.0;
  double virtual_seconds = 0.0;
  LatencyHistogram latency;            // all ops
  LatencyHistogram discovery_latency;  // scatter/gather queries
  LatencyHistogram mutation_latency;   // derivations + annotations
};

/// Open-loop traffic generator over a sharded catalog, built for a
/// one-core host: arrivals and queueing happen in VIRTUAL time, while
/// every service time is REAL — measured wall-clock of executing the
/// op against the actual shard catalogs. Each shard is modeled as one
/// single-threaded server with a FIFO queue (which is what one
/// catalog server process is); the client side (scatter issue, gather
/// merge) is modeled as infinitely parallel since each modeled user
/// runs its own client.
///
/// A point op (derivation, annotation) occupies its home shard for
/// its measured duration. A discovery op fans out: the harness issues
/// each per-shard leg directly — the same query ShardedCatalogClient
/// would send — measures each leg, charges it to that shard's clock,
/// completes at the max leg completion, then adds the measured
/// MergeSortedNameLists gather cost on the client side. Scaling is
/// therefore an empirical result (smaller per-shard indexes, real
/// merge overhead, real imbalance), not an artifact of dividing one
/// number by N.
///
/// Not thread-safe; one harness per thread.
class TrafficHarness {
 public:
  /// `shards` are the shard backends (order defines the topology).
  /// Multi-shard backends must be partition-mode catalogs — see
  /// ShardedCatalogClient. MakeTrafficWorld below sets this up.
  TrafficHarness(std::vector<std::shared_ptr<CatalogClient>> shards,
                 TrafficOptions options = {});

  /// Seeds the corpus through the sharded client: one broadcast
  /// transformation plus corpus_datasets datasets spread over
  /// corpus_buckets name-prefix buckets, each annotated with its
  /// bucket as "bin" (batched; placement is real hash routing).
  Status SeedCorpus();

  /// Simulates options.operations arrivals. Repeatable on the same
  /// instance: derivation names never repeat, so the corpus grows but
  /// the run never trips AlreadyExists.
  Result<TrafficReport> Run();

  /// The system under test (also how callers inspect routing).
  ShardedCatalogClient& client() { return *client_; }

 private:
  Result<double> CalibrateOfferedRate();
  /// Sum of per-shard wall-clock leg times for one dataset query.
  Result<double> MeasureQueryWork(const DatasetQuery& query);

  std::vector<std::shared_ptr<CatalogClient>> shards_;
  TrafficOptions options_;
  std::unique_ptr<ShardedCatalogClient> client_;
  std::vector<std::string> corpus_;  // seeded dataset names
  double calibrated_rate_ = 0.0;
  uint64_t derivation_seq_ = 0;
};

/// N in-process shard catalogs (partition mode when N > 1) plus a
/// harness over them: the standard bench/test fixture.
struct TrafficWorld {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  std::unique_ptr<TrafficHarness> harness;
};

Result<std::unique_ptr<TrafficWorld>> MakeTrafficWorld(
    uint32_t shard_count, TrafficOptions options = {});

}  // namespace workload
}  // namespace vdg

#endif  // VDG_WORKLOAD_TRAFFIC_GEN_H_
