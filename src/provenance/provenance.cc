#include "provenance/provenance.h"

#include <algorithm>
#include <deque>

namespace vdg {

size_t CountLineageNodes(const LineageNode& node) {
  size_t total = 1;
  for (const LineageNode& input : node.inputs) {
    total += CountLineageNodes(input);
  }
  return total;
}

int LineageDepth(const LineageNode& node) {
  int deepest = 0;
  for (const LineageNode& input : node.inputs) {
    deepest = std::max(deepest, 1 + LineageDepth(input));
  }
  return deepest;
}

namespace {

void RenderLineageInto(const LineageNode& node, int indent,
                       std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += node.dataset;
  if (node.derivation.empty()) {
    *out += "  [raw input]\n";
  } else {
    *out += "  <- " + node.derivation + " (" + node.transformation;
    if (!node.invocations.empty()) {
      const Invocation& last = node.invocations.back();
      *out += ", last run at " + last.context.site + "/" +
              last.context.host + " t=" + std::to_string(last.start_time);
    } else {
      *out += ", never executed: virtual";
    }
    *out += ")\n";
  }
  for (const LineageNode& input : node.inputs) {
    RenderLineageInto(input, indent + 1, out);
  }
}

}  // namespace

std::string RenderLineage(const LineageNode& node) {
  std::string out;
  RenderLineageInto(node, 0, &out);
  return out;
}

Status ProvenanceTracker::BuildLineage(std::string_view dataset, int depth,
                                       int max_depth,
                                       std::set<std::string>* on_path,
                                       LineageNode* out) const {
  if (!catalog_.HasDataset(dataset)) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  if (on_path->count(std::string(dataset)) != 0) {
    return Status::FailedPrecondition(
        "provenance cycle detected through dataset " + std::string(dataset));
  }
  out->dataset = std::string(dataset);

  Result<std::string> producer = catalog_.ProducerOf(dataset);
  if (!producer.ok()) return Status::OK();  // raw input: leaf node

  out->derivation = *producer;
  VDG_ASSIGN_OR_RETURN(Derivation dv, catalog_.GetDerivation(*producer));
  out->transformation = dv.QualifiedTransformation();
  out->invocations = catalog_.InvocationsOf(*producer);
  if (out->invocations.empty()) {
    // Compound derivations execute through synthesized expansion
    // children named "<parent>.cK"; surface their invocations here.
    DerivationQuery children;
    children.name_prefix = *producer + ".";
    for (std::string_view child : catalog_.FindDerivations(children)) {
      for (Invocation& iv : catalog_.InvocationsOf(child)) {
        out->invocations.push_back(std::move(iv));
      }
    }
  }

  if (max_depth != 0 && depth >= max_depth) return Status::OK();

  on_path->insert(std::string(dataset));
  for (const std::string& input : dv.InputDatasets()) {
    LineageNode child;
    VDG_RETURN_IF_ERROR(
        BuildLineage(input, depth + 1, max_depth, on_path, &child));
    out->inputs.push_back(std::move(child));
  }
  on_path->erase(std::string(dataset));
  return Status::OK();
}

Result<LineageNode> ProvenanceTracker::Lineage(std::string_view dataset,
                                               int max_depth) const {
  LineageNode root;
  std::set<std::string> on_path;
  VDG_RETURN_IF_ERROR(BuildLineage(dataset, 0, max_depth, &on_path, &root));
  return root;
}

Result<std::set<std::string>> ProvenanceTracker::Ancestors(
    std::string_view dataset) const {
  if (!catalog_.HasDataset(dataset)) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  std::set<std::string> seen;
  std::deque<std::string> frontier{std::string(dataset)};
  size_t guard = 0;
  const size_t kGuardLimit = 10'000'000;
  while (!frontier.empty()) {
    if (++guard > kGuardLimit) {
      return Status::FailedPrecondition("ancestor walk exceeds guard limit");
    }
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    Result<std::string> producer = catalog_.ProducerOf(current);
    if (!producer.ok()) continue;
    Result<Derivation> dv = catalog_.GetDerivation(*producer);
    if (!dv.ok()) continue;
    for (const std::string& input : dv->InputDatasets()) {
      if (seen.insert(input).second) frontier.push_back(input);
    }
  }
  return seen;
}

Result<std::set<std::string>> ProvenanceTracker::Descendants(
    std::string_view dataset) const {
  if (!catalog_.HasDataset(dataset)) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  std::set<std::string> seen;
  std::deque<std::string> frontier{std::string(dataset)};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    for (std::string_view consumer : catalog_.ConsumersOf(current)) {
      Result<Derivation> dv = catalog_.GetDerivation(consumer);
      if (!dv.ok()) continue;
      for (const std::string& output : dv->OutputDatasets()) {
        if (output != dataset && seen.insert(output).second) {
          frontier.push_back(output);
        }
      }
    }
  }
  return seen;
}

Result<std::set<std::string>> ProvenanceTracker::RawSources(
    std::string_view dataset) const {
  VDG_ASSIGN_OR_RETURN(std::set<std::string> ancestors, Ancestors(dataset));
  std::set<std::string> raw;
  if (ancestors.empty() && !catalog_.ProducerOf(dataset).ok()) {
    raw.insert(std::string(dataset));  // the dataset itself is raw
    return raw;
  }
  for (const std::string& name : ancestors) {
    if (!catalog_.ProducerOf(name).ok()) raw.insert(name);
  }
  return raw;
}

Result<std::vector<Invocation>> ProvenanceTracker::AuditTrail(
    std::string_view dataset) const {
  VDG_ASSIGN_OR_RETURN(std::set<std::string> ancestors, Ancestors(dataset));
  ancestors.insert(std::string(dataset));
  std::vector<Invocation> trail;
  std::set<std::string> seen_derivations;
  for (const std::string& name : ancestors) {
    Result<std::string> producer = catalog_.ProducerOf(name);
    if (!producer.ok()) continue;
    if (!seen_derivations.insert(*producer).second) continue;
    std::vector<Invocation> own = catalog_.InvocationsOf(*producer);
    if (own.empty()) {
      // Compound derivations execute via expansion children named
      // "<parent>.cK"; their invocations are this derivation's trail.
      DerivationQuery children;
      children.name_prefix = *producer + ".";
      for (std::string_view child : catalog_.FindDerivations(children)) {
        for (Invocation& iv : catalog_.InvocationsOf(child)) {
          own.push_back(std::move(iv));
        }
      }
    }
    for (Invocation& iv : own) {
      trail.push_back(std::move(iv));
    }
  }
  std::sort(trail.begin(), trail.end(),
            [](const Invocation& a, const Invocation& b) {
              if (a.start_time != b.start_time) {
                return a.start_time < b.start_time;
              }
              return a.id < b.id;
            });
  return trail;
}

Result<InvalidationReport> ProvenanceTracker::PlanInvalidation(
    std::string_view dataset) const {
  VDG_ASSIGN_OR_RETURN(std::set<std::string> affected, Descendants(dataset));
  InvalidationReport report;
  report.source_dataset = std::string(dataset);
  std::set<std::string> derivations;
  for (const std::string& name : affected) {
    report.affected_datasets.push_back(name);
    Result<std::string> producer = catalog_.ProducerOf(name);
    if (producer.ok()) derivations.insert(*producer);
    for (const Replica& replica : catalog_.ReplicasOf(name)) {
      report.invalidated_replicas.push_back(replica.id);
    }
  }
  report.derivations_to_rerun.assign(derivations.begin(), derivations.end());
  return report;
}

Result<InvalidationReport> ProvenanceTracker::Invalidate(
    std::string_view dataset, VirtualDataCatalog* catalog) const {
  if (catalog == nullptr || catalog != &catalog_) {
    return Status::InvalidArgument(
        "Invalidate must be handed the tracker's own catalog");
  }
  VDG_ASSIGN_OR_RETURN(InvalidationReport report, PlanInvalidation(dataset));
  for (const std::string& replica_id : report.invalidated_replicas) {
    VDG_RETURN_IF_ERROR(catalog->InvalidateReplica(replica_id));
  }
  return report;
}

Result<bool> ProvenanceTracker::FullyMaterialized(
    std::string_view dataset) const {
  VDG_ASSIGN_OR_RETURN(std::set<std::string> ancestors, Ancestors(dataset));
  ancestors.insert(std::string(dataset));
  for (const std::string& name : ancestors) {
    if (!catalog_.IsMaterialized(name)) return false;
  }
  return true;
}

}  // namespace vdg
