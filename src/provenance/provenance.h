#ifndef VDG_PROVENANCE_PROVENANCE_H_
#define VDG_PROVENANCE_PROVENANCE_H_

#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {

/// One node of a lineage tree: a dataset, the derivation that produced
/// it (empty for raw inputs), and the lineage of each input.
struct LineageNode {
  std::string dataset;
  std::string derivation;      // "" when the dataset is a raw input
  std::string transformation;  // "" when the dataset is a raw input
  std::vector<Invocation> invocations;  // executions of the derivation
  std::vector<LineageNode> inputs;
};

/// Counts datasets in a lineage tree (including repeats of shared
/// ancestors, i.e. tree nodes, not unique datasets).
size_t CountLineageNodes(const LineageNode& node);
/// Longest derivation chain below `node` (a raw input has depth 0).
int LineageDepth(const LineageNode& node);
/// Human-readable indented rendering — the paper's "detailed data
/// lineage report" for a data point.
std::string RenderLineage(const LineageNode& node);

/// Result of an invalidation cascade ("I've detected a calibration
/// error ... which derived data do I need to recompute?").
struct InvalidationReport {
  std::string source_dataset;
  /// Derived datasets downstream of the source, in BFS order.
  std::vector<std::string> affected_datasets;
  /// Derivations that must be re-run to repair them.
  std::vector<std::string> derivations_to_rerun;
  /// Replica ids that were (or would be) marked invalid.
  std::vector<std::string> invalidated_replicas;
};

/// Provenance queries over one Virtual Data Catalog. The tracker holds
/// a borrowed catalog reference; mutating operations (cascades) take
/// the catalog non-const.
class ProvenanceTracker {
 public:
  explicit ProvenanceTracker(const VirtualDataCatalog& catalog)
      : catalog_(catalog) {}

  /// Full upstream lineage of `dataset`. `max_depth` bounds recursion
  /// (0 = unlimited). Fails on unknown datasets and on cyclic
  /// producer graphs (which the catalog cannot represent validly).
  Result<LineageNode> Lineage(std::string_view dataset,
                              int max_depth = 0) const;

  /// Unique upstream dataset names (excluding `dataset` itself).
  Result<std::set<std::string>> Ancestors(std::string_view dataset) const;
  /// Unique downstream dataset names (excluding `dataset` itself).
  Result<std::set<std::string>> Descendants(std::string_view dataset) const;

  /// Raw (underived) datasets this dataset ultimately depends on.
  Result<std::set<std::string>> RawSources(std::string_view dataset) const;

  /// Every invocation on the upstream path of `dataset`, oldest first —
  /// the complete audit trail of how the data came to be.
  Result<std::vector<Invocation>> AuditTrail(std::string_view dataset) const;

  /// Derivations downstream of `dataset` that would need re-running if
  /// it were found faulty; pure query, no catalog mutation.
  Result<InvalidationReport> PlanInvalidation(
      std::string_view dataset) const;

  /// Executes the cascade: marks every replica of every affected
  /// dataset invalid in `catalog` (which must be the same catalog this
  /// tracker reads). Returns the report of what was invalidated.
  Result<InvalidationReport> Invalidate(std::string_view dataset,
                                        VirtualDataCatalog* catalog) const;

  /// True when every dataset on the upstream path of `dataset` is
  /// materialized — i.e. the audit trail is complete with real data.
  Result<bool> FullyMaterialized(std::string_view dataset) const;

 private:
  Status BuildLineage(std::string_view dataset, int depth, int max_depth,
                      std::set<std::string>* on_path,
                      LineageNode* out) const;

  const VirtualDataCatalog& catalog_;
};

}  // namespace vdg

#endif  // VDG_PROVENANCE_PROVENANCE_H_
