// ShardedCatalogClient invariants (ISSUE 10): result-identity with an
// unsharded catalog across randomized predicate mixes, fail-closed
// partial-failure behavior, composite-version semantics, and the two
// coherence satellites — query-cache keys carrying the shard-set
// fingerprint, and FederatedIndex per-shard delta anchors converging
// with a full rebuild even when a refresh lands mid-ApplyBatch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/sharding.h"
#include "common/rng.h"
#include "federation/index.h"
#include "federation/remote_cache.h"
#include "schema/derivation.h"
#include "schema/transformation.h"

namespace vdg {
namespace {

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// Forwarding shard wrapper whose transport can be "unplugged": every
/// call fails with Unavailable while down. What a crashed shard server
/// looks like to the client.
class FlakyShard : public CatalogClient {
 public:
  explicit FlakyShard(std::shared_ptr<CatalogClient> inner)
      : inner_(std::move(inner)) {}

  void set_down(bool down) { down_ = down; }

  const std::string& authority() const override {
    return inner_->authority();
  }
  bool read_only() const override { return inner_->read_only(); }

  Result<uint64_t> Version() override {
    if (down_) return Down();
    return inner_->Version();
  }
  Result<std::vector<CatalogChange>> ChangesSince(uint64_t v) override {
    if (down_) return Down();
    return inner_->ChangesSince(v);
  }
  Result<Dataset> GetDataset(std::string_view name) override {
    if (down_) return Down();
    return inner_->GetDataset(name);
  }
  Result<Transformation> GetTransformation(std::string_view name) override {
    if (down_) return Down();
    return inner_->GetTransformation(name);
  }
  Result<Derivation> GetDerivation(std::string_view name) override {
    if (down_) return Down();
    return inner_->GetDerivation(name);
  }
  Result<bool> HasDataset(std::string_view name) override {
    if (down_) return Down();
    return inner_->HasDataset(name);
  }
  Result<bool> IsMaterialized(std::string_view dataset) override {
    if (down_) return Down();
    return inner_->IsMaterialized(dataset);
  }
  Result<std::string> ProducerOf(std::string_view dataset) override {
    if (down_) return Down();
    return inner_->ProducerOf(dataset);
  }
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override {
    if (down_) return Down();
    return inner_->InvocationsOf(derivation);
  }
  Result<NameList> FindDatasets(const DatasetQuery& query) override {
    if (down_) return Down();
    return inner_->FindDatasets(query);
  }
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override {
    if (down_) return Down();
    return inner_->FindTransformations(query);
  }
  Result<NameList> FindDerivations(const DerivationQuery& query) override {
    if (down_) return Down();
    return inner_->FindDerivations(query);
  }
  Result<NameList> AllNames(std::string_view kind) override {
    if (down_) return Down();
    return inner_->AllNames(kind);
  }
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override {
    if (down_) return Down();
    return inner_->TypeConforms(type, against);
  }
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override {
    if (down_) return Down();
    return inner_->BatchGet(keys);
  }
  Result<ProvenanceStep> GetProvenanceStep(
      std::string_view dataset) override {
    if (down_) return Down();
    return inner_->GetProvenanceStep(dataset);
  }
  Status DefineDataset(Dataset dataset) override {
    if (down_) return Down();
    return inner_->DefineDataset(std::move(dataset));
  }
  Status DefineTransformation(Transformation transformation) override {
    if (down_) return Down();
    return inner_->DefineTransformation(std::move(transformation));
  }
  Status DefineDerivation(Derivation derivation) override {
    if (down_) return Down();
    return inner_->DefineDerivation(std::move(derivation));
  }
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override {
    if (down_) return Down();
    return inner_->Annotate(kind, name, key, std::move(value));
  }
  Result<std::string> AddReplica(Replica replica) override {
    if (down_) return Down();
    return inner_->AddReplica(std::move(replica));
  }
  Result<std::string> RecordInvocation(Invocation invocation) override {
    if (down_) return Down();
    return inner_->RecordInvocation(std::move(invocation));
  }
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override {
    if (down_) return Down();
    return inner_->SetDatasetSize(name, size_bytes);
  }
  Status InvalidateReplica(std::string_view id) override {
    if (down_) return Down();
    return inner_->InvalidateReplica(id);
  }
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& m,
                                 const BatchOptions& options) override {
    if (down_) return Down();
    return inner_->ApplyBatch(m, options);
  }

 private:
  static Status Down() { return Status::Unavailable("shard down"); }
  std::shared_ptr<CatalogClient> inner_;
  bool down_ = false;
};

/// N partition-mode shard catalogs behind a ShardedCatalogClient.
struct World {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  std::vector<std::shared_ptr<CatalogClient>> clients;
  std::unique_ptr<ShardedCatalogClient> sharded;
};

World MakeWorld(uint32_t shard_count, ShardedClientOptions options = {}) {
  World world;
  for (uint32_t k = 0; k < shard_count; ++k) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "shard" + std::to_string(k) + ".org");
    if (shard_count > 1) catalog->set_partition_mode(true);
    EXPECT_TRUE(catalog->Open().ok());
    world.clients.push_back(
        std::make_shared<InProcessCatalogClient>(catalog.get()));
    world.catalogs.push_back(std::move(catalog));
  }
  world.sharded =
      std::make_unique<ShardedCatalogClient>(world.clients, options);
  return world;
}

/// One unsharded reference catalog behind a plain in-process client.
struct Reference {
  std::unique_ptr<VirtualDataCatalog> catalog;
  std::shared_ptr<CatalogClient> client;
};

Reference MakeReference() {
  Reference ref;
  ref.catalog = std::make_unique<VirtualDataCatalog>("ref.org");
  EXPECT_TRUE(ref.catalog->Open().ok());
  ref.client = std::make_shared<InProcessCatalogClient>(ref.catalog.get());
  return ref;
}

/// Applies one deterministic mixed workload through any client: the
/// same seed produces the same logical catalog content, so a sharded
/// client and the unsharded reference can be diffed query-by-query.
Status ApplyWorkload(CatalogClient* client, uint64_t seed, size_t datasets,
                     size_t derivations) {
  Rng rng(seed);
  Transformation xf("xf", Transformation::Kind::kSimple);
  FormalArg out;
  out.name = "out";
  out.direction = ArgDirection::kOut;
  VDG_RETURN_IF_ERROR(xf.AddArg(std::move(out)));
  FormalArg in;
  in.name = "in";
  in.direction = ArgDirection::kIn;
  VDG_RETURN_IF_ERROR(xf.AddArg(std::move(in)));
  xf.set_executable("/bin/xf");
  VDG_RETURN_IF_ERROR(client->DefineTransformation(std::move(xf)));

  for (size_t i = 0; i < datasets; ++i) {
    Dataset ds;
    ds.name = "d" + std::to_string(i);
    ds.descriptor = DatasetDescriptor::File("/data/" + ds.name);
    ds.size_bytes = static_cast<int64_t>(1000 + i);
    ds.annotations.Set("bin", static_cast<int64_t>(i % 8));
    ds.annotations.Set("tier", i % 3 == 0 ? "gold" : "std");
    VDG_RETURN_IF_ERROR(client->DefineDataset(std::move(ds)));
  }
  for (size_t j = 0; j < derivations; ++j) {
    Derivation dv("v" + std::to_string(j), "xf");
    VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
        "out", "o" + std::to_string(j), ArgDirection::kOut)));
    VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
        "in", "d" + std::to_string(rng.Index(datasets)),
        ArgDirection::kIn)));
    VDG_RETURN_IF_ERROR(client->DefineDerivation(std::move(dv)));
  }
  for (size_t a = 0; a < datasets / 4; ++a) {
    VDG_RETURN_IF_ERROR(client->Annotate(
        "dataset", "d" + std::to_string(rng.Index(datasets)), "hot",
        static_cast<int64_t>(a)));
  }
  for (size_t r = 0; r < datasets / 5; ++r) {
    Replica replica;
    replica.dataset = "d" + std::to_string(rng.Index(datasets));
    replica.site = "site" + std::to_string(r % 3);
    replica.physical_path = "/replicas/" + std::to_string(r);
    VDG_RETURN_IF_ERROR(client->AddReplica(std::move(replica)).status());
  }
  return Status::OK();
}

/// Randomized predicate-mix queries; both clients must return the SAME
/// NameList bytes in the same (lexicographic) order.
void ExpectQueryEquivalence(CatalogClient* sharded, CatalogClient* reference,
                            uint64_t seed, int rounds) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    DatasetQuery dq;
    const char* prefixes[] = {"", "d", "o", "d1", "zzz"};
    dq.name_prefix = prefixes[rng.Index(5)];
    if (rng.Chance(0.5)) {
      dq.predicates.push_back(
          {"bin", PredicateOp::kEq, static_cast<int64_t>(rng.Index(8))});
    }
    if (rng.Chance(0.3)) {
      dq.predicates.push_back({"tier", PredicateOp::kEq, "gold"});
    }
    if (rng.Chance(0.3)) dq.require_materialized = true;
    if (rng.Chance(0.4)) {
      dq.limit = static_cast<size_t>(rng.UniformInt(1, 23));
    }
    Result<NameList> a = sharded->FindDatasets(dq);
    Result<NameList> b = reference->FindDatasets(dq);
    ASSERT_TRUE(a.ok()) << a.status().message();
    ASSERT_TRUE(b.ok()) << b.status().message();
    EXPECT_EQ(*a, *b) << "dataset query mismatch, round " << round;

    DerivationQuery vq;
    vq.name_prefix = rng.Chance(0.5) ? "v" : "";
    if (rng.Chance(0.3)) vq.transformation = "xf";
    if (rng.Chance(0.3)) {
      vq.reads_dataset = "d" + std::to_string(rng.Index(16));
    }
    if (rng.Chance(0.3)) {
      vq.writes_dataset = "o" + std::to_string(rng.Index(16));
    }
    if (rng.Chance(0.4)) {
      vq.limit = static_cast<size_t>(rng.UniformInt(1, 11));
    }
    Result<NameList> va = sharded->FindDerivations(vq);
    Result<NameList> vb = reference->FindDerivations(vq);
    ASSERT_TRUE(va.ok()) << va.status().message();
    ASSERT_TRUE(vb.ok()) << vb.status().message();
    EXPECT_EQ(*va, *vb) << "derivation query mismatch, round " << round;
  }
  for (const char* kind : {"dataset", "derivation", "transformation"}) {
    Result<NameList> a = sharded->AllNames(kind);
    Result<NameList> b = reference->AllNames(kind);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "AllNames(" << kind << ") mismatch";
  }
}

// ---------------------------------------------------------------------
// Merge plumbing
// ---------------------------------------------------------------------

TEST(MergeSortedNameLists, MergesAndLimits) {
  std::vector<NameList> lists;
  lists.push_back(NameList::FromStrings({"a", "d", "g"}));
  lists.push_back(NameList::FromStrings({"b", "e"}));
  lists.push_back(NameList::FromStrings({}));
  lists.push_back(NameList::FromStrings({"c", "f", "h"}));
  EXPECT_EQ(MergeSortedNameLists(lists, 0),
            (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g",
                                      "h"}));
  EXPECT_EQ(MergeSortedNameLists(lists, 3),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(MergeSortedNameLists({}, 0), (std::vector<std::string>{}));
}

// ---------------------------------------------------------------------
// Result identity with the unsharded catalog
// ---------------------------------------------------------------------

TEST(ShardedEquivalence, RandomizedQueriesMatchUnsharded) {
  for (uint32_t shard_count : {2u, 3u, 5u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shard_count));
    World world = MakeWorld(shard_count);
    Reference ref = MakeReference();
    ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 7, 120, 40).ok());
    ASSERT_TRUE(ApplyWorkload(ref.client.get(), 7, 120, 40).ok());
    ExpectQueryEquivalence(world.sharded.get(), ref.client.get(),
                           91 + shard_count, 40);
  }
}

TEST(ShardedEquivalence, ParallelFanoutMatchesUnsharded) {
  ShardedClientOptions options;
  options.parallel_fanout = true;
  World world = MakeWorld(4, options);
  Reference ref = MakeReference();
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 11, 96, 32).ok());
  ASSERT_TRUE(ApplyWorkload(ref.client.get(), 11, 96, 32).ok());
  ExpectQueryEquivalence(world.sharded.get(), ref.client.get(), 13, 30);
}

TEST(ShardedEquivalence, PointReadsAndProvenanceMatchUnsharded) {
  World world = MakeWorld(3);
  Reference ref = MakeReference();
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 5, 60, 20).ok());
  ASSERT_TRUE(ApplyWorkload(ref.client.get(), 5, 60, 20).ok());
  for (int j = 0; j < 20; ++j) {
    const std::string output = "o" + std::to_string(j);
    Result<std::string> producer_s = world.sharded->ProducerOf(output);
    Result<std::string> producer_r = ref.client->ProducerOf(output);
    ASSERT_TRUE(producer_s.ok()) << producer_s.status().message();
    ASSERT_TRUE(producer_r.ok());
    EXPECT_EQ(*producer_s, *producer_r) << output;

    Result<ProvenanceStep> step_s = world.sharded->GetProvenanceStep(output);
    Result<ProvenanceStep> step_r = ref.client->GetProvenanceStep(output);
    ASSERT_TRUE(step_s.ok()) << step_s.status().message();
    ASSERT_TRUE(step_r.ok());
    EXPECT_EQ(step_s->producer, step_r->producer);
    EXPECT_EQ(step_s->exists, step_r->exists);
    ASSERT_TRUE(step_s->derivation.has_value());
    EXPECT_EQ(step_s->derivation->name(), step_r->derivation->name());
  }
  Result<Dataset> missing = world.sharded->GetDataset("nope");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(ShardedEquivalence, ApplyBatchMatchesUnsharded) {
  World world = MakeWorld(4);
  Reference ref = MakeReference();
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 3, 40, 10).ok());
  ASSERT_TRUE(ApplyWorkload(ref.client.get(), 3, 40, 10).ok());

  std::vector<CatalogMutation> batch;
  for (int i = 0; i < 12; ++i) {
    Dataset ds;
    ds.name = "batch-d" + std::to_string(i);
    ds.descriptor = DatasetDescriptor::File("/batch/" + ds.name);
    ds.annotations.Set("bin", static_cast<int64_t>(i % 8));
    batch.push_back(CatalogMutation::DefineDataset(std::move(ds)));
  }
  // Cross-shard intra-batch reference: annotate a replica added by an
  // earlier op of the same batch, by positional id.
  Replica replica;
  replica.dataset = "batch-d3";
  replica.site = "site0";
  const size_t replica_op = batch.size();
  batch.push_back(CatalogMutation::AddReplica(std::move(replica)));
  batch.push_back(CatalogMutation::AnnotateAssigned(
      "replica", replica_op, "checksum", "abc123"));
  batch.push_back(
      CatalogMutation::Annotate("dataset", "batch-d7", "hot", int64_t{1}));
  batch.push_back(CatalogMutation::SetDatasetSize("batch-d1", 4096));
  Derivation dv("batch-v0", "xf");
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("out", "batch-o0", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("in", "batch-d2", ArgDirection::kIn))
          .ok());
  batch.push_back(CatalogMutation::DefineDerivation(dv));

  BatchOptions options;
  options.idempotency_token = "batch-eq";
  Result<BatchResult> result_s = world.sharded->ApplyBatch(batch, options);
  Result<BatchResult> result_r = ref.client->ApplyBatch(batch, options);
  ASSERT_TRUE(result_s.ok()) << result_s.status().message();
  ASSERT_TRUE(result_r.ok());
  ASSERT_EQ(result_s->statuses.size(), result_r->statuses.size());
  for (size_t i = 0; i < result_s->statuses.size(); ++i) {
    EXPECT_EQ(result_s->statuses[i].ok(), result_r->statuses[i].ok())
        << "op " << i << ": " << result_s->statuses[i].message();
  }
  EXPECT_EQ(result_s->applied, result_r->applied);
  ExpectQueryEquivalence(world.sharded.get(), ref.client.get(), 77, 20);
}

// ---------------------------------------------------------------------
// Partial failure: fail closed, never truncate
// ---------------------------------------------------------------------

TEST(ShardedFaults, DownShardFailsGatherClosed) {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  std::vector<std::shared_ptr<CatalogClient>> clients;
  std::shared_ptr<FlakyShard> flaky;
  for (uint32_t k = 0; k < 4; ++k) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "shard" + std::to_string(k) + ".org");
    catalog->set_partition_mode(true);
    ASSERT_TRUE(catalog->Open().ok());
    std::shared_ptr<CatalogClient> client =
        std::make_shared<InProcessCatalogClient>(catalog.get());
    if (k == 2) {
      flaky = std::make_shared<FlakyShard>(client);
      client = flaky;
    }
    clients.push_back(std::move(client));
    catalogs.push_back(std::move(catalog));
  }
  ShardedCatalogClient sharded(clients);
  ASSERT_TRUE(ApplyWorkload(&sharded, 21, 64, 16).ok());

  Result<NameList> healthy = sharded.FindDatasets(DatasetQuery{});
  ASSERT_TRUE(healthy.ok());
  const size_t full_size = healthy->size();
  ASSERT_GT(full_size, 0u);

  flaky->set_down(true);
  // Scatter reads: the whole gather fails — never a silently truncated
  // result missing one shard's names.
  Result<NameList> datasets = sharded.FindDatasets(DatasetQuery{});
  ASSERT_FALSE(datasets.ok());
  EXPECT_TRUE(datasets.status().IsUnavailable())
      << datasets.status().message();
  EXPECT_TRUE(sharded.AllNames("dataset").status().IsUnavailable());
  EXPECT_TRUE(sharded.Version().status().IsUnavailable());
  EXPECT_TRUE(sharded.ShardVersions().status().IsUnavailable());

  // Point ops: only names homed on the dead shard fail.
  bool saw_down = false, saw_up = false;
  for (int i = 0; i < 64; ++i) {
    const std::string name = "d" + std::to_string(i);
    Result<Dataset> ds = sharded.GetDataset(name);
    if (sharded.ShardOf(name) == 2) {
      EXPECT_TRUE(ds.status().IsUnavailable()) << name;
      saw_down = true;
    } else {
      EXPECT_TRUE(ds.ok()) << name << ": " << ds.status().message();
      saw_up = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);

  flaky->set_down(false);
  Result<NameList> recovered = sharded.FindDatasets(DatasetQuery{});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), full_size);
}

// ---------------------------------------------------------------------
// Composite versions
// ---------------------------------------------------------------------

TEST(ShardedVersions, CompositeIsSumAndNotDeltaAddressable) {
  World world = MakeWorld(3);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 9, 48, 12).ok());

  Result<uint64_t> version = world.sharded->Version();
  Result<std::vector<uint64_t>> shard_versions =
      world.sharded->ShardVersions();
  ASSERT_TRUE(version.ok());
  ASSERT_TRUE(shard_versions.ok());
  ASSERT_EQ(shard_versions->size(), 3u);
  uint64_t sum = 0;
  for (uint64_t v : *shard_versions) sum += v;
  EXPECT_EQ(*version, sum);

  // Trivial cases answer; everything else steers to the shard API.
  Result<std::vector<CatalogChange>> empty =
      world.sharded->ChangesSince(*version);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(world.sharded->ChangesSince(*version + 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(world.sharded->ChangesSince(*version - 1)
                  .status()
                  .IsResourceExhausted());

  // Per-shard changelogs are the real delta source.
  for (uint32_t k = 0; k < 3; ++k) {
    Result<std::vector<CatalogChange>> changes =
        world.sharded->ShardChangesSince(k, 0);
    ASSERT_TRUE(changes.ok());
    ASSERT_FALSE(changes->empty());
    EXPECT_EQ(changes->back().version, (*shard_versions)[k]);
  }
  EXPECT_TRUE(
      world.sharded->ShardChangesSince(3, 0).status().IsInvalidArgument());

  ShardTopology topo = world.sharded->shard_topology();
  EXPECT_EQ(topo.shard_count, 3u);
  EXPECT_NE(topo.fingerprint, 0u);
}

TEST(ShardedVersions, ReshardChangesFingerprint) {
  World world = MakeWorld(2);
  const uint64_t before = world.sharded->shard_topology().fingerprint;
  // Same backends, swapped order: placement changes, so the
  // fingerprint must too.
  std::vector<std::shared_ptr<CatalogClient>> swapped = {world.clients[1],
                                                         world.clients[0]};
  ASSERT_TRUE(world.sharded->Reshard(swapped).ok());
  EXPECT_NE(world.sharded->shard_topology().fingerprint, before);
  EXPECT_EQ(world.sharded->shard_topology().shard_count, 2u);
  EXPECT_TRUE(world.sharded
                  ->Reshard(std::vector<std::shared_ptr<CatalogClient>>{})
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Satellite 2: query-cache keys carry the shard-set fingerprint
// ---------------------------------------------------------------------

TEST(ShardedCaching, ReshardNeverServesStaleTopologyResults) {
  World world = MakeWorld(2);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 15, 40, 8).ok());
  std::shared_ptr<ShardedCatalogClient> sharded = std::move(world.sharded);
  CachingCatalogClient cache(sharded);

  DatasetQuery query;
  query.name_prefix = "d";
  Result<NameList> first = cache.FindDatasets(query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().query_misses, 1u);
  Result<NameList> hit = cache.FindDatasets(query);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cache.stats().query_hits, 1u);
  // A hit aliases the same immutable list (PR 9 contract), even
  // through the sharded gather.
  EXPECT_EQ(hit->identity(), first->identity());

  // Reshard: same data, new topology. The old cache entry's key holds
  // the dead fingerprint, so the next query MUST miss and refetch —
  // a stale-topology result can never be served.
  std::vector<std::shared_ptr<CatalogClient>> swapped = {world.clients[1],
                                                         world.clients[0]};
  ASSERT_TRUE(sharded->Reshard(swapped).ok());
  Result<NameList> after = cache.FindDatasets(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(cache.stats().query_misses, 2u);
  EXPECT_NE(after->identity(), first->identity());
  EXPECT_EQ(*after, *first);  // same logical content, fresh fetch
}

TEST(ShardedCaching, RevalidateWalksPerShardAnchors) {
  World world = MakeWorld(3);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 17, 48, 12).ok());
  std::shared_ptr<ShardedCatalogClient> sharded = std::move(world.sharded);
  CachingCatalogClient cache(sharded);

  ASSERT_TRUE(cache.Revalidate().ok());
  Result<uint64_t> composite = sharded->Version();
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(cache.synced_version(), *composite);

  // Warm a point read, then mutate BEHIND the cache through the raw
  // shard client: only Revalidate can learn about it.
  Result<Dataset> before = cache.GetDataset("d1");
  ASSERT_TRUE(before.ok());
  const uint32_t home = sharded->ShardOf("d1");
  ASSERT_TRUE(
      world.clients[home]->SetDatasetSize("d1", before->size_bytes + 555)
          .ok());
  Result<Dataset> stale = cache.GetDataset("d1");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->size_bytes, before->size_bytes);  // cached, by design

  const uint64_t flushes_before = cache.stats().flushes;
  ASSERT_TRUE(cache.Revalidate().ok());
  // Per-shard delta path: the changed object was evicted precisely,
  // not via a whole-cache flush.
  EXPECT_EQ(cache.stats().flushes, flushes_before);
  Result<Dataset> fresh = cache.GetDataset("d1");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size_bytes, before->size_bytes + 555);
  Result<uint64_t> now = sharded->Version();
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(cache.synced_version(), *now);
}

// ---------------------------------------------------------------------
// Satellite 1: FederatedIndex per-shard delta anchors
// ---------------------------------------------------------------------

TEST(ShardedIndex, DeltaRefreshUsesPerShardAnchors) {
  World world = MakeWorld(3);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 19, 48, 12).ok());
  std::shared_ptr<ShardedCatalogClient> sharded = std::move(world.sharded);

  FederatedIndex index("sharded-src");
  ASSERT_TRUE(index.AddSource(sharded).ok());
  ASSERT_TRUE(index.Refresh().ok());
  // The bootstrap itself is a delta walk from zero anchors, not a
  // rebuild.
  const IndexRefreshStats after_build = index.refresh_stats();
  EXPECT_EQ(after_build.full_rebuilds, 0u);
  EXPECT_GE(after_build.delta_refreshes, 1u);

  // A small cross-shard mutation burst, then refresh: the composite
  // version moved by more than any one shard's changelog can explain,
  // which the per-shard anchors absorb without a rebuild.
  for (int i = 0; i < 6; ++i) {
    Dataset ds;
    ds.name = "delta-d" + std::to_string(i);
    ds.descriptor = DatasetDescriptor::File("/delta/" + ds.name);
    ASSERT_TRUE(sharded->DefineDataset(std::move(ds)).ok());
  }
  ASSERT_TRUE(index.IsStale());
  ASSERT_TRUE(index.Refresh().ok());
  const IndexRefreshStats after_delta = index.refresh_stats();
  EXPECT_EQ(after_delta.full_rebuilds, after_build.full_rebuilds);
  EXPECT_GT(after_delta.delta_refreshes, after_build.delta_refreshes);
  EXPECT_EQ(index.LookupName("dataset", "delta-d5").size(), 1u);
  EXPECT_FALSE(index.IsStale());
}

TEST(ShardedIndex, MidBatchRefreshConvergesWithFullRebuild) {
  World world = MakeWorld(4);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 23, 32, 8).ok());
  std::shared_ptr<ShardedCatalogClient> sharded = std::move(world.sharded);

  FederatedIndex index("mid-batch");
  ASSERT_TRUE(index.AddSource(sharded).ok());
  ASSERT_TRUE(index.Refresh().ok());

  // A cross-shard batch, with a refresh injected the moment the FIRST
  // shard commits its sub-batch: the index observes the batch
  // half-applied, with per-shard versions that no single composite
  // anchor could describe.
  std::vector<CatalogMutation> batch;
  for (int i = 0; i < 16; ++i) {
    Dataset ds;
    ds.name = "mb-d" + std::to_string(i);
    ds.descriptor = DatasetDescriptor::File("/mb/" + ds.name);
    batch.push_back(CatalogMutation::DefineDataset(std::move(ds)));
  }
  bool refreshed_mid_batch = false;
  Status mid_status = Status::OK();
  sharded->set_post_subbatch_hook([&](uint32_t) {
    if (refreshed_mid_batch) return;
    refreshed_mid_batch = true;
    mid_status = index.Refresh();
  });
  Result<BatchResult> applied = sharded->ApplyBatch(batch);
  sharded->set_post_subbatch_hook(nullptr);
  ASSERT_TRUE(applied.ok()) << applied.status().message();
  ASSERT_TRUE(refreshed_mid_batch);
  ASSERT_TRUE(mid_status.ok()) << mid_status.message();

  // Converge, then diff against a from-scratch rebuild of the same
  // source: identical entries.
  ASSERT_TRUE(index.Refresh().ok());
  FederatedIndex rebuilt("rebuilt");
  ASSERT_TRUE(rebuilt.AddSource(sharded).ok());
  ASSERT_TRUE(rebuilt.RebuildAll().ok());
  EXPECT_EQ(index.size(), rebuilt.size());
  DatasetQuery all;
  std::vector<IndexEntry> via_delta = index.FindDatasets(all);
  std::vector<IndexEntry> via_rebuild = rebuilt.FindDatasets(all);
  ASSERT_EQ(via_delta.size(), via_rebuild.size());
  for (size_t i = 0; i < via_delta.size(); ++i) {
    EXPECT_EQ(via_delta[i].name, via_rebuild[i].name);
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(
        index.LookupName("dataset", "mb-d" + std::to_string(i)).size(), 1u)
        << i;
  }
}

TEST(ShardedIndex, ReshardForcesSourceRebuild) {
  World world = MakeWorld(2);
  ASSERT_TRUE(ApplyWorkload(world.sharded.get(), 29, 24, 6).ok());
  std::shared_ptr<ShardedCatalogClient> sharded = std::move(world.sharded);

  FederatedIndex index("reshard");
  ASSERT_TRUE(index.AddSource(sharded).ok());
  ASSERT_TRUE(index.Refresh().ok());
  const uint64_t rebuilds = index.refresh_stats().full_rebuilds;

  std::vector<std::shared_ptr<CatalogClient>> swapped = {world.clients[1],
                                                         world.clients[0]};
  ASSERT_TRUE(sharded->Reshard(swapped).ok());
  // Mutate so the staleness gate opens, then refresh: the fingerprint
  // change must force a full rebuild of this source (anchors died
  // with the old topology).
  Dataset ds;
  ds.name = "post-reshard";
  ds.descriptor = DatasetDescriptor::File("/post");
  ASSERT_TRUE(sharded->DefineDataset(std::move(ds)).ok());
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_EQ(index.refresh_stats().full_rebuilds, rebuilds + 1);
  EXPECT_EQ(index.LookupName("dataset", "post-reshard").size(), 1u);
}

}  // namespace
}  // namespace vdg
