#include "catalog/catalog.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "catalog/codec.h"

namespace vdg {
namespace {

// Small VDL corpus used across tests: two-stage chain.
constexpr const char* kChainVdl = R"(
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
DS file1 : Dataset size="1024";
DV usetrans1->trans1( a2=@{output:"file2"}, a1=@{input:"file1"} );
DV usetrans2->trans2( a2=@{output:"file3"}, a1=@{input:"file2"} );
)";

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : catalog_("test.example.org") {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(kChainVdl).ok());
  }
  VirtualDataCatalog catalog_;
};

TEST_F(CatalogTest, ImportDefinesEverything) {
  CatalogStats stats = catalog_.Stats();
  EXPECT_EQ(stats.transformations, 2u);
  EXPECT_EQ(stats.derivations, 2u);
  // file1 declared; file2/file3 auto-defined as virtual outputs.
  EXPECT_EQ(stats.datasets, 3u);
  EXPECT_TRUE(catalog_.HasDataset("file2"));
  EXPECT_TRUE(catalog_.HasDataset("file3"));
}

TEST_F(CatalogTest, ProducerAndConsumers) {
  EXPECT_EQ(*catalog_.ProducerOf("file2"), "usetrans1");
  EXPECT_EQ(*catalog_.ProducerOf("file3"), "usetrans2");
  EXPECT_TRUE(catalog_.ProducerOf("file1").status().IsNotFound());
  EXPECT_EQ(catalog_.ConsumersOf("file2"),
            std::vector<std::string>{"usetrans2"});
  EXPECT_TRUE(catalog_.ConsumersOf("file3").empty());
}

TEST_F(CatalogTest, DuplicateDefinitionsRejected) {
  Dataset ds;
  ds.name = "file1";
  EXPECT_TRUE(catalog_.DefineDataset(ds).IsAlreadyExists());
  Transformation tr("trans1", Transformation::Kind::kSimple);
  tr.set_executable("/x");
  EXPECT_TRUE(catalog_.DefineTransformation(tr).IsAlreadyExists());
  Derivation dv("usetrans1", "trans1");
  EXPECT_TRUE(catalog_.DefineDerivation(dv).IsAlreadyExists());
}

TEST_F(CatalogTest, DerivationNeedsKnownTransformation) {
  Derivation dv("dangling", "no-such-tr");
  EXPECT_TRUE(catalog_.DefineDerivation(dv).IsNotFound());
}

TEST_F(CatalogTest, SecondProducerForDatasetRejected) {
  Derivation dv("rival", "trans1");
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a2", "file2", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "file1", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(catalog_.DefineDerivation(dv).IsAlreadyExists());
}

TEST_F(CatalogTest, ExpansionChildMayReproduceParentOutput) {
  Derivation child("usetrans1.c0", "trans1");
  ASSERT_TRUE(
      child.AddArg(ActualArg::DatasetRef("a2", "file2", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      child.AddArg(ActualArg::DatasetRef("a1", "file1", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(catalog_.DefineDerivation(child).ok());
  // Parent remains the recorded producer.
  EXPECT_EQ(*catalog_.ProducerOf("file2"), "usetrans1");
}

TEST_F(CatalogTest, ReplicasAndMaterialization) {
  EXPECT_FALSE(catalog_.IsMaterialized("file2"));
  Replica r;
  r.dataset = "file2";
  r.site = "uchicago";
  r.storage_element = "se0";
  r.size_bytes = 77;
  Result<std::string> id = catalog_.AddReplica(r);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "rp-1");
  EXPECT_TRUE(catalog_.IsMaterialized("file2"));
  ASSERT_EQ(catalog_.ReplicasOf("file2").size(), 1u);
  EXPECT_EQ(catalog_.ReplicasOf("file2")[0].size_bytes, 77);

  EXPECT_TRUE(catalog_.InvalidateReplica(*id).ok());
  EXPECT_FALSE(catalog_.IsMaterialized("file2"));
  EXPECT_TRUE(catalog_.ReplicasOf("file2").empty());
  EXPECT_EQ(catalog_.ReplicasOf("file2", /*valid_only=*/false).size(), 1u);
}

TEST_F(CatalogTest, ReplicaForUnknownDatasetRejected) {
  Replica r;
  r.dataset = "ghost";
  r.site = "x";
  EXPECT_TRUE(catalog_.AddReplica(r).status().IsNotFound());
}

TEST_F(CatalogTest, InvocationsRecordAndIndex) {
  Invocation iv;
  iv.derivation = "usetrans1";
  iv.context.site = "uchicago";
  iv.context.host = "n01";
  iv.start_time = 100;
  iv.duration_s = 20;
  Result<std::string> id = catalog_.RecordInvocation(iv);
  ASSERT_TRUE(id.ok());
  std::vector<Invocation> ivs = catalog_.InvocationsOf("usetrans1");
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].context.host, "n01");
  Invocation bad;
  bad.derivation = "no-such-dv";
  EXPECT_TRUE(catalog_.RecordInvocation(bad).status().IsNotFound());
}

TEST_F(CatalogTest, AnnotateEveryKind) {
  EXPECT_TRUE(
      catalog_.Annotate("dataset", "file1", "quality", "curated").ok());
  EXPECT_TRUE(catalog_.Annotate("transformation", "trans1", "author",
                                "alice")
                  .ok());
  EXPECT_TRUE(
      catalog_.Annotate("derivation", "usetrans1", "campaign", "dr1").ok());
  EXPECT_EQ(catalog_.GetDataset("file1")->annotations.GetString("quality"),
            "curated");
  EXPECT_EQ(
      catalog_.GetTransformation("trans1")->annotations().GetString("author"),
      "alice");
  EXPECT_TRUE(
      catalog_.Annotate("dataset", "ghost", "k", "v").IsNotFound());
  EXPECT_FALSE(catalog_.Annotate("widget", "file1", "k", "v").ok());
}

TEST_F(CatalogTest, DiscoveryByPrefixAndPredicate) {
  ASSERT_TRUE(
      catalog_.Annotate("dataset", "file1", "quality", "curated").ok());
  DatasetQuery by_prefix;
  by_prefix.name_prefix = "file";
  EXPECT_EQ(catalog_.FindDatasets(by_prefix).size(), 3u);
  DatasetQuery by_attr;
  by_attr.predicates = {{"quality", PredicateOp::kEq, "curated"}};
  EXPECT_EQ(catalog_.FindDatasets(by_attr),
            std::vector<std::string>{"file1"});
  DatasetQuery limited;
  limited.limit = 2;
  EXPECT_EQ(catalog_.FindDatasets(limited).size(), 2u);
}

TEST_F(CatalogTest, AttributeEqualityIndexMatchesScanSemantics) {
  ASSERT_TRUE(catalog_.Annotate("dataset", "file1", "science", "astro").ok());
  ASSERT_TRUE(catalog_.Annotate("dataset", "file2", "science", "astro").ok());
  ASSERT_TRUE(
      catalog_.Annotate("dataset", "file3", "science", "physics").ok());
  ASSERT_TRUE(
      catalog_.Annotate("dataset", "file1", "events", int64_t{500}).ok());

  DatasetQuery eq;
  eq.predicates = {{"science", PredicateOp::kEq, "astro"}};
  EXPECT_EQ(catalog_.FindDatasets(eq),
            (std::vector<std::string>{"file1", "file2"}));

  // Conjunction: index narrows, remaining predicates still filter.
  DatasetQuery conj;
  conj.predicates = {{"science", PredicateOp::kEq, "astro"},
                     {"events", PredicateOp::kGe, int64_t{100}}};
  EXPECT_EQ(catalog_.FindDatasets(conj),
            std::vector<std::string>{"file1"});

  // Numeric coercion: double operand matches int annotation.
  DatasetQuery numeric;
  numeric.predicates = {{"events", PredicateOp::kEq, 500.0}};
  EXPECT_EQ(catalog_.FindDatasets(numeric),
            std::vector<std::string>{"file1"});

  // Overwriting the attribute re-indexes.
  ASSERT_TRUE(
      catalog_.Annotate("dataset", "file1", "science", "physics").ok());
  EXPECT_EQ(catalog_.FindDatasets(eq), std::vector<std::string>{"file2"});

  // Removing a dataset drops its postings.
  ASSERT_TRUE(catalog_.RemoveDataset("file2").ok());
  EXPECT_TRUE(catalog_.FindDatasets(eq).empty());

  // Limits still apply on the indexed path.
  DatasetQuery limited;
  limited.predicates = {{"science", PredicateOp::kEq, "physics"}};
  limited.limit = 1;
  EXPECT_EQ(catalog_.FindDatasets(limited).size(), 1u);
}

TEST_F(CatalogTest, DiscoveryVirtualVersusMaterialized) {
  Replica r;
  r.dataset = "file2";
  r.site = "s";
  ASSERT_TRUE(catalog_.AddReplica(r).ok());
  DatasetQuery materialized;
  materialized.require_materialized = true;
  EXPECT_EQ(catalog_.FindDatasets(materialized),
            std::vector<std::string>{"file2"});
  DatasetQuery virtual_only;
  virtual_only.only_virtual = true;
  NameList virtuals = catalog_.FindDatasets(virtual_only);
  EXPECT_EQ(virtuals.size(), 2u);  // file1 (no replica), file3
}

TEST_F(CatalogTest, DiscoveryTransformationsByTypes) {
  ASSERT_TRUE(catalog_
                  .DefineType(TypeDimension::kContent, "raw-evt",
                              TypeDimensionBaseName(TypeDimension::kContent))
                  .ok());
  Transformation tr("typed-tr", Transformation::Kind::kSimple);
  DatasetType raw;
  raw.content = "raw-evt";
  FormalArg in{.name = "in", .direction = ArgDirection::kIn, .types = {raw}};
  FormalArg out{.name = "out", .direction = ArgDirection::kOut, .types = {raw}};
  ASSERT_TRUE(tr.AddArg(in).ok());
  ASSERT_TRUE(tr.AddArg(out).ok());
  tr.set_executable("/x");
  ASSERT_TRUE(catalog_.DefineTransformation(tr).ok());

  // Untyped formals (trans1/trans2) accept anything, so a typed
  // dataset can flow into all three transformations...
  TransformationQuery q;
  q.consumes = raw;
  EXPECT_EQ(catalog_.FindTransformations(q),
            (std::vector<std::string>{"trans1", "trans2", "typed-tr"}));
  // ...but only typed-tr *declares* that it yields raw-evt data.
  TransformationQuery p;
  p.produces = raw;
  EXPECT_EQ(catalog_.FindTransformations(p),
            std::vector<std::string>{"typed-tr"});
  // An untyped dataset conforms only to untyped formals: typed-tr
  // demands raw-evt and is excluded.
  TransformationQuery untyped_ok;
  untyped_ok.consumes = DatasetType::Any();
  EXPECT_EQ(catalog_.FindTransformations(untyped_ok).size(), 2u);
}

TEST_F(CatalogTest, DiscoveryDerivations) {
  DerivationQuery q;
  q.transformation = "trans1";
  EXPECT_EQ(catalog_.FindDerivations(q),
            std::vector<std::string>{"usetrans1"});
  DerivationQuery reads;
  reads.reads_dataset = "file2";
  EXPECT_EQ(catalog_.FindDerivations(reads),
            std::vector<std::string>{"usetrans2"});
  DerivationQuery writes;
  writes.writes_dataset = "file2";
  EXPECT_EQ(catalog_.FindDerivations(writes),
            std::vector<std::string>{"usetrans1"});
}

TEST_F(CatalogTest, EquivalentDerivationDedup) {
  Derivation same("differently-named", "trans1");
  ASSERT_TRUE(
      same.AddArg(ActualArg::DatasetRef("a2", "file2", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      same.AddArg(ActualArg::DatasetRef("a1", "file1", ArgDirection::kIn))
          .ok());
  Result<std::string> found = catalog_.FindEquivalentDerivation(same);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, "usetrans1");

  // Computed only when outputs are materialized.
  EXPECT_FALSE(catalog_.HasBeenComputed(same));
  Replica r;
  r.dataset = "file2";
  r.site = "s";
  ASSERT_TRUE(catalog_.AddReplica(r).ok());
  EXPECT_TRUE(catalog_.HasBeenComputed(same));

  Derivation different("d", "trans1");
  ASSERT_TRUE(
      different
          .AddArg(ActualArg::DatasetRef("a2", "other", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      different
          .AddArg(ActualArg::DatasetRef("a1", "file1", ArgDirection::kIn))
          .ok());
  EXPECT_FALSE(catalog_.FindEquivalentDerivation(different).ok());
}

TEST_F(CatalogTest, RemoveTransformationBlockedByDerivations) {
  EXPECT_TRUE(catalog_.RemoveTransformation("trans1").code() ==
              StatusCode::kFailedPrecondition);
  ASSERT_TRUE(catalog_.RemoveDerivation("usetrans1").ok());
  EXPECT_TRUE(catalog_.RemoveTransformation("trans1").ok());
  EXPECT_FALSE(catalog_.HasTransformation("trans1"));
}

TEST_F(CatalogTest, RemoveDerivationClearsProducerAndIndexes) {
  ASSERT_TRUE(catalog_.RemoveDerivation("usetrans2").ok());
  EXPECT_TRUE(catalog_.ProducerOf("file3").status().IsNotFound());
  EXPECT_TRUE(catalog_.ConsumersOf("file2").empty());
  EXPECT_FALSE(catalog_.HasDerivation("usetrans2"));
}

TEST_F(CatalogTest, RemoveDatasetCascadesReplicas) {
  Replica r;
  r.dataset = "file1";
  r.site = "s";
  Result<std::string> id = catalog_.AddReplica(r);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(catalog_.RemoveDataset("file1").ok());
  EXPECT_FALSE(catalog_.HasDataset("file1"));
  EXPECT_TRUE(catalog_.GetReplica(*id).status().IsNotFound());
}

TEST_F(CatalogTest, VersionBumpsOnMutation) {
  uint64_t before = catalog_.version();
  ASSERT_TRUE(catalog_.Annotate("dataset", "file1", "k", "v").ok());
  EXPECT_GT(catalog_.version(), before);
}

TEST_F(CatalogTest, SetDatasetSize) {
  ASSERT_TRUE(catalog_.SetDatasetSize("file2", 4096).ok());
  EXPECT_EQ(catalog_.GetDataset("file2")->size_bytes, 4096);
  EXPECT_FALSE(catalog_.SetDatasetSize("file2", -4).ok());
  EXPECT_TRUE(catalog_.SetDatasetSize("ghost", 1).IsNotFound());
}

// ------------------------- Query planner -----------------------------

// Regression for selectivity ordering: with several equality
// predicates, the planner must drive from the *smallest* posting list,
// not the first predicate written.
TEST_F(CatalogTest, PlannerPicksMostSelectivePostingList) {
  for (int i = 0; i < 50; ++i) {
    Dataset ds;
    ds.name = "bulk" + std::to_string(i);
    ASSERT_TRUE(catalog_.DefineDataset(ds).ok());
    ASSERT_TRUE(catalog_.Annotate("dataset", ds.name, "tier", "bronze").ok());
  }
  ASSERT_TRUE(catalog_.Annotate("dataset", "bulk7", "rare", "yes").ok());
  ASSERT_TRUE(catalog_.Annotate("dataset", "bulk9", "rare", "yes").ok());

  // The broad predicate is listed first; the plan must still pick the
  // two-element "rare" posting list as driver.
  DatasetQuery query;
  query.predicates = {{"tier", PredicateOp::kEq, "bronze"},
                      {"rare", PredicateOp::kEq, "yes"}};
  QueryPlan plan = catalog_.ExplainFindDatasets(query);
  EXPECT_EQ(plan.path, AccessPath::kAttributeIndex);
  EXPECT_EQ(plan.driver, "attr rare=yes");
  EXPECT_EQ(plan.estimated_candidates, 2u);
  EXPECT_EQ(plan.posting_lists, 2u);
  EXPECT_EQ(catalog_.FindDatasets(query),
            (std::vector<std::string>{"bulk7", "bulk9"}));

  // Same query with the predicates swapped plans identically.
  std::swap(query.predicates[0], query.predicates[1]);
  QueryPlan swapped = catalog_.ExplainFindDatasets(query);
  EXPECT_EQ(swapped.driver, plan.driver);
  EXPECT_EQ(swapped.estimated_candidates, plan.estimated_candidates);
  EXPECT_EQ(catalog_.FindDatasets(query),
            (std::vector<std::string>{"bulk7", "bulk9"}));
}

TEST_F(CatalogTest, PlannerTypeIndexDrivesTypeQueries) {
  ASSERT_TRUE(catalog_
                  .DefineType(TypeDimension::kContent, "Survey",
                              TypeDimensionBaseName(TypeDimension::kContent))
                  .ok());
  ASSERT_TRUE(
      catalog_.DefineType(TypeDimension::kContent, "SDSS", "Survey").ok());
  Dataset ds;
  ds.name = "sky";
  ds.type.content = "SDSS";
  ASSERT_TRUE(catalog_.DefineDataset(ds).ok());

  // Querying the parent type finds the subtype dataset via the
  // ancestry closure index.
  DatasetQuery query;
  query.type = DatasetType{};
  query.type->content = "Survey";
  QueryPlan plan = catalog_.ExplainFindDatasets(query);
  EXPECT_EQ(plan.path, AccessPath::kTypeIndex);
  EXPECT_EQ(plan.estimated_candidates, 1u);
  EXPECT_EQ(catalog_.FindDatasets(query), std::vector<std::string>{"sky"});

  // Removing the dataset drops its type postings.
  ASSERT_TRUE(catalog_.RemoveDataset("sky").ok());
  EXPECT_TRUE(catalog_.FindDatasets(query).empty());
}

TEST_F(CatalogTest, PlannerMaterializedSetAndScanPaths) {
  Replica r;
  r.dataset = "file2";
  r.site = "s";
  Result<std::string> id = catalog_.AddReplica(r);
  ASSERT_TRUE(id.ok());

  DatasetQuery materialized;
  materialized.require_materialized = true;
  QueryPlan plan = catalog_.ExplainFindDatasets(materialized);
  EXPECT_EQ(plan.path, AccessPath::kMaterializedSet);
  EXPECT_EQ(plan.estimated_candidates, 1u);

  // Invalidation shrinks the materialized set incrementally.
  ASSERT_TRUE(catalog_.InvalidateReplica(*id).ok());
  EXPECT_EQ(catalog_.ExplainFindDatasets(materialized).estimated_candidates,
            0u);
  EXPECT_TRUE(catalog_.FindDatasets(materialized).empty());

  DatasetQuery by_prefix;
  by_prefix.name_prefix = "file";
  EXPECT_EQ(catalog_.ExplainFindDatasets(by_prefix).path,
            AccessPath::kNamePrefixRange);
  EXPECT_EQ(catalog_.ExplainFindDatasets(DatasetQuery{}).path,
            AccessPath::kFullScan);
}

TEST_F(CatalogTest, DerivationQueryUsesEdgeIndexes) {
  DerivationQuery reads;
  reads.reads_dataset = "file2";
  QueryPlan plan = catalog_.ExplainFindDerivations(reads);
  EXPECT_EQ(plan.path, AccessPath::kReadsIndex);
  EXPECT_EQ(plan.estimated_candidates, 1u);
  EXPECT_EQ(catalog_.FindDerivations(reads),
            std::vector<std::string>{"usetrans2"});

  DerivationQuery writes;
  writes.writes_dataset = "file2";
  EXPECT_EQ(catalog_.ExplainFindDerivations(writes).path,
            AccessPath::kWritesIndex);
  EXPECT_EQ(catalog_.FindDerivations(writes),
            std::vector<std::string>{"usetrans1"});

  // Intersection: writes file2 AND uses trans1.
  DerivationQuery both;
  both.writes_dataset = "file2";
  both.transformation = "trans1";
  EXPECT_EQ(catalog_.ExplainFindDerivations(both).posting_lists, 2u);
  EXPECT_EQ(catalog_.FindDerivations(both),
            std::vector<std::string>{"usetrans1"});

  // Removal drops the edge postings.
  ASSERT_TRUE(catalog_.RemoveDerivation("usetrans1").ok());
  EXPECT_TRUE(catalog_.FindDerivations(writes).empty());
  EXPECT_EQ(catalog_.ExplainFindDerivations(writes).estimated_candidates, 0u);
}

// --------------------------- Changelog -------------------------------

TEST_F(CatalogTest, ChangelogCoversEveryVersionBump) {
  uint64_t base = catalog_.version();
  ASSERT_TRUE(catalog_.Annotate("dataset", "file1", "k", "v").ok());
  Replica r;
  r.dataset = "file2";
  r.site = "s";
  Result<std::string> id = catalog_.AddReplica(r);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(catalog_.InvalidateReplica(*id).ok());

  Result<std::vector<CatalogChange>> changes = catalog_.ChangesSince(base);
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), catalog_.version() - base);
  // Versions are consecutive — the delta protocol relies on that.
  for (size_t i = 0; i < changes->size(); ++i) {
    EXPECT_EQ((*changes)[i].version, base + i + 1);
  }
  // Replica mutations surface as upserts of their dataset.
  EXPECT_EQ((*changes)[1].kind, "dataset");
  EXPECT_EQ((*changes)[1].name, "file2");
  EXPECT_EQ((*changes)[2].kind, "dataset");
  EXPECT_EQ((*changes)[2].name, "file2");

  // Asking from the current version yields the empty delta; asking
  // from the future is an error.
  EXPECT_TRUE(catalog_.ChangesSince(catalog_.version())->empty());
  EXPECT_FALSE(catalog_.ChangesSince(catalog_.version() + 1).ok());
}

TEST_F(CatalogTest, ChangelogWindowBoundsAndFallbackSignal) {
  catalog_.set_changelog_capacity(4);
  uint64_t base = catalog_.version();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        catalog_.Annotate("dataset", "file1", "k" + std::to_string(i), i)
            .ok());
  }
  // The window only reaches back 4 versions now.
  EXPECT_EQ(catalog_.changelog_floor(), catalog_.version() - 4);
  EXPECT_FALSE(catalog_.ChangesSince(base).ok());
  Result<std::vector<CatalogChange>> tail =
      catalog_.ChangesSince(catalog_.version() - 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 4u);
}

// --------------------------- Persistence -----------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/vdg_journal_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistenceTest, ReopenReplaysEverything) {
  {
    VirtualDataCatalog catalog("persist.org",
                               std::make_unique<FileJournal>(path_));
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.LoadTypePreset().ok());
    ASSERT_TRUE(catalog.ImportVdl(kChainVdl).ok());
    ASSERT_TRUE(
        catalog.Annotate("dataset", "file1", "quality", "curated").ok());
    Replica r;
    r.dataset = "file2";
    r.site = "uchicago";
    r.size_bytes = 55;
    ASSERT_TRUE(catalog.AddReplica(r).ok());
    Invocation iv;
    iv.derivation = "usetrans1";
    iv.context.site = "uchicago";
    iv.duration_s = 12;
    ASSERT_TRUE(catalog.RecordInvocation(iv).ok());
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  VirtualDataCatalog reopened("persist.org",
                              std::make_unique<FileJournal>(path_));
  ASSERT_TRUE(reopened.Open().ok());
  CatalogStats stats = reopened.Stats();
  EXPECT_EQ(stats.transformations, 2u);
  EXPECT_EQ(stats.derivations, 2u);
  EXPECT_EQ(stats.datasets, 3u);
  EXPECT_EQ(stats.replicas, 1u);
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_EQ(reopened.GetDataset("file1")->annotations.GetString("quality"),
            "curated");
  EXPECT_EQ(*reopened.ProducerOf("file2"), "usetrans1");
  EXPECT_TRUE(reopened.IsMaterialized("file2"));
  EXPECT_TRUE(reopened.HasType(TypeDimension::kFormat, "Tar-archive"));
  // Id counters continue past replayed ids.
  Replica r2;
  r2.dataset = "file3";
  r2.site = "x";
  EXPECT_EQ(*reopened.AddReplica(r2), "rp-2");
}

TEST_F(PersistenceTest, RemovalsAndInvalidationsSurviveReplay) {
  {
    VirtualDataCatalog catalog("persist.org",
                               std::make_unique<FileJournal>(path_));
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.ImportVdl(kChainVdl).ok());
    Replica r;
    r.dataset = "file2";
    r.site = "s";
    Result<std::string> id = catalog.AddReplica(r);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(catalog.InvalidateReplica(*id).ok());
    ASSERT_TRUE(catalog.RemoveDerivation("usetrans2").ok());
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  VirtualDataCatalog reopened("persist.org",
                              std::make_unique<FileJournal>(path_));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(reopened.HasDerivation("usetrans2"));
  EXPECT_FALSE(reopened.IsMaterialized("file2"));
  EXPECT_EQ(reopened.ReplicasOf("file2", false).size(), 1u);
}

TEST(VectorJournalTest, CapturesRecords) {
  auto journal = std::make_unique<VectorJournal>();
  VectorJournal* raw = journal.get();
  VirtualDataCatalog catalog("v.org", std::move(journal));
  ASSERT_TRUE(catalog.Open().ok());
  ASSERT_TRUE(catalog.ImportVdl(kChainVdl).ok());
  EXPECT_GE(raw->records().size(), 5u);  // 2 TR + 3 DS + 2 DV at least
}

// ------------------------------ Codec --------------------------------

TEST(CodecTest, FieldEscapingRoundTrip) {
  for (const std::string& field :
       {std::string("plain"), std::string("has|pipe"),
        std::string("multi\nline"), std::string("back\\slash"),
        std::string("all|three\n\\mixed|")}) {
    std::string escaped = codec::EscapeField(field);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    Result<std::string> back = codec::UnescapeField(escaped);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, field);
  }
}

TEST(CodecTest, RecordSplitJoinRoundTrip) {
  std::vector<std::string> fields{"RP", "id|1", "data\nset", "site"};
  Result<std::vector<std::string>> back =
      codec::SplitRecord(codec::JoinRecord(fields));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fields);
}

TEST(CodecTest, ReplicaRoundTrip) {
  Replica r;
  r.id = "rp-9";
  r.dataset = "ds|weird";
  r.site = "uchicago";
  r.storage_element = "se1";
  r.physical_path = "/data/x";
  r.size_bytes = 123456789;
  r.created_at = 42.5;
  r.valid = false;
  r.annotations.Set("checksum", "abc");
  Result<std::vector<std::string>> fields =
      codec::SplitRecord(codec::EncodeReplica(r));
  ASSERT_TRUE(fields.ok());
  Result<Replica> back = codec::DecodeReplica(*fields);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, r.id);
  EXPECT_EQ(back->dataset, r.dataset);
  EXPECT_EQ(back->size_bytes, r.size_bytes);
  EXPECT_EQ(back->valid, false);
  EXPECT_EQ(back->annotations.GetString("checksum"), "abc");
}

TEST(CodecTest, InvocationRoundTrip) {
  Invocation iv;
  iv.id = "iv-3";
  iv.derivation = "dv";
  iv.context.site = "caltech";
  iv.context.host = "n7";
  iv.start_time = 10.25;
  iv.duration_s = 99;
  iv.cpu_seconds = 88;
  iv.peak_memory_bytes = 1 << 20;
  iv.exit_code = 2;
  iv.succeeded = false;
  iv.consumed_replicas = {"rp-1", "rp-2"};
  iv.produced_replicas = {"rp-3"};
  iv.annotations.Set("note", "retry");
  Result<std::vector<std::string>> fields =
      codec::SplitRecord(codec::EncodeInvocation(iv));
  ASSERT_TRUE(fields.ok());
  Result<Invocation> back = codec::DecodeInvocation(*fields);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->consumed_replicas, iv.consumed_replicas);
  EXPECT_EQ(back->produced_replicas, iv.produced_replicas);
  EXPECT_EQ(back->exit_code, 2);
  EXPECT_FALSE(back->succeeded);
  EXPECT_EQ(back->annotations.GetString("note"), "retry");
}

TEST(CodecTest, DecodeRejectsTruncatedRecords) {
  EXPECT_FALSE(codec::DecodeReplica({"RP", "id"}).ok());
  EXPECT_FALSE(codec::DecodeInvocation({"IV", "id"}).ok());
}

}  // namespace
}  // namespace vdg
