#include "common/strings.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, AdjacentSeparatorsYieldEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyPiece) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitTest, TrimmedDropsEmptyAndWhitespace) {
  EXPECT_EQ(StrSplitTrimmed(" a , ,b ,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

// Property: Join then Split is the identity for pieces with no
// separator characters.
class SplitJoinRoundTrip
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(SplitJoinRoundTrip, JoinThenSplitIsIdentity) {
  const std::vector<std::string>& pieces = GetParam();
  std::string joined = StrJoin(pieces, "|");
  EXPECT_EQ(StrSplit(joined, '|'), pieces);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SplitJoinRoundTrip,
    ::testing::Values(std::vector<std::string>{"a"},
                      std::vector<std::string>{"a", "b"},
                      std::vector<std::string>{"", "x", ""},
                      std::vector<std::string>{"run1.exp15", "T1932", "raw"},
                      std::vector<std::string>{"with space", "tab\there"}));

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\nabc\r "), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("vdp://host/x", "vdp://"));
  EXPECT_FALSE(StartsWith("vd", "vdp://"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt2"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC-123"), "abc-123");
}

TEST(IsValidIdentifierTest, AcceptsVdgNames) {
  EXPECT_TRUE(IsValidIdentifier("t1"));
  EXPECT_TRUE(IsValidIdentifier("run1.exp15.T1932.raw"));
  EXPECT_TRUE(IsValidIdentifier("_underscore"));
  EXPECT_TRUE(IsValidIdentifier("Dataset-format"));
  EXPECT_TRUE(IsValidIdentifier("a"));
}

TEST(IsValidIdentifierTest, RejectsBadNames) {
  EXPECT_FALSE(IsValidIdentifier(""));
  EXPECT_FALSE(IsValidIdentifier("1leading-digit"));
  EXPECT_FALSE(IsValidIdentifier("-leading-dash"));
  EXPECT_FALSE(IsValidIdentifier("has space"));
  EXPECT_FALSE(IsValidIdentifier("slash/inside"));
  EXPECT_FALSE(IsValidIdentifier(".leading-dot"));
}

TEST(StrReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(StrReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(StrReplaceAll("none", "x", "y"), "none");
  EXPECT_EQ(StrReplaceAll("x", "", "y"), "x");  // empty pattern: no-op
}

TEST(FormatDoubleTest, CompactRendering) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

}  // namespace
}  // namespace vdg
