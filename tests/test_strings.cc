#include "common/strings.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, AdjacentSeparatorsYieldEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyPiece) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitTest, TrimmedDropsEmptyAndWhitespace) {
  EXPECT_EQ(StrSplitTrimmed(" a , ,b ,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

// Property: Join then Split is the identity for pieces with no
// separator characters.
class SplitJoinRoundTrip
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(SplitJoinRoundTrip, JoinThenSplitIsIdentity) {
  const std::vector<std::string>& pieces = GetParam();
  std::string joined = StrJoin(pieces, "|");
  EXPECT_EQ(StrSplit(joined, '|'), pieces);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SplitJoinRoundTrip,
    ::testing::Values(std::vector<std::string>{"a"},
                      std::vector<std::string>{"a", "b"},
                      std::vector<std::string>{"", "x", ""},
                      std::vector<std::string>{"run1.exp15", "T1932", "raw"},
                      std::vector<std::string>{"with space", "tab\there"}));

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\nabc\r "), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("vdp://host/x", "vdp://"));
  EXPECT_FALSE(StartsWith("vd", "vdp://"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt2"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC-123"), "abc-123");
}

TEST(IsValidIdentifierTest, AcceptsVdgNames) {
  EXPECT_TRUE(IsValidIdentifier("t1"));
  EXPECT_TRUE(IsValidIdentifier("run1.exp15.T1932.raw"));
  EXPECT_TRUE(IsValidIdentifier("_underscore"));
  EXPECT_TRUE(IsValidIdentifier("Dataset-format"));
  EXPECT_TRUE(IsValidIdentifier("a"));
}

TEST(IsValidIdentifierTest, RejectsBadNames) {
  EXPECT_FALSE(IsValidIdentifier(""));
  EXPECT_FALSE(IsValidIdentifier("1leading-digit"));
  EXPECT_FALSE(IsValidIdentifier("-leading-dash"));
  EXPECT_FALSE(IsValidIdentifier("has space"));
  EXPECT_FALSE(IsValidIdentifier("slash/inside"));
  EXPECT_FALSE(IsValidIdentifier(".leading-dot"));
}

TEST(StrReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(StrReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(StrReplaceAll("none", "x", "y"), "none");
  EXPECT_EQ(StrReplaceAll("x", "", "y"), "x");  // empty pattern: no-op
}

TEST(FormatDoubleTest, CompactRendering) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

TEST(SymbolTableTest, InternIsIdempotentAndDense) {
  SymbolTable table;
  SymbolTable::Id a = table.Intern("alpha");
  SymbolTable::Id b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.NameOf(b), "beta");
  EXPECT_EQ(table.Find("alpha"), a);
  EXPECT_EQ(table.Find("missing"), SymbolTable::kNoSymbol);
}

TEST(SymbolTableTest, ViewIsFrozenAtPublish) {
  SymbolTable table;
  SymbolTable::Id a = table.Intern("alpha");
  SymbolTable::View view = table.Publish();
  EXPECT_FALSE(table.dirty());
  SymbolTable::Id b = table.Intern("beta");
  EXPECT_TRUE(table.dirty());
  // The published view resolves only what existed at Publish() time.
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.NameOf(a), "alpha");
  EXPECT_EQ(view.FindId("alpha"), a);
  EXPECT_EQ(view.FindId("beta"), SymbolTable::kNoSymbol);
  EXPECT_TRUE(view.NameOf(b).empty());
  SymbolTable::View fresh = table.Publish();
  EXPECT_EQ(fresh.FindId("beta"), b);
  // The stale view keeps working after the table moves on.
  EXPECT_EQ(view.NameOf(a), "alpha");
}

TEST(SymbolTableTest, SurvivesChunkBoundaries) {
  // Push well past one chunk so the spine grows, then verify every
  // symbol still resolves both ways from the table and a view.
  SymbolTable table;
  constexpr size_t kCount = 3000;
  std::vector<SymbolTable::Id> ids;
  for (size_t i = 0; i < kCount; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  SymbolTable::View view = table.Publish();
  EXPECT_EQ(view.size(), kCount);
  for (size_t i = 0; i < kCount; i += 97) {
    std::string name = "sym" + std::to_string(i);
    EXPECT_EQ(table.NameOf(ids[i]), name);
    EXPECT_EQ(view.NameOf(ids[i]), name);
    EXPECT_EQ(view.FindId(name), ids[i]);
  }
}

TEST(SymbolTableTest, HandlesArbitraryBytes) {
  SymbolTable table;
  std::vector<std::string> names = {"", "a=b", "line\nbreak", "π→σ",
                                    std::string(255, 'x'),
                                    std::string("nul\0byte", 8)};
  std::vector<SymbolTable::Id> ids;
  for (const std::string& name : names) ids.push_back(table.Intern(name));
  SymbolTable::View view = table.Publish();
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(view.NameOf(ids[i]), names[i]);
    EXPECT_EQ(view.FindId(names[i]), ids[i]);
  }
}

}  // namespace
}  // namespace vdg
