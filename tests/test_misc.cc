// Coverage for the small surfaces the focused suites skip: logging,
// event-queue counters, storage/topology accessors, stat edge cases.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "grid/event_queue.h"
#include "grid/storage.h"
#include "grid/topology.h"
#include "planner/plan.h"
#include "replication/manager.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

TEST(LoggingTest, ThresholdGatesOutput) {
  LogLevel original = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  // Below-threshold logging is a no-op (must not crash or emit).
  VDG_LOG(Debug) << "suppressed " << 42;
  VDG_LOG(Info) << "suppressed too";
  Logger::set_threshold(LogLevel::kDebug);
  EXPECT_EQ(Logger::threshold(), LogLevel::kDebug);
  Logger::set_threshold(original);
}

TEST(EventQueueTest, DispatchCounterAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dispatched(), 0u);
  for (int i = 0; i < 5; ++i) q.ScheduleAfter(i, [] {});
  EXPECT_EQ(q.pending(), 5u);
  EXPECT_FALSE(q.empty());
  q.RunUntilEmpty();
  EXPECT_EQ(q.dispatched(), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(StorageTest, FilesEnumerates) {
  StorageElement se("site", "se0", 0);
  ASSERT_TRUE(se.Store("b", 2, 0).ok());
  ASSERT_TRUE(se.Store("a", 1, 0).ok());
  std::vector<StoredFile> files = se.Files();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].logical_name, "a");  // map-sorted
  EXPECT_EQ(files[1].size_bytes, 2);
  EXPECT_EQ(se.file_count(), 2u);
  EXPECT_EQ(se.site(), "site");
  EXPECT_EQ(se.name(), "se0");
}

TEST(TopologyTest, TotalSlotsCountsMultiSlotHosts) {
  GridTopology t;
  SiteConfig site;
  site.name = "fat";
  site.hosts.push_back({"h0", 1.0, 4});
  site.hosts.push_back({"h1", 1.0, 2});
  ASSERT_TRUE(t.AddSite(site).ok());
  EXPECT_EQ(t.total_hosts(), 2u);
  EXPECT_EQ(t.total_slots(), 6u);
  EXPECT_EQ(workload::SmallTestbed().total_slots(), 8u);
}

TEST(TopologyTest, HostValidation) {
  GridTopology t;
  SiteConfig bad_factor;
  bad_factor.name = "s";
  bad_factor.hosts.push_back({"h", 0.0, 1});
  EXPECT_FALSE(t.AddSite(bad_factor).ok());
  SiteConfig bad_slots;
  bad_slots.name = "s";
  bad_slots.hosts.push_back({"h", 1.0, 0});
  EXPECT_FALSE(t.AddSite(bad_slots).ok());
  SiteConfig bad_name;
  bad_name.name = "has space";
  EXPECT_FALSE(t.AddSite(bad_name).ok());
  EXPECT_TRUE(t.GetSite("missing").status().IsNotFound());
}

TEST(PlanTest, EnumToStringCoverage) {
  EXPECT_STREQ(ShippingPatternToString(ShippingPattern::kCollocated),
               "collocated");
  EXPECT_STREQ(ShippingPatternToString(ShippingPattern::kProcedureToData),
               "procedure-to-data");
  EXPECT_STREQ(ShippingPatternToString(ShippingPattern::kDataToProcedure),
               "data-to-procedure");
  EXPECT_STREQ(ShippingPatternToString(ShippingPattern::kShipBoth),
               "ship-both");
  EXPECT_STREQ(MaterializationModeToString(MaterializationMode::kFetch),
               "fetch");
  EXPECT_STREQ(
      MaterializationModeToString(MaterializationMode::kAlreadyLocal),
      "already-local");
  ExecutionPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
}

TEST(ReplicationStatsTest, RatiosAreSafeWhenEmpty) {
  ReplicationStats stats;
  EXPECT_EQ(stats.hit_rate(), 0.0);
  EXPECT_EQ(stats.mean_latency_s(), 0.0);
  stats.local_hits = 3;
  stats.remote_fetches = 1;
  stats.total_latency_s = 8.0;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(stats.mean_latency_s(), 2.0);
}

}  // namespace
}  // namespace vdg
