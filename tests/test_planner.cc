#include "planner/planner.h"

#include <gtest/gtest.h>

#include "planner/expansion.h"
#include "workload/hep.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

// trans1..trans5 from Appendix A (trans4/trans5 compound).
constexpr const char* kCompoundVdl = R"(
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
TR trans3( input a2, input a1, output a3 ) {
  argument parg = "-p foo";
  argument stdin = ${input:a2};
  argument farg = "-f "${input:a1};
  argument stdout = ${output:a3};
  exec = "/usr/bin/app3";
}
TR trans4( input a2, input a1,
           inout a5=@{inout:"anywhere":""},
           inout a4=@{inout:"somewhere":""},
           output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans2( a2=${output:a5}, a1=${a2} );
  trans3( a2=${input:a5}, a1=${input:a4}, a3=${output:a3} );
}
TR trans5( input a2, input a1,
           inout a4=@{inout:"someplace":""},
           output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans4( a2=${input:a4}, a1=${a2}, a3=${a3} );
}
DS f1 : Dataset size="1000";
DS f2 : Dataset size="1000";
DV use4->trans4( a2=@{input:"f2"}, a1=@{input:"f1"},
                 a3=@{output:"f3"} );
DV use5->trans5( a2=@{input:"f2"}, a1=@{input:"f1"},
                 a3=@{output:"f5out"} );
)";

// ----------------------------- Expansion -----------------------------

class ExpansionTest : public ::testing::Test {
 protected:
  ExpansionTest() : catalog_("exp.org") {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(kCompoundVdl).ok());
  }
  VirtualDataCatalog catalog_;
};

TEST_F(ExpansionTest, SimpleDerivationExpandsToItself) {
  Derivation dv("plain", "trans1");
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a2", "x", ArgDirection::kOut)).ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "f1", ArgDirection::kIn)).ok());
  Result<std::vector<Derivation>> subs = ExpandDerivation(catalog_, dv);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs->size(), 1u);
  EXPECT_EQ((*subs)[0].name(), "plain");
}

TEST_F(ExpansionTest, Trans4ExpandsToThreeStages) {
  Result<Derivation> dv = catalog_.GetDerivation("use4");
  ASSERT_TRUE(dv.ok());
  Result<std::vector<Derivation>> subs = ExpandDerivation(catalog_, *dv);
  ASSERT_TRUE(subs.ok()) << subs.status();
  ASSERT_EQ(subs->size(), 3u);
  EXPECT_EQ((*subs)[0].transformation(), "trans1");
  EXPECT_EQ((*subs)[1].transformation(), "trans2");
  EXPECT_EQ((*subs)[2].transformation(), "trans3");
  // Stage 1 writes the a4 temp from compound input a1=f1.
  EXPECT_EQ((*subs)[0].InputDatasets(), std::vector<std::string>{"f1"});
  EXPECT_EQ((*subs)[0].OutputDatasets(),
            std::vector<std::string>{"use4.a4"});
  // Stage 2 reads f2 into the a5 temp.
  EXPECT_EQ((*subs)[1].InputDatasets(), std::vector<std::string>{"f2"});
  // Stage 3 joins both temps into the final output.
  std::vector<std::string> stage3_inputs = (*subs)[2].InputDatasets();
  std::sort(stage3_inputs.begin(), stage3_inputs.end());
  EXPECT_EQ(stage3_inputs,
            (std::vector<std::string>{"use4.a4", "use4.a5"}));
  EXPECT_EQ((*subs)[2].OutputDatasets(), std::vector<std::string>{"f3"});
}

TEST_F(ExpansionTest, NestedCompoundFlattensRecursively) {
  Result<Derivation> dv = catalog_.GetDerivation("use5");
  ASSERT_TRUE(dv.ok());
  Result<std::vector<Derivation>> subs = ExpandDerivation(catalog_, *dv);
  ASSERT_TRUE(subs.ok()) << subs.status();
  // trans5 = trans1 + trans4(= 3 stages) = 4 simple derivations.
  ASSERT_EQ(subs->size(), 4u);
  EXPECT_EQ((*subs)[0].transformation(), "trans1");
  // The nested temp names are scoped by the synthesized child name.
  EXPECT_EQ((*subs)[1].OutputDatasets(),
            std::vector<std::string>{"use5.c1.a4"});
  EXPECT_EQ((*subs)[3].OutputDatasets(),
            std::vector<std::string>{"f5out"});
}

TEST_F(ExpansionTest, TempNamesAreScopedPerDerivation) {
  Derivation again("use4b", "trans4");
  ASSERT_TRUE(
      again.AddArg(ActualArg::DatasetRef("a2", "f2", ArgDirection::kIn))
          .ok());
  ASSERT_TRUE(
      again.AddArg(ActualArg::DatasetRef("a1", "f1", ArgDirection::kIn))
          .ok());
  ASSERT_TRUE(again
                  .AddArg(ActualArg::DatasetRef("a3", "f3b",
                                                ArgDirection::kOut))
                  .ok());
  Result<std::vector<Derivation>> subs = ExpandDerivation(catalog_, again);
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ((*subs)[0].OutputDatasets(),
            std::vector<std::string>{"use4b.a4"});
}

TEST(StripNamespaceTest, Basics) {
  EXPECT_EQ(StripNamespace("ns::tr"), "tr");
  EXPECT_EQ(StripNamespace("tr"), "tr");
  EXPECT_EQ(StripNamespace("a::b::c"), "c");
}

// ------------------------------ Planner ------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : catalog_("plan.org"),
        topology_(workload::SmallTestbed()),
        planner_(catalog_, topology_, nullptr, estimator_) {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR stepA( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/a";
}
TR stepB( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/b";
}
DS raw : Dataset size="1000000";
DV makeMid->stepA( out=@{output:"mid"}, in=@{input:"raw"} );
DV makeFinal->stepB( out=@{output:"final"}, in=@{input:"mid"} );
)")
                    .ok());
    AddReplica("raw", "east", 1000000);
    options_.target_site = "east";
  }

  void AddReplica(const std::string& ds, const std::string& site,
                  int64_t bytes) {
    Replica r;
    r.dataset = ds;
    r.site = site;
    r.size_bytes = bytes;
    ASSERT_TRUE(catalog_.AddReplica(r).ok());
  }

  VirtualDataCatalog catalog_;
  GridTopology topology_;
  CostEstimator estimator_;
  RequestPlanner planner_;
  PlannerOptions options_;
};

TEST_F(PlannerTest, RerunPlanResolvesFullChain) {
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->mode, MaterializationMode::kRerun);
  ASSERT_EQ(plan->nodes.size(), 2u);
  EXPECT_EQ(plan->nodes[0].derivation.name(), "makeMid");
  EXPECT_EQ(plan->nodes[1].derivation.name(), "makeFinal");
  EXPECT_EQ(plan->nodes[1].deps, std::vector<size_t>{0});
  EXPECT_GT(plan->est_makespan_s, 0.0);
  EXPECT_GT(plan->est_compute_s, 0.0);
}

TEST_F(PlannerTest, AlreadyLocalShortCircuits) {
  AddReplica("final", "east", 10);
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->mode, MaterializationMode::kAlreadyLocal);
  EXPECT_TRUE(plan->empty());
}

TEST_F(PlannerTest, FetchWinsWhenRemoteCopyIsCheap) {
  AddReplica("final", "west", 10);  // tiny: fetch is nearly free
  estimator_.set_default_runtime(1000.0);
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->mode, MaterializationMode::kFetch);
  ASSERT_EQ(plan->fetches.size(), 1u);
  EXPECT_EQ(plan->fetches[0].from_site, "west");
  EXPECT_EQ(plan->fetches[0].to_site, "east");
}

TEST_F(PlannerTest, RerunWinsWhenTransferIsExpensive) {
  // A huge remote copy vs a 1-second recompute.
  AddReplica("final", "west", 10LL << 30);
  ASSERT_TRUE(catalog_.SetDatasetSize("final", 10LL << 30).ok());
  AddReplica("mid", "east", 10);
  estimator_.set_default_runtime(1.0);
  Result<RequestPlanner::ModeDecision> decision =
      planner_.DecideMode("final", options_);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->mode, MaterializationMode::kRerun);
  EXPECT_GT(decision->fetch_cost_s, decision->rerun_cost_s);
}

TEST_F(PlannerTest, DisallowFetchForcesRerun) {
  AddReplica("final", "west", 10);
  options_.allow_fetch = false;
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->mode, MaterializationMode::kRerun);
  EXPECT_FALSE(plan->nodes.empty());
}

TEST_F(PlannerTest, ReuseSkipsMaterializedIntermediates) {
  AddReplica("mid", "east", 500);
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->nodes.size(), 1u);  // only makeFinal
  EXPECT_EQ(plan->nodes[0].derivation.name(), "makeFinal");
}

TEST_F(PlannerTest, NoReuseRerunsEverything) {
  AddReplica("mid", "east", 500);
  options_.reuse_materialized = false;
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes.size(), 2u);
}

TEST_F(PlannerTest, RawUnmaterializedInputIsAnError) {
  ASSERT_TRUE(catalog_.ImportVdl(R"(
DS orphan : Dataset;
DV needsOrphan->stepA( out=@{output:"from-orphan"},
                       in=@{input:"orphan"} );
)")
                  .ok());
  Result<ExecutionPlan> plan = planner_.Plan("from-orphan", options_);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlannerTest, UnknownTargetsRejected) {
  EXPECT_TRUE(planner_.Plan("ghost", options_).status().IsNotFound());
  options_.target_site = "mars";
  EXPECT_TRUE(planner_.Plan("final", options_).status().IsNotFound());
}

TEST_F(PlannerTest, FixedSitePolicyPinsEverything) {
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  for (const PlanNode& node : plan->nodes) {
    EXPECT_EQ(node.site, "west");
  }
  // Result must hop back to the target site.
  ASSERT_EQ(plan->fetches.size(), 1u);
  EXPECT_EQ(plan->fetches[0].to_site, "east");
}

TEST_F(PlannerTest, DataLocalPolicyFollowsInputBytes) {
  options_.site_policy = SiteSelectionPolicy::kDataLocal;
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  // raw sits at east, so stage 1 runs at east.
  EXPECT_EQ(plan->nodes[0].site, "east");
}

TEST_F(PlannerTest, MinCostAvoidsNeedlessTransfers) {
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  // Everything can run at east where raw lives: no staging at all.
  for (const PlanNode& node : plan->nodes) {
    EXPECT_EQ(node.site, "east");
    EXPECT_TRUE(node.staging.empty());
  }
  EXPECT_TRUE(plan->fetches.empty());
}

TEST_F(PlannerTest, StagingPlansComputedForRemoteInputs) {
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  // Stage 1 at west must stage raw from east.
  ASSERT_EQ(plan->nodes[0].staging.size(), 1u);
  EXPECT_EQ(plan->nodes[0].staging[0].dataset, "raw");
  EXPECT_EQ(plan->nodes[0].staging[0].from_site, "east");
  EXPECT_GT(plan->nodes[0].staging[0].est_seconds, 0.0);
  // Stage 2's input comes from stage 1 at the same site: no staging.
  EXPECT_TRUE(plan->nodes[1].staging.empty());
}

TEST_F(PlannerTest, ShippingPatternClassification) {
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes[0].pattern, ShippingPattern::kShipBoth);
  EXPECT_EQ(plan->nodes[1].pattern, ShippingPattern::kProcedureToData);
}

TEST_F(PlannerTest, QueuePenaltySteersAway) {
  options_.queue_depth = [](std::string_view site) {
    return site == "east" ? 1000 : 0;
  };
  options_.queue_penalty_s = 10.0;
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  for (const PlanNode& node : plan->nodes) {
    EXPECT_EQ(node.site, "west");
  }
}

TEST_F(PlannerTest, PlanToStringMentionsEverything) {
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("makeMid"), std::string::npos);
  EXPECT_NE(text.find("makeFinal"), std::string::npos);
  EXPECT_NE(text.find("rerun"), std::string::npos);
}

TEST_F(PlannerTest, FeasibilityAssessment) {
  // Default estimates: 2 stages x 60s = 120s makespan.
  Result<RequestPlanner::FeasibilityReport> tight =
      planner_.AssessFeasibility("final", options_, 60.0);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(tight->feasible);
  EXPECT_EQ(tight->derivations_needed, 2u);
  EXPECT_NEAR(tight->est_seconds, 120.0, 1.0);

  Result<RequestPlanner::FeasibilityReport> loose =
      planner_.AssessFeasibility("final", options_, 1000.0);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->feasible);
  EXPECT_EQ(loose->mode, MaterializationMode::kRerun);

  // Already-materialized data is feasible for any deadline.
  AddReplica("final", "east", 10);
  Result<RequestPlanner::FeasibilityReport> instant =
      planner_.AssessFeasibility("final", options_, 0.001);
  ASSERT_TRUE(instant.ok());
  EXPECT_TRUE(instant->feasible);
  EXPECT_EQ(instant->mode, MaterializationMode::kAlreadyLocal);
}

TEST_F(PlannerTest, RequirementsRestrictSiteChoice) {
  // stepA may only run at west, despite raw living at east.
  ASSERT_TRUE(
      catalog_.Annotate("transformation", "stepA", "req.site", "west").ok());
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes[0].site, "west");
  // stepB is unconstrained and follows cost back to east... or stays
  // where its input landed; either way it must not violate stepA.
  ASSERT_EQ(plan->nodes[0].transformation, "stepA");
}

TEST_F(PlannerTest, MinCpuFactorRequirement) {
  GridTopology topology;
  SiteConfig slow;
  slow.name = "slow";
  slow.hosts.push_back({"s0", 1.0, 1});
  SiteConfig fast;
  fast.name = "fast";
  fast.hosts.push_back({"f0", 3.0, 1});
  ASSERT_TRUE(topology.AddSite(slow).ok());
  ASSERT_TRUE(topology.AddSite(fast).ok());
  RequestPlanner planner(catalog_, topology, nullptr, estimator_);
  ASSERT_TRUE(catalog_
                  .Annotate("transformation", "stepA",
                            "req.min_cpu_factor", 2.0)
                  .ok());
  // Make "slow" otherwise attractive: raw is remote to both, so only
  // the requirement differentiates.
  PlannerOptions opts;
  opts.target_site = "slow";
  Result<ExecutionPlan> plan = planner.Plan("final", opts);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->nodes[0].site, "fast");
}

TEST_F(PlannerTest, UnsatisfiableRequirementsFallBackToAllSites) {
  ASSERT_TRUE(catalog_
                  .Annotate("transformation", "stepA", "req.site",
                            "atlantis")
                  .ok());
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());  // best-effort, not an error
  EXPECT_FALSE(plan->nodes[0].site.empty());
}

TEST_F(PlannerTest, FixedPolicyOverridesRequirements) {
  ASSERT_TRUE(
      catalog_.Annotate("transformation", "stepA", "req.site", "east").ok());
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes[0].site, "west");
}

TEST_F(PlannerTest, CompoundDerivationPlansAsExpandedDag) {
  workload::HepOptions hep;
  hep.num_batches = 1;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog_, hep);
  ASSERT_TRUE(workload.ok()) << workload.status();
  AddReplica("cms.batch0.config", "east", 64 * 1024);
  Result<ExecutionPlan> plan =
      planner_.Plan("cms.batch0.ntuple", options_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 4u);  // the four expanded stages
  EXPECT_EQ(plan->nodes[0].transformation, "cms-generate");
  EXPECT_EQ(plan->nodes[3].transformation, "cms-analyze");
  // Chain dependencies: each stage depends on the previous.
  EXPECT_EQ(plan->nodes[1].deps, std::vector<size_t>{0});
  EXPECT_EQ(plan->nodes[3].deps, std::vector<size_t>{2});
}

}  // namespace
}  // namespace vdg
