// Round-trip tests for the XML machine-to-machine wire format: the
// paper notes "an XML version is also implemented for machine-to-
// machine interfaces"; the federation layer ships definitions between
// catalogs in this form.
#include "vdl/xml_parse.h"

#include <gtest/gtest.h>

#include "vdl/printer.h"
#include "vdl/xml.h"

namespace vdg {
namespace {

// ---------------------------- raw XML DOM ----------------------------

TEST(XmlDomTest, ParsesElementsAttributesText) {
  Result<std::unique_ptr<XmlNode>> doc = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<root a=\"1\" b='two'>\n"
      "  <child>hello</child>\n"
      "  <empty/>\n"
      "</root>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlNode& root = **doc;
  EXPECT_EQ(root.name, "root");
  ASSERT_NE(root.FindAttribute("a"), nullptr);
  EXPECT_EQ(*root.FindAttribute("a"), "1");
  EXPECT_EQ(*root.FindAttribute("b"), "two");
  EXPECT_EQ(root.FindAttribute("c"), nullptr);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.FirstChild("child")->text, "hello");
  EXPECT_NE(root.FirstChild("empty"), nullptr);
  EXPECT_EQ(root.FirstChild("nope"), nullptr);
}

TEST(XmlDomTest, DecodesEntities) {
  Result<std::unique_ptr<XmlNode>> doc =
      ParseXml("<r v=\"a&lt;b&amp;c&quot;\">x&gt;y&apos;z</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*(*doc)->FindAttribute("v"), "a<b&c\"");
  EXPECT_EQ((*doc)->text, "x>y'z");
}

TEST(XmlDomTest, SkipsComments) {
  Result<std::unique_ptr<XmlNode>> doc =
      ParseXml("<!-- header --><r><!-- inner --><c/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->children.size(), 1u);
}

TEST(XmlDomTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("<unclosed>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());
  EXPECT_FALSE(ParseXml("<a x=\"1></a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());  // two roots
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlDomTest, NestedChildrenByTag) {
  Result<std::unique_ptr<XmlNode>> doc =
      ParseXml("<r><p i=\"1\"/><q/><p i=\"2\"/></r>");
  ASSERT_TRUE(doc.ok());
  std::vector<const XmlNode*> ps = (*doc)->Children("p");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(*ps[1]->FindAttribute("i"), "2");
}

// ------------------------ VDL wire round trip ------------------------

// Property: for every corpus program, text-VDL -> objects -> XML ->
// objects preserves type signatures, derivation signatures, and the
// printable form.
class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, XmlPreservesPrograms) {
  Result<VdlProgram> original = ParseVdl(GetParam());
  ASSERT_TRUE(original.ok()) << original.status();
  std::string xml = ProgramToXml(*original);
  Result<VdlProgram> decoded = ParseVdlXml(xml);
  ASSERT_TRUE(decoded.ok()) << decoded.status() << "\n" << xml;

  ASSERT_EQ(decoded->transformations.size(),
            original->transformations.size());
  for (size_t i = 0; i < original->transformations.size(); ++i) {
    EXPECT_EQ(decoded->transformations[i].TypeSignature(),
              original->transformations[i].TypeSignature());
    EXPECT_EQ(PrintTransformation(decoded->transformations[i]),
              PrintTransformation(original->transformations[i]));
  }
  ASSERT_EQ(decoded->derivations.size(), original->derivations.size());
  for (size_t i = 0; i < original->derivations.size(); ++i) {
    EXPECT_EQ(decoded->derivations[i].SignatureText(),
              original->derivations[i].SignatureText());
    EXPECT_EQ(decoded->derivations[i].name(),
              original->derivations[i].name());
  }
  ASSERT_EQ(decoded->datasets.size(), original->datasets.size());
  for (size_t i = 0; i < original->datasets.size(); ++i) {
    EXPECT_EQ(decoded->datasets[i].name, original->datasets[i].name);
    EXPECT_EQ(decoded->datasets[i].type, original->datasets[i].type);
    EXPECT_EQ(decoded->datasets[i].size_bytes,
              original->datasets[i].size_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, XmlRoundTrip,
    ::testing::Values(
        // Appendix A basic transformation + derivation.
        R"(
TR t1( output a2, input a1, none env="100000", none pa="500" ) {
  argument parg = "-p "${none:pa};
  argument farg = "-f "${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app3";
  env.MAXMEM = ${none:env};
}
DV d1->example1::t1( a2=@{output:"run1.summary"},
                     a1=@{input:"run1.raw"}, env="20000" );
)",
        // Compound with nested calls and inout defaults.
        R"(
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
TR trans4( input a2, input a1,
           inout a4=@{inout:"somewhere":""}, output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans1( a2=${output:a3}, a1=${input:a4} );
}
)",
        // Typed formals, unions, datasets, escapes.
        R"(
TR typed( input SDSS/Fileset/ASCII a1, input CMS|SDSS a2,
          output */Relation/* a3, none p="quote\"and<angle>" ) {
  exec = "/bin/x";
}
DS file1 : SDSS/Simple/ASCII size="2048" path="/data/<odd>&name";
DV use->typed( a1=@{input:"file1"}, a2=@{input:"file1"},
               a3=@{output:"out.rel"} );
)"));

TEST(XmlWireTest, AnnotationsSurviveTheWire) {
  Result<VdlProgram> program = ParseVdl(
      "TR t( input x ) { exec=\"/b\"; } "
      "DV v->t( x=@{input:\"d\"} ); DS d : CMS;");
  ASSERT_TRUE(program.ok());
  program->transformations[0].annotations().Set("sim.runtime_s", 12.5);
  program->transformations[0].annotations().Set("author", "alice");
  program->derivations[0].annotations().Set("campaign", "dr1");
  program->datasets[0].annotations.Set("curated", true);
  program->datasets[0].descriptor.fields.Set("rows", int64_t{42});

  Result<VdlProgram> decoded = ParseVdlXml(ProgramToXml(*program));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(
      decoded->transformations[0].annotations().GetDouble("sim.runtime_s"),
      12.5);
  EXPECT_EQ(decoded->transformations[0].annotations().GetString("author"),
            "alice");
  EXPECT_EQ(decoded->derivations[0].annotations().GetString("campaign"),
            "dr1");
  EXPECT_EQ(decoded->datasets[0].annotations.GetBool("curated"), true);
  EXPECT_EQ(decoded->datasets[0].descriptor.fields.GetInt("rows"), 42);
}

TEST(XmlWireTest, EnvOverridesAndVersionSurvive) {
  Result<VdlProgram> program =
      ParseVdl("TR t( input x ) { exec=\"/b\"; } DV v->t( x=@{input:\"d\"} );");
  ASSERT_TRUE(program.ok());
  program->transformations[0].set_version("v3");
  program->derivations[0].SetEnvOverride("MAXMEM", "1024");
  Result<VdlProgram> decoded = ParseVdlXml(ProgramToXml(*program));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->transformations[0].version(), "v3");
  EXPECT_EQ(decoded->derivations[0].env_overrides().at("MAXMEM"), "1024");
}

TEST(XmlWireTest, RejectsWrongRootAndElements) {
  EXPECT_FALSE(ParseVdlXml("<notvdl/>").ok());
  EXPECT_FALSE(ParseVdlXml("<vdl><widget/></vdl>").ok());
  EXPECT_TRUE(ParseVdlXml("<vdl></vdl>")->size() == 0);
}

TEST(XmlWireTest, SingleObjectDecoders) {
  Result<VdlProgram> program = ParseVdl(
      "TR t( output o, input i ) { argument stdin=${input:i}; "
      "argument stdout=${output:o}; exec=\"/b\"; }");
  ASSERT_TRUE(program.ok());
  std::string xml = TransformationToXml(program->transformations[0]);
  Result<std::unique_ptr<XmlNode>> node = ParseXml(xml);
  ASSERT_TRUE(node.ok());
  Result<Transformation> tr = TransformationFromXml(**node);
  ASSERT_TRUE(tr.ok()) << tr.status();
  EXPECT_EQ(tr->name(), "t");
  // Feeding the wrong element kind is rejected.
  EXPECT_FALSE(DerivationFromXml(**node).ok());
  EXPECT_FALSE(DatasetFromXml(**node).ok());
}

}  // namespace
}  // namespace vdg
