// Interning durability: attribute keys, type names, and object names
// are interned into the catalog's symbol table, and that mapping is an
// in-memory acceleration only — every name must survive the journal
// (write -> replay -> CompactJournal -> replay) and the XML
// export/re-import path byte-for-byte. Keys are chosen to stress the
// escaping layers: multi-byte UTF-8, embedded '=' (the codec's
// key=value separator), characters the record codec escapes (pipe,
// backslash, newline), XML-special characters, and maximum-length
// keys.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {
namespace {

// Attribute keys that have historically broken serialization layers.
std::vector<std::string> NastyKeys() {
  std::vector<std::string> keys = {
      "π.σ→τ",                  // multi-byte UTF-8
      "ключ.данных",            // Cyrillic
      "数据.键",                 // CJK
      "a=b=c",                  // embedded key=value separator
      "line1\nline2",           // embedded newline (codec-escaped)
      "tab\there",              // embedded tab
      "pipe|and\\backslash",    // the record codec's own specials
      "xml<&>\"'chars",         // XML-special characters
      " leading and trailing ", // significant whitespace
      std::string(255, 'k'),    // maximum-length key
  };
  // A long key that is multi-byte right up to the length cap.
  std::string long_utf8;
  while (long_utf8.size() + 2 <= 255) long_utf8 += "é";
  keys.push_back(long_utf8);
  return keys;
}

AttributeSet NastyAttrs() {
  AttributeSet attrs;
  std::vector<std::string> keys = NastyKeys();
  for (size_t i = 0; i < keys.size(); ++i) {
    switch (i % 4) {
      case 0:
        attrs.Set(keys[i], AttributeValue("value=" + keys[i]));
        break;
      case 1:
        attrs.Set(keys[i], AttributeValue(static_cast<int64_t>(i) - 5));
        break;
      case 2:
        attrs.Set(keys[i], AttributeValue(0.1 + 0.2));
        break;
      default:
        attrs.Set(keys[i], AttributeValue(i % 2 == 0));
        break;
    }
  }
  return attrs;
}

void ExpectSameAttrs(const AttributeSet& expected,
                     const AttributeSet& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [key, value] : expected) {
    const AttributeValue* got = actual.Find(key);
    ASSERT_NE(got, nullptr) << "missing key [" << key << "]";
    EXPECT_TRUE(value == *got) << "value changed for [" << key << "]";
  }
}

// Structural equality of two type registries: same names in every
// dimension, each with the same parent edge.
void ExpectSameTypes(const TypeRegistry& expected,
                     const TypeRegistry& actual) {
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    TypeDimension dim = static_cast<TypeDimension>(d);
    NameList names = expected.dimension(dim).AllTypes();
    ASSERT_EQ(names, actual.dimension(dim).AllTypes())
        << "type set diverged in dimension " << TypeDimensionName(dim);
    for (std::string_view name : names) {
      Result<std::string> want = expected.dimension(dim).ParentOf(name);
      Result<std::string> got = actual.dimension(dim).ParentOf(name);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*want, *got) << "parent of " << name << " diverged";
    }
  }
}

// Populates `catalog` with a small typed schema whose every object
// carries the nasty annotation set, committing part of it through
// ApplyBatch so batched journal records are on the replay path too.
void Populate(VirtualDataCatalog* catalog) {
  ASSERT_TRUE(catalog->DefineType(TypeDimension::kContent, "Raw-band",
                                  std::string(TypeDimensionBaseName(TypeDimension::kContent))).ok());
  ASSERT_TRUE(catalog->DefineType(TypeDimension::kContent, "Refined-band",
                                  "Raw-band").ok());
  ASSERT_TRUE(catalog
                  ->ImportVdl("TR etape( output out, input in ) {"
                              "  argument stdin = ${input:in};"
                              "  argument stdout = ${output:out};"
                              "  exec = \"/bin/etape\"; }")
                  .ok());
  AttributeSet attrs = NastyAttrs();

  std::vector<CatalogMutation> batch;
  Dataset in;
  in.name = "data.in";
  in.type.content = "Raw-band";
  in.size_bytes = 1;
  in.annotations = attrs;
  batch.push_back(CatalogMutation::DefineDataset(std::move(in)));
  Dataset out;
  out.name = "data.out";
  out.type.content = "Refined-band";
  out.annotations = attrs;
  batch.push_back(CatalogMutation::DefineDataset(std::move(out)));
  Derivation dv("refine.step0", "etape");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("in", "data.in",
                                              ArgDirection::kIn))
                  .ok());
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("out", "data.out",
                                              ArgDirection::kOut))
                  .ok());
  batch.push_back(CatalogMutation::DefineDerivation(std::move(dv)));
  for (const auto& [key, value] : attrs) {
    batch.push_back(
        CatalogMutation::Annotate("transformation", "etape", key, value));
  }
  BatchOptions options;
  options.stop_on_error = true;
  BatchResult applied = catalog->ApplyBatch(batch, options);
  ASSERT_TRUE(applied.first_error.ok()) << applied.first_error;
  ASSERT_EQ(applied.applied, batch.size());
}

void Check(const VirtualDataCatalog& catalog, const TypeRegistry& types) {
  AttributeSet attrs = NastyAttrs();
  Result<Dataset> in = catalog.GetDataset("data.in");
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->type.content, "Raw-band");
  ExpectSameAttrs(attrs, in->annotations);
  Result<Dataset> out = catalog.GetDataset("data.out");
  ASSERT_TRUE(out.ok());
  ExpectSameAttrs(attrs, out->annotations);
  Result<Transformation> tr = catalog.GetTransformation("etape");
  ASSERT_TRUE(tr.ok());
  ExpectSameAttrs(attrs, tr->annotations());
  ASSERT_TRUE(catalog.HasDerivation("refine.step0"));
  ExpectSameTypes(types, catalog.TypesSnapshot());
}

TEST(InternRoundTrip, JournalReplayAndCompactionPreserveNames) {
  std::string path = ::testing::TempDir() + "/vdg_intern_rt.log";
  std::remove(path.c_str());
  TypeRegistry reference;
  {
    VirtualDataCatalog catalog("intern.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    Populate(&catalog);
    reference = catalog.TypesSnapshot();
    Check(catalog, reference);
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  {
    // Replay the raw journal, then compact and replay the rewrite.
    // Each reopen builds a fresh symbol table, so matching names prove
    // the wire format, not shared interner state.
    VirtualDataCatalog replayed("intern.org",
                                std::make_unique<FileJournal>(path));
    ASSERT_TRUE(replayed.Open().ok());
    Check(replayed, reference);
    ASSERT_TRUE(replayed.CompactJournal().ok());
  }
  VirtualDataCatalog compacted("intern.org",
                               std::make_unique<FileJournal>(path));
  ASSERT_TRUE(compacted.Open().ok());
  Check(compacted, reference);
  std::remove(path.c_str());
}

TEST(InternRoundTrip, XmlExportReimportPreservesNames) {
  VirtualDataCatalog source("intern.org");
  ASSERT_TRUE(source.Open().ok());
  Populate(&source);

  std::string xml = ProgramToXml(source.ExportProgram());
  Result<VdlProgram> parsed = ParseVdlXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // The XML document carries objects, not type definitions, so the
  // importing catalog needs the hierarchy first.
  VirtualDataCatalog imported("intern.org");
  ASSERT_TRUE(imported.Open().ok());
  ASSERT_TRUE(imported.DefineType(TypeDimension::kContent, "Raw-band",
                                  std::string(TypeDimensionBaseName(TypeDimension::kContent))).ok());
  ASSERT_TRUE(imported.DefineType(TypeDimension::kContent, "Refined-band",
                                  "Raw-band").ok());
  ASSERT_TRUE(imported.ImportProgram(*parsed).ok());
  Check(imported, source.TypesSnapshot());
}

// Re-exporting an imported catalog must produce the same document:
// a fixed point proves no name was silently altered by interning.
TEST(InternRoundTrip, XmlExportIsAFixedPoint) {
  VirtualDataCatalog source("intern.org");
  ASSERT_TRUE(source.Open().ok());
  Populate(&source);
  std::string xml = ProgramToXml(source.ExportProgram());
  Result<VdlProgram> parsed = ParseVdlXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  VirtualDataCatalog imported("intern.org");
  ASSERT_TRUE(imported.Open().ok());
  ASSERT_TRUE(imported.DefineType(TypeDimension::kContent, "Raw-band",
                                  std::string(TypeDimensionBaseName(TypeDimension::kContent))).ok());
  ASSERT_TRUE(imported.DefineType(TypeDimension::kContent, "Refined-band",
                                  "Raw-band").ok());
  ASSERT_TRUE(imported.ImportProgram(*parsed).ok());
  EXPECT_EQ(xml, ProgramToXml(imported.ExportProgram()));
}

}  // namespace
}  // namespace vdg
