#include <gtest/gtest.h>

#include "security/access.h"
#include "security/crypto.h"
#include "security/signed_entry.h"
#include "security/trust.h"

namespace vdg {
namespace {

// ------------------------------ Crypto -------------------------------

TEST(CryptoTest, KeysAreDeterministicPerSeed) {
  KeyPair a = KeyPair::FromSeed("alice");
  KeyPair b = KeyPair::FromSeed("alice");
  KeyPair c = KeyPair::FromSeed("bob");
  EXPECT_EQ(a.private_key, b.private_key);
  EXPECT_EQ(a.public_key, b.public_key);
  EXPECT_NE(a.public_key, c.public_key);
  EXPECT_NE(a.public_key, 0u);
}

TEST(CryptoTest, SignVerifyRoundTrip) {
  KeyPair keys = KeyPair::FromSeed("alice");
  Signature sig = Sign(keys, "hello virtual data");
  EXPECT_TRUE(Verify(keys.public_key, "hello virtual data", sig));
}

TEST(CryptoTest, VerifyRejectsTamperedMessage) {
  KeyPair keys = KeyPair::FromSeed("alice");
  Signature sig = Sign(keys, "original");
  EXPECT_FALSE(Verify(keys.public_key, "tampered", sig));
}

TEST(CryptoTest, VerifyRejectsWrongKey) {
  KeyPair alice = KeyPair::FromSeed("alice");
  KeyPair bob = KeyPair::FromSeed("bob");
  Signature sig = Sign(alice, "message");
  EXPECT_FALSE(Verify(bob.public_key, "message", sig));
  EXPECT_FALSE(Verify(0, "message", sig));
}

TEST(CryptoTest, VerifyRejectsTamperedSignature) {
  KeyPair keys = KeyPair::FromSeed("alice");
  Signature sig = Sign(keys, "message");
  Signature bad = sig;
  bad.s ^= 1;
  EXPECT_FALSE(Verify(keys.public_key, "message", bad));
  bad = sig;
  bad.e ^= 1;
  EXPECT_FALSE(Verify(keys.public_key, "message", bad));
}

TEST(CryptoTest, SignaturesAreDeterministic) {
  KeyPair keys = KeyPair::FromSeed("alice");
  EXPECT_EQ(Sign(keys, "m"), Sign(keys, "m"));
  EXPECT_FALSE(Sign(keys, "m1") == Sign(keys, "m2"));
}

TEST(CryptoTest, HexRoundTrips) {
  KeyPair keys = KeyPair::FromSeed("alice");
  Signature sig = Sign(keys, "m");
  Result<Signature> back = Signature::FromHex(sig.ToHex());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, sig);
  EXPECT_FALSE(Signature::FromHex("short").ok());
  EXPECT_FALSE(Signature::FromHex(std::string(32, 'z')).ok());

  Result<uint64_t> key = PublicKeyFromHex(PublicKeyToHex(keys.public_key));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, keys.public_key);
}

// ------------------------------- Trust -------------------------------

class TrustTest : public ::testing::Test {
 protected:
  TrustTest()
      : root_keys_(KeyPair::FromSeed("griphyn-root")),
        group_keys_(KeyPair::FromSeed("cms-group")),
        alice_keys_(KeyPair::FromSeed("alice")) {
    root_ = Identity{"griphyn-root", root_keys_.public_key};
    group_ = Identity{"cms-group", group_keys_.public_key};
    alice_ = Identity{"alice", alice_keys_.public_key};
    trust_.AddRoot(root_);
    group_cert_ = IssueCertificate(group_, "griphyn-root", root_keys_);
    alice_cert_ = IssueCertificate(alice_, "cms-group", group_keys_);
  }

  KeyPair root_keys_, group_keys_, alice_keys_;
  Identity root_, group_, alice_;
  Certificate group_cert_, alice_cert_;
  TrustStore trust_;
};

TEST_F(TrustTest, ValidChainResolvesLeaf) {
  Result<Identity> leaf = trust_.ValidateChain({group_cert_, alice_cert_});
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(*leaf, alice_);
  // One-link chain also works.
  EXPECT_EQ(trust_.ValidateChain({group_cert_})->name, "cms-group");
}

TEST_F(TrustTest, UntrustedAnchorRejected) {
  Certificate rogue =
      IssueCertificate(alice_, "unknown-root", KeyPair::FromSeed("evil"));
  EXPECT_TRUE(
      trust_.ValidateChain({rogue}).status().IsPermissionDenied());
  EXPECT_FALSE(trust_.ValidateChain({}).ok());
}

TEST_F(TrustTest, BrokenLinkRejected) {
  // alice's cert is issued by cms-group; presenting it directly after
  // the root anchor skips a link.
  Certificate forged = IssueCertificate(alice_, "griphyn-root", group_keys_);
  EXPECT_TRUE(
      trust_.ValidateChain({forged}).status().IsPermissionDenied());
  // Out-of-order chain fails the issuer continuity check.
  EXPECT_FALSE(trust_.ValidateChain({alice_cert_, group_cert_}).ok());
}

TEST_F(TrustTest, RevocationBlocksChains) {
  trust_.Revoke("cms-group");
  EXPECT_TRUE(trust_.IsRevoked("cms-group"));
  EXPECT_TRUE(trust_.ValidateChain({group_cert_, alice_cert_})
                  .status()
                  .IsPermissionDenied());
}

TEST_F(TrustTest, VerifySignedChecksChainAndSignature) {
  Signature sig = Sign(alice_keys_, "the data is good");
  EXPECT_TRUE(trust_
                  .VerifySigned({group_cert_, alice_cert_},
                                "the data is good", sig)
                  .ok());
  EXPECT_TRUE(trust_
                  .VerifySigned({group_cert_, alice_cert_},
                                "something else", sig)
                  .IsPermissionDenied());
}

// ---------------------------- SignedEntry ----------------------------

TEST_F(TrustTest, EntrySignaturesVerifyAndDetectDrift) {
  SignatureRegistry registry;
  std::string content = "TR maxBcg( output bcg, input field ) {...}";
  EntrySignature entry = SignEntry("transformation", "maxBcg", content,
                                   "approved", alice_, alice_keys_);
  registry.Add(entry);

  std::vector<EntrySignature> found =
      registry.For("transformation", "maxBcg");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].signer, "alice");

  EXPECT_TRUE(registry
                  .VerifyEntry(entry, {group_cert_, alice_cert_}, content,
                               trust_)
                  .ok());
  // Content drift after signing is detected.
  EXPECT_EQ(registry
                .VerifyEntry(entry, {group_cert_, alice_cert_},
                             "edited content", trust_)
                .code(),
            StatusCode::kFailedPrecondition);
  // A chain ending at someone else is rejected.
  EXPECT_TRUE(registry.VerifyEntry(entry, {group_cert_}, content, trust_)
                  .IsPermissionDenied());
}

TEST_F(TrustTest, HasVerifiedAssertionHonoursPolicy) {
  SignatureRegistry registry;
  std::string content = "dataset bytes...";
  registry.Add(SignEntry("dataset", "survey", content, "curated", alice_,
                         alice_keys_));
  std::map<std::string, std::vector<Certificate>> chains{
      {"alice", {group_cert_, alice_cert_}}};
  EXPECT_TRUE(registry.HasVerifiedAssertion("dataset", "survey", "curated",
                                            content, chains, trust_));
  EXPECT_FALSE(registry.HasVerifiedAssertion("dataset", "survey", "audited",
                                             content, chains, trust_));
  EXPECT_FALSE(registry.HasVerifiedAssertion(
      "dataset", "survey", "curated", "changed", chains, trust_));
  // Revoking the signer kills the assertion.
  trust_.Revoke("alice");
  EXPECT_FALSE(registry.HasVerifiedAssertion("dataset", "survey", "curated",
                                             content, chains, trust_));
}

// ------------------------------ Access -------------------------------

TEST(AccessTest, OwnerMayDoAnything) {
  AccessPolicy policy("alice");
  EXPECT_TRUE(policy.Check("alice", AccessAction::kAdmin, "anything").ok());
}

TEST(AccessTest, GrantsAndDefaultDeny) {
  AccessPolicy policy("alice");
  policy.Grant("bob", AccessAction::kRead);
  EXPECT_TRUE(policy.Check("bob", AccessAction::kRead, "ds").ok());
  EXPECT_TRUE(
      policy.Check("bob", AccessAction::kDefine, "ds").IsPermissionDenied());
  EXPECT_TRUE(
      policy.Check("eve", AccessAction::kRead, "ds").IsPermissionDenied());
}

TEST(AccessTest, GroupMembershipGrants) {
  AccessPolicy policy("alice");
  policy.AddToGroup("bob", "cms");
  policy.Grant("cms", AccessAction::kDefine);
  EXPECT_TRUE(policy.InGroup("bob", "cms"));
  EXPECT_FALSE(policy.InGroup("eve", "cms"));
  EXPECT_TRUE(policy.Check("bob", AccessAction::kDefine, "x").ok());
  EXPECT_FALSE(policy.Check("eve", AccessAction::kDefine, "x").ok());
}

TEST(AccessTest, PrefixScopedRules) {
  AccessPolicy policy("alice");
  policy.Grant("bob", AccessAction::kAnnotate, "cms.");
  EXPECT_TRUE(
      policy.Check("bob", AccessAction::kAnnotate, "cms.batch0").ok());
  EXPECT_FALSE(
      policy.Check("bob", AccessAction::kAnnotate, "sdss.field1").ok());
}

TEST(AccessTest, DenyOverridesGrant) {
  AccessPolicy policy("alice");
  policy.Grant("*", AccessAction::kRead);
  policy.Deny("eve", AccessAction::kRead);
  EXPECT_TRUE(policy.Check("bob", AccessAction::kRead, "x").ok());
  EXPECT_TRUE(
      policy.Check("eve", AccessAction::kRead, "x").IsPermissionDenied());
}

TEST(AccessTest, AdminGrantImpliesAllActions) {
  AccessPolicy policy("alice");
  policy.Grant("bob", AccessAction::kAdmin);
  EXPECT_TRUE(policy.Check("bob", AccessAction::kRead, "x").ok());
  EXPECT_TRUE(policy.Check("bob", AccessAction::kDefine, "x").ok());
  EXPECT_TRUE(policy.Check("bob", AccessAction::kAnnotate, "x").ok());
}

TEST(AccessTest, WildcardPrincipal) {
  AccessPolicy policy("alice");
  policy.Grant("*", AccessAction::kRead, "public.");
  EXPECT_TRUE(policy.Check("anyone", AccessAction::kRead, "public.x").ok());
  EXPECT_FALSE(
      policy.Check("anyone", AccessAction::kRead, "private.x").ok());
}

}  // namespace
}  // namespace vdg
