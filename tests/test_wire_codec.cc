// Wire-codec tests: randomized round-trip property tests over every
// request and response kind, frame-integrity checks (magic, version,
// CRC, declared size), and adversarial byte-mangling — truncation,
// bit flips, oversized declared payloads — which must always produce
// a typed error, never a crash or an accepted corrupt message.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "catalog/wire.h"
#include "common/rng.h"

namespace vdg {
namespace wire {
namespace {

// ------------------------- random object makers ----------------------

std::string RandomName(Rng& rng) {
  static const char* kPool[] = {"alpha", "beta",  "gamma", "delta",
                                "sdss",  "cms",   "run2",  "galaxy",
                                "img",   "calib", "x",     ""};
  std::string name = kPool[rng.Index(std::size(kPool))];
  if (rng.Chance(0.5)) name += std::to_string(rng.UniformInt(0, 9999));
  return name;
}

AttributeValue RandomAttributeValue(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return AttributeValue(RandomName(rng));
    case 1:
      return AttributeValue(rng.UniformInt(std::numeric_limits<int64_t>::min(),
                                           std::numeric_limits<int64_t>::max()));
    case 2:
      // Oddball doubles that lossy text formatting would mangle;
      // the binary codec must carry them bit-for-bit.
      return AttributeValue(rng.Uniform(-1e18, 1e18) + 1e-9);
    default:
      return AttributeValue(rng.Chance(0.5));
  }
}

AttributeSet RandomAttributes(Rng& rng) {
  AttributeSet set;
  int n = static_cast<int>(rng.UniformInt(0, 4));
  for (int i = 0; i < n; ++i) {
    set.Set("k" + std::to_string(rng.UniformInt(0, 9)),
            RandomAttributeValue(rng));
  }
  return set;
}

DatasetType RandomType(Rng& rng) {
  DatasetType type;
  if (rng.Chance(0.7)) type.content = RandomName(rng);
  if (rng.Chance(0.5)) type.format = RandomName(rng);
  if (rng.Chance(0.3)) type.encoding = RandomName(rng);
  return type;
}

Dataset RandomDataset(Rng& rng) {
  Dataset ds;
  ds.name = RandomName(rng);
  ds.type = RandomType(rng);
  ds.descriptor.schema = rng.Chance(0.5) ? "file" : "sql-rows";
  ds.descriptor.fields = RandomAttributes(rng);
  ds.size_bytes = rng.UniformInt(0, 1 << 30);
  ds.producer = rng.Chance(0.5) ? RandomName(rng) : "";
  ds.annotations = RandomAttributes(rng);
  return ds;
}

Replica RandomReplica(Rng& rng) {
  Replica r;
  r.id = "r" + std::to_string(rng.UniformInt(0, 999));
  r.dataset = RandomName(rng);
  r.site = RandomName(rng);
  r.storage_element = RandomName(rng);
  r.physical_path = "/data/" + RandomName(rng);
  r.size_bytes = rng.UniformInt(0, 1 << 30);
  r.created_at = rng.Uniform(0, 1e9);
  r.valid = rng.Chance(0.8);
  r.annotations = RandomAttributes(rng);
  return r;
}

TemplateExpr RandomTemplateExpr(Rng& rng) {
  TemplateExpr expr;
  int n = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.5)) {
      expr.push_back(TemplatePiece::Literal(RandomName(rng)));
    } else {
      std::optional<ArgDirection> dir;
      if (rng.Chance(0.5)) {
        dir = static_cast<ArgDirection>(rng.UniformInt(0, 3));
      }
      expr.push_back(TemplatePiece::Ref("a" + std::to_string(i), dir));
    }
  }
  return expr;
}

Transformation RandomTransformation(Rng& rng) {
  Transformation tr("tr" + std::to_string(rng.UniformInt(0, 999)),
                    rng.Chance(0.2) ? Transformation::Kind::kCompound
                                    : Transformation::Kind::kSimple);
  if (rng.Chance(0.5)) tr.set_version("1." + std::to_string(rng.Index(10)));
  int nargs = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < nargs; ++i) {
    FormalArg arg;
    arg.name = "a" + std::to_string(i);
    arg.direction = static_cast<ArgDirection>(rng.UniformInt(0, 3));
    if (arg.direction != ArgDirection::kNone && rng.Chance(0.5)) {
      arg.types.push_back(RandomType(rng));
    }
    if (arg.direction == ArgDirection::kNone && rng.Chance(0.5)) {
      arg.default_string = RandomName(rng);
    }
    if (rng.Chance(0.2)) arg.default_dataset = RandomName(rng);
    EXPECT_TRUE(tr.AddArg(arg).ok());
  }
  if (!tr.is_compound()) {
    tr.set_executable("/bin/" + tr.name());
    if (rng.Chance(0.5)) {
      tr.AddArgumentTemplate(
          ArgumentTemplate{rng.Chance(0.5) ? "stdin" : "",
                           RandomTemplateExpr(rng)});
    }
    if (rng.Chance(0.3)) tr.SetEnv("PATH", RandomTemplateExpr(rng));
    if (rng.Chance(0.3)) {
      tr.SetProfile("hints.pfnHint", RandomTemplateExpr(rng));
    }
  } else {
    CompoundCall call;
    call.callee = "tr" + std::to_string(rng.UniformInt(0, 99));
    call.bindings.emplace_back("a0", TemplatePiece::Ref("a0"));
    tr.AddCall(call);
  }
  tr.annotations() = RandomAttributes(rng);
  return tr;
}

Derivation RandomDerivation(Rng& rng) {
  Derivation dv("dv" + std::to_string(rng.UniformInt(0, 999)),
                "tr" + std::to_string(rng.UniformInt(0, 99)));
  if (rng.Chance(0.3)) dv.set_transformation_namespace("ns1");
  int nargs = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < nargs; ++i) {
    // Derivation decode rebuilds args through AddArg, which validates;
    // generated args must be well-formed (unique non-empty formal,
    // exactly one value).
    std::string formal = "a" + std::to_string(i);
    if (rng.Chance(0.5)) {
      EXPECT_TRUE(dv.AddArg(ActualArg::String(formal, RandomName(rng))).ok());
    } else {
      EXPECT_TRUE(
          dv.AddArg(ActualArg::DatasetRef(
                        formal, "d" + std::to_string(i),
                        static_cast<ArgDirection>(rng.UniformInt(0, 2))))
              .ok());
    }
  }
  if (rng.Chance(0.3)) dv.SetEnvOverride("TZ", "UTC");
  dv.annotations() = RandomAttributes(rng);
  return dv;
}

Invocation RandomInvocation(Rng& rng) {
  Invocation inv;
  inv.id = "i" + std::to_string(rng.UniformInt(0, 999));
  inv.derivation = "dv" + std::to_string(rng.UniformInt(0, 99));
  inv.context.site = RandomName(rng);
  inv.context.host = RandomName(rng);
  inv.start_time = rng.Uniform(0, 1e9);
  inv.duration_s = rng.Uniform(0, 1e5);
  inv.cpu_seconds = rng.Uniform(0, 1e5);
  inv.peak_memory_bytes = rng.UniformInt(0, 1LL << 40);
  inv.exit_code = static_cast<int>(rng.UniformInt(-128, 255));
  inv.succeeded = rng.Chance(0.8);
  int n = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < n; ++i) {
    inv.consumed_replicas.push_back("r" + std::to_string(rng.Index(100)));
  }
  n = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < n; ++i) {
    inv.produced_replicas.push_back("r" + std::to_string(rng.Index(100)));
  }
  inv.annotations = RandomAttributes(rng);
  return inv;
}

std::vector<AttributePredicate> RandomPredicates(Rng& rng) {
  std::vector<AttributePredicate> preds;
  int n = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n; ++i) {
    AttributePredicate p;
    p.key = "k" + std::to_string(rng.Index(10));
    p.op = static_cast<PredicateOp>(rng.UniformInt(0, 7));
    p.operand = RandomAttributeValue(rng);
    preds.push_back(p);
  }
  return preds;
}

Status RandomStatus(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return Status::OK();
    case 1:
      return Status::NotFound("object " + RandomName(rng) + " missing");
    case 2:
      return Status::InvalidArgument("bad " + RandomName(rng));
    case 3:
      return Status::DeadlineExceeded("too slow");
    default:
      return Status::ResourceExhausted("queue full");
  }
}

CatalogMutation RandomMutation(Rng& rng) {
  switch (rng.UniformInt(0, 7)) {
    case 0:
      return CatalogMutation::DefineDataset(RandomDataset(rng));
    case 1:
      return CatalogMutation::DefineTransformation(RandomTransformation(rng));
    case 2:
      return CatalogMutation::DefineDerivation(RandomDerivation(rng));
    case 3:
      if (rng.Chance(0.5)) {
        return CatalogMutation::AnnotateAssigned(
            "invocation", rng.Index(4), "k", RandomAttributeValue(rng));
      }
      return CatalogMutation::Annotate("dataset", RandomName(rng), "k",
                                       RandomAttributeValue(rng));
    case 4:
      return CatalogMutation::AddReplica(RandomReplica(rng));
    case 5:
      return CatalogMutation::RecordInvocation(
          RandomInvocation(rng), {0, rng.Index(8)});
    case 6:
      return CatalogMutation::SetDatasetSize(RandomName(rng),
                                             rng.UniformInt(0, 1 << 30));
    default:
      return CatalogMutation::InvalidateReplica(
          "r" + std::to_string(rng.Index(100)));
  }
}

// ------------------------- equality helpers --------------------------
// The schema types compare piecewise; these assert the fields the
// codec must carry. (Dataset/AttributeSet/DatasetType have ==.)

void ExpectEq(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.descriptor, b.descriptor);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_EQ(a.producer, b.producer);
  EXPECT_EQ(a.annotations, b.annotations);
}

void ExpectEq(const Replica& a, const Replica& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.site, b.site);
  EXPECT_EQ(a.storage_element, b.storage_element);
  EXPECT_EQ(a.physical_path, b.physical_path);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_EQ(a.created_at, b.created_at);  // bit-exact double
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.annotations, b.annotations);
}

void ExpectEq(const Transformation& a, const Transformation& b) {
  // ToString-level equality covers name, kind, signature, and body
  // templates; annotations compare directly.
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.TypeSignature(), b.TypeSignature());
  EXPECT_EQ(a.executable(), b.executable());
  ASSERT_EQ(a.argument_templates().size(), b.argument_templates().size());
  for (size_t i = 0; i < a.argument_templates().size(); ++i) {
    EXPECT_EQ(a.argument_templates()[i].name, b.argument_templates()[i].name);
    EXPECT_EQ(a.argument_templates()[i].expr, b.argument_templates()[i].expr);
  }
  EXPECT_EQ(a.env(), b.env());
  EXPECT_EQ(a.profile(), b.profile());
  ASSERT_EQ(a.calls().size(), b.calls().size());
  for (size_t i = 0; i < a.calls().size(); ++i) {
    EXPECT_EQ(a.calls()[i].callee, b.calls()[i].callee);
    EXPECT_EQ(a.calls()[i].bindings, b.calls()[i].bindings);
  }
  EXPECT_EQ(a.annotations(), b.annotations());
  ASSERT_EQ(a.args().size(), b.args().size());
  for (size_t i = 0; i < a.args().size(); ++i) {
    EXPECT_EQ(a.args()[i].default_string, b.args()[i].default_string);
    EXPECT_EQ(a.args()[i].default_dataset, b.args()[i].default_dataset);
  }
}

void ExpectEq(const Derivation& a, const Derivation& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.transformation_namespace(), b.transformation_namespace());
  EXPECT_EQ(a.transformation(), b.transformation());
  // Signature() hashes transformation + sorted args + env overrides.
  EXPECT_EQ(a.Signature(), b.Signature());
  ASSERT_EQ(a.args().size(), b.args().size());
  for (size_t i = 0; i < a.args().size(); ++i) {
    EXPECT_EQ(a.args()[i].formal, b.args()[i].formal);
    EXPECT_EQ(a.args()[i].string_value, b.args()[i].string_value);
    EXPECT_EQ(a.args()[i].dataset, b.args()[i].dataset);
    EXPECT_EQ(a.args()[i].direction, b.args()[i].direction);
  }
  EXPECT_EQ(a.env_overrides(), b.env_overrides());
  EXPECT_EQ(a.annotations(), b.annotations());
}

void ExpectEq(const Invocation& a, const Invocation& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.derivation, b.derivation);
  EXPECT_EQ(a.context.site, b.context.site);
  EXPECT_EQ(a.context.host, b.context.host);
  EXPECT_EQ(a.context.os, b.context.os);
  EXPECT_EQ(a.context.architecture, b.context.architecture);
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.consumed_replicas, b.consumed_replicas);
  EXPECT_EQ(a.produced_replicas, b.produced_replicas);
  EXPECT_EQ(a.annotations, b.annotations);
}

void ExpectEq(const Status& a, const Status& b) {
  EXPECT_EQ(a.code(), b.code());
  EXPECT_EQ(a.message(), b.message());
}

// ------------------------- round-trip plumbing -----------------------

/// Encodes `request`, walks it through FrameSize + DecodeFrame +
/// DecodeRequest, and returns the decoded copy (asserting the frame
/// envelope along the way).
Request RoundTrip(uint64_t id, const Request& request) {
  std::string frame = EncodeRequestFrame(id, request);
  Result<size_t> size = FrameSize(frame);
  EXPECT_TRUE(size.ok()) << size.status().ToString();
  EXPECT_EQ(*size, frame.size());
  Result<Frame> envelope = DecodeFrame(frame);
  EXPECT_TRUE(envelope.ok()) << envelope.status().ToString();
  EXPECT_FALSE(envelope->is_response);
  EXPECT_EQ(envelope->kind, request.kind);
  EXPECT_EQ(envelope->request_id, id);
  Result<Request> decoded = DecodeRequest(request.kind, envelope->payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return *std::move(decoded);
}

Response RoundTrip(uint64_t id, const Response& response) {
  std::string frame = EncodeResponseFrame(id, response);
  Result<size_t> size = FrameSize(frame);
  EXPECT_TRUE(size.ok()) << size.status().ToString();
  EXPECT_EQ(*size, frame.size());
  Result<Frame> envelope = DecodeFrame(frame);
  EXPECT_TRUE(envelope.ok()) << envelope.status().ToString();
  EXPECT_TRUE(envelope->is_response);
  EXPECT_EQ(envelope->kind, response.kind);
  EXPECT_EQ(envelope->request_id, id);
  Result<Response> decoded = DecodeResponse(response.kind, envelope->payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return *std::move(decoded);
}

// ------------------------- request round trips -----------------------

TEST(WireCodecRequests, EmptyAndNameKindsRoundTrip) {
  Rng rng(101);
  for (MsgKind kind : {MsgKind::kHandshake, MsgKind::kVersion}) {
    Request req{kind, EmptyReq{}};
    Request out = RoundTrip(7, req);
    EXPECT_EQ(out.kind, kind);
    EXPECT_TRUE(std::holds_alternative<EmptyReq>(out.body));
  }
  for (MsgKind kind :
       {MsgKind::kGetDataset, MsgKind::kGetTransformation,
        MsgKind::kGetDerivation, MsgKind::kHasDataset,
        MsgKind::kIsMaterialized, MsgKind::kProducerOf,
        MsgKind::kInvocationsOf, MsgKind::kAllNames,
        MsgKind::kGetProvenanceStep, MsgKind::kInvalidateReplica}) {
    std::string name = RandomName(rng);
    Request req{kind, NameReq{name}};
    Request out = RoundTrip(rng.UniformInt(0, 1 << 30), req);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(std::get<NameReq>(out.body).name, name);
  }
}

TEST(WireCodecRequests, ChangesSinceCarries64BitVersions) {
  uint64_t version = 0xDEADBEEFCAFE1234ull;
  Request req{MsgKind::kChangesSince, ChangesSinceReq{version}};
  Request out = RoundTrip(1, req);
  EXPECT_EQ(std::get<ChangesSinceReq>(out.body).since_version, version);
}

TEST(WireCodecRequests, FindQueriesRoundTrip) {
  Rng rng(202);
  for (int iter = 0; iter < 50; ++iter) {
    DatasetQuery dq;
    if (rng.Chance(0.5)) dq.type = RandomType(rng);
    dq.predicates = RandomPredicates(rng);
    dq.name_prefix = RandomName(rng);
    dq.require_materialized = rng.Chance(0.3);
    dq.only_virtual = rng.Chance(0.3);
    dq.limit = static_cast<size_t>(rng.UniformInt(0, 100));
    Request out =
        RoundTrip(iter, Request{MsgKind::kFindDatasets, FindDatasetsReq{dq}});
    const DatasetQuery& got = std::get<FindDatasetsReq>(out.body).query;
    EXPECT_EQ(got.type, dq.type);
    EXPECT_EQ(got.name_prefix, dq.name_prefix);
    EXPECT_EQ(got.require_materialized, dq.require_materialized);
    EXPECT_EQ(got.only_virtual, dq.only_virtual);
    EXPECT_EQ(got.limit, dq.limit);
    ASSERT_EQ(got.predicates.size(), dq.predicates.size());
    for (size_t i = 0; i < dq.predicates.size(); ++i) {
      EXPECT_EQ(got.predicates[i].key, dq.predicates[i].key);
      EXPECT_EQ(got.predicates[i].op, dq.predicates[i].op);
      EXPECT_EQ(got.predicates[i].operand, dq.predicates[i].operand);
    }

    TransformationQuery tq;
    if (rng.Chance(0.5)) tq.consumes = RandomType(rng);
    if (rng.Chance(0.5)) tq.produces = RandomType(rng);
    tq.predicates = RandomPredicates(rng);
    tq.name_prefix = RandomName(rng);
    tq.limit = static_cast<size_t>(rng.UniformInt(0, 100));
    Request tout = RoundTrip(
        iter, Request{MsgKind::kFindTransformations,
                      FindTransformationsReq{tq}});
    const TransformationQuery& tgot =
        std::get<FindTransformationsReq>(tout.body).query;
    EXPECT_EQ(tgot.consumes, tq.consumes);
    EXPECT_EQ(tgot.produces, tq.produces);
    EXPECT_EQ(tgot.name_prefix, tq.name_prefix);
    EXPECT_EQ(tgot.limit, tq.limit);

    DerivationQuery vq;
    vq.transformation = RandomName(rng);
    vq.reads_dataset = RandomName(rng);
    vq.writes_dataset = RandomName(rng);
    vq.predicates = RandomPredicates(rng);
    vq.name_prefix = RandomName(rng);
    vq.limit = static_cast<size_t>(rng.UniformInt(0, 100));
    Request vout = RoundTrip(
        iter, Request{MsgKind::kFindDerivations, FindDerivationsReq{vq}});
    const DerivationQuery& vgot = std::get<FindDerivationsReq>(vout.body).query;
    EXPECT_EQ(vgot.transformation, vq.transformation);
    EXPECT_EQ(vgot.reads_dataset, vq.reads_dataset);
    EXPECT_EQ(vgot.writes_dataset, vq.writes_dataset);
    EXPECT_EQ(vgot.name_prefix, vq.name_prefix);
    EXPECT_EQ(vgot.limit, vq.limit);
  }
}

TEST(WireCodecRequests, ObjectCarryingRequestsRoundTrip) {
  Rng rng(303);
  for (int iter = 0; iter < 50; ++iter) {
    Dataset ds = RandomDataset(rng);
    Request dout =
        RoundTrip(iter, Request{MsgKind::kDefineDataset, DefineDatasetReq{ds}});
    ExpectEq(std::get<DefineDatasetReq>(dout.body).dataset, ds);

    Transformation tr = RandomTransformation(rng);
    Request tout = RoundTrip(
        iter,
        Request{MsgKind::kDefineTransformation, DefineTransformationReq{tr}});
    ExpectEq(std::get<DefineTransformationReq>(tout.body).transformation, tr);

    Derivation dv = RandomDerivation(rng);
    Request vout = RoundTrip(
        iter, Request{MsgKind::kDefineDerivation, DefineDerivationReq{dv}});
    ExpectEq(std::get<DefineDerivationReq>(vout.body).derivation, dv);

    Replica rep = RandomReplica(rng);
    Request rout =
        RoundTrip(iter, Request{MsgKind::kAddReplica, AddReplicaReq{rep}});
    ExpectEq(std::get<AddReplicaReq>(rout.body).replica, rep);

    Invocation inv = RandomInvocation(rng);
    Request iout = RoundTrip(
        iter, Request{MsgKind::kRecordInvocation, RecordInvocationReq{inv}});
    ExpectEq(std::get<RecordInvocationReq>(iout.body).invocation, inv);
  }
}

TEST(WireCodecRequests, ScalarRequestsRoundTrip) {
  Rng rng(404);
  AnnotateReq areq{"dataset", "d1", "quality", RandomAttributeValue(rng)};
  Request aout = RoundTrip(3, Request{MsgKind::kAnnotate, areq});
  const AnnotateReq& agot = std::get<AnnotateReq>(aout.body);
  EXPECT_EQ(agot.kind, areq.kind);
  EXPECT_EQ(agot.name, areq.name);
  EXPECT_EQ(agot.key, areq.key);
  EXPECT_EQ(agot.value, areq.value);

  Request sout = RoundTrip(
      4, Request{MsgKind::kSetDatasetSize, SetDatasetSizeReq{"d2", -1}});
  EXPECT_EQ(std::get<SetDatasetSizeReq>(sout.body).name, "d2");
  EXPECT_EQ(std::get<SetDatasetSizeReq>(sout.body).size_bytes, -1);

  TypeConformsReq creq{RandomType(rng), RandomType(rng)};
  Request cout = RoundTrip(5, Request{MsgKind::kTypeConforms, creq});
  EXPECT_EQ(std::get<TypeConformsReq>(cout.body).type, creq.type);
  EXPECT_EQ(std::get<TypeConformsReq>(cout.body).against, creq.against);

  BatchGetReq breq;
  breq.keys = {{"dataset", "d1"}, {"transformation", "t1"}};
  Request bout = RoundTrip(6, Request{MsgKind::kBatchGet, breq});
  const BatchGetReq& bgot = std::get<BatchGetReq>(bout.body);
  ASSERT_EQ(bgot.keys.size(), 2u);
  EXPECT_EQ(bgot.keys[0].kind, "dataset");
  EXPECT_EQ(bgot.keys[1].name, "t1");
}

TEST(WireCodecRequests, ApplyBatchCarriesEveryMutationKind) {
  Rng rng(505);
  for (int iter = 0; iter < 30; ++iter) {
    ApplyBatchReq req;
    int n = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) req.mutations.push_back(RandomMutation(rng));
    req.options.stop_on_error = rng.Chance(0.5);
    Request out = RoundTrip(iter, Request{MsgKind::kApplyBatch, req});
    const ApplyBatchReq& got = std::get<ApplyBatchReq>(out.body);
    EXPECT_EQ(got.options.stop_on_error, req.options.stop_on_error);
    ASSERT_EQ(got.mutations.size(), req.mutations.size());
    for (size_t i = 0; i < req.mutations.size(); ++i) {
      // Variant alternative (op kind) must survive; spot-check the
      // op payloads that carry cross-op references.
      EXPECT_EQ(got.mutations[i].op.index(), req.mutations[i].op.index());
      if (const auto* want = std::get_if<CatalogMutation::RecordInvocationOp>(
              &req.mutations[i].op)) {
        const auto& have =
            std::get<CatalogMutation::RecordInvocationOp>(got.mutations[i].op);
        EXPECT_EQ(have.produced_from_ops, want->produced_from_ops);
        ExpectEq(have.invocation, want->invocation);
      }
      if (const auto* want = std::get_if<CatalogMutation::AnnotateOp>(
              &req.mutations[i].op)) {
        const auto& have =
            std::get<CatalogMutation::AnnotateOp>(got.mutations[i].op);
        EXPECT_EQ(have.name_from_op, want->name_from_op);
        EXPECT_EQ(have.value, want->value);
      }
    }
  }
}

TEST(WireCodecRequests, ApplyBatchIdempotencyTokenRoundTrips) {
  Rng rng(707);
  ApplyBatchReq req;
  req.mutations.push_back(RandomMutation(rng));
  req.options.stop_on_error = true;
  req.options.idempotency_token = "rcc-deadbeef-42";
  Request out = RoundTrip(9, Request{MsgKind::kApplyBatch, req});
  const ApplyBatchReq& got = std::get<ApplyBatchReq>(out.body);
  EXPECT_EQ(got.options.idempotency_token, "rcc-deadbeef-42");
  EXPECT_TRUE(got.options.stop_on_error);
}

TEST(WireCodecRequests, ApplyBatchDecodeToleratesTokenlessOldPayloads) {
  // The idempotency token is a trailing optional field within codec
  // v1: a payload written by an encoder that predates it (i.e. ends
  // right after stop_on_error) must still decode, with an empty token.
  Rng rng(708);
  ApplyBatchReq req;
  req.mutations.push_back(RandomMutation(rng));
  req.options.stop_on_error = true;
  // req.options.idempotency_token left empty: the current encoder
  // appends it as a u32-length-prefixed string, so the empty token is
  // exactly 4 trailing zero bytes — strip them to reconstruct the
  // old-format payload.
  std::string frame =
      EncodeRequestFrame(11, Request{MsgKind::kApplyBatch, req});
  Result<Frame> envelope = DecodeFrame(frame);
  ASSERT_TRUE(envelope.ok());
  std::string payload(envelope->payload);
  ASSERT_GE(payload.size(), 4u);
  std::string old_payload = payload.substr(0, payload.size() - 4);

  Result<Request> decoded = DecodeRequest(MsgKind::kApplyBatch, old_payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ApplyBatchReq& got = std::get<ApplyBatchReq>(decoded->body);
  EXPECT_TRUE(got.options.idempotency_token.empty());
  EXPECT_TRUE(got.options.stop_on_error);
  EXPECT_EQ(got.mutations.size(), 1u);
}

// ------------------------- response round trips ----------------------

TEST(WireCodecResponses, ErrorResponsesCarryStatusOnly) {
  Rng rng(606);
  for (int iter = 0; iter < 20; ++iter) {
    Status status = RandomStatus(rng);
    if (status.ok()) status = Status::NotFound("forced error");
    Response resp;
    resp.kind = MsgKind::kGetDataset;
    resp.status = status;
    Response out = RoundTrip(iter, resp);
    ExpectEq(out.status, status);
    EXPECT_TRUE(std::holds_alternative<std::monostate>(out.body));
  }
}

TEST(WireCodecResponses, AllBodyKindsRoundTrip) {
  Rng rng(707);

  Response handshake;
  handshake.kind = MsgKind::kHandshake;
  handshake.body = HandshakeResp{"vdc.example.org", true};
  Response hout = RoundTrip(1, handshake);
  EXPECT_EQ(std::get<HandshakeResp>(hout.body).authority, "vdc.example.org");
  EXPECT_TRUE(std::get<HandshakeResp>(hout.body).read_only);

  Response version;
  version.kind = MsgKind::kVersion;
  version.body = VersionResp{0xFFFFFFFF12345678ull};
  EXPECT_EQ(std::get<VersionResp>(RoundTrip(2, version).body).version,
            0xFFFFFFFF12345678ull);

  Response changes;
  changes.kind = MsgKind::kChangesSince;
  ChangesResp cr;
  cr.changes.push_back(CatalogChange{42, 'U', "dataset", "d1"});
  cr.changes.push_back(CatalogChange{43, 'D', "derivation", "v1"});
  changes.body = cr;
  Response cout = RoundTrip(3, changes);
  const ChangesResp& cgot = std::get<ChangesResp>(cout.body);
  ASSERT_EQ(cgot.changes.size(), 2u);
  EXPECT_EQ(cgot.changes[0].version, 42u);
  EXPECT_EQ(cgot.changes[1].op, 'D');
  EXPECT_EQ(cgot.changes[1].kind, "derivation");

  Response dataset;
  dataset.kind = MsgKind::kGetDataset;
  Dataset ds = RandomDataset(rng);
  dataset.body = DatasetResp{ds};
  ExpectEq(std::get<DatasetResp>(RoundTrip(4, dataset).body).dataset, ds);

  Response tr_resp;
  tr_resp.kind = MsgKind::kGetTransformation;
  Transformation tr = RandomTransformation(rng);
  tr_resp.body = TransformationResp{tr};
  ExpectEq(
      std::get<TransformationResp>(RoundTrip(5, tr_resp).body).transformation,
      tr);

  Response dv_resp;
  dv_resp.kind = MsgKind::kGetDerivation;
  Derivation dv = RandomDerivation(rng);
  dv_resp.body = DerivationResp{dv};
  ExpectEq(std::get<DerivationResp>(RoundTrip(6, dv_resp).body).derivation,
           dv);

  Response flag;
  flag.kind = MsgKind::kHasDataset;
  flag.body = BoolResp{true};
  EXPECT_TRUE(std::get<BoolResp>(RoundTrip(7, flag).body).value);

  Response id_resp;
  id_resp.kind = MsgKind::kAddReplica;
  id_resp.body = StringResp{"replica-17"};
  EXPECT_EQ(std::get<StringResp>(RoundTrip(8, id_resp).body).value,
            "replica-17");

  Response invocations;
  invocations.kind = MsgKind::kInvocationsOf;
  InvocationsResp ir;
  ir.invocations.push_back(RandomInvocation(rng));
  ir.invocations.push_back(RandomInvocation(rng));
  invocations.body = ir;
  Response iout = RoundTrip(9, invocations);
  const InvocationsResp& igot = std::get<InvocationsResp>(iout.body);
  ASSERT_EQ(igot.invocations.size(), 2u);
  ExpectEq(igot.invocations[0], ir.invocations[0]);
  ExpectEq(igot.invocations[1], ir.invocations[1]);

  Response names;
  names.kind = MsgKind::kFindDatasets;
  names.body = NamesResp{NameList::FromStrings({"d1", "d2", ""})};
  EXPECT_EQ(std::get<NamesResp>(RoundTrip(10, names).body).names,
            (std::vector<std::string>{"d1", "d2", ""}));

  Response step;
  step.kind = MsgKind::kGetProvenanceStep;
  StepResp sr;
  sr.step.dataset = "d5";
  sr.step.exists = true;
  sr.step.producer = "v5";
  sr.step.derivation = RandomDerivation(rng);
  sr.step.invocations.push_back(RandomInvocation(rng));
  step.body = sr;
  Response sout = RoundTrip(11, step);
  const StepResp& sgot = std::get<StepResp>(sout.body);
  EXPECT_EQ(sgot.step.dataset, "d5");
  EXPECT_TRUE(sgot.step.exists);
  EXPECT_EQ(sgot.step.producer, "v5");
  ASSERT_TRUE(sgot.step.derivation.has_value());
  ExpectEq(*sgot.step.derivation, *sr.step.derivation);
  ASSERT_EQ(sgot.step.invocations.size(), 1u);
  ExpectEq(sgot.step.invocations[0], sr.step.invocations[0]);
}

TEST(WireCodecResponses, RecordsAndBatchResultsRoundTrip) {
  Rng rng(808);
  Response records;
  records.kind = MsgKind::kBatchGet;
  RecordsResp rr;
  ObjectRecord hit;
  hit.kind = "dataset";
  hit.name = "d1";
  hit.dataset = RandomDataset(rng);
  hit.materialized = true;
  rr.records.push_back(hit);
  ObjectRecord miss;
  miss.kind = "derivation";
  miss.name = "nope";
  miss.status = Status::NotFound("derivation nope not defined");
  rr.records.push_back(miss);
  records.body = rr;
  Response rout = RoundTrip(12, records);
  const RecordsResp& rgot = std::get<RecordsResp>(rout.body);
  ASSERT_EQ(rgot.records.size(), 2u);
  EXPECT_EQ(rgot.records[0].kind, "dataset");
  ASSERT_TRUE(rgot.records[0].dataset.has_value());
  ExpectEq(*rgot.records[0].dataset, *hit.dataset);
  EXPECT_TRUE(rgot.records[0].materialized);
  EXPECT_FALSE(rgot.records[1].dataset.has_value());
  ExpectEq(rgot.records[1].status, miss.status);

  Response batch;
  batch.kind = MsgKind::kApplyBatch;
  BatchResultResp br;
  br.result.statuses = {Status::OK(), Status::InvalidArgument("bad op"),
                        Status::OK()};
  br.result.assigned_ids = {"", "r9", ""};
  br.result.applied = 2;
  br.result.version = 99;
  br.result.first_error = Status::InvalidArgument("bad op");
  batch.body = br;
  Response bout = RoundTrip(13, batch);
  const BatchResult& bgot = std::get<BatchResultResp>(bout.body).result;
  ASSERT_EQ(bgot.statuses.size(), 3u);
  ExpectEq(bgot.statuses[1], br.result.statuses[1]);
  EXPECT_EQ(bgot.assigned_ids, br.result.assigned_ids);
  EXPECT_EQ(bgot.applied, 2u);
  EXPECT_EQ(bgot.version, 99u);
  ExpectEq(bgot.first_error, br.result.first_error);
}

// ------------------------- frame integrity ---------------------------

TEST(WireFrames, FrameSizeNeedsHeaderBytes) {
  Request req{MsgKind::kVersion, EmptyReq{}};
  std::string frame = EncodeRequestFrame(1, req);
  // Any strict prefix shorter than the header: "need more bytes".
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    Result<size_t> size = FrameSize(std::string_view(frame).substr(0, n));
    // A short prefix either can't be sized yet (NotFound) — or, once
    // the magic/version bytes are present and wrong, is already a
    // protocol error. Here the bytes are valid, so: NotFound.
    EXPECT_FALSE(size.ok());
    EXPECT_TRUE(size.status().IsNotFound()) << n;
  }
  EXPECT_EQ(*FrameSize(frame), frame.size());
}

TEST(WireFrames, BadMagicAndVersionAreProtocolErrors) {
  Request req{MsgKind::kVersion, EmptyReq{}};
  std::string frame = EncodeRequestFrame(1, req);

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_TRUE(FrameSize(bad_magic).status().IsParseError());
  EXPECT_TRUE(DecodeFrame(bad_magic).status().IsParseError());

  std::string bad_version = frame;
  bad_version[4] = kCodecVersion + 1;
  EXPECT_TRUE(FrameSize(bad_version).status().IsParseError());
  EXPECT_TRUE(DecodeFrame(bad_version).status().IsParseError());
}

TEST(WireFrames, OversizedDeclaredPayloadIsRejected) {
  Request req{MsgKind::kVersion, EmptyReq{}};
  std::string frame = EncodeRequestFrame(1, req);
  // Rewrite the payload-size field to something absurd.
  uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  Result<size_t> size = FrameSize(frame);
  EXPECT_FALSE(size.ok());
  EXPECT_TRUE(size.status().IsResourceExhausted());
}

TEST(WireFrames, CorruptedBytesFailCrcNeverCrash) {
  Rng rng(909);
  Request req{MsgKind::kDefineDataset, DefineDatasetReq{RandomDataset(rng)}};
  std::string frame = EncodeRequestFrame(1, req);
  // Flip one random byte at every position in turn: every mutation
  // must be rejected (CRC mismatch, or an envelope field check), and
  // none may crash.
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    std::string mangled = frame;
    mangled[pos] = static_cast<char>(mangled[pos] ^ 0x40);
    Result<Frame> decoded = DecodeFrame(mangled);
    EXPECT_FALSE(decoded.ok()) << "flipped byte at " << pos;
  }
}

TEST(WireFrames, TruncatedPayloadsFailCleanly) {
  Rng rng(1010);
  for (int iter = 0; iter < 20; ++iter) {
    Request req{MsgKind::kDefineTransformation,
                DefineTransformationReq{RandomTransformation(rng)}};
    std::string frame = EncodeRequestFrame(1, req);
    Result<Frame> envelope = DecodeFrame(frame);
    ASSERT_TRUE(envelope.ok());
    std::string_view payload = envelope->payload;
    // Every strict prefix of the payload must decode to an error.
    for (size_t n = 0; n < payload.size();
         n += 1 + rng.Index(7)) {
      Result<Request> decoded =
          DecodeRequest(req.kind, payload.substr(0, n));
      EXPECT_FALSE(decoded.ok()) << "prefix length " << n;
    }
  }
}

TEST(WireFrames, TrailingGarbageAfterPayloadIsRejected) {
  Request req{MsgKind::kGetDataset, NameReq{"d1"}};
  std::string frame = EncodeRequestFrame(1, req);
  Result<Frame> envelope = DecodeFrame(frame);
  ASSERT_TRUE(envelope.ok());
  std::string padded(envelope->payload);
  padded.push_back('\0');
  Result<Request> decoded = DecodeRequest(req.kind, padded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError());
}

TEST(WireFrames, RandomGarbagePayloadsNeverCrash) {
  Rng rng(1111);
  // Fully random bytes against every kind's request and response
  // decoder: typed error or (rarely) a successful parse of noise —
  // but no crash, no hang, no unbounded allocation.
  for (int iter = 0; iter < 300; ++iter) {
    std::string noise;
    size_t len = rng.Index(64);
    noise.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    for (uint8_t raw = 1; raw <= 26; ++raw) {
      MsgKind kind = static_cast<MsgKind>(raw);
      (void)DecodeRequest(kind, noise);
      (void)DecodeResponse(kind, noise);
    }
  }
}

TEST(WireFrames, ResponseFlagAndKindValidated) {
  Request req{MsgKind::kVersion, EmptyReq{}};
  std::string frame = EncodeRequestFrame(1, req);

  // Unknown kind byte.
  std::string bad_kind = frame;
  bad_kind[6] = 99;
  EXPECT_FALSE(DecodeFrame(bad_kind).ok());

  // Reserved flag bits set.
  std::string bad_flags = frame;
  bad_flags[5] = 0x02;
  EXPECT_FALSE(DecodeFrame(bad_flags).ok());

  // Nonzero reserved byte.
  std::string bad_reserved = frame;
  bad_reserved[7] = 1;
  EXPECT_FALSE(DecodeFrame(bad_reserved).ok());
}

TEST(WireFrames, StreamingSplitAcrossArbitraryBoundaries) {
  // Frames written back-to-back must be recoverable from any chunking
  // of the byte stream — the property the server's dispatcher relies
  // on when a socket delivers partial reads.
  Rng rng(1212);
  std::vector<Request> sent;
  std::string stream;
  for (int i = 0; i < 10; ++i) {
    Request req{MsgKind::kGetDataset, NameReq{RandomName(rng)}};
    stream += EncodeRequestFrame(i, req);
    sent.push_back(std::move(req));
  }
  std::string buffer;
  size_t cursor = 0;
  size_t decoded = 0;
  while (cursor < stream.size()) {
    size_t chunk = 1 + rng.Index(13);
    chunk = std::min(chunk, stream.size() - cursor);
    buffer.append(stream, cursor, chunk);
    cursor += chunk;
    while (true) {
      Result<size_t> size = FrameSize(buffer);
      if (!size.ok()) {
        ASSERT_TRUE(size.status().IsNotFound()) << size.status().ToString();
        break;
      }
      if (buffer.size() < *size) break;
      Result<Frame> envelope =
          DecodeFrame(std::string_view(buffer).substr(0, *size));
      ASSERT_TRUE(envelope.ok());
      EXPECT_EQ(envelope->request_id, decoded);
      Result<Request> req = DecodeRequest(envelope->kind, envelope->payload);
      ASSERT_TRUE(req.ok());
      EXPECT_EQ(std::get<NameReq>(req->body).name,
                std::get<NameReq>(sent[decoded].body).name);
      buffer.erase(0, *size);
      ++decoded;
    }
  }
  EXPECT_TRUE(buffer.empty()) << "stream ended mid-frame";
  EXPECT_EQ(decoded, 10u);
}

TEST(WireFrames, MsgKindNamesAreDistinct) {
  for (uint8_t raw = 1; raw <= 26; ++raw) {
    EXPECT_TRUE(IsValidMsgKind(raw));
    EXPECT_FALSE(MsgKindName(static_cast<MsgKind>(raw)).empty());
  }
  EXPECT_FALSE(IsValidMsgKind(0));
  EXPECT_FALSE(IsValidMsgKind(27));
  EXPECT_FALSE(IsValidMsgKind(255));
}

}  // namespace
}  // namespace wire
}  // namespace vdg
