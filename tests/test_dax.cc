// Tests for the abstract-DAG (DAX) plan wire format — Chimera's real
// output artifact, consumed by Pegasus / Condor DAGMan in the paper's
// derivation path (Section 5.4).
#include "planner/dax.h"

#include <gtest/gtest.h>

#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "workload/sdss.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

class DaxTest : public ::testing::Test {
 protected:
  DaxTest()
      : catalog_("dax.org"),
        topology_(workload::SmallTestbed()),
        planner_(catalog_, topology_, nullptr, estimator_) {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR stepA( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/a";
}
TR join( output out, input lhs, input rhs ) {
  argument l = "-l "${input:lhs};
  argument r = "-r "${input:rhs};
  argument stdout = ${output:out};
  exec = "/bin/j";
}
DS raw : Dataset size="1000";
DV mk1->stepA( out=@{output:"m1"}, in=@{input:"raw"} );
DV mk2->stepA( out=@{output:"m2"}, in=@{input:"raw"} );
DV mkj->join( out=@{output:"final"}, lhs=@{input:"m1"},
              rhs=@{input:"m2"} );
)")
                    .ok());
    Replica r;
    r.dataset = "raw";
    r.site = "east";
    r.size_bytes = 1000;
    EXPECT_TRUE(catalog_.AddReplica(r).ok());
    options_.target_site = "east";
  }

  VirtualDataCatalog catalog_;
  GridTopology topology_;
  CostEstimator estimator_;
  RequestPlanner planner_;
  PlannerOptions options_;
};

TEST_F(DaxTest, EmitsJobsUsesAndEdges) {
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  std::string dax = PlanToDax(*plan);
  EXPECT_NE(dax.find("<adag name=\"materialize-final\""), std::string::npos);
  EXPECT_NE(dax.find("<job id=\"ID000001\""), std::string::npos);
  EXPECT_NE(dax.find("transformation=\"join\""), std::string::npos);
  EXPECT_NE(dax.find("<uses file=\"raw\" link=\"input\"/>"),
            std::string::npos);
  EXPECT_NE(dax.find("<uses file=\"final\" link=\"output\"/>"),
            std::string::npos);
  EXPECT_NE(dax.find("<child ref=\"ID000003\">"), std::string::npos);
  EXPECT_NE(dax.find("<parent ref=\"ID000001\"/>"), std::string::npos);
}

TEST_F(DaxTest, RoundTripPreservesPlanStructure) {
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";  // forces staging and a final fetch
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  Result<ExecutionPlan> decoded = PlanFromDax(PlanToDax(*plan));
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->target_dataset, plan->target_dataset);
  EXPECT_EQ(decoded->target_site, plan->target_site);
  EXPECT_EQ(decoded->mode, plan->mode);
  ASSERT_EQ(decoded->nodes.size(), plan->nodes.size());
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    EXPECT_EQ(decoded->nodes[i].transformation,
              plan->nodes[i].transformation);
    EXPECT_EQ(decoded->nodes[i].site, plan->nodes[i].site);
    EXPECT_EQ(decoded->nodes[i].deps, plan->nodes[i].deps);
    EXPECT_EQ(decoded->nodes[i].inputs, plan->nodes[i].inputs);
    EXPECT_EQ(decoded->nodes[i].outputs, plan->nodes[i].outputs);
    EXPECT_EQ(decoded->nodes[i].derivation.SignatureText(),
              plan->nodes[i].derivation.SignatureText());
    ASSERT_EQ(decoded->nodes[i].staging.size(),
              plan->nodes[i].staging.size());
  }
  ASSERT_EQ(decoded->fetches.size(), plan->fetches.size());
  for (size_t i = 0; i < plan->fetches.size(); ++i) {
    EXPECT_EQ(decoded->fetches[i].dataset, plan->fetches[i].dataset);
    EXPECT_EQ(decoded->fetches[i].bytes, plan->fetches[i].bytes);
  }
}

TEST_F(DaxTest, DecodedPlanExecutes) {
  // A DAX round-tripped plan must still run on the grid: the payload
  // derivations carry everything the executor needs.
  Result<ExecutionPlan> plan = planner_.Plan("final", options_);
  ASSERT_TRUE(plan.ok());
  Result<ExecutionPlan> decoded = PlanFromDax(PlanToDax(*plan));
  ASSERT_TRUE(decoded.ok());

  GridSimulator grid(workload::SmallTestbed(), 3);
  ASSERT_TRUE(grid.PlaceFile("east", "raw", 1000, true).ok());
  WorkflowEngine engine(&grid, &catalog_);
  Result<WorkflowResult> result = engine.Execute(*decoded);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->nodes_succeeded, 3u);
  EXPECT_TRUE(catalog_.IsMaterialized("final"));
}

TEST_F(DaxTest, SdssWorkflowDaxScales) {
  workload::SdssOptions sdss;
  sdss.num_stripes = 1;
  sdss.fields_per_stripe = 10;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog_, sdss);
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->field_datasets.size(); ++i) {
    Replica r;
    r.dataset = workload->field_datasets[i];
    r.site = i % 2 == 0 ? "east" : "west";
    r.size_bytes = 1 << 20;
    ASSERT_TRUE(catalog_.AddReplica(r).ok());
  }
  Result<ExecutionPlan> plan =
      planner_.Plan(workload->cluster_catalogs[0], options_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->nodes.size(), 11u);
  Result<ExecutionPlan> decoded = PlanFromDax(PlanToDax(*plan));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->nodes.size(), 11u);
  // The merge node depends on all ten searches.
  EXPECT_EQ(decoded->nodes[10].deps.size(), 10u);
}

TEST_F(DaxTest, RejectsMalformedDax) {
  EXPECT_FALSE(PlanFromDax("<notadag/>").ok());
  EXPECT_FALSE(PlanFromDax("garbage").ok());
  EXPECT_FALSE(PlanFromDax("<adag><job id=\"ID000001\"/></adag>").ok());
  // Non-topological or dangling edges are rejected.
  EXPECT_FALSE(PlanFromDax(R"(<adag>
    <child ref="ID000009"><parent ref="ID000001"/></child>
  </adag>)")
                   .ok());
}

}  // namespace
}  // namespace vdg
