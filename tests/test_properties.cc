// Cross-module property tests: invariants that must hold for *any*
// generated workload, swept over seeds — plan well-formedness, plan
// executability, failure-injection monotonicity, and site-outage
// behaviour.
#include <gtest/gtest.h>

#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/canonical.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

struct World {
  VirtualDataCatalog catalog{"prop.org"};
  GridSimulator grid{workload::SmallTestbed(), 17};
  CostEstimator estimator;
  std::unique_ptr<RequestPlanner> planner;
  workload::CanonicalGraph graph;

  explicit World(uint64_t seed, size_t derivations = 40) {
    EXPECT_TRUE(catalog.Open().ok());
    workload::CanonicalGraphOptions options;
    options.num_derivations = derivations;
    options.num_raw_inputs = 6;
    options.seed = seed;
    Result<workload::CanonicalGraph> generated =
        workload::GenerateCanonicalGraph(&catalog, options);
    EXPECT_TRUE(generated.ok()) << generated.status();
    graph = std::move(*generated);
    // Raw inputs staged alternately at the two sites.
    for (size_t i = 0; i < graph.raw_inputs.size(); ++i) {
      const std::string& site = i % 2 == 0 ? "east" : "west";
      EXPECT_TRUE(
          grid.PlaceFile(site, graph.raw_inputs[i], 1 << 20, true).ok());
      Replica r;
      r.dataset = graph.raw_inputs[i];
      r.site = site;
      r.size_bytes = 1 << 20;
      EXPECT_TRUE(catalog.AddReplica(r).ok());
    }
    planner = std::make_unique<RequestPlanner>(catalog, grid.topology(),
                                               &grid.rls(), estimator);
  }
};

class PlanProperties : public ::testing::TestWithParam<uint64_t> {};

// Property: every plan is topologically ordered, every node input is
// either produced by a declared dependency or has a staging/materialized
// source, and the makespan estimate is at least the critical node cost.
TEST_P(PlanProperties, PlansAreWellFormed) {
  World world(GetParam());
  PlannerOptions options;
  options.target_site = "east";
  for (const std::string& sink : world.graph.sinks) {
    Result<ExecutionPlan> plan = world.planner->Plan(sink, options);
    ASSERT_TRUE(plan.ok()) << sink << ": " << plan.status();
    if (plan->mode != MaterializationMode::kRerun) continue;

    double max_runtime = 0;
    std::set<std::string> produced;
    for (size_t i = 0; i < plan->nodes.size(); ++i) {
      const PlanNode& node = plan->nodes[i];
      // Topological: all deps point strictly backwards.
      for (size_t dep : node.deps) {
        EXPECT_LT(dep, i) << sink;
      }
      // Every input is accounted for.
      for (const std::string& input : node.inputs) {
        bool from_dep = produced.count(input) != 0;
        bool staged_or_local =
            world.planner->IsMaterializedAnywhere(input);
        EXPECT_TRUE(from_dep || staged_or_local)
            << sink << " node " << i << " input " << input;
      }
      for (const std::string& output : node.outputs) {
        produced.insert(output);
      }
      max_runtime = std::max(max_runtime, node.est_runtime_s);
      EXPECT_FALSE(node.site.empty());
    }
    // The request target is produced by the plan.
    EXPECT_TRUE(produced.count(sink) != 0) << sink;
    EXPECT_GE(plan->est_makespan_s, max_runtime - 1e-9);
    EXPECT_GE(plan->est_compute_s, plan->est_makespan_s > 0 ? 1e-12 : 0);
  }
}

// Property: executing the plan actually materializes the sink, and the
// catalog afterwards carries a full audit trail for it.
TEST_P(PlanProperties, PlansExecuteToMaterialization) {
  World world(GetParam());
  WorkflowEngine engine(&world.grid, &world.catalog);
  PlannerOptions options;
  options.target_site = "east";
  ASSERT_FALSE(world.graph.sinks.empty());
  const std::string& sink = world.graph.sinks.front();
  Result<ExecutionPlan> plan = world.planner->Plan(sink, options);
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_TRUE(world.catalog.IsMaterialized(sink));
  EXPECT_TRUE(world.grid.rls().ExistsAt(sink, "east"));

  ProvenanceTracker tracker(world.catalog);
  Result<std::vector<Invocation>> trail = tracker.AuditTrail(sink);
  ASSERT_TRUE(trail.ok());
  EXPECT_EQ(trail->size(), plan->nodes.size());
  EXPECT_TRUE(*tracker.FullyMaterialized(sink) ||
              !plan->fetches.empty());
}

// Property: multi-output derivations materialize *all* their outputs,
// and the aux outputs' provenance matches ground truth.
TEST_P(PlanProperties, AuxOutputsShareProvenance) {
  World world(GetParam());
  ProvenanceTracker tracker(world.catalog);
  for (const std::string& aux : world.graph.aux_outputs) {
    Result<std::set<std::string>> ancestors = tracker.Ancestors(aux);
    ASSERT_TRUE(ancestors.ok()) << aux;
    EXPECT_EQ(*ancestors, world.graph.TrueAncestors(aux)) << aux;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperties,
                         ::testing::Values(2, 11, 29, 71));

// Property: with enough retries, any failure rate < 1 is eventually
// survived; with no retries, higher failure rates never yield *more*
// successes (checked in expectation via fixed seeds).
TEST(FailureInjectionProperty, RetriesBeatTransientFailures) {
  for (double rate : {0.1, 0.3, 0.5}) {
    World world(101);
    world.grid.set_job_failure_rate(rate);
    ExecutorOptions opts;
    opts.max_retries = 60;  // (1-rate)^-1 bounded well below 60 tries
    WorkflowEngine engine(&world.grid, &world.catalog, opts);
    PlannerOptions options;
    options.target_site = "east";
    Result<ExecutionPlan> plan =
        world.planner->Plan(world.graph.sinks.front(), options);
    ASSERT_TRUE(plan.ok());
    Result<WorkflowResult> result = engine.Execute(*plan);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->succeeded) << "rate=" << rate;
  }
}

TEST(FailureInjectionProperty, NoRetriesDegradeMonotonically) {
  size_t prev_successes = SIZE_MAX;
  for (double rate : {0.0, 0.4, 0.8, 1.0}) {
    World world(101);
    world.grid.set_job_failure_rate(rate);
    ExecutorOptions opts;
    opts.max_retries = 0;
    WorkflowEngine engine(&world.grid, &world.catalog, opts);
    PlannerOptions options;
    options.target_site = "east";
    Result<ExecutionPlan> plan =
        world.planner->Plan(world.graph.sinks.front(), options);
    ASSERT_TRUE(plan.ok());
    Result<WorkflowResult> result = engine.Execute(*plan);
    ASSERT_TRUE(result.ok());
    // Node accounting always balances.
    EXPECT_EQ(result->nodes_succeeded + result->nodes_failed +
                  result->nodes_skipped,
              result->nodes_total);
    // More failures, fewer successes (same seed, same graph).
    EXPECT_LE(result->nodes_succeeded, prev_successes);
    prev_successes = result->nodes_succeeded;
    if (rate == 0.0) {
      EXPECT_TRUE(result->succeeded);
    }
    if (rate == 1.0) {
      EXPECT_FALSE(result->succeeded);
      EXPECT_EQ(result->nodes_succeeded, 0u);
    }
  }
}

// ------------------------- Site outages ------------------------------

TEST(SiteOutageTest, OfflineSiteRejectsAndQueuesDrainOnReturn) {
  GridSimulator grid(workload::SmallTestbed(), 5);
  // Queue two jobs, take the site down mid-queue, bring it back.
  int completed = 0;
  ASSERT_TRUE(grid.SubmitJob("east", 10.0, [&](const JobResult& r) {
                    EXPECT_TRUE(r.succeeded);
                    ++completed;
                  })
                  .ok());
  ASSERT_TRUE(grid.SetSiteOffline("east", true).ok());
  EXPECT_TRUE(grid.IsSiteOffline("east"));
  // New submissions are refused while offline.
  EXPECT_EQ(grid.SubmitJob("east", 1.0, nullptr).status().code(),
            StatusCode::kUnavailable);
  // Other sites unaffected.
  EXPECT_TRUE(grid.SubmitJob("west", 1.0, nullptr).ok());
  // Service returns at t=50; the in-flight job finishes on schedule.
  grid.events().ScheduleAt(50.0, [&grid]() {
    Status s = grid.SetSiteOffline("east", false);
    EXPECT_TRUE(s.ok());
  });
  grid.RunUntilIdle();
  EXPECT_EQ(completed, 1);
  EXPECT_FALSE(grid.IsSiteOffline("east"));
  EXPECT_TRUE(grid.SetSiteOffline("mars", true).IsNotFound());
}

TEST(SiteOutageTest, QueuedWorkWaitsOutTheOutage) {
  GridSimulator grid(workload::SmallTestbed(), 5);
  // Saturate east's 4 hosts, then one more job queues.
  std::vector<double> ends;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(grid.SubmitJob("east", 10.0, [&](const JobResult& r) {
                      ends.push_back(r.end_time);
                    })
                    .ok());
  }
  // Outage from t=5 to t=40: the queued 5th job cannot dispatch at
  // t=10 as it normally would; it starts when service returns.
  grid.events().ScheduleAt(5.0, [&grid]() {
    (void)grid.SetSiteOffline("east", true);
  });
  grid.events().ScheduleAt(40.0, [&grid]() {
    (void)grid.SetSiteOffline("east", false);
  });
  grid.RunUntilIdle();
  ASSERT_EQ(ends.size(), 5u);
  EXPECT_EQ(ends[4], 50.0);  // 40 (return) + 10 (runtime)
}

TEST(SiteOutageTest, PlannerSiteFilterAvoidsOfflineSites) {
  World world(7);
  ASSERT_TRUE(world.grid.SetSiteOffline("east", true).ok());
  PlannerOptions options;
  options.target_site = "east";
  options.site_filter = [&world](std::string_view site) {
    return !world.grid.IsSiteOffline(site);
  };
  Result<ExecutionPlan> plan =
      world.planner->Plan(world.graph.sinks.front(), options);
  ASSERT_TRUE(plan.ok());
  for (const PlanNode& node : plan->nodes) {
    EXPECT_EQ(node.site, "west");
  }
  // The workflow then runs entirely on the surviving site.
  WorkflowEngine engine(&world.grid, &world.catalog);
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
}

}  // namespace
}  // namespace vdg
