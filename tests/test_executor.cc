#include "executor/executor.h"

#include <gtest/gtest.h>

#include "planner/planner.h"
#include "workload/hep.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : catalog_("exec.org"),
        grid_(workload::SmallTestbed(), 7),
        planner_(catalog_, grid_.topology(), &grid_.rls(), estimator_),
        engine_(&grid_, &catalog_) {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR stepA( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/a";
}
TR stepB( output out, input lhs, input rhs ) {
  argument l = "-l "${input:lhs};
  argument r = "-r "${input:rhs};
  argument stdout = ${output:out};
  exec = "/bin/b";
}
DS raw : Dataset size="1048576";
DV mkM1->stepA( out=@{output:"m1"}, in=@{input:"raw"} );
DV mkM2->stepA( out=@{output:"m2"}, in=@{input:"raw"} );
DV mkJoin->stepB( out=@{output:"joined"}, lhs=@{input:"m1"},
                  rhs=@{input:"m2"} );
)")
                    .ok());
    // Annotate runtimes so the simulation has defined behaviour.
    EXPECT_TRUE(catalog_
                    .Annotate("transformation", "stepA", "sim.runtime_s",
                              20.0)
                    .ok());
    EXPECT_TRUE(catalog_
                    .Annotate("transformation", "stepB", "sim.runtime_s",
                              5.0)
                    .ok());
    // raw lives at east (grid + catalog agree).
    EXPECT_TRUE(grid_.PlaceFile("east", "raw", 1 << 20, true).ok());
    Replica r;
    r.dataset = "raw";
    r.site = "east";
    r.size_bytes = 1 << 20;
    EXPECT_TRUE(catalog_.AddReplica(r).ok());
    options_.target_site = "east";
  }

  Result<ExecutionPlan> PlanFor(const std::string& dataset) {
    return planner_.Plan(dataset, options_);
  }

  VirtualDataCatalog catalog_;
  GridSimulator grid_;
  CostEstimator estimator_;
  RequestPlanner planner_;
  WorkflowEngine engine_;
  PlannerOptions options_;
};

TEST_F(ExecutorTest, ExecutesDiamondAndMaterializesOutputs) {
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 3u);
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->nodes_total, 3u);
  EXPECT_EQ(result->nodes_succeeded, 3u);
  EXPECT_EQ(result->nodes_failed, 0u);
  // Two 20s stages run in parallel, then the 5s join: makespan 25s.
  EXPECT_NEAR(result->makespan_s, 25.0, 1.0);
  // Outputs exist both physically (RLS) and logically (catalog).
  EXPECT_TRUE(grid_.rls().Exists("m1"));
  EXPECT_TRUE(grid_.rls().Exists("joined"));
  EXPECT_TRUE(catalog_.IsMaterialized("joined"));
}

TEST_F(ExecutorTest, RecordsInvocationsWithContext) {
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine_.Execute(*plan).ok());
  std::vector<Invocation> ivs = catalog_.InvocationsOf("mkJoin");
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_TRUE(ivs[0].succeeded);
  EXPECT_FALSE(ivs[0].context.host.empty());
  EXPECT_EQ(ivs[0].context.site, plan->nodes[2].site);
  EXPECT_NEAR(ivs[0].duration_s, 5.0, 1e-6);
  // Consumed/produced replicas recorded for replica-precise provenance.
  EXPECT_EQ(ivs[0].consumed_replicas.size(), 2u);
  EXPECT_EQ(ivs[0].produced_replicas.size(), 1u);
  // Output sizes learned into the catalog.
  EXPECT_GT(catalog_.GetDataset("joined")->size_bytes, 0);
}

TEST_F(ExecutorTest, SecondRequestReusesMaterializedData) {
  Result<ExecutionPlan> first = PlanFor("joined");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(engine_.Execute(*first).ok());
  Result<ExecutionPlan> second = PlanFor("joined");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->mode, MaterializationMode::kAlreadyLocal);
}

TEST_F(ExecutorTest, RetriesSurviveTransientFailures) {
  grid_.set_job_failure_rate(0.3);
  ExecutorOptions opts;
  opts.max_retries = 25;  // with p=0.3 per attempt this cannot fail
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
}

TEST_F(ExecutorTest, ExhaustedRetriesFailWorkflowAndSkipDependents) {
  grid_.set_job_failure_rate(1.0);  // everything fails
  ExecutorOptions opts;
  opts.max_retries = 1;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->succeeded);
  EXPECT_EQ(result->nodes_succeeded, 0u);
  EXPECT_GE(result->nodes_failed, 1u);
  EXPECT_GE(result->nodes_skipped, 1u);  // the join never ran
  EXPECT_FALSE(catalog_.IsMaterialized("joined"));
}

TEST_F(ExecutorTest, FetchPlanJustTransfers) {
  // Materialize at west only, then ask for it at east cheaply.
  ASSERT_TRUE(grid_.PlaceFile("west", "joined", 4096).ok());
  Replica r;
  r.dataset = "joined";
  r.site = "west";
  r.size_bytes = 4096;
  ASSERT_TRUE(catalog_.AddReplica(r).ok());
  estimator_.set_default_runtime(1e6);  // make rerun unattractive
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->mode, MaterializationMode::kFetch);
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->nodes_total, 0u);
  EXPECT_EQ(result->transfers, 1u);
  EXPECT_TRUE(grid_.rls().ExistsAt("joined", "east"));
}

TEST_F(ExecutorTest, StagingTransfersHappenForCrossSitePlans) {
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "west";
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_GE(result->transfers, 2u);  // raw staged twice + final fetch
  EXPECT_GT(result->bytes_staged, 0);
  // Final data landed back at the requested site.
  EXPECT_TRUE(grid_.rls().ExistsAt("joined", "east"));
}

TEST_F(ExecutorTest, ConcurrentWorkflowsShareTheGrid) {
  Result<ExecutionPlan> plan1 = PlanFor("m1");
  ASSERT_TRUE(plan1.ok());
  Result<ExecutionPlan> plan2 = PlanFor("m2");
  ASSERT_TRUE(plan2.ok());
  int done = 0;
  ASSERT_TRUE(
      engine_.Submit(*plan1, [&](const WorkflowResult&) { ++done; }).ok());
  ASSERT_TRUE(
      engine_.Submit(*plan2, [&](const WorkflowResult&) { ++done; }).ok());
  grid_.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(catalog_.IsMaterialized("m1"));
  EXPECT_TRUE(catalog_.IsMaterialized("m2"));
}

TEST_F(ExecutorTest, ExecutionsOfFinishedWorkflow) {
  Result<ExecutionPlan> plan = PlanFor("joined");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok());
  Result<std::vector<NodeExecution>> execs =
      engine_.ExecutionsOf(result->workflow_id);
  ASSERT_TRUE(execs.ok());
  ASSERT_EQ(execs->size(), 3u);
  for (const NodeExecution& e : *execs) {
    EXPECT_TRUE(e.succeeded);
    EXPECT_EQ(e.attempts, 1);
    EXPECT_GE(e.end_time, e.start_time);
  }
  EXPECT_TRUE(engine_.ExecutionsOf(999).status().IsNotFound());
}

TEST_F(ExecutorTest, RuntimeModelUsesAnnotations) {
  // stepA has sim.runtime_s=20; add a per-MB term and re-check.
  ASSERT_TRUE(catalog_
                  .Annotate("transformation", "stepA",
                            "sim.runtime_s_per_mb", 10.0)
                  .ok());
  Result<ExecutionPlan> plan = PlanFor("m1");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok());
  std::vector<Invocation> ivs = catalog_.InvocationsOf("mkM1");
  ASSERT_EQ(ivs.size(), 1u);
  // 20s base + 10 s/MiB x 1 MiB input = 30s.
  EXPECT_NEAR(ivs[0].duration_s, 30.0, 1e-6);
}

TEST_F(ExecutorTest, ProvenanceRecordingCanBeDisabled) {
  ExecutorOptions opts;
  opts.record_provenance = false;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("m1");
  ASSERT_TRUE(plan.ok());
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  // Physical placement happens; catalog records do not.
  EXPECT_TRUE(grid_.rls().Exists("m1"));
  EXPECT_FALSE(catalog_.IsMaterialized("m1"));
  EXPECT_TRUE(catalog_.InvocationsOf("mkM1").empty());
  EXPECT_EQ(engine.workflows_submitted(), 1u);
}

TEST_F(ExecutorTest, AlreadyLocalPlanCompletesImmediately) {
  Replica r;
  r.dataset = "m1";
  r.site = "east";
  r.size_bytes = 5;
  ASSERT_TRUE(catalog_.AddReplica(r).ok());
  Result<ExecutionPlan> plan = PlanFor("m1");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->mode, MaterializationMode::kAlreadyLocal);
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->nodes_total, 0u);
  EXPECT_EQ(result->transfers, 0u);
  EXPECT_EQ(result->makespan_s, 0.0);
}

TEST_F(ExecutorTest, CompoundWorkflowEndToEnd) {
  workload::HepOptions hep;
  hep.num_batches = 1;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog_, hep);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(grid_.PlaceFile("east", "cms.batch0.config", 64 * 1024, true)
                  .ok());
  Replica r;
  r.dataset = "cms.batch0.config";
  r.site = "east";
  r.size_bytes = 64 * 1024;
  ASSERT_TRUE(catalog_.AddReplica(r).ok());

  Result<ExecutionPlan> plan = PlanFor("cms.batch0.ntuple");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 4u);
  Result<WorkflowResult> result = engine_.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_TRUE(catalog_.IsMaterialized("cms.batch0.ntuple"));
  // Synthesized sub-derivations were defined and carry invocations.
  std::vector<Invocation> ivs =
      catalog_.InvocationsOf("cms-batch0.c3");
  ASSERT_EQ(ivs.size(), 1u);
  // Paper runtime chain: 50+400+200+60 = 710 simulated seconds.
  EXPECT_NEAR(result->makespan_s, 710.0, 5.0);
}

}  // namespace
}  // namespace vdg
