# End-to-end smoke test for the vdg CLI, run under ctest:
#   init -> import -> list -> plan -> run -> lineage -> audit ->
#   invalidate -> run (repair)
# Invoked as:
#   cmake -DVDG_CLI=<path-to-vdg> -DWORK_DIR=<scratch> -P cli_smoke.cmake

if(NOT DEFINED VDG_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "VDG_CLI and WORK_DIR must be defined")
endif()

set(CATALOG "${WORK_DIR}/smoke.vdc")
set(VDL "${WORK_DIR}/smoke.vdl")
file(REMOVE "${CATALOG}")
file(WRITE "${VDL}" "
TR simulate( output events, input config, none nevents=\"1000\" ) {
  argument n = \"-n \"\${none:nevents};
  argument stdin = \${input:config};
  argument stdout = \${output:events};
  exec = \"/opt/bin/simulate\";
}
TR analyze( output summary, input events ) {
  argument stdin = \${input:events};
  argument stdout = \${output:summary};
  exec = \"/opt/bin/analyze\";
}
DS run1.config : Dataset size=\"65536\";
DV sim1->simulate( events=@{output:\"run1.events\"},
                   config=@{input:\"run1.config\"} );
DV ana1->analyze( summary=@{output:\"run1.summary\"},
                  events=@{input:\"run1.events\"} );
")

function(vdg_step expect_substring)
  execute_process(
    COMMAND ${VDG_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "vdg ${ARGN} failed (${code}): ${out}${err}")
  endif()
  if(NOT expect_substring STREQUAL "" AND
     NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
            "vdg ${ARGN}: expected output matching '${expect_substring}', "
            "got: ${out}")
  endif()
endfunction()

vdg_step("initialized catalog" init "${CATALOG}")
vdg_step("\\+2 derivations" import "${CATALOG}" "${VDL}")
vdg_step("run1.summary" list "${CATALOG}" datasets)
vdg_step("materialize run1.summary" plan "${CATALOG}" run1.summary)
vdg_step("<adag" plan "${CATALOG}" run1.summary --dax)
vdg_step("succeeded: 2/2" run "${CATALOG}" run1.summary)
vdg_step("raw input" lineage "${CATALOG}" run1.summary)
vdg_step("sim1" audit "${CATALOG}" run1.summary)
vdg_step("materialized: yes" show "${CATALOG}" run1.summary)
vdg_step("need re-running" invalidate "${CATALOG}" run1.config)
# Repair: re-run after invalidation, against the replayed journal.
vdg_step("succeeded" run "${CATALOG}" run1.summary)
vdg_step("<transformation" xml "${CATALOG}" simulate)
vdg_step("TR simulate" dump "${CATALOG}")
vdg_step("<vdl" dump "${CATALOG}" --xml)
vdg_step("journal compacted" compact "${CATALOG}")
# State survives compaction.
vdg_step("materialized: yes" show "${CATALOG}" run1.summary)
file(REMOVE "${CATALOG}" "${VDL}")
message(STATUS "cli smoke test passed")
