// End-to-end integration tests: the full virtual-data cycle of
// Figure 5 — compose, plan, estimate, derive, discover — run against
// the simulated grid, plus persistence and invalidation flows.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/hep.h"
#include "workload/sdss.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : catalog_("griphyn.org"),
        grid_(workload::GriphynTestbed(), 11),
        planner_(catalog_, grid_.topology(), &grid_.rls(), estimator_),
        engine_(&grid_, &catalog_) {
    EXPECT_TRUE(catalog_.Open().ok());
  }

  VirtualDataCatalog catalog_;
  GridSimulator grid_;
  CostEstimator estimator_;
  RequestPlanner planner_;
  WorkflowEngine engine_;
};

TEST_F(IntegrationTest, SdssCampaignEndToEnd) {
  workload::SdssOptions options;
  options.num_stripes = 3;
  options.fields_per_stripe = 6;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog_, options);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(
      workload::StageSdssInputs(*workload, options, &grid_, &catalog_).ok());

  PlannerOptions popt;
  popt.target_site = "uchicago";
  size_t executed_nodes = 0;
  for (const std::string& clusters : workload->cluster_catalogs) {
    Result<ExecutionPlan> plan = planner_.Plan(clusters, popt);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(plan->nodes.size(), 7u);  // 6 searches + 1 merge
    Result<WorkflowResult> result = engine_.Execute(*plan);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->succeeded);
    executed_nodes += result->nodes_succeeded;
  }
  EXPECT_EQ(executed_nodes, 21u);
  for (const std::string& clusters : workload->cluster_catalogs) {
    EXPECT_TRUE(catalog_.IsMaterialized(clusters));
  }

  // Discovery over what the campaign produced.
  DatasetQuery astronomy;
  astronomy.name_prefix = "sdss.stripe";
  astronomy.require_materialized = true;
  // 18 fields + 18 bcgs + 3 cluster catalogs, all materialized.
  EXPECT_EQ(catalog_.FindDatasets(astronomy).size(), 39u);

  // Provenance: each cluster catalog traces to exactly its stripe.
  ProvenanceTracker tracker(catalog_);
  Result<std::set<std::string>> ancestors =
      tracker.Ancestors(workload->cluster_catalogs[0]);
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(ancestors->size(), 12u);  // 6 fields + 6 bcg lists
  EXPECT_TRUE(*tracker.FullyMaterialized(workload->cluster_catalogs[0]));

  // The estimator learned real runtimes from the invocations.
  ASSERT_TRUE(estimator_.LearnFromCatalog(catalog_).ok());
  EXPECT_GT(estimator_.ObservationCount("sdss-maxBcg"), 0u);
  EXPECT_NEAR(estimator_.EstimateRuntime("sdss-maxBcg", "uchicago"), 100.0,
              15.0);
}

TEST_F(IntegrationTest, CalibrationErrorInvalidatesAndReruns) {
  workload::SdssOptions options;
  options.num_stripes = 1;
  options.fields_per_stripe = 4;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog_, options);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(
      workload::StageSdssInputs(*workload, options, &grid_, &catalog_).ok());

  PlannerOptions popt;
  popt.target_site = "fermilab";
  const std::string& clusters = workload->cluster_catalogs[0];
  Result<ExecutionPlan> plan = planner_.Plan(clusters, popt);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine_.Execute(*plan)->succeeded);
  ASSERT_TRUE(catalog_.IsMaterialized(clusters));

  // "I've detected a calibration error in an instrument and want to
  // know which derived data to recompute."
  ProvenanceTracker tracker(catalog_);
  const std::string& bad_field = workload->field_datasets[2];
  Result<InvalidationReport> report =
      tracker.Invalidate(bad_field, &catalog_);
  ASSERT_TRUE(report.ok());
  // Downstream: that field's bcg list and the stripe's cluster catalog.
  EXPECT_EQ(report->affected_datasets.size(), 2u);
  EXPECT_FALSE(catalog_.IsMaterialized(clusters));

  // Re-plan: only the invalidated parts are recomputed.
  Result<ExecutionPlan> repair = planner_.Plan(clusters, popt);
  ASSERT_TRUE(repair.ok()) << repair.status();
  EXPECT_EQ(repair->mode, MaterializationMode::kRerun);
  EXPECT_EQ(repair->nodes.size(), 2u);  // bad search + merge
  Result<WorkflowResult> result = engine_.Execute(*repair);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->succeeded);
  EXPECT_TRUE(catalog_.IsMaterialized(clusters));
}

TEST_F(IntegrationTest, DedupAvoidsRecomputation) {
  ASSERT_TRUE(catalog_.ImportVdl(R"(
TR crunch( output out, input in, none level="2" ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/crunch";
}
DS input.data : Dataset size="1000";
DV job1->crunch( out=@{output:"result.data"}, in=@{input:"input.data"},
                 level="5" );
)")
                  .ok());
  ASSERT_TRUE(grid_.PlaceFile("uchicago", "input.data", 1000, true).ok());
  Replica r;
  r.dataset = "input.data";
  r.site = "uchicago";
  r.size_bytes = 1000;
  ASSERT_TRUE(catalog_.AddReplica(r).ok());

  PlannerOptions popt;
  popt.target_site = "uchicago";
  Result<ExecutionPlan> plan = planner_.Plan("result.data", popt);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine_.Execute(*plan)->succeeded);

  // A scientist elsewhere writes the same request under another name.
  Derivation dup("job2", "crunch");
  ASSERT_TRUE(dup.AddArg(ActualArg::DatasetRef("out", "result.data",
                                               ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(dup.AddArg(ActualArg::DatasetRef("in", "input.data",
                                               ArgDirection::kIn))
                  .ok());
  ASSERT_TRUE(dup.AddArg(ActualArg::String("level", "5")).ok());
  // "If the program has already been run and the results stored,
  //  I'll save weeks of computation."
  EXPECT_TRUE(catalog_.HasBeenComputed(dup));
  Result<std::string> original = catalog_.FindEquivalentDerivation(dup);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, "job1");
  // And the planner agrees nothing needs to run.
  Result<ExecutionPlan> replan = planner_.Plan("result.data", popt);
  ASSERT_TRUE(replan.ok());
  EXPECT_EQ(replan->mode, MaterializationMode::kAlreadyLocal);
}

TEST_F(IntegrationTest, HepPipelinePersistsAcrossRestart) {
  std::string path = ::testing::TempDir() + "/vdg_hep_journal.log";
  std::remove(path.c_str());
  uint64_t invocations = 0;
  {
    VirtualDataCatalog catalog("cms.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    workload::HepOptions options;
    options.num_batches = 2;
    Result<workload::HepWorkload> workload =
        workload::GenerateHep(&catalog, options);
    ASSERT_TRUE(workload.ok());

    GridSimulator grid(workload::SmallTestbed(), 5);
    for (const std::string& config : workload->config_datasets) {
      ASSERT_TRUE(grid.PlaceFile("east", config, 64 * 1024, true).ok());
      Replica r;
      r.dataset = config;
      r.site = "east";
      r.size_bytes = 64 * 1024;
      ASSERT_TRUE(catalog.AddReplica(r).ok());
    }
    CostEstimator estimator;
    RequestPlanner planner(catalog, grid.topology(), &grid.rls(),
                           estimator);
    WorkflowEngine engine(&grid, &catalog);
    PlannerOptions popt;
    popt.target_site = "east";
    for (const std::string& ntuple : workload->ntuples) {
      Result<ExecutionPlan> plan = planner.Plan(ntuple, popt);
      ASSERT_TRUE(plan.ok()) << plan.status();
      ASSERT_TRUE(engine.Execute(*plan)->succeeded);
    }
    invocations = catalog.Stats().invocations;
    EXPECT_EQ(invocations, 8u);  // 4 stages x 2 batches
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  // Reopen: the full provenance record survives the restart.
  VirtualDataCatalog reopened("cms.org",
                              std::make_unique<FileJournal>(path));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Stats().invocations, invocations);
  EXPECT_TRUE(reopened.IsMaterialized("cms.batch0.ntuple"));
  ProvenanceTracker tracker(reopened);
  Result<std::vector<Invocation>> trail =
      tracker.AuditTrail("cms.batch1.ntuple");
  ASSERT_TRUE(trail.ok());
  EXPECT_EQ(trail->size(), 4u);  // the batch's four stages
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, EstimatorImprovesWithHistory) {
  ASSERT_TRUE(catalog_.ImportVdl(R"(
TR slowstep( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/slow";
}
DS seed.data : Dataset size="1000";
DV mk1->slowstep( out=@{output:"out1"}, in=@{input:"seed.data"} );
DV mk2->slowstep( out=@{output:"out2"}, in=@{input:"seed.data"} );
)")
                  .ok());
  ASSERT_TRUE(catalog_
                  .Annotate("transformation", "slowstep", "sim.runtime_s",
                            120.0)
                  .ok());
  ASSERT_TRUE(grid_.PlaceFile("caltech", "seed.data", 1000, true).ok());
  Replica r;
  r.dataset = "seed.data";
  r.site = "caltech";
  r.size_bytes = 1000;
  ASSERT_TRUE(catalog_.AddReplica(r).ok());

  PlannerOptions popt;
  popt.target_site = "caltech";
  // Before any history, the planner uses the default estimate.
  Result<ExecutionPlan> first = planner_.Plan("out1", popt);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->nodes[0].est_runtime_s, estimator_.default_runtime());
  ASSERT_TRUE(engine_.Execute(*first)->succeeded);

  // After learning, the estimate tracks the observed 120s/1.1 factor.
  ASSERT_TRUE(estimator_.LearnFromCatalog(catalog_).ok());
  Result<ExecutionPlan> second = planner_.Plan("out2", popt);
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second->nodes[0].est_runtime_s, 120.0 / 1.1, 1.0);
}

}  // namespace
}  // namespace vdg
