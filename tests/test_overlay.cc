// Tests for the Section-8 "virtual datasets" extension: overlay
// datasets sharing one physical base object, with reference-counted
// garbage collection.
#include "grid/overlay.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest() : storage_("site", "se0", 10000), manager_(&storage_) {}
  StorageElement storage_;
  OverlayManager manager_;
};

TEST_F(OverlayTest, BaseStoredOnceOverlaysAreFree) {
  ASSERT_TRUE(manager_.StoreBase("events.raw", 4000, 0).ok());
  EXPECT_EQ(storage_.used_bytes(), 4000);
  ASSERT_TRUE(manager_.CreateOverlay("run1", "events.raw", 0, 1500).ok());
  ASSERT_TRUE(manager_.CreateOverlay("run2", "events.raw", 1500, 2500).ok());
  ASSERT_TRUE(manager_.CreateOverlay("all", "events.raw", 0, 4000).ok());
  // Still one physical copy.
  EXPECT_EQ(storage_.used_bytes(), 4000);
  EXPECT_EQ(manager_.overlay_count(), 3u);
  // 1500 + 2500 + 4000 overlay bytes over a 4000-byte base.
  EXPECT_EQ(manager_.BytesSaved(), 4000);
}

TEST_F(OverlayTest, RangeValidation) {
  ASSERT_TRUE(manager_.StoreBase("base", 100, 0).ok());
  EXPECT_FALSE(manager_.CreateOverlay("bad1", "base", -1, 10).ok());
  EXPECT_FALSE(manager_.CreateOverlay("bad2", "base", 0, 0).ok());
  EXPECT_FALSE(manager_.CreateOverlay("bad3", "base", 90, 20).ok());
  EXPECT_TRUE(manager_.CreateOverlay("ok", "base", 90, 10).ok());
  EXPECT_TRUE(manager_.CreateOverlay("dup", "base", 0, 10).ok());
  EXPECT_TRUE(manager_.CreateOverlay("dup", "base", 0, 10).IsAlreadyExists());
  EXPECT_TRUE(
      manager_.CreateOverlay("x", "no-such-base", 0, 1).IsNotFound());
}

TEST_F(OverlayTest, GarbageCollectionOnLastRelease) {
  ASSERT_TRUE(manager_.StoreBase("base", 4000, 0).ok());
  ASSERT_TRUE(manager_.CreateOverlay("a", "base", 0, 1000).ok());
  ASSERT_TRUE(manager_.CreateOverlay("b", "base", 1000, 1000).ok());

  Result<int64_t> first = manager_.ReleaseOverlay("a");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);  // b still references the base
  EXPECT_EQ(storage_.used_bytes(), 4000);

  Result<int64_t> last = manager_.ReleaseOverlay("b");
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, 4000);  // base reclaimed
  EXPECT_EQ(storage_.used_bytes(), 0);
  EXPECT_EQ(manager_.base_count(), 0u);
  EXPECT_TRUE(manager_.ReleaseOverlay("a").status().IsNotFound());
}

TEST_F(OverlayTest, PinnedBaseSurvivesGc) {
  ASSERT_TRUE(manager_.StoreBase("base", 1000, 0).ok());
  ASSERT_TRUE(storage_.SetPinned("base", true).ok());
  ASSERT_TRUE(manager_.CreateOverlay("a", "base", 0, 500).ok());
  Result<int64_t> released = manager_.ReleaseOverlay("a");
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 0);  // pinned: bytes not reclaimed
  EXPECT_TRUE(storage_.Contains("base"));
}

TEST_F(OverlayTest, LookupAndEnumeration) {
  ASSERT_TRUE(manager_.StoreBase("base", 1000, 0).ok());
  ASSERT_TRUE(manager_.CreateOverlay("z-late", "base", 500, 100).ok());
  ASSERT_TRUE(manager_.CreateOverlay("a-early", "base", 0, 100).ok());
  EXPECT_TRUE(manager_.HasOverlay("z-late"));
  EXPECT_FALSE(manager_.HasOverlay("nope"));
  Result<OverlayMapping> mapping = manager_.GetOverlay("z-late");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->offset, 500);
  EXPECT_EQ(mapping->length, 100);
  std::vector<OverlayMapping> all = manager_.OverlaysOf("base");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].dataset, "a-early");  // sorted
  EXPECT_TRUE(manager_.OverlaysOf("unknown").empty());
}

TEST_F(OverlayTest, IntersectionFindsAffectedDatasets) {
  // The storage-side invalidation query: bytes [400, 600) corrupted.
  ASSERT_TRUE(manager_.StoreBase("base", 1000, 0).ok());
  ASSERT_TRUE(manager_.CreateOverlay("left", "base", 0, 400).ok());
  ASSERT_TRUE(manager_.CreateOverlay("middle", "base", 300, 400).ok());
  ASSERT_TRUE(manager_.CreateOverlay("right", "base", 600, 400).ok());
  ASSERT_TRUE(manager_.CreateOverlay("everything", "base", 0, 1000).ok());
  std::vector<OverlayMapping> hit =
      manager_.OverlaysIntersecting("base", 400, 200);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[0].dataset, "everything");
  EXPECT_EQ(hit[1].dataset, "middle");
  // Boundary-touching ranges do not intersect.
  std::vector<OverlayMapping> edge =
      manager_.OverlaysIntersecting("base", 400, 0);
  EXPECT_TRUE(edge.empty());
}

TEST_F(OverlayTest, CapacityInteraction) {
  // Overlays let 3 logical datasets fit where 3 copies would not.
  StorageElement small("site", "tiny", 5000);
  OverlayManager manager(&small);
  ASSERT_TRUE(manager.StoreBase("big", 4000, 0).ok());
  ASSERT_TRUE(manager.CreateOverlay("v1", "big", 0, 4000).ok());
  ASSERT_TRUE(manager.CreateOverlay("v2", "big", 0, 2000).ok());
  ASSERT_TRUE(manager.CreateOverlay("v3", "big", 2000, 2000).ok());
  EXPECT_EQ(small.free_bytes(), 1000);
  // A fourth full copy would never have fit: 3 x 4000 > 5000.
  EXPECT_EQ(manager.BytesSaved(), 4000);
}

}  // namespace
}  // namespace vdg
