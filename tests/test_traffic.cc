// LatencyHistogram bucket math + the open-loop traffic harness
// (ISSUE 10): quantile error bounds, merge semantics, and a smoke run
// proving the virtual-time queueing model produces sane reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "workload/traffic_gen.h"

namespace vdg {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(LatencyHistogram, ExactBelowLinearMax) {
  // Values below 64 get one bucket each: bucket upper bound == value.
  for (uint64_t v = 0; v < 64; ++v) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(index), v) << v;
  }
  // Bucket indexes are monotone in the value.
  size_t prev = 0;
  for (uint64_t v = 1; v < (uint64_t{1} << 20); v = v * 3 / 2 + 1) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, prev) << v;
    prev = index;
  }
}

TEST(LatencyHistogram, BoundedRelativeErrorAboveLinearMax) {
  // Above 64, the bucket upper bound overshoots by at most 1/32.
  for (uint64_t v : {64u, 65u, 100u, 1000u, 123456u, 7654321u}) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    const uint64_t upper = LatencyHistogram::BucketUpperBound(index);
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v), static_cast<double>(v) / 32.0)
        << v;
  }
  const uint64_t huge = uint64_t{1} << 55;
  const size_t index = LatencyHistogram::BucketIndex(huge + 3);
  EXPECT_LT(index, LatencyHistogram::bucket_count());
  EXPECT_GE(LatencyHistogram::BucketUpperBound(index), huge + 3);
}

TEST(LatencyHistogram, QuantilesCountsAndMoments) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);

  // 1..100: quantiles are exact here (all values below... no — above
  // 64 quantized, but within 1/32).
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 50u);
  // Upper-bound quantization never understates, and is clamped to max.
  EXPECT_GE(h.ValueAtQuantile(0.95), 95u);
  EXPECT_LE(h.ValueAtQuantile(0.95), 98u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 100u);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 100u);  // clamped q

  // Quantiles are monotone in q.
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(LatencyHistogram, RecordNAndMerge) {
  LatencyHistogram a;
  a.RecordN(10, 90);
  a.RecordN(1000000, 10);

  LatencyHistogram b;
  b.RecordN(20, 100);

  LatencyHistogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_EQ(merged.min(), 10u);
  EXPECT_EQ(merged.max(), 1000000u);
  // p50 of {90x10, 100x20, 10x1e6} is 20.
  EXPECT_EQ(merged.ValueAtQuantile(0.5), 20u);
  // The tail only appears past the 95th percentile.
  EXPECT_LE(merged.ValueAtQuantile(0.94), 20u);
  EXPECT_GE(merged.ValueAtQuantile(0.96), 1000000u * 31 / 32);
  const double expected_mean =
      (90.0 * 10 + 100.0 * 20 + 10.0 * 1000000) / 200.0;
  EXPECT_DOUBLE_EQ(merged.mean(), expected_mean);

  // Merging an empty histogram is a no-op.
  merged.Merge(LatencyHistogram());
  EXPECT_EQ(merged.count(), 200u);
}

// ---------------------------------------------------------------------
// TrafficHarness
// ---------------------------------------------------------------------

workload::TrafficOptions SmallOptions() {
  workload::TrafficOptions options;
  options.users = 10'000;
  options.operations = 600;
  options.corpus_datasets = 800;
  options.corpus_buckets = 16;
  options.seed = 7;
  return options;
}

TEST(TrafficHarness, SmokeRunProducesConsistentReport) {
  for (uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    Result<std::unique_ptr<workload::TrafficWorld>> world =
        workload::MakeTrafficWorld(shards, SmallOptions());
    ASSERT_TRUE(world.ok()) << world.status().message();

    Result<workload::TrafficReport> ran = (*world)->harness->Run();
    ASSERT_TRUE(ran.ok()) << ran.status().message();
    const workload::TrafficReport& report = *ran;

    EXPECT_EQ(report.shard_count, shards);
    EXPECT_EQ(report.operations, 600u);
    EXPECT_EQ(report.errors, 0u);
    EXPECT_EQ(report.discovery_ops + report.derivation_ops +
                  report.annotation_ops,
              report.operations);
    EXPECT_GT(report.discovery_ops, report.derivation_ops);
    EXPECT_GT(report.offered_rate, 0.0);
    EXPECT_GT(report.completed_rate, 0.0);
    EXPECT_GT(report.query_rate, 0.0);
    EXPECT_GT(report.virtual_seconds, 0.0);

    // The three class histograms partition the overall one.
    EXPECT_EQ(report.latency.count(), report.operations);
    EXPECT_EQ(report.discovery_latency.count() +
                  report.mutation_latency.count(),
              report.latency.count());
    const uint64_t p50 = report.latency.ValueAtQuantile(0.50);
    const uint64_t p95 = report.latency.ValueAtQuantile(0.95);
    const uint64_t p99 = report.latency.ValueAtQuantile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GT(p99, 0u);
  }
}

TEST(TrafficHarness, RepeatRunsAndPinnedRate) {
  Result<std::unique_ptr<workload::TrafficWorld>> world =
      workload::MakeTrafficWorld(2, SmallOptions());
  ASSERT_TRUE(world.ok()) << world.status().message();
  workload::TrafficHarness& harness = *(*world)->harness;

  Result<workload::TrafficReport> first = harness.Run();
  ASSERT_TRUE(first.ok()) << first.status().message();
  // Re-running the same harness must not trip AlreadyExists on
  // derivation names.
  Result<workload::TrafficReport> second = harness.Run();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(second->errors, 0u);
  // The calibrated rate is sticky across runs of one harness.
  EXPECT_DOUBLE_EQ(second->offered_rate, first->offered_rate);

  // A second world with the rate pinned runs at exactly that load —
  // the equal-offered-load contract the bench sweep relies on.
  workload::TrafficOptions pinned = SmallOptions();
  pinned.offered_rate = first->offered_rate;
  Result<std::unique_ptr<workload::TrafficWorld>> world8 =
      workload::MakeTrafficWorld(4, pinned);
  ASSERT_TRUE(world8.ok()) << world8.status().message();
  Result<workload::TrafficReport> ran8 = (*world8)->harness->Run();
  ASSERT_TRUE(ran8.ok()) << ran8.status().message();
  EXPECT_DOUBLE_EQ(ran8->offered_rate, first->offered_rate);
  EXPECT_EQ(ran8->errors, 0u);
}

TEST(TrafficHarness, GuardsBadInputs) {
  EXPECT_TRUE(workload::MakeTrafficWorld(0).status().IsInvalidArgument());

  workload::TrafficOptions options = SmallOptions();
  options.corpus_buckets = 0;
  EXPECT_FALSE(workload::MakeTrafficWorld(1, options).ok());

  // Run() before SeedCorpus() fails closed.
  std::vector<std::shared_ptr<CatalogClient>> no_corpus_clients;
  auto catalog = std::make_unique<VirtualDataCatalog>("bare.org");
  ASSERT_TRUE(catalog->Open().ok());
  no_corpus_clients.push_back(
      std::make_shared<InProcessCatalogClient>(catalog.get()));
  workload::TrafficHarness bare(no_corpus_clients);
  EXPECT_EQ(bare.Run().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace vdg
