#include "types/type_system.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

class TypeHierarchyTest : public ::testing::Test {
 protected:
  TypeHierarchyTest() : h_(TypeDimension::kFormat) {
    EXPECT_TRUE(h_.DefineTopLevel("Fileset").ok());
    EXPECT_TRUE(h_.Define("Simple", "Fileset").ok());
    EXPECT_TRUE(h_.Define("Tar-archive", "Fileset").ok());
    EXPECT_TRUE(h_.DefineTopLevel("Relation").ok());
    EXPECT_TRUE(h_.Define("SQL-table", "Relation").ok());
  }
  TypeHierarchy h_;
};

TEST_F(TypeHierarchyTest, ContainsDefinedTypes) {
  EXPECT_TRUE(h_.Contains("Fileset"));
  EXPECT_TRUE(h_.Contains("SQL-table"));
  EXPECT_FALSE(h_.Contains("Nope"));
  EXPECT_EQ(h_.size(), 5u);
}

TEST_F(TypeHierarchyTest, RejectsDuplicatesAndBadParents) {
  EXPECT_TRUE(h_.Define("Simple", "Fileset").IsAlreadyExists());
  EXPECT_TRUE(h_.Define("X", "NoSuchParent").IsNotFound());
  EXPECT_FALSE(h_.Define("bad name", "Fileset").ok());
  EXPECT_FALSE(h_.Define("Dataset-format", "Fileset").ok());
}

TEST_F(TypeHierarchyTest, SubtypeIsReflexiveForDefinedNames) {
  EXPECT_TRUE(h_.IsSubtypeOf("Simple", "Simple"));
  EXPECT_FALSE(h_.IsSubtypeOf("Undefined", "Undefined"));
}

TEST_F(TypeHierarchyTest, SubtypeIsTransitive) {
  EXPECT_TRUE(h_.IsSubtypeOf("Simple", "Fileset"));
  EXPECT_TRUE(h_.IsSubtypeOf("Simple", h_.base_name()));
  EXPECT_TRUE(h_.IsSubtypeOf("SQL-table", "Relation"));
}

TEST_F(TypeHierarchyTest, SubtypeRejectsCrossBranch) {
  EXPECT_FALSE(h_.IsSubtypeOf("Simple", "Relation"));
  EXPECT_FALSE(h_.IsSubtypeOf("Fileset", "Simple"));  // not symmetric
}

TEST_F(TypeHierarchyTest, AncestryWalksToBase) {
  Result<std::vector<std::string>> chain = h_.AncestryOf("Simple");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(*chain, (std::vector<std::string>{"Simple", "Fileset",
                                              "Dataset-format"}));
  EXPECT_FALSE(h_.AncestryOf("Missing").ok());
}

TEST_F(TypeHierarchyTest, DepthCountsEdgesFromBase) {
  EXPECT_EQ(*h_.DepthOf("Fileset"), 1);
  EXPECT_EQ(*h_.DepthOf("Simple"), 2);
  EXPECT_EQ(*h_.DepthOf(h_.base_name()), 0);
}

TEST_F(TypeHierarchyTest, ChildrenAreSorted) {
  EXPECT_EQ(h_.ChildrenOf("Fileset"),
            (std::vector<std::string>{"Simple", "Tar-archive"}));
  EXPECT_EQ(h_.ChildrenOf(h_.base_name()),
            (std::vector<std::string>{"Fileset", "Relation"}));
}

TEST(DatasetTypeTest, ToStringUsesStarsForUnconstrained) {
  DatasetType t;
  t.content = "SDSS";
  EXPECT_EQ(t.ToString(), "SDSS/*/*");
  EXPECT_EQ(DatasetType::Any().ToString(), "*/*/*");
}

TEST(DatasetTypeTest, ParseRoundTrip) {
  for (const char* text :
       {"SDSS/Fileset/ASCII", "CMS/*/*", "*/Relation/*", "*/*/*"}) {
    Result<DatasetType> t = DatasetType::Parse(text);
    ASSERT_TRUE(t.ok()) << text;
    EXPECT_EQ(t->ToString(), text);
  }
}

TEST(DatasetTypeTest, ParseDatasetSynonymIsAny) {
  Result<DatasetType> t = DatasetType::Parse("Dataset");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsAny());
}

TEST(DatasetTypeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(DatasetType::Parse("a/b/c/d").ok());
  EXPECT_FALSE(DatasetType::Parse("bad name/x").ok());
}

TEST(DatasetTypeTest, PartialParseFillsLeadingDimensions) {
  Result<DatasetType> t = DatasetType::Parse("SDSS/Fileset");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->content, "SDSS");
  EXPECT_EQ(t->format, "Fileset");
  EXPECT_TRUE(t->encoding.empty());
}

class TypeRegistryTest : public ::testing::Test {
 protected:
  TypeRegistryTest() { EXPECT_TRUE(registry_.LoadAppendixCPreset().ok()); }
  TypeRegistry registry_;

  static DatasetType Make(const char* c, const char* f, const char* e) {
    DatasetType t;
    t.content = c;
    t.format = f;
    t.encoding = e;
    return t;
  }
};

TEST_F(TypeRegistryTest, PresetLoadsAllDimensions) {
  EXPECT_TRUE(registry_.dimension(TypeDimension::kFormat).Contains("Zip-archive"));
  EXPECT_TRUE(
      registry_.dimension(TypeDimension::kEncoding).Contains("HDF-5-file"));
  EXPECT_TRUE(registry_.dimension(TypeDimension::kContent)
                  .Contains("PAW-ntuple-file"));
  EXPECT_GE(registry_.size(), 40u);
}

TEST_F(TypeRegistryTest, ValidateAcceptsKnownAndEmptyComponents) {
  EXPECT_TRUE(registry_.Validate(Make("SDSS", "Fileset", "Text")).ok());
  EXPECT_TRUE(registry_.Validate(DatasetType::Any()).ok());
  EXPECT_TRUE(registry_.Validate(Make("", "Relation", "")).ok());
}

TEST_F(TypeRegistryTest, ValidateRejectsUnknownComponent) {
  Status s = registry_.Validate(Make("NotAType", "", ""));
  EXPECT_TRUE(s.IsTypeError());
}

TEST_F(TypeRegistryTest, ConformanceIsSubtypePerDimension) {
  // Excel-95 is a Spreadsheet; DOS-text is ASCII is Text.
  EXPECT_TRUE(registry_.Conforms(Make("", "Excel-95", "DOS-text"),
                                 Make("", "Spreadsheet", "Text")));
  EXPECT_FALSE(registry_.Conforms(Make("", "Excel-95", "DOS-text"),
                                  Make("", "Relation", "Text")));
}

TEST_F(TypeRegistryTest, UnconstrainedFormalAcceptsAnything) {
  EXPECT_TRUE(
      registry_.Conforms(Make("SDSS", "Fileset", "Text"), DatasetType::Any()));
}

TEST_F(TypeRegistryTest, ConstrainedFormalRejectsUnconstrainedActual) {
  // An untyped dataset does not conform to a typed formal.
  EXPECT_FALSE(
      registry_.Conforms(DatasetType::Any(), Make("SDSS", "", "")));
}

TEST_F(TypeRegistryTest, BaseNamedFormalAcceptsAnything) {
  DatasetType base_formal;
  base_formal.content = "Dataset-content";
  EXPECT_TRUE(registry_.Conforms(DatasetType::Any(), base_formal));
}

TEST_F(TypeRegistryTest, UnionConformance) {
  std::vector<DatasetType> formal{Make("CMS", "", ""), Make("SDSS", "", "")};
  EXPECT_TRUE(registry_.ConformsToAny(Make("FITS-file", "", ""), formal));
  EXPECT_TRUE(registry_.ConformsToAny(Make("Zebra-file", "", ""), formal));
  EXPECT_FALSE(registry_.ConformsToAny(Make("UChicago", "", ""), formal));
  EXPECT_TRUE(registry_.ConformsToAny(Make("UChicago", "", ""), {}));
}

TEST_F(TypeRegistryTest, CommonSupertypeFindsDeepestSharedAncestor) {
  DatasetType sup = registry_.CommonSupertype(Make("Zebra-file", "", ""),
                                              Make("Geant-4-file", "", ""));
  EXPECT_EQ(sup.content, "Simulation");
  sup = registry_.CommonSupertype(Make("Zebra-file", "", ""),
                                  Make("ROOT-IO-file", "", ""));
  EXPECT_EQ(sup.content, "CMS");
  sup = registry_.CommonSupertype(Make("Zebra-file", "", ""),
                                  Make("FITS-file", "", ""));
  EXPECT_TRUE(sup.content.empty());  // only the base is shared
}

// Property: every type in the preset conforms to its own ancestors.
class PresetConformance : public ::testing::TestWithParam<int> {};

TEST_P(PresetConformance, EveryTypeConformsToItsAncestry) {
  TypeRegistry registry;
  ASSERT_TRUE(registry.LoadAppendixCPreset().ok());
  auto dim = static_cast<TypeDimension>(GetParam());
  const TypeHierarchy& h = registry.dimension(dim);
  for (std::string_view name : h.AllTypes()) {
    Result<std::vector<std::string>> chain = h.AncestryOf(name);
    ASSERT_TRUE(chain.ok());
    for (const std::string& ancestor : *chain) {
      EXPECT_TRUE(h.IsSubtypeOf(name, ancestor))
          << name << " should be subtype of " << ancestor;
      DatasetType actual;
      actual.component(dim) = name;
      DatasetType formal;
      formal.component(dim) = ancestor;
      EXPECT_TRUE(registry.Conforms(actual, formal));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDimensions, PresetConformance,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace vdg
