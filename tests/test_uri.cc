#include "common/uri.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(VdpUriTest, ParsesFigure2Examples) {
  Result<VdpUri> uri = ParseVdpUri("vdp://physics.wisconsin.edu/srch");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->authority, "physics.wisconsin.edu");
  EXPECT_EQ(uri->path, "srch");
}

TEST(VdpUriTest, PathMayContainSlashes) {
  Result<VdpUri> uri = ParseVdpUri("vdp://host/group/dataset.v2");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->path, "group/dataset.v2");
}

TEST(VdpUriTest, RoundTripsThroughToString) {
  VdpUri uri{"physics.illinois.edu", "sim"};
  Result<VdpUri> reparsed = ParseVdpUri(uri.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, uri);
}

TEST(VdpUriTest, RejectsWrongScheme) {
  EXPECT_FALSE(ParseVdpUri("http://host/x").ok());
  EXPECT_FALSE(ParseVdpUri("vdp:/host/x").ok());
  EXPECT_FALSE(ParseVdpUri("").ok());
}

TEST(VdpUriTest, RejectsMissingParts) {
  EXPECT_FALSE(ParseVdpUri("vdp://hostonly").ok());
  EXPECT_FALSE(ParseVdpUri("vdp:///path").ok());
  EXPECT_FALSE(ParseVdpUri("vdp://host/").ok());
}

TEST(VdpUriTest, IsVdpUriDetection) {
  EXPECT_TRUE(IsVdpUri("vdp://a/b"));
  EXPECT_FALSE(IsVdpUri("plain-name"));
  EXPECT_FALSE(IsVdpUri("ns::name"));
}

}  // namespace
}  // namespace vdg
