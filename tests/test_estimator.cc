#include "estimator/estimator.h"

#include <gtest/gtest.h>

#include "workload/testbed.h"

namespace vdg {
namespace {

TEST(WelfordTest, MeanAndStddev) {
  WelfordAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138089935, 1e-6);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(WelfordTest, EdgeCases) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.stddev(), 0.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.mean(), 3.0);
  EXPECT_EQ(acc.stddev(), 0.0);  // single sample
  EXPECT_EQ(acc.min(), 3.0);
  EXPECT_EQ(acc.max(), 3.0);
}

TEST(EstimatorTest, FallbackResolutionOrder) {
  CostEstimator est;
  est.set_default_runtime(99.0);
  // Nothing recorded: default.
  EXPECT_EQ(est.EstimateRuntime("tr", "east"), 99.0);
  // Cross-site history: used for unseen sites.
  est.RecordRuntime("tr", "west", 10.0);
  est.RecordRuntime("tr", "west", 20.0);
  EXPECT_EQ(est.EstimateRuntime("tr", "east"), 15.0);
  // Site-local history wins.
  est.RecordRuntime("tr", "east", 50.0);
  EXPECT_EQ(est.EstimateRuntime("tr", "east"), 50.0);
  EXPECT_EQ(est.EstimateRuntime("tr", "west"), 15.0);
}

TEST(EstimatorTest, ObservationCounts) {
  CostEstimator est;
  est.RecordRuntime("tr", "east", 1.0);
  est.RecordRuntime("tr", "east", 2.0);
  est.RecordRuntime("tr", "west", 3.0);
  EXPECT_EQ(est.ObservationCount("tr", "east"), 2u);
  EXPECT_EQ(est.ObservationCount("tr", "west"), 1u);
  EXPECT_EQ(est.ObservationCount("tr"), 3u);
  EXPECT_EQ(est.ObservationCount("other"), 0u);
}

TEST(EstimatorTest, OutputSizeEstimation) {
  CostEstimator est;
  EXPECT_EQ(est.EstimateOutputSize("tr"), 0);
  est.RecordOutputSize("tr", 100);
  est.RecordOutputSize("tr", 300);
  EXPECT_EQ(est.EstimateOutputSize("tr"), 200);
}

TEST(EstimatorTest, UpperBoundTracksVariance) {
  CostEstimator est;
  est.set_default_runtime(42.0);
  // No history: default, regardless of z.
  EXPECT_EQ(est.EstimateRuntimeUpperBound("tr", "east", 2.0), 42.0);
  // Noisy history at east: bound grows with z.
  for (double x : {80.0, 100.0, 120.0}) est.RecordRuntime("tr", "east", x);
  double mean = est.EstimateRuntime("tr", "east");
  EXPECT_DOUBLE_EQ(mean, 100.0);
  EXPECT_DOUBLE_EQ(est.EstimateRuntimeUpperBound("tr", "east", 0.0), mean);
  double bound = est.EstimateRuntimeUpperBound("tr", "east", 2.0);
  EXPECT_NEAR(bound, 100.0 + 2.0 * 20.0, 1e-9);
  // Unseen site falls back to cross-site stats.
  EXPECT_NEAR(est.EstimateRuntimeUpperBound("tr", "west", 1.0), 120.0,
              1e-9);
  // A perfectly stable transformation has a tight bound.
  CostEstimator stable;
  stable.RecordRuntime("s", "east", 50.0);
  stable.RecordRuntime("s", "east", 50.0);
  EXPECT_DOUBLE_EQ(stable.EstimateRuntimeUpperBound("s", "east", 3.0),
                   50.0);
}

TEST(EstimatorTest, TransferEstimateDelegatesToTopology) {
  CostEstimator est;
  GridTopology t = workload::SmallTestbed();
  EXPECT_NEAR(est.EstimateTransfer(t, "east", "west", 12'500'000), 1.02,
              1e-9);
}

TEST(EstimatorTest, LearnFromCatalog) {
  VirtualDataCatalog catalog("est.org");
  ASSERT_TRUE(catalog.Open().ok());
  ASSERT_TRUE(catalog.ImportVdl(R"(
TR work( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/work";
}
DS src : Dataset size="100";
DV d1->work( out=@{output:"mid"}, in=@{input:"src"} );
)")
                  .ok());
  ASSERT_TRUE(catalog.SetDatasetSize("mid", 5000).ok());
  Invocation good;
  good.derivation = "d1";
  good.context.site = "east";
  good.duration_s = 30;
  ASSERT_TRUE(catalog.RecordInvocation(good).ok());
  Invocation failed;
  failed.derivation = "d1";
  failed.context.site = "east";
  failed.duration_s = 500;
  failed.succeeded = false;  // must be ignored
  ASSERT_TRUE(catalog.RecordInvocation(failed).ok());

  CostEstimator est;
  ASSERT_TRUE(est.LearnFromCatalog(catalog).ok());
  EXPECT_EQ(est.EstimateRuntime("work", "east"), 30.0);
  EXPECT_EQ(est.ObservationCount("work"), 1u);
  EXPECT_EQ(est.EstimateOutputSize("work"), 5000);
}

}  // namespace
}  // namespace vdg
