// Crash-safety tests for the checksummed FileJournal: every appended
// record carries a CRC-32, a torn or bit-rotted tail is detected on
// replay, the valid prefix survives (and the file is physically
// truncated back to it), mid-file rot loses only the damaged record,
// and checksum-less journals written by older builds still load.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/journal.h"

namespace vdg {
namespace {

std::string TempPath(const std::string& tag) {
  std::string path = ::testing::TempDir() + "/vdg_crc_" + tag + "_" +
                     std::to_string(::getpid());
  std::remove(path.c_str());
  return path;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
}

TEST(JournalCrcTest, AppendedRecordsCarryChecksums) {
  std::string path = TempPath("append");
  FileJournal journal(path);
  ASSERT_TRUE(journal.Append("DS|alpha|1024").ok());
  ASSERT_TRUE(journal.Append("DS|beta|2048").ok());
  ASSERT_TRUE(journal.Sync().ok());

  std::string raw = Slurp(path);
  ASSERT_FALSE(raw.empty());
  EXPECT_EQ(raw[0], '~');  // CRC prefix on disk
  EXPECT_NE(raw.find("|DS|alpha|1024\n"), std::string::npos);

  Result<std::vector<std::string>> records = journal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], "DS|alpha|1024");  // payload, prefix stripped
  EXPECT_EQ((*records)[1], "DS|beta|2048");
  EXPECT_FALSE(journal.last_recovery().truncated);
  std::remove(path.c_str());
}

TEST(JournalCrcTest, TornTailIsTruncatedAndReported) {
  std::string path = TempPath("torn");
  {
    FileJournal journal(path);
    ASSERT_TRUE(journal.Append("DS|one|1").ok());
    ASSERT_TRUE(journal.Append("DS|two|2").ok());
    ASSERT_TRUE(journal.Append("DS|three|3").ok());
    ASSERT_TRUE(journal.Sync().ok());
  }
  // Simulate a crash mid-append: cut the last record in half.
  std::string raw = Slurp(path);
  uint64_t cut = raw.size() - 6;
  Dump(path, raw.substr(0, cut));

  FileJournal reopened(path);
  Result<std::vector<std::string>> records = reopened.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1], "DS|two|2");
  const JournalTailRecovery& recovery = reopened.last_recovery();
  EXPECT_TRUE(recovery.truncated);
  EXPECT_EQ(recovery.records_recovered, 2u);
  EXPECT_GT(recovery.truncated_bytes, 0u);
  EXPECT_FALSE(recovery.reason.empty());
  // The damage is physically gone: the file now ends at the last good
  // record and future appends extend a clean log.
  EXPECT_EQ(std::filesystem::file_size(path), recovery.valid_bytes);
  ASSERT_TRUE(reopened.Append("DS|four|4").ok());
  ASSERT_TRUE(reopened.Sync().ok());
  Result<std::vector<std::string>> healed = reopened.ReadAll();
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed->size(), 3u);
  EXPECT_EQ((*healed)[2], "DS|four|4");
  EXPECT_FALSE(reopened.last_recovery().truncated);
  std::remove(path.c_str());
}

TEST(JournalCrcTest, BitFlipEndsTheValidPrefix) {
  std::string path = TempPath("bitflip");
  {
    FileJournal journal(path);
    ASSERT_TRUE(journal.Append("DS|good|1").ok());
    ASSERT_TRUE(journal.Append("DS|rotted|2").ok());
    ASSERT_TRUE(journal.Sync().ok());
  }
  std::string raw = Slurp(path);
  // Flip one payload bit inside the second record.
  size_t victim = raw.find("rotted");
  ASSERT_NE(victim, std::string::npos);
  raw[victim] = static_cast<char>(raw[victim] ^ 0x04);
  Dump(path, raw);

  FileJournal reopened(path);
  Result<std::vector<std::string>> records = reopened.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "DS|good|1");
  EXPECT_TRUE(reopened.last_recovery().truncated);
  EXPECT_NE(reopened.last_recovery().reason.find("checksum"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalCrcTest, MidFileBitFlipSkipsOnlyThatRecord) {
  std::string path = TempPath("midflip");
  {
    FileJournal journal(path);
    ASSERT_TRUE(journal.Append("DS|first|1").ok());
    ASSERT_TRUE(journal.Append("DS|rotted|2").ok());
    ASSERT_TRUE(journal.Append("DS|third|3").ok());
    ASSERT_TRUE(journal.Sync().ok());
  }
  std::string raw = Slurp(path);
  size_t victim = raw.find("rotted");
  ASSERT_NE(victim, std::string::npos);
  raw[victim] = static_cast<char>(raw[victim] ^ 0x04);
  Dump(path, raw);

  // Committed records beyond the rot must survive: only the damaged
  // record is skipped, and the read does not rewrite the file.
  FileJournal reopened(path);
  Result<std::vector<std::string>> records = reopened.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], "DS|first|1");
  EXPECT_EQ((*records)[1], "DS|third|3");
  const JournalTailRecovery& recovery = reopened.last_recovery();
  EXPECT_FALSE(recovery.truncated);
  EXPECT_EQ(recovery.records_skipped, 1u);
  EXPECT_NE(recovery.reason.find("skipped"), std::string::npos);
  EXPECT_EQ(std::filesystem::file_size(path), raw.size());
  std::remove(path.c_str());
}

TEST(JournalCrcTest, LegacyChecksumlessJournalStillLoads) {
  std::string path = TempPath("legacy");
  // A journal written by a build that predates per-record checksums.
  Dump(path, "DS|old-a|1\nDS|old-b|2\n");

  FileJournal journal(path);
  Result<std::vector<std::string>> records = journal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], "DS|old-a|1");
  EXPECT_FALSE(journal.last_recovery().truncated);

  // New appends are checksummed; mixed files read fine.
  ASSERT_TRUE(journal.Append("DS|new-c|3").ok());
  ASSERT_TRUE(journal.Sync().ok());
  Result<std::vector<std::string>> mixed = journal.ReadAll();
  ASSERT_TRUE(mixed.ok());
  ASSERT_EQ(mixed->size(), 3u);
  EXPECT_EQ((*mixed)[2], "DS|new-c|3");
  std::remove(path.c_str());
}

TEST(JournalCrcTest, RewriteProducesChecksummedRecords) {
  std::string path = TempPath("rewrite");
  FileJournal journal(path);
  ASSERT_TRUE(journal.Rewrite({"DS|a|1", "DS|b|2"}).ok());
  std::string raw = Slurp(path);
  EXPECT_EQ(raw[0], '~');
  Result<std::vector<std::string>> records = journal.ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  std::remove(path.c_str());
}

TEST(JournalCrcTest, CatalogSurvivesTornWriteOnReopen) {
  std::string path = TempPath("catalog");
  {
    VirtualDataCatalog catalog("crash.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog
                    .ImportVdl("TR conv( output out, input in ) {"
                               "  argument stdin = ${input:in};"
                               "  argument stdout = ${output:out};"
                               "  exec = \"/bin/conv\"; }"
                               "DS raw : Dataset size=\"4096\";")
                    .ok());
    Replica replica;
    replica.dataset = "raw";
    replica.site = "east";
    replica.size_bytes = 4096;
    ASSERT_TRUE(catalog.AddReplica(std::move(replica)).ok());
  }
  // Tear the final record, as an interrupted write would.
  std::string raw = Slurp(path);
  Dump(path, raw.substr(0, raw.size() - 9));

  VirtualDataCatalog reopened("crash.org",
                              std::make_unique<FileJournal>(path));
  ASSERT_TRUE(reopened.Open().ok());  // valid prefix replays cleanly
  EXPECT_TRUE(reopened.HasDataset("raw"));
  EXPECT_TRUE(reopened.HasTransformation("conv"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vdg
