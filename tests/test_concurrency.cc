// Concurrency stress for the catalog/index shared-mutex protocol:
// reader threads issue indexed discovery queries and point lookups
// while one writer mutates the catalog and one refresher runs delta
// refreshes on a federated index over it. Correctness is validated
// two ways: every mid-flight result must be internally well-formed,
// and after quiescing the final state must agree with single-threaded
// ground truth (naive scans and a full index rebuild). Run under
// ThreadSanitizer in CI, this is the proof the lock protocol holds.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "federation/index.h"

namespace vdg {
namespace {

constexpr int kWriterSteps = 400;
constexpr int kReaderThreads = 4;

// Writer workload: datasets carrying an indexed "shard" annotation,
// replicas flipping the materialized bit, occasional removals and
// annotation rewrites. Every mutation path the exclusive lock guards.
void RunWriter(VirtualDataCatalog* catalog, std::atomic<bool>* done) {
  for (int i = 0; i < kWriterSteps; ++i) {
    Dataset ds;
    ds.name = "ds" + std::to_string(i);
    ds.size_bytes = i;
    ds.annotations.Set("shard", AttributeValue(int64_t{i % 7}));
    ds.annotations.Set("step", AttributeValue(0.1 * i));
    ASSERT_TRUE(catalog->DefineDataset(ds).ok());
    if (i % 3 == 0) {
      Replica r;
      r.dataset = ds.name;
      r.site = i % 2 == 0 ? "east" : "west";
      r.size_bytes = i + 1;
      ASSERT_TRUE(catalog->AddReplica(r).ok());
    }
    if (i % 5 == 0) {
      ASSERT_TRUE(catalog
                      ->Annotate("dataset", ds.name, "shard",
                                 AttributeValue(int64_t{(i + 1) % 7}))
                      .ok());
    }
    if (i % 11 == 0 && i > 0) {
      // Remove an older dataset (cascades into its replicas).
      Status s = catalog->RemoveDataset("ds" + std::to_string(i / 2));
      (void)s;  // may already be gone
    }
  }
  done->store(true, std::memory_order_release);
}

// Reader workload: exercise every shared-lock path; assert only
// invariants that hold at any instant regardless of writer progress.
void RunReader(const VirtualDataCatalog* catalog, const FederatedIndex* index,
               const std::atomic<bool>* done, int seed) {
  int spin = 0;
  while (!done->load(std::memory_order_acquire) || spin < 10) {
    ++spin;
    DatasetQuery q;
    q.predicates.push_back(AttributePredicate{
        "shard", PredicateOp::kEq,
        AttributeValue(int64_t{(seed + spin) % 7})});
    for (std::string_view name : catalog->FindDatasets(q)) {
      Result<Dataset> ds = catalog->GetDataset(name);
      // The dataset may be removed between the find and the get; a
      // present dataset must still satisfy the predicate (both reads
      // are lock-consistent snapshots).
      if (ds.ok()) {
        EXPECT_TRUE(ds->annotations.GetInt("shard").has_value()) << name;
      }
    }
    QueryPlan plan = catalog->ExplainFindDatasets(q);
    EXPECT_EQ(plan.path, AccessPath::kAttributeIndex);

    DatasetQuery mat;
    mat.require_materialized = true;
    for (const IndexEntry& entry : index->FindDatasets(mat)) {
      EXPECT_TRUE(entry.materialized);
      EXPECT_EQ(entry.kind, "dataset");
    }
    (void)index->LookupName("dataset", "ds" + std::to_string(spin % 50));
    (void)index->IsStale();
    (void)index->refresh_stats();
    (void)catalog->Stats();
    (void)catalog->AllDatasetNames();
    (void)catalog->ChangesSince(0);
    (void)catalog->ExportVdl();
  }
}

void RunRefresher(FederatedIndex* index, const std::atomic<bool>* done) {
  int extra = 0;
  while (!done->load(std::memory_order_acquire) || extra < 3) {
    if (done->load(std::memory_order_acquire)) ++extra;
    if (index->IsStale()) {
      ASSERT_TRUE(index->Refresh().ok());
    }
    std::this_thread::yield();
  }
}

// Single-threaded ground truth for a query, from first principles.
std::vector<std::string> NaiveFind(const VirtualDataCatalog& catalog,
                                   const DatasetQuery& q) {
  std::vector<std::string> out;
  for (std::string_view name : catalog.AllDatasetNames()) {
    Result<Dataset> ds = catalog.GetDataset(name);
    if (!ds.ok()) continue;
    if (!MatchesAll(ds->annotations, q.predicates)) continue;
    if (q.require_materialized && !catalog.IsMaterialized(name)) continue;
    out.emplace_back(name);
  }
  return out;
}

TEST(ConcurrencyStress, ReadersWriterAndRefresherAgreeAfterQuiesce) {
  VirtualDataCatalog catalog("stress.org");
  FederatedIndex index("stress-index");
  ASSERT_TRUE(index.AddSource(&catalog).ok());
  ASSERT_TRUE(index.Refresh().ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.emplace_back(RunWriter, &catalog, &done);
  threads.emplace_back(RunRefresher, &index, &done);
  for (int i = 0; i < kReaderThreads; ++i) {
    threads.emplace_back(RunReader, &catalog, &index, &done, i);
  }
  for (std::thread& t : threads) t.join();

  // Quiesced: one final delta refresh, then every view must agree.
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_FALSE(index.IsStale());

  for (int shard = 0; shard < 7; ++shard) {
    DatasetQuery q;
    q.predicates.push_back(AttributePredicate{
        "shard", PredicateOp::kEq, AttributeValue(int64_t{shard})});
    std::vector<std::string> truth = NaiveFind(catalog, q);
    EXPECT_EQ(catalog.FindDatasets(q), truth) << "shard " << shard;

    std::vector<std::string> indexed;
    for (const IndexEntry& entry : index.FindDatasets(q)) {
      indexed.push_back(entry.name);
    }
    EXPECT_EQ(indexed, truth) << "shard " << shard;
  }

  // The delta-refreshed snapshot must match a from-scratch rebuild.
  size_t delta_size = index.size();
  uint64_t delta_version_sum = index.last_refresh_version_sum();
  ASSERT_TRUE(index.RebuildAll().ok());
  EXPECT_EQ(index.size(), delta_size);
  EXPECT_EQ(index.last_refresh_version_sum(), delta_version_sum);
}

// Snapshot-isolation oracle: a reader that pins a view must see ONE
// frozen version of the catalog no matter what commits, compactions,
// or snapshot publications happen after the pin. Re-running the same
// queries against the same view while a writer streams ApplyBatch
// commits and journal compactions must return byte-identical answers
// and a constant version() — any wobble means a reader is touching
// live writer state.
TEST(ConcurrencyStress, PinnedViewIsVersionConsistentUnderApplyBatch) {
  std::string path = ::testing::TempDir() + "/vdg_conc_snapshot.log";
  std::remove(path.c_str());
  VirtualDataCatalog catalog("snapshot.org",
                             std::make_unique<FileJournal>(path));
  ASSERT_TRUE(catalog.Open().ok());
  constexpr int kDatasets = 64;
  for (int i = 0; i < kDatasets; ++i) {
    Dataset ds;
    ds.name = "ds" + std::to_string(i);
    ds.annotations.Set("shard", AttributeValue(int64_t{i % 5}));
    ASSERT_TRUE(catalog.DefineDataset(ds).ok());
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < 60; ++round) {
      std::vector<CatalogMutation> batch;
      for (int k = 0; k < 16; ++k) {
        int target = (round * 16 + k) % kDatasets;
        batch.push_back(CatalogMutation::Annotate(
            "dataset", "ds" + std::to_string(target), "shard",
            AttributeValue(int64_t{(target + round) % 5})));
        if (k % 8 == 0) {
          Dataset ds;
          ds.name = "extra" + std::to_string(round) + "_" + std::to_string(k);
          ds.annotations.Set("shard", AttributeValue(int64_t{round % 5}));
          batch.push_back(CatalogMutation::DefineDataset(std::move(ds)));
        }
      }
      BatchResult applied = catalog.ApplyBatch(batch);
      ASSERT_TRUE(applied.first_error.ok());
      if (round % 10 == 0) {
        ASSERT_TRUE(catalog.CompactJournal().ok());
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&catalog, &done] {
      while (!done.load(std::memory_order_acquire)) {
        CatalogView view = catalog.View();
        uint64_t pinned = view.version();
        // First pass records the view's answers; later passes against
        // the SAME view must reproduce them exactly even though the
        // writer keeps publishing fresh snapshots underneath.
        std::vector<NameList> first;
        for (int shard = 0; shard < 5; ++shard) {
          DatasetQuery q;
          q.predicates.push_back(AttributePredicate{
              "shard", PredicateOp::kEq, AttributeValue(int64_t{shard})});
          first.push_back(view.FindDatasets(q));
        }
        NameList names = view.AllDatasetNames();
        for (int pass = 0; pass < 3; ++pass) {
          ASSERT_EQ(view.version(), pinned);
          for (int shard = 0; shard < 5; ++shard) {
            DatasetQuery q;
            q.predicates.push_back(AttributePredicate{
                "shard", PredicateOp::kEq, AttributeValue(int64_t{shard})});
            ASSERT_EQ(view.FindDatasets(q), first[static_cast<size_t>(shard)])
                << "pinned view changed answers at version " << pinned;
          }
          ASSERT_EQ(view.AllDatasetNames(), names);
          // Every dataset the view lists must be readable from the
          // view even if the writer has since removed or rewritten it.
          for (size_t i = 0; i < names.size(); i += 7) {
            ASSERT_TRUE(view.GetDataset(names[i]).ok()) << names[i];
          }
        }
        // A fresh view must never observe a version older than one
        // already handed out (publication order: snapshot, version).
        ASSERT_GE(catalog.View().version(), pinned);
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  // Quiesced: the live view and the lock-path reads agree.
  CatalogView final_view = catalog.View();
  EXPECT_EQ(final_view.version(), catalog.version());
  EXPECT_EQ(final_view.AllDatasetNames(), catalog.AllDatasetNames());
  std::remove(path.c_str());
}

// PR-9 lifetime/pinning property: a NameList handed out by any query
// pins the snapshot it was answered from, so its bytes stay stable
// across concurrent ApplyBatch mutations, snapshot republication, and
// journal compaction — even after the producing catalog has moved many
// versions ahead (DESIGN.md §15). Each reader freezes an owned copy of
// a list's contents at capture time and re-verifies the live views
// byte-for-byte while the writer and compactor churn.
TEST(ConcurrencyStress, NameListStaysByteStableAcrossMutationAndCompaction) {
  std::string path = ::testing::TempDir() + "/vdg_conc_namelist.log";
  std::remove(path.c_str());
  VirtualDataCatalog catalog("pin.org", std::make_unique<FileJournal>(path));
  ASSERT_TRUE(catalog.Open().ok());
  for (int i = 0; i < 64; ++i) {
    Dataset ds;
    ds.name = "pin" + std::to_string(i);
    ds.annotations.Set("shard", AttributeValue(int64_t{i % 4}));
    ASSERT_TRUE(catalog.DefineDataset(ds).ok());
  }

  std::atomic<bool> done{false};
  // Writer: batches of annotation rewrites plus dataset definitions
  // and removals — every path that republishes the snapshot.
  std::thread writer([&] {
    for (int i = 0; i < 150; ++i) {
      std::vector<CatalogMutation> ops;
      for (int k = 0; k < 8; ++k) {
        ops.push_back(CatalogMutation::Annotate(
            "dataset", "pin" + std::to_string((i * 8 + k) % 64), "tick",
            AttributeValue(int64_t{i})));
      }
      Dataset extra;
      extra.name = "extra" + std::to_string(i);
      extra.annotations.Set("shard", AttributeValue(int64_t{i % 4}));
      ops.push_back(CatalogMutation::DefineDataset(extra));
      ASSERT_TRUE(catalog.ApplyBatch(ops).first_error.ok());
      if (i % 10 == 9) {
        Status s = catalog.RemoveDataset("extra" + std::to_string(i - 5));
        (void)s;
      }
    }
    done.store(true, std::memory_order_release);
  });
  std::thread compactor([&] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(catalog.CompactJournal().ok());
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&catalog, &done, t] {
      DatasetQuery q;
      q.predicates.push_back(AttributePredicate{
          "shard", PredicateOp::kEq, AttributeValue(int64_t{t % 4})});
      while (!done.load(std::memory_order_acquire)) {
        NameList find = catalog.FindDatasets(q);
        NameList all = catalog.AllDatasetNames();
        // Owned copies freeze the expected bytes at capture time.
        const std::vector<std::string> find_then = find.ToStrings();
        const std::vector<std::string> all_then = all.ToStrings();
        ASSERT_TRUE(find.has_ids());
        ASSERT_EQ(find.ids().size(), find.size());
        // Let the writer/compactor republish underneath, then verify
        // both held lists re-read byte-identically.
        for (int spin = 0; spin < 50; ++spin) {
          std::this_thread::yield();
        }
        ASSERT_EQ(find, find_then);
        ASSERT_EQ(all, all_then);
        for (size_t i = 0; i < all.size(); ++i) {
          ASSERT_EQ(all[i], std::string_view(all_then[i]));
        }
      }
    });
  }
  writer.join();
  compactor.join();
  for (std::thread& r : readers) r.join();
  std::remove(path.c_str());
}

TEST(ConcurrencyStress, ConcurrentReadsDuringJournalCompaction) {
  std::string path = ::testing::TempDir() + "/vdg_conc_compact.log";
  std::remove(path.c_str());
  VirtualDataCatalog catalog("compact.org",
                             std::make_unique<FileJournal>(path));
  ASSERT_TRUE(catalog.Open().ok());
  for (int i = 0; i < 50; ++i) {
    Dataset ds;
    ds.name = "ds" + std::to_string(i);
    ds.annotations.Set("shard", AttributeValue(int64_t{i % 3}));
    ASSERT_TRUE(catalog.DefineDataset(ds).ok());
  }
  std::atomic<bool> done{false};
  std::thread compactor([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(catalog.CompactJournal().ok());
      ASSERT_TRUE(catalog.SyncJournal().ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&catalog, &done] {
      while (!done.load(std::memory_order_acquire)) {
        EXPECT_EQ(catalog.Stats().datasets, 50u);
        EXPECT_EQ(catalog.AllDatasetNames().size(), 50u);
      }
    });
  }
  compactor.join();
  for (std::thread& r : readers) r.join();

  VirtualDataCatalog reopened("compact.org",
                              std::make_unique<FileJournal>(path));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.Stats().datasets, 50u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vdg
