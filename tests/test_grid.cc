#include <gtest/gtest.h>

#include "grid/event_queue.h"
#include "grid/rls.h"
#include "grid/simulator.h"
#include "grid/storage.h"
#include "grid/topology.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

// ---------------------------- EventQueue -----------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunUntilEmpty(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(3); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(2.0), 2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, LateSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1;
  q.ScheduleAt(5.0, [&] {
    q.ScheduleAt(1.0, [&] { fired_at = q.now(); });  // in the past
  });
  q.RunUntilEmpty();
  EXPECT_EQ(fired_at, 5.0);
}

// ----------------------------- Topology ------------------------------

TEST(TopologyTest, SitesAndLinks) {
  GridTopology t = workload::SmallTestbed();
  EXPECT_EQ(t.site_count(), 2u);
  EXPECT_EQ(t.total_hosts(), 8u);
  EXPECT_TRUE(t.HasSite("east"));
  EXPECT_FALSE(t.HasSite("mars"));
  EXPECT_EQ(t.SiteNames(), (std::vector<std::string>{"east", "west"}));
}

TEST(TopologyTest, DuplicateSiteRejected) {
  GridTopology t;
  SiteConfig s;
  s.name = "x";
  s.hosts.push_back({"x-0", 1.0, 1});
  EXPECT_TRUE(t.AddSite(s).ok());
  EXPECT_TRUE(t.AddSite(s).IsAlreadyExists());
}

TEST(TopologyTest, LinkValidation) {
  GridTopology t = workload::SmallTestbed();
  LinkConfig bad;
  bad.from = "east";
  bad.to = "nowhere";
  bad.bandwidth_bytes_per_s = 1;
  EXPECT_TRUE(t.AddLink(bad).IsNotFound());
  LinkConfig zero;
  zero.from = "east";
  zero.to = "west";
  zero.bandwidth_bytes_per_s = 0;
  EXPECT_FALSE(t.AddLink(zero).ok());
}

TEST(TopologyTest, IntraSiteIsFastAndDefaultsApplyToUnlinked) {
  GridTopology t = workload::SmallTestbed();
  EXPECT_EQ(t.Bandwidth("east", "east"), GridTopology::kLocalBandwidth);
  // east<->west linked at 100 Mbps = 12.5e6 B/s.
  EXPECT_NEAR(t.Bandwidth("east", "west"), 12.5e6, 1.0);
  SiteConfig lone;
  lone.name = "lone";
  lone.hosts.push_back({"l-0", 1.0, 1});
  ASSERT_TRUE(t.AddSite(lone).ok());
  EXPECT_EQ(t.Bandwidth("east", "lone"), 10e6);  // default WAN
}

TEST(TopologyTest, TransferSecondsIncludesLatency) {
  GridTopology t = workload::SmallTestbed();
  double secs = t.TransferSeconds("east", "west", 12'500'000);
  EXPECT_NEAR(secs, 0.02 + 1.0, 1e-9);
  EXPECT_EQ(t.TransferSeconds("east", "west", 0), 0.02);
}

// ------------------------------ Storage ------------------------------

TEST(StorageTest, CapacityEnforced) {
  StorageElement se("site", "se0", 100);
  EXPECT_TRUE(se.Store("a", 60, 0).ok());
  EXPECT_TRUE(se.Store("b", 50, 1).code() ==
              StatusCode::kResourceExhausted);
  EXPECT_TRUE(se.Store("b", 40, 1).ok());
  EXPECT_EQ(se.used_bytes(), 100);
  EXPECT_EQ(se.free_bytes(), 0);
}

TEST(StorageTest, UnboundedWhenCapacityZero) {
  StorageElement se("site", "se0", 0);
  EXPECT_TRUE(se.Store("big", int64_t{1} << 40, 0).ok());
  EXPECT_GT(se.free_bytes(), 0);
}

TEST(StorageTest, DuplicateAndRemove) {
  StorageElement se("site", "se0", 0);
  ASSERT_TRUE(se.Store("a", 10, 0).ok());
  EXPECT_TRUE(se.Store("a", 10, 0).IsAlreadyExists());
  EXPECT_TRUE(se.Remove("a").ok());
  EXPECT_TRUE(se.Remove("a").IsNotFound());
  EXPECT_EQ(se.used_bytes(), 0);
}

TEST(StorageTest, PinnedFilesResistRemoval) {
  StorageElement se("site", "se0", 0);
  ASSERT_TRUE(se.Store("a", 10, 0).ok());
  ASSERT_TRUE(se.SetPinned("a", true).ok());
  EXPECT_EQ(se.Remove("a").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(se.SetPinned("a", false).ok());
  EXPECT_TRUE(se.Remove("a").ok());
}

TEST(StorageTest, EvictionCandidatesAreLruOrdered) {
  StorageElement se("site", "se0", 0);
  ASSERT_TRUE(se.Store("a", 1, 0).ok());
  ASSERT_TRUE(se.Store("b", 1, 1).ok());
  ASSERT_TRUE(se.Store("c", 1, 2).ok());
  ASSERT_TRUE(se.Touch("a", 10).ok());  // a becomes most recent
  ASSERT_TRUE(se.SetPinned("c", true).ok());
  std::vector<StoredFile> victims = se.EvictionCandidates();
  ASSERT_EQ(victims.size(), 2u);  // c pinned
  EXPECT_EQ(victims[0].logical_name, "b");
  EXPECT_EQ(victims[1].logical_name, "a");
}

TEST(StorageTest, TouchTracksAccessStats) {
  StorageElement se("site", "se0", 0);
  ASSERT_TRUE(se.Store("a", 1, 0).ok());
  ASSERT_TRUE(se.Touch("a", 5).ok());
  ASSERT_TRUE(se.Touch("a", 9).ok());
  Result<StoredFile> f = se.GetFile("a");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->access_count, 2u);
  EXPECT_EQ(f->last_access, 9);
  EXPECT_TRUE(se.Touch("ghost", 1).IsNotFound());
}

// -------------------------------- RLS --------------------------------

TEST(RlsTest, RegisterLookupUnregister) {
  ReplicaLocationService rls;
  ASSERT_TRUE(rls.Register("f", {"east", "se0", 100}).ok());
  EXPECT_TRUE(rls.Register("f", {"east", "se0", 100}).IsAlreadyExists());
  ASSERT_TRUE(rls.Register("f", {"west", "se0", 100}).ok());
  EXPECT_EQ(rls.Lookup("f").size(), 2u);
  EXPECT_TRUE(rls.ExistsAt("f", "east"));
  EXPECT_FALSE(rls.ExistsAt("f", "mars"));
  ASSERT_TRUE(rls.Unregister("f", "east", "se0").ok());
  EXPECT_FALSE(rls.ExistsAt("f", "east"));
  EXPECT_TRUE(rls.Unregister("f", "east", "se0").IsNotFound());
  ASSERT_TRUE(rls.Unregister("f", "west", "se0").ok());
  EXPECT_FALSE(rls.Exists("f"));
}

TEST(RlsTest, BestSourcePicksCheapestTransfer) {
  GridTopology t = workload::GriphynTestbed();
  ReplicaLocationService rls;
  // uchicago<->fermilab is the fattest link (622 Mbps).
  ASSERT_TRUE(rls.Register("f", {"caltech", "se0", 1 << 30}).ok());
  ASSERT_TRUE(rls.Register("f", {"fermilab", "se0", 1 << 30}).ok());
  Result<PhysicalLocation> best = rls.BestSource("f", "uchicago", t);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->site, "fermilab");
  // Local replica always wins.
  ASSERT_TRUE(rls.Register("f", {"uchicago", "se0", 1 << 30}).ok());
  EXPECT_EQ(rls.BestSource("f", "uchicago", t)->site, "uchicago");
  EXPECT_TRUE(rls.BestSource("ghost", "uchicago", t).status().IsNotFound());
}

// ---------------------------- GridSimulator --------------------------

TEST(SimulatorTest, SingleJobRunsForItsLength) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<JobResult> results;
  ASSERT_TRUE(grid.SubmitJob("east", 30.0,
                             [&](const JobResult& r) { results.push_back(r); })
                  .ok());
  grid.RunUntilIdle();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].succeeded);
  EXPECT_EQ(results[0].start_time, 0.0);
  EXPECT_EQ(results[0].end_time, 30.0);
  EXPECT_EQ(results[0].site, "east");
}

TEST(SimulatorTest, JobsQueueWhenSlotsBusy) {
  // SmallTestbed east has 4 single-slot hosts; 8 jobs of 10s each
  // should finish in two waves at t=10 and t=20.
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<double> ends;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(grid.SubmitJob("east", 10.0, [&](const JobResult& r) {
                      ends.push_back(r.end_time);
                    })
                    .ok());
  }
  grid.RunUntilIdle();
  ASSERT_EQ(ends.size(), 8u);
  int wave1 = 0, wave2 = 0;
  for (double e : ends) {
    if (e == 10.0) ++wave1;
    if (e == 20.0) ++wave2;
  }
  EXPECT_EQ(wave1, 4);
  EXPECT_EQ(wave2, 4);
  Result<SiteStats> stats = grid.StatsFor("east");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->jobs_completed, 8u);
  EXPECT_GE(stats->peak_queue_depth, 4u);
}

TEST(SimulatorTest, FasterHostsFinishSooner) {
  GridTopology t;
  SiteConfig site;
  site.name = "mix";
  site.hosts.push_back({"slow", 1.0, 1});
  site.hosts.push_back({"fast", 2.0, 1});
  ASSERT_TRUE(t.AddSite(site).ok());
  GridSimulator grid(std::move(t), 1);
  std::map<std::string, double> end_by_host;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(grid.SubmitJob("mix", 10.0, [&](const JobResult& r) {
                      end_by_host[r.host] = r.end_time;
                    })
                    .ok());
  }
  grid.RunUntilIdle();
  ASSERT_EQ(end_by_host.size(), 2u);
  EXPECT_EQ(end_by_host["fast"], 5.0);   // dispatched first, 2x speed
  EXPECT_EQ(end_by_host["slow"], 10.0);
}

TEST(SimulatorTest, UnknownSiteRejected) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  EXPECT_TRUE(grid.SubmitJob("mars", 1.0, nullptr).status().IsNotFound());
  EXPECT_TRUE(
      grid.SubmitTransfer("east", "mars", 1, nullptr).status().IsNotFound());
  EXPECT_FALSE(grid.SubmitJob("east", -1.0, nullptr).ok());
}

TEST(SimulatorTest, TransferTimeMatchesTopology) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<TransferResult> results;
  ASSERT_TRUE(grid.SubmitTransfer("east", "west", 12'500'000,
                                  [&](const TransferResult& r) {
                                    results.push_back(r);
                                  })
                  .ok());
  grid.RunUntilIdle();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].end_time, 1.02, 1e-9);
  Result<SiteStats> stats = grid.StatsFor("west");
  EXPECT_EQ(stats->transfers_in, 1u);
  EXPECT_EQ(stats->bytes_in, 12'500'000);
}

TEST(SimulatorTest, ConcurrentTransfersShareBandwidth) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<double> ends;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(grid.SubmitTransfer("east", "west", 12'500'000,
                                    [&](const TransferResult& r) {
                                      ends.push_back(r.end_time);
                                    })
                    .ok());
  }
  grid.RunUntilIdle();
  ASSERT_EQ(ends.size(), 2u);
  // First snapshot sees 1 active (full bw), second sees 2 (half bw).
  EXPECT_NEAR(ends[0], 1.02, 1e-9);
  EXPECT_NEAR(ends[1], 2.02, 1e-9);
}

TEST(SimulatorTest, FailureInjectionIsDeterministic) {
  auto run = [](uint64_t seed) {
    GridSimulator grid(workload::SmallTestbed(), seed);
    grid.set_job_failure_rate(0.5);
    int failures = 0;
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(grid.SubmitJob("east", 1.0, [&](const JobResult& r) {
                        if (!r.succeeded) ++failures;
                      })
                      .ok());
    }
    grid.RunUntilIdle();
    return failures;
  };
  int a = run(7);
  EXPECT_EQ(a, run(7));  // same seed, same failures
  EXPECT_GT(a, 20);
  EXPECT_LT(a, 80);
}

TEST(SimulatorTest, RuntimeJitterVariesRuntimes) {
  GridSimulator grid(workload::SmallTestbed(), 3);
  grid.set_runtime_jitter(0.3);
  std::vector<double> durations;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(grid.SubmitJob("east", 10.0, [&](const JobResult& r) {
                      durations.push_back(r.end_time - r.start_time);
                    })
                    .ok());
  }
  grid.RunUntilIdle();
  ASSERT_EQ(durations.size(), 4u);
  bool any_different = false;
  for (double d : durations) {
    if (d != durations[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(SimulatorTest, UtilizationAccounting) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(grid.SubmitJob("east", 10.0, nullptr).ok());
  }
  grid.RunUntilIdle();
  // 4 hosts busy 10s each over a 10s run: 100% at east, 0% at west.
  EXPECT_NEAR(*grid.Utilization("east"), 1.0, 1e-9);
  EXPECT_NEAR(*grid.Utilization("west"), 0.0, 1e-9);
}

TEST(SimulatorTest, PlaceEvictAndRlsIntegration) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.PlaceFile("east", "f1", 100).ok());
  EXPECT_TRUE(grid.rls().ExistsAt("f1", "east"));
  EXPECT_TRUE(grid.PlaceFile("east", "f1", 100).IsAlreadyExists());
  ASSERT_TRUE(grid.EvictFile("east", "f1").ok());
  EXPECT_FALSE(grid.rls().Exists("f1"));
  EXPECT_TRUE(grid.EvictFile("east", "f1").IsNotFound());
}

TEST(SimulatorTest, GriphynTestbedShape) {
  GridTopology t = workload::GriphynTestbed();
  EXPECT_EQ(t.site_count(), 4u);
  EXPECT_EQ(t.total_hosts(), 800u);  // the paper's "almost 800 hosts"
}

TEST(SimulatorFaultTest, CrashKillsRunningAndQueuedJobs) {
  // east has 4 single-slot hosts: 6 jobs -> 4 running + 2 queued.
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<JobResult> results;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(grid.SubmitJob("east", 50.0, [&](const JobResult& r) {
                      results.push_back(r);
                    })
                    .ok());
  }
  ASSERT_TRUE(grid.CrashSite("east").ok());
  // All six callbacks fire immediately with succeeded=false.
  ASSERT_EQ(results.size(), 6u);
  for (const JobResult& r : results) {
    EXPECT_FALSE(r.succeeded);
    EXPECT_EQ(r.end_time, 0.0);  // killed at crash time
  }
  SiteStats stats = *grid.StatsFor("east");
  EXPECT_EQ(stats.jobs_killed, 4u);
  EXPECT_EQ(stats.jobs_failed, 6u);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_TRUE(grid.IsSiteOffline("east"));
  EXPECT_TRUE(grid.IsSiteCrashed("east"));
  // The already-scheduled completion events are dead: nothing fires.
  grid.RunUntilIdle();
  EXPECT_EQ(results.size(), 6u);

  // Recovery restores service for new submissions.
  ASSERT_TRUE(grid.SetSiteOffline("east", false).ok());
  EXPECT_FALSE(grid.IsSiteCrashed("east"));
  ASSERT_TRUE(grid.SubmitJob("east", 1.0, [&](const JobResult& r) {
                    results.push_back(r);
                  })
                  .ok());
  grid.RunUntilIdle();
  ASSERT_EQ(results.size(), 7u);
  EXPECT_TRUE(results.back().succeeded);
}

TEST(SimulatorFaultTest, CrashLosesUnpinnedReplicasOnly) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.PlaceFile("east", "scratch", 100).ok());
  ASSERT_TRUE(grid.PlaceFile("east", "precious", 100, true).ok());
  ASSERT_TRUE(grid.PlaceFile("west", "elsewhere", 100).ok());
  ASSERT_TRUE(grid.CrashSite("east").ok());
  EXPECT_FALSE(grid.rls().Exists("scratch"));      // wiped
  EXPECT_TRUE(grid.rls().ExistsAt("precious", "east"));  // pinned survives
  EXPECT_TRUE(grid.rls().ExistsAt("elsewhere", "west"));
  EXPECT_EQ(grid.StatsFor("east")->files_lost, 1u);
}

TEST(SimulatorFaultTest, CrashAbortsInFlightTransfers) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  std::vector<TransferResult> results;
  ASSERT_TRUE(grid.SubmitTransfer("east", "west", 1 << 20,
                                  [&](const TransferResult& r) {
                                    results.push_back(r);
                                  })
                  .ok());
  ASSERT_TRUE(grid.CrashSite("east").ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].succeeded);
  EXPECT_EQ(grid.StatsFor("west")->transfers_failed, 1u);
  grid.RunUntilIdle();
  EXPECT_EQ(results.size(), 1u);  // completion event is a no-op
}

TEST(SimulatorFaultTest, MaintenanceOfflineStillServesTransfers) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.SetSiteOffline("east", true).ok());
  // Maintenance stops compute, not storage.
  EXPECT_TRUE(grid.SubmitJob("east", 1.0, nullptr).status().IsUnavailable());
  bool moved = false;
  ASSERT_TRUE(grid.SubmitTransfer("east", "west", 1024,
                                  [&](const TransferResult& r) {
                                    moved = r.succeeded;
                                  })
                  .ok());
  grid.RunUntilIdle();
  EXPECT_TRUE(moved);
  // A crash takes storage down with it.
  ASSERT_TRUE(grid.CrashSite("east").ok());
  EXPECT_TRUE(grid.SubmitTransfer("east", "west", 1024, nullptr)
                  .status()
                  .IsUnavailable());
  EXPECT_TRUE(grid.SubmitTransfer("west", "east", 1024, nullptr)
                  .status()
                  .IsUnavailable());
}

TEST(SimulatorFaultTest, TransferFailureRateIsDeterministic) {
  auto run = [](uint64_t seed) {
    GridSimulator grid(workload::SmallTestbed(), seed);
    grid.set_transfer_failure_rate(0.5);
    int failures = 0;
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(grid.SubmitTransfer("east", "west", 1024,
                                      [&](const TransferResult& r) {
                                        if (!r.succeeded) ++failures;
                                      })
                      .ok());
    }
    grid.RunUntilIdle();
    return failures;
  };
  int a = run(11);
  EXPECT_EQ(a, run(11));
  EXPECT_GT(a, 20);
  EXPECT_LT(a, 80);
  // A failed transfer still occupies the link but moves no usable
  // bytes: failures are counted at the destination.
  GridSimulator grid(workload::SmallTestbed(), 11);
  grid.set_transfer_failure_rate(1.0);
  ASSERT_TRUE(grid.SubmitTransfer("east", "west", 1024, nullptr).ok());
  grid.RunUntilIdle();
  EXPECT_EQ(grid.StatsFor("west")->transfers_in, 0u);
  EXPECT_EQ(grid.StatsFor("west")->transfers_failed, 1u);
}

TEST(SimulatorFaultTest, ScheduledOutageWindowComesAndGoes) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.ScheduleOutage("east", 10.0, 20.0).ok());
  std::vector<bool> observed;
  grid.events().ScheduleAfter(5.0, [&]() {
    observed.push_back(grid.IsSiteOffline("east"));
  });
  grid.events().ScheduleAfter(15.0, [&]() {
    observed.push_back(grid.IsSiteOffline("east"));
  });
  grid.events().ScheduleAfter(35.0, [&]() {
    observed.push_back(grid.IsSiteOffline("east"));
  });
  grid.RunUntilIdle();
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_FALSE(observed[0]);  // before the window
  EXPECT_TRUE(observed[1]);   // inside it
  EXPECT_FALSE(observed[2]);  // service restored automatically
}

TEST(SimulatorFaultTest, ScheduledCrashOutageLosesData) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.PlaceFile("east", "victim", 100).ok());
  ASSERT_TRUE(
      grid.ScheduleOutage("east", 10.0, 20.0, /*crash=*/true).ok());
  grid.RunUntilIdle();
  EXPECT_FALSE(grid.rls().Exists("victim"));
  EXPECT_EQ(grid.StatsFor("east")->crashes, 1u);
  EXPECT_FALSE(grid.IsSiteOffline("east"));  // window ended
}

TEST(SimulatorFaultTest, OverlappingOutageWindowsRestoreAtTheLatestEnd) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.ScheduleOutage("east", 10.0, 20.0).ok());  // [10, 30)
  ASSERT_TRUE(grid.ScheduleOutage("east", 20.0, 30.0).ok());  // [20, 50)
  std::vector<bool> observed;
  for (double t : {15.0, 35.0, 55.0}) {
    grid.events().ScheduleAfter(t, [&]() {
      observed.push_back(grid.IsSiteOffline("east"));
    });
  }
  grid.RunUntilIdle();
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_TRUE(observed[0]);   // inside the first window
  EXPECT_TRUE(observed[1]);   // first end must not cut the second short
  EXPECT_FALSE(observed[2]);  // restored when the later window ends
}

TEST(SimulatorFaultTest, OutageEndDoesNotRevertAManualOffline) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.ScheduleOutage("east", 10.0, 20.0).ok());  // [10, 30)
  // Mid-window, the operator takes the site down for another reason;
  // the window's scheduled end must not bring it back.
  grid.events().ScheduleAfter(20.0, [&]() {
    EXPECT_TRUE(grid.SetSiteOffline("east", true).ok());
  });
  grid.RunUntilIdle();
  EXPECT_TRUE(grid.IsSiteOffline("east"));
}

TEST(SimulatorFaultTest, OutageEndDoesNotClearALaterCrash) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  ASSERT_TRUE(grid.ScheduleOutage("east", 10.0, 20.0).ok());  // maintenance
  grid.events().ScheduleAfter(20.0, [&]() {
    EXPECT_TRUE(grid.CrashSite("east").ok());
  });
  grid.RunUntilIdle();
  EXPECT_TRUE(grid.IsSiteCrashed("east"));
  EXPECT_TRUE(grid.IsSiteOffline("east"));
}

TEST(SimulatorFaultTest, UnknownSiteFaultOperationsRejected) {
  GridSimulator grid(workload::SmallTestbed(), 1);
  EXPECT_TRUE(grid.CrashSite("nowhere").IsNotFound());
  EXPECT_TRUE(grid.ScheduleOutage("nowhere", 1, 1).IsNotFound());
  EXPECT_TRUE(grid.ScheduleOutage("east", -1, 1).IsInvalidArgument());
}

}  // namespace
}  // namespace vdg
