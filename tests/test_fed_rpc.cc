// Service-boundary tests: the CatalogClient interface, the simulated
// RPC transport (latency / loss / outage coupling), request batching,
// and the version-invalidated remote object cache. The through-line:
// everything that works in-process works identically over RPC at zero
// fault rates, and the batching/cache layers only change how many
// round trips it costs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "catalog/client.h"
#include "executor/executor.h"
#include "federation/fed_provenance.h"
#include "federation/index.h"
#include "federation/registry.h"
#include "federation/remote_cache.h"
#include "federation/rpc_client.h"
#include "planner/planner.h"
#include "workload/canonical.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr const char* kStepTr = R"(
TR step( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/step";
}
)";

/// A catalog holding a linear derivation chain d0 -> d1 -> ... -> dN
/// (d0 raw), the Figure 3 shape.
std::unique_ptr<VirtualDataCatalog> ChainCatalog(int links) {
  auto catalog = std::make_unique<VirtualDataCatalog>("chain.org");
  EXPECT_TRUE(catalog->Open().ok());
  EXPECT_TRUE(catalog->ImportVdl(kStepTr).ok());
  EXPECT_TRUE(catalog->ImportVdl("DS d0 : Dataset size=\"1024\";").ok());
  for (int i = 0; i < links; ++i) {
    std::string vdl = "DV l" + std::to_string(i + 1) +
                      "->step( out=@{output:\"d" + std::to_string(i + 1) +
                      "\"}, in=@{input:\"d" + std::to_string(i) + "\"} );";
    EXPECT_TRUE(catalog->ImportVdl(vdl).ok());
  }
  return catalog;
}

class FedRpcTest : public ::testing::Test {
 protected:
  FedRpcTest() : grid_(workload::SmallTestbed(), 7) {
    catalog_ = ChainCatalog(8);
  }

  std::shared_ptr<CatalogClient> InProcess() {
    return std::make_shared<InProcessCatalogClient>(catalog_.get());
  }

  std::shared_ptr<SimulatedRpcCatalogClient> Rpc(RpcConfig config = {}) {
    return std::make_shared<SimulatedRpcCatalogClient>(InProcess(), &grid_,
                                                       config);
  }

  std::unique_ptr<VirtualDataCatalog> catalog_;
  GridSimulator grid_;
};

// ------------------------- In-process adapter ------------------------

TEST_F(FedRpcTest, InProcessClientMatchesDirectCatalogAccess) {
  InProcessCatalogClient client(catalog_.get());
  EXPECT_EQ(client.authority(), "chain.org");
  EXPECT_FALSE(client.read_only());
  EXPECT_EQ(client.local_catalog(), catalog_.get());

  EXPECT_EQ(*client.Version(), catalog_->version());
  EXPECT_EQ(client.GetDataset("d3")->name, "d3");
  EXPECT_EQ(client.GetTransformation("step")->name(), "step");
  EXPECT_EQ(client.GetDerivation("l2")->name(), "l2");
  EXPECT_TRUE(*client.HasDataset("d0"));
  EXPECT_FALSE(*client.HasDataset("ghost"));
  EXPECT_EQ(*client.ProducerOf("d4"), "l4");
  EXPECT_TRUE(client.ProducerOf("d0").status().IsNotFound());
  EXPECT_EQ(client.AllNames("dataset")->size(),
            catalog_->AllDatasetNames().size());
  EXPECT_TRUE(client.AllNames("widget").status().IsInvalidArgument());
}

TEST_F(FedRpcTest, BatchGetIsPositionallyAlignedWithPerEntryStatus) {
  InProcessCatalogClient client(catalog_.get());
  Result<std::vector<ObjectRecord>> records = client.BatchGet(
      {{"dataset", "d1"}, {"dataset", "ghost"}, {"derivation", "l3"}});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_TRUE((*records)[0].status.ok());
  ASSERT_TRUE((*records)[0].dataset.has_value());
  EXPECT_EQ((*records)[0].dataset->name, "d1");
  EXPECT_TRUE((*records)[1].status.IsNotFound());
  ASSERT_TRUE((*records)[2].derivation.has_value());
  EXPECT_EQ((*records)[2].derivation->name(), "l3");
}

TEST_F(FedRpcTest, ProvenanceStepCompoundMatchesPointCalls) {
  InProcessCatalogClient client(catalog_.get());
  Result<ProvenanceStep> derived = client.GetProvenanceStep("d5");
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(derived->exists);
  EXPECT_EQ(derived->producer, "l5");
  ASSERT_TRUE(derived->derivation.has_value());
  EXPECT_EQ(derived->derivation->name(), "l5");

  Result<ProvenanceStep> raw = client.GetProvenanceStep("d0");
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw->exists);
  EXPECT_TRUE(raw->producer.empty());
  EXPECT_FALSE(raw->derivation.has_value());

  Result<ProvenanceStep> ghost = client.GetProvenanceStep("ghost");
  ASSERT_TRUE(ghost.ok());
  EXPECT_FALSE(ghost->exists);
}

TEST_F(FedRpcTest, ReadOnlyHandleRejectsEveryMutation) {
  const VirtualDataCatalog* frozen = catalog_.get();
  InProcessCatalogClient ro(frozen);
  EXPECT_TRUE(ro.read_only());
  EXPECT_EQ(ro.local_catalog(), nullptr);

  Dataset ds;
  ds.name = "new";
  EXPECT_TRUE(ro.DefineDataset(ds).IsPermissionDenied());
  EXPECT_TRUE(ro.Annotate("dataset", "d0", "k", 1).IsPermissionDenied());
  Replica r;
  r.dataset = "d0";
  r.site = "east";
  EXPECT_TRUE(ro.AddReplica(r).status().IsPermissionDenied());
  EXPECT_TRUE(ro.SetDatasetSize("d0", 1).IsPermissionDenied());
  EXPECT_TRUE(ro.InvalidateReplica("r1").IsPermissionDenied());
  // Reads still work, and nothing above reached the catalog.
  EXPECT_TRUE(*ro.HasDataset("d0"));
  EXPECT_FALSE(catalog_->HasDataset("new"));
  EXPECT_FALSE(
      catalog_->GetDataset("d0")->annotations.Has("k"));
}

// -------------------------- RPC transport ----------------------------

TEST_F(FedRpcTest, ZeroFaultRpcGivesIdenticalResultsAndAdvancesTime) {
  auto rpc = Rpc();
  InProcessCatalogClient direct(catalog_.get());
  SimTime before = grid_.now();

  EXPECT_EQ(*rpc->Version(), *direct.Version());
  EXPECT_EQ(rpc->GetDataset("d2")->name, "d2");
  EXPECT_EQ(*rpc->ProducerOf("d7"), *direct.ProducerOf("d7"));
  EXPECT_EQ(rpc->FindDatasets({})->size(), direct.FindDatasets({})->size());
  // Four calls, four round trips, each paying the configured latency.
  EXPECT_EQ(rpc->stats().round_trips, 4u);
  EXPECT_EQ(rpc->stats().failures, 0u);
  EXPECT_DOUBLE_EQ(grid_.now() - before, 4 * rpc->config().latency_s);
}

TEST_F(FedRpcTest, LossyTransportRetriesUntilSuccess) {
  RpcConfig config;
  config.loss_rate = 0.4;
  config.max_attempts = 16;
  auto rpc = Rpc(config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rpc->HasDataset("d0").ok());
  }
  EXPECT_EQ(rpc->stats().failures, 0u);
  EXPECT_GT(rpc->stats().lost_calls, 0u);
  EXPECT_EQ(rpc->stats().retries, rpc->stats().lost_calls);
  EXPECT_EQ(rpc->stats().round_trips, 50u);
}

TEST_F(FedRpcTest, OutageRejectsThenBackoffOutlivesTheOutage) {
  RpcConfig config;
  config.site = "east";
  config.max_attempts = 6;
  auto rpc = Rpc(config);
  ASSERT_TRUE(rpc->HasDataset("d0").ok());  // site up: one clean trip

  // A 3-simulated-second crash window starting now: the first attempt
  // finds the site down, and the retry backoff (run through the event
  // queue) carries the clock past the scheduled restore.
  ASSERT_TRUE(grid_.ScheduleOutage("east", 0.0, 3.0, true).ok());
  Result<bool> has = rpc->HasDataset("d4");
  ASSERT_TRUE(has.ok()) << has.status();
  EXPECT_TRUE(*has);
  EXPECT_GT(rpc->stats().outage_rejections, 0u);
  EXPECT_GT(rpc->stats().retries, 0u);
  EXPECT_EQ(rpc->stats().failures, 0u);
  EXPECT_FALSE(grid_.IsSiteCrashed("east"));
}

TEST_F(FedRpcTest, OutageLongerThanRetryBudgetSurfacesUnavailable) {
  RpcConfig config;
  config.site = "east";
  config.max_attempts = 2;
  config.backoff_base_s = 0.1;
  auto rpc = Rpc(config);
  // Crash with no scheduled restore: every attempt is rejected.
  ASSERT_TRUE(grid_.CrashSite("east").ok());
  Status lost = rpc->HasDataset("d0").status();
  EXPECT_TRUE(lost.IsUnavailable());
  EXPECT_EQ(rpc->stats().failures, 1u);
  EXPECT_EQ(rpc->stats().outage_rejections, 2u);
}

TEST_F(FedRpcTest, LostMutationFailsFastAndRetryUnsafe) {
  RpcConfig config;
  config.loss_rate = 1.0;  // every attempt is lost in transit
  config.max_attempts = 8;
  auto rpc = Rpc(config);

  // A lost mutation is ambiguous (the server may have applied it and
  // only the response vanished), so it must NOT be blindly re-sent:
  // one attempt, then a retry-unsafe Unavailable.
  Status st = rpc->SetDatasetSize("d1", 4096);
  EXPECT_TRUE(st.IsUnavailable()) << st;
  EXPECT_FALSE(st.retry_safe());
  EXPECT_EQ(rpc->stats().lost_calls, 1u);
  EXPECT_EQ(rpc->stats().retries, 0u);
  EXPECT_EQ(rpc->stats().mutation_fail_fast, 1u);

  // Reads under the same loss keep auto-retrying (and here exhaust the
  // budget with a retry-SAFE Unavailable).
  Status read = rpc->HasDataset("d1").status();
  EXPECT_TRUE(read.IsUnavailable());
  EXPECT_TRUE(read.retry_safe());
  EXPECT_EQ(rpc->stats().retries, 7u);
}

TEST_F(FedRpcTest, MutationRetriesThroughOutagesButNotLoss) {
  RpcConfig config;
  config.site = "east";
  config.max_attempts = 6;
  auto rpc = Rpc(config);

  // An outage rejection happens before the server accepts the request,
  // so even a mutation is safe to re-send: the backoff outlives the
  // 3-second crash window and the write lands exactly once.
  ASSERT_TRUE(grid_.ScheduleOutage("east", 0.0, 3.0, true).ok());
  Status st = rpc->SetDatasetSize("d1", 2048);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(catalog_->GetDataset("d1")->size_bytes, 2048);
  EXPECT_GT(rpc->stats().outage_rejections, 0u);
  EXPECT_GT(rpc->stats().retries, 0u);
  EXPECT_EQ(rpc->stats().mutation_fail_fast, 0u);
}

TEST_F(FedRpcTest, TokenedBatchRetriesLikeARead) {
  RpcConfig config;
  config.loss_rate = 0.5;
  config.max_attempts = 32;
  config.seed = 11;
  auto rpc = Rpc(config);

  Replica rep;
  rep.dataset = "d1";
  rep.site = "east";
  rep.size_bytes = 1024;
  std::vector<CatalogMutation> batch;
  batch.push_back(CatalogMutation::AddReplica(rep));

  // Untokened: ambiguous on first loss. With loss_rate 0.5 and this
  // seed the first draws eventually lose; keep issuing until one is
  // actually lost to observe the fail-fast.
  Status lost = Status::OK();
  for (int i = 0; i < 64 && lost.ok(); ++i) {
    lost = rpc->ApplyBatch(batch).status();
  }
  ASSERT_FALSE(lost.ok());
  EXPECT_FALSE(lost.retry_safe());

  // Tokened: the server-side dedup window makes the batch idempotent,
  // so the transport may retry it through losses like any read.
  uint64_t fail_fast_before = rpc->stats().mutation_fail_fast;
  BatchOptions opts;
  opts.idempotency_token = "sim-tok-1";
  Result<BatchResult> tokened = rpc->ApplyBatch(batch, opts);
  ASSERT_TRUE(tokened.ok()) << tokened.status();
  EXPECT_EQ(rpc->stats().mutation_fail_fast, fail_fast_before);
}

TEST_F(FedRpcTest, NaiveModeDecomposesCompoundCalls) {
  RpcConfig batched_config;
  auto batched = Rpc(batched_config);
  RpcConfig naive_config;
  naive_config.enable_batching = false;
  auto naive = Rpc(naive_config);

  std::vector<ObjectKey> keys;
  for (int i = 0; i <= 8; ++i) {
    keys.push_back({"dataset", "d" + std::to_string(i)});
  }
  ASSERT_TRUE(batched->BatchGet(keys).ok());
  ASSERT_TRUE(naive->BatchGet(keys).ok());
  EXPECT_EQ(batched->stats().round_trips, 1u);
  EXPECT_EQ(batched->stats().batched_lookups, keys.size());
  EXPECT_EQ(naive->stats().round_trips, keys.size());

  batched->reset_stats();
  naive->reset_stats();
  // One derived hop: 1 compound trip vs 4 point trips.
  ASSERT_TRUE(batched->GetProvenanceStep("d5").ok());
  ASSERT_TRUE(naive->GetProvenanceStep("d5").ok());
  EXPECT_EQ(batched->stats().round_trips, 1u);
  EXPECT_EQ(naive->stats().round_trips, 4u);
  // Both modes agree on the answer.
  EXPECT_EQ(batched->GetProvenanceStep("d5")->producer,
            naive->GetProvenanceStep("d5")->producer);
}

TEST_F(FedRpcTest, LineageOverRpcMatchesInProcessAndCountsTrips) {
  CatalogRegistry registry;
  auto rpc = Rpc();
  ASSERT_TRUE(registry.RegisterClient(rpc).ok());
  FederatedProvenance prov(registry);
  Result<LineageNode> over_rpc =
      prov.Lineage(nullptr, "vdp://chain.org/d8");
  ASSERT_TRUE(over_rpc.ok()) << over_rpc.status();
  EXPECT_EQ(LineageDepth(*over_rpc), 8);
  // One compound trip per chain link (9 datasets).
  EXPECT_EQ(rpc->stats().round_trips, 9u);

  CatalogRegistry local;
  ASSERT_TRUE(local.Register(catalog_.get()).ok());
  FederatedProvenance local_prov(local);
  Result<LineageNode> in_process =
      local_prov.Lineage(catalog_.get(), "d8");
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(LineageDepth(*in_process), LineageDepth(*over_rpc));
  EXPECT_EQ(in_process->dataset, over_rpc->dataset);
}

TEST_F(FedRpcTest, FederatedIndexOverRpcMatchesInProcess) {
  FederatedIndex over_rpc("rpc-idx");
  auto rpc = Rpc();
  ASSERT_TRUE(over_rpc.AddSource(rpc).ok());
  ASSERT_TRUE(over_rpc.Refresh().ok());

  FederatedIndex in_process("local-idx");
  ASSERT_TRUE(in_process.AddSource(catalog_.get()).ok());
  ASSERT_TRUE(in_process.Refresh().ok());

  EXPECT_EQ(over_rpc.size(), in_process.size());
  EXPECT_EQ(over_rpc.LookupName("dataset", "d3").size(), 1u);

  // Delta refresh over the wire: version poll + changelog + one batch.
  ASSERT_TRUE(catalog_->ImportVdl("DS extra : Dataset size=\"5\";").ok());
  rpc->reset_stats();
  ASSERT_TRUE(over_rpc.Refresh().ok());
  EXPECT_EQ(over_rpc.LookupName("dataset", "extra").size(), 1u);
  EXPECT_LE(rpc->stats().round_trips, 3u);
}

// --------------------------- Remote cache ----------------------------

TEST_F(FedRpcTest, CacheServesRepeatedReadsFromOneRoundTrip) {
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(cache.GetDataset("d1")->name, "d1");
  }
  EXPECT_EQ(rpc->stats().round_trips, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 4u);

  // Negative answers are cached too.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cache.GetDataset("ghost").status().IsNotFound());
  }
  EXPECT_EQ(rpc->stats().round_trips, 2u);

  // Provenance steps: one compound trip, then local.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.GetProvenanceStep("d6").ok());
  }
  EXPECT_EQ(rpc->stats().round_trips, 3u);
}

TEST_F(FedRpcTest, RevalidateEvictsExactlyWhatChanged) {
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  ASSERT_TRUE(cache.Revalidate().ok());  // sync point
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  ASSERT_TRUE(cache.GetDataset("d2").ok());
  rpc->reset_stats();

  // Server-side mutation the cache hasn't seen: reads stay stale (and
  // local) by design until an explicit revalidation.
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "touched", true).ok());
  EXPECT_FALSE(cache.GetDataset("d1")->annotations.Has("touched"));
  EXPECT_EQ(rpc->stats().round_trips, 0u);

  // One ChangesSince trip; only d1 is evicted.
  ASSERT_TRUE(cache.Revalidate().ok());
  EXPECT_EQ(rpc->stats().round_trips, 1u);
  EXPECT_TRUE(cache.GetDataset("d1")->annotations.Has("touched"));
  EXPECT_EQ(rpc->stats().round_trips, 2u);  // d1 refetched...
  ASSERT_TRUE(cache.GetDataset("d2").ok());
  EXPECT_EQ(rpc->stats().round_trips, 2u);  // ...d2 still cached
  EXPECT_EQ(cache.synced_version(), catalog_->version());
}

TEST_F(FedRpcTest, ChangelogOverflowFlushesTheWholeCache) {
  catalog_->set_changelog_capacity(4);
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  ASSERT_TRUE(cache.Revalidate().ok());
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        catalog_->Annotate("dataset", "d2", "k" + std::to_string(i), i)
            .ok());
  }
  uint64_t flushes_before = cache.stats().flushes;
  ASSERT_TRUE(cache.Revalidate().ok());
  EXPECT_EQ(cache.stats().flushes, flushes_before + 1);
  EXPECT_EQ(cache.synced_version(), catalog_->version());
  // d1 was flushed even though only d2 changed — the window no longer
  // proves d1 unchanged.
  rpc->reset_stats();
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  EXPECT_EQ(rpc->stats().round_trips, 1u);
}

TEST_F(FedRpcTest, CacheWritesThroughAndReadsItsOwnWrites) {
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  ASSERT_TRUE(cache.GetDataset("d3").ok());
  ASSERT_TRUE(cache.Annotate("dataset", "d3", "mine", true).ok());
  // The write reached the server...
  EXPECT_TRUE(catalog_->GetDataset("d3")->annotations.Has("mine"));
  // ...and the very next read through the cache sees it, no
  // revalidation required.
  EXPECT_TRUE(cache.GetDataset("d3")->annotations.Has("mine"));
}

TEST_F(FedRpcTest, QueryCacheHitsShareOneImmutableList) {
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "tier", "gold").ok());
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);

  DatasetQuery q;
  q.predicates = {{"tier", PredicateOp::kEq, "gold"}};
  Result<NameList> first = cache.FindDatasets(q);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(*first, std::vector<std::string>{"d1"});

  // Every subsequent hit aliases the SAME immutable list — one shared
  // rep, not a fresh vector<string> copy per lookup (the PR-9
  // regression: the old cache copied the whole result set per hit).
  for (int i = 0; i < 4; ++i) {
    Result<NameList> hit = cache.FindDatasets(q);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->identity(), first->identity())
        << "hit " << i << " allocated an independent list";
  }
  EXPECT_EQ(cache.stats().query_hits, 4u);

  // The shared list survives eviction of the cache entry: holders keep
  // their pinned rep alive independently of the cache's lifetime.
  ASSERT_TRUE(cache.Annotate("dataset", "d2", "tier", "gold").ok());
  EXPECT_EQ(*first, std::vector<std::string>{"d1"});
  Result<NameList> refreshed = cache.FindDatasets(q);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_NE(refreshed->identity(), first->identity());
  EXPECT_EQ(refreshed->size(), 2u);
}

TEST_F(FedRpcTest, QueryCacheNormalizesPredicateOrder) {
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "tier", "gold").ok());
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "owner", "alice").ok());
  ASSERT_TRUE(catalog_->Annotate("dataset", "d2", "tier", "gold").ok());
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);

  DatasetQuery q1;
  q1.predicates = {{"tier", PredicateOp::kEq, "gold"},
                   {"owner", PredicateOp::kEq, "alice"}};
  DatasetQuery q2;  // the same conjunction, reordered
  q2.predicates = {{"owner", PredicateOp::kEq, "alice"},
                   {"tier", PredicateOp::kEq, "gold"}};

  Result<NameList> first = cache.FindDatasets(q1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, std::vector<std::string>{"d1"});
  EXPECT_EQ(cache.stats().query_misses, 1u);

  // Reordered predicates normalize to the SAME cache entry: answered
  // locally, zero round trips.
  rpc->reset_stats();
  Result<NameList> second = cache.FindDatasets(q2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(cache.stats().query_hits, 1u);
  EXPECT_EQ(cache.stats().query_misses, 1u);
  EXPECT_EQ(rpc->stats().round_trips, 0u);

  // Changing an operand is a genuinely different query.
  DatasetQuery q3 = q1;
  q3.predicates[1].operand = "bob";
  ASSERT_TRUE(cache.FindDatasets(q3).ok());
  EXPECT_EQ(cache.stats().query_misses, 2u);
}

TEST_F(FedRpcTest, QueryCacheInvalidatesPerKind) {
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "tier", "gold").ok());
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);

  DatasetQuery dq;
  dq.predicates = {{"tier", PredicateOp::kEq, "gold"}};
  TransformationQuery tq;
  tq.name_prefix = "step";
  ASSERT_TRUE(cache.FindDatasets(dq).ok());
  ASSERT_TRUE(cache.FindTransformations(tq).ok());
  EXPECT_EQ(cache.stats().query_misses, 2u);

  // A dataset mutation through the client drops only dataset queries;
  // the transformation result set stays warm.
  ASSERT_TRUE(cache.Annotate("dataset", "d2", "tier", "gold").ok());
  rpc->reset_stats();
  ASSERT_TRUE(cache.FindTransformations(tq).ok());
  EXPECT_EQ(cache.stats().query_hits, 1u);
  EXPECT_EQ(rpc->stats().round_trips, 0u);

  Result<NameList> refetched = cache.FindDatasets(dq);
  ASSERT_TRUE(refetched.ok());
  EXPECT_EQ(cache.stats().query_misses, 3u);  // went upstream again
  // Read-your-writes: the refetched set includes the new member.
  EXPECT_EQ(refetched->size(), 2u);
}

TEST_F(FedRpcTest, CacheCapacityEvictsLeastRecentlyUsed) {
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc, 2);
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  ASSERT_TRUE(cache.GetDataset("d2").ok());
  ASSERT_TRUE(cache.GetDataset("d3").ok());  // evicts d1
  EXPECT_GT(cache.stats().evictions, 0u);
  rpc->reset_stats();
  ASSERT_TRUE(cache.GetDataset("d1").ok());  // miss again
  EXPECT_EQ(rpc->stats().round_trips, 1u);
}

TEST_F(FedRpcTest, ChangesSincePiggybacksObservedChangesIntoTheCache) {
  // Regression: ChangesSince used to pass straight through without
  // applying the returned window to the cache, so a federation caller
  // that had just *observed* an object's change could still read the
  // stale cached copy.
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  ASSERT_TRUE(cache.Revalidate().ok());
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  uint64_t synced = cache.synced_version();

  // Server-side change the cache hasn't seen.
  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "touched", true).ok());

  // The caller pays for the change window anyway; the cache must
  // piggyback those invalidations (read-your-observations).
  Result<std::vector<CatalogChange>> changes = cache.ChangesSince(synced);
  ASSERT_TRUE(changes.ok());
  ASSERT_FALSE(changes->empty());
  EXPECT_TRUE(cache.GetDataset("d1")->annotations.Has("touched"));
  // The window started at our sync point, so the sync point advanced:
  // the next Revalidate has nothing left to fetch.
  EXPECT_EQ(cache.synced_version(), catalog_->version());
}

TEST_F(FedRpcTest, ChangesSinceNeverSkipsTheSyncGapForward) {
  // A window that starts *past* our sync point must not advance
  // synced_version_: the unobserved gap could hide invalidations.
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc);
  ASSERT_TRUE(cache.Revalidate().ok());
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  uint64_t synced = cache.synced_version();

  ASSERT_TRUE(catalog_->Annotate("dataset", "d1", "touched", true).ok());
  uint64_t after_d1 = catalog_->version();
  ASSERT_TRUE(catalog_->Annotate("dataset", "d2", "touched", true).ok());

  // Ask for changes after the d1 edit only: the returned window does
  // not cover [synced, after_d1], so the sync point must hold.
  Result<std::vector<CatalogChange>> changes = cache.ChangesSince(after_d1);
  ASSERT_TRUE(changes.ok());
  EXPECT_EQ(cache.synced_version(), synced);

  // Revalidate still walks from the old sync point and evicts the
  // stale d1 — the gap was not silently skipped.
  ASSERT_TRUE(cache.Revalidate().ok());
  EXPECT_TRUE(cache.GetDataset("d1")->annotations.Has("touched"));
  EXPECT_EQ(cache.synced_version(), catalog_->version());
}

TEST_F(FedRpcTest, StepCacheEvictsPerEntryNotWholesale) {
  // Regression: the provenance-step cache used clear-on-overflow —
  // one insert past capacity dumped every cached step. It must
  // displace only the least recently used entry, like the object
  // cache.
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc, 3);
  ASSERT_TRUE(cache.GetProvenanceStep("d1").ok());
  ASSERT_TRUE(cache.GetProvenanceStep("d2").ok());
  ASSERT_TRUE(cache.GetProvenanceStep("d3").ok());
  // Touch d1 so d2 becomes least recently used.
  ASSERT_TRUE(cache.GetProvenanceStep("d1").ok());
  rpc->reset_stats();
  ASSERT_TRUE(cache.GetProvenanceStep("d4").ok());  // displaces ONLY d2
  EXPECT_EQ(rpc->stats().round_trips, 1u);
  ASSERT_TRUE(cache.GetProvenanceStep("d1").ok());
  ASSERT_TRUE(cache.GetProvenanceStep("d3").ok());
  ASSERT_TRUE(cache.GetProvenanceStep("d4").ok());
  EXPECT_EQ(rpc->stats().round_trips, 1u);  // all three still cached
  ASSERT_TRUE(cache.GetProvenanceStep("d2").ok());  // the displaced one
  EXPECT_EQ(rpc->stats().round_trips, 2u);
}

TEST_F(FedRpcTest, QueryCacheEvictsPerEntryNotWholesale) {
  // Regression: same clear-on-overflow bug in the Find* result-set
  // cache.
  auto rpc = Rpc();
  CachingCatalogClient cache(rpc, 2);
  DatasetQuery q1;
  q1.name_prefix = "d1";
  DatasetQuery q2;
  q2.name_prefix = "d2";
  DatasetQuery q3;
  q3.name_prefix = "d3";
  ASSERT_TRUE(cache.FindDatasets(q1).ok());
  ASSERT_TRUE(cache.FindDatasets(q2).ok());
  // Touch q1 so q2 becomes least recently used.
  ASSERT_TRUE(cache.FindDatasets(q1).ok());
  ASSERT_TRUE(cache.FindDatasets(q3).ok());  // displaces ONLY q2
  rpc->reset_stats();
  ASSERT_TRUE(cache.FindDatasets(q1).ok());
  ASSERT_TRUE(cache.FindDatasets(q3).ok());
  EXPECT_EQ(rpc->stats().round_trips, 0u);  // both still cached
  ASSERT_TRUE(cache.FindDatasets(q2).ok());  // the displaced one
  EXPECT_EQ(rpc->stats().round_trips, 1u);
}

// -------------------- Executor writes over the boundary --------------

TEST_F(FedRpcTest, ExecutorProvenanceWritesGoThroughTheClient) {
  VirtualDataCatalog catalog("exec.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::CanonicalGraphOptions options;
  options.num_derivations = 12;
  options.num_raw_inputs = 3;
  options.seed = 5;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(&catalog, options);
  ASSERT_TRUE(graph.ok());
  GridSimulator grid(workload::SmallTestbed(), 5);
  for (size_t i = 0; i < graph->raw_inputs.size(); ++i) {
    const std::string site = i % 2 == 0 ? "east" : "west";
    ASSERT_TRUE(
        grid.PlaceFile(site, graph->raw_inputs[i], 1 << 20, true).ok());
    Replica r;
    r.dataset = graph->raw_inputs[i];
    r.site = site;
    r.size_bytes = 1 << 20;
    ASSERT_TRUE(catalog.AddReplica(r).ok());
  }
  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  PlannerOptions popts;
  popts.target_site = "east";
  Result<ExecutionPlan> plan = planner.Plan(graph->sinks.front(), popts);
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Writes flow through a caching client (no RunUntil re-entrancy:
  // the cache is transport-free). The run must succeed and leave the
  // same provenance a direct-catalog run would.
  auto writer = std::make_shared<CachingCatalogClient>(
      std::make_shared<InProcessCatalogClient>(&catalog, false));
  WorkflowEngine engine(&grid, &catalog);
  engine.set_catalog_writer(writer);
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_TRUE(catalog.IsMaterialized(graph->sinks.front()));
  EXPECT_FALSE(catalog.InvocationsOf(plan->nodes.back().derivation.name())
                   .empty());
}

TEST_F(FedRpcTest, ReadOnlyWriterFailsProvenanceButNotScheduling) {
  // A read-only writer cannot record anything; the engine must surface
  // failed provenance writes as warnings, not crash. (The run itself
  // still completes — scheduling reads bypass the writer.)
  auto ro_writer = std::make_shared<InProcessCatalogClient>(
      static_cast<const VirtualDataCatalog*>(catalog_.get()));
  EXPECT_TRUE(ro_writer->read_only());
  EXPECT_TRUE(ro_writer->RecordInvocation(Invocation{})
                  .status()
                  .IsPermissionDenied());
}

}  // namespace
}  // namespace vdg
