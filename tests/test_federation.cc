#include <gtest/gtest.h>

#include "federation/annotation_overlay.h"
#include "federation/fed_provenance.h"
#include "federation/index.h"
#include "federation/promotion.h"
#include "federation/registry.h"

namespace vdg {
namespace {

constexpr const char* kStepTr = R"(
TR step( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/step";
}
)";

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : collab_("collab.org"), group_("group.org"), personal_("personal.org") {
    EXPECT_TRUE(collab_.Open().ok());
    EXPECT_TRUE(group_.Open().ok());
    EXPECT_TRUE(personal_.Open().ok());
    EXPECT_TRUE(registry_.Register(&collab_).ok());
    EXPECT_TRUE(registry_.Register(&group_).ok());
    EXPECT_TRUE(registry_.Register(&personal_).ok());

    // Collaboration holds the raw survey data + official processing.
    EXPECT_TRUE(collab_.ImportVdl(kStepTr).ok());
    EXPECT_TRUE(collab_.ImportVdl(R"(
DS survey : Dataset size="1000000";
DV official->step( out=@{output:"calibrated"}, in=@{input:"survey"} );
)")
                    .ok());
    // Group derives from the collaboration's calibrated data.
    EXPECT_TRUE(group_.ImportVdl(kStepTr).ok());
    EXPECT_TRUE(group_.ImportVdl(R"(
DV grp->step( out=@{output:"selected"},
              in=@{input:"vdp://collab.org/calibrated"} );
)")
                    .ok());
    // Personal work depends on the group's selection.
    EXPECT_TRUE(personal_.ImportVdl(kStepTr).ok());
    EXPECT_TRUE(personal_.ImportVdl(R"(
DV mine->step( out=@{output:"myplot"},
               in=@{input:"vdp://group.org/selected"} );
)")
                    .ok());
  }

  VirtualDataCatalog collab_;
  VirtualDataCatalog group_;
  VirtualDataCatalog personal_;
  CatalogRegistry registry_;
};

// ----------------------------- Registry ------------------------------

TEST_F(FederationTest, RegisterAndFind) {
  EXPECT_EQ(registry_.size(), 3u);
  EXPECT_TRUE(registry_.Has("collab.org"));
  ASSERT_TRUE(registry_.Find("group.org").ok());
  EXPECT_TRUE(registry_.Find("nowhere.org").status().IsNotFound());
  EXPECT_TRUE(registry_.Register(&collab_).IsAlreadyExists());
  EXPECT_FALSE(registry_.Register(nullptr).ok());
}

TEST_F(FederationTest, ResolveAllReferenceForms) {
  // Bare name: home catalog.
  Result<ResolvedRef> bare = registry_.Resolve(&personal_, "myplot");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->client->local_catalog(), &personal_);
  EXPECT_FALSE(bare->remote);

  // authority::name.
  Result<ResolvedRef> scoped =
      registry_.Resolve(&personal_, "collab.org::survey");
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped->client->local_catalog(), &collab_);
  EXPECT_EQ(scoped->local_name, "survey");
  EXPECT_TRUE(scoped->remote);

  // vdp:// hyperlink.
  Result<ResolvedRef> vdp =
      registry_.Resolve(&personal_, "vdp://group.org/selected");
  ASSERT_TRUE(vdp.ok());
  EXPECT_EQ(vdp->client->local_catalog(), &group_);
  EXPECT_EQ(vdp->local_name, "selected");

  // Bare names need a home catalog.
  EXPECT_FALSE(registry_.Resolve(nullptr, "myplot").ok());
  // Unknown authority.
  EXPECT_TRUE(
      registry_.Resolve(&personal_, "vdp://x.org/y").status().IsNotFound());
}

TEST_F(FederationTest, ResolveRejectsMalformedReferences) {
  // Malformed vdp:// forms: missing authority, missing object name.
  EXPECT_TRUE(registry_.Resolve(&personal_, "vdp:///survey")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(registry_.Resolve(&personal_, "vdp://collab.org")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(registry_.Resolve(&personal_, "vdp://collab.org/")
                  .status()
                  .IsParseError());
  // Scoped form with an empty side.
  Status empty_name =
      registry_.Resolve(&personal_, "collab.org::").status();
  EXPECT_TRUE(empty_name.IsInvalidArgument());
  EXPECT_NE(empty_name.message().find("empty object name"),
            std::string::npos);
  Status empty_authority = registry_.Resolve(&personal_, "::survey").status();
  EXPECT_TRUE(empty_authority.IsInvalidArgument());
  EXPECT_NE(empty_authority.message().find("empty authority"),
            std::string::npos);
  // Unknown authority in scoped form is NotFound, not InvalidArgument.
  EXPECT_TRUE(registry_.Resolve(&personal_, "nowhere.org::survey")
                  .status()
                  .IsNotFound());
}

TEST_F(FederationTest, ImportTransformationRejectsSelfImport) {
  // Importing collab's step back into collab is a no-op masquerading
  // as a copy; the registry refuses it outright.
  Status self = registry_.ImportTransformation(
      &personal_, "vdp://collab.org/step", &collab_);
  EXPECT_TRUE(self.IsInvalidArgument());
  EXPECT_NE(self.message().find("self-import"), std::string::npos);
  // The refused import leaves no origin annotation behind.
  EXPECT_FALSE(
      collab_.GetTransformation("step")->annotations().Has("vdg.origin"));
}

TEST_F(FederationTest, RemoteLookupCounting) {
  registry_.reset_remote_lookups();
  ASSERT_TRUE(registry_.Resolve(&personal_, "myplot").ok());
  EXPECT_EQ(registry_.remote_lookups(), 0u);
  ASSERT_TRUE(registry_.Resolve(&personal_, "vdp://collab.org/survey").ok());
  ASSERT_TRUE(registry_.Resolve(&personal_, "group.org::selected").ok());
  EXPECT_EQ(registry_.remote_lookups(), 2u);
  // A vdp:// link that points back at the home catalog is local.
  Result<ResolvedRef> self =
      registry_.Resolve(&personal_, "vdp://personal.org/myplot");
  ASSERT_TRUE(self.ok());
  EXPECT_FALSE(self->remote);
  EXPECT_EQ(registry_.remote_lookups(), 2u);
  // Failed resolutions never count as remote lookups.
  EXPECT_FALSE(registry_.Resolve(&personal_, "vdp://x.org/y").ok());
  EXPECT_EQ(registry_.remote_lookups(), 2u);
}

TEST_F(FederationTest, FetchThroughHelpers) {
  Result<Dataset> ds =
      registry_.FetchDataset(&personal_, "vdp://collab.org/survey");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size_bytes, 1000000);
  Result<Transformation> tr =
      registry_.FetchTransformation(&personal_, "collab.org::step");
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->name(), "step");
  Result<Derivation> dv =
      registry_.FetchDerivation(&personal_, "vdp://group.org/grp");
  ASSERT_TRUE(dv.ok());
  EXPECT_EQ(dv->name(), "grp");
  EXPECT_TRUE(registry_.FetchDataset(&personal_, "vdp://collab.org/none")
                  .status()
                  .IsNotFound());
}

TEST_F(FederationTest, ImportTransformationCopiesWithOrigin) {
  VirtualDataCatalog scratch("scratch.org");
  ASSERT_TRUE(scratch.Open().ok());
  ASSERT_TRUE(registry_
                  .ImportTransformation(&personal_, "vdp://collab.org/step",
                                        &scratch)
                  .ok());
  Result<Transformation> copied = scratch.GetTransformation("step");
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->annotations().GetString("vdg.origin"),
            "vdp://collab.org/step");
}

TEST_F(FederationTest, XmlWireRoundTrip) {
  // Ship the collaboration's `step` to a fresh catalog over the wire.
  Result<std::string> xml = ExportTransformationXml(collab_, "step");
  ASSERT_TRUE(xml.ok());
  VirtualDataCatalog scratch("scratch.org");
  ASSERT_TRUE(scratch.Open().ok());
  ASSERT_TRUE(
      ImportTransformationXml(*xml, "vdp://collab.org/step", &scratch).ok());
  Result<Transformation> copied = scratch.GetTransformation("step");
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied->TypeSignature(),
            collab_.GetTransformation("step")->TypeSignature());
  EXPECT_EQ(copied->annotations().GetString("vdg.origin"),
            "vdp://collab.org/step");

  // Derivations ship too (the Figure 3 knowledge-propagation flow).
  Result<std::string> dv_xml = ExportDerivationXml(collab_, "official");
  ASSERT_TRUE(dv_xml.ok());
  ASSERT_TRUE(scratch.ImportVdl("DS survey : Dataset size=\"1\";").ok());
  ASSERT_TRUE(
      ImportDerivationXml(*dv_xml, "vdp://collab.org/official", &scratch)
          .ok());
  Result<Derivation> dv = scratch.GetDerivation("official");
  ASSERT_TRUE(dv.ok());
  EXPECT_EQ(dv->SignatureText(),
            collab_.GetDerivation("official")->SignatureText());
}

TEST_F(FederationTest, XmlWireRejectsGarbage) {
  VirtualDataCatalog scratch("scratch.org");
  ASSERT_TRUE(scratch.Open().ok());
  EXPECT_FALSE(ImportTransformationXml("<bogus/>", "", &scratch).ok());
  EXPECT_FALSE(ImportTransformationXml("not xml", "", &scratch).ok());
  EXPECT_FALSE(ImportTransformationXml("<transformation/>", "", nullptr)
                   .ok());
  EXPECT_TRUE(ExportTransformationXml(collab_, "nope").status().IsNotFound());
}

// --------------------------- FederatedIndex --------------------------

TEST_F(FederationTest, IndexRefreshAndLookup) {
  FederatedIndex index("collaboration-wide");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.AddSource(&group_).ok());
  ASSERT_TRUE(index.AddSource(&personal_).ok());
  EXPECT_TRUE(index.AddSource(&collab_).IsAlreadyExists());
  EXPECT_TRUE(index.IsStale());  // never refreshed
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_FALSE(index.IsStale());
  EXPECT_GT(index.size(), 0u);

  std::vector<IndexEntry> hits = index.LookupName("dataset", "selected");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].authority, "group.org");
  EXPECT_EQ(hits[0].VdpRef(), "vdp://group.org/selected");
}

TEST_F(FederationTest, IndexDetectsStaleness) {
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_FALSE(index.IsStale());
  ASSERT_TRUE(
      collab_.Annotate("dataset", "survey", "quality", "checked").ok());
  EXPECT_TRUE(index.IsStale());
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_FALSE(index.IsStale());
  EXPECT_EQ(index.refresh_count(), 2u);
}

TEST_F(FederationTest, IndexQueryMatchesDirectScan) {
  ASSERT_TRUE(
      collab_.Annotate("dataset", "survey", "science", "astro").ok());
  ASSERT_TRUE(
      group_.Annotate("dataset", "selected", "science", "astro").ok());
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.AddSource(&group_).ok());
  ASSERT_TRUE(index.AddSource(&personal_).ok());
  ASSERT_TRUE(index.Refresh().ok());

  DatasetQuery query;
  query.predicates = {{"science", PredicateOp::kEq, "astro"}};
  std::vector<IndexEntry> via_index = index.FindDatasets(query);
  std::vector<IndexEntry> via_scan = index.ScanDatasets(query);
  ASSERT_EQ(via_index.size(), 2u);
  ASSERT_EQ(via_scan.size(), via_index.size());
  for (size_t i = 0; i < via_index.size(); ++i) {
    EXPECT_EQ(via_index[i].name, via_scan[i].name);
    EXPECT_EQ(via_index[i].authority, via_scan[i].authority);
  }
}

TEST_F(FederationTest, IndexScopesDifferBySourceSet) {
  FederatedIndex personal_index("personal");
  ASSERT_TRUE(personal_index.AddSource(&personal_).ok());
  ASSERT_TRUE(personal_index.Refresh().ok());
  FederatedIndex collab_index("collab-wide");
  ASSERT_TRUE(collab_index.AddSource(&collab_).ok());
  ASSERT_TRUE(collab_index.AddSource(&group_).ok());
  ASSERT_TRUE(collab_index.AddSource(&personal_).ok());
  ASSERT_TRUE(collab_index.Refresh().ok());
  EXPECT_TRUE(personal_index.LookupName("dataset", "survey").empty());
  EXPECT_EQ(collab_index.LookupName("dataset", "survey").size(), 1u);
  EXPECT_LT(personal_index.size(), collab_index.size());
}

TEST_F(FederationTest, IndexFindsTransformationsAndDerivations) {
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.AddSource(&group_).ok());
  ASSERT_TRUE(index.Refresh().ok());
  TransformationQuery tq;
  tq.name_prefix = "step";
  EXPECT_EQ(index.FindTransformations(tq).size(), 2u);  // one per catalog
  DerivationQuery dq;
  dq.name_prefix = "grp";
  std::vector<IndexEntry> dvs = index.FindDerivations(dq);
  ASSERT_EQ(dvs.size(), 1u);
  EXPECT_EQ(dvs[0].authority, "group.org");
}

// ------------------------ AnnotationOverlay --------------------------

TEST_F(FederationTest, OverlayEnhancesWithoutModifying) {
  AnnotationOverlay overlay("alice");
  EXPECT_EQ(overlay.owner(), "alice");
  // The collaboration curated its dataset; Alice layers her own notes.
  ASSERT_TRUE(
      collab_.Annotate("dataset", "survey", "quality", "curated").ok());
  ASSERT_TRUE(overlay
                  .Annotate("dataset", "vdp://collab.org/survey",
                            "my-verdict", "looks-biased")
                  .ok());
  ASSERT_TRUE(overlay
                  .Annotate("dataset", "vdp://collab.org/survey",
                            "quality", "questionable")  // shadows base
                  .ok());

  Result<AttributeSet> effective = overlay.EffectiveAnnotations(
      registry_, "dataset", "vdp://collab.org/survey");
  ASSERT_TRUE(effective.ok());
  EXPECT_EQ(effective->GetString("my-verdict"), "looks-biased");
  EXPECT_EQ(effective->GetString("quality"), "questionable");
  // The owning catalog never sees the overlay.
  EXPECT_EQ(collab_.GetDataset("survey")->annotations.GetString("quality"),
            "curated");
}

TEST_F(FederationTest, OverlayDiscoveryUsesEffectiveView) {
  AnnotationOverlay overlay("alice");
  ASSERT_TRUE(
      collab_.Annotate("dataset", "survey", "science", "astro").ok());
  ASSERT_TRUE(overlay
                  .Annotate("dataset", "vdp://collab.org/survey",
                            "starred", true)
                  .ok());
  ASSERT_TRUE(overlay
                  .Annotate("dataset", "vdp://group.org/selected",
                            "starred", true)
                  .ok());
  // Find starred objects that the *base* says are astro: only survey
  // carries the base annotation.
  Result<NameList> hits = overlay.FindAnnotated(
      registry_, "dataset",
      {{"starred", PredicateOp::kEq, true},
       {"science", PredicateOp::kEq, "astro"}});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits,
            std::vector<std::string>{"vdp://collab.org/survey"});
}

TEST_F(FederationTest, OverlayValidationAndRemoval) {
  AnnotationOverlay overlay("alice");
  EXPECT_FALSE(overlay.Annotate("dataset", "bare-name", "k", 1).ok());
  ASSERT_TRUE(
      overlay.Annotate("dataset", "vdp://collab.org/survey", "k", 1).ok());
  EXPECT_EQ(overlay.size(), 1u);
  EXPECT_TRUE(
      overlay.Remove("dataset", "vdp://collab.org/survey", "nope")
          .IsNotFound());
  ASSERT_TRUE(
      overlay.Remove("dataset", "vdp://collab.org/survey", "k").ok());
  EXPECT_EQ(overlay.size(), 0u);
  // Unknown kinds and dangling references surface errors.
  EXPECT_FALSE(overlay
                   .EffectiveAnnotations(registry_, "widget",
                                         "vdp://collab.org/survey")
                   .ok());
  ASSERT_TRUE(
      overlay.Annotate("dataset", "vdp://collab.org/ghost", "k", 1).ok());
  EXPECT_TRUE(overlay
                  .EffectiveAnnotations(registry_, "dataset",
                                        "vdp://collab.org/ghost")
                  .status()
                  .IsNotFound());
  // FindAnnotated silently skips dangling refs.
  Result<NameList> hits = overlay.FindAnnotated(
      registry_, "dataset", {{"k", PredicateOp::kExists, {}}});
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(FederationTest, OverlayWorksForTransformationsAndDerivations) {
  AnnotationOverlay overlay("alice");
  ASSERT_TRUE(overlay
                  .Annotate("transformation", "vdp://collab.org/step",
                            "trusted", true)
                  .ok());
  ASSERT_TRUE(overlay
                  .Annotate("derivation", "vdp://group.org/grp",
                            "reviewed", false)
                  .ok());
  Result<AttributeSet> tr = overlay.EffectiveAnnotations(
      registry_, "transformation", "vdp://collab.org/step");
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->GetBool("trusted"), true);
  Result<AttributeSet> dv = overlay.EffectiveAnnotations(
      registry_, "derivation", "vdp://group.org/grp");
  ASSERT_TRUE(dv.ok());
  EXPECT_EQ(dv->GetBool("reviewed"), false);
}

// ---------------------------- Promotion ------------------------------

class PromotionTest : public FederationTest {
 protected:
  PromotionTest()
      : root_keys_(KeyPair::FromSeed("collab-root")),
        curator_keys_(KeyPair::FromSeed("curator")),
        rando_keys_(KeyPair::FromSeed("rando")) {
    root_ = Identity{"collab-root", root_keys_.public_key};
    curator_ = Identity{"curator", curator_keys_.public_key};
    rando_ = Identity{"rando", rando_keys_.public_key};
    trust_.AddRoot(root_);
    curator_cert_ = IssueCertificate(curator_, "collab-root", root_keys_);
    pipeline_ = std::make_unique<PromotionPipeline>(
        std::vector<VirtualDataCatalog*>{&personal_, &group_, &collab_},
        &trust_, &signatures_);
    pipeline_->RegisterSignerChain("curator", {curator_cert_});
    // Alice authors a new analysis code in her personal catalog.
    EXPECT_TRUE(personal_.ImportVdl(R"(
TR newidea( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/home/alice/newidea";
}
)")
                    .ok());
  }

  KeyPair root_keys_, curator_keys_, rando_keys_;
  Identity root_, curator_, rando_;
  Certificate curator_cert_;
  TrustStore trust_;
  SignatureRegistry signatures_;
  std::unique_ptr<PromotionPipeline> pipeline_;
};

TEST_F(PromotionTest, UnendorsedPromotionDenied) {
  EXPECT_TRUE(pipeline_->PromoteTransformation(0, "newidea")
                  .IsPermissionDenied());
  EXPECT_FALSE(group_.HasTransformation("newidea"));
}

TEST_F(PromotionTest, EndorsedPromotionClimbsTiers) {
  ASSERT_TRUE(
      pipeline_->Endorse(0, "newidea", curator_, curator_keys_).ok());
  ASSERT_TRUE(pipeline_->PromoteTransformation(0, "newidea").ok());
  ASSERT_TRUE(group_.HasTransformation("newidea"));
  Result<Transformation> copy = group_.GetTransformation("newidea");
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->annotations().GetString("vdg.origin"),
            "vdp://personal.org/newidea");
  EXPECT_EQ(copy->annotations().GetString("vdg.approved_by"), "curator");
  // Endorsements are content-pinned: the unchanged copy climbs the
  // next tier on the same endorsement...
  ASSERT_TRUE(pipeline_->PromoteTransformation(1, "newidea").ok());
  EXPECT_TRUE(collab_.HasTransformation("newidea"));
  // ...but an *edited* copy would not (see EditAfterEndorsementVoidsIt).
}

TEST_F(PromotionTest, EditAfterEndorsementVoidsIt) {
  ASSERT_TRUE(
      pipeline_->Endorse(0, "newidea", curator_, curator_keys_).ok());
  // Alice tweaks the code after the curator signed off.
  ASSERT_TRUE(personal_.Annotate("transformation", "newidea",
                                 "tuning", "aggressive")
                  .ok());
  EXPECT_TRUE(pipeline_->PromoteTransformation(0, "newidea")
                  .IsPermissionDenied());
}

TEST_F(PromotionTest, UntrustedSignerDenied) {
  // rando signs, but holds no chain to the root.
  ASSERT_TRUE(pipeline_->Endorse(0, "newidea", rando_, rando_keys_).ok());
  pipeline_->RegisterSignerChain(
      "rando", {IssueCertificate(rando_, "nobody", rando_keys_)});
  EXPECT_TRUE(pipeline_->PromoteTransformation(0, "newidea")
                  .IsPermissionDenied());
}

TEST_F(PromotionTest, PromoteToTopRunsTheWholeLadder) {
  ASSERT_TRUE(
      pipeline_->PromoteToTop(0, "newidea", curator_, curator_keys_).ok());
  EXPECT_TRUE(group_.HasTransformation("newidea"));
  EXPECT_TRUE(collab_.HasTransformation("newidea"));
  // Top tier reached: nothing above.
  EXPECT_EQ(pipeline_->PromoteTransformation(2, "newidea").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PromotionTest, RevokedCuratorStopsPromotion) {
  ASSERT_TRUE(
      pipeline_->Endorse(0, "newidea", curator_, curator_keys_).ok());
  trust_.Revoke("curator");
  EXPECT_TRUE(pipeline_->PromoteTransformation(0, "newidea")
                  .IsPermissionDenied());
}

// ------------------------- FederatedProvenance -----------------------

TEST_F(FederationTest, CrossServerLineage) {
  FederatedProvenance prov(registry_);
  Result<LineageNode> lineage = prov.Lineage(&personal_, "myplot");
  ASSERT_TRUE(lineage.ok()) << lineage.status();
  // myplot <- mine <- group selected <- grp <- collab calibrated
  //        <- official <- survey.
  EXPECT_EQ(lineage->dataset, "vdp://personal.org/myplot");
  EXPECT_EQ(lineage->derivation, "vdp://personal.org/mine");
  ASSERT_EQ(lineage->inputs.size(), 1u);
  EXPECT_EQ(lineage->inputs[0].dataset, "vdp://group.org/selected");
  EXPECT_EQ(lineage->inputs[0].derivation, "vdp://group.org/grp");
  ASSERT_EQ(lineage->inputs[0].inputs.size(), 1u);
  const LineageNode& calibrated = lineage->inputs[0].inputs[0];
  EXPECT_EQ(calibrated.dataset, "vdp://collab.org/calibrated");
  ASSERT_EQ(calibrated.inputs.size(), 1u);
  EXPECT_EQ(calibrated.inputs[0].dataset, "vdp://collab.org/survey");
  EXPECT_TRUE(calibrated.inputs[0].derivation.empty());  // raw
  EXPECT_EQ(LineageDepth(*lineage), 3);
  // Two hops: personal -> group, group -> collab.
  EXPECT_EQ(prov.last_hop_count(), 2u);
}

TEST_F(FederationTest, CrossServerLineageDepthLimit) {
  FederatedProvenance prov(registry_);
  Result<LineageNode> lineage = prov.Lineage(&personal_, "myplot", 1);
  ASSERT_TRUE(lineage.ok());
  ASSERT_EQ(lineage->inputs.size(), 1u);
  EXPECT_TRUE(lineage->inputs[0].inputs.empty());  // truncated
}

TEST_F(FederationTest, CrossServerLineageUnknownDataset) {
  FederatedProvenance prov(registry_);
  EXPECT_TRUE(
      prov.Lineage(&personal_, "vdp://collab.org/ghost").status().IsNotFound());
}

// ------------------------- Delta refresh -----------------------------

TEST_F(FederationTest, DeltaRefreshTracksMutations) {
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.AddSource(&group_).ok());
  ASSERT_TRUE(index.Refresh().ok());
  size_t baseline = index.size();
  uint64_t applied_before = index.refresh_stats().entries_applied;

  // One new dataset, one annotation, one removal across two sources.
  ASSERT_TRUE(collab_.ImportVdl("DS extra : Dataset size=\"5\";").ok());
  ASSERT_TRUE(
      group_.Annotate("dataset", "selected", "science", "astro").ok());
  ASSERT_TRUE(collab_.RemoveDerivation("official").ok());

  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_EQ(index.size(), baseline);  // +dataset, -derivation
  EXPECT_EQ(index.LookupName("dataset", "extra").size(), 1u);
  EXPECT_TRUE(index.LookupName("derivation", "official").empty());
  std::vector<IndexEntry> selected = index.LookupName("dataset", "selected");
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_TRUE(selected[0].annotations.Has("science"));
  // The second refresh applied a handful of deltas, not a rescan.
  EXPECT_GT(index.refresh_stats().entries_applied, applied_before);
  EXPECT_LT(index.refresh_stats().entries_applied - applied_before,
            static_cast<uint64_t>(baseline));
}

TEST_F(FederationTest, DeltaRefreshMatchesFullRebuild) {
  FederatedIndex delta("delta");
  FederatedIndex full("full");
  ASSERT_TRUE(delta.AddSource(&collab_).ok());
  ASSERT_TRUE(full.AddSource(&collab_).ok());
  ASSERT_TRUE(delta.Refresh().ok());
  ASSERT_TRUE(full.RebuildAll().ok());

  Replica r;
  r.dataset = "calibrated";
  r.site = "east";
  Result<std::string> id = collab_.AddReplica(r);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(collab_.Annotate("dataset", "survey", "epoch", 3).ok());

  ASSERT_TRUE(delta.Refresh().ok());
  ASSERT_TRUE(full.RebuildAll().ok());
  EXPECT_EQ(delta.size(), full.size());
  EXPECT_EQ(delta.last_refresh_version_sum(), full.last_refresh_version_sum());
  DatasetQuery materialized;
  materialized.require_materialized = true;
  std::vector<IndexEntry> via_delta = delta.FindDatasets(materialized);
  std::vector<IndexEntry> via_full = full.FindDatasets(materialized);
  ASSERT_EQ(via_delta.size(), 1u);
  ASSERT_EQ(via_full.size(), via_delta.size());
  EXPECT_EQ(via_delta[0].name, "calibrated");

  // Replica invalidation flips the materialized bit through the delta.
  ASSERT_TRUE(collab_.InvalidateReplica(*id).ok());
  ASSERT_TRUE(delta.Refresh().ok());
  EXPECT_TRUE(delta.FindDatasets(materialized).empty());
}

TEST_F(FederationTest, DeltaRefreshFallsBackWhenWindowExceeded) {
  collab_.set_changelog_capacity(4);
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.Refresh().ok());
  uint64_t rebuilds_before = index.refresh_stats().full_rebuilds;

  // More mutations than the window holds forces the full-rescan path.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        collab_.Annotate("dataset", "survey", "k" + std::to_string(i), i)
            .ok());
  }
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_EQ(index.refresh_stats().full_rebuilds, rebuilds_before + 1);
  std::vector<IndexEntry> survey = index.LookupName("dataset", "survey");
  ASSERT_EQ(survey.size(), 1u);
  EXPECT_TRUE(survey[0].annotations.Has("k9"));
  EXPECT_FALSE(index.IsStale());

  // Within-window changes go back to the delta path.
  uint64_t deltas_before = index.refresh_stats().delta_refreshes;
  ASSERT_TRUE(collab_.Annotate("dataset", "survey", "fresh", true).ok());
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_EQ(index.refresh_stats().delta_refreshes, deltas_before + 1);
}

TEST_F(FederationTest, RefreshSkipsUnchangedSources) {
  FederatedIndex index("idx");
  ASSERT_TRUE(index.AddSource(&collab_).ok());
  ASSERT_TRUE(index.AddSource(&group_).ok());
  ASSERT_TRUE(index.Refresh().ok());
  IndexRefreshStats before = index.refresh_stats();
  // Only group changes; collab must be neither rescanned nor delta'd.
  ASSERT_TRUE(group_.Annotate("dataset", "selected", "touched", true).ok());
  ASSERT_TRUE(index.Refresh().ok());
  EXPECT_EQ(index.refresh_stats().full_rebuilds, before.full_rebuilds);
  EXPECT_EQ(index.refresh_stats().delta_refreshes,
            before.delta_refreshes + 1);
  EXPECT_EQ(index.refresh_stats().entries_applied,
            before.entries_applied + 1);
}

}  // namespace
}  // namespace vdg
