// Property-style torture test for catalog durability: apply a long
// random (but seeded) mutation sequence against a FileJournal-backed
// catalog, reopen it from the journal, and require the reopened
// catalog to be observationally identical — for every seed. This is
// the crash-recovery contract of the VDC persistence design.
#include <cstdio>
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/rng.h"

namespace vdg {
namespace {

// Deterministic random mutation driver.
class MutationDriver {
 public:
  MutationDriver(VirtualDataCatalog* catalog, uint64_t seed)
      : catalog_(catalog), rng_(seed) {}

  void Run(int steps) {
    // Seed content so removals/annotations have targets.
    Must(catalog_->ImportVdl(
        "TR base( output out, input in ) {"
        "  argument stdin = ${input:in};"
        "  argument stdout = ${output:out};"
        "  exec = \"/bin/base\"; }"
        "DS seed0 : Dataset size=\"1\";"));
    datasets_.push_back("seed0");
    for (int i = 0; i < steps; ++i) Step(i);
  }

 private:
  static void Must(const Status& status) { ASSERT_TRUE(status.ok()) << status; }

  void Step(int i) {
    switch (rng_.UniformInt(0, 9)) {
      case 0: {  // new dataset
        Dataset ds;
        ds.name = "ds" + std::to_string(i);
        ds.size_bytes = rng_.UniformInt(0, 1 << 20);
        if (catalog_->DefineDataset(ds).ok()) datasets_.push_back(ds.name);
        break;
      }
      case 1: {  // new derivation chained off a random dataset
        Derivation dv("dv" + std::to_string(i), "base");
        std::string out = "out" + std::to_string(i);
        Must(dv.AddArg(ActualArg::DatasetRef("out", out,
                                             ArgDirection::kOut)));
        Must(dv.AddArg(ActualArg::DatasetRef(
            "in", datasets_[rng_.Index(datasets_.size())],
            ArgDirection::kIn)));
        if (catalog_->DefineDerivation(std::move(dv)).ok()) {
          derivations_.push_back("dv" + std::to_string(i));
          datasets_.push_back(out);
        }
        break;
      }
      case 2: {  // replica
        Replica r;
        r.dataset = datasets_[rng_.Index(datasets_.size())];
        r.site = rng_.Chance(0.5) ? "east" : "west";
        r.size_bytes = rng_.UniformInt(1, 1000);
        Result<std::string> id = catalog_->AddReplica(r);
        if (id.ok()) replicas_.push_back(*id);
        break;
      }
      case 3: {  // invocation
        if (derivations_.empty()) break;
        Invocation iv;
        iv.derivation = derivations_[rng_.Index(derivations_.size())];
        iv.context.site = "east";
        iv.context.host = "n" + std::to_string(i % 4);
        iv.start_time = i;
        iv.duration_s = rng_.Uniform(1, 100);
        iv.succeeded = rng_.Chance(0.9);
        Result<std::string> id = catalog_->RecordInvocation(std::move(iv));
        (void)id;
        break;
      }
      case 4: {  // annotate something
        const char* kinds[] = {"dataset", "derivation", "transformation"};
        const char* kind = kinds[rng_.Index(3)];
        std::string name = kind == std::string("transformation")
                               ? "base"
                               : kind == std::string("dataset")
                                     ? datasets_[rng_.Index(datasets_.size())]
                                     : (derivations_.empty()
                                            ? std::string("none")
                                            : derivations_[rng_.Index(
                                                  derivations_.size())]);
        Status s = catalog_->Annotate(
            kind, name, "k" + std::to_string(rng_.UniformInt(0, 3)),
            AttributeValue(rng_.UniformInt(0, 100)));
        (void)s;
        break;
      }
      case 5: {  // invalidate a replica
        if (replicas_.empty()) break;
        Status s = catalog_->InvalidateReplica(
            replicas_[rng_.Index(replicas_.size())]);
        (void)s;
        break;
      }
      case 6: {  // remove a replica
        if (replicas_.empty() || !rng_.Chance(0.3)) break;
        size_t pick = rng_.Index(replicas_.size());
        Status s = catalog_->RemoveReplica(replicas_[pick]);
        if (s.ok()) {
          replicas_.erase(replicas_.begin() +
                          static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 7: {  // remove a derivation (occasionally)
        if (derivations_.empty() || !rng_.Chance(0.2)) break;
        size_t pick = rng_.Index(derivations_.size());
        Status s = catalog_->RemoveDerivation(derivations_[pick]);
        if (s.ok()) {
          derivations_.erase(derivations_.begin() +
                             static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 8: {  // size update
        Status s = catalog_->SetDatasetSize(
            datasets_[rng_.Index(datasets_.size())],
            rng_.UniformInt(0, 1 << 20));
        (void)s;
        break;
      }
      case 9: {  // type definition
        Status s = catalog_->DefineType(
            TypeDimension::kContent, "ty" + std::to_string(i),
            TypeDimensionBaseName(TypeDimension::kContent));
        (void)s;
        break;
      }
    }
  }

  VirtualDataCatalog* catalog_;
  Rng rng_;
  std::vector<std::string> datasets_;
  std::vector<std::string> derivations_;
  std::vector<std::string> replicas_;
};

// Full observational fingerprint of a catalog's contents.
std::string Fingerprint(const VirtualDataCatalog& catalog) {
  std::string out;
  for (const std::string& name : catalog.AllDatasetNames().ToStrings()) {
    Dataset ds = *catalog.GetDataset(name);
    out += "DS " + name + " " + ds.type.ToString() + " " +
           std::to_string(ds.size_bytes) + " prod=" + ds.producer + " [" +
           ds.annotations.ToString() + "] mat=" +
           (catalog.IsMaterialized(name) ? "1" : "0") + "\n";
  }
  for (const std::string& name : catalog.AllTransformationNames().ToStrings()) {
    Transformation tr = *catalog.GetTransformation(name);
    out += "TR " + tr.TypeSignature() + " [" +
           tr.annotations().ToString() + "]\n";
  }
  for (const std::string& name : catalog.AllDerivationNames().ToStrings()) {
    Derivation dv = *catalog.GetDerivation(name);
    out += "DV " + name + " " + dv.SignatureText() + " [" +
           dv.annotations().ToString() + "] consumers=";
    for (const std::string& input : dv.InputDatasets()) {
      for (std::string_view consumer : catalog.ConsumersOf(input)) {
        out += std::string(consumer) + ",";
      }
    }
    out += "\n";
  }
  for (const std::string& id : catalog.AllReplicaIds()) {
    Replica r = *catalog.GetReplica(id);
    out += "RP " + id + " " + r.dataset + "@" + r.site + " " +
           std::to_string(r.size_bytes) + (r.valid ? " valid" : " invalid") +
           "\n";
  }
  for (const std::string& id : catalog.AllInvocationIds()) {
    Invocation iv = *catalog.GetInvocation(id);
    out += "IV " + id + " " + iv.derivation + "@" + iv.context.site + "/" +
           iv.context.host + " t=" + std::to_string(iv.start_time) + " d=" +
           std::to_string(iv.duration_s) +
           (iv.succeeded ? " ok" : " failed") + "\n";
  }
  return out;
}

class JournalTortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalTortureTest, ReplayReproducesEveryObservable) {
  std::string path = ::testing::TempDir() + "/vdg_torture_" +
                     std::to_string(GetParam()) + ".log";
  std::remove(path.c_str());
  std::string before;
  {
    VirtualDataCatalog catalog("torture.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    MutationDriver driver(&catalog, GetParam());
    driver.Run(300);
    before = Fingerprint(catalog);
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  VirtualDataCatalog reopened("torture.org",
                              std::make_unique<FileJournal>(path));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(Fingerprint(reopened), before);

  // And the recovered catalog remains fully writable (counters did
  // not collide with replayed ids).
  Replica r;
  r.dataset = "seed0";
  r.site = "east";
  EXPECT_TRUE(reopened.AddReplica(r).ok());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalTortureTest,
                         ::testing::Values(1, 7, 42, 99, 12345));

// Compaction property: after heavy churn, CompactJournal must (a)
// shrink the record count, (b) preserve every observable through a
// reopen, and (c) leave the reopened catalog writable.
class CompactionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompactionTest, CompactionPreservesObservables) {
  std::string path = ::testing::TempDir() + "/vdg_compact_" +
                     std::to_string(GetParam()) + ".log";
  std::remove(path.c_str());
  std::string before;
  size_t raw_records = 0;
  size_t compact_records = 0;
  {
    VirtualDataCatalog catalog("compact.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    MutationDriver driver(&catalog, GetParam());
    driver.Run(300);
    before = Fingerprint(catalog);
    ASSERT_TRUE(catalog.SyncJournal().ok());
    {
      FileJournal reader(path);
      raw_records = reader.ReadAll()->size();
    }
    ASSERT_TRUE(catalog.CompactJournal().ok());
    compact_records = catalog.CurrentStateRecords().size();
    // Churny histories compact substantially.
    EXPECT_LT(compact_records, raw_records) << "no churn to discard?";
  }
  {
    FileJournal reader(path);
    EXPECT_EQ(reader.ReadAll()->size(), compact_records);
  }
  VirtualDataCatalog reopened("compact.org",
                              std::make_unique<FileJournal>(path));
  Status opened = reopened.Open();
  ASSERT_TRUE(opened.ok()) << opened;
  EXPECT_EQ(Fingerprint(reopened), before);
  // Still writable after compaction + reopen.
  Replica r;
  r.dataset = "seed0";
  r.site = "west";
  EXPECT_TRUE(reopened.AddReplica(r).ok());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionTest,
                         ::testing::Values(1, 42, 12345));

TEST(CompactionTest2, MemoryCatalogRejectsCompaction) {
  VirtualDataCatalog catalog("mem.org");  // NullJournal
  ASSERT_TRUE(catalog.Open().ok());
  EXPECT_EQ(catalog.CompactJournal().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompactionTest2, ExportVdlReimports) {
  VirtualDataCatalog catalog("dump.org");
  ASSERT_TRUE(catalog.Open().ok());
  MutationDriver driver(&catalog, 3);
  driver.Run(120);
  std::string vdl = catalog.ExportVdl();
  VirtualDataCatalog imported("import.org");
  ASSERT_TRUE(imported.Open().ok());
  // The dump declares every dataset explicitly, so DV auto-definition
  // never fires; types must be carried over separately.
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    auto dim = static_cast<TypeDimension>(d);
    const TypeRegistry snapshot = catalog.TypesSnapshot();
    const TypeHierarchy& h = snapshot.dimension(dim);
    std::vector<std::pair<int, std::string>> by_depth;
    for (std::string_view name : h.AllTypes()) {
      by_depth.emplace_back(*h.DepthOf(name), std::string(name));
    }
    std::sort(by_depth.begin(), by_depth.end());
    for (const auto& [depth, name] : by_depth) {
      (void)depth;
      ASSERT_TRUE(imported.DefineType(dim, name, *h.ParentOf(name)).ok());
    }
  }
  ASSERT_TRUE(imported.ImportVdl(vdl).ok()) << vdl;
  EXPECT_EQ(imported.Stats().datasets, catalog.Stats().datasets);
  EXPECT_EQ(imported.Stats().transformations,
            catalog.Stats().transformations);
  EXPECT_EQ(imported.Stats().derivations, catalog.Stats().derivations);
}

// Double-replay: reopening twice (replay of a replayed journal plus
// new writes) stays consistent.
TEST(JournalTortureTest2, ReopenWriteReopen) {
  std::string path = ::testing::TempDir() + "/vdg_torture_rw.log";
  std::remove(path.c_str());
  {
    VirtualDataCatalog catalog("t.org", std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    MutationDriver driver(&catalog, 5);
    driver.Run(100);
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  std::string middle;
  {
    VirtualDataCatalog catalog("t.org", std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(
        catalog.Annotate("transformation", "base", "touched", true).ok());
    middle = Fingerprint(catalog);
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  VirtualDataCatalog final_catalog("t.org",
                                   std::make_unique<FileJournal>(path));
  ASSERT_TRUE(final_catalog.Open().ok());
  EXPECT_EQ(Fingerprint(final_catalog), middle);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vdg
