#include <gtest/gtest.h>

#include "vdl/lexer.h"
#include "vdl/parser.h"
#include "vdl/printer.h"
#include "vdl/xml.h"

namespace vdg {
namespace {

// ------------------------------ Lexer --------------------------------

TEST(LexerTest, TokenizesPunctuationAndIdentifiers) {
  VdlLexer lexer("TR t1( output a2 ) { exec = \"/bin/x\"; }");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "TR");
  EXPECT_EQ((*tokens)[1].text, "t1");
  EXPECT_TRUE((*tokens)[2].is(TokenKind::kLParen));
  EXPECT_TRUE((*tokens).back().is(TokenKind::kEof));
}

TEST(LexerTest, DottedIdentifiersStayWhole) {
  VdlLexer lexer("env.MAXMEM run1.exp15.T1932.raw");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "env.MAXMEM");
  EXPECT_EQ((*tokens)[1].text, "run1.exp15.T1932.raw");
}

TEST(LexerTest, ArrowVersusDashIdentifiers) {
  VdlLexer lexer("d1->example1::t1 Tar-archive");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "d1");
  EXPECT_TRUE((*tokens)[1].is(TokenKind::kArrow));
  EXPECT_EQ((*tokens)[2].text, "example1");
  EXPECT_TRUE((*tokens)[3].is(TokenKind::kColonColon));
  EXPECT_EQ((*tokens)[4].text, "t1");
  EXPECT_EQ((*tokens)[5].text, "Tar-archive");
}

TEST(LexerTest, DollarAndAtBraces) {
  VdlLexer lexer("${input:a1} @{output:\"file2\"}");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].is(TokenKind::kDollarBrace));
  EXPECT_EQ((*tokens)[1].text, "input");
  EXPECT_TRUE((*tokens)[2].is(TokenKind::kColon));
  EXPECT_EQ((*tokens)[3].text, "a1");
  EXPECT_TRUE((*tokens)[4].is(TokenKind::kRBrace));
  EXPECT_TRUE((*tokens)[5].is(TokenKind::kAtBrace));
}

TEST(LexerTest, StringEscapes) {
  VdlLexer lexer(R"("a\"b" "line\nnext" "back\\slash")");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b");
  EXPECT_EQ((*tokens)[1].text, "line\nnext");
  EXPECT_EQ((*tokens)[2].text, "back\\slash");
}

TEST(LexerTest, CommentsAreSkipped) {
  VdlLexer lexer("# full line\nTR // trailing\nt1");
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "TR");
  EXPECT_EQ((*tokens)[1].text, "t1");
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  VdlLexer lexer("\"never closed");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, ErrorsOnLoneDollar) {
  VdlLexer lexer("$x");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

// ------------------------- Parser: Appendix A ------------------------

// The first VDL example in Appendix A, verbatim modulo whitespace.
constexpr const char* kAppendixT1 = R"(
TR t1( output a2, input a1, none env="100000", none pa="500" ) {
  argument parg = "-p "${none:pa};
  argument farg = "-f "${input:a1};
  argument xarg = "-x -y ";
  argument stdout = ${output:a2};
  exec = "/usr/bin/app3";
  env.MAXMEM = ${none:env};
}
)";

TEST(ParserTest, ParsesAppendixT1) {
  Result<VdlProgram> program = ParseVdl(kAppendixT1);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->transformations.size(), 1u);
  const Transformation& tr = program->transformations[0];
  EXPECT_EQ(tr.name(), "t1");
  EXPECT_FALSE(tr.is_compound());
  ASSERT_EQ(tr.args().size(), 4u);
  EXPECT_EQ(tr.args()[0].name, "a2");
  EXPECT_EQ(tr.args()[0].direction, ArgDirection::kOut);
  EXPECT_EQ(tr.args()[2].name, "env");
  EXPECT_EQ(tr.args()[2].default_string, "100000");
  EXPECT_EQ(tr.executable(), "/usr/bin/app3");
  ASSERT_EQ(tr.argument_templates().size(), 4u);
  EXPECT_EQ(tr.argument_templates()[0].name, "parg");
  ASSERT_EQ(tr.argument_templates()[0].expr.size(), 2u);
  EXPECT_EQ(tr.argument_templates()[0].expr[0].text, "-p ");
  EXPECT_EQ(tr.argument_templates()[0].expr[1].text, "pa");
  EXPECT_EQ(tr.argument_templates()[3].name, "stdout");
  ASSERT_EQ(tr.env().count("MAXMEM"), 1u);
}

TEST(ParserTest, ParsesAppendixDerivation) {
  Result<VdlProgram> program = ParseVdl(R"(
    DV d1->example1::t1(
      a2=@{output:"run1.exp15.T1932.summary"},
      a1=@{input:"run1.exp15.T1932.raw"},
      env="20000", pa="600" );
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->derivations.size(), 1u);
  const Derivation& dv = program->derivations[0];
  EXPECT_EQ(dv.name(), "d1");
  EXPECT_EQ(dv.transformation_namespace(), "example1");
  EXPECT_EQ(dv.transformation(), "t1");
  EXPECT_EQ(dv.QualifiedTransformation(), "example1::t1");
  EXPECT_EQ(dv.OutputDatasets(),
            std::vector<std::string>{"run1.exp15.T1932.summary"});
  EXPECT_EQ(dv.InputDatasets(),
            std::vector<std::string>{"run1.exp15.T1932.raw"});
  const ActualArg* env = dv.FindArg("env");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->string_value, "20000");
}

// The dependency chain example: usetrans1 output feeds usetrans2.
TEST(ParserTest, ParsesDependencyChain) {
  Result<VdlProgram> program = ParseVdl(R"(
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
DV usetrans1->trans1( a2=@{output:"file2"}, a1=@{input:"file1"} );
DV usetrans2->trans2( a2=@{output:"file3"}, a1=@{input:"file2"} );
)");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->transformations.size(), 2u);
  EXPECT_EQ(program->derivations.size(), 2u);
  EXPECT_EQ(program->derivations[1].InputDatasets(),
            std::vector<std::string>{"file2"});
}

// trans4/trans5: compound transformations from Appendix A.
constexpr const char* kAppendixCompound = R"(
TR trans1( output a2, input a1 ) {
  argument = "...";
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  profile hints.pfnHint = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument = "...";
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
TR trans3( input a2, input a1, output a3 ) {
  argument parg = "-p foo";
  argument farg = "-f "${input:a1};
  argument xarg = "-x -y -o "${output:a3};
  argument stdin = ${input:a2};
  exec = "/usr/bin/app3";
}
TR trans4( input a2, input a1,
           inout a5=@{inout:"anywhere":""},
           inout a4=@{inout:"somewhere":""},
           output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans2( a2=${output:a5}, a1=${a2} );
  trans3( a2=${input:a5}, a1=${input:a4}, a3=${output:a3} );
}
TR trans5( input a2, input a1,
           inout a4=@{inout:"someplace":""},
           output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans4( a2=${input:a4}, a1=${a2}, a3=${a3} );
}
)";

TEST(ParserTest, ParsesAppendixCompounds) {
  Result<VdlProgram> program = ParseVdl(kAppendixCompound);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->transformations.size(), 5u);
  const Transformation& t4 = program->transformations[3];
  EXPECT_TRUE(t4.is_compound());
  ASSERT_EQ(t4.calls().size(), 3u);
  EXPECT_EQ(t4.calls()[0].callee, "trans1");
  const TemplatePiece* binding = t4.calls()[0].FindBinding("a2");
  ASSERT_NE(binding, nullptr);
  EXPECT_TRUE(binding->is_ref());
  EXPECT_EQ(binding->text, "a4");
  EXPECT_EQ(binding->ref_direction, ArgDirection::kOut);
  // Unqualified ${a1} carries no direction.
  const TemplatePiece* plain = t4.calls()[0].FindBinding("a1");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->ref_direction.has_value());
  // Default dataset bindings on inout formals.
  const FormalArg* a5 = t4.FindArg("a5");
  ASSERT_NE(a5, nullptr);
  EXPECT_EQ(a5->direction, ArgDirection::kInOut);
  EXPECT_EQ(a5->default_dataset, "anywhere");
  // trans5 nests a compound.
  const Transformation& t5 = program->transformations[4];
  EXPECT_TRUE(t5.is_compound());
  EXPECT_EQ(t5.calls()[1].callee, "trans4");
}

TEST(ParserTest, ParsesTypedFormalsAndUnions) {
  Result<VdlProgram> program = ParseVdl(R"(
TR typed( input SDSS/Fileset/ASCII a1, input CMS|SDSS a2,
          output */Relation/* a3 ) {
  exec = "/bin/x";
}
)");
  ASSERT_TRUE(program.ok()) << program.status();
  const Transformation& tr = program->transformations[0];
  ASSERT_EQ(tr.args().size(), 3u);
  EXPECT_EQ(tr.args()[0].types[0].ToString(), "SDSS/Fileset/ASCII");
  ASSERT_EQ(tr.args()[1].types.size(), 2u);
  EXPECT_EQ(tr.args()[1].types[0].content, "CMS");
  EXPECT_EQ(tr.args()[1].types[1].content, "SDSS");
  EXPECT_EQ(tr.args()[2].types[0].format, "Relation");
  EXPECT_TRUE(tr.args()[2].types[0].content.empty());
}

TEST(ParserTest, ParsesDatasetDeclExtension) {
  Result<VdlProgram> program = ParseVdl(R"(
DS file1 : SDSS/Simple/ASCII size="2048" path="/data/file1";
DS file2 : Dataset;
)");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->datasets.size(), 2u);
  EXPECT_EQ(program->datasets[0].name, "file1");
  EXPECT_EQ(program->datasets[0].type.ToString(), "SDSS/Simple/ASCII");
  EXPECT_EQ(program->datasets[0].size_bytes, 2048);
  EXPECT_EQ(program->datasets[0].descriptor.fields.GetString("path"),
            "/data/file1");
  EXPECT_TRUE(program->datasets[1].type.IsAny());
}

TEST(ParserTest, ParsesRemoteCalleeAndRemoteDerivation) {
  Result<VdlProgram> program = ParseVdl(R"(
TR cmpsim( input a1, inout mid=@{inout:"m":""}, output a2 ) {
  "vdp://physics.illinois.edu/sim"( in=${input:a1}, out=${output:mid} );
  "vdp://physics.illinois.edu/cmp"( in=${input:mid}, out=${output:a2} );
}
DV srch-muon->"vdp://physics.wisconsin.edu/srch"(
    class="muon", data=@{input:"events"} );
)");
  ASSERT_TRUE(program.ok()) << program.status();
  const Transformation& tr = program->transformations[0];
  EXPECT_EQ(tr.calls()[0].callee, "vdp://physics.illinois.edu/sim");
  const Derivation& dv = program->derivations[0];
  EXPECT_EQ(dv.transformation(), "vdp://physics.wisconsin.edu/srch");
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(ParseVdl("TR t1( output a2 )").ok());      // no body
  EXPECT_FALSE(ParseVdl("TR t1( sideways x ) {}").ok());  // bad direction
  EXPECT_FALSE(ParseVdl("DV d1->t1( x=5 );").ok());       // unquoted value
  EXPECT_FALSE(ParseVdl("BOGUS x;").ok());                // unknown stmt
  EXPECT_FALSE(ParseVdl("TR t( input a, input a ) { exec=\"/x\"; }").ok());
  // Mixing compound calls with simple statements is rejected.
  EXPECT_FALSE(ParseVdl(R"(
TR mixed( input a1, output a2 ) {
  exec = "/bin/x";
  trans1( a=${a1} );
}
)")
                   .ok());
}

// ------------------------------ Printer ------------------------------

// Property: print -> parse -> print is a fixed point.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  Result<VdlProgram> first = ParseVdl(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = PrintProgram(*first);
  Result<VdlProgram> second = ParseVdl(printed);
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << printed;
  EXPECT_EQ(PrintProgram(*second), printed);
  EXPECT_EQ(second->transformations.size(), first->transformations.size());
  EXPECT_EQ(second->derivations.size(), first->derivations.size());
  // Type signatures survive the round trip.
  for (size_t i = 0; i < first->transformations.size(); ++i) {
    EXPECT_EQ(second->transformations[i].TypeSignature(),
              first->transformations[i].TypeSignature());
  }
  // Derivation signatures survive the round trip.
  for (size_t i = 0; i < first->derivations.size(); ++i) {
    EXPECT_EQ(second->derivations[i].SignatureText(),
              first->derivations[i].SignatureText());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        kAppendixT1, kAppendixCompound,
        "DV d1->example1::t1( a2=@{output:\"f.out\"}, pa=\"600\" );",
        "TR typed( input SDSS/Fileset/ASCII a1, input CMS|SDSS a2, "
        "output */Relation/* a3 ) { exec = \"/bin/x\"; }",
        "TR esc( none p=\"quote\\\"inside\" ) { exec = \"/bin/x\"; "
        "argument a = \"-p \"${none:p}; }"));

// ------------------------------- XML ---------------------------------

TEST(XmlTest, EscapesSpecialCharacters) {
  EXPECT_EQ(XmlEscape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
}

TEST(XmlTest, TransformationXmlStructure) {
  Result<VdlProgram> program = ParseVdl(kAppendixT1);
  ASSERT_TRUE(program.ok());
  std::string xml = TransformationToXml(program->transformations[0]);
  EXPECT_NE(xml.find("<transformation name=\"t1\" kind=\"simple\">"),
            std::string::npos);
  EXPECT_NE(xml.find("<declare name=\"a2\" link=\"output\"/>"),
            std::string::npos);
  EXPECT_NE(xml.find("<executable>/usr/bin/app3</executable>"),
            std::string::npos);
  EXPECT_NE(xml.find("<env name=\"MAXMEM\">"), std::string::npos);
}

TEST(XmlTest, DerivationXmlStructure) {
  Result<VdlProgram> program = ParseVdl(
      "DV d1->ns::t1( a2=@{output:\"f2\"}, a1=@{input:\"f1\"} );");
  ASSERT_TRUE(program.ok());
  std::string xml = DerivationToXml(program->derivations[0]);
  EXPECT_NE(xml.find("uses=\"ns::t1\""), std::string::npos);
  EXPECT_NE(xml.find("dataset=\"f2\" link=\"output\""), std::string::npos);
}

TEST(XmlTest, ProgramXmlWrapsEverything) {
  Result<VdlProgram> program = ParseVdl(
      "DS d : CMS; TR t( input x ) { exec=\"/b\"; } "
      "DV v->t( x=@{input:\"d\"} );");
  ASSERT_TRUE(program.ok());
  std::string xml = ProgramToXml(*program);
  EXPECT_NE(xml.find("<vdl version=\"1.0\">"), std::string::npos);
  EXPECT_NE(xml.find("<dataset name=\"d\""), std::string::npos);
  EXPECT_NE(xml.find("<transformation name=\"t\""), std::string::npos);
  EXPECT_NE(xml.find("<derivation name=\"v\""), std::string::npos);
}

}  // namespace
}  // namespace vdg
