// Flat-snapshot persistence tests: a catalog saved with
// SaveSnapshotFile and reopened through OpenFromSnapshot (the mmap
// cold-start path) must be observationally identical to one rebuilt by
// full journal replay — including when the journal has grown past the
// snapshot's anchor (tail replay). Every corruption mode — flipped
// header byte, flipped payload byte, truncation, a future format
// version, a compacted-away journal prefix, a missing file — must be
// rejected before any state is installed and fall back to full replay
// with a diagnostic, never an error or a crash.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/flatsnap.h"
#include "catalog/journal.h"
#include "common/hash.h"

namespace vdg {
namespace {

std::string TempPath(const std::string& tag) {
  // Process-unique: ctest runs each test of this binary as its own
  // process, possibly in parallel — a bare counter would collide.
  static int counter = 0;
  return ::testing::TempDir() + "/vdg_snap_" + std::to_string(::getpid()) +
         "_" + tag + "_" + std::to_string(++counter);
}

void Populate(VirtualDataCatalog* catalog, int datasets) {
  ASSERT_TRUE(catalog
                  ->DefineType(TypeDimension::kContent, "evt",
                               TypeDimensionBaseName(TypeDimension::kContent))
                  .ok());
  ASSERT_TRUE(
      catalog->DefineType(TypeDimension::kContent, "evt.raw", "evt").ok());
  ASSERT_TRUE(catalog
                  ->ImportVdl(
                      "TR base( output out, input in ) {"
                      "  argument stdin = ${input:in};"
                      "  argument stdout = ${output:out};"
                      "  exec = \"/bin/base\"; }"
                      "DS seed0 : Dataset size=\"1\";")
                  .ok());
  std::string first_replica;
  for (int i = 0; i < datasets; ++i) {
    Dataset ds;
    ds.name = "ds" + std::to_string(i);
    ds.size_bytes = 100 + i;
    ds.type.content = (i % 2 == 0) ? "evt" : "evt.raw";
    ds.annotations.Set("tier", (i % 3 == 0) ? "gold" : "silver");
    ds.annotations.Set("events", static_cast<int64_t>(i * 10));
    ASSERT_TRUE(catalog->DefineDataset(ds).ok());
    if (i % 2 == 0) {
      Replica r;
      r.dataset = ds.name;
      r.site = (i % 4 == 0) ? "east" : "west";
      r.size_bytes = 10 + i;
      Result<std::string> id = catalog->AddReplica(r);
      ASSERT_TRUE(id.ok());
      if (first_replica.empty()) first_replica = *id;
    }
    if (i % 3 == 0) {
      Derivation dv("dv" + std::to_string(i), "base");
      ASSERT_TRUE(
          dv.AddArg(ActualArg::DatasetRef("out", "out" + std::to_string(i),
                                          ArgDirection::kOut))
              .ok());
      ASSERT_TRUE(
          dv.AddArg(ActualArg::DatasetRef("in", ds.name, ArgDirection::kIn))
              .ok());
      ASSERT_TRUE(catalog->DefineDerivation(std::move(dv)).ok());
    }
  }
  ASSERT_TRUE(catalog->Annotate("dataset", "ds1", "owner", "alice").ok());
  // One invalidated replica so the valid-replica counts serialize a
  // non-trivial materialized set.
  ASSERT_FALSE(first_replica.empty());
  ASSERT_TRUE(catalog->InvalidateReplica(first_replica).ok());
}

// Observational equality over *state*: replay-safe state records and
// indexed query answers. Version counters and changelog streams are
// deliberately excluded — journal replay legitimately renders history
// differently from the live catalog (a live ImportVdl batch shares one
// version across its entries; a replica-invalidate re-put record
// upserts without a bump), so only loaded-vs-SOURCE comparisons may
// demand identical history (ExpectSameHistory below).
void ExpectSameState(VirtualDataCatalog& lhs, VirtualDataCatalog& rhs) {
  EXPECT_EQ(lhs.CurrentStateRecords(), rhs.CurrentStateRecords());

  DatasetQuery by_attr;
  by_attr.predicates = {{"tier", PredicateOp::kEq, "gold"}};
  EXPECT_EQ(lhs.FindDatasets(by_attr), rhs.FindDatasets(by_attr));
  DatasetQuery conj;
  conj.predicates = {{"tier", PredicateOp::kEq, "silver"},
                     {"events", PredicateOp::kGe, int64_t{100}}};
  EXPECT_EQ(lhs.FindDatasets(conj), rhs.FindDatasets(conj));
  DatasetQuery typed;
  typed.type = DatasetType{};
  typed.type->content = "evt";
  EXPECT_EQ(lhs.FindDatasets(typed), rhs.FindDatasets(typed));
  DatasetQuery materialized;
  materialized.require_materialized = true;
  EXPECT_EQ(lhs.FindDatasets(materialized), rhs.FindDatasets(materialized));
  DerivationQuery dq;
  dq.transformation = "base";
  EXPECT_EQ(lhs.FindDerivations(dq), rhs.FindDerivations(dq));
  EXPECT_EQ(lhs.AllDatasetNames(), rhs.AllDatasetNames());
  EXPECT_EQ(lhs.AllDerivationNames(), rhs.AllDerivationNames());
}

// Exact history equality: the flat snapshot serializes the live
// changelog verbatim, so a snapshot-loaded catalog must agree with its
// SOURCE on version counter, window floor, and every windowed change.
void ExpectSameHistory(VirtualDataCatalog& lhs, VirtualDataCatalog& rhs) {
  EXPECT_EQ(lhs.version(), rhs.version());
  EXPECT_EQ(lhs.changelog_floor(), rhs.changelog_floor());
  Result<std::vector<CatalogChange>> lc =
      lhs.ChangesSince(lhs.changelog_floor());
  Result<std::vector<CatalogChange>> rc =
      rhs.ChangesSince(rhs.changelog_floor());
  ASSERT_EQ(lc.ok(), rc.ok());
  if (!lc.ok()) return;
  ASSERT_EQ(lc->size(), rc->size());
  for (size_t i = 0; i < lc->size(); ++i) {
    EXPECT_EQ((*lc)[i].version, (*rc)[i].version) << i;
    EXPECT_EQ((*lc)[i].op, (*rc)[i].op) << i;
    EXPECT_EQ((*lc)[i].kind, (*rc)[i].kind) << i;
    EXPECT_EQ((*lc)[i].name, (*rc)[i].name) << i;
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Recomputes the header CRC after a test patches a header field, so
// the patched file fails on the *target* check, not the CRC.
void FixHeaderCrc(std::string* file) {
  std::string header = file->substr(0, flatsnap::kHeaderSize);
  header.replace(flatsnap::kOffHeaderCrc, 4, 4, '\0');
  const uint32_t crc = Crc32(header);
  char bytes[4] = {static_cast<char>(crc & 0xff),
                   static_cast<char>((crc >> 8) & 0xff),
                   static_cast<char>((crc >> 16) & 0xff),
                   static_cast<char>((crc >> 24) & 0xff)};
  file->replace(flatsnap::kOffHeaderCrc, 4, bytes, 4);
}

class SnapshotPersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_path_ = TempPath("journal");
    snap_path_ = TempPath("image");
    source_ = std::make_unique<VirtualDataCatalog>(
        "site-a", std::make_unique<FileJournal>(journal_path_));
    ASSERT_TRUE(source_->Open().ok());
    Populate(source_.get(), 40);
  }

  void TearDown() override {
    std::remove(journal_path_.c_str());
    std::remove(snap_path_.c_str());
  }

  // A catalog rebuilt by plain journal replay — the ground truth every
  // snapshot load (or fallback) is compared against.
  std::unique_ptr<VirtualDataCatalog> ReplayOpened() {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "site-a", std::make_unique<FileJournal>(journal_path_));
    EXPECT_TRUE(catalog->Open().ok());
    return catalog;
  }

  std::unique_ptr<VirtualDataCatalog> SnapshotOpened() {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "site-a", std::make_unique<FileJournal>(journal_path_));
    EXPECT_TRUE(catalog->OpenFromSnapshot(snap_path_).ok());
    return catalog;
  }

  // Asserts the snapshot was REJECTED (never installed), the fallback
  // replay ran, and the resulting state still matches ground truth.
  void ExpectCleanFallback(const std::string& reason_substr) {
    std::unique_ptr<VirtualDataCatalog> loaded = SnapshotOpened();
    const auto report = loaded->last_snapshot_load();
    EXPECT_TRUE(report.attempted);
    EXPECT_FALSE(report.used);
    EXPECT_FALSE(report.fallback_reason.empty());
    if (!reason_substr.empty()) {
      EXPECT_NE(report.fallback_reason.find(reason_substr),
                std::string::npos)
          << "fallback_reason: " << report.fallback_reason;
    }
    std::unique_ptr<VirtualDataCatalog> truth = ReplayOpened();
    ExpectSameState(*loaded, *truth);
    // Both sides replayed the same journal: history matches exactly.
    ExpectSameHistory(*loaded, *truth);
  }

  std::string journal_path_;
  std::string snap_path_;
  std::unique_ptr<VirtualDataCatalog> source_;
};

TEST_F(SnapshotPersistTest, SaveThenLoadMatchesFullReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());

  std::unique_ptr<VirtualDataCatalog> loaded = SnapshotOpened();
  const auto report = loaded->last_snapshot_load();
  EXPECT_TRUE(report.attempted);
  EXPECT_TRUE(report.used) << report.fallback_reason;
  EXPECT_TRUE(report.fallback_reason.empty());
  EXPECT_EQ(report.tail_records_replayed, 0u);
  EXPECT_EQ(report.snapshot_version, source_->version());

  std::unique_ptr<VirtualDataCatalog> truth = ReplayOpened();
  ExpectSameState(*loaded, *truth);
  ExpectSameState(*loaded, *source_);
  ExpectSameHistory(*loaded, *source_);
}

TEST_F(SnapshotPersistTest, JournalTailPastAnchorIsReplayed) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());

  // Keep mutating AFTER the save: these records live past the anchor.
  Dataset late;
  late.name = "late0";
  late.type.content = "evt.raw";
  late.annotations.Set("tier", "gold");
  ASSERT_TRUE(source_->DefineDataset(late).ok());
  ASSERT_TRUE(source_->Annotate("dataset", "ds2", "tier", "gold").ok());
  ASSERT_TRUE(source_->SetDatasetSize("ds3", 999).ok());
  ASSERT_TRUE(source_->SyncJournal().ok());

  std::unique_ptr<VirtualDataCatalog> loaded = SnapshotOpened();
  const auto report = loaded->last_snapshot_load();
  EXPECT_TRUE(report.used) << report.fallback_reason;
  EXPECT_EQ(report.tail_records_replayed, 3u);
  EXPECT_LT(report.snapshot_version, loaded->version());

  std::unique_ptr<VirtualDataCatalog> truth = ReplayOpened();
  ExpectSameState(*loaded, *truth);
  ExpectSameState(*loaded, *source_);
  // The serialized changelog plus the tail-replayed entries must
  // reproduce the live history (the tail ops are all single-record
  // mutations, which replay 1:1).
  ExpectSameHistory(*loaded, *source_);

  // The post-anchor dataset is queryable through the indexes.
  DatasetQuery gold;
  gold.predicates = {{"tier", PredicateOp::kEq, "gold"}};
  NameList names = loaded->FindDatasets(gold);
  EXPECT_NE(std::find(names.begin(), names.end(), "late0"), names.end());
}

TEST_F(SnapshotPersistTest, MemoryOnlyCatalogRoundTripsWithoutJournal) {
  VirtualDataCatalog memory("site-m");
  ASSERT_TRUE(memory.Open().ok());
  Populate(&memory, 12);
  ASSERT_TRUE(memory.SaveSnapshotFile(snap_path_).ok());

  VirtualDataCatalog loaded("site-m");
  ASSERT_TRUE(loaded.OpenFromSnapshot(snap_path_).ok());
  EXPECT_TRUE(loaded.last_snapshot_load().used)
      << loaded.last_snapshot_load().fallback_reason;
  ExpectSameState(loaded, memory);
  ExpectSameHistory(loaded, memory);
}

TEST_F(SnapshotPersistTest, CorruptedHeaderFallsBackToReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  std::string bytes = ReadFile(snap_path_);
  bytes[flatsnap::kOffMagic + 2] ^= 0x40;  // damage the magic
  WriteFile(snap_path_, bytes);
  ExpectCleanFallback("");
}

TEST_F(SnapshotPersistTest, HeaderCrcMismatchFallsBackToReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  std::string bytes = ReadFile(snap_path_);
  bytes[flatsnap::kOffVersionSeq] ^= 0x01;  // field flip, CRC left stale
  WriteFile(snap_path_, bytes);
  ExpectCleanFallback("");
}

TEST_F(SnapshotPersistTest, CorruptedPayloadByteFallsBackToReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  std::string bytes = ReadFile(snap_path_);
  ASSERT_GT(bytes.size(), flatsnap::kHeaderSize + 100);
  bytes[flatsnap::kHeaderSize + 97] ^= 0x80;
  WriteFile(snap_path_, bytes);
  ExpectCleanFallback("");
}

TEST_F(SnapshotPersistTest, TruncatedFileFallsBackToReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  std::string bytes = ReadFile(snap_path_);
  WriteFile(snap_path_, bytes.substr(0, bytes.size() / 2));
  ExpectCleanFallback("");
  // Shorter than the header itself.
  WriteFile(snap_path_, bytes.substr(0, 10));
  ExpectCleanFallback("");
}

TEST_F(SnapshotPersistTest, FutureFormatVersionFallsBackToReplay) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  std::string bytes = ReadFile(snap_path_);
  bytes[flatsnap::kOffFormatVersion] = 99;  // low byte of the u32
  FixHeaderCrc(&bytes);  // keep the CRC valid: version check must fire
  WriteFile(snap_path_, bytes);
  ExpectCleanFallback("format version");
}

TEST_F(SnapshotPersistTest, CompactedJournalNoLongerExtendsAnchor) {
  ASSERT_TRUE(source_->SaveSnapshotFile(snap_path_).ok());
  // Compaction rewrites history: the journal no longer begins with the
  // record chain the snapshot anchored to.
  ASSERT_TRUE(source_->CompactJournal().ok());
  ExpectCleanFallback("");
}

TEST_F(SnapshotPersistTest, MissingFileFallsBackToReplay) {
  // No SaveSnapshotFile call: the path simply does not exist.
  ExpectCleanFallback("");
}

}  // namespace
}  // namespace vdg
