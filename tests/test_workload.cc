#include <gtest/gtest.h>

#include "provenance/provenance.h"
#include "workload/canonical.h"
#include "workload/hep.h"
#include "workload/interactive.h"
#include "workload/sdss.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

// ----------------------------- Testbeds ------------------------------

TEST(TestbedTest, GriphynMatchesPaperScale) {
  GridTopology t = workload::GriphynTestbed();
  EXPECT_EQ(t.site_count(), 4u);
  EXPECT_EQ(t.total_hosts(), 800u);
  EXPECT_TRUE(t.HasSite("uchicago"));
  EXPECT_TRUE(t.HasSite("fermilab"));
  // Links were installed bidirectionally.
  EXPECT_GT(t.Bandwidth("uchicago", "fermilab"), t.Bandwidth("uchicago",
                                                             "caltech"));
  EXPECT_EQ(t.Bandwidth("fermilab", "uchicago"),
            t.Bandwidth("uchicago", "fermilab"));
}

TEST(TestbedTest, TieredTestbedBuildsHierarchy) {
  std::map<std::string, std::string> parents;
  GridTopology t = workload::TieredTestbed(2, 3, 1 << 20, &parents);
  EXPECT_EQ(t.site_count(), 1u + 2u + 6u);
  EXPECT_EQ(parents.at("region1-leaf2"), "region1");
  EXPECT_EQ(parents.at("region0"), "root");
  EXPECT_EQ(parents.at("root"), "");
}

// ----------------------------- Canonical -----------------------------

class CanonicalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalTest, ProvenanceMatchesGroundTruth) {
  VirtualDataCatalog catalog("canon.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::CanonicalGraphOptions options;
  options.num_derivations = 60;
  options.num_raw_inputs = 8;
  options.seed = GetParam();
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(&catalog, options);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->derivations.size(), 60u);
  EXPECT_EQ(catalog.Stats().derivations, 60u);
  EXPECT_FALSE(graph->sinks.empty());

  // The provenance the catalog reports must equal the generator's
  // ground truth, for every output — the Chimera-0 validation.
  ProvenanceTracker tracker(catalog);
  for (const std::string& output : graph->outputs) {
    Result<std::set<std::string>> ancestors = tracker.Ancestors(output);
    ASSERT_TRUE(ancestors.ok());
    EXPECT_EQ(*ancestors, graph->TrueAncestors(output)) << output;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(CanonicalTest2, DeterministicPerSeed) {
  workload::CanonicalGraphOptions options;
  options.num_derivations = 20;
  options.seed = 99;
  VirtualDataCatalog a("a.org"), b("b.org");
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());
  Result<workload::CanonicalGraph> ga =
      workload::GenerateCanonicalGraph(&a, options);
  Result<workload::CanonicalGraph> gb =
      workload::GenerateCanonicalGraph(&b, options);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga->truth_inputs, gb->truth_inputs);
  EXPECT_EQ(ga->sinks, gb->sinks);
}

TEST(CanonicalTest2, PrefixesAllowCoexistence) {
  VirtualDataCatalog catalog("c.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::CanonicalGraphOptions first;
  first.num_derivations = 5;
  first.prefix = "g1";
  workload::CanonicalGraphOptions second;
  second.num_derivations = 5;
  second.prefix = "g2";
  EXPECT_TRUE(workload::GenerateCanonicalGraph(&catalog, first).ok());
  EXPECT_TRUE(workload::GenerateCanonicalGraph(&catalog, second).ok());
  EXPECT_EQ(catalog.Stats().derivations, 10u);
}

TEST(CanonicalTest2, RejectsDegenerateOptions) {
  VirtualDataCatalog catalog("c.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::CanonicalGraphOptions bad;
  bad.num_raw_inputs = 0;
  EXPECT_FALSE(workload::GenerateCanonicalGraph(&catalog, bad).ok());
  EXPECT_FALSE(workload::GenerateCanonicalGraph(nullptr, {}).ok());
}

// -------------------------------- SDSS -------------------------------

TEST(SdssTest, WorkloadShapeMatchesOptions) {
  VirtualDataCatalog catalog("sdss.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::SdssOptions options;
  options.num_stripes = 4;
  options.fields_per_stripe = 10;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog, options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->field_datasets.size(), 40u);
  EXPECT_EQ(workload->bcg_datasets.size(), 40u);
  EXPECT_EQ(workload->cluster_catalogs.size(), 4u);
  EXPECT_EQ(workload->derivation_count, 44u);  // 40 searches + 4 merges
  EXPECT_EQ(catalog.Stats().derivations, 44u);
  // Types live in the SDSS content tree.
  Result<Dataset> field = catalog.GetDataset(workload->field_datasets[0]);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->type.content, "FITS-file");
  EXPECT_TRUE(catalog.TypesSnapshot()
                  .dimension(TypeDimension::kContent)
                  .IsSubtypeOf("FITS-file", "SDSS"));
}

TEST(SdssTest, MergeDependsOnAllStripeFields) {
  VirtualDataCatalog catalog("sdss.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::SdssOptions options;
  options.num_stripes = 1;
  options.fields_per_stripe = 5;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog, options);
  ASSERT_TRUE(workload.ok());
  ProvenanceTracker tracker(catalog);
  Result<std::set<std::string>> ancestors =
      tracker.Ancestors(workload->cluster_catalogs[0]);
  ASSERT_TRUE(ancestors.ok());
  // 5 fields + 5 bcg lists upstream.
  EXPECT_EQ(ancestors->size(), 10u);
}

TEST(SdssTest, StagingDistributesFieldsAcrossSites) {
  VirtualDataCatalog catalog("sdss.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::SdssOptions options;
  options.num_stripes = 2;
  options.fields_per_stripe = 8;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog, options);
  ASSERT_TRUE(workload.ok());
  GridSimulator grid(workload::GriphynTestbed(), 1);
  ASSERT_TRUE(
      workload::StageSdssInputs(*workload, options, &grid, &catalog).ok());
  // Every field is somewhere, and all four sites hold some.
  std::set<std::string> used_sites;
  for (const std::string& field : workload->field_datasets) {
    std::vector<PhysicalLocation> locs = grid.rls().Lookup(field);
    ASSERT_EQ(locs.size(), 1u);
    used_sites.insert(locs[0].site);
    EXPECT_TRUE(catalog.IsMaterialized(field));
  }
  EXPECT_EQ(used_sites.size(), 4u);
}

// -------------------------------- HEP --------------------------------

TEST(HepTest, CompoundModeDefinesPipeline) {
  VirtualDataCatalog catalog("cms.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::HepOptions options;
  options.num_batches = 3;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog, options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->transformation_count, 5u);  // 4 stages + compound
  EXPECT_EQ(workload->ntuples.size(), 3u);
  EXPECT_EQ(catalog.Stats().derivations, 3u);  // one compound DV per batch
  Result<Transformation> pipeline =
      catalog.GetTransformation("cms-pipeline");
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(pipeline->is_compound());
  EXPECT_EQ(pipeline->calls().size(), 4u);
}

TEST(HepTest, ExplicitModeBuildsFourStageChains) {
  VirtualDataCatalog catalog("cms.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::HepOptions options;
  options.num_batches = 2;
  options.use_compound = false;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog, options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(catalog.Stats().derivations, 8u);  // 4 per batch
  // Multi-modal descriptors on the intermediates.
  Result<Dataset> hits = catalog.GetDataset("cms.batch0.hits");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->descriptor.schema, "file-set");
  Result<Dataset> reco = catalog.GetDataset("cms.batch0.reco");
  ASSERT_TRUE(reco.ok());
  EXPECT_EQ(reco->descriptor.schema, "object-closure");
  // Full chain provenance: ntuple <- reco <- hits <- events <- config.
  ProvenanceTracker tracker(catalog);
  Result<std::set<std::string>> ancestors =
      tracker.Ancestors("cms.batch0.ntuple");
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(ancestors->size(), 4u);
}

// ---------------------------- Interactive ----------------------------

TEST(InteractiveTest, SessionShape) {
  VirtualDataCatalog catalog("ana.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::InteractiveOptions options;
  options.num_iterations = 3;
  options.cuts_per_iteration = 2;
  Result<workload::InteractiveWorkload> workload =
      workload::GenerateInteractive(&catalog, options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->analysis_codes.size(), 3u);
  EXPECT_EQ(workload->cut_sets.size(), 6u);
  EXPECT_EQ(workload->histograms.size(), 6u);
  // 6 selects + 6 hists + 1 graph.
  EXPECT_EQ(workload->derivation_count, 13u);
  // Versioned analysis codes.
  Result<Transformation> v2 =
      catalog.GetTransformation("ana-select-v2");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version(), "v2");
  EXPECT_EQ(v2->annotations().GetString("code.version"), "v2");
  // The event store is relational (multi-modal).
  EXPECT_EQ(catalog.GetDataset(workload->event_store)->descriptor.schema,
            "sql-rows");
}

TEST(InteractiveTest, FinalGraphLineageFansAcrossAllIterations) {
  VirtualDataCatalog catalog("ana.org");
  ASSERT_TRUE(catalog.Open().ok());
  workload::InteractiveOptions options;
  options.num_iterations = 2;
  options.cuts_per_iteration = 2;
  Result<workload::InteractiveWorkload> workload =
      workload::GenerateInteractive(&catalog, options);
  ASSERT_TRUE(workload.ok());
  ProvenanceTracker tracker(catalog);
  Result<std::set<std::string>> ancestors =
      tracker.Ancestors(workload->final_graph);
  ASSERT_TRUE(ancestors.ok());
  // 4 hists + 4 cutsets + 1 event store.
  EXPECT_EQ(ancestors->size(), 9u);
  // Lineage-report depth: graph <- hist <- cutset <- events.
  Result<LineageNode> lineage = tracker.Lineage(workload->final_graph);
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(LineageDepth(*lineage), 3);
  // The report names the analysis code version that made each point.
  std::string text = RenderLineage(*lineage);
  EXPECT_NE(text.find("ana-select-v1"), std::string::npos);
  EXPECT_NE(text.find("ana-select-v2"), std::string::npos);
}

}  // namespace
}  // namespace vdg
