// Property-style test for the indexed discovery engine: the planner's
// posting-list / type-index / materialized-set paths must return
// exactly what a naive full scan over the public accessors returns,
// for every seeded random catalog, query mix, and mutation history —
// including removals, replica invalidations, and journal replay. A
// second suite holds the FederatedIndex delta-refresh path to the
// same standard against a forced full rebuild.
#include <cstdio>
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/posting.h"
#include "common/rng.h"
#include "common/strings.h"
#include "federation/index.h"

namespace vdg {
namespace {

constexpr const char* kAttrKeys[] = {"tier", "owner", "run"};
constexpr const char* kAttrValues[] = {"gold", "silver", "bronze"};
constexpr const char* kContentTypes[] = {"evt", "evt.raw", "evt.sim"};

// Deterministic random mutation driver covering every index-relevant
// operation: typed dataset defines, derivations, replica churn
// (add/invalidate/remove), annotations, and removals.
class MutationDriver {
 public:
  MutationDriver(VirtualDataCatalog* catalog, uint64_t seed)
      : catalog_(catalog), rng_(seed) {}

  void Run(int steps) {
    if (!catalog_->HasTransformation("base")) {
      Must(catalog_->DefineType(
          TypeDimension::kContent, "evt",
          TypeDimensionBaseName(TypeDimension::kContent)));
      Must(catalog_->DefineType(TypeDimension::kContent, "evt.raw", "evt"));
      Must(catalog_->DefineType(TypeDimension::kContent, "evt.sim", "evt"));
      Must(catalog_->ImportVdl(
          "TR base( output out, input in ) {"
          "  argument stdin = ${input:in};"
          "  argument stdout = ${output:out};"
          "  exec = \"/bin/base\"; }"
          "DS seed0 : Dataset size=\"1\";"));
    }
    datasets_.push_back("seed0");
    for (int i = 0; i < steps; ++i) Step(i);
  }

 private:
  static void Must(const Status& status) { ASSERT_TRUE(status.ok()) << status; }

  void Step(int i) {
    switch (rng_.UniformInt(0, 9)) {
      case 0: {  // new typed dataset
        Dataset ds;
        ds.name = "ds" + std::to_string(i);
        ds.size_bytes = rng_.UniformInt(0, 1 << 20);
        ds.type.content = kContentTypes[rng_.Index(3)];
        ds.annotations.Set(kAttrKeys[rng_.Index(3)],
                           kAttrValues[rng_.Index(3)]);
        if (catalog_->DefineDataset(ds).ok()) datasets_.push_back(ds.name);
        break;
      }
      case 1: {  // new derivation chained off a random dataset
        Derivation dv("dv" + std::to_string(i), "base");
        std::string out = "out" + std::to_string(i);
        Must(dv.AddArg(ActualArg::DatasetRef("out", out, ArgDirection::kOut)));
        Must(dv.AddArg(ActualArg::DatasetRef(
            "in", datasets_[rng_.Index(datasets_.size())],
            ArgDirection::kIn)));
        if (catalog_->DefineDerivation(std::move(dv)).ok()) {
          derivations_.push_back("dv" + std::to_string(i));
          datasets_.push_back(out);
        }
        break;
      }
      case 2: {  // replica
        Replica r;
        r.dataset = datasets_[rng_.Index(datasets_.size())];
        r.site = rng_.Chance(0.5) ? "east" : "west";
        r.size_bytes = rng_.UniformInt(1, 1000);
        Result<std::string> id = catalog_->AddReplica(r);
        if (id.ok()) replicas_.push_back(*id);
        break;
      }
      case 3: {  // annotate something indexable
        const char* kind = rng_.Chance(0.7) ? "dataset" : "derivation";
        std::string name =
            kind == std::string_view("dataset")
                ? datasets_[rng_.Index(datasets_.size())]
                : (derivations_.empty()
                       ? std::string("none")
                       : derivations_[rng_.Index(derivations_.size())]);
        Status s = catalog_->Annotate(kind, name, kAttrKeys[rng_.Index(3)],
                                      kAttrValues[rng_.Index(3)]);
        (void)s;
        break;
      }
      case 4: {  // invalidate a replica
        if (replicas_.empty()) break;
        Status s = catalog_->InvalidateReplica(
            replicas_[rng_.Index(replicas_.size())]);
        (void)s;
        break;
      }
      case 5: {  // remove a replica
        if (replicas_.empty()) break;
        size_t pick = rng_.Index(replicas_.size());
        if (catalog_->RemoveReplica(replicas_[pick]).ok()) {
          replicas_.erase(replicas_.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 6: {  // remove a derivation
        if (derivations_.empty() || !rng_.Chance(0.4)) break;
        size_t pick = rng_.Index(derivations_.size());
        if (catalog_->RemoveDerivation(derivations_[pick]).ok()) {
          derivations_.erase(derivations_.begin() +
                             static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 7: {  // remove a dataset (only works once it has no refs)
        if (datasets_.size() < 2 || !rng_.Chance(0.3)) break;
        size_t pick = rng_.Index(datasets_.size());
        if (catalog_->RemoveDataset(datasets_[pick]).ok()) {
          datasets_.erase(datasets_.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 8: {  // size update
        Status s = catalog_->SetDatasetSize(
            datasets_[rng_.Index(datasets_.size())],
            rng_.UniformInt(0, 1 << 20));
        (void)s;
        break;
      }
      case 9: {  // re-annotate an existing dataset (index update path)
        Status s = catalog_->Annotate(
            "dataset", datasets_[rng_.Index(datasets_.size())],
            kAttrKeys[rng_.Index(3)], kAttrValues[rng_.Index(3)]);
        (void)s;
        break;
      }
    }
  }

  VirtualDataCatalog* catalog_;
  Rng rng_;
  std::vector<std::string> datasets_;
  std::vector<std::string> derivations_;
  std::vector<std::string> replicas_;
};

// Materialization computed from first principles (the replica table),
// independent of the catalog's incremental materialized set.
std::set<std::string> NaiveMaterialized(const VirtualDataCatalog& catalog) {
  std::set<std::string> out;
  for (const std::string& id : catalog.AllReplicaIds()) {
    Replica r = *catalog.GetReplica(id);
    if (r.valid) out.insert(r.dataset);
  }
  return out;
}

// Reference implementation: full scan over the public accessors,
// re-deriving every query condition without any index.
std::vector<std::string> NaiveFindDatasets(const VirtualDataCatalog& catalog,
                                           const DatasetQuery& query) {
  std::set<std::string> materialized = NaiveMaterialized(catalog);
  std::vector<std::string> out;
  for (const std::string& name : catalog.AllDatasetNames().ToStrings()) {
    Dataset ds = *catalog.GetDataset(name);
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      continue;
    }
    if (query.type && !catalog.TypeConforms(ds.type, *query.type)) {
      continue;
    }
    if (!MatchesAll(ds.annotations, query.predicates)) continue;
    bool mat = materialized.count(name) > 0;
    if (query.require_materialized && !mat) continue;
    if (query.only_virtual && mat) continue;
    out.push_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<std::string> NaiveFindDerivations(
    const VirtualDataCatalog& catalog, const DerivationQuery& query) {
  std::vector<std::string> out;
  for (const std::string& name : catalog.AllDerivationNames().ToStrings()) {
    Derivation dv = *catalog.GetDerivation(name);
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      continue;
    }
    if (!query.transformation.empty() &&
        query.transformation != dv.QualifiedTransformation() &&
        query.transformation != dv.transformation()) {
      continue;
    }
    if (!query.reads_dataset.empty()) {
      std::vector<std::string> ins = dv.InputDatasets();
      if (std::find(ins.begin(), ins.end(), query.reads_dataset) ==
          ins.end()) {
        continue;
      }
    }
    if (!query.writes_dataset.empty()) {
      std::vector<std::string> outs = dv.OutputDatasets();
      if (std::find(outs.begin(), outs.end(), query.writes_dataset) ==
          outs.end()) {
        continue;
      }
    }
    if (!MatchesAll(dv.annotations(), query.predicates)) continue;
    out.push_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

// Random query generator hitting every planner path: attribute
// postings, type index, materialized set, prefix range, full scan.
DatasetQuery RandomDatasetQuery(Rng* rng) {
  DatasetQuery q;
  if (rng->Chance(0.5)) {
    AttributePredicate p;
    p.key = kAttrKeys[rng->Index(3)];
    p.op = PredicateOp::kEq;
    p.operand = kAttrValues[rng->Index(3)];
    q.predicates.push_back(p);
    if (rng->Chance(0.3)) {
      AttributePredicate p2;
      p2.key = kAttrKeys[rng->Index(3)];
      p2.op = PredicateOp::kEq;
      p2.operand = kAttrValues[rng->Index(3)];
      q.predicates.push_back(p2);
    }
  }
  if (rng->Chance(0.4)) {
    q.type = DatasetType{};
    q.type->content = kContentTypes[rng->Index(3)];
  }
  if (rng->Chance(0.3)) q.name_prefix = rng->Chance(0.5) ? "ds" : "out";
  if (rng->Chance(0.3)) {
    if (rng->Chance(0.5)) {
      q.require_materialized = true;
    } else {
      q.only_virtual = true;
    }
  }
  return q;
}

DerivationQuery RandomDerivationQuery(Rng* rng, int steps) {
  DerivationQuery q;
  if (rng->Chance(0.5)) q.transformation = "base";
  if (rng->Chance(0.4)) {
    q.reads_dataset = "ds" + std::to_string(rng->UniformInt(0, steps - 1));
  }
  if (rng->Chance(0.4)) {
    q.writes_dataset = "out" + std::to_string(rng->UniformInt(0, steps - 1));
  }
  if (rng->Chance(0.3)) {
    AttributePredicate p;
    p.key = kAttrKeys[rng->Index(3)];
    p.op = PredicateOp::kEq;
    p.operand = kAttrValues[rng->Index(3)];
    q.predicates.push_back(p);
  }
  if (rng->Chance(0.2)) q.name_prefix = "dv";
  return q;
}

void ExpectQueriesMatchNaive(const VirtualDataCatalog& catalog,
                             uint64_t seed, int steps, int queries) {
  Rng rng(seed * 7919 + 17);
  for (int i = 0; i < queries; ++i) {
    DatasetQuery dq = RandomDatasetQuery(&rng);
    EXPECT_EQ(catalog.FindDatasets(dq), NaiveFindDatasets(catalog, dq))
        << "seed=" << seed << " query#" << i << " plan="
        << AccessPathName(catalog.ExplainFindDatasets(dq).path);
    DerivationQuery vq = RandomDerivationQuery(&rng, steps);
    EXPECT_EQ(catalog.FindDerivations(vq), NaiveFindDerivations(catalog, vq))
        << "seed=" << seed << " query#" << i << " plan="
        << AccessPathName(catalog.ExplainFindDerivations(vq).path);
  }
}

class DiscoveryTortureTest : public ::testing::TestWithParam<uint64_t> {};

// The indexed Find* calls agree with the naive reference on a live
// catalog after a long random mutation history.
TEST_P(DiscoveryTortureTest, IndexedQueriesMatchNaiveScan) {
  const uint64_t seed = GetParam();
  const int steps = 300;
  VirtualDataCatalog catalog("torture.org");
  ASSERT_TRUE(catalog.Open().ok());
  MutationDriver driver(&catalog, seed);
  driver.Run(steps);
  ExpectQueriesMatchNaive(catalog, seed, steps, 60);
}

// The same property holds for a catalog rebuilt from its journal: the
// indexes recovered by replay answer queries identically too.
TEST_P(DiscoveryTortureTest, ReplayedCatalogAnswersIdentically) {
  const uint64_t seed = GetParam();
  const int steps = 200;
  std::string path = ::testing::TempDir() + "/vdg_discovery_" +
                     std::to_string(seed) + ".log";
  std::remove(path.c_str());
  {
    VirtualDataCatalog catalog("torture.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    MutationDriver driver(&catalog, seed);
    driver.Run(steps);
  }
  VirtualDataCatalog reopened("torture.org",
                              std::make_unique<FileJournal>(path));
  Status reopen = reopened.Open();
  ASSERT_TRUE(reopen.ok()) << reopen;
  ExpectQueriesMatchNaive(reopened, seed, steps, 60);
  std::remove(path.c_str());
}

// Delta refresh must converge to the same index a forced full rebuild
// produces, no matter how mutations interleave with refreshes.
TEST_P(DiscoveryTortureTest, DeltaRefreshConvergesToFullRebuild) {
  const uint64_t seed = GetParam();
  VirtualDataCatalog a("a.org");
  VirtualDataCatalog b("b.org");
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());
  // Keep one source's window tight so the fallback path gets exercised.
  b.set_changelog_capacity(8);

  FederatedIndex delta("delta");
  FederatedIndex full("full");
  for (VirtualDataCatalog* c : {&a, &b}) {
    ASSERT_TRUE(delta.AddSource(c).ok());
    ASSERT_TRUE(full.AddSource(c).ok());
  }

  MutationDriver da(&a, seed);
  MutationDriver db(&b, seed + 1000);
  da.Run(40);
  db.Run(40);
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(delta.Refresh().ok());
    // Random-length mutation bursts: short ones fit b's window, long
    // ones overflow it and force the per-source rescan.
    MutationDriver ma(&a, seed + 10 + round);
    MutationDriver mb(&b, seed + 20 + round);
    ma.Run(static_cast<int>(rng.UniformInt(1, 6)));
    mb.Run(static_cast<int>(rng.UniformInt(1, 20)));
  }
  ASSERT_TRUE(delta.Refresh().ok());
  ASSERT_TRUE(full.RebuildAll().ok());

  ASSERT_EQ(delta.size(), full.size());
  // Element-wise equivalence over every entry both indexes hold.
  for (const char* kind : {"dataset", "transformation", "derivation"}) {
    for (VirtualDataCatalog* c : {&a, &b}) {
      NameList names = kind == std::string_view("dataset")
                           ? c->AllDatasetNames()
                           : kind == std::string_view("transformation")
                                 ? c->AllTransformationNames()
                                 : c->AllDerivationNames();
      for (std::string_view name : names) {
        std::vector<IndexEntry> lhs = delta.LookupName(kind, name);
        std::vector<IndexEntry> rhs = full.LookupName(kind, name);
        // Multi-authority hits carry no ordering contract.
        auto by_authority = [](const IndexEntry& x, const IndexEntry& y) {
          return x.authority < y.authority;
        };
        std::sort(lhs.begin(), lhs.end(), by_authority);
        std::sort(rhs.begin(), rhs.end(), by_authority);
        ASSERT_EQ(lhs.size(), rhs.size()) << kind << " " << name;
        for (size_t i = 0; i < lhs.size(); ++i) {
          EXPECT_EQ(lhs[i].authority, rhs[i].authority);
          EXPECT_EQ(lhs[i].type.ToString(), rhs[i].type.ToString());
          EXPECT_EQ(lhs[i].materialized, rhs[i].materialized)
              << kind << " " << name;
          EXPECT_TRUE(lhs[i].annotations == rhs[i].annotations)
              << kind << " " << name;
        }
      }
    }
  }
  // Both paths ran at least once across the six rounds.
  EXPECT_GT(delta.refresh_stats().delta_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryTortureTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------
// PostingBlocks property suite: the compressed block format with its
// per-pair kernel selection (word-AND, probe, galloping, linear merge)
// must agree exactly with naive std::set_intersection over plain sorted
// vectors, for sparse, dense, skewed, and adversarial inputs — empty,
// singleton, a fully dense block, and runs straddling block boundaries.
// The serialized form must round-trip in both copy and borrow modes.

using Id = PostingBlocks::Id;

std::vector<Id> SortedUnique(std::vector<Id> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

PostingBlocks FromIds(const std::vector<Id>& ids) {
  PostingBlocks pb;
  for (Id id : ids) pb.Add(id);
  return pb;
}

std::vector<Id> DistinctIds(const PostingBlocks& pb) {
  std::vector<Id> out;
  pb.ForEach([&](Id id) { out.push_back(id); });
  return out;
}

std::vector<Id> NaiveIntersect(const std::vector<Id>& a,
                               const std::vector<Id>& b) {
  std::vector<Id> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// One randomized id list per shape. Shapes deliberately cross the
// array->bitmap conversion threshold and the 65536-id block span.
std::vector<Id> MakeList(Rng& rng, int shape) {
  std::vector<Id> ids;
  switch (shape) {
    case 0:  // empty
      break;
    case 1:  // singleton, anywhere
      ids.push_back(static_cast<Id>(rng.UniformInt(0, 1 << 20)));
      break;
    case 2: {  // sparse across many blocks (array blocks)
      const int n = static_cast<int>(rng.UniformInt(1, 300));
      for (int i = 0; i < n; ++i) {
        ids.push_back(static_cast<Id>(rng.UniformInt(0, 1 << 21)));
      }
      break;
    }
    case 3: {  // dense inside one block: forces bitmap conversion
      const Id base = static_cast<Id>(rng.UniformInt(0, 8)) *
                      PostingBlocks::kSpan;
      const int n = static_cast<int>(
          rng.UniformInt(PostingBlocks::kBitmapThreshold + 1, 20000));
      for (int i = 0; i < n; ++i) {
        ids.push_back(base +
                      static_cast<Id>(rng.Index(PostingBlocks::kSpan)));
      }
      break;
    }
    case 4: {  // contiguous run straddling a block boundary
      const Id boundary = static_cast<Id>(rng.UniformInt(1, 8)) *
                          PostingBlocks::kSpan;
      const int before = static_cast<int>(rng.UniformInt(0, 5000));
      const int after = static_cast<int>(rng.UniformInt(0, 5000));
      for (int i = -before; i < after; ++i) {
        ids.push_back(boundary + static_cast<Id>(i));
      }
      break;
    }
    case 5: {  // one fully dense block (every bit set)
      const Id base = static_cast<Id>(rng.UniformInt(0, 4)) *
                      PostingBlocks::kSpan;
      ids.resize(PostingBlocks::kSpan);
      for (Id i = 0; i < PostingBlocks::kSpan; ++i) ids[i] = base + i;
      break;
    }
    default: {  // tiny list clustered where a huge list lives (skew:
                // exercises the galloping and probe kernels)
      const Id base = static_cast<Id>(rng.UniformInt(0, 4)) *
                      PostingBlocks::kSpan;
      const int n = static_cast<int>(rng.UniformInt(1, 12));
      for (int i = 0; i < n; ++i) {
        ids.push_back(base +
                      static_cast<Id>(rng.Index(PostingBlocks::kSpan)));
      }
      break;
    }
  }
  return ids;
}

class PostingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostingPropertyTest, IntersectMatchesNaiveAcrossShapes) {
  Rng rng(GetParam() * 7919 + 1);
  constexpr int kShapes = 7;
  for (int sa = 0; sa < kShapes; ++sa) {
    for (int sb = 0; sb < kShapes; ++sb) {
      const std::vector<Id> a = SortedUnique(MakeList(rng, sa));
      const std::vector<Id> b = SortedUnique(MakeList(rng, sb));
      const PostingBlocks pa = FromIds(a);
      const PostingBlocks pb = FromIds(b);
      const std::vector<Id> expected = NaiveIntersect(a, b);

      EXPECT_EQ(PostingBlocks::Intersect(pa, pb), expected)
          << "shapes " << sa << "x" << sb;
      // Intersection is symmetric.
      EXPECT_EQ(PostingBlocks::Intersect(pb, pa), expected)
          << "shapes " << sa << "x" << sb;

      // The progressive step (vector &= blocks) must agree too.
      std::vector<Id> progressive = a;
      PostingBlocks::IntersectWith(&progressive, pb);
      EXPECT_EQ(progressive, expected) << "shapes " << sa << "x" << sb;

      // Membership spot checks along both inputs.
      for (int probe = 0; probe < 32 && !a.empty(); ++probe) {
        const Id id = a[rng.Index(a.size())];
        EXPECT_TRUE(pa.Contains(id));
        EXPECT_EQ(pb.Contains(id),
                  std::binary_search(b.begin(), b.end(), id));
      }
    }
  }
}

TEST_P(PostingPropertyTest, UnionMergesDistinctAndAddsCounts) {
  Rng rng(GetParam() * 104729 + 3);
  for (int round = 0; round < 12; ++round) {
    // Duplicates included: Union must add multiplicities.
    std::vector<Id> a = MakeList(rng, static_cast<int>(rng.Index(7)));
    std::vector<Id> b = MakeList(rng, static_cast<int>(rng.Index(7)));
    const PostingBlocks pa = FromIds(a);
    const PostingBlocks pb = FromIds(b);
    const PostingBlocks u = PostingBlocks::Union(pa, pb);

    std::vector<Id> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(u.ToVector(), merged);
    EXPECT_EQ(u.size(), merged.size());
    EXPECT_EQ(u.distinct(), SortedUnique(merged).size());
    for (int probe = 0; probe < 16 && !merged.empty(); ++probe) {
      const Id id = merged[rng.Index(merged.size())];
      EXPECT_EQ(u.CountOf(id), pa.CountOf(id) + pb.CountOf(id));
    }
  }
}

TEST_P(PostingPropertyTest, MultisetAddRemoveMatchesReferenceModel) {
  Rng rng(GetParam() * 31 + 17);
  PostingBlocks pb;
  std::multiset<Id> model;
  // Narrow id domain so removals actually hit and blocks churn
  // through the array<->bitmap conversion both ways.
  const Id domain = static_cast<Id>(rng.UniformInt(64, 3 * 65536));
  for (int step = 0; step < 20000; ++step) {
    const Id id = static_cast<Id>(rng.Index(domain));
    if (rng.Index(3) != 0) {
      pb.Add(id);
      model.insert(id);
    } else {
      pb.Remove(id);
      auto it = model.find(id);
      if (it != model.end()) model.erase(it);
    }
  }
  EXPECT_EQ(pb.ToVector(), std::vector<Id>(model.begin(), model.end()));
  EXPECT_EQ(pb.size(), model.size());
  for (int probe = 0; probe < 64; ++probe) {
    const Id id = static_cast<Id>(rng.Index(domain));
    EXPECT_EQ(pb.CountOf(id), model.count(id));
    EXPECT_EQ(pb.Contains(id), model.count(id) > 0);
  }
}

TEST_P(PostingPropertyTest, SerializedRoundTripCopyAndBorrow) {
  Rng rng(GetParam() * 6151 + 9);
  for (int shape = 0; shape < 7; ++shape) {
    std::vector<Id> ids = MakeList(rng, shape);
    // A few duplicates so the extra_ side table serializes too.
    for (int i = 0; i < 8 && !ids.empty(); ++i) {
      ids.push_back(ids[rng.Index(ids.size())]);
    }
    const PostingBlocks original = FromIds(ids);

    std::string blob;
    original.AppendSerialized(&blob);

    // Copy mode: no keepalive, parser owns its payloads.
    size_t consumed = 0;
    Result<PostingBlocks> copied = PostingBlocks::Parse(
        reinterpret_cast<const uint8_t*>(blob.data()), blob.size(),
        &consumed, nullptr);
    ASSERT_TRUE(copied.ok()) << copied.status().ToString();
    EXPECT_EQ(consumed, blob.size());
    EXPECT_EQ(copied->ToVector(), original.ToVector());
    EXPECT_EQ(copied->size(), original.size());
    EXPECT_EQ(copied->distinct(), original.distinct());

    // Borrow mode: a keepalive buffer (heap allocations are at least
    // 8-aligned in practice; Parse falls back to copying otherwise,
    // so correctness holds either way).
    auto owned = std::make_shared<std::vector<uint8_t>>(
        blob.begin(), blob.end());
    consumed = 0;
    Result<PostingBlocks> borrowed = PostingBlocks::Parse(
        owned->data(), owned->size(), &consumed, owned);
    ASSERT_TRUE(borrowed.ok()) << borrowed.status().ToString();
    EXPECT_EQ(consumed, owned->size());
    EXPECT_EQ(borrowed->ToVector(), original.ToVector());
    // The borrowed view must stay valid through keepalive even after
    // our local handle goes away.
    owned.reset();
    EXPECT_EQ(borrowed->ToVector(), original.ToVector());

    // Truncation at any point must fail cleanly, never crash.
    for (size_t cut : {blob.size() / 2, blob.size() - 1, size_t{3}}) {
      if (cut >= blob.size()) continue;
      size_t c = 0;
      Result<PostingBlocks> bad = PostingBlocks::Parse(
          reinterpret_cast<const uint8_t*>(blob.data()), cut, &c, nullptr);
      EXPECT_FALSE(bad.ok()) << "cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace vdg
