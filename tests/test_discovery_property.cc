// Property-style test for the indexed discovery engine: the planner's
// posting-list / type-index / materialized-set paths must return
// exactly what a naive full scan over the public accessors returns,
// for every seeded random catalog, query mix, and mutation history —
// including removals, replica invalidations, and journal replay. A
// second suite holds the FederatedIndex delta-refresh path to the
// same standard against a forced full rebuild.
#include <cstdio>
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/strings.h"
#include "federation/index.h"

namespace vdg {
namespace {

constexpr const char* kAttrKeys[] = {"tier", "owner", "run"};
constexpr const char* kAttrValues[] = {"gold", "silver", "bronze"};
constexpr const char* kContentTypes[] = {"evt", "evt.raw", "evt.sim"};

// Deterministic random mutation driver covering every index-relevant
// operation: typed dataset defines, derivations, replica churn
// (add/invalidate/remove), annotations, and removals.
class MutationDriver {
 public:
  MutationDriver(VirtualDataCatalog* catalog, uint64_t seed)
      : catalog_(catalog), rng_(seed) {}

  void Run(int steps) {
    if (!catalog_->HasTransformation("base")) {
      Must(catalog_->DefineType(
          TypeDimension::kContent, "evt",
          TypeDimensionBaseName(TypeDimension::kContent)));
      Must(catalog_->DefineType(TypeDimension::kContent, "evt.raw", "evt"));
      Must(catalog_->DefineType(TypeDimension::kContent, "evt.sim", "evt"));
      Must(catalog_->ImportVdl(
          "TR base( output out, input in ) {"
          "  argument stdin = ${input:in};"
          "  argument stdout = ${output:out};"
          "  exec = \"/bin/base\"; }"
          "DS seed0 : Dataset size=\"1\";"));
    }
    datasets_.push_back("seed0");
    for (int i = 0; i < steps; ++i) Step(i);
  }

 private:
  static void Must(const Status& status) { ASSERT_TRUE(status.ok()) << status; }

  void Step(int i) {
    switch (rng_.UniformInt(0, 9)) {
      case 0: {  // new typed dataset
        Dataset ds;
        ds.name = "ds" + std::to_string(i);
        ds.size_bytes = rng_.UniformInt(0, 1 << 20);
        ds.type.content = kContentTypes[rng_.Index(3)];
        ds.annotations.Set(kAttrKeys[rng_.Index(3)],
                           kAttrValues[rng_.Index(3)]);
        if (catalog_->DefineDataset(ds).ok()) datasets_.push_back(ds.name);
        break;
      }
      case 1: {  // new derivation chained off a random dataset
        Derivation dv("dv" + std::to_string(i), "base");
        std::string out = "out" + std::to_string(i);
        Must(dv.AddArg(ActualArg::DatasetRef("out", out, ArgDirection::kOut)));
        Must(dv.AddArg(ActualArg::DatasetRef(
            "in", datasets_[rng_.Index(datasets_.size())],
            ArgDirection::kIn)));
        if (catalog_->DefineDerivation(std::move(dv)).ok()) {
          derivations_.push_back("dv" + std::to_string(i));
          datasets_.push_back(out);
        }
        break;
      }
      case 2: {  // replica
        Replica r;
        r.dataset = datasets_[rng_.Index(datasets_.size())];
        r.site = rng_.Chance(0.5) ? "east" : "west";
        r.size_bytes = rng_.UniformInt(1, 1000);
        Result<std::string> id = catalog_->AddReplica(r);
        if (id.ok()) replicas_.push_back(*id);
        break;
      }
      case 3: {  // annotate something indexable
        const char* kind = rng_.Chance(0.7) ? "dataset" : "derivation";
        std::string name =
            kind == std::string_view("dataset")
                ? datasets_[rng_.Index(datasets_.size())]
                : (derivations_.empty()
                       ? std::string("none")
                       : derivations_[rng_.Index(derivations_.size())]);
        Status s = catalog_->Annotate(kind, name, kAttrKeys[rng_.Index(3)],
                                      kAttrValues[rng_.Index(3)]);
        (void)s;
        break;
      }
      case 4: {  // invalidate a replica
        if (replicas_.empty()) break;
        Status s = catalog_->InvalidateReplica(
            replicas_[rng_.Index(replicas_.size())]);
        (void)s;
        break;
      }
      case 5: {  // remove a replica
        if (replicas_.empty()) break;
        size_t pick = rng_.Index(replicas_.size());
        if (catalog_->RemoveReplica(replicas_[pick]).ok()) {
          replicas_.erase(replicas_.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 6: {  // remove a derivation
        if (derivations_.empty() || !rng_.Chance(0.4)) break;
        size_t pick = rng_.Index(derivations_.size());
        if (catalog_->RemoveDerivation(derivations_[pick]).ok()) {
          derivations_.erase(derivations_.begin() +
                             static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 7: {  // remove a dataset (only works once it has no refs)
        if (datasets_.size() < 2 || !rng_.Chance(0.3)) break;
        size_t pick = rng_.Index(datasets_.size());
        if (catalog_->RemoveDataset(datasets_[pick]).ok()) {
          datasets_.erase(datasets_.begin() + static_cast<ptrdiff_t>(pick));
        }
        break;
      }
      case 8: {  // size update
        Status s = catalog_->SetDatasetSize(
            datasets_[rng_.Index(datasets_.size())],
            rng_.UniformInt(0, 1 << 20));
        (void)s;
        break;
      }
      case 9: {  // re-annotate an existing dataset (index update path)
        Status s = catalog_->Annotate(
            "dataset", datasets_[rng_.Index(datasets_.size())],
            kAttrKeys[rng_.Index(3)], kAttrValues[rng_.Index(3)]);
        (void)s;
        break;
      }
    }
  }

  VirtualDataCatalog* catalog_;
  Rng rng_;
  std::vector<std::string> datasets_;
  std::vector<std::string> derivations_;
  std::vector<std::string> replicas_;
};

// Materialization computed from first principles (the replica table),
// independent of the catalog's incremental materialized set.
std::set<std::string> NaiveMaterialized(const VirtualDataCatalog& catalog) {
  std::set<std::string> out;
  for (const std::string& id : catalog.AllReplicaIds()) {
    Replica r = *catalog.GetReplica(id);
    if (r.valid) out.insert(r.dataset);
  }
  return out;
}

// Reference implementation: full scan over the public accessors,
// re-deriving every query condition without any index.
std::vector<std::string> NaiveFindDatasets(const VirtualDataCatalog& catalog,
                                           const DatasetQuery& query) {
  std::set<std::string> materialized = NaiveMaterialized(catalog);
  std::vector<std::string> out;
  for (const std::string& name : catalog.AllDatasetNames()) {
    Dataset ds = *catalog.GetDataset(name);
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      continue;
    }
    if (query.type && !catalog.TypeConforms(ds.type, *query.type)) {
      continue;
    }
    if (!MatchesAll(ds.annotations, query.predicates)) continue;
    bool mat = materialized.count(name) > 0;
    if (query.require_materialized && !mat) continue;
    if (query.only_virtual && mat) continue;
    out.push_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<std::string> NaiveFindDerivations(
    const VirtualDataCatalog& catalog, const DerivationQuery& query) {
  std::vector<std::string> out;
  for (const std::string& name : catalog.AllDerivationNames()) {
    Derivation dv = *catalog.GetDerivation(name);
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      continue;
    }
    if (!query.transformation.empty() &&
        query.transformation != dv.QualifiedTransformation() &&
        query.transformation != dv.transformation()) {
      continue;
    }
    if (!query.reads_dataset.empty()) {
      std::vector<std::string> ins = dv.InputDatasets();
      if (std::find(ins.begin(), ins.end(), query.reads_dataset) ==
          ins.end()) {
        continue;
      }
    }
    if (!query.writes_dataset.empty()) {
      std::vector<std::string> outs = dv.OutputDatasets();
      if (std::find(outs.begin(), outs.end(), query.writes_dataset) ==
          outs.end()) {
        continue;
      }
    }
    if (!MatchesAll(dv.annotations(), query.predicates)) continue;
    out.push_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

// Random query generator hitting every planner path: attribute
// postings, type index, materialized set, prefix range, full scan.
DatasetQuery RandomDatasetQuery(Rng* rng) {
  DatasetQuery q;
  if (rng->Chance(0.5)) {
    AttributePredicate p;
    p.key = kAttrKeys[rng->Index(3)];
    p.op = PredicateOp::kEq;
    p.operand = kAttrValues[rng->Index(3)];
    q.predicates.push_back(p);
    if (rng->Chance(0.3)) {
      AttributePredicate p2;
      p2.key = kAttrKeys[rng->Index(3)];
      p2.op = PredicateOp::kEq;
      p2.operand = kAttrValues[rng->Index(3)];
      q.predicates.push_back(p2);
    }
  }
  if (rng->Chance(0.4)) {
    q.type = DatasetType{};
    q.type->content = kContentTypes[rng->Index(3)];
  }
  if (rng->Chance(0.3)) q.name_prefix = rng->Chance(0.5) ? "ds" : "out";
  if (rng->Chance(0.3)) {
    if (rng->Chance(0.5)) {
      q.require_materialized = true;
    } else {
      q.only_virtual = true;
    }
  }
  return q;
}

DerivationQuery RandomDerivationQuery(Rng* rng, int steps) {
  DerivationQuery q;
  if (rng->Chance(0.5)) q.transformation = "base";
  if (rng->Chance(0.4)) {
    q.reads_dataset = "ds" + std::to_string(rng->UniformInt(0, steps - 1));
  }
  if (rng->Chance(0.4)) {
    q.writes_dataset = "out" + std::to_string(rng->UniformInt(0, steps - 1));
  }
  if (rng->Chance(0.3)) {
    AttributePredicate p;
    p.key = kAttrKeys[rng->Index(3)];
    p.op = PredicateOp::kEq;
    p.operand = kAttrValues[rng->Index(3)];
    q.predicates.push_back(p);
  }
  if (rng->Chance(0.2)) q.name_prefix = "dv";
  return q;
}

void ExpectQueriesMatchNaive(const VirtualDataCatalog& catalog,
                             uint64_t seed, int steps, int queries) {
  Rng rng(seed * 7919 + 17);
  for (int i = 0; i < queries; ++i) {
    DatasetQuery dq = RandomDatasetQuery(&rng);
    EXPECT_EQ(catalog.FindDatasets(dq), NaiveFindDatasets(catalog, dq))
        << "seed=" << seed << " query#" << i << " plan="
        << AccessPathName(catalog.ExplainFindDatasets(dq).path);
    DerivationQuery vq = RandomDerivationQuery(&rng, steps);
    EXPECT_EQ(catalog.FindDerivations(vq), NaiveFindDerivations(catalog, vq))
        << "seed=" << seed << " query#" << i << " plan="
        << AccessPathName(catalog.ExplainFindDerivations(vq).path);
  }
}

class DiscoveryTortureTest : public ::testing::TestWithParam<uint64_t> {};

// The indexed Find* calls agree with the naive reference on a live
// catalog after a long random mutation history.
TEST_P(DiscoveryTortureTest, IndexedQueriesMatchNaiveScan) {
  const uint64_t seed = GetParam();
  const int steps = 300;
  VirtualDataCatalog catalog("torture.org");
  ASSERT_TRUE(catalog.Open().ok());
  MutationDriver driver(&catalog, seed);
  driver.Run(steps);
  ExpectQueriesMatchNaive(catalog, seed, steps, 60);
}

// The same property holds for a catalog rebuilt from its journal: the
// indexes recovered by replay answer queries identically too.
TEST_P(DiscoveryTortureTest, ReplayedCatalogAnswersIdentically) {
  const uint64_t seed = GetParam();
  const int steps = 200;
  std::string path = ::testing::TempDir() + "/vdg_discovery_" +
                     std::to_string(seed) + ".log";
  std::remove(path.c_str());
  {
    VirtualDataCatalog catalog("torture.org",
                               std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    MutationDriver driver(&catalog, seed);
    driver.Run(steps);
  }
  VirtualDataCatalog reopened("torture.org",
                              std::make_unique<FileJournal>(path));
  Status reopen = reopened.Open();
  ASSERT_TRUE(reopen.ok()) << reopen;
  ExpectQueriesMatchNaive(reopened, seed, steps, 60);
  std::remove(path.c_str());
}

// Delta refresh must converge to the same index a forced full rebuild
// produces, no matter how mutations interleave with refreshes.
TEST_P(DiscoveryTortureTest, DeltaRefreshConvergesToFullRebuild) {
  const uint64_t seed = GetParam();
  VirtualDataCatalog a("a.org");
  VirtualDataCatalog b("b.org");
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());
  // Keep one source's window tight so the fallback path gets exercised.
  b.set_changelog_capacity(8);

  FederatedIndex delta("delta");
  FederatedIndex full("full");
  for (VirtualDataCatalog* c : {&a, &b}) {
    ASSERT_TRUE(delta.AddSource(c).ok());
    ASSERT_TRUE(full.AddSource(c).ok());
  }

  MutationDriver da(&a, seed);
  MutationDriver db(&b, seed + 1000);
  da.Run(40);
  db.Run(40);
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(delta.Refresh().ok());
    // Random-length mutation bursts: short ones fit b's window, long
    // ones overflow it and force the per-source rescan.
    MutationDriver ma(&a, seed + 10 + round);
    MutationDriver mb(&b, seed + 20 + round);
    ma.Run(static_cast<int>(rng.UniformInt(1, 6)));
    mb.Run(static_cast<int>(rng.UniformInt(1, 20)));
  }
  ASSERT_TRUE(delta.Refresh().ok());
  ASSERT_TRUE(full.RebuildAll().ok());

  ASSERT_EQ(delta.size(), full.size());
  // Element-wise equivalence over every entry both indexes hold.
  for (const char* kind : {"dataset", "transformation", "derivation"}) {
    for (VirtualDataCatalog* c : {&a, &b}) {
      std::vector<std::string> names = kind == std::string_view("dataset")
                                           ? c->AllDatasetNames()
                                           : kind == std::string_view(
                                                 "transformation")
                                                 ? c->AllTransformationNames()
                                                 : c->AllDerivationNames();
      for (const std::string& name : names) {
        std::vector<IndexEntry> lhs = delta.LookupName(kind, name);
        std::vector<IndexEntry> rhs = full.LookupName(kind, name);
        // Multi-authority hits carry no ordering contract.
        auto by_authority = [](const IndexEntry& x, const IndexEntry& y) {
          return x.authority < y.authority;
        };
        std::sort(lhs.begin(), lhs.end(), by_authority);
        std::sort(rhs.begin(), rhs.end(), by_authority);
        ASSERT_EQ(lhs.size(), rhs.size()) << kind << " " << name;
        for (size_t i = 0; i < lhs.size(); ++i) {
          EXPECT_EQ(lhs[i].authority, rhs[i].authority);
          EXPECT_EQ(lhs[i].type.ToString(), rhs[i].type.ToString());
          EXPECT_EQ(lhs[i].materialized, rhs[i].materialized)
              << kind << " " << name;
          EXPECT_TRUE(lhs[i].annotations == rhs[i].annotations)
              << kind << " " << name;
        }
      }
    }
  }
  // Both paths ran at least once across the six rounds.
  EXPECT_GT(delta.refresh_stats().delta_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryTortureTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace vdg
