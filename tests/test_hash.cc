#include "common/hash.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a 64-bit reference values.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, DifferentInputsDiffer) {
  EXPECT_NE(Fnv1a64("derivation-1"), Fnv1a64("derivation-2"));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      Sha256::HexDigest(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      Sha256::HexDigest("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::HexDigest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(
      Sha256::HexDigest(input),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Property: incremental hashing over any chunking equals one-shot.
class Sha256Chunking : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256Chunking, IncrementalEqualsOneShot) {
  std::string input;
  for (int i = 0; i < 300; ++i) {
    input += "chunk-" + std::to_string(i) + ";";
  }
  std::string expected = Sha256::HexDigest(input);

  size_t chunk = GetParam();
  Sha256 hasher;
  for (size_t pos = 0; pos < input.size(); pos += chunk) {
    hasher.Update(std::string_view(input).substr(pos, chunk));
  }
  EXPECT_EQ(ToHex(hasher.Finish()), expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256Chunking,
                         ::testing::Values(1, 3, 55, 56, 63, 64, 65, 127,
                                           1000));

TEST(Sha256Test, BoundaryLengthsAroundPadding) {
  // 55/56/64 bytes hit the padding edge cases.
  for (size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::string input(n, 'x');
    Sha256 a;
    a.Update(input);
    EXPECT_EQ(ToHex(a.Finish()), Sha256::HexDigest(input)) << n;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::HexDigest("entry-1"), Sha256::HexDigest("entry-2"));
}

TEST(ToHexTest, EncodesBytes) {
  uint8_t bytes[] = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(ToHex(bytes, 4), "00ff10ab");
}

TEST(Crc32Test, KnownVectors) {
  // IEEE 802.3 reference values (zlib-compatible).
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string record = "RP|replica-7|dataset-a|east|se0|1048576";
  uint32_t clean = Crc32(record);
  for (size_t i = 0; i < record.size(); ++i) {
    std::string flipped = record;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(Crc32(flipped), clean) << "flip at byte " << i;
  }
}

TEST(Crc32Test, DetectsTruncation) {
  std::string record = "IV|inv-1|dv-1|east|host-3";
  uint32_t clean = Crc32(record);
  for (size_t len = 0; len < record.size(); ++len) {
    EXPECT_NE(Crc32(std::string_view(record).substr(0, len)), clean);
  }
}

}  // namespace
}  // namespace vdg
