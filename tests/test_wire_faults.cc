// Chaos tests for the fault-hardened wire federation path: a seeded
// FaultyChannel perturbs the byte stream under WireCatalogClient while
// ResilientCatalogClient turns resets, corruption, refusals, and
// drains into — at worst — latency. The through-line: under injected
// faults the *observable catalog state* ends bit-identical to a
// fault-free run (no lost work, no double-applied batches), and when
// every replica is down the cache degrades within an explicit
// staleness bound instead of lying forever.
//
// Every test seeds its injector from VDG_FAULT_SEED (default 42), so a
// CI multi-seed failure reproduces locally by exporting the seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/client.h"
#include "federation/faulty_transport.h"
#include "federation/remote_cache.h"
#include "federation/resilient_client.h"
#include "federation/server.h"

namespace vdg {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("VDG_FAULT_SEED");
  return env ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 42u;
}

constexpr const char* kStepTr = R"(
TR step( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/step";
}
)";

/// d0 -> d1 -> ... -> dN linear chain (d0 raw), the Figure 3 shape.
std::unique_ptr<VirtualDataCatalog> ChainCatalog(int links) {
  auto catalog = std::make_unique<VirtualDataCatalog>("chain.org");
  EXPECT_TRUE(catalog->Open().ok());
  EXPECT_TRUE(catalog->ImportVdl(kStepTr).ok());
  EXPECT_TRUE(catalog->ImportVdl("DS d0 : Dataset size=\"1024\";").ok());
  for (int i = 0; i < links; ++i) {
    std::string vdl = "DV l" + std::to_string(i + 1) +
                      "->step( out=@{output:\"d" + std::to_string(i + 1) +
                      "\"}, in=@{input:\"d" + std::to_string(i) + "\"} );";
    EXPECT_TRUE(catalog->ImportVdl(vdl).ok());
  }
  return catalog;
}

/// A two-replica wire deployment over ONE backend catalog: two
/// CatalogServers sharing the batch-dedup window (the storage-level
/// model), plus a ResilientCatalogClient dialing both through the
/// same seeded fault injector.
struct Replicated {
  std::unique_ptr<VirtualDataCatalog> catalog;
  std::shared_ptr<BatchDedupRegistry> dedup;
  std::unique_ptr<CatalogServer> a;
  std::unique_ptr<CatalogServer> b;
  std::shared_ptr<FaultInjector> injector;
  std::unique_ptr<ResilientCatalogClient> client;
};

Replicated MakeReplicated(const FaultProfile& profile, uint64_t seed,
                          ResilientOptions ropts = {}) {
  Replicated r;
  r.catalog = ChainCatalog(8);
  r.dedup = std::make_shared<BatchDedupRegistry>();
  ServerOptions sopts;
  sopts.batch_dedup = r.dedup;
  auto backend =
      std::make_shared<InProcessCatalogClient>(r.catalog.get(), false);
  r.a = std::make_unique<CatalogServer>(backend, sopts);
  r.b = std::make_unique<CatalogServer>(backend, sopts);
  r.injector = std::make_shared<FaultInjector>(profile, seed);
  std::vector<ResilientEndpoint> endpoints;
  for (CatalogServer* server : {r.a.get(), r.b.get()}) {
    ResilientEndpoint ep;
    ep.name = server == r.a.get() ? "replica-a" : "replica-b";
    ep.connect = [server, injector = r.injector]()
        -> Result<std::shared_ptr<CatalogClient>> {
      // Keep the wire deadline well under the retry budget: a
      // poisoned stream (corrupted length prefix) hangs until the
      // deadline, and the resilient layer needs budget left to
      // reconnect and retry.
      WireClientOptions copts;
      copts.default_deadline = std::chrono::milliseconds(250);
      auto c = ConnectFaulty(server, injector, copts);
      if (!c.ok()) return c.status();
      return std::static_pointer_cast<CatalogClient>(*c);
    };
    endpoints.push_back(std::move(ep));
  }
  ropts.seed = seed;
  r.client =
      std::make_unique<ResilientCatalogClient>(std::move(endpoints), ropts);
  return r;
}

/// The FIG3 lineage walk: d8 back to the raw input, one
/// GetProvenanceStep per hop. Returns the hop count (8 for the chain).
int ChainWalk(CatalogClient& client) {
  std::string cursor = "d8";
  int hops = 0;
  while (true) {
    Result<ProvenanceStep> step = client.GetProvenanceStep(cursor);
    EXPECT_TRUE(step.ok()) << step.status();
    if (!step.ok() || step->producer.empty()) break;
    EXPECT_TRUE(step->derivation.has_value());
    if (!step->derivation.has_value()) break;
    std::vector<std::string> inputs = step->derivation->InputDatasets();
    EXPECT_FALSE(inputs.empty());
    if (inputs.empty()) break;
    cursor = inputs.front();
    if (++hops >= 32) break;
  }
  return hops;
}

/// The executor's provenance write-back shape, shipped as one tokened
/// batch: a replica, an invocation consuming it, an annotation on the
/// assigned invocation id.
Result<BatchResult> WriteBack(CatalogClient& client, const std::string& site) {
  Replica rep;
  rep.dataset = "d1";
  rep.site = site;
  rep.size_bytes = 1024;
  Invocation inv;
  inv.derivation = "l1";
  inv.context.site = site;
  std::vector<CatalogMutation> batch;
  batch.push_back(CatalogMutation::AddReplica(rep));
  batch.push_back(CatalogMutation::RecordInvocation(inv, {0}));
  batch.push_back(
      CatalogMutation::AnnotateAssigned("invocation", 1, "note", "fig3"));
  return client.ApplyBatch(batch);
}

// ------------------------- fault determinism -------------------------

TEST(WireFaults, SameSeedReplaysTheIdenticalFaultSchedule) {
  FaultProfile profile;
  profile.reset_rate = 0.1;
  profile.corrupt_rate = 0.1;
  profile.short_write_rate = 0.2;

  auto run = [&](uint64_t seed) {
    Replicated r = MakeReplicated(profile, seed);
    ChainWalk(*r.client);
    const FaultStats& s = r.injector->stats();
    return std::vector<uint64_t>{s.resets.load(), s.corruptions.load(),
                                 s.short_writes.load(),
                                 s.connects_refused.load()};
  };
  const uint64_t seed = FaultSeed();
  EXPECT_EQ(run(seed), run(seed));
}

// --------------------- short writes (regression) ---------------------

// Regression for the frame writer treating a short write as success:
// with EVERY Send accepting only a prefix, each frame takes several
// Send calls, and one dropped tail would hang or corrupt the stream.
TEST(WireFaults, ShortWritesAreLoopedUntilTheFrameFlushes) {
  auto catalog = ChainCatalog(4);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get(), false));
  FaultProfile profile;
  profile.short_write_rate = 1.0;
  auto injector = std::make_shared<FaultInjector>(profile, FaultSeed());
  auto client = ConnectFaulty(&server, injector);
  ASSERT_TRUE(client.ok()) << client.status();

  for (int i = 0; i < 25; ++i) {
    Result<Dataset> ds = (*client)->GetDataset("d" + std::to_string(i % 4));
    ASSERT_TRUE(ds.ok()) << ds.status();
  }
  Dataset ds;
  ds.name = "short-write-ds";
  ds.size_bytes = 512;
  ASSERT_TRUE((*client)->DefineDataset(ds).ok());
  EXPECT_TRUE(catalog->HasDataset("short-write-ds"));
  // The fault actually fired — many times, since every frame needs
  // multiple Send calls to flush.
  EXPECT_GT(injector->stats().short_writes.load(), 25u);
  EXPECT_EQ(server.stats().protocol_errors.load(), 0u);
}

// ----------------------- retry-safety discipline ---------------------

TEST(WireFaults, LostResponseSurfacesRetryUnsafeToTheBareClient) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.handler_delay = std::chrono::microseconds(150'000);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get(), false), opts);
  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  auto client = WireCatalogClient::Connect(server.get(), copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();  // drop the handshake's counters

  // Kill the connection under the client while a slow mutation is in
  // flight: the send completed, so the client cannot know whether it
  // executed — the failure must be marked retry-unsafe.
  std::atomic<bool> got_status{false};
  Status in_flight;
  std::thread caller([&] {
    in_flight = (*client)->SetDatasetSize("d1", 9999);
    got_status = true;
  });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server->Shutdown();
  caller.join();
  ASSERT_TRUE(got_status.load());
  ASSERT_FALSE(in_flight.ok());
  EXPECT_TRUE(in_flight.IsUnavailable()) << in_flight;
  EXPECT_FALSE(in_flight.retry_safe()) << in_flight;

  // A call issued AFTER the break never went out at all, so it stays
  // retry-safe: only the ambiguous in-flight failure carries the mark.
  Result<uint64_t> after = (*client)->Version();
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsUnavailable());
  EXPECT_TRUE(after.status().retry_safe()) << after.status();
}

TEST(WireFaults, ResilientClientFailsMutationsFastWhenOutcomeIsUnknown) {
  // The connection breaks while a mutation is in flight: the request
  // reached the server, the reply never arrives. The resilient client
  // must NOT blindly re-send it — it surfaces the retry-unsafe
  // Unavailable after the first ambiguous attempt.
  ResilientOptions ropts;
  ropts.max_attempts = 6;
  ropts.backoff_base = std::chrono::milliseconds(1);
  Replicated r = MakeReplicated(FaultProfile{}, FaultSeed(), ropts);
  ASSERT_TRUE(r.client->HasDataset("d1").ok());  // warm the connection

  r.a->set_handler_delay(std::chrono::microseconds(150'000));
  r.b->set_handler_delay(std::chrono::microseconds(150'000));
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    r.a->Shutdown();
    r.b->Shutdown();
  });
  Status st = r.client->SetDatasetSize("d1", 2048);
  killer.join();
  EXPECT_TRUE(st.IsUnavailable()) << st;
  EXPECT_FALSE(st.retry_safe());
  EXPECT_EQ(r.client->stats().mutation_fail_fast, 1u);
  EXPECT_EQ(r.client->stats().retries, 0u);  // never re-sent
}

// -------------------- reconnect / failover / breaker -----------------

TEST(WireFaults, ReadsSurviveResetsAndCorruptionAcrossReplicas) {
  FaultProfile profile;
  profile.reset_rate = 0.05;
  profile.corrupt_rate = 0.05;
  profile.recv_corrupt_rate = 0.02;
  ResilientOptions ropts;
  ropts.backoff_base = std::chrono::milliseconds(1);
  ropts.max_attempts = 12;
  ropts.retry_budget = std::chrono::milliseconds(10'000);
  Replicated r = MakeReplicated(profile, FaultSeed(), ropts);

  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(ChainWalk(*r.client), 8);
  }
  // The schedule actually injected faults, and the client absorbed
  // every one of them.
  EXPECT_GT(r.injector->stats().total(), 0u);
  EXPECT_GT(r.client->stats().retries + r.client->stats().reconnects, 0u);
}

TEST(WireFaults, AffinityRoutesAroundADeadEndpointAfterOneFailover) {
  auto catalog = ChainCatalog(4);
  auto backend =
      std::make_shared<InProcessCatalogClient>(catalog.get(), false);
  CatalogServer healthy(backend);
  CatalogServer doomed(backend);

  FaultProfile refuse_all;
  refuse_all.refuse_connect_rate = 1.0;
  auto dead_injector =
      std::make_shared<FaultInjector>(refuse_all, FaultSeed());
  auto live_injector =
      std::make_shared<FaultInjector>(FaultProfile{}, FaultSeed());

  ResilientEndpoint dead;
  dead.name = "dead";
  dead.connect = [&doomed, dead_injector]()
      -> Result<std::shared_ptr<CatalogClient>> {
    auto c = ConnectFaulty(&doomed, dead_injector);
    if (!c.ok()) return c.status();
    return std::static_pointer_cast<CatalogClient>(*c);
  };
  ResilientEndpoint live;
  live.name = "live";
  live.connect = [&healthy, live_injector]()
      -> Result<std::shared_ptr<CatalogClient>> {
    auto c = ConnectFaulty(&healthy, live_injector);
    if (!c.ok()) return c.status();
    return std::static_pointer_cast<CatalogClient>(*c);
  };

  ResilientOptions ropts;
  ropts.backoff_base = std::chrono::milliseconds(1);
  std::vector<ResilientEndpoint> eps;
  eps.push_back(std::move(dead));  // listed FIRST: the natural start
  eps.push_back(std::move(live));
  ResilientCatalogClient client(std::move(eps), ropts);

  // Every read succeeds; the first call pays one failover off the dead
  // endpoint and connection affinity pins the rest to the live one.
  for (int i = 0; i < 20; ++i) {
    Result<bool> has = client.HasDataset("d1");
    ASSERT_TRUE(has.ok()) << has.status();
    EXPECT_TRUE(*has);
  }
  EXPECT_GE(client.stats().failovers, 1u);
  uint64_t refusals = dead_injector->stats().connects_refused.load();
  EXPECT_GT(refusals, 0u);
  // Affinity means the dead endpoint stops being dialed entirely.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.HasDataset("d1").ok());
  }
  EXPECT_EQ(dead_injector->stats().connects_refused.load(), refusals);
}

TEST(WireFaults, CircuitBreakerOpensAndShortCircuitsAfterRepeatedFailures) {
  auto catalog = ChainCatalog(2);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get(), false));
  FaultProfile refuse_all;
  refuse_all.refuse_connect_rate = 1.0;
  auto injector = std::make_shared<FaultInjector>(refuse_all, FaultSeed());

  ResilientEndpoint ep;
  ep.name = "only-and-dead";
  ep.connect = [&server, injector]()
      -> Result<std::shared_ptr<CatalogClient>> {
    auto c = ConnectFaulty(&server, injector);
    if (!c.ok()) return c.status();
    return std::static_pointer_cast<CatalogClient>(*c);
  };
  ResilientOptions ropts;
  ropts.max_attempts = 6;
  ropts.backoff_base = std::chrono::milliseconds(1);
  ropts.breaker_threshold = 3;
  ropts.breaker_cooldown = std::chrono::minutes(10);  // never half-opens here
  std::vector<ResilientEndpoint> eps;
  eps.push_back(std::move(ep));
  ResilientCatalogClient client(std::move(eps), ropts);

  // One call burns its attempts against the dead endpoint: after
  // `breaker_threshold` consecutive dial failures the breaker opens
  // and the remaining attempts short-circuit instead of re-dialing.
  Result<bool> has = client.HasDataset("d1");
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(has.status().IsUnavailable());
  EXPECT_EQ(client.breaker_state(0), BreakerState::kOpen);
  EXPECT_GE(client.stats().breaker_opens, 1u);

  // With the breaker open, further calls never dial at all.
  uint64_t refusals = injector->stats().connects_refused.load();
  EXPECT_FALSE(client.HasDataset("d1").ok());
  EXPECT_EQ(injector->stats().connects_refused.load(), refusals);
  EXPECT_GE(client.stats().breaker_short_circuits, 1u);
}

TEST(WireFaults, HalfOpenProbeClosesTheBreakerOnceTheEndpointRecovers) {
  auto catalog = ChainCatalog(2);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get(), false));
  std::atomic<bool> endpoint_up{false};

  ResilientEndpoint ep;
  ep.name = "recovering";
  ep.connect = [&]() -> Result<std::shared_ptr<CatalogClient>> {
    if (!endpoint_up.load()) {
      return Status::Unavailable("endpoint down for maintenance");
    }
    auto c = WireCatalogClient::Connect(&server);
    if (!c.ok()) return c.status();
    return std::static_pointer_cast<CatalogClient>(*c);
  };
  ResilientOptions ropts;
  ropts.max_attempts = 3;
  ropts.backoff_base = std::chrono::milliseconds(1);
  ropts.breaker_threshold = 2;
  ropts.breaker_cooldown = std::chrono::milliseconds(30);
  std::vector<ResilientEndpoint> eps;
  eps.push_back(std::move(ep));
  ResilientCatalogClient client(std::move(eps), ropts);

  EXPECT_FALSE(client.HasDataset("d1").ok());  // opens the breaker
  EXPECT_EQ(client.breaker_state(0), BreakerState::kOpen);

  // The endpoint comes back; once the cooldown elapses the next call
  // is allowed through as a half-open probe, succeeds, and closes the
  // breaker for good.
  endpoint_up = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Result<bool> has = client.HasDataset("d1");
  ASSERT_TRUE(has.ok()) << has.status();
  EXPECT_TRUE(*has);
  EXPECT_EQ(client.breaker_state(0), BreakerState::kClosed);
}

// ------------------------ idempotent ApplyBatch ----------------------

TEST(WireFaults, TokenedBatchDedupsAcrossRetriesAndReplicas) {
  Replicated r = MakeReplicated(FaultProfile{}, FaultSeed());

  // Issue the same tokened batch against BOTH replicas directly — the
  // failover-retry shape with the ambiguity made explicit.
  auto ca = WireCatalogClient::Connect(r.a.get());
  auto cb = WireCatalogClient::Connect(r.b.get());
  ASSERT_TRUE(ca.ok() && cb.ok());

  Replica rep;
  rep.dataset = "d2";
  rep.site = "east";
  rep.size_bytes = 2048;
  std::vector<CatalogMutation> batch;
  batch.push_back(CatalogMutation::AddReplica(rep));
  BatchOptions opts;
  opts.idempotency_token = "tok-failover-1";

  Result<BatchResult> first = (*ca)->ApplyBatch(batch, opts);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<BatchResult> second = (*cb)->ApplyBatch(batch, opts);
  ASSERT_TRUE(second.ok()) << second.status();

  // The retry was answered from the shared window: identical assigned
  // ids, one replica record in the catalog, one dedup hit counted.
  EXPECT_EQ(first->assigned_ids, second->assigned_ids);
  EXPECT_EQ(r.catalog->ReplicasOf("d2").size(), 1u);
  EXPECT_EQ(r.dedup->hits(), 1u);
  EXPECT_EQ(r.b->stats().batch_dedup_hits.load(), 1u);
}

// --------------------------- acceptance ------------------------------

// The ISSUE's acceptance bar: under seeded resets + corruption over
// two replica endpoints, the FIG3 chain walk and the executor
// write-back complete with zero client-visible hard failures, and the
// catalog ends content-identical to a fault-free run — same version,
// same replicas, same invocations (no lost and no double-applied
// work).
TEST(WireFaults, FaultedRunEndsBitIdenticalToFaultFreeRun) {
  auto run = [&](const FaultProfile& profile) {
    ResilientOptions ropts;
    ropts.backoff_base = std::chrono::milliseconds(1);
    ropts.max_attempts = 12;
    ropts.retry_budget = std::chrono::milliseconds(10'000);
    Replicated r = MakeReplicated(profile, FaultSeed(), ropts);
    EXPECT_EQ(ChainWalk(*r.client), 8);
    Result<BatchResult> wb = WriteBack(*r.client, "east");
    EXPECT_TRUE(wb.ok()) << wb.status();
    EXPECT_EQ(ChainWalk(*r.client), 8);
    struct Snapshot {
      uint64_t version;
      size_t replicas;
      std::vector<Invocation> invocations;
      uint64_t faults;
    };
    return Snapshot{r.catalog->version(), r.catalog->ReplicasOf("d1").size(),
                    r.catalog->InvocationsOf("l1"),
                    r.injector->stats().total()};
  };

  auto clean = run(FaultProfile{});
  FaultProfile faulty;
  faulty.reset_rate = 0.05;
  faulty.corrupt_rate = 0.05;
  faulty.short_write_rate = 0.1;
  auto chaos = run(faulty);

  EXPECT_EQ(clean.faults, 0u);
  EXPECT_GT(chaos.faults, 0u);
  EXPECT_EQ(chaos.version, clean.version);
  EXPECT_EQ(chaos.replicas, clean.replicas);
  ASSERT_EQ(chaos.invocations.size(), clean.invocations.size());
  for (size_t i = 0; i < clean.invocations.size(); ++i) {
    EXPECT_EQ(chaos.invocations[i].derivation, clean.invocations[i].derivation);
    EXPECT_EQ(chaos.invocations[i].context.site,
              clean.invocations[i].context.site);
    EXPECT_EQ(chaos.invocations[i].produced_replicas.size(),
              clean.invocations[i].produced_replicas.size());
    EXPECT_EQ(chaos.invocations[i].annotations.GetString("note"),
              clean.invocations[i].annotations.GetString("note"));
  }
}

// ----------------------- graceful degradation ------------------------

TEST(WireFaults, AllEndpointsDownServesCachedReadsWithinTheStalenessBound) {
  auto catalog = ChainCatalog(4);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get(), false));

  ResilientEndpoint ep;
  ep.name = "only";
  CatalogServer* raw = server.get();
  ep.connect = [raw]() -> Result<std::shared_ptr<CatalogClient>> {
    auto c = WireCatalogClient::Connect(raw);
    if (!c.ok()) return c.status();
    return std::static_pointer_cast<CatalogClient>(*c);
  };
  ResilientOptions ropts;
  ropts.max_attempts = 2;
  ropts.retry_budget = std::chrono::milliseconds(40);
  ropts.backoff_base = std::chrono::milliseconds(1);
  std::vector<ResilientEndpoint> eps;
  eps.push_back(std::move(ep));
  auto resilient =
      std::make_shared<ResilientCatalogClient>(std::move(eps), ropts);

  DegradedReadOptions degraded;
  degraded.enabled = true;
  degraded.staleness_bound = std::chrono::milliseconds(250);
  CachingCatalogClient cache(resilient, 4096, degraded);

  // Warm the cache while the endpoint is healthy.
  ASSERT_TRUE(cache.GetDataset("d1").ok());
  ASSERT_TRUE(cache.GetDataset("d2").ok());
  EXPECT_FALSE(cache.upstream_down());

  // Take the only endpoint down for good.
  server->Shutdown();

  // A pass-through probe discovers the outage and starts the clock.
  EXPECT_TRUE(cache.Version().status().IsUnavailable());
  EXPECT_TRUE(cache.upstream_down());

  // Within the bound: cached reads keep serving, counted as degraded.
  Result<Dataset> d1 = cache.GetDataset("d1");
  ASSERT_TRUE(d1.ok()) << d1.status();
  EXPECT_EQ(d1->name, "d1");
  EXPECT_GE(cache.stats().degraded_hits, 1u);

  // Past the bound: the same cached read is refused, not served stale.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  Result<Dataset> expired = cache.GetDataset("d2");
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsUnavailable()) << expired.status();
  EXPECT_GE(cache.stats().stale_rejections, 1u);

  // A miss never serves from a dead upstream either.
  EXPECT_FALSE(cache.GetDataset("d3").ok());
}

}  // namespace
}  // namespace vdg
