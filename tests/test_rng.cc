#include "common/rng.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool diverged = false;
  for (int i = 0; i < 20 && !diverged; ++i) {
    diverged = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ExponentialIsPositiveWithRoughMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, ClampedNormalRespectsFloor) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.ClampedNormal(1.0, 5.0, 0.25), 0.25);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  const size_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    size_t r = rng.Zipf(n, 1.0);
    ASSERT_LT(r, n);
    ++counts[r];
  }
  // Rank 0 must dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(19);
  const size_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Zipf(n, 0.0)];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], 700);
    EXPECT_LT(counts[i], 1300);
  }
}

TEST(RngTest, ZipfHandlesEdgeCases) {
  Rng rng(23);
  EXPECT_EQ(rng.Zipf(0, 1.0), 0u);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(31);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 200; ++i) seen[rng.Index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace vdg
