#include "provenance/provenance.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

// Diamond + tail:
//   raw -> (dvA) -> mid1 --+
//   raw -> (dvB) -> mid2 --+-> (dvC) -> final -> (dvD) -> report
constexpr const char* kDiamondVdl = R"(
TR step( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/step";
}
TR join( output out, input lhs, input rhs ) {
  argument l = "-l "${input:lhs};
  argument r = "-r "${input:rhs};
  argument stdout = ${output:out};
  exec = "/bin/join";
}
DS raw : Dataset size="1000";
DV dvA->step( out=@{output:"mid1"}, in=@{input:"raw"} );
DV dvB->step( out=@{output:"mid2"}, in=@{input:"raw"} );
DV dvC->join( out=@{output:"final"}, lhs=@{input:"mid1"},
              rhs=@{input:"mid2"} );
DV dvD->step( out=@{output:"report"}, in=@{input:"final"} );
)";

class ProvenanceTest : public ::testing::Test {
 protected:
  ProvenanceTest() : catalog_("prov.org"), tracker_(catalog_) {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(kDiamondVdl).ok());
  }

  void AddReplicaFor(const std::string& dataset, const std::string& site) {
    Replica r;
    r.dataset = dataset;
    r.site = site;
    r.size_bytes = 10;
    ASSERT_TRUE(catalog_.AddReplica(r).ok());
  }

  void AddInvocationFor(const std::string& derivation, SimTime start) {
    Invocation iv;
    iv.derivation = derivation;
    iv.context.site = "uchicago";
    iv.context.host = "n0";
    iv.start_time = start;
    iv.duration_s = 5;
    ASSERT_TRUE(catalog_.RecordInvocation(iv).ok());
  }

  VirtualDataCatalog catalog_;
  ProvenanceTracker tracker_;
};

TEST_F(ProvenanceTest, LineageOfRawInputIsLeaf) {
  Result<LineageNode> node = tracker_.Lineage("raw");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->dataset, "raw");
  EXPECT_TRUE(node->derivation.empty());
  EXPECT_TRUE(node->inputs.empty());
  EXPECT_EQ(LineageDepth(*node), 0);
}

TEST_F(ProvenanceTest, LineageTreeShape) {
  Result<LineageNode> node = tracker_.Lineage("report");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->derivation, "dvD");
  EXPECT_EQ(node->transformation, "step");
  ASSERT_EQ(node->inputs.size(), 1u);
  const LineageNode& final_node = node->inputs[0];
  EXPECT_EQ(final_node.derivation, "dvC");
  ASSERT_EQ(final_node.inputs.size(), 2u);
  // The diamond duplicates raw in both branches (tree, not DAG).
  EXPECT_EQ(CountLineageNodes(*node), 6u);
  EXPECT_EQ(LineageDepth(*node), 3);
}

TEST_F(ProvenanceTest, LineageDepthLimit) {
  Result<LineageNode> node = tracker_.Lineage("report", /*max_depth=*/1);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->derivation, "dvD");
  ASSERT_EQ(node->inputs.size(), 1u);
  // The child's producer is named but not expanded further.
  EXPECT_EQ(node->inputs[0].derivation, "dvC");
  EXPECT_TRUE(node->inputs[0].inputs.empty());
}

TEST_F(ProvenanceTest, LineageUnknownDatasetFails) {
  EXPECT_TRUE(tracker_.Lineage("ghost").status().IsNotFound());
}

TEST_F(ProvenanceTest, RenderLineageMentionsEveryLink) {
  Result<LineageNode> node = tracker_.Lineage("final");
  ASSERT_TRUE(node.ok());
  std::string text = RenderLineage(*node);
  EXPECT_NE(text.find("final"), std::string::npos);
  EXPECT_NE(text.find("dvC"), std::string::npos);
  EXPECT_NE(text.find("mid1"), std::string::npos);
  EXPECT_NE(text.find("[raw input]"), std::string::npos);
  EXPECT_NE(text.find("never executed: virtual"), std::string::npos);
}

TEST_F(ProvenanceTest, AncestorsAndDescendants) {
  Result<std::set<std::string>> ancestors = tracker_.Ancestors("final");
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(*ancestors, (std::set<std::string>{"mid1", "mid2", "raw"}));

  Result<std::set<std::string>> descendants = tracker_.Descendants("raw");
  ASSERT_TRUE(descendants.ok());
  EXPECT_EQ(*descendants,
            (std::set<std::string>{"mid1", "mid2", "final", "report"}));

  EXPECT_TRUE(tracker_.Descendants("report")->empty());
  EXPECT_TRUE(tracker_.Ancestors("raw")->empty());
}

TEST_F(ProvenanceTest, RawSources) {
  Result<std::set<std::string>> sources = tracker_.RawSources("report");
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(*sources, std::set<std::string>{"raw"});
  // A raw dataset is its own source.
  EXPECT_EQ(*tracker_.RawSources("raw"), std::set<std::string>{"raw"});
}

TEST_F(ProvenanceTest, AuditTrailIsChronological) {
  AddInvocationFor("dvA", 10);
  AddInvocationFor("dvB", 5);
  AddInvocationFor("dvC", 20);
  AddInvocationFor("dvD", 30);
  Result<std::vector<Invocation>> trail = tracker_.AuditTrail("report");
  ASSERT_TRUE(trail.ok());
  ASSERT_EQ(trail->size(), 4u);
  EXPECT_EQ((*trail)[0].derivation, "dvB");
  EXPECT_EQ((*trail)[1].derivation, "dvA");
  EXPECT_EQ((*trail)[3].derivation, "dvD");
}

TEST_F(ProvenanceTest, PlanInvalidationListsDownstream) {
  AddReplicaFor("mid1", "s1");
  AddReplicaFor("final", "s1");
  Result<InvalidationReport> report = tracker_.PlanInvalidation("raw");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->affected_datasets.size(), 4u);
  EXPECT_EQ(report->derivations_to_rerun,
            (std::vector<std::string>{"dvA", "dvB", "dvC", "dvD"}));
  EXPECT_EQ(report->invalidated_replicas.size(), 2u);
  // Pure query: nothing actually invalidated.
  EXPECT_TRUE(catalog_.IsMaterialized("mid1"));
}

TEST_F(ProvenanceTest, InvalidateCascadesReplicas) {
  AddReplicaFor("mid1", "s1");
  AddReplicaFor("mid2", "s1");
  AddReplicaFor("final", "s1");
  AddReplicaFor("raw", "s1");  // the faulty source itself stays valid
  Result<InvalidationReport> report =
      tracker_.Invalidate("raw", &catalog_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(catalog_.IsMaterialized("mid1"));
  EXPECT_FALSE(catalog_.IsMaterialized("mid2"));
  EXPECT_FALSE(catalog_.IsMaterialized("final"));
  EXPECT_TRUE(catalog_.IsMaterialized("raw"));
}

TEST_F(ProvenanceTest, InvalidateRejectsForeignCatalog) {
  VirtualDataCatalog other("other.org");
  ASSERT_TRUE(other.Open().ok());
  EXPECT_FALSE(tracker_.Invalidate("raw", &other).ok());
  EXPECT_FALSE(tracker_.Invalidate("raw", nullptr).ok());
}

TEST_F(ProvenanceTest, FullyMaterializedRequiresWholeChain) {
  AddReplicaFor("raw", "s");
  AddReplicaFor("mid1", "s");
  AddReplicaFor("mid2", "s");
  AddReplicaFor("final", "s");
  EXPECT_FALSE(*tracker_.FullyMaterialized("report"));  // report missing
  AddReplicaFor("report", "s");
  EXPECT_TRUE(*tracker_.FullyMaterialized("report"));
  EXPECT_TRUE(*tracker_.FullyMaterialized("final"));
}

TEST_F(ProvenanceTest, CycleDetection) {
  // Construct a cycle directly: x -> (loopA) -> y -> (loopB) -> x.
  // (Possible because x is defined first as a plain dataset.)
  ASSERT_TRUE(catalog_.ImportVdl(R"(
DS x : Dataset;
DV loopA->step( out=@{output:"y"}, in=@{input:"x"} );
DV loopB->step( out=@{output:"x"}, in=@{input:"y"} );
)")
                  .ok());
  Status lineage = tracker_.Lineage("x").status();
  EXPECT_EQ(lineage.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ProvenanceTest, ExpansionChildInvocationsSurfaceOnParent) {
  // Record an invocation against a synthesized child derivation.
  Derivation child("dvC.c0", "join");
  ASSERT_TRUE(
      child.AddArg(ActualArg::DatasetRef("out", "final", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      child.AddArg(ActualArg::DatasetRef("lhs", "mid1", ArgDirection::kIn))
          .ok());
  ASSERT_TRUE(
      child.AddArg(ActualArg::DatasetRef("rhs", "mid2", ArgDirection::kIn))
          .ok());
  ASSERT_TRUE(catalog_.DefineDerivation(child).ok());
  AddInvocationFor("dvC.c0", 11);
  Result<LineageNode> node = tracker_.Lineage("final");
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->invocations.size(), 1u);
  EXPECT_EQ(node->invocations[0].derivation, "dvC.c0");
}

}  // namespace
}  // namespace vdg
