#include "common/status.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::NotFound("x").message(), "x");
  EXPECT_EQ(Status::InvalidArgument("y").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::TypeError("t").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("p").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("i").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::PermissionDenied("d").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::FailedPrecondition("f").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::AlreadyExists("a").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unavailable("u").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("z").code(), StatusCode::kInternal);
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status::NotFound("").IsAlreadyExists());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::TypeError("").IsTypeError());
  EXPECT_TRUE(Status::ParseError("").IsParseError());
  EXPECT_TRUE(Status::PermissionDenied("").IsPermissionDenied());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 9);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  VDG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VDG_ASSIGN_OR_RETURN(int h, Half(x));
  VDG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace helpers

TEST(StatusTest, RetrySafetyMarkerSurvivesTheMessage) {
  // Default: every status is retry-safe.
  EXPECT_TRUE(Status::OK().retry_safe());
  EXPECT_TRUE(Status::Unavailable("conn reset").retry_safe());
  EXPECT_TRUE(Status::NotFound("x").retry_safe());

  Status unsafe = Status::UnavailableRetryUnsafe("reply lost");
  EXPECT_TRUE(unsafe.IsUnavailable());
  EXPECT_FALSE(unsafe.retry_safe());

  Status marked =
      Status::MarkRetryUnsafe(Status::DeadlineExceeded("expired"));
  EXPECT_TRUE(marked.IsDeadlineExceeded());
  EXPECT_FALSE(marked.retry_safe());

  // Idempotent: marking twice does not stack markers.
  Status twice = Status::MarkRetryUnsafe(marked);
  EXPECT_FALSE(twice.retry_safe());
  EXPECT_EQ(twice.message(), marked.message());

  // OK statuses never carry the marker.
  EXPECT_TRUE(Status::MarkRetryUnsafe(Status::OK()).ok());
  EXPECT_TRUE(Status::MarkRetryUnsafe(Status::OK()).retry_safe());
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(helpers::Quarter(6).ok());  // second Half fails on 3
  EXPECT_FALSE(helpers::Quarter(5).ok());  // first Half fails
}

}  // namespace
}  // namespace vdg
