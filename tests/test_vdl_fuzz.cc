// Robustness property: the VDL parser (and the XML wire parser) must
// never crash, hang, or accept-and-corrupt on mangled input — every
// outcome is either a clean parse or a clean ParseError. Seeded random
// mutations of valid corpora keep the test deterministic.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vdl/parser.h"
#include "vdl/printer.h"
#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {
namespace {

constexpr const char* kCorpus[] = {
    R"(
TR t1( output a2, input a1, none env="100000", none pa="500" ) {
  argument parg = "-p "${none:pa};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app3";
  env.MAXMEM = ${none:env};
}
DV d1->example1::t1( a2=@{output:"f2"}, a1=@{input:"f1"}, pa="600" );
)",
    R"(
TR trans4( input a2, input a1, inout a4=@{inout:"s":""}, output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans3( a1=${input:a4}, a3=${output:a3} );
}
DS file1 : SDSS/Simple/ASCII size="2048" path="/data/file1";
)",
};

// Mutates `input` with `edits` random single-character operations.
std::string Mutate(std::string input, Rng* rng, int edits) {
  const char kBytes[] = "{}()<>\"$@;:=|*#\\ \n\tTRDVabc123_-./";
  for (int e = 0; e < edits && !input.empty(); ++e) {
    size_t pos = rng->Index(input.size());
    switch (rng->UniformInt(0, 2)) {
      case 0:  // replace
        input[pos] = kBytes[rng->Index(sizeof(kBytes) - 1)];
        break;
      case 1:  // delete
        input.erase(pos, 1);
        break;
      case 2:  // insert
        input.insert(pos, 1, kBytes[rng->Index(sizeof(kBytes) - 1)]);
        break;
    }
  }
  return input;
}

class VdlFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VdlFuzz, MutatedTextNeverCrashesParser) {
  Rng rng(GetParam());
  for (const char* base : kCorpus) {
    for (int round = 0; round < 300; ++round) {
      std::string mangled = Mutate(base, &rng, 1 + round % 8);
      Result<VdlProgram> parsed = ParseVdl(mangled);
      if (!parsed.ok()) {
        EXPECT_TRUE(parsed.status().IsParseError() ||
                    parsed.status().code() ==
                        StatusCode::kInvalidArgument ||
                    parsed.status().IsAlreadyExists())
            << parsed.status() << "\ninput:\n"
            << mangled;
        continue;
      }
      // Anything accepted must survive the printer and re-parse.
      std::string printed = PrintProgram(*parsed);
      Result<VdlProgram> again = ParseVdl(printed);
      EXPECT_TRUE(again.ok())
          << again.status() << "\nprinted form:\n"
          << printed;
    }
  }
}

TEST_P(VdlFuzz, MutatedXmlNeverCrashesWireParser) {
  Rng rng(GetParam() + 1000);
  Result<VdlProgram> program = ParseVdl(kCorpus[0]);
  ASSERT_TRUE(program.ok());
  std::string base = ProgramToXml(*program);
  for (int round = 0; round < 300; ++round) {
    std::string mangled = Mutate(base, &rng, 1 + round % 10);
    Result<VdlProgram> parsed = ParseVdlXml(mangled);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsParseError() ||
                  parsed.status().code() == StatusCode::kInvalidArgument ||
                  parsed.status().IsAlreadyExists())
          << parsed.status();
      continue;
    }
    // Accepted: must re-serialize without issue.
    std::string xml = ProgramToXml(*parsed);
    EXPECT_FALSE(xml.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VdlFuzz,
                         ::testing::Values(3, 17, 1234, 987654));

TEST(VdlFuzzEdgeCases, PathologicalInputs) {
  // Deep nesting, long tokens, truncations: error out, never hang.
  EXPECT_FALSE(ParseVdl(std::string(100000, '(')).ok());
  EXPECT_FALSE(ParseVdl("TR " + std::string(10000, 'a')).ok());
  EXPECT_FALSE(ParseVdl(std::string("DV d->t( x=\"") +
                        std::string(65536, 'y'))
                   .ok());
  EXPECT_TRUE(ParseVdl(std::string(1 << 16, '\n'))->size() == 0);
  EXPECT_FALSE(ParseVdlXml(std::string(50000, '<')).ok());
  std::string nested;
  for (int i = 0; i < 2000; ++i) nested += "<a>";
  EXPECT_FALSE(ParseVdlXml(nested).ok());
}

}  // namespace
}  // namespace vdg
