// Service-runtime tests: the CatalogServer worker pool and the
// WireCatalogClient speaking the binary codec over real byte channels.
// The through-line: at zero faults every call returns bit-identical
// results to InProcessCatalogClient; deadlines, backpressure, and
// cancellation produce their typed errors without wedging the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/client.h"
#include "executor/executor.h"
#include "federation/remote_cache.h"
#include "federation/server.h"
#include "planner/planner.h"
#include "workload/canonical.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr const char* kStepTr = R"(
TR step( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/step";
}
)";

/// d0 -> d1 -> ... -> dN linear chain (d0 raw), the Figure 3 shape.
std::unique_ptr<VirtualDataCatalog> ChainCatalog(int links) {
  auto catalog = std::make_unique<VirtualDataCatalog>("chain.org");
  EXPECT_TRUE(catalog->Open().ok());
  EXPECT_TRUE(catalog->ImportVdl(kStepTr).ok());
  EXPECT_TRUE(catalog->ImportVdl("DS d0 : Dataset size=\"1024\";").ok());
  for (int i = 0; i < links; ++i) {
    std::string vdl = "DV l" + std::to_string(i + 1) +
                      "->step( out=@{output:\"d" + std::to_string(i + 1) +
                      "\"}, in=@{input:\"d" + std::to_string(i) + "\"} );";
    EXPECT_TRUE(catalog->ImportVdl(vdl).ok());
  }
  return catalog;
}

class CatalogServerTest : public ::testing::TestWithParam<bool> {
 protected:
  CatalogServerTest() : catalog_(ChainCatalog(8)) {}

  std::shared_ptr<CatalogClient> Backend(bool read_only = false) {
    return std::make_shared<InProcessCatalogClient>(catalog_.get(), read_only);
  }

  bool UseSocket() const { return GetParam(); }

  std::unique_ptr<VirtualDataCatalog> catalog_;
};

INSTANTIATE_TEST_SUITE_P(Transports, CatalogServerTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Socket" : "Pipe";
                         });

// ----------------------- parity with in-process ----------------------

TEST_P(CatalogServerTest, HandshakeLearnsAuthorityAndMutability) {
  CatalogServer server(Backend());
  auto client = WireCatalogClient::Connect(&server, {}, UseSocket());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_EQ((*client)->authority(), "chain.org");
  EXPECT_FALSE((*client)->read_only());

  CatalogServer ro_server(Backend(/*read_only=*/true));
  auto ro = WireCatalogClient::Connect(&ro_server, {}, UseSocket());
  ASSERT_TRUE(ro.ok());
  EXPECT_TRUE((*ro)->read_only());
  EXPECT_TRUE((*ro)->DefineDataset(Dataset{}).IsPermissionDenied());
}

TEST_P(CatalogServerTest, EveryReadMatchesInProcessBitForBit) {
  CatalogServer server(Backend());
  auto wire_client = WireCatalogClient::Connect(&server, {}, UseSocket());
  ASSERT_TRUE(wire_client.ok()) << wire_client.status();
  WireCatalogClient& remote = **wire_client;
  InProcessCatalogClient local(catalog_.get());

  EXPECT_EQ(*remote.Version(), *local.Version());

  // Point reads across every object class.
  Result<Dataset> rd = remote.GetDataset("d3");
  Result<Dataset> ld = local.GetDataset("d3");
  ASSERT_TRUE(rd.ok() && ld.ok());
  EXPECT_EQ(rd->name, ld->name);
  EXPECT_EQ(rd->producer, ld->producer);
  EXPECT_EQ(rd->size_bytes, ld->size_bytes);
  EXPECT_EQ(rd->type, ld->type);
  EXPECT_EQ(rd->descriptor, ld->descriptor);
  EXPECT_EQ(rd->annotations, ld->annotations);

  Result<Transformation> rt = remote.GetTransformation("step");
  Result<Transformation> lt = local.GetTransformation("step");
  ASSERT_TRUE(rt.ok() && lt.ok());
  EXPECT_EQ(rt->TypeSignature(), lt->TypeSignature());
  EXPECT_EQ(rt->executable(), lt->executable());

  Result<Derivation> rv = remote.GetDerivation("l2");
  Result<Derivation> lv = local.GetDerivation("l2");
  ASSERT_TRUE(rv.ok() && lv.ok());
  EXPECT_EQ(rv->Signature(), lv->Signature());

  EXPECT_EQ(*remote.HasDataset("d1"), *local.HasDataset("d1"));
  EXPECT_EQ(*remote.HasDataset("missing"), *local.HasDataset("missing"));
  EXPECT_EQ(*remote.IsMaterialized("d5"), *local.IsMaterialized("d5"));
  EXPECT_EQ(*remote.ProducerOf("d4"), *local.ProducerOf("d4"));
  EXPECT_EQ(remote.InvocationsOf("l1")->size(),
            local.InvocationsOf("l1")->size());

  // Error statuses travel as typed codes, not stringly-typed blobs.
  Result<Dataset> missing = remote.GetDataset("missing");
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_EQ(missing.status().code(), local.GetDataset("missing").status().code());

  // Discovery.
  DatasetQuery dq;
  dq.name_prefix = "d";
  EXPECT_EQ(*remote.FindDatasets(dq), *local.FindDatasets(dq));
  TransformationQuery tq;
  EXPECT_EQ(*remote.FindTransformations(tq), *local.FindTransformations(tq));
  DerivationQuery vq;
  vq.reads_dataset = "d3";
  EXPECT_EQ(*remote.FindDerivations(vq), *local.FindDerivations(vq));
  EXPECT_EQ(*remote.AllNames("dataset"), *local.AllNames("dataset"));
  EXPECT_EQ(*remote.AllNames("derivation"), *local.AllNames("derivation"));

  DatasetType any;
  DatasetType sdss;
  sdss.content = "SDSS";
  EXPECT_EQ(*remote.TypeConforms(sdss, any), *local.TypeConforms(sdss, any));

  // Compound reads.
  std::vector<ObjectKey> keys = {{"dataset", "d1"},
                                 {"transformation", "step"},
                                 {"derivation", "l3"},
                                 {"dataset", "missing"}};
  Result<std::vector<ObjectRecord>> rrecs = remote.BatchGet(keys);
  Result<std::vector<ObjectRecord>> lrecs = local.BatchGet(keys);
  ASSERT_TRUE(rrecs.ok() && lrecs.ok());
  ASSERT_EQ(rrecs->size(), lrecs->size());
  for (size_t i = 0; i < rrecs->size(); ++i) {
    EXPECT_EQ((*rrecs)[i].kind, (*lrecs)[i].kind);
    EXPECT_EQ((*rrecs)[i].name, (*lrecs)[i].name);
    EXPECT_EQ((*rrecs)[i].status.code(), (*lrecs)[i].status.code());
    EXPECT_EQ((*rrecs)[i].dataset.has_value(), (*lrecs)[i].dataset.has_value());
    EXPECT_EQ((*rrecs)[i].materialized, (*lrecs)[i].materialized);
  }
}

TEST_P(CatalogServerTest, ProvenanceChainWalkIsIdenticalOverTheWire) {
  CatalogServer server(Backend());
  auto wire_client = WireCatalogClient::Connect(&server, {}, UseSocket());
  ASSERT_TRUE(wire_client.ok());
  WireCatalogClient& remote = **wire_client;
  InProcessCatalogClient local(catalog_.get());

  // Walk d8 back to the raw input one GetProvenanceStep at a time —
  // the federation lineage loop — comparing each hop bit for bit.
  std::string cursor = "d8";
  int hops = 0;
  while (!cursor.empty()) {
    Result<ProvenanceStep> rstep = remote.GetProvenanceStep(cursor);
    Result<ProvenanceStep> lstep = local.GetProvenanceStep(cursor);
    ASSERT_TRUE(rstep.ok()) << rstep.status();
    ASSERT_TRUE(lstep.ok());
    EXPECT_EQ(rstep->dataset, lstep->dataset);
    EXPECT_EQ(rstep->exists, lstep->exists);
    EXPECT_EQ(rstep->producer, lstep->producer);
    ASSERT_EQ(rstep->derivation.has_value(), lstep->derivation.has_value());
    if (rstep->derivation.has_value()) {
      EXPECT_EQ(rstep->derivation->Signature(),
                lstep->derivation->Signature());
      EXPECT_EQ(rstep->derivation->name(), lstep->derivation->name());
    }
    EXPECT_EQ(rstep->invocations.size(), lstep->invocations.size());
    if (rstep->producer.empty()) break;
    ASSERT_TRUE(rstep->derivation.has_value());
    std::vector<std::string> inputs = rstep->derivation->InputDatasets();
    ASSERT_FALSE(inputs.empty());
    cursor = inputs.front();
    ++hops;
    ASSERT_LT(hops, 32) << "cycle in chain walk";
  }
  EXPECT_EQ(hops, 8);
  // Handshake + one GetProvenanceStep per chain node (d8..d0).
  EXPECT_GE(server.stats().requests_served.load(), 10u);
}

TEST_P(CatalogServerTest, MutationsThroughTheWireLandInTheCatalog) {
  CatalogServer server(Backend());
  auto wire_client = WireCatalogClient::Connect(&server, {}, UseSocket());
  ASSERT_TRUE(wire_client.ok());
  WireCatalogClient& remote = **wire_client;

  Dataset ds;
  ds.name = "wire-ds";
  ds.size_bytes = 4096;
  ASSERT_TRUE(remote.DefineDataset(ds).ok());
  EXPECT_TRUE(catalog_->HasDataset("wire-ds"));

  ASSERT_TRUE(remote.Annotate("dataset", "wire-ds", "quality", "gold").ok());
  EXPECT_EQ(
      catalog_->GetDataset("wire-ds")->annotations.GetString("quality"),
      "gold");

  Replica rep;
  rep.dataset = "wire-ds";
  rep.site = "east";
  rep.size_bytes = 4096;
  Result<std::string> replica_id = remote.AddReplica(rep);
  ASSERT_TRUE(replica_id.ok()) << replica_id.status();
  EXPECT_FALSE(replica_id->empty());
  EXPECT_TRUE(*remote.IsMaterialized("wire-ds"));

  ASSERT_TRUE(remote.SetDatasetSize("wire-ds", 8192).ok());
  EXPECT_EQ(catalog_->GetDataset("wire-ds")->size_bytes, 8192);

  ASSERT_TRUE(remote.InvalidateReplica(*replica_id).ok());
  EXPECT_FALSE(*remote.IsMaterialized("wire-ds"));

  Invocation inv;
  inv.derivation = "l1";
  inv.context.site = "east";
  inv.duration_s = 2.5;
  Result<std::string> inv_id = remote.RecordInvocation(inv);
  ASSERT_TRUE(inv_id.ok());
  EXPECT_EQ(catalog_->InvocationsOf("l1").size(), 1u);
}

TEST_P(CatalogServerTest, ApplyBatchShipsAsOneFrameWithCrossOpIds) {
  CatalogServer server(Backend());
  auto wire_client = WireCatalogClient::Connect(&server, {}, UseSocket());
  ASSERT_TRUE(wire_client.ok());
  WireCatalogClient& remote = **wire_client;
  uint64_t before = remote.stats().round_trips;

  // The executor's provenance write-back shape: a replica, an
  // invocation consuming it via a cross-op reference, an annotation on
  // the assigned invocation id.
  Replica rep;
  rep.dataset = "d1";
  rep.site = "west";
  rep.size_bytes = 1024;
  Invocation inv;
  inv.derivation = "l1";
  inv.context.site = "west";
  std::vector<CatalogMutation> batch;
  batch.push_back(CatalogMutation::AddReplica(rep));
  batch.push_back(CatalogMutation::RecordInvocation(inv, {0}));
  batch.push_back(
      CatalogMutation::AnnotateAssigned("invocation", 1, "note", "via-wire"));

  Result<BatchResult> result = remote.ApplyBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->applied, 3u);
  ASSERT_EQ(result->assigned_ids.size(), 3u);
  EXPECT_FALSE(result->assigned_ids[0].empty());
  EXPECT_FALSE(result->assigned_ids[1].empty());
  EXPECT_EQ(remote.stats().round_trips, before + 1);  // one frame

  std::vector<Invocation> invocations = catalog_->InvocationsOf("l1");
  ASSERT_EQ(invocations.size(), 1u);
  EXPECT_EQ(invocations[0].produced_replicas,
            std::vector<std::string>{result->assigned_ids[0]});
  EXPECT_EQ(invocations[0].annotations.GetString("note"), "via-wire");
}

// ----------------------- deadlines & backpressure --------------------

TEST(CatalogServerRuntime, DeadlineExpiryReturnsTypedErrorAndPoolSurvives) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 2;
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(20);
  auto client = WireCatalogClient::Connect(&server, copts);
  ASSERT_TRUE(client.ok()) << client.status();

  // Slow the handlers only after the handshake completed.
  server.set_handler_delay(std::chrono::microseconds(200'000));
  Result<uint64_t> version = (*client)->Version();
  EXPECT_TRUE(version.status().IsDeadlineExceeded())
      << version.status().ToString();
  EXPECT_EQ((*client)->stats().deadline_expiries, 1u);

  // The pool is not wedged: with the delay removed, the same
  // connection serves the next call (the late reply to the abandoned
  // request is discarded, not misdelivered).
  server.set_handler_delay(std::chrono::microseconds(0));
  Result<uint64_t> ok_version = (*client)->Version();
  ASSERT_TRUE(ok_version.ok()) << ok_version.status();
  EXPECT_EQ(*ok_version, catalog->version());
}

TEST(CatalogServerRuntime, FullWorkQueueRejectsWithResourceExhausted) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.handler_delay = std::chrono::microseconds(50'000);  // 50ms/request
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  copts.max_in_flight = 64;
  auto client = WireCatalogClient::Connect(&server, copts);
  ASSERT_TRUE(client.ok());

  // Flood from many threads: with one worker and a one-deep queue,
  // some calls must bounce at admission with ResourceExhausted while
  // the rest complete normally.
  constexpr int kCallers = 8;
  std::atomic<int> rejected{0};
  std::atomic<int> succeeded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      Result<uint64_t> r = (*client)->Version();
      if (r.ok()) {
        ++succeeded;
      } else if (r.status().IsResourceExhausted()) {
        ++rejected;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(succeeded.load(), 0);
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(server.stats().queue_rejections.load(),
            static_cast<uint64_t>(rejected.load()));

  // Not wedged: a follow-up call still completes.
  Result<uint64_t> after = (*client)->Version();
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(CatalogServerRuntime, ClientAdmissionBoundFailsFast) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(100'000);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  copts.max_in_flight = 1;
  auto client = WireCatalogClient::Connect(&server, copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();  // drop the handshake's counters

  // Hold the single in-flight slot with a slow call from one thread;
  // a second call must bounce client-side without touching the server.
  std::thread slow([&] { (void)(*client)->Version(); });
  // Wait until the slow call is actually in flight.
  for (int i = 0; i < 200; ++i) {
    if ((*client)->stats().round_trips == 0 &&
        (*client)->stats().bytes_sent > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<uint64_t> bounced = (*client)->Version();
  slow.join();
  // Either it bounced at admission or the slow call had already
  // finished; the stats disambiguate.
  if (!bounced.ok()) {
    EXPECT_TRUE(bounced.status().IsResourceExhausted());
    EXPECT_GE((*client)->stats().admission_rejections, 1u);
  }
}

TEST(CatalogServerRuntime, CancelPendingFailsInFlightCallsWithCancelled) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(300'000);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(0);  // no deadline
  auto client = WireCatalogClient::Connect(&server, copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();  // drop the handshake's counters

  std::atomic<bool> cancelled_seen{false};
  std::thread caller([&] {
    Result<uint64_t> r = (*client)->Version();
    cancelled_seen = !r.ok() && r.status().IsCancelled();
  });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  (*client)->CancelPending();
  caller.join();
  EXPECT_TRUE(cancelled_seen.load());
  EXPECT_GE((*client)->stats().cancellations, 1u);

  // Connection stays usable after cancellation.
  Result<uint64_t> after = (*client)->Version();
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(CatalogServerRuntime, ShutdownFailsPendingCallsWithUnavailable) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(300'000);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(0);
  auto client = WireCatalogClient::Connect(server.get(), copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();  // drop the handshake's counters

  std::atomic<bool> unavailable_seen{false};
  std::thread caller([&] {
    Result<uint64_t> r = (*client)->Version();
    unavailable_seen = !r.ok() && r.status().IsUnavailable();
  });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->Shutdown();
  caller.join();
  EXPECT_TRUE(unavailable_seen.load());

  // New calls after shutdown fail fast, and new connections refuse.
  EXPECT_TRUE((*client)->Version().status().IsUnavailable());
  auto late = WireCatalogClient::Connect(server.get());
  EXPECT_FALSE(late.ok());
}

TEST(CatalogServerRuntime, ManyConcurrentClientsSeeConsistentAnswers) {
  auto catalog = ChainCatalog(4);
  ServerOptions opts;
  opts.workers = 4;
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  constexpr int kClients = 6;
  constexpr int kCallsEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = WireCatalogClient::Connect(&server, {}, c % 2 == 1);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        Result<Dataset> ds = (*client)->GetDataset("d" + std::to_string(i % 5));
        Result<bool> has = (*client)->HasDataset("d1");
        if (!ds.ok() || !has.ok() || !*has) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.stats().requests_served.load(),
            static_cast<uint64_t>(kClients * kCallsEach * 2));
}

// ----------------------- executor write-back -------------------------

TEST(CatalogServerRuntime, ExecutorWriteBackOverTheWireMatchesInProcess) {
  // Run the same deterministic workflow twice — once writing
  // provenance through InProcessCatalogClient, once through
  // WireCatalogClient -> pipe -> CatalogServer — and require the two
  // catalogs to end bit-identical where the writer path could have
  // diverged them.
  auto run = [](bool over_wire, VirtualDataCatalog* catalog) {
    workload::CanonicalGraphOptions options;
    options.num_derivations = 12;
    options.num_raw_inputs = 3;
    options.seed = 5;
    Result<workload::CanonicalGraph> graph =
        workload::GenerateCanonicalGraph(catalog, options);
    ASSERT_TRUE(graph.ok());
    GridSimulator grid(workload::SmallTestbed(), 5);
    for (size_t i = 0; i < graph->raw_inputs.size(); ++i) {
      const std::string site = i % 2 == 0 ? "east" : "west";
      ASSERT_TRUE(
          grid.PlaceFile(site, graph->raw_inputs[i], 1 << 20, true).ok());
      Replica r;
      r.dataset = graph->raw_inputs[i];
      r.site = site;
      r.size_bytes = 1 << 20;
      ASSERT_TRUE(catalog->AddReplica(r).ok());
    }
    CostEstimator estimator;
    RequestPlanner planner(*catalog, grid.topology(), &grid.rls(), estimator);
    PlannerOptions popts;
    popts.target_site = "east";
    Result<ExecutionPlan> plan = planner.Plan(graph->sinks.front(), popts);
    ASSERT_TRUE(plan.ok()) << plan.status();

    std::shared_ptr<CatalogClient> writer;
    std::unique_ptr<CatalogServer> server;
    std::shared_ptr<WireCatalogClient> wire_writer;
    if (over_wire) {
      server = std::make_unique<CatalogServer>(
          std::make_shared<InProcessCatalogClient>(catalog, false));
      auto connected = WireCatalogClient::Connect(server.get());
      ASSERT_TRUE(connected.ok()) << connected.status();
      wire_writer = *connected;
      writer = wire_writer;
    } else {
      writer = std::make_shared<InProcessCatalogClient>(catalog, false);
    }
    WorkflowEngine engine(&grid, catalog);
    engine.set_catalog_writer(writer);
    Result<WorkflowResult> result = engine.Execute(*plan);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->succeeded);
    if (wire_writer) {
      EXPECT_GT(wire_writer->stats().round_trips, 0u);
      EXPECT_GT(wire_writer->stats().bytes_sent, 0u);
    }
  };

  VirtualDataCatalog direct("exec.org");
  ASSERT_TRUE(direct.Open().ok());
  run(false, &direct);

  VirtualDataCatalog wired("exec.org");
  ASSERT_TRUE(wired.Open().ok());
  run(true, &wired);

  // Identical end states: same objects, same materializations, same
  // invocation records per derivation.
  EXPECT_EQ(direct.AllDatasetNames(), wired.AllDatasetNames());
  EXPECT_EQ(direct.AllDerivationNames(), wired.AllDerivationNames());
  for (std::string_view name : direct.AllDatasetNames()) {
    EXPECT_EQ(direct.IsMaterialized(name), wired.IsMaterialized(name))
        << name;
  }
  for (std::string_view name : direct.AllDerivationNames()) {
    std::vector<Invocation> a = direct.InvocationsOf(name);
    std::vector<Invocation> b = wired.InvocationsOf(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].derivation, b[i].derivation);
      EXPECT_EQ(a[i].context.site, b[i].context.site);
      EXPECT_EQ(a[i].succeeded, b[i].succeeded);
      EXPECT_EQ(a[i].consumed_replicas.size(), b[i].consumed_replicas.size());
      EXPECT_EQ(a[i].produced_replicas.size(), b[i].produced_replicas.size());
    }
  }
}

// ----------------------- graceful drain ------------------------------

TEST(CatalogServerRuntime, DrainingShutdownLetsInFlightRequestsFinish) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(100'000);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  auto client = WireCatalogClient::Connect(server.get(), copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();  // drop the handshake's counters

  std::atomic<bool> in_flight_ok{false};
  std::thread caller([&] {
    Result<uint64_t> r = (*client)->Version();
    in_flight_ok = r.ok();
  });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Unlike the abrupt Shutdown() above, a draining shutdown finishes
  // the admitted slow request before tearing anything down.
  server->Shutdown(std::chrono::milliseconds(5'000));
  caller.join();
  EXPECT_TRUE(in_flight_ok.load());
}

TEST(CatalogServerRuntime, FramesDuringDrainBounceWithRetryableUnavailable) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(200'000);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  auto client = WireCatalogClient::Connect(server.get(), copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();

  // Occupy the single worker so the drain has something to wait for.
  std::thread slow([&] { (void)(*client)->Version(); });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::thread drainer([&] { server->Shutdown(std::chrono::milliseconds(5'000)); });
  for (int i = 0; i < 500; ++i) {
    if (server->draining()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server->draining());

  // A fresh frame during the drain is answered — not dropped — with a
  // retryable Unavailable, the signal a resilient client fails over on.
  Result<uint64_t> bounced = (*client)->Version();
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status().IsUnavailable()) << bounced.status();
  EXPECT_TRUE(bounced.status().retry_safe());
  EXPECT_GE(server->stats().drain_rejections.load(), 1u);

  slow.join();
  drainer.join();
}

TEST(CatalogServerRuntime, ConnectDuringDrainRefusesWithoutDeadlock) {
  auto catalog = ChainCatalog(2);
  ServerOptions opts;
  opts.workers = 1;
  opts.handler_delay = std::chrono::microseconds(150'000);
  auto server = std::make_unique<CatalogServer>(
      std::make_shared<InProcessCatalogClient>(catalog.get()), opts);

  WireClientOptions copts;
  copts.default_deadline = std::chrono::milliseconds(10'000);
  auto client = WireCatalogClient::Connect(server.get(), copts);
  ASSERT_TRUE(client.ok());
  (*client)->reset_stats();

  std::thread slow([&] { (void)(*client)->Version(); });
  for (int i = 0; i < 500; ++i) {
    if ((*client)->stats().bytes_sent > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread drainer([&] { server->Shutdown(std::chrono::milliseconds(5'000)); });
  for (int i = 0; i < 500; ++i) {
    if (server->draining()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Concurrent dials while the drain is in progress must fail fast —
  // not block on server teardown, not crash it.
  std::vector<std::thread> dialers;
  std::atomic<int> accepted{0};
  for (int i = 0; i < 4; ++i) {
    dialers.emplace_back([&] {
      auto late = WireCatalogClient::Connect(server.get());
      if (late.ok()) ++accepted;
    });
  }
  for (std::thread& t : dialers) t.join();
  EXPECT_EQ(accepted.load(), 0);

  slow.join();
  drainer.join();
}

// A caching client stacked on the wire transport: the full ladder.
TEST(CatalogServerRuntime, CachingClientOverWireServesRepeatsLocally) {
  auto catalog = ChainCatalog(4);
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(catalog.get()));
  auto wire_client = WireCatalogClient::Connect(&server);
  ASSERT_TRUE(wire_client.ok());
  CachingCatalogClient cache(*wire_client);

  ASSERT_TRUE(cache.GetDataset("d1").ok());
  uint64_t served_after_fill = server.stats().requests_served.load();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.GetDataset("d1").ok());
  }
  // Repeats never reached the server.
  EXPECT_EQ(server.stats().requests_served.load(), served_after_fill);
  EXPECT_EQ(cache.stats().hits, 10u);
}

}  // namespace
}  // namespace vdg
