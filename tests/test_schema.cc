#include <gtest/gtest.h>

#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "schema/validation.h"

namespace vdg {
namespace {

DatasetType ContentType(const char* name) {
  DatasetType t;
  t.content = name;
  return t;
}

// ------------------------- Dataset / Replica -------------------------

TEST(DatasetTest, ValidateChecksNameAndSize) {
  Dataset ds;
  ds.name = "run1.exp15.raw";
  EXPECT_TRUE(ds.Validate().ok());
  ds.size_bytes = -1;
  EXPECT_FALSE(ds.Validate().ok());
  ds.size_bytes = 0;
  ds.name = "bad name";
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetDescriptorTest, FactoriesCoverPaperContainerKinds) {
  EXPECT_EQ(DatasetDescriptor::File("/a/b").schema, "file");
  DatasetDescriptor fs = DatasetDescriptor::FileSet({"/a", "/b"});
  EXPECT_EQ(fs.schema, "file-set");
  EXPECT_EQ(fs.fields.GetInt("count"), 2);
  DatasetDescriptor slice = DatasetDescriptor::FileSlice("/a", 100, 50);
  EXPECT_EQ(slice.fields.GetInt("offset"), 100);
  EXPECT_EQ(slice.fields.GetInt("length"), 50);
  DatasetDescriptor rows =
      DatasetDescriptor::SqlRows("db", "events", "k1", "k9");
  EXPECT_EQ(rows.schema, "sql-rows");
  EXPECT_EQ(rows.fields.GetString("table"), "events");
  EXPECT_EQ(DatasetDescriptor::ObjectClosure("objy", "root42").schema,
            "object-closure");
  EXPECT_EQ(DatasetDescriptor::SpreadsheetRegion("wb.xls", "A1:C9").schema,
            "spreadsheet-region");
}

TEST(ReplicaTest, ValidateRequiresDatasetAndSite) {
  Replica r;
  r.id = "rp-1";
  r.dataset = "ds";
  r.site = "uchicago";
  EXPECT_TRUE(r.Validate().ok());
  r.site.clear();
  EXPECT_FALSE(r.Validate().ok());
  r.site = "uchicago";
  r.dataset.clear();
  EXPECT_FALSE(r.Validate().ok());
}

// ------------------------- Transformation ---------------------------

Transformation MakeSimpleTr() {
  Transformation tr("t1", Transformation::Kind::kSimple);
  FormalArg a2{.name = "a2",
               .direction = ArgDirection::kOut,
               .types = {ContentType("type2")}};
  FormalArg a1{.name = "a1",
               .direction = ArgDirection::kIn,
               .types = {ContentType("type1")}};
  FormalArg env{.name = "env", .direction = ArgDirection::kNone};
  env.default_string = "100000";
  FormalArg pa{.name = "pa", .direction = ArgDirection::kNone};
  pa.default_string = "500";
  EXPECT_TRUE(tr.AddArg(a2).ok());
  EXPECT_TRUE(tr.AddArg(a1).ok());
  EXPECT_TRUE(tr.AddArg(env).ok());
  EXPECT_TRUE(tr.AddArg(pa).ok());
  ArgumentTemplate parg;
  parg.name = "parg";
  parg.expr = {TemplatePiece::Literal("-p "),
               TemplatePiece::Ref("pa", ArgDirection::kNone)};
  tr.AddArgumentTemplate(parg);
  ArgumentTemplate farg;
  farg.name = "farg";
  farg.expr = {TemplatePiece::Literal("-f "),
               TemplatePiece::Ref("a1", ArgDirection::kIn)};
  tr.AddArgumentTemplate(farg);
  ArgumentTemplate stdout_arg;
  stdout_arg.name = "stdout";
  stdout_arg.expr = {TemplatePiece::Ref("a2", ArgDirection::kOut)};
  tr.AddArgumentTemplate(stdout_arg);
  tr.set_executable("/usr/bin/app3");
  tr.SetEnv("MAXMEM", {TemplatePiece::Ref("env", ArgDirection::kNone)});
  return tr;
}

TEST(TransformationTest, DirectionHelpers) {
  EXPECT_TRUE(DirectionReads(ArgDirection::kIn));
  EXPECT_TRUE(DirectionReads(ArgDirection::kInOut));
  EXPECT_FALSE(DirectionReads(ArgDirection::kOut));
  EXPECT_TRUE(DirectionWrites(ArgDirection::kOut));
  EXPECT_TRUE(DirectionWrites(ArgDirection::kInOut));
  EXPECT_FALSE(DirectionWrites(ArgDirection::kNone));
}

TEST(TransformationTest, DirectionParsing) {
  EXPECT_EQ(*ArgDirectionFromString("input"), ArgDirection::kIn);
  EXPECT_EQ(*ArgDirectionFromString("output"), ArgDirection::kOut);
  EXPECT_EQ(*ArgDirectionFromString("inout"), ArgDirection::kInOut);
  EXPECT_EQ(*ArgDirectionFromString("none"), ArgDirection::kNone);
  EXPECT_FALSE(ArgDirectionFromString("sideways").ok());
}

TEST(TransformationTest, ValidSimpleTransformationPasses) {
  Transformation tr = MakeSimpleTr();
  EXPECT_TRUE(tr.Validate().ok());
  EXPECT_EQ(tr.InputArgNames(), std::vector<std::string>{"a1"});
  EXPECT_EQ(tr.OutputArgNames(), std::vector<std::string>{"a2"});
}

TEST(TransformationTest, TypeSignatureRendering) {
  Transformation tr = MakeSimpleTr();
  EXPECT_EQ(tr.TypeSignature(),
            "t1( output type2/*/* a2, input type1/*/* a1, none env, "
            "none pa )");
}

TEST(TransformationTest, RejectsDuplicateFormals) {
  Transformation tr("t", Transformation::Kind::kSimple);
  FormalArg a{.name = "x", .direction = ArgDirection::kIn};
  EXPECT_TRUE(tr.AddArg(a).ok());
  EXPECT_TRUE(tr.AddArg(a).IsAlreadyExists());
}

TEST(TransformationTest, ValidateRejectsMissingExecutable) {
  Transformation tr("t", Transformation::Kind::kSimple);
  EXPECT_FALSE(tr.Validate().ok());
  tr.SetProfile("hints.pfnHint", {TemplatePiece::Literal("/usr/bin/app")});
  EXPECT_TRUE(tr.Validate().ok());  // pfnHint counts as an executable
}

TEST(TransformationTest, ValidateRejectsUnknownTemplateRef) {
  Transformation tr("t", Transformation::Kind::kSimple);
  tr.set_executable("/bin/x");
  ArgumentTemplate bad;
  bad.expr = {TemplatePiece::Ref("ghost")};
  tr.AddArgumentTemplate(bad);
  EXPECT_FALSE(tr.Validate().ok());
}

TEST(TransformationTest, ValidateRejectsDirectionMismatchInTemplate) {
  Transformation tr("t", Transformation::Kind::kSimple);
  FormalArg in{.name = "a", .direction = ArgDirection::kIn};
  EXPECT_TRUE(tr.AddArg(in).ok());
  tr.set_executable("/bin/x");
  ArgumentTemplate bad;
  bad.expr = {TemplatePiece::Ref("a", ArgDirection::kOut)};
  tr.AddArgumentTemplate(bad);
  EXPECT_FALSE(tr.Validate().ok());
}

TEST(TransformationTest, ValidateRejectsStringArgWithTypes) {
  Transformation tr("t", Transformation::Kind::kSimple);
  FormalArg bad{.name = "p",
                .direction = ArgDirection::kNone,
                .types = {ContentType("type1")}};
  tr.mutable_args().push_back(bad);
  tr.set_executable("/bin/x");
  EXPECT_TRUE(tr.Validate().IsTypeError());
}

TEST(TransformationTest, CompoundValidation) {
  Transformation tr("c", Transformation::Kind::kCompound);
  FormalArg in{.name = "a", .direction = ArgDirection::kIn};
  FormalArg out{.name = "b", .direction = ArgDirection::kOut};
  EXPECT_TRUE(tr.AddArg(in).ok());
  EXPECT_TRUE(tr.AddArg(out).ok());
  EXPECT_FALSE(tr.Validate().ok());  // empty body
  CompoundCall call;
  call.callee = "t1";
  call.bindings = {{"x", TemplatePiece::Ref("a", ArgDirection::kIn)},
                   {"y", TemplatePiece::Ref("b", ArgDirection::kOut)}};
  tr.AddCall(call);
  EXPECT_TRUE(tr.Validate().ok());
  // Binding the same callee formal twice is rejected.
  CompoundCall dup;
  dup.callee = "t2";
  dup.bindings = {{"x", TemplatePiece::Ref("a")},
                  {"x", TemplatePiece::Ref("b")}};
  tr.AddCall(dup);
  EXPECT_FALSE(tr.Validate().ok());
}

TEST(TransformationTest, CompoundRejectsUnknownFormalRef) {
  Transformation tr("c", Transformation::Kind::kCompound);
  CompoundCall call;
  call.callee = "t1";
  call.bindings = {{"x", TemplatePiece::Ref("ghost")}};
  tr.AddCall(call);
  EXPECT_FALSE(tr.Validate().ok());
}

// --------------------------- Derivation -----------------------------

Derivation MakeDerivation() {
  Derivation dv("d1", "t1");
  dv.set_transformation_namespace("example1");
  EXPECT_TRUE(dv.AddArg(ActualArg::DatasetRef(
                          "a2", "run1.summary", ArgDirection::kOut))
                  .ok());
  EXPECT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "run1.raw", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(dv.AddArg(ActualArg::String("env", "20000")).ok());
  EXPECT_TRUE(dv.AddArg(ActualArg::String("pa", "600")).ok());
  return dv;
}

TEST(DerivationTest, QualifiedTransformation) {
  Derivation dv = MakeDerivation();
  EXPECT_EQ(dv.QualifiedTransformation(), "example1::t1");
  Derivation bare("d2", "t1");
  EXPECT_EQ(bare.QualifiedTransformation(), "t1");
}

TEST(DerivationTest, InputOutputDatasets) {
  Derivation dv = MakeDerivation();
  EXPECT_EQ(dv.InputDatasets(), std::vector<std::string>{"run1.raw"});
  EXPECT_EQ(dv.OutputDatasets(), std::vector<std::string>{"run1.summary"});
}

TEST(DerivationTest, RejectsDoubleBindingAndBadArgs) {
  Derivation dv("d", "t");
  EXPECT_TRUE(dv.AddArg(ActualArg::String("p", "1")).ok());
  EXPECT_TRUE(dv.AddArg(ActualArg::String("p", "2")).IsAlreadyExists());
  ActualArg malformed;
  malformed.formal = "q";
  EXPECT_FALSE(dv.AddArg(malformed).ok());  // neither string nor dataset
}

TEST(DerivationSignatureTest, IndependentOfArgOrderAndName) {
  Derivation a("first", "t1");
  ASSERT_TRUE(a.AddArg(ActualArg::String("p", "1")).ok());
  ASSERT_TRUE(
      a.AddArg(ActualArg::DatasetRef("in", "ds1", ArgDirection::kIn)).ok());

  Derivation b("second", "t1");
  ASSERT_TRUE(
      b.AddArg(ActualArg::DatasetRef("in", "ds1", ArgDirection::kIn)).ok());
  ASSERT_TRUE(b.AddArg(ActualArg::String("p", "1")).ok());

  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_EQ(a.SignatureText(), b.SignatureText());
}

TEST(DerivationSignatureTest, SensitiveToArgsTransformationAndEnv) {
  Derivation base("d", "t1");
  ASSERT_TRUE(base.AddArg(ActualArg::String("p", "1")).ok());

  Derivation other_arg("d", "t1");
  ASSERT_TRUE(other_arg.AddArg(ActualArg::String("p", "2")).ok());
  EXPECT_NE(base.SignatureText(), other_arg.SignatureText());

  Derivation other_tr("d", "t2");
  ASSERT_TRUE(other_tr.AddArg(ActualArg::String("p", "1")).ok());
  EXPECT_NE(base.SignatureText(), other_tr.SignatureText());

  Derivation with_env("d", "t1");
  ASSERT_TRUE(with_env.AddArg(ActualArg::String("p", "1")).ok());
  with_env.SetEnvOverride("MAXMEM", "1");
  EXPECT_NE(base.SignatureText(), with_env.SignatureText());
}

TEST(InvocationTest, ValidateChecksBasics) {
  Invocation iv;
  iv.id = "iv-1";
  iv.derivation = "d1";
  iv.duration_s = 20;
  EXPECT_TRUE(iv.Validate().ok());
  iv.duration_s = -1;
  EXPECT_FALSE(iv.Validate().ok());
  iv.duration_s = 1;
  iv.derivation.clear();
  EXPECT_FALSE(iv.Validate().ok());
}

// --------------------------- Validation -----------------------------

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() {
    EXPECT_TRUE(registry_
                    .Define(TypeDimension::kContent, "type1",
                            TypeDimensionBaseName(TypeDimension::kContent))
                    .ok());
    EXPECT_TRUE(registry_
                    .Define(TypeDimension::kContent, "type2",
                            TypeDimensionBaseName(TypeDimension::kContent))
                    .ok());
    EXPECT_TRUE(registry_
                    .Define(TypeDimension::kContent, "type1b", "type1")
                    .ok());
    types_["run1.raw"] = ContentType("type1");
    types_["run1.summary"] = ContentType("type2");
    types_["wrong.kind"] = ContentType("type2");
    types_["sub.raw"] = ContentType("type1b");
  }

  DatasetTypeLookup Lookup() {
    return [this](std::string_view name) -> const DatasetType* {
      auto it = types_.find(std::string(name));
      return it == types_.end() ? nullptr : &it->second;
    };
  }

  TypeRegistry registry_;
  std::map<std::string, DatasetType> types_;
};

TEST_F(ValidationTest, WellTypedDerivationPasses) {
  EXPECT_TRUE(ValidateDerivationAgainst(MakeDerivation(), MakeSimpleTr(),
                                        registry_, Lookup())
                  .ok());
}

TEST_F(ValidationTest, SubtypeInputPasses) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.new",
                                              ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "sub.raw", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .ok());
}

TEST_F(ValidationTest, WrongInputTypeFails) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.new",
                                              ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "wrong.kind", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, UnknownFormalFails) {
  Derivation dv = MakeDerivation();
  ASSERT_TRUE(dv.AddArg(ActualArg::String("ghost", "1")).ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, UnboundFormalWithoutDefaultFails) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.new",
                                              ArgDirection::kOut))
                  .ok());
  // a1 unbound and has no default.
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, DefaultsSatisfyStringFormals) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.new",
                                              ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "run1.raw", ArgDirection::kIn))
          .ok());
  // env/pa unbound but defaulted.
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .ok());
}

TEST_F(ValidationTest, StringBoundToDatasetFormalFails) {
  Derivation dv = MakeDerivation();
  Derivation bad("d", "t1");
  ASSERT_TRUE(bad.AddArg(ActualArg::String("a1", "not-a-dataset")).ok());
  ASSERT_TRUE(bad.AddArg(ActualArg::DatasetRef("a2", "out.x",
                                               ArgDirection::kOut))
                  .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(bad, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, DirectionMismatchFails) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.x",
                                              ArgDirection::kIn))
                  .ok());  // a2 is output
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "run1.raw", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, UndefinedInputDatasetFails) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.x",
                                              ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "nonexistent", ArgDirection::kIn))
          .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .IsTypeError());
}

TEST_F(ValidationTest, VdpInputSkipsLocalExistenceCheck) {
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out.x",
                                              ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a1", "vdp://other/dataset",
                                              ArgDirection::kIn))
                  .ok());
  EXPECT_TRUE(
      ValidateDerivationAgainst(dv, MakeSimpleTr(), registry_, Lookup())
          .ok());
}

// -------------------------- ResolveCommand ---------------------------

TEST(ResolveCommandTest, ExpandsTemplatesWithActuals) {
  Transformation tr = MakeSimpleTr();
  Derivation dv = MakeDerivation();
  Result<ResolvedCommand> cmd = ResolveCommand(tr, dv);
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->executable, "/usr/bin/app3");
  ASSERT_EQ(cmd->argv.size(), 2u);
  EXPECT_EQ(cmd->argv[0], "-p 600");
  EXPECT_EQ(cmd->argv[1], "-f run1.raw");
  EXPECT_EQ(cmd->streams.at("stdout"), "run1.summary");
  EXPECT_EQ(cmd->environment.at("MAXMEM"), "20000");
}

TEST(ResolveCommandTest, DefaultsFillUnboundFormals) {
  Transformation tr = MakeSimpleTr();
  Derivation dv("d", "t1");
  ASSERT_TRUE(dv.AddArg(ActualArg::DatasetRef("a2", "out", ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      dv.AddArg(ActualArg::DatasetRef("a1", "in", ArgDirection::kIn)).ok());
  Result<ResolvedCommand> cmd = ResolveCommand(tr, dv);
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->argv[0], "-p 500");                 // default pa
  EXPECT_EQ(cmd->environment.at("MAXMEM"), "100000");  // default env
}

TEST(ResolveCommandTest, EnvOverridesWin) {
  Transformation tr = MakeSimpleTr();
  Derivation dv = MakeDerivation();
  dv.SetEnvOverride("MAXMEM", "override");
  dv.SetEnvOverride("EXTRA", "added");
  Result<ResolvedCommand> cmd = ResolveCommand(tr, dv);
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->environment.at("MAXMEM"), "override");
  EXPECT_EQ(cmd->environment.at("EXTRA"), "added");
}

TEST(ResolveCommandTest, RejectsCompound) {
  Transformation tr("c", Transformation::Kind::kCompound);
  CompoundCall call;
  call.callee = "x";
  tr.AddCall(call);
  Derivation dv("d", "c");
  EXPECT_FALSE(ResolveCommand(tr, dv).ok());
}

TEST(ResolveCommandTest, UsesPfnHintWhenNoExec) {
  Transformation tr("t", Transformation::Kind::kSimple);
  tr.SetProfile("hints.pfnHint", {TemplatePiece::Literal("/usr/bin/app1")});
  Derivation dv("d", "t");
  Result<ResolvedCommand> cmd = ResolveCommand(tr, dv);
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->executable, "/usr/bin/app1");
}

}  // namespace
}  // namespace vdg
