#include "schema/attribute.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

TEST(AttributeValueTest, KindsAndAccessors) {
  AttributeValue s("text");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.AsString(), "text");
  AttributeValue i(int64_t{42});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.AsInt(), 42);
  AttributeValue d(2.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_EQ(d.AsDouble(), 2.5);
  AttributeValue b(true);
  EXPECT_TRUE(b.is_bool());
  EXPECT_TRUE(b.AsBool());
}

TEST(AttributeValueTest, NumberCoercion) {
  EXPECT_EQ(AttributeValue(int64_t{3}).AsNumber(), 3.0);
  EXPECT_EQ(AttributeValue(1.5).AsNumber(), 1.5);
  EXPECT_FALSE(AttributeValue("nope").AsNumber().has_value());
  EXPECT_FALSE(AttributeValue(true).AsNumber().has_value());
}

TEST(AttributeValueTest, ToStringRendering) {
  EXPECT_EQ(AttributeValue("x").ToString(), "x");
  EXPECT_EQ(AttributeValue(int64_t{7}).ToString(), "7");
  EXPECT_EQ(AttributeValue(false).ToString(), "false");
  EXPECT_EQ(AttributeValue(2.5).ToString(), "2.5");
}

TEST(AttributeValueTest, TaggedRoundTrip) {
  for (const AttributeValue& v :
       {AttributeValue("hello world"), AttributeValue(int64_t{-12}),
        AttributeValue(3.25), AttributeValue(true)}) {
    Result<AttributeValue> back =
        AttributeValue::FromTagged(v.TypeTag(), v.ToString());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(AttributeValueTest, FromTaggedRejectsBadInput) {
  EXPECT_FALSE(AttributeValue::FromTagged('i', "12x").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "abc").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('b', "yes").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('?', "x").ok());
}

TEST(AttributeValueTest, FromTaggedRejectsOutOfRangeInt) {
  // strtoll saturates to INT64_MAX/MIN on overflow; that must surface
  // as a parse error, not a silently clamped value.
  EXPECT_FALSE(AttributeValue::FromTagged('i', "9223372036854775808").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('i', "-9223372036854775809").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('i', "99999999999999999999").ok());
  // The exact extremes are fine.
  Result<AttributeValue> max =
      AttributeValue::FromTagged('i', "9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->AsInt(), INT64_MAX);
  Result<AttributeValue> min =
      AttributeValue::FromTagged('i', "-9223372036854775808");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->AsInt(), INT64_MIN);
}

TEST(AttributeValueTest, FromTaggedRejectsNonFiniteDouble) {
  // NaN breaks equality-based index normalization (NaN != NaN), and
  // inf also covers overflowing literals like 1e999.
  EXPECT_FALSE(AttributeValue::FromTagged('d', "nan").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "NAN").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "inf").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "-inf").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "infinity").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "1e999").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "-1e999").ok());
}

TEST(AttributeValueTest, FromTaggedRejectsEmptyNumerics) {
  // strtoll/strtod report end == start for "", which previously
  // slipped through as 0 / 0.0.
  EXPECT_FALSE(AttributeValue::FromTagged('i', "").ok());
  EXPECT_FALSE(AttributeValue::FromTagged('d', "").ok());
}

TEST(AttributeSetTest, SetGetEraseHas) {
  AttributeSet attrs;
  attrs.Set("owner", "alice");
  attrs.Set("runs", int64_t{3});
  EXPECT_TRUE(attrs.Has("owner"));
  EXPECT_EQ(attrs.GetString("owner"), "alice");
  EXPECT_EQ(attrs.GetInt("runs"), 3);
  EXPECT_FALSE(attrs.GetInt("owner").has_value());  // kind mismatch
  EXPECT_FALSE(attrs.GetString("missing").has_value());
  EXPECT_TRUE(attrs.Erase("owner"));
  EXPECT_FALSE(attrs.Erase("owner"));
  EXPECT_EQ(attrs.size(), 1u);
}

TEST(AttributeSetTest, OverwriteReplacesValue) {
  AttributeSet attrs;
  attrs.Set("k", int64_t{1});
  attrs.Set("k", "two");
  EXPECT_EQ(attrs.GetString("k"), "two");
  EXPECT_EQ(attrs.size(), 1u);
}

TEST(AttributeSetTest, GetDoubleCoercesInts) {
  AttributeSet attrs;
  attrs.Set("n", int64_t{4});
  EXPECT_EQ(attrs.GetDouble("n"), 4.0);
}

TEST(AttributeSetTest, ToStringIsCanonicallySorted) {
  AttributeSet attrs;
  attrs.Set("zeta", int64_t{1});
  attrs.Set("alpha", int64_t{2});
  EXPECT_EQ(attrs.ToString(), "alpha=2;zeta=1");
}

TEST(PredicateTest, ExistsAndEq) {
  AttributeSet attrs;
  attrs.Set("quality", "approved");
  AttributePredicate exists{"quality", PredicateOp::kExists, {}};
  EXPECT_TRUE(exists.Matches(attrs));
  AttributePredicate missing{"nope", PredicateOp::kExists, {}};
  EXPECT_FALSE(missing.Matches(attrs));
  AttributePredicate eq{"quality", PredicateOp::kEq, "approved"};
  EXPECT_TRUE(eq.Matches(attrs));
  AttributePredicate ne{"quality", PredicateOp::kNe, "draft"};
  EXPECT_TRUE(ne.Matches(attrs));
}

TEST(PredicateTest, NumericComparisonsCoerce) {
  AttributeSet attrs;
  attrs.Set("events", int64_t{500});
  EXPECT_TRUE(
      (AttributePredicate{"events", PredicateOp::kGt, 100.0}).Matches(attrs));
  EXPECT_TRUE((AttributePredicate{"events", PredicateOp::kLe, int64_t{500}})
                  .Matches(attrs));
  EXPECT_FALSE(
      (AttributePredicate{"events", PredicateOp::kLt, int64_t{500}})
          .Matches(attrs));
  EXPECT_TRUE((AttributePredicate{"events", PredicateOp::kGe, int64_t{500}})
                  .Matches(attrs));
}

TEST(PredicateTest, IncomparableKindsNeverMatchOrderedOps) {
  AttributeSet attrs;
  attrs.Set("name", "abc");
  EXPECT_FALSE(
      (AttributePredicate{"name", PredicateOp::kLt, int64_t{5}}).Matches(attrs));
}

TEST(PredicateTest, ContainsDoesSubstring) {
  AttributeSet attrs;
  attrs.Set("desc", "galaxy cluster search");
  EXPECT_TRUE((AttributePredicate{"desc", PredicateOp::kContains, "cluster"})
                  .Matches(attrs));
  EXPECT_FALSE((AttributePredicate{"desc", PredicateOp::kContains, "quark"})
                   .Matches(attrs));
}

TEST(PredicateTest, MatchesAllIsConjunction) {
  AttributeSet attrs;
  attrs.Set("science", "astronomy");
  attrs.Set("year", int64_t{2002});
  std::vector<AttributePredicate> conj{
      {"science", PredicateOp::kEq, "astronomy"},
      {"year", PredicateOp::kGe, int64_t{2000}}};
  EXPECT_TRUE(MatchesAll(attrs, conj));
  conj.push_back({"year", PredicateOp::kLt, int64_t{2001}});
  EXPECT_FALSE(MatchesAll(attrs, conj));
  EXPECT_TRUE(MatchesAll(attrs, {}));
}

TEST(PredicateTest, StringOrderingIsLexicographic) {
  AttributeSet attrs;
  attrs.Set("v", "beta");
  EXPECT_TRUE(
      (AttributePredicate{"v", PredicateOp::kGt, "alpha"}).Matches(attrs));
  EXPECT_TRUE(
      (AttributePredicate{"v", PredicateOp::kLt, "gamma"}).Matches(attrs));
}

}  // namespace
}  // namespace vdg
