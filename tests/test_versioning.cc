#include "versioning/versions.h"

#include <gtest/gtest.h>

namespace vdg {
namespace {

// ------------------- TransformationVersionGraph ----------------------

TEST(VersionGraphTest, RegisterAndEnumerate) {
  TransformationVersionGraph graph;
  ASSERT_TRUE(graph.RegisterVersion("maxBcg", "maxBcg-v1").ok());
  ASSERT_TRUE(graph.RegisterVersion("maxBcg", "maxBcg-v2").ok());
  ASSERT_TRUE(graph.RegisterVersion("maxBcg", "maxBcg-v3").ok());
  EXPECT_EQ(graph.VersionsOf("maxBcg"),
            (std::vector<std::string>{"maxBcg-v1", "maxBcg-v2",
                                      "maxBcg-v3"}));
  EXPECT_EQ(*graph.LatestOf("maxBcg"), "maxBcg-v3");
  EXPECT_EQ(*graph.FamilyOf("maxBcg-v2"), "maxBcg");
  EXPECT_TRUE(graph.LatestOf("unknown").status().IsNotFound());
  EXPECT_TRUE(graph.FamilyOf("unknown").status().IsNotFound());
  EXPECT_TRUE(graph.VersionsOf("unknown").empty());
}

TEST(VersionGraphTest, DuplicateVersionRejected) {
  TransformationVersionGraph graph;
  ASSERT_TRUE(graph.RegisterVersion("f", "f-v1").ok());
  EXPECT_TRUE(graph.RegisterVersion("f", "f-v1").IsAlreadyExists());
  EXPECT_TRUE(graph.RegisterVersion("other", "f-v1").IsAlreadyExists());
  EXPECT_FALSE(graph.RegisterVersion("bad name", "x").ok());
}

TEST(VersionGraphTest, EquivalenceIsReflexiveSymmetricTransitive) {
  TransformationVersionGraph graph;
  EXPECT_TRUE(graph.AreEquivalent("a", "a"));  // reflexive, unregistered
  ASSERT_TRUE(graph.AssertEquivalent("a", "b").ok());
  ASSERT_TRUE(graph.AssertEquivalent("b", "c").ok());
  EXPECT_TRUE(graph.AreEquivalent("a", "b"));
  EXPECT_TRUE(graph.AreEquivalent("b", "a"));   // symmetric
  EXPECT_TRUE(graph.AreEquivalent("a", "c"));   // transitive
  EXPECT_FALSE(graph.AreEquivalent("a", "d"));  // unrelated
  std::vector<std::string> cls = graph.EquivalenceClassOf("b");
  EXPECT_EQ(cls.size(), 3u);
}

TEST(VersionGraphTest, DistinctClassesStaySeparateUntilMerged) {
  TransformationVersionGraph graph;
  ASSERT_TRUE(graph.AssertEquivalent("x1", "x2").ok());
  ASSERT_TRUE(graph.AssertEquivalent("y1", "y2").ok());
  EXPECT_FALSE(graph.AreEquivalent("x1", "y1"));
  ASSERT_TRUE(graph.AssertEquivalent("x2", "y2").ok());
  EXPECT_TRUE(graph.AreEquivalent("x1", "y1"));
}

// --------------------- Version-aware dedup ---------------------------

class VersionDedupTest : public ::testing::Test {
 protected:
  VersionDedupTest() : catalog_("ver.org") {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR crunch-v1( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/crunch1";
}
TR crunch-v2( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/crunch2";
}
DS raw : Dataset size="100";
DV old-run->crunch-v1( out=@{output:"result"}, in=@{input:"raw"} );
)")
                    .ok());
  }

  Derivation NewRequest() {
    Derivation dv("new-run", "crunch-v2");
    EXPECT_TRUE(
        dv.AddArg(ActualArg::DatasetRef("out", "result", ArgDirection::kOut))
            .ok());
    EXPECT_TRUE(
        dv.AddArg(ActualArg::DatasetRef("in", "raw", ArgDirection::kIn))
            .ok());
    return dv;
  }

  VirtualDataCatalog catalog_;
  TransformationVersionGraph versions_;
};

TEST_F(VersionDedupTest, NoAssertionNoMatch) {
  EXPECT_FALSE(FindEquivalentDerivationModuloVersion(catalog_, versions_,
                                                     NewRequest())
                   .ok());
  EXPECT_FALSE(
      HasBeenComputedModuloVersion(catalog_, versions_, NewRequest()));
}

TEST_F(VersionDedupTest, AssertionEnablesCrossVersionMatch) {
  ASSERT_TRUE(versions_.AssertEquivalent("crunch-v1", "crunch-v2").ok());
  Result<std::string> hit = FindEquivalentDerivationModuloVersion(
      catalog_, versions_, NewRequest());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "old-run");
  // Computed only once the old run's output is materialized.
  EXPECT_FALSE(
      HasBeenComputedModuloVersion(catalog_, versions_, NewRequest()));
  Replica r;
  r.dataset = "result";
  r.site = "east";
  ASSERT_TRUE(catalog_.AddReplica(r).ok());
  EXPECT_TRUE(
      HasBeenComputedModuloVersion(catalog_, versions_, NewRequest()));
}

TEST_F(VersionDedupTest, ExactMatchStillPreferred) {
  Derivation same("other-name", "crunch-v1");
  ASSERT_TRUE(
      same.AddArg(ActualArg::DatasetRef("out", "result", ArgDirection::kOut))
          .ok());
  ASSERT_TRUE(
      same.AddArg(ActualArg::DatasetRef("in", "raw", ArgDirection::kIn))
          .ok());
  Result<std::string> hit =
      FindEquivalentDerivationModuloVersion(catalog_, versions_, same);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "old-run");
}

TEST_F(VersionDedupTest, DifferentArgsNeverMatch) {
  ASSERT_TRUE(versions_.AssertEquivalent("crunch-v1", "crunch-v2").ok());
  Derivation different("diff", "crunch-v2");
  ASSERT_TRUE(different
                  .AddArg(ActualArg::DatasetRef("out", "other-result",
                                                ArgDirection::kOut))
                  .ok());
  ASSERT_TRUE(
      different.AddArg(ActualArg::DatasetRef("in", "raw", ArgDirection::kIn))
          .ok());
  EXPECT_FALSE(FindEquivalentDerivationModuloVersion(catalog_, versions_,
                                                     different)
                   .ok());
}

// ------------------------ DatasetUpdateLog ---------------------------

class UpdateLogTest : public ::testing::Test {
 protected:
  UpdateLogTest() : catalog_("upd.org") {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR append( inout store, input delta ) {
  argument stdin = ${input:delta};
  argument stdout = ${inout:store};
  exec = "/bin/append";
}
DS store : Dataset size="1000";
DS delta1 : Dataset size="10";
DV upd1->append( store=@{inout:"store"}, delta=@{input:"delta1"} );
)")
                    .ok());
  }
  VirtualDataCatalog catalog_;
  DatasetUpdateLog log_;
};

TEST_F(UpdateLogTest, RecordsUpdatesWithBeforeAfter) {
  Result<UpdateRecord> first =
      log_.RecordUpdate(&catalog_, "store", "upd1", 1100, 10.0, "append d1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->sequence, 1u);
  EXPECT_EQ(first->size_before, 1000);
  EXPECT_EQ(first->size_after, 1100);
  EXPECT_EQ(catalog_.GetDataset("store")->size_bytes, 1100);
  EXPECT_EQ(catalog_.GetDataset("store")->annotations.GetInt("vdg.updates"),
            1);

  Result<UpdateRecord> second =
      log_.RecordUpdate(&catalog_, "store", "upd1", 1250, 20.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->sequence, 2u);
  EXPECT_EQ(second->size_before, 1100);
  EXPECT_EQ(log_.UpdateCountOf("store"), 2u);
  EXPECT_FALSE(log_.IsPristine("store"));
  ASSERT_EQ(log_.HistoryOf("store").size(), 2u);
  EXPECT_EQ(log_.HistoryOf("store")[0].note, "append d1");
}

TEST_F(UpdateLogTest, UndoRestoresPriorState) {
  ASSERT_TRUE(
      log_.RecordUpdate(&catalog_, "store", "upd1", 1100, 10.0).ok());
  ASSERT_TRUE(
      log_.RecordUpdate(&catalog_, "store", "upd1", 1250, 20.0).ok());
  Result<UpdateRecord> undone = log_.UndoLastUpdate(&catalog_, "store");
  ASSERT_TRUE(undone.ok());
  EXPECT_EQ(undone->sequence, 2u);
  EXPECT_EQ(catalog_.GetDataset("store")->size_bytes, 1100);
  ASSERT_TRUE(log_.UndoLastUpdate(&catalog_, "store").ok());
  EXPECT_EQ(catalog_.GetDataset("store")->size_bytes, 1000);
  EXPECT_TRUE(log_.IsPristine("store"));
  EXPECT_EQ(log_.UndoLastUpdate(&catalog_, "store").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UpdateLogTest, ValidationErrors) {
  EXPECT_FALSE(
      log_.RecordUpdate(nullptr, "store", "upd1", 1, 0).ok());
  EXPECT_TRUE(log_.RecordUpdate(&catalog_, "ghost", "upd1", 1, 0)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(log_.RecordUpdate(&catalog_, "store", "no-such-dv", 1, 0)
                  .status()
                  .IsNotFound());
  // An empty derivation is allowed (manual/out-of-band update).
  EXPECT_TRUE(log_.RecordUpdate(&catalog_, "store", "", 1, 0).ok());
}

TEST_F(UpdateLogTest, IndependentDatasets) {
  ASSERT_TRUE(catalog_.ImportVdl("DS other : Dataset size=\"5\";").ok());
  ASSERT_TRUE(
      log_.RecordUpdate(&catalog_, "store", "upd1", 1100, 1.0).ok());
  EXPECT_EQ(log_.UpdateCountOf("other"), 0u);
  EXPECT_TRUE(log_.IsPristine("other"));
  EXPECT_TRUE(log_.HistoryOf("other").empty());
}

}  // namespace
}  // namespace vdg
