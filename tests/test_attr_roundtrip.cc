// Property test for lossless attribute persistence: every double-
// valued attribute must survive the journal (write -> replay ->
// CompactJournal -> replay) and the XML export/import path with its
// exact bit pattern. The display form (%.6g) silently corrupted any
// double with more than six significant digits; the wire form
// (shortest-exact via std::to_chars) must not.
#include <cfloat>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/codec.h"
#include "common/strings.h"
#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Bit-exact comparison: catches -0.0 vs 0.0 and last-ulp drift that
// operator== on doubles would miss or conflate.
::testing::AssertionResult SameBits(double expected, double actual) {
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "double drifted: expected " << FormatDoubleRoundTrip(expected)
         << " (0x" << std::hex << Bits(expected) << ") got "
         << FormatDoubleRoundTrip(actual) << " (0x" << Bits(actual) << ")";
}

// Doubles chosen to break naive formatting: extremes, subnormals,
// signed zero, and values needing all 17 significant digits.
std::vector<double> NastyDoubles() {
  std::vector<double> out = {
      0.0,
      -0.0,
      DBL_MIN,
      -DBL_MIN,
      DBL_MAX,
      -DBL_MAX,
      DBL_TRUE_MIN,  // smallest subnormal
      -DBL_TRUE_MIN,
      DBL_EPSILON,
      0.1,
      0.1 + 0.2,  // 0.30000000000000004
      1.0 / 3.0,
      M_PI,
      123456789.123456789,
      1e-300,
      -9.87654321e300,
      std::nextafter(1.0, 2.0),
      std::nextafter(0.0, -1.0),
  };
  // Deterministic random bit patterns (finite only).
  std::mt19937_64 rng(0xf05734);
  while (out.size() < 64) {
    uint64_t bits = rng();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

AttributeSet NastySet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  AttributeSet attrs;
  std::vector<double> doubles = NastyDoubles();
  for (size_t i = 0; i < doubles.size(); ++i) {
    attrs.Set("d" + std::to_string(i), AttributeValue(doubles[i]));
  }
  attrs.Set("imax", AttributeValue(INT64_MAX));
  attrs.Set("imin", AttributeValue(INT64_MIN));
  attrs.Set("irand", AttributeValue(static_cast<int64_t>(rng())));
  attrs.Set("flag", AttributeValue(rng() % 2 == 0));
  attrs.Set("label", AttributeValue("pipe|and\\escape\nnewline"));
  return attrs;
}

// Every double in `expected` must appear in `actual` with identical
// bits; everything else must compare equal.
void ExpectBitIdentical(const AttributeSet& expected,
                        const AttributeSet& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [key, value] : expected) {
    const AttributeValue* got = actual.Find(key);
    ASSERT_NE(got, nullptr) << "missing attribute " << key;
    ASSERT_EQ(value.TypeTag(), got->TypeTag()) << "kind changed for " << key;
    if (value.is_double()) {
      EXPECT_TRUE(SameBits(value.AsDouble(), got->AsDouble())) << key;
    } else {
      EXPECT_TRUE(value == *got) << "value changed for " << key;
    }
  }
}

TEST(FormatDoubleRoundTrip, ShortestFormParsesBackExactly) {
  for (double v : NastyDoubles()) {
    std::string text = FormatDoubleRoundTrip(v);
    double back = std::strtod(text.c_str(), nullptr);
    EXPECT_TRUE(SameBits(v, back)) << text;
  }
}

// The display form is intentionally lossy — this documents the bug
// the wire form exists to fix, and fails if the codec ever reverts
// to ToString().
TEST(FormatDoubleRoundTrip, DisplayFormIsLossyWireFormIsNot) {
  double v = 0.1 + 0.2;  // 0.30000000000000004
  EXPECT_FALSE(SameBits(v, std::strtod(AttributeValue(v).ToString().c_str(),
                                       nullptr)));
  EXPECT_TRUE(SameBits(
      v, std::strtod(AttributeValue(v).ToWireString().c_str(), nullptr)));
}

TEST(AttrRoundTrip, CodecTriplesAreBitExact) {
  AttributeSet attrs = NastySet(1);
  std::vector<std::string> fields{"DS", "decl"};
  codec::AppendAttributes(attrs, &fields);
  Result<AttributeSet> back = codec::ParseAttributes(fields, 2);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectBitIdentical(attrs, *back);
}

TEST(AttrRoundTrip, CodecRecordSurvivesEscaping) {
  // Through the full record join/split, not just the triple list.
  AttributeSet attrs = NastySet(2);
  Dataset ds;
  ds.name = "nasty";
  ds.annotations = attrs;
  std::string record = codec::EncodeDataset(ds);
  Result<std::vector<std::string>> fields = codec::SplitRecord(record);
  ASSERT_TRUE(fields.ok());
  Result<AttributeSet> back = codec::ParseAttributes(*fields, 2);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectBitIdentical(attrs, *back);
}

class AttrJournalRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttrJournalRoundTrip, ReplayAndCompactionPreserveBits) {
  std::string path = ::testing::TempDir() + "/vdg_attr_rt_" +
                     std::to_string(GetParam()) + ".log";
  std::remove(path.c_str());
  AttributeSet attrs = NastySet(GetParam());
  double created_at = 0.1 + 0.2;
  double start_time = 1.0 / 3.0;
  double duration_s = M_PI;
  double cpu_seconds = 123456789.123456789;
  {
    VirtualDataCatalog catalog("rt.org", std::make_unique<FileJournal>(path));
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog
                    .ImportVdl("TR t( output out ) { exec = \"/bin/t\"; }"
                               "DS in0 : Dataset size=\"1\";"
                               "DV d->t( out=@{output:\"o\"} );")
                    .ok());
    Dataset ds;
    ds.name = "nasty";
    ds.annotations = attrs;
    ASSERT_TRUE(catalog.DefineDataset(ds).ok());
    Replica r;
    r.dataset = "nasty";
    r.site = "east";
    r.created_at = created_at;
    Result<std::string> rid = catalog.AddReplica(r);
    ASSERT_TRUE(rid.ok());
    Invocation iv;
    iv.derivation = "d";
    iv.context.site = "east";
    iv.start_time = start_time;
    iv.duration_s = duration_s;
    iv.cpu_seconds = cpu_seconds;
    ASSERT_TRUE(catalog.RecordInvocation(iv).ok());
    ASSERT_TRUE(catalog.SyncJournal().ok());
  }
  auto check = [&](const VirtualDataCatalog& catalog) {
    Result<Dataset> ds = catalog.GetDataset("nasty");
    ASSERT_TRUE(ds.ok());
    ExpectBitIdentical(attrs, ds->annotations);
    std::vector<Replica> replicas = catalog.ReplicasOf("nasty");
    ASSERT_EQ(replicas.size(), 1u);
    EXPECT_TRUE(SameBits(created_at, replicas[0].created_at));
    std::vector<Invocation> ivs = catalog.InvocationsOf("d");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_TRUE(SameBits(start_time, ivs[0].start_time));
    EXPECT_TRUE(SameBits(duration_s, ivs[0].duration_s));
    EXPECT_TRUE(SameBits(cpu_seconds, ivs[0].cpu_seconds));
  };
  {
    // First replay, then compact and replay the compacted journal.
    VirtualDataCatalog reopened("rt.org",
                                std::make_unique<FileJournal>(path));
    ASSERT_TRUE(reopened.Open().ok());
    check(reopened);
    ASSERT_TRUE(reopened.CompactJournal().ok());
  }
  VirtualDataCatalog compacted("rt.org", std::make_unique<FileJournal>(path));
  ASSERT_TRUE(compacted.Open().ok());
  check(compacted);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrJournalRoundTrip,
                         ::testing::Values(11, 22, 33, 44));

TEST(AttrRoundTrip, XmlExportImportIsBitExact) {
  AttributeSet attrs = NastySet(3);
  VdlProgram program;
  Dataset ds;
  ds.name = "nasty";
  ds.annotations = attrs;
  ds.descriptor.fields.Set("precision", AttributeValue(0.1 + 0.2));
  program.datasets.push_back(ds);
  Transformation tr("t", Transformation::Kind::kSimple);
  tr.annotations() = attrs;
  tr.set_executable("/bin/t");
  program.transformations.push_back(std::move(tr));
  Result<VdlProgram> back = ParseVdlXml(ProgramToXml(program));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->datasets.size(), 1u);
  ExpectBitIdentical(attrs, back->datasets[0].annotations);
  const AttributeValue* field =
      back->datasets[0].descriptor.fields.Find("precision");
  ASSERT_NE(field, nullptr);
  EXPECT_TRUE(SameBits(0.1 + 0.2, field->AsDouble()));
  ASSERT_EQ(back->transformations.size(), 1u);
  ExpectBitIdentical(attrs, back->transformations[0].annotations());
}

}  // namespace
}  // namespace vdg
