#include <gtest/gtest.h>

#include "replication/manager.h"
#include "replication/policy.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

ReplicationEvent MakeEvent(const std::string& requester,
                           const std::string& source, uint64_t count = 1) {
  ReplicationEvent e;
  e.file = "f";
  e.size_bytes = 100;
  e.requester_site = requester;
  e.source_site = source;
  e.access_count = count;
  return e;
}

TEST(PolicyTest, NoReplicationNeverNominates) {
  NoReplicationPolicy policy;
  EXPECT_TRUE(policy.OnAccess(MakeEvent("leaf", "root")).empty());
  EXPECT_TRUE(policy.OnProduce(MakeEvent("root", "")).empty());
  EXPECT_STREQ(policy.name(), "none");
}

TEST(PolicyTest, CachingKeepsAtRequester) {
  CachingPolicy policy;
  EXPECT_EQ(policy.OnAccess(MakeEvent("leaf", "root")),
            std::vector<std::string>{"leaf"});
  EXPECT_TRUE(policy.OnProduce(MakeEvent("root", "")).empty());
}

TEST(PolicyTest, CascadingPlacesAtParentThenRequester) {
  std::map<std::string, std::string> parents{
      {"leaf", "region"}, {"region", "root"}, {"root", ""}};
  CascadingPolicy policy(parents, /*popularity_threshold=*/2);
  // First access: parent only.
  EXPECT_EQ(policy.OnAccess(MakeEvent("leaf", "root", 1)),
            std::vector<std::string>{"region"});
  // Popular: parent + requester.
  EXPECT_EQ(policy.OnAccess(MakeEvent("leaf", "root", 2)),
            (std::vector<std::string>{"region", "leaf"}));
  // Parent == source: no point re-placing there.
  EXPECT_TRUE(policy.OnAccess(MakeEvent("region", "root", 1)).empty());
}

TEST(PolicyTest, FastSpreadPushesEverywhereOnProduce) {
  FastSpreadPolicy policy({"a", "b", "c"});
  EXPECT_EQ(policy.OnProduce(MakeEvent("b", "")),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(policy.OnAccess(MakeEvent("a", "b")),
            std::vector<std::string>{"a"});
}

class ReplicaManagerTest : public ::testing::Test {
 protected:
  ReplicaManagerTest()
      : grid_(workload::TieredTestbed(1, 2, 1 << 20, &parents_), 1) {}

  std::map<std::string, std::string> parents_;
  GridSimulator grid_;
};

TEST_F(ReplicaManagerTest, LocalHitIsFast) {
  ReplicaManager mgr(&grid_, std::make_unique<NoReplicationPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  double latency = -1;
  ASSERT_TRUE(
      mgr.RequestFile("root", "data", [&](double l) { latency = l; }).ok());
  grid_.RunUntilIdle();
  EXPECT_EQ(mgr.stats().local_hits, 1u);
  EXPECT_EQ(mgr.stats().remote_fetches, 0u);
  EXPECT_NEAR(latency, GridTopology::kLocalLatency, 1e-9);
}

TEST_F(ReplicaManagerTest, RemoteFetchWithoutReplicationStaysRemote) {
  ReplicaManager mgr(&grid_, std::make_unique<NoReplicationPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
    grid_.RunUntilIdle();
  }
  EXPECT_EQ(mgr.stats().remote_fetches, 3u);
  EXPECT_EQ(mgr.stats().local_hits, 0u);
  EXPECT_EQ(mgr.stats().replicas_created, 0u);
}

TEST_F(ReplicaManagerTest, CachingTurnsRepeatsIntoHits) {
  ReplicaManager mgr(&grid_, std::make_unique<CachingPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
    grid_.RunUntilIdle();
  }
  EXPECT_EQ(mgr.stats().remote_fetches, 1u);
  EXPECT_EQ(mgr.stats().local_hits, 2u);
  EXPECT_EQ(mgr.stats().replicas_created, 1u);
}

TEST_F(ReplicaManagerTest, CascadingHelpsSiblings) {
  ReplicaManager mgr(&grid_,
                     std::make_unique<CascadingPolicy>(parents_, 2));
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  // leaf0's fetch seeds region0.
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_TRUE(grid_.rls().ExistsAt("data", "region0"));
  // Sibling leaf1 now fetches from region0, not root.
  double latency = -1;
  ASSERT_TRUE(mgr.RequestFile("region0-leaf1", "data",
                              [&](double l) { latency = l; })
                  .ok());
  grid_.RunUntilIdle();
  // region0->leaf link (100 Mbps, 5 ms) beats root->leaf (45 Mbps, 20 ms).
  EXPECT_LT(latency, 0.01);
}

TEST_F(ReplicaManagerTest, FastSpreadMakesFirstAccessLocal) {
  std::vector<std::string> sites = grid_.topology().SiteNames();
  ReplicaManager mgr(&grid_, std::make_unique<FastSpreadPolicy>(sites));
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  grid_.RunUntilIdle();
  ASSERT_TRUE(mgr.RequestFile("region0-leaf1", "data", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_EQ(mgr.stats().local_hits, 1u);
  EXPECT_EQ(mgr.stats().remote_fetches, 0u);
  EXPECT_GE(mgr.stats().replicas_created, 3u);
}

TEST_F(ReplicaManagerTest, EvictionMakesRoomAtFullLeaf) {
  ReplicaManager mgr(&grid_, std::make_unique<CachingPolicy>());
  // Leaf storage is 1 MiB; two 600 KiB files cannot coexist.
  ASSERT_TRUE(mgr.ProduceFile("root", "big1", 600 * 1024).ok());
  ASSERT_TRUE(mgr.ProduceFile("root", "big2", 600 * 1024).ok());
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "big1", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_TRUE(grid_.rls().ExistsAt("big1", "region0-leaf0"));
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "big2", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_TRUE(grid_.rls().ExistsAt("big2", "region0-leaf0"));
  EXPECT_FALSE(grid_.rls().ExistsAt("big1", "region0-leaf0"));  // evicted
  EXPECT_GE(mgr.stats().evictions, 1u);
  // The archive copy at root is untouched.
  EXPECT_TRUE(grid_.rls().ExistsAt("big1", "root"));
}

TEST_F(ReplicaManagerTest, MissingFileFails) {
  ReplicaManager mgr(&grid_, std::make_unique<CachingPolicy>());
  EXPECT_TRUE(
      mgr.RequestFile("root", "no-such-file", nullptr).IsNotFound());
}

TEST_F(ReplicaManagerTest, PrestagingSuggestionsFollowAccessHistory) {
  ReplicaManager mgr(&grid_, std::make_unique<NoReplicationPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "hot", 1000).ok());
  ASSERT_TRUE(mgr.ProduceFile("root", "cold", 1000).ok());
  // leaf0 hammers "hot", touches "cold" once.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "hot", nullptr).ok());
    grid_.RunUntilIdle();
  }
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "cold", nullptr).ok());
  grid_.RunUntilIdle();

  std::vector<ReplicaManager::PrestagingAction> actions =
      mgr.SuggestPrestaging(/*min_accesses=*/2);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].file, "hot");
  EXPECT_EQ(actions[0].to_site, "region0-leaf0");
  EXPECT_EQ(actions[0].from_site, "root");
  EXPECT_EQ(actions[0].observed_accesses, 3u);

  ASSERT_TRUE(mgr.ApplyPrestaging(actions).ok());
  EXPECT_TRUE(grid_.rls().ExistsAt("hot", "region0-leaf0"));
  // Once staged, the suggestion disappears.
  EXPECT_TRUE(mgr.SuggestPrestaging(2).empty());
  // And the next access is a local hit.
  uint64_t hits_before = mgr.stats().local_hits;
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "hot", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_EQ(mgr.stats().local_hits, hits_before + 1);
}

TEST_F(ReplicaManagerTest, PrestagingIgnoresSatisfiedSites) {
  ReplicaManager mgr(&grid_, std::make_unique<CachingPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1000).ok());
  // Caching already placed a replica after the first fetch, so the
  // repeated accesses are local and need no pre-staging.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
    grid_.RunUntilIdle();
  }
  EXPECT_TRUE(mgr.SuggestPrestaging(2).empty());
}

TEST_F(ReplicaManagerTest, MeanLatencyAggregates) {
  ReplicaManager mgr(&grid_, std::make_unique<CachingPolicy>());
  ASSERT_TRUE(mgr.ProduceFile("root", "data", 1 << 20).ok());
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
  grid_.RunUntilIdle();
  ASSERT_TRUE(mgr.RequestFile("region0-leaf0", "data", nullptr).ok());
  grid_.RunUntilIdle();
  EXPECT_GT(mgr.stats().mean_latency_s(), 0.0);
  EXPECT_NEAR(mgr.stats().hit_rate(), 0.5, 1e-9);
}

}  // namespace
}  // namespace vdg
