// End-to-end tests of the fault-tolerant derivation engine: same-seed
// determinism, a fault-rate matrix that must succeed within the retry
// budget, backoff/blacklist/failover mechanics, submit-rejection
// retries across maintenance windows, re-derivation of lost inputs
// from the derivation record, rescue plans, and recovery from a
// mid-run site crash.
#include <cstdlib>
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "planner/planner.h"
#include "workload/canonical.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

uint64_t FaultSeed() {
  // CI sweeps several seeds via VDG_FAULT_SEED; locally the default
  // keeps runs reproducible.
  const char* env = std::getenv("VDG_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 17;
}

void ExpectStatsEqual(const RecoveryStats& a, const RecoveryStats& b) {
  EXPECT_EQ(a.job_attempts, b.job_attempts);
  EXPECT_EQ(a.job_failures, b.job_failures);
  EXPECT_EQ(a.transfer_attempts, b.transfer_attempts);
  EXPECT_EQ(a.transfer_failures, b.transfer_failures);
  EXPECT_EQ(a.submit_rejections, b.submit_rejections);
  EXPECT_EQ(a.backoff_waits, b.backoff_waits);
  EXPECT_DOUBLE_EQ(a.total_backoff_s, b.total_backoff_s);
  EXPECT_EQ(a.node_timeouts, b.node_timeouts);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.sites_blacklisted, b.sites_blacklisted);
  EXPECT_EQ(a.replicas_lost_detected, b.replicas_lost_detected);
  EXPECT_EQ(a.rederivations, b.rederivations);
  EXPECT_EQ(a.datasets_regenerated, b.datasets_regenerated);
}

// A canonical-application world (random derivation DAG) on the
// two-site testbed, with raw inputs pinned at both sites so no fault
// can destroy source data beyond recovery.
struct CanonicalWorld {
  VirtualDataCatalog catalog{"fault.org"};
  GridSimulator grid;
  CostEstimator estimator;
  workload::CanonicalGraph graph;

  explicit CanonicalWorld(uint64_t seed, size_t derivations = 24)
      : grid(workload::SmallTestbed(), seed) {
    EXPECT_TRUE(catalog.Open().ok());
    workload::CanonicalGraphOptions options;
    options.num_derivations = derivations;
    options.num_raw_inputs = 6;
    options.seed = seed;
    Result<workload::CanonicalGraph> generated =
        workload::GenerateCanonicalGraph(&catalog, options);
    EXPECT_TRUE(generated.ok()) << generated.status();
    graph = std::move(*generated);
    for (const std::string& raw : graph.raw_inputs) {
      for (const char* site : {"east", "west"}) {
        EXPECT_TRUE(grid.PlaceFile(site, raw, 1 << 20, true).ok());
        Replica replica;
        replica.dataset = raw;
        replica.site = site;
        replica.size_bytes = 1 << 20;
        EXPECT_TRUE(catalog.AddReplica(std::move(replica)).ok());
      }
    }
  }

  Result<ExecutionPlan> PlanSink() {
    RequestPlanner planner(catalog, grid.topology(), &grid.rls(),
                           estimator);
    PlannerOptions options;
    options.target_site = "east";
    EXPECT_FALSE(graph.sinks.empty());
    return planner.Plan(graph.sinks.front(), options);
  }
};

WorkflowResult RunFaultyCanonical(uint64_t seed, double job_rate,
                                  double transfer_rate) {
  CanonicalWorld world(seed);
  world.grid.set_job_failure_rate(job_rate);
  world.grid.set_transfer_failure_rate(transfer_rate);
  ExecutorOptions opts;
  opts.max_retries = 10;
  opts.faults.backoff_base_s = 1.0;
  WorkflowEngine engine(&world.grid, &world.catalog, opts);
  Result<ExecutionPlan> plan = world.PlanSink();
  EXPECT_TRUE(plan.ok()) << plan.status();
  Result<WorkflowResult> result = engine.Execute(*plan);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(FaultRecoveryTest, SameSeedRunsAreBitIdentical) {
  WorkflowResult a = RunFaultyCanonical(FaultSeed(), 0.2, 0.1);
  WorkflowResult b = RunFaultyCanonical(FaultSeed(), 0.2, 0.1);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.nodes_total, b.nodes_total);
  EXPECT_EQ(a.nodes_succeeded, b.nodes_succeeded);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.nodes_skipped, b.nodes_skipped);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.bytes_staged, b.bytes_staged);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ExpectStatsEqual(a.recovery, b.recovery);
}

TEST(FaultRecoveryTest, FaultMatrixSucceedsWithinRetryBudget) {
  for (double job_rate : {0.0, 0.1, 0.2}) {
    for (double transfer_rate : {0.0, 0.1, 0.2}) {
      WorkflowResult result =
          RunFaultyCanonical(FaultSeed(), job_rate, transfer_rate);
      EXPECT_TRUE(result.succeeded)
          << "job_rate=" << job_rate
          << " transfer_rate=" << transfer_rate;
      EXPECT_EQ(result.nodes_failed, 0u);
      EXPECT_EQ(result.nodes_succeeded, result.nodes_total);
      if (job_rate == 0.0 && transfer_rate == 0.0) {
        EXPECT_EQ(result.recovery.job_failures, 0u);
        EXPECT_EQ(result.recovery.transfer_failures, 0u);
        EXPECT_EQ(result.recovery.backoff_waits, 0u);
      }
    }
  }
}

TEST(FaultRecoveryTest, MidRunCrashWithDataLossStillCompletes) {
  CanonicalWorld world(FaultSeed());
  // West crashes shortly into the run — running jobs die, unpinned
  // intermediates on west are wiped — and returns 50s later.
  ASSERT_TRUE(world.grid.ScheduleOutage("west", 6.0, 50.0,
                                        /*crash=*/true).ok());
  ExecutorOptions opts;
  opts.max_retries = 10;
  opts.faults.backoff_base_s = 2.0;
  opts.faults.rederive_lost_inputs = true;
  WorkflowEngine engine(&world.grid, &world.catalog, opts);
  Result<ExecutionPlan> plan = world.PlanSink();
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->nodes_failed, 0u);
  EXPECT_TRUE(world.grid.rls().Exists(world.graph.sinks.front()));
}

// A three-derivation chain world where staging behaviour is fully
// controlled: raw -> mid -> {outA, outB}.
class ChainWorldTest : public ::testing::Test {
 protected:
  ChainWorldTest() : grid_(workload::SmallTestbed(), FaultSeed()) {
    EXPECT_TRUE(catalog_.Open().ok());
    EXPECT_TRUE(catalog_.ImportVdl(R"(
TR conv( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/bin/conv";
}
DS raw : Dataset size="1048576";
DV mkMid->conv( out=@{output:"mid"}, in=@{input:"raw"} );
DV mkOutA->conv( out=@{output:"outA"}, in=@{input:"mid"} );
DV mkOutB->conv( out=@{output:"outB"}, in=@{input:"mid"} );
)")
                    .ok());
    EXPECT_TRUE(
        catalog_.Annotate("transformation", "conv", "sim.runtime_s", 20.0)
            .ok());
    for (const char* site : {"east", "west"}) {
      EXPECT_TRUE(grid_.PlaceFile(site, "raw", 1 << 20, true).ok());
      Replica replica;
      replica.dataset = "raw";
      replica.site = site;
      replica.size_bytes = 1 << 20;
      EXPECT_TRUE(catalog_.AddReplica(std::move(replica)).ok());
    }
  }

  Result<ExecutionPlan> PlanFor(const std::string& dataset) {
    RequestPlanner planner(catalog_, grid_.topology(), &grid_.rls(),
                           estimator_);
    return planner.Plan(dataset, options_);
  }

  // Removes every physical copy of `dataset` while leaving its catalog
  // replica records in place — the "replica lost" failure mode.
  void LoseReplicas(const std::string& dataset) {
    for (const char* site : {"east", "west"}) {
      if (grid_.rls().ExistsAt(dataset, site)) {
        EXPECT_TRUE(grid_.EvictFile(site, dataset).ok());
      }
    }
    EXPECT_FALSE(grid_.rls().Exists(dataset));
  }

  VirtualDataCatalog catalog_{"chain.org"};
  GridSimulator grid_;
  CostEstimator estimator_;
  PlannerOptions options_;
};

TEST_F(ChainWorldTest, SubmitRejectionsRetryWithExponentialBackoff) {
  // The only admissible site spends the first 40 simulated seconds in
  // a maintenance window; backoff (5, 10, 20, 40, ...) must carry the
  // workflow across it.
  options_.target_site = "east";
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "east";
  ASSERT_TRUE(grid_.SetSiteOffline("east", true).ok());
  grid_.events().ScheduleAfter(40.0, [this] {
    EXPECT_TRUE(grid_.SetSiteOffline("east", false).ok());
  });
  ExecutorOptions opts;
  opts.max_retries = 6;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("outA");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  // Rejections at t = 0, 5, 15, 35; the t = 75 attempt lands after the
  // window and runs.
  EXPECT_EQ(result->recovery.submit_rejections, 4u);
  EXPECT_EQ(result->recovery.backoff_waits, 4u);
  EXPECT_DOUBLE_EQ(result->recovery.total_backoff_s, 75.0);
  EXPECT_GT(result->makespan_s, 75.0);
}

TEST_F(ChainWorldTest, FailoverMovesWorkOffACrashedSite) {
  options_.target_site = "east";
  Result<ExecutionPlan> plan = PlanFor("outA");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 2u);
  const std::string planned = plan->nodes[0].site;
  ASSERT_TRUE(grid_.CrashSite(planned).ok());

  ExecutorOptions opts;
  opts.max_retries = 3;
  opts.faults.backoff_base_s = 1.0;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_GE(result->recovery.failovers, 1u);
  EXPECT_GE(result->recovery.submit_rejections, 1u);
  Result<std::vector<NodeExecution>> executions =
      engine.ExecutionsOf(result->workflow_id);
  ASSERT_TRUE(executions.ok());
  EXPECT_NE((*executions)[0].site, planned);
  EXPECT_TRUE((*executions)[0].succeeded);
}

TEST_F(ChainWorldTest, FlakySiteIsBlacklistedAndBackoffIsExponential) {
  options_.target_site = "east";
  grid_.set_job_failure_rate(1.0);  // nothing can succeed anywhere
  ExecutorOptions opts;
  opts.max_retries = 5;
  opts.faults.backoff_base_s = 1.0;
  opts.faults.blacklist_threshold = 2;
  opts.faults.blacklist_cooldown_s = 1e6;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("mid");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 1u);
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->succeeded);
  EXPECT_EQ(result->nodes_failed, 1u);
  // 6 attempts, 5 backoffs of 1, 2, 4, 8, 16 simulated seconds.
  EXPECT_EQ(result->recovery.job_attempts, 6u);
  EXPECT_EQ(result->recovery.job_failures, 6u);
  EXPECT_EQ(result->recovery.backoff_waits, 5u);
  EXPECT_DOUBLE_EQ(result->recovery.total_backoff_s, 31.0);
  // Both sites hit the consecutive-failure threshold; the engine kept
  // moving work between them while any alternative remained.
  EXPECT_GE(result->recovery.sites_blacklisted, 2u);
  EXPECT_GE(result->recovery.failovers, 1u);
  EXPECT_FALSE(engine.IsSiteUsable(plan->nodes[0].site));
}

TEST_F(ChainWorldTest, NodeTimeoutAbandonsSlowAttempts) {
  options_.target_site = "east";
  ExecutorOptions opts;
  opts.max_retries = 2;
  opts.faults.backoff_base_s = 1.0;
  opts.faults.node_timeout_s = 10.0;  // conv takes 20s: always too slow
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("mid");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->succeeded);
  EXPECT_EQ(result->recovery.node_timeouts, 3u);

  // A deadline longer than the runtime never fires.
  ExecutorOptions relaxed = opts;
  relaxed.faults.node_timeout_s = 30.0;
  WorkflowEngine patient(&grid_, &catalog_, relaxed);
  Result<ExecutionPlan> again = PlanFor("mid");
  ASSERT_TRUE(again.ok()) << again.status();
  Result<WorkflowResult> ok = patient.Execute(*again);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->succeeded);
  EXPECT_EQ(ok->recovery.node_timeouts, 0u);
}

TEST_F(ChainWorldTest, FailedTransfersAreRetriedUntilStagingSucceeds) {
  // raw only exists at west; the fixed east placement forces a
  // west->east staging transfer under a 90% failure rate.
  for (StorageElement* se : grid_.StorageAt("east")) {
    if (se->Contains("raw")) {
      ASSERT_TRUE(se->SetPinned("raw", false).ok());
    }
  }
  ASSERT_TRUE(grid_.EvictFile("east", "raw").ok());
  for (const Replica& replica : catalog_.ReplicasOf("raw")) {
    if (replica.site == "east") {
      ASSERT_TRUE(catalog_.RemoveReplica(replica.id).ok());
    }
  }
  options_.target_site = "east";
  options_.site_policy = SiteSelectionPolicy::kFixed;
  options_.fixed_site = "east";
  grid_.set_transfer_failure_rate(0.9);
  ExecutorOptions opts;
  opts.max_retries = 30;
  opts.faults.backoff_base_s = 0.5;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("mid");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_GE(result->recovery.transfer_attempts,
            result->recovery.transfer_failures + 1);
  EXPECT_GT(result->bytes_staged, 0);
  EXPECT_TRUE(grid_.rls().Exists("mid"));
}

TEST_F(ChainWorldTest, RederivesLostInputAndRecordsRecovery) {
  // Materialize mid (via outA), then destroy every physical copy while
  // the catalog still claims replicas exist.
  options_.target_site = "east";
  {
    WorkflowEngine engine(&grid_, &catalog_, {});
    Result<ExecutionPlan> first = PlanFor("outA");
    ASSERT_TRUE(first.ok()) << first.status();
    Result<WorkflowResult> ran = engine.Execute(*first);
    ASSERT_TRUE(ran.ok()) << ran.status();
    ASSERT_TRUE(ran->succeeded);
  }
  LoseReplicas("mid");

  // The consumer's plan reuses the (supposedly) materialized mid.
  Result<ExecutionPlan> plan = PlanFor("outB");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 1u);

  ExecutorOptions opts;
  opts.faults.rederive_lost_inputs = true;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_GE(result->recovery.replicas_lost_detected, 1u);
  EXPECT_EQ(result->recovery.rederivations, 1u);
  EXPECT_EQ(result->recovery.datasets_regenerated, 1u);
  // The input physically exists again and the recovery is in the
  // provenance record: the dataset is marked re-derived and its
  // producer ran a second time.
  EXPECT_TRUE(grid_.rls().Exists("mid"));
  EXPECT_TRUE(grid_.rls().Exists("outB"));
  Result<Dataset> mid = catalog_.GetDataset("mid");
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->annotations.GetBool("recovery.rederived")
                  .value_or(false));
  EXPECT_EQ(catalog_.InvocationsOf("mkMid").size(), 2u);
}

TEST_F(ChainWorldTest, DefaultPolicyTrustsCatalogReplicaRecords) {
  // Without rederive_lost_inputs the engine preserves the seed
  // behaviour: catalog replica records are taken at face value and
  // staging proceeds from the claimed location.
  options_.target_site = "east";
  {
    WorkflowEngine engine(&grid_, &catalog_, {});
    Result<ExecutionPlan> first = PlanFor("outA");
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(engine.Execute(*first)->succeeded);
  }
  LoseReplicas("mid");
  Result<ExecutionPlan> plan = PlanFor("outB");
  ASSERT_TRUE(plan.ok()) << plan.status();
  WorkflowEngine engine(&grid_, &catalog_, {});
  Result<WorkflowResult> result = engine.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->recovery.rederivations, 0u);
  EXPECT_EQ(result->recovery.datasets_regenerated, 0u);
}

TEST_F(ChainWorldTest, AlreadyLocalFetchCompletesSynchronously) {
  // A pure-fetch plan whose dataset already sits at the destination
  // (the RescueOf-resubmission shape: rescue plans copy the original
  // fetches wholesale) completes inside Submit — the engine must not
  // touch the erased workflow state afterwards (use-after-free
  // regression, caught under ASan).
  ExecutionPlan plan;
  plan.target_dataset = "raw";
  plan.target_site = "east";
  plan.mode = MaterializationMode::kFetch;
  TransferPlan fetch;
  fetch.dataset = "raw";
  fetch.from_site = "west";
  fetch.to_site = "east";
  fetch.bytes = 1 << 20;
  plan.fetches.push_back(fetch);

  WorkflowEngine engine(&grid_, &catalog_, {});
  Result<WorkflowResult> result = engine.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->transfers, 0u);  // nothing moved: already local
}

TEST_F(ChainWorldTest, RederivationCapHoldsAcrossOneStagingPass) {
  // Three derived inputs of one node all lose their bytes at once;
  // with a ceiling of two recovery sub-workflows the single staging
  // pass may launch at most two — the third input falls back to the
  // trusted-catalog staging path instead.
  ASSERT_TRUE(catalog_.ImportVdl(R"(
DV mkIA->conv( out=@{output:"ia"}, in=@{input:"raw"} );
DV mkIB->conv( out=@{output:"ib"}, in=@{input:"raw"} );
DV mkIC->conv( out=@{output:"ic"}, in=@{input:"raw"} );
)")
                  .ok());
  options_.target_site = "east";
  for (const char* input : {"ia", "ib", "ic"}) {
    WorkflowEngine warm(&grid_, &catalog_, {});
    Result<ExecutionPlan> plan = PlanFor(input);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_TRUE(warm.Execute(*plan)->succeeded);
    LoseReplicas(input);
  }

  ExecutionPlan plan;
  plan.target_dataset = "z";
  plan.target_site = "east";
  PlanNode node;
  node.derivation = Derivation("mergeLost", "conv");
  node.transformation = "conv";
  node.site = "east";
  node.inputs = {"ia", "ib", "ic"};
  node.outputs = {"z"};
  node.candidate_sites = {"east", "west"};
  plan.nodes.push_back(std::move(node));

  ExecutorOptions opts;
  opts.record_provenance = false;  // synthetic derivation, catalog-less
  opts.faults.rederive_lost_inputs = true;
  opts.faults.max_rederivations_per_node = 2;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<WorkflowResult> result = engine.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->recovery.rederivations, 2u);  // ceiling respected
  EXPECT_EQ(result->recovery.datasets_regenerated, 2u);
}

TEST_F(ChainWorldTest, RescuePlanResumesAFailedWorkflow) {
  options_.target_site = "east";
  grid_.set_job_failure_rate(1.0);
  ExecutorOptions opts;
  opts.max_retries = 0;
  opts.faults.backoff_base_s = 1.0;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<ExecutionPlan> plan = PlanFor("outA");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 2u);
  Result<WorkflowResult> failed = engine.Execute(*plan);
  ASSERT_TRUE(failed.ok()) << failed.status();
  EXPECT_FALSE(failed->succeeded);
  EXPECT_EQ(failed->nodes_failed + failed->nodes_skipped, 2u);

  // The rescue plan carries exactly the unfinished nodes, with the
  // mkMid -> mkOutA edge intact.
  Result<ExecutionPlan> rescue = engine.RescueOf(failed->workflow_id);
  ASSERT_TRUE(rescue.ok()) << rescue.status();
  ASSERT_EQ(rescue->nodes.size(), 2u);

  // The fault clears; submitting the rescue plan finishes the job.
  grid_.set_job_failure_rate(0.0);
  Result<WorkflowResult> resumed = engine.Execute(*rescue);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->succeeded);
  EXPECT_TRUE(grid_.rls().Exists("outA"));
  EXPECT_TRUE(catalog_.IsMaterialized("outA"));

  // A successful workflow has an empty rescue plan; unknown ids are
  // NotFound.
  Result<ExecutionPlan> empty = engine.RescueOf(resumed->workflow_id);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->nodes.empty());
  EXPECT_TRUE(engine.RescueOf(999999).status().IsNotFound());
}

TEST_F(ChainWorldTest, RescueSkipsAlreadyMaterializedPredecessors) {
  // mkMid succeeds, then everything starts failing: the rescue plan
  // must contain only the unfinished tail, staging from mid's
  // materialized output rather than re-running its producer.
  options_.target_site = "east";
  WorkflowEngine warm(&grid_, &catalog_, {});
  Result<ExecutionPlan> mid_plan = PlanFor("mid");
  ASSERT_TRUE(mid_plan.ok()) << mid_plan.status();
  ASSERT_TRUE(warm.Execute(*mid_plan)->succeeded);

  Result<ExecutionPlan> plan = PlanFor("outA");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->nodes.size(), 1u);  // mid reused, only mkOutA runs
  grid_.set_job_failure_rate(1.0);
  ExecutorOptions opts;
  opts.max_retries = 0;
  opts.faults.backoff_base_s = 1.0;
  WorkflowEngine engine(&grid_, &catalog_, opts);
  Result<WorkflowResult> failed = engine.Execute(*plan);
  ASSERT_TRUE(failed.ok());
  EXPECT_FALSE(failed->succeeded);

  Result<ExecutionPlan> rescue = engine.RescueOf(failed->workflow_id);
  ASSERT_TRUE(rescue.ok()) << rescue.status();
  ASSERT_EQ(rescue->nodes.size(), 1u);
  EXPECT_EQ(rescue->nodes[0].derivation.name(), "mkOutA");
  grid_.set_job_failure_rate(0.0);
  Result<WorkflowResult> resumed = engine.Execute(*rescue);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->succeeded);
  EXPECT_TRUE(grid_.rls().Exists("outA"));
}

}  // namespace
}  // namespace vdg
