// EXP-SDSS — Section 6 / reference [1]: the Sloan Digital Sky Survey
// MaxBCG galaxy-cluster search. The paper reports ~5000 derivations,
// workflow DAGs of several hundred nodes, a grid of almost 800 hosts
// across four sites, and up to 120 hosts used by a single workflow.
//
// Series reproduced here:
//   1. the full campaign at paper scale (~5000 derivations);
//   2. makespan of ONE workflow as its width (fields per stripe)
//      grows toward and past the paper's 120-host mark;
//   3. campaign throughput as more stripes run concurrently.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "workload/sdss.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

struct CampaignResult {
  size_t derivations = 0;
  size_t nodes_executed = 0;
  double makespan_s = 0;
  double mean_utilization = 0;
  uint64_t transfers = 0;
};

CampaignResult RunCampaign(int stripes, int fields_per_stripe,
                           uint64_t seed) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("sdss-bench.org");
  if (!catalog.Open().ok()) std::abort();
  workload::SdssOptions options;
  options.num_stripes = stripes;
  options.fields_per_stripe = fields_per_stripe;
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog, options);
  if (!workload.ok()) std::abort();

  GridSimulator grid(workload::GriphynTestbed(), seed);
  grid.set_runtime_jitter(0.05);
  if (!workload::StageSdssInputs(*workload, options, &grid, &catalog)
           .ok()) {
    std::abort();
  }
  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  // Provenance recording off for the large sweeps: the paper's numbers
  // are about execution, and recording is measured by FIG1.
  ExecutorOptions eopts;
  eopts.record_provenance = false;
  WorkflowEngine engine(&grid, &catalog, eopts);

  PlannerOptions popts;
  popts.target_site = "fermilab";
  CampaignResult result;
  result.derivations = workload->derivation_count;
  size_t executed = 0;
  for (const std::string& clusters : workload->cluster_catalogs) {
    Result<ExecutionPlan> plan = planner.Plan(clusters, popts);
    if (!plan.ok()) std::abort();
    Status submitted =
        engine
            .Submit(*plan,
                    [&executed](const WorkflowResult& wf) {
                      executed += wf.nodes_succeeded;
                    })
            .status();
    if (!submitted.ok()) std::abort();
  }
  result.makespan_s = grid.RunUntilIdle();
  result.nodes_executed = executed;
  double util_sum = 0;
  for (const std::string& site : grid.topology().SiteNames()) {
    util_sum += *grid.Utilization(site);
  }
  result.mean_utilization =
      util_sum / static_cast<double>(grid.topology().site_count());
  result.transfers = grid.total_transfers_submitted();
  return result;
}

// 1. Paper scale: 192 stripes x 25 fields = 4800 searches + 192
//    merges = 4992 derivations (the paper's "about 5000").
void BM_PaperScaleCampaign(benchmark::State& state) {
  CampaignResult result;
  for (auto _ : state) {
    result = RunCampaign(/*stripes=*/192, /*fields_per_stripe=*/25,
                         /*seed=*/2002);
  }
  state.counters["derivations"] = static_cast<double>(result.derivations);
  state.counters["nodes_executed"] =
      static_cast<double>(result.nodes_executed);
  state.counters["sim_makespan_s"] = result.makespan_s;
  state.counters["mean_utilization"] = result.mean_utilization;
  state.counters["wan_transfers"] = static_cast<double>(result.transfers);
}
BENCHMARK(BM_PaperScaleCampaign)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// 2. Single-workflow width sweep: one stripe whose field count grows
//    toward the paper's "as many as 120 hosts in a single workflow".
//    Makespan should flatten once width ceases to be the bottleneck.
void BM_SingleWorkflowWidth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  CampaignResult result;
  for (auto _ : state) {
    result = RunCampaign(/*stripes=*/1, width, /*seed=*/2002);
  }
  state.counters["workflow_width"] = width;
  state.counters["sim_makespan_s"] = result.makespan_s;
  state.counters["nodes_executed"] =
      static_cast<double>(result.nodes_executed);
}
BENCHMARK(BM_SingleWorkflowWidth)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Arg(120)
    ->Arg(240)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// 3. Concurrency sweep: more stripes in flight should raise grid
//    utilization and total throughput without inflating makespan
//    until the 800 hosts saturate.
void BM_ConcurrentStripes(benchmark::State& state) {
  int stripes = static_cast<int>(state.range(0));
  CampaignResult result;
  for (auto _ : state) {
    result = RunCampaign(stripes, /*fields_per_stripe=*/25, /*seed=*/2002);
  }
  state.counters["stripes"] = stripes;
  state.counters["sim_makespan_s"] = result.makespan_s;
  state.counters["mean_utilization"] = result.mean_utilization;
  state.counters["jobs_per_sim_s"] =
      static_cast<double>(result.nodes_executed) / result.makespan_s;
}
BENCHMARK(BM_ConcurrentStripes)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace vdg
