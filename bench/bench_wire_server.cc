// WIRE-SERVER — the real service runtime's cost profile: binary codec
// encode/decode throughput (frames/sec for representative request and
// response shapes) and full client->server round-trip latency over the
// in-memory pipe transport, sweeping the worker pool 1 -> 8. A single
// synchronous client measures per-call latency, so the worker sweep
// shows the pool adds no overhead as it grows (throughput scaling
// needs concurrent clients and cores; this host gates the floor, not
// the curve).
//
// tools/run_bench.sh merges these into BENCH_federation.json and gates
// the codec + round-trip rates via tools/check_bench_floor.py.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "catalog/client.h"
#include "catalog/wire.h"
#include "federation/server.h"

namespace vdg {
namespace {

constexpr int kChainDepth = 24;

VirtualDataCatalog* ChainCatalog() {
  static std::unique_ptr<VirtualDataCatalog>* cached =
      new std::unique_ptr<VirtualDataCatalog>();
  if (!*cached) *cached = bench::BuildChainCatalog("wire.org", kChainDepth);
  return cached->get();
}

/// A realistic mid-size dataset (annotations + replicas) so the codec
/// benches measure real payloads, not empty structs.
Dataset SampleDataset() {
  Result<Dataset> fetched = ChainCatalog()->GetDataset("d4");
  if (!fetched.ok()) std::abort();
  Dataset dataset = std::move(*fetched);
  for (int i = 0; i < 4; ++i) {
    dataset.annotations.Set("tag" + std::to_string(i),
                            AttributeValue("value-" + std::to_string(i)));
  }
  return dataset;
}

// Codec: encode one GetDataset request frame and decode it back — the
// hot path every wire call pays twice (client encode, server decode).
void BM_WireEncodeDecodeRequest(benchmark::State& state) {
  wire::Request request;
  request.kind = wire::MsgKind::kGetDataset;
  request.body = wire::NameReq{"d" + std::to_string(kChainDepth)};
  uint64_t id = 0;
  for (auto _ : state) {
    std::string frame = wire::EncodeRequestFrame(++id, request);
    Result<size_t> size = wire::FrameSize(frame);
    if (!size.ok() || *size != frame.size()) std::abort();
    Result<wire::Frame> envelope = wire::DecodeFrame(frame);
    if (!envelope.ok()) std::abort();
    Result<wire::Request> decoded =
        wire::DecodeRequest(envelope->kind, envelope->payload);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncodeDecodeRequest);

// Codec: encode + decode a dataset-carrying response — the dominant
// payload shape on the read path (attributes, replicas, type).
void BM_WireEncodeDecodeResponse(benchmark::State& state) {
  wire::Response response;
  response.kind = wire::MsgKind::kGetDataset;
  response.body = wire::DatasetResp{SampleDataset()};
  uint64_t id = 0;
  size_t frame_bytes = 0;
  for (auto _ : state) {
    std::string frame = wire::EncodeResponseFrame(++id, response);
    frame_bytes = frame.size();
    Result<wire::Frame> envelope = wire::DecodeFrame(frame);
    if (!envelope.ok()) std::abort();
    Result<wire::Response> decoded =
        wire::DecodeResponse(envelope->kind, envelope->payload);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["frame_bytes"] = static_cast<double>(frame_bytes);
}
BENCHMARK(BM_WireEncodeDecodeResponse);

// Full round trip: GetDataset through WireCatalogClient -> pipe ->
// dispatcher -> worker -> backend and back, per worker-pool size.
// items/sec here is calls/sec for one synchronous client.
void BM_WireServerRoundTrip(benchmark::State& state) {
  ServerOptions options;
  options.workers = static_cast<size_t>(state.range(0));
  CatalogServer server(std::make_shared<InProcessCatalogClient>(ChainCatalog()),
                       options);
  Result<std::shared_ptr<WireCatalogClient>> client =
      WireCatalogClient::Connect(&server);
  if (!client.ok()) std::abort();
  const std::string name = "d" + std::to_string(kChainDepth / 2);
  for (auto _ : state) {
    Result<Dataset> dataset = (*client)->GetDataset(name);
    if (!dataset.ok()) std::abort();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["workers"] = static_cast<double>(options.workers);
  state.counters["bytes_per_call"] =
      static_cast<double>((*client)->stats().bytes_sent +
                          (*client)->stats().bytes_received) /
      static_cast<double>(state.iterations() + 1);  // +1: handshake
}
BENCHMARK(BM_WireServerRoundTrip)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The compound write path: one ApplyBatch frame carrying a replica,
// an invocation consuming it, and a cross-referencing annotation —
// the executor write-back shape, end to end over the wire.
void BM_WireServerApplyBatch(benchmark::State& state) {
  CatalogServer server(
      std::make_shared<InProcessCatalogClient>(ChainCatalog()));
  Result<std::shared_ptr<WireCatalogClient>> client =
      WireCatalogClient::Connect(&server);
  if (!client.ok()) std::abort();
  int serial = 0;
  for (auto _ : state) {
    Replica replica;
    replica.dataset = "d1";
    replica.site = "wire.org";
    replica.storage_element = "se0";
    replica.physical_path = "/store/d1." + std::to_string(serial++);
    std::vector<CatalogMutation> mutations;
    mutations.push_back(CatalogMutation::AddReplica(replica));
    mutations.push_back(CatalogMutation::Annotate(
        "dataset", "d1", "bench_pass", AttributeValue(int64_t{serial})));
    Result<BatchResult> result = (*client)->ApplyBatch(mutations);
    if (!result.ok() || !result->applied) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireServerApplyBatch);

}  // namespace
}  // namespace vdg
