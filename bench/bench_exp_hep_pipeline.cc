// EXP-HEP — Section 6: the CMS collision-event simulation "consisted
// of four separate program executions with intermediate and final
// results passing between the stages", the last two stages using OODB
// files (multi-modal data). Expressed through the compound
// transformation, so this bench also measures compound expansion.
//
// Series reproduced: per-batch pipeline makespan (compound vs explicit
// four-derivation form must match), batch-count scaling on the
// GriPhyN testbed, and expansion cost.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/expansion.h"
#include "planner/planner.h"
#include "workload/hep.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

double RunHep(int batches, bool use_compound, uint64_t seed,
              size_t* invocations_out) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("cms-bench.org");
  if (!catalog.Open().ok()) std::abort();
  workload::HepOptions options;
  options.num_batches = batches;
  options.use_compound = use_compound;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog, options);
  if (!workload.ok()) std::abort();

  GridSimulator grid(workload::GriphynTestbed(), seed);
  std::vector<std::string> sites = grid.topology().SiteNames();
  for (size_t b = 0; b < workload->config_datasets.size(); ++b) {
    const std::string& config = workload->config_datasets[b];
    const std::string& site = sites[b % sites.size()];
    if (!grid.PlaceFile(site, config, 64 * 1024, true).ok()) std::abort();
    Replica r;
    r.dataset = config;
    r.site = site;
    r.size_bytes = 64 * 1024;
    if (!catalog.AddReplica(r).ok()) std::abort();
  }
  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  WorkflowEngine engine(&grid, &catalog);
  PlannerOptions popts;
  popts.target_site = "uchicago";
  for (const std::string& ntuple : workload->ntuples) {
    Result<ExecutionPlan> plan = planner.Plan(ntuple, popts);
    if (!plan.ok()) std::abort();
    if (plan->nodes.size() != 4) std::abort();  // the 4-stage invariant
    if (!engine.Submit(*plan, nullptr).ok()) std::abort();
  }
  double makespan = grid.RunUntilIdle();
  if (invocations_out != nullptr) {
    *invocations_out = catalog.Stats().invocations;
  }
  return makespan;
}

void BM_PipelineCompound(benchmark::State& state) {
  int batches = static_cast<int>(state.range(0));
  double makespan = 0;
  size_t invocations = 0;
  for (auto _ : state) {
    makespan = RunHep(batches, /*use_compound=*/true, 7, &invocations);
  }
  state.counters["batches"] = batches;
  state.counters["sim_makespan_s"] = makespan;
  state.counters["invocations_recorded"] =
      static_cast<double>(invocations);
}
BENCHMARK(BM_PipelineCompound)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The explicit four-derivation form must execute identically — the
// compound construct is notation, not semantics.
void BM_PipelineExplicit(benchmark::State& state) {
  int batches = static_cast<int>(state.range(0));
  double makespan = 0;
  for (auto _ : state) {
    makespan = RunHep(batches, /*use_compound=*/false, 7, nullptr);
  }
  state.counters["batches"] = batches;
  state.counters["sim_makespan_s"] = makespan;
}
BENCHMARK(BM_PipelineExplicit)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Compound-expansion throughput in isolation.
void BM_CompoundExpansion(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("cms-expand.org");
  if (!catalog.Open().ok()) std::abort();
  workload::HepOptions options;
  options.num_batches = 8;
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog, options);
  if (!workload.ok()) std::abort();
  Result<Derivation> dv = catalog.GetDerivation(workload->derivations[0]);
  if (!dv.ok()) std::abort();
  for (auto _ : state) {
    Result<std::vector<Derivation>> subs = ExpandDerivation(catalog, *dv);
    benchmark::DoNotOptimize(subs);
    if (!subs.ok() || subs->size() != 4) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompoundExpansion);

}  // namespace
}  // namespace vdg
