// EXP-INTER — Section 6's "current work": interactive analysis with
// changeable codes, cut sets, and histograms, where the goal is "to
// produce, for each data point in the final graph, a detailed data
// lineage report on the datasets that contributed to the creation of
// that point".
//
// Series reproduced: lineage-report latency and size for the final
// graph as the session grows (iterations x cuts), and audit-trail
// extraction once the session has executed.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/interactive.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

struct Session {
  std::unique_ptr<VirtualDataCatalog> catalog;
  workload::InteractiveWorkload workload;
};

Session* BuildSession(int iterations, int cuts, bool execute) {
  static std::map<std::tuple<int, int, bool>, std::unique_ptr<Session>>*
      cache =
          new std::map<std::tuple<int, int, bool>, std::unique_ptr<Session>>();
  auto key = std::make_tuple(iterations, cuts, execute);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto session = std::make_unique<Session>();
  session->catalog = std::make_unique<VirtualDataCatalog>("ana-bench.org");
  if (!session->catalog->Open().ok()) std::abort();
  workload::InteractiveOptions options;
  options.num_iterations = iterations;
  options.cuts_per_iteration = cuts;
  Result<workload::InteractiveWorkload> workload =
      workload::GenerateInteractive(session->catalog.get(), options);
  if (!workload.ok()) std::abort();
  session->workload = std::move(*workload);

  if (execute) {
    GridSimulator grid(workload::SmallTestbed(), 3);
    if (!grid.PlaceFile("east", session->workload.event_store,
                        512LL * 1024 * 1024, true)
             .ok()) {
      std::abort();
    }
    Replica r;
    r.dataset = session->workload.event_store;
    r.site = "east";
    r.size_bytes = 512LL * 1024 * 1024;
    if (!session->catalog->AddReplica(r).ok()) std::abort();
    CostEstimator estimator;
    RequestPlanner planner(*session->catalog, grid.topology(), &grid.rls(),
                           estimator);
    WorkflowEngine engine(&grid, session->catalog.get());
    PlannerOptions popts;
    popts.target_site = "east";
    Result<ExecutionPlan> plan =
        planner.Plan(session->workload.final_graph, popts);
    if (!plan.ok()) std::abort();
    Result<WorkflowResult> result = engine.Execute(*plan);
    if (!result.ok() || !result->succeeded) std::abort();
  }
  Session* raw = session.get();
  cache->emplace(key, std::move(session));
  return raw;
}

// The per-point lineage report: latency and report size vs session
// scale.
void BM_LineageReportForFinalGraph(benchmark::State& state) {
  int iterations = static_cast<int>(state.range(0));
  int cuts = static_cast<int>(state.range(1));
  Session* session = BuildSession(iterations, cuts, /*execute=*/false);
  ProvenanceTracker tracker(*session->catalog);
  size_t report_nodes = 0;
  size_t report_bytes = 0;
  for (auto _ : state) {
    Result<LineageNode> lineage =
        tracker.Lineage(session->workload.final_graph);
    if (!lineage.ok()) std::abort();
    report_nodes = CountLineageNodes(*lineage);
    std::string report = RenderLineage(*lineage);
    benchmark::DoNotOptimize(report);
    report_bytes = report.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["histograms"] = iterations * cuts;
  state.counters["report_nodes"] = static_cast<double>(report_nodes);
  state.counters["report_bytes"] = static_cast<double>(report_bytes);
}
BENCHMARK(BM_LineageReportForFinalGraph)
    ->Args({2, 2})
    ->Args({5, 3})
    ->Args({10, 5})
    ->Args({20, 10});

// Per-histogram (single data point) lineage, the inner loop of the
// paper's goal.
void BM_LineagePerHistogram(benchmark::State& state) {
  Session* session = BuildSession(10, 5, /*execute=*/false);
  ProvenanceTracker tracker(*session->catalog);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& hist =
        session->workload
            .histograms[i++ % session->workload.histograms.size()];
    Result<LineageNode> lineage = tracker.Lineage(hist);
    benchmark::DoNotOptimize(lineage);
    if (!lineage.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineagePerHistogram);

// After executing the session, the audit trail carries the actual
// invocation record behind each point.
void BM_AuditTrailAfterExecution(benchmark::State& state) {
  Session* session = BuildSession(5, 3, /*execute=*/true);
  ProvenanceTracker tracker(*session->catalog);
  size_t trail_len = 0;
  for (auto _ : state) {
    Result<std::vector<Invocation>> trail =
        tracker.AuditTrail(session->workload.final_graph);
    if (!trail.ok()) std::abort();
    trail_len = trail->size();
  }
  state.SetItemsProcessed(state.iterations());
  // 15 selects + 15 hists + 1 graph = 31 invocations upstream.
  state.counters["trail_invocations"] = static_cast<double>(trail_len);
}
BENCHMARK(BM_AuditTrailAfterExecution);

// Discovery across code versions: which cut sets did version vK make?
void BM_DiscoveryByCodeVersion(benchmark::State& state) {
  Session* session = BuildSession(10, 5, /*execute=*/false);
  size_t i = 0;
  size_t hits = 0;
  for (auto _ : state) {
    DerivationQuery query;
    query.transformation =
        session->workload
            .analysis_codes[i++ % session->workload.analysis_codes.size()];
    NameList found =
        session->catalog->FindDerivations(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["derivations_per_version"] = static_cast<double>(hits);
}
BENCHMARK(BM_DiscoveryByCodeVersion);

}  // namespace
}  // namespace vdg
