// ABL-DEDUP — Section 1's motivating quote: "If the program has
// already been run and the results stored, I'll save weeks of
// computation." This ablation submits request streams with a
// controlled overlap fraction (how often a request repeats an earlier
// computation) and measures how much compute the signature-based dedup
// plus materialized-reuse machinery saves.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

struct DedupOutcome {
  size_t requests = 0;
  size_t dedup_hits = 0;       // answered by signature lookup
  size_t jobs_executed = 0;    // actual grid jobs run
  double compute_saved_s = 0;  // runtime that did not need to run
};

DedupOutcome RunStream(int overlap_percent, int requests, uint64_t seed) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("dedup.org");
  if (!catalog.Open().ok()) std::abort();
  if (!catalog
           .ImportVdl("TR crunch( output out, input in, none level ) {"
                      "  argument l = \"-l \"${none:level};"
                      "  argument stdin = ${input:in};"
                      "  argument stdout = ${output:out};"
                      "  exec = \"/bin/crunch\"; }"
                      "DS corpus : Dataset size=\"1048576\";")
           .ok()) {
    std::abort();
  }
  Status annotated =
      catalog.Annotate("transformation", "crunch", "sim.runtime_s", 50.0);
  if (!annotated.ok()) std::abort();

  GridSimulator grid(workload::SmallTestbed(), seed);
  if (!grid.PlaceFile("east", "corpus", 1 << 20, true).ok()) std::abort();
  Replica r;
  r.dataset = "corpus";
  r.site = "east";
  r.size_bytes = 1 << 20;
  if (!catalog.AddReplica(r).ok()) std::abort();

  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  WorkflowEngine engine(&grid, &catalog);
  PlannerOptions popts;
  popts.target_site = "east";

  Rng rng(seed);
  DedupOutcome outcome;
  outcome.requests = static_cast<size_t>(requests);
  int unique_levels = 0;
  for (int i = 0; i < requests; ++i) {
    // With probability `overlap`, re-request an existing level; else a
    // brand new parameterization.
    int level;
    if (unique_levels > 0 &&
        rng.Chance(static_cast<double>(overlap_percent) / 100.0)) {
      level = static_cast<int>(rng.Index(static_cast<size_t>(unique_levels)));
    } else {
      level = unique_levels++;
    }
    std::string output = "result-l" + std::to_string(level);
    Derivation request("req" + std::to_string(i), "crunch");
    Status s1 = request.AddArg(
        ActualArg::DatasetRef("out", output, ArgDirection::kOut));
    Status s2 = request.AddArg(
        ActualArg::DatasetRef("in", "corpus", ArgDirection::kIn));
    Status s3 = request.AddArg(
        ActualArg::String("level", std::to_string(level)));
    if (!s1.ok() || !s2.ok() || !s3.ok()) std::abort();

    // The community workflow: check the catalog before computing.
    if (catalog.HasBeenComputed(request)) {
      ++outcome.dedup_hits;
      outcome.compute_saved_s += 50.0;
      continue;
    }
    if (!catalog.HasDerivation("canon-l" + std::to_string(level))) {
      Derivation canonical("canon-l" + std::to_string(level), "crunch");
      Status c1 = canonical.AddArg(
          ActualArg::DatasetRef("out", output, ArgDirection::kOut));
      Status c2 = canonical.AddArg(
          ActualArg::DatasetRef("in", "corpus", ArgDirection::kIn));
      Status c3 = canonical.AddArg(
          ActualArg::String("level", std::to_string(level)));
      if (!c1.ok() || !c2.ok() || !c3.ok()) std::abort();
      if (!catalog.DefineDerivation(std::move(canonical)).ok()) {
        std::abort();
      }
    }
    Result<ExecutionPlan> plan = planner.Plan(output, popts);
    if (!plan.ok()) std::abort();
    Result<WorkflowResult> result = engine.Execute(*plan);
    if (!result.ok() || !result->succeeded) std::abort();
    outcome.jobs_executed += result->nodes_succeeded;
  }
  return outcome;
}

void BM_DedupByOverlap(benchmark::State& state) {
  int overlap = static_cast<int>(state.range(0));
  DedupOutcome outcome;
  for (auto _ : state) {
    outcome = RunStream(overlap, /*requests=*/200, /*seed=*/31);
  }
  state.counters["overlap_pct"] = overlap;
  state.counters["requests"] = static_cast<double>(outcome.requests);
  state.counters["dedup_hits"] = static_cast<double>(outcome.dedup_hits);
  state.counters["jobs_executed"] =
      static_cast<double>(outcome.jobs_executed);
  state.counters["compute_saved_s"] = outcome.compute_saved_s;
  state.counters["saved_fraction"] =
      outcome.compute_saved_s /
      (50.0 * static_cast<double>(outcome.requests));
}
BENCHMARK(BM_DedupByOverlap)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(95)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Raw probe cost: the signature lookup itself stays O(1)-ish as the
// derivation space grows.
void BM_SignatureProbeScaling(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(n);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(n);
  Result<Derivation> probe = catalog->GetDerivation(graph.derivations[0]);
  if (!probe.ok()) std::abort();
  for (auto _ : state) {
    bool computed = catalog->HasBeenComputed(*probe);
    benchmark::DoNotOptimize(computed);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["derivations_in_catalog"] = static_cast<double>(n);
}
BENCHMARK(BM_SignatureProbeScaling)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace vdg
