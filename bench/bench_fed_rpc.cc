// FED-RPC — the cost of federation when every cross-catalog access
// pays a (simulated) round trip, and what the batching + caching
// layers buy back. Reprises the Figure 3 provenance-chain walk and the
// Figure 4 index refresh over SimulatedRpcCatalogClient in three
// transport modes:
//   naive   — every point lookup is its own round trip (batching off)
//   batched — compound GetProvenanceStep / BatchGet, one trip each
//   cached  — batched + the version-invalidated remote object cache
// plus a fault sweep (loss + scheduled outages) showing the retry
// path absorbs transport faults without hard failures.
//
// The `round_trips` counter on each benchmark is trips per walk /
// refresh; tools/run_bench.sh gates on naive/batched+cache >= 5x.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "federation/fed_provenance.h"
#include "federation/index.h"
#include "federation/registry.h"
#include "federation/remote_cache.h"
#include "federation/rpc_client.h"
#include "grid/simulator.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr int kChainDepth = 24;  // FIG3 chain: d0 (raw) .. d24
constexpr int kChurn = 20;       // FIG4 distinct objects per refresh

/// A single-authority catalog holding a linear derivation chain — the
/// Figure 3 shape with every link behind one (remote) server.
VirtualDataCatalog* ChainCatalog() {
  static std::unique_ptr<VirtualDataCatalog>* cached =
      new std::unique_ptr<VirtualDataCatalog>();
  if (!*cached) *cached = bench::BuildChainCatalog("chain.org", kChainDepth);
  return cached->get();
}

struct RpcWorld {
  std::unique_ptr<GridSimulator> grid;
  std::shared_ptr<SimulatedRpcCatalogClient> rpc;
  CatalogRegistry registry;

  explicit RpcWorld(bool batching, std::shared_ptr<CatalogClient> cache_over =
                                       nullptr) {
    grid = std::make_unique<GridSimulator>(workload::SmallTestbed(), 11);
    RpcConfig config;
    config.enable_batching = batching;
    rpc = std::make_shared<SimulatedRpcCatalogClient>(
        std::make_shared<InProcessCatalogClient>(ChainCatalog()),
        grid.get(), config);
    std::shared_ptr<CatalogClient> endpoint = rpc;
    if (cache_over != nullptr) endpoint = cache_over;
    if (!registry.RegisterClient(endpoint).ok()) std::abort();
  }
};

void WalkChain(const CatalogRegistry& registry) {
  FederatedProvenance prov(registry);
  Result<LineageNode> lineage =
      prov.Lineage(nullptr, "vdp://chain.org/d" + std::to_string(kChainDepth));
  if (!lineage.ok()) std::abort();
  benchmark::DoNotOptimize(lineage);
}

// FIG3 over naive RPC: each of the chain's links costs four point
// round trips (exists / producer / derivation / invocations).
void BM_Fig3ChainWalk_NaiveRpc(benchmark::State& state) {
  RpcWorld world(/*batching=*/false);
  for (auto _ : state) {
    WalkChain(world.registry);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips"] =
      static_cast<double>(world.rpc->stats().round_trips) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fig3ChainWalk_NaiveRpc);

// FIG3 batched: one compound GetProvenanceStep trip per link.
void BM_Fig3ChainWalk_BatchedRpc(benchmark::State& state) {
  RpcWorld world(/*batching=*/true);
  for (auto _ : state) {
    WalkChain(world.registry);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips"] =
      static_cast<double>(world.rpc->stats().round_trips) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fig3ChainWalk_BatchedRpc);

// FIG3 batched + cache: the first walk fills the step cache; repeat
// walks are round-trip-free until the server's version moves.
void BM_Fig3ChainWalk_CachedRpc(benchmark::State& state) {
  auto grid = std::make_unique<GridSimulator>(workload::SmallTestbed(), 11);
  auto rpc = std::make_shared<SimulatedRpcCatalogClient>(
      std::make_shared<InProcessCatalogClient>(ChainCatalog()), grid.get());
  auto cache = std::make_shared<CachingCatalogClient>(rpc);
  CatalogRegistry registry;
  if (!registry.RegisterClient(cache).ok()) std::abort();
  for (auto _ : state) {
    WalkChain(registry);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips"] =
      static_cast<double>(rpc->stats().round_trips) /
      static_cast<double>(state.iterations());
  state.counters["cache_hits"] = static_cast<double>(cache->stats().hits);
}
BENCHMARK(BM_Fig3ChainWalk_CachedRpc);

// FIG4 refresh at churn K over one remote source. Naive: version poll
// + changelog + K point gets. Batched: version poll + changelog + ONE
// BatchGet, independent of K.
void RunRefresh(benchmark::State& state, bool batching) {
  auto grid = std::make_unique<GridSimulator>(workload::SmallTestbed(), 13);
  RpcConfig config;
  config.enable_batching = batching;
  VirtualDataCatalog* catalog = ChainCatalog();
  auto rpc = std::make_shared<SimulatedRpcCatalogClient>(
      std::make_shared<InProcessCatalogClient>(catalog), grid.get(), config);
  FederatedIndex index("fig4-rpc");
  if (!index.AddSource(rpc).ok()) std::abort();
  if (!index.Refresh().ok()) std::abort();

  uint64_t refresh_trips = 0;
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Touch K distinct datasets so the delta carries K upserts.
    for (int i = 0; i < kChurn; ++i) {
      Status touched =
          catalog->Annotate("dataset", "d" + std::to_string(i % kChainDepth),
                            "round", round);
      if (!touched.ok()) std::abort();
    }
    ++round;
    uint64_t before = rpc->stats().round_trips;
    state.ResumeTiming();
    if (!index.Refresh().ok()) std::abort();
    refresh_trips += rpc->stats().round_trips - before;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips"] = static_cast<double>(refresh_trips) /
                                  static_cast<double>(state.iterations());
  state.counters["churn"] = kChurn;
}

void BM_Fig4Refresh_NaiveRpc(benchmark::State& state) {
  RunRefresh(state, /*batching=*/false);
}
BENCHMARK(BM_Fig4Refresh_NaiveRpc);

void BM_Fig4Refresh_BatchedRpc(benchmark::State& state) {
  RunRefresh(state, /*batching=*/true);
}
BENCHMARK(BM_Fig4Refresh_BatchedRpc);

// Fault sweep: 15% loss plus a crash/restore outage cycle on the
// server's site. Every walk must still complete — retries and
// backoff absorb the faults — with zero hard failures.
void BM_FaultSweep(benchmark::State& state) {
  auto grid = std::make_unique<GridSimulator>(workload::SmallTestbed(), 17);
  RpcConfig config;
  config.loss_rate = 0.15;
  config.site = "east";
  config.max_attempts = 10;
  config.backoff_base_s = 0.2;
  auto rpc = std::make_shared<SimulatedRpcCatalogClient>(
      std::make_shared<InProcessCatalogClient>(ChainCatalog()), grid.get(),
      config);
  CatalogRegistry registry;
  if (!registry.RegisterClient(rpc).ok()) std::abort();
  int walk = 0;
  for (auto _ : state) {
    // Every 4th walk starts under a 2-simulated-second crash window.
    if (walk++ % 4 == 0) {
      if (!grid->ScheduleOutage("east", 0.0, 2.0, true).ok()) std::abort();
    }
    WalkChain(registry);
  }
  if (rpc->stats().failures != 0) std::abort();
  state.SetItemsProcessed(state.iterations());
  state.counters["retries"] = static_cast<double>(rpc->stats().retries);
  state.counters["lost_calls"] =
      static_cast<double>(rpc->stats().lost_calls);
  state.counters["outage_rejections"] =
      static_cast<double>(rpc->stats().outage_rejections);
  state.counters["failures"] = static_cast<double>(rpc->stats().failures);
}
BENCHMARK(BM_FaultSweep);

// Executor provenance write-back over RPC: the batch an executor
// ships after running a derivation — replicas for each output, the
// dataset size updates, the invocation consuming those replica ids,
// and a retry-count annotation on the invocation. Naive transport
// decomposes the batch into per-op round trips (plus a version poll);
// batched ships the whole thing in ONE trip.
void RunWriteBack(benchmark::State& state, bool batching) {
  // Fresh chain catalog per run: write-back mutates it, and sharing
  // the cached ChainCatalog would leak state into the walk benches.
  std::unique_ptr<VirtualDataCatalog> catalog =
      bench::BuildChainCatalog("writeback.org", kChainDepth);
  auto grid = std::make_unique<GridSimulator>(workload::SmallTestbed(), 19);
  RpcConfig config;
  config.enable_batching = batching;
  auto rpc = std::make_shared<SimulatedRpcCatalogClient>(
      std::make_shared<InProcessCatalogClient>(catalog.get()), grid.get(),
      config);

  constexpr int kOutputs = 3;
  uint64_t trips = 0;
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<CatalogMutation> batch;
    std::vector<size_t> replica_ops;
    for (int o = 0; o < kOutputs; ++o) {
      std::string ds = "d" + std::to_string(1 + (run * kOutputs + o) %
                                                    kChainDepth);
      Replica replica;
      replica.dataset = ds;
      replica.site = "east";
      replica.storage_element = "se0";
      replica.physical_path = "/scratch/" + ds;
      replica.size_bytes = 1 << 20;
      replica_ops.push_back(batch.size());
      batch.push_back(CatalogMutation::AddReplica(std::move(replica)));
      batch.push_back(CatalogMutation::SetDatasetSize(ds, 1 << 20));
    }
    Invocation iv;
    iv.derivation = "l" + std::to_string(1 + run % kChainDepth);
    iv.context.site = "east";
    iv.context.host = "n0";
    iv.start_time = static_cast<double>(run);
    iv.duration_s = 5;
    batch.push_back(CatalogMutation::RecordInvocation(std::move(iv),
                                                      replica_ops));
    batch.push_back(CatalogMutation::AnnotateAssigned(
        "invocation", batch.size() - 1, "recovery.attempts",
        static_cast<int64_t>(2)));
    BatchOptions options;
    options.stop_on_error = true;
    uint64_t before = rpc->stats().round_trips;
    state.ResumeTiming();
    Result<BatchResult> applied = rpc->ApplyBatch(batch, options);
    if (!applied.ok() || !applied->first_error.ok()) std::abort();
    trips += rpc->stats().round_trips - before;
    ++run;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["round_trips"] =
      static_cast<double>(trips) / static_cast<double>(state.iterations());
  state.counters["batch_ops"] = 2 * kOutputs + 2;
}

void BM_ExecutorWriteBack_NaiveRpc(benchmark::State& state) {
  RunWriteBack(state, /*batching=*/false);
}
BENCHMARK(BM_ExecutorWriteBack_NaiveRpc);

void BM_ExecutorWriteBack_BatchedRpc(benchmark::State& state) {
  RunWriteBack(state, /*batching=*/true);
}
BENCHMARK(BM_ExecutorWriteBack_BatchedRpc);

}  // namespace
}  // namespace vdg
