// ABL-REP — Section 5.2 calls for "decisions to replicate popular
// datasets and procedures either on demand and/or via pre-staging",
// citing the dynamic-replication studies [18, 19]. This ablation runs
// the four strategies (none / caching / cascading / fast-spread) on a
// tiered grid under Zipf-skewed access and reports mean response time,
// hit rate, bytes moved, and evictions — the shape to reproduce is
// cascading/fast-spread beating no-replication under skew.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "replication/manager.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr int kFiles = 64;
constexpr int64_t kFileBytes = 8 << 20;  // 8 MiB survey files
constexpr int kRequests = 600;

std::unique_ptr<ReplicationPolicy> MakePolicy(
    int kind, const std::map<std::string, std::string>& parents,
    const std::vector<std::string>& sites) {
  switch (kind) {
    case 0:
      return std::make_unique<NoReplicationPolicy>();
    case 1:
      return std::make_unique<CachingPolicy>();
    case 2:
      return std::make_unique<CascadingPolicy>(parents, 2);
    default:
      return std::make_unique<FastSpreadPolicy>(sites);
  }
}

ReplicationStats RunWorkload(int policy_kind, double zipf_skew,
                             uint64_t seed) {
  Logger::set_threshold(LogLevel::kError);
  std::map<std::string, std::string> parents;
  // 2 regions x 4 leaves; leaves hold 128 MiB (16 files) each.
  GridTopology topology =
      workload::TieredTestbed(2, 4, 128LL << 20, &parents);
  GridSimulator grid(std::move(topology), seed);
  std::vector<std::string> sites = grid.topology().SiteNames();
  std::vector<std::string> leaves;
  for (const auto& [site, parent] : parents) {
    if (site.find("leaf") != std::string::npos) leaves.push_back(site);
  }

  ReplicaManager manager(&grid,
                         MakePolicy(policy_kind, parents, sites));
  // All files originate at the root archive.
  for (int f = 0; f < kFiles; ++f) {
    Status s = manager.ProduceFile("root", "file" + std::to_string(f),
                                   kFileBytes);
    if (!s.ok()) std::abort();
  }
  grid.RunUntilIdle();

  // Zipf-skewed demand from random leaves, arriving over time.
  Rng rng(seed);
  for (int r = 0; r < kRequests; ++r) {
    const std::string& leaf = leaves[rng.Index(leaves.size())];
    std::string file =
        "file" + std::to_string(rng.Zipf(kFiles, zipf_skew));
    grid.events().ScheduleAfter(
        static_cast<double>(r) * 2.0, [&manager, leaf, file]() {
          Status s = manager.RequestFile(leaf, file, nullptr);
          (void)s;
        });
  }
  grid.RunUntilIdle();
  return manager.stats();
}

const char* PolicyName(int kind) {
  switch (kind) {
    case 0:
      return "none";
    case 1:
      return "caching";
    case 2:
      return "cascading";
    default:
      return "fast-spread";
  }
}

void BM_StrategyUnderSkew(benchmark::State& state) {
  int policy = static_cast<int>(state.range(0));
  ReplicationStats stats;
  for (auto _ : state) {
    stats = RunWorkload(policy, /*zipf_skew=*/1.0, /*seed=*/99);
  }
  state.SetLabel(PolicyName(policy));
  state.counters["mean_response_s"] = stats.mean_latency_s();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["mb_transferred"] =
      static_cast<double>(stats.bytes_transferred) / (1 << 20);
  state.counters["replicas_created"] =
      static_cast<double>(stats.replicas_created);
  state.counters["evictions"] = static_cast<double>(stats.evictions);
}
BENCHMARK(BM_StrategyUnderSkew)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Pre-staging (§5.2's other half): no reactive replication, but after
// a warm-up quarter of the workload, the advisor mines access history
// and pushes popular files ahead of demand. Response time should land
// between `none` and `caching`.
void BM_PrestagingAdvisor(benchmark::State& state) {
  uint64_t min_accesses = static_cast<uint64_t>(state.range(0));
  ReplicationStats stats;
  for (auto _ : state) {
    Logger::set_threshold(LogLevel::kError);
    std::map<std::string, std::string> parents;
    GridTopology topology =
        workload::TieredTestbed(2, 4, 128LL << 20, &parents);
    GridSimulator grid(std::move(topology), 99);
    std::vector<std::string> leaves;
    for (const auto& [site, parent] : parents) {
      if (site.find("leaf") != std::string::npos) leaves.push_back(site);
    }
    ReplicaManager manager(&grid,
                           std::make_unique<NoReplicationPolicy>());
    for (int f = 0; f < kFiles; ++f) {
      Status s = manager.ProduceFile("root", "file" + std::to_string(f),
                                     kFileBytes);
      if (!s.ok()) std::abort();
    }
    grid.RunUntilIdle();
    Rng rng(99);
    for (int r = 0; r < kRequests; ++r) {
      const std::string& leaf = leaves[rng.Index(leaves.size())];
      std::string file = "file" + std::to_string(rng.Zipf(kFiles, 1.0));
      grid.events().ScheduleAfter(
          static_cast<double>(r) * 2.0, [&manager, leaf, file]() {
            Status s = manager.RequestFile(leaf, file, nullptr);
            (void)s;
          });
      if (r == kRequests / 4) {
        // One advisory pass after the warm-up window.
        grid.events().ScheduleAfter(
            static_cast<double>(r) * 2.0 + 1.0,
            [&manager, min_accesses]() {
              Status s = manager.ApplyPrestaging(
                  manager.SuggestPrestaging(min_accesses));
              (void)s;
            });
      }
    }
    grid.RunUntilIdle();
    stats = manager.stats();
  }
  state.counters["min_accesses"] = static_cast<double>(min_accesses);
  state.counters["mean_response_s"] = stats.mean_latency_s();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["replicas_created"] =
      static_cast<double>(stats.replicas_created);
}
BENCHMARK(BM_PrestagingAdvisor)
    ->Arg(1)
    ->Arg(3)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Skew sensitivity for the caching strategy: more skew, more hits.
void BM_CachingVsSkew(benchmark::State& state) {
  double skew = static_cast<double>(state.range(0)) / 10.0;
  ReplicationStats stats;
  for (auto _ : state) {
    stats = RunWorkload(/*policy=*/1, skew, /*seed=*/99);
  }
  state.counters["zipf_skew"] = skew;
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["mean_response_s"] = stats.mean_latency_s();
}
BENCHMARK(BM_CachingVsSkew)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace vdg
