// Concurrent-read throughput of the shared-mutex catalog protocol.
// Sweeps reader thread count 1..16 over indexed discovery queries and
// point lookups against a fixed catalog, plus a contended variant
// where thread 0 writes while the rest read. With a shared_mutex,
// read-only throughput should scale with threads (on multi-core
// hosts) instead of serializing; tools/run_bench.sh records the
// per-thread items/sec curve into BENCH_concurrency.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "catalog/query.h"
#include "federation/index.h"

namespace vdg {
namespace {

constexpr size_t kCatalogSize = 2000;

DatasetQuery ShardQuery(int64_t shard) {
  DatasetQuery q;
  q.predicates.push_back(
      AttributePredicate{"shard", PredicateOp::kEq, AttributeValue(shard)});
  return q;
}

// A catalog whose datasets carry an indexed "shard" annotation so the
// reader queries hit the attribute-index path.
VirtualDataCatalog* ShardedCatalog() {
  static VirtualDataCatalog* catalog = [] {
    VirtualDataCatalog* c = bench::CachedCanonicalCatalog(kCatalogSize);
    std::vector<std::string> names = c->AllDatasetNames();
    for (size_t i = 0; i < names.size(); ++i) {
      Status s = c->Annotate("dataset", names[i], "shard",
                             AttributeValue(static_cast<int64_t>(i % 16)));
      if (!s.ok()) std::abort();
    }
    return c;
  }();
  return catalog;
}

void BM_ConcIndexedFind(benchmark::State& state) {
  const VirtualDataCatalog* catalog = ShardedCatalog();
  int64_t shard = state.thread_index() % 16;
  size_t found = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(ShardQuery(shard)).size();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConcIndexedFind)->ThreadRange(1, 16)->UseRealTime();

void BM_ConcPointLookup(benchmark::State& state) {
  const VirtualDataCatalog* catalog = ShardedCatalog();
  std::vector<std::string> names = catalog->AllDatasetNames();
  size_t i = static_cast<size_t>(state.thread_index()) * 37;
  size_t hits = 0;
  for (auto _ : state) {
    Result<Dataset> ds = catalog->GetDataset(names[i++ % names.size()]);
    if (ds.ok()) ++hits;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConcPointLookup)->ThreadRange(1, 16)->UseRealTime();

// Readers with one writer thread mutating annotations: measures how
// much a serialized writer degrades shared-lock readers.
void BM_ConcReadWithWriter(benchmark::State& state) {
  VirtualDataCatalog* catalog = ShardedCatalog();
  if (state.thread_index() == 0) {
    std::vector<std::string> names = catalog->AllDatasetNames();
    size_t i = 0;
    for (auto _ : state) {
      Status s = catalog->Annotate(
          "dataset", names[i % names.size()], "shard",
          AttributeValue(static_cast<int64_t>(i % 16)));
      benchmark::DoNotOptimize(s.ok());
      ++i;
    }
    state.SetItemsProcessed(0);  // count reader throughput only
  } else {
    int64_t shard = state.thread_index() % 16;
    size_t found = 0;
    for (auto _ : state) {
      found += catalog->FindDatasets(ShardQuery(shard)).size();
    }
    benchmark::DoNotOptimize(found);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  }
}
BENCHMARK(BM_ConcReadWithWriter)->ThreadRange(2, 16)->UseRealTime();

// Index lookups while a refresher keeps the snapshot current.
void BM_ConcFederatedLookup(benchmark::State& state) {
  static FederatedIndex* index = [] {
    auto* idx = new FederatedIndex("conc-bench");
    if (!idx->AddSource(ShardedCatalog()).ok()) std::abort();
    if (!idx->Refresh().ok()) std::abort();
    return idx;
  }();
  int64_t shard = state.thread_index() % 16;
  size_t found = 0;
  for (auto _ : state) {
    found += index->FindDatasets(ShardQuery(shard)).size();
    if (index->IsStale() && !index->Refresh().ok()) std::abort();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConcFederatedLookup)->ThreadRange(1, 16)->UseRealTime();

}  // namespace
}  // namespace vdg
