// Concurrent-read throughput of the snapshot-isolated catalog.
// Sweeps reader thread count 1..16 over indexed discovery queries and
// point lookups against a fixed catalog, plus a contended variant
// where thread 0 writes while the rest read. Reads pin an immutable
// snapshot (no catalog lock at all), so read-only throughput should
// scale with threads and a concurrent writer should barely dent
// reader latency; tools/run_bench.sh records the per-thread items/sec
// curve into BENCH_concurrency.json and gates group commit (>= 5x
// per-record commit) and snapshot isolation (reads under writes
// within 20% of the no-writer baseline).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "catalog/query.h"
#include "federation/index.h"

namespace vdg {
namespace {

constexpr size_t kCatalogSize = 2000;
constexpr int kBatchSize = 64;

using bench::ShardQuery;

/// Explicit read-rate counters. The old reporting set only
/// SetItemsProcessed, whose items/sec rendering under ThreadRange +
/// UseRealTime mixes per-thread iteration counts with wall time in a
/// way that reads as a flat curve regardless of scaling. Counters make
/// the aggregation explicit and machine-readable: kIsRate sums every
/// thread's count and divides by wall time (aggregate reader
/// throughput, what run_bench.sh records and gates), and adding
/// kAvgThreads divides that by the thread count (per-thread rate — flat
/// means perfect scaling, 1/N means a serialized hot path).
void ReportReadRates(benchmark::State& state, double items) {
  state.counters["agg_items_per_sec"] =
      benchmark::Counter(items, benchmark::Counter::kIsRate);
  state.counters["per_thread_items_per_sec"] = benchmark::Counter(
      items, benchmark::Counter::kIsRate | benchmark::Counter::kAvgThreads);
}

void BM_ConcIndexedFind(benchmark::State& state) {
  const VirtualDataCatalog* catalog = bench::ShardedCatalog(kCatalogSize);
  int64_t shard = state.thread_index() % 16;
  size_t found = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(ShardQuery(shard)).size();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ConcIndexedFind)->ThreadRange(1, 16)->UseRealTime();

void BM_ConcPointLookup(benchmark::State& state) {
  const VirtualDataCatalog* catalog = bench::ShardedCatalog(kCatalogSize);
  NameList names = catalog->AllDatasetNames();
  size_t i = static_cast<size_t>(state.thread_index()) * 37;
  size_t hits = 0;
  for (auto _ : state) {
    Result<Dataset> ds = catalog->GetDataset(names[i++ % names.size()]);
    if (ds.ok()) ++hits;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ConcPointLookup)->ThreadRange(1, 16)->UseRealTime();

// Readers with one writer thread mutating annotations: measures how
// much a writer publishing fresh snapshots degrades readers (with
// snapshot isolation, it should not — readers never take the lock).
void BM_ConcReadWithWriter(benchmark::State& state) {
  VirtualDataCatalog* catalog = bench::ShardedCatalog(kCatalogSize);
  if (state.thread_index() == 0) {
    NameList names = catalog->AllDatasetNames();
    size_t i = 0;
    for (auto _ : state) {
      Status s = catalog->Annotate(
          "dataset", names[i % names.size()], "shard",
          AttributeValue(static_cast<int64_t>(i % 16)));
      benchmark::DoNotOptimize(s.ok());
      ++i;
    }
    state.SetItemsProcessed(0);  // count reader throughput only
    ReportReadRates(state, 0.0);
  } else {
    int64_t shard = state.thread_index() % 16;
    size_t found = 0;
    for (auto _ : state) {
      found += catalog->FindDatasets(ShardQuery(shard)).size();
    }
    benchmark::DoNotOptimize(found);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    ReportReadRates(state, static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_ConcReadWithWriter)->ThreadRange(2, 16)->UseRealTime();

// Index lookups while a refresher keeps the snapshot current.
void BM_ConcFederatedLookup(benchmark::State& state) {
  static FederatedIndex* index = [] {
    auto* idx = new FederatedIndex("conc-bench");
    if (!idx->AddSource(bench::ShardedCatalog(kCatalogSize)).ok()) {
      std::abort();
    }
    if (!idx->Refresh().ok()) std::abort();
    return idx;
  }();
  int64_t shard = state.thread_index() % 16;
  size_t found = 0;
  for (auto _ : state) {
    found += index->FindDatasets(ShardQuery(shard)).size();
    if (index->IsStale() && !index->Refresh().ok()) std::abort();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ConcFederatedLookup)->ThreadRange(1, 16)->UseRealTime();

// ---------------------------------------------------------------------
// Group commit: N mutations through ApplyBatch (one lock, one version
// bump, one journal flush) versus N single-op calls each paying the
// full commit (journal flush + snapshot publication) on its own.
// ---------------------------------------------------------------------

/// Fresh journaled catalog seeded with kCatalogSize/4 datasets; each
/// commit pays real journal I/O, as a durable deployment would.
std::unique_ptr<VirtualDataCatalog> JournaledCatalog(
    std::vector<std::string>* names) {
  static int counter = 0;
  std::string path = "/tmp/vdg_bench_journal_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(counter++) + ".log";
  std::remove(path.c_str());
  Logger::set_threshold(LogLevel::kError);
  auto catalog = std::make_unique<VirtualDataCatalog>(
      "batch-bench", std::make_unique<FileJournal>(path));
  if (!catalog->Open().ok()) std::abort();
  std::vector<CatalogMutation> defs;
  for (size_t i = 0; i < kCatalogSize / 4; ++i) {
    Dataset ds;
    ds.name = "bb" + std::to_string(i);
    ds.size_bytes = 1 << 20;
    ds.descriptor = DatasetDescriptor::File("/bench/" + ds.name);
    names->push_back(ds.name);
    defs.push_back(CatalogMutation::DefineDataset(std::move(ds)));
  }
  BatchOptions seed;
  seed.stop_on_error = true;
  if (!catalog->ApplyBatch(defs, seed).first_error.ok()) std::abort();
  return catalog;
}

void BM_ApplyBatch_PerRecordCommit(benchmark::State& state) {
  std::vector<std::string> names;
  std::unique_ptr<VirtualDataCatalog> catalog = JournaledCatalog(&names);
  size_t i = 0;
  for (auto _ : state) {
    for (int k = 0; k < kBatchSize; ++k) {
      Status s = catalog->Annotate("dataset", names[i % names.size()],
                                   "tick", static_cast<int64_t>(i));
      if (!s.ok()) std::abort();
      ++i;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchSize);
  state.counters["batch_size"] = kBatchSize;
}
BENCHMARK(BM_ApplyBatch_PerRecordCommit);

void BM_ApplyBatch_GroupCommit(benchmark::State& state) {
  std::vector<std::string> names;
  std::unique_ptr<VirtualDataCatalog> catalog = JournaledCatalog(&names);
  size_t i = 0;
  for (auto _ : state) {
    std::vector<CatalogMutation> ops;
    ops.reserve(kBatchSize);
    for (int k = 0; k < kBatchSize; ++k) {
      ops.push_back(CatalogMutation::Annotate(
          "dataset", names[i % names.size()], "tick",
          AttributeValue(static_cast<int64_t>(i))));
      ++i;
    }
    BatchResult applied = catalog->ApplyBatch(ops);
    if (!applied.first_error.ok()) std::abort();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchSize);
  state.counters["batch_size"] = kBatchSize;
}
BENCHMARK(BM_ApplyBatch_GroupCommit);

// ---------------------------------------------------------------------
// Snapshot isolation: query latency while a writer streams batches.
// The writer is rate-limited (one 16-op batch every ~4ms) so this
// measures isolation, not raw CPU contention on single-core hosts;
// the gate is reads-under-writes within 20% of the no-writer
// baseline below.
// ---------------------------------------------------------------------

void BM_SnapshotFindNoWriter(benchmark::State& state) {
  const VirtualDataCatalog* catalog = bench::ShardedCatalog(kCatalogSize);
  size_t found = 0;
  int64_t shard = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(ShardQuery(shard)).size();
    shard = (shard + 1) % 16;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SnapshotFindNoWriter)->UseRealTime();

void BM_SnapshotFindDuringWrites(benchmark::State& state) {
  VirtualDataCatalog* catalog = bench::ShardedCatalog(kCatalogSize);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches{0};
  std::thread writer([&] {
    NameList names = catalog->AllDatasetNames();
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<CatalogMutation> ops;
      ops.reserve(16);
      for (int k = 0; k < 16; ++k) {
        ops.push_back(CatalogMutation::Annotate(
            "dataset", std::string(names[i % names.size()]), "writer.tick",
            AttributeValue(static_cast<int64_t>(i))));
        ++i;
      }
      if (!catalog->ApplyBatch(ops).first_error.ok()) std::abort();
      batches.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  });
  size_t found = 0;
  int64_t shard = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(ShardQuery(shard)).size();
    shard = (shard + 1) % 16;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
  state.counters["writer_batches"] =
      static_cast<double>(batches.load(std::memory_order_relaxed));
}
BENCHMARK(BM_SnapshotFindDuringWrites)->UseRealTime();

// ---------------------------------------------------------------------
// Compressed discovery indexes: the >= 10x throughput gate shape.
// Single equality predicate served straight off a posting list, a
// skewed conjunction (tiny list gallops into a large one), and a
// dense x dense conjunction (blockwise bitmap AND). run_bench.sh
// records these and gates the Skewed conjunction's rate at >= 10x the
// pre-compression seed baseline (it isolates the index layer; the
// 164-name shard scan is bounded by result string copies and is gated
// separately at >= 3x).
// ---------------------------------------------------------------------

/// ShardedCatalog plus two more indexed annotations: "parity" (dense:
/// half the catalog each) and "rare" (sparse: ~1%). Annotations never
/// change shard-query membership, so sharing the cached catalog with
/// the scaling benches above is safe.
VirtualDataCatalog* CompressedBenchCatalog() {
  static VirtualDataCatalog* catalog = [] {
    VirtualDataCatalog* c = bench::ShardedCatalog(kCatalogSize);
    NameList names = c->AllDatasetNames();
    for (size_t i = 0; i < names.size(); ++i) {
      Status s = c->Annotate("dataset", names[i], "parity",
                             AttributeValue(static_cast<int64_t>(i % 2)));
      if (!s.ok()) std::abort();
      if (i % 97 == 0) {
        s = c->Annotate("dataset", names[i], "rare",
                        AttributeValue(static_cast<int64_t>(1)));
        if (!s.ok()) std::abort();
      }
    }
    return c;
  }();
  return catalog;
}

void BM_IndexedFindCompressed(benchmark::State& state) {
  const VirtualDataCatalog* catalog = CompressedBenchCatalog();
  int64_t shard = 0;
  size_t found = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(ShardQuery(shard)).size();
    shard = (shard + 1) % 16;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_IndexedFindCompressed);

void BM_IndexedFindCompressedSkewed(benchmark::State& state) {
  const VirtualDataCatalog* catalog = CompressedBenchCatalog();
  DatasetQuery q;
  q.predicates = {
      AttributePredicate{"rare", PredicateOp::kEq,
                         AttributeValue(static_cast<int64_t>(1))},
      AttributePredicate{"parity", PredicateOp::kEq,
                         AttributeValue(static_cast<int64_t>(0))}};
  size_t found = 0;
  for (auto _ : state) {
    found += catalog->FindDatasets(q).size();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_IndexedFindCompressedSkewed);

void BM_IndexedFindCompressedDense(benchmark::State& state) {
  const VirtualDataCatalog* catalog = CompressedBenchCatalog();
  size_t found = 0;
  int64_t shard = 0;
  for (auto _ : state) {
    DatasetQuery q;
    q.predicates = {
        AttributePredicate{"parity", PredicateOp::kEq,
                           AttributeValue(shard % 2)},
        AttributePredicate{"shard", PredicateOp::kEq, AttributeValue(shard)}};
    found += catalog->FindDatasets(q).size();
    shard = (shard + 1) % 16;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  ReportReadRates(state, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_IndexedFindCompressedDense);

// ---------------------------------------------------------------------
// Cold start: full journal replay vs mmap-ed flat snapshot. The same
// populated catalog (one definition batch + annotation churn, so the
// journal history is longer than the live state) is reopened both
// ways; run_bench.sh emits the speedup into BENCH_concurrency.json.
// ---------------------------------------------------------------------

struct ColdStartPaths {
  std::string journal;
  std::string snapshot;
};

const ColdStartPaths& ColdStartFiles() {
  static ColdStartPaths* paths = [] {
    auto* p = new ColdStartPaths;
    p->journal = "/tmp/vdg_bench_cold_" + std::to_string(::getpid()) + ".log";
    p->snapshot = p->journal + ".snap";
    std::remove(p->journal.c_str());
    std::remove(p->snapshot.c_str());
    Logger::set_threshold(LogLevel::kError);
    VirtualDataCatalog catalog("cold-bench",
                               std::make_unique<FileJournal>(p->journal));
    if (!catalog.Open().ok()) std::abort();
    std::vector<CatalogMutation> defs;
    for (size_t i = 0; i < kCatalogSize; ++i) {
      Dataset ds;
      ds.name = "cs" + std::to_string(i);
      ds.size_bytes = 1 << 16;
      ds.annotations.Set("shard", static_cast<int64_t>(i % 16));
      defs.push_back(CatalogMutation::DefineDataset(std::move(ds)));
    }
    if (!catalog.ApplyBatch(defs).first_error.ok()) std::abort();
    for (int round = 0; round < 4; ++round) {
      std::vector<CatalogMutation> ticks;
      for (size_t i = 0; i < kCatalogSize; i += 2) {
        ticks.push_back(CatalogMutation::Annotate(
            "dataset", "cs" + std::to_string(i), "tick",
            AttributeValue(static_cast<int64_t>(round))));
      }
      if (!catalog.ApplyBatch(ticks).first_error.ok()) std::abort();
    }
    if (!catalog.SyncJournal().ok()) std::abort();
    if (!catalog.SaveSnapshotFile(p->snapshot).ok()) std::abort();
    return p;
  }();
  return *paths;
}

void BM_ColdStartReplay(benchmark::State& state) {
  const ColdStartPaths& files = ColdStartFiles();
  for (auto _ : state) {
    VirtualDataCatalog catalog("cold",
                               std::make_unique<FileJournal>(files.journal));
    if (!catalog.Open().ok()) std::abort();
    benchmark::DoNotOptimize(catalog.version());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ColdStartReplay)->UseRealTime();

void BM_ColdStartFlatSnapshot(benchmark::State& state) {
  const ColdStartPaths& files = ColdStartFiles();
  for (auto _ : state) {
    VirtualDataCatalog catalog("cold",
                               std::make_unique<FileJournal>(files.journal));
    if (!catalog.OpenFromSnapshot(files.snapshot).ok()) std::abort();
    if (!catalog.last_snapshot_load().used) std::abort();
    benchmark::DoNotOptimize(catalog.version());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ColdStartFlatSnapshot)->UseRealTime();

}  // namespace
}  // namespace vdg
