// ABL-VIRT — the central virtual-data economics claim (Sections 1 and
// 5.2): "determine whether a requested computation has been performed
// previously, and whether it is cheaper to rerun it or to retrieve
// previously generated data". This ablation sweeps the two axes that
// decide the question — dataset size (transfer cost) and
// transformation runtime (compute cost) — and records which side the
// planner picks, exposing the crossover front.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "planner/planner.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

struct DecisionWorld {
  VirtualDataCatalog catalog{"virt.org"};
  GridTopology topology = workload::GriphynTestbed();
  CostEstimator estimator;

  DecisionWorld(int64_t dataset_mb, double runtime_s) {
    Logger::set_threshold(LogLevel::kError);
    if (!catalog.Open().ok()) std::abort();
    if (!catalog
             .ImportVdl("TR make( output out, input in ) {"
                        "  argument stdin = ${input:in};"
                        "  argument stdout = ${output:out};"
                        "  exec = \"/bin/make\"; }"
                        "DS raw : Dataset size=\"1048576\";"
                        "DV mk->make( out=@{output:\"product\"}, "
                        "in=@{input:\"raw\"} );")
             .ok()) {
      std::abort();
    }
    // Raw input local to the requester; the existing product replica
    // sits on the slowest remote link (caltech <-> wisconsin).
    AddReplica("raw", "uchicago", 1 << 20);
    AddReplica("product", "caltech", dataset_mb << 20);
    if (!catalog.SetDatasetSize("product", dataset_mb << 20).ok()) {
      std::abort();
    }
    estimator.RecordRuntime("make", "uchicago", runtime_s);
  }

  void AddReplica(const std::string& ds, const std::string& site,
                  int64_t bytes) {
    Replica r;
    r.dataset = ds;
    r.site = site;
    r.size_bytes = bytes;
    if (!catalog.AddReplica(r).ok()) std::abort();
  }
};

// Sweep dataset size at fixed compute cost: small products fetch,
// large products rerun.
void BM_CrossoverBySize(benchmark::State& state) {
  int64_t mb = state.range(0);
  DecisionWorld world(mb, /*runtime_s=*/100.0);
  RequestPlanner planner(world.catalog, world.topology, nullptr,
                         world.estimator);
  PlannerOptions options;
  options.target_site = "uchicago";
  RequestPlanner::ModeDecision decision;
  for (auto _ : state) {
    Result<RequestPlanner::ModeDecision> d =
        planner.DecideMode("product", options);
    if (!d.ok()) std::abort();
    decision = *d;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dataset_mb"] = static_cast<double>(mb);
  state.counters["fetch_cost_s"] = decision.fetch_cost_s;
  state.counters["rerun_cost_s"] = decision.rerun_cost_s;
  state.counters["picked_rerun"] =
      decision.mode == MaterializationMode::kRerun ? 1 : 0;
}
BENCHMARK(BM_CrossoverBySize)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// Sweep compute cost at fixed dataset size: cheap transforms rerun,
// expensive ones fetch.
void BM_CrossoverByRuntime(benchmark::State& state) {
  double runtime_s = static_cast<double>(state.range(0));
  DecisionWorld world(/*dataset_mb=*/256, runtime_s);
  RequestPlanner planner(world.catalog, world.topology, nullptr,
                         world.estimator);
  PlannerOptions options;
  options.target_site = "uchicago";
  RequestPlanner::ModeDecision decision;
  for (auto _ : state) {
    Result<RequestPlanner::ModeDecision> d =
        planner.DecideMode("product", options);
    if (!d.ok()) std::abort();
    decision = *d;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["runtime_s"] = runtime_s;
  state.counters["fetch_cost_s"] = decision.fetch_cost_s;
  state.counters["rerun_cost_s"] = decision.rerun_cost_s;
  state.counters["picked_rerun"] =
      decision.mode == MaterializationMode::kRerun ? 1 : 0;
}
BENCHMARK(BM_CrossoverByRuntime)
    ->Arg(1)
    ->Arg(10)
    ->Arg(60)
    ->Arg(300)
    ->Arg(3600);

// A nearby replica flips the decision back to fetch even for large
// data: replica placement is part of the economics.
void BM_NearbyReplicaFlipsDecision(benchmark::State& state) {
  bool nearby = state.range(0) == 1;
  DecisionWorld world(/*dataset_mb=*/1024, /*runtime_s=*/30.0);
  if (nearby) {
    world.AddReplica("product", "fermilab", 1024LL << 20);  // fat link
  }
  RequestPlanner planner(world.catalog, world.topology, nullptr,
                         world.estimator);
  PlannerOptions options;
  options.target_site = "uchicago";
  RequestPlanner::ModeDecision decision;
  for (auto _ : state) {
    Result<RequestPlanner::ModeDecision> d =
        planner.DecideMode("product", options);
    if (!d.ok()) std::abort();
    decision = *d;
  }
  state.SetLabel(nearby ? "with-nearby-replica" : "distant-replica-only");
  state.counters["fetch_cost_s"] = decision.fetch_cost_s;
  state.counters["rerun_cost_s"] = decision.rerun_cost_s;
  state.counters["picked_rerun"] =
      decision.mode == MaterializationMode::kRerun ? 1 : 0;
}
BENCHMARK(BM_NearbyReplicaFlipsDecision)->Arg(0)->Arg(1);

}  // namespace
}  // namespace vdg
