// FIG2 — Figure 2 depicts virtual-data hyperlinks between servers:
// transformation and derivation records referencing objects on other
// catalogs via vdp:// URIs (the Wisconsin/Illinois compound example).
// This bench measures reference resolution as the federation grows:
// local vs remote resolution cost, fetch-through, and compound
// definitions whose stages live on another server.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "federation/registry.h"

namespace vdg {
namespace {

struct Federation {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  CatalogRegistry registry;
};

// N catalogs, each holding a `sim` and `cmp` transformation plus a
// compound whose stages point at the *next* catalog (a hyperlink ring).
Federation* BuildFederation(int n) {
  static std::map<int, std::unique_ptr<Federation>>* cache =
      new std::map<int, std::unique_ptr<Federation>>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto fed = std::make_unique<Federation>();
  for (int i = 0; i < n; ++i) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "site" + std::to_string(i) + ".org");
    if (!catalog->Open().ok()) std::abort();
    if (!catalog
             ->ImportVdl("TR sim( output out, input in ) {"
                         "  argument stdin = ${input:in};"
                         "  argument stdout = ${output:out};"
                         "  exec = \"/bin/sim\"; }"
                         "TR cmp( output out, input in ) {"
                         "  argument stdin = ${input:in};"
                         "  argument stdout = ${output:out};"
                         "  exec = \"/bin/cmp\"; }")
             .ok()) {
      std::abort();
    }
    fed->catalogs.push_back(std::move(catalog));
  }
  for (int i = 0; i < n; ++i) {
    if (!fed->registry.Register(fed->catalogs[i].get()).ok()) std::abort();
  }
  // Each catalog defines "cmpsim" whose stages are hyperlinks to the
  // next server — the exact Figure 2 shape.
  for (int i = 0; i < n; ++i) {
    std::string next = "site" + std::to_string((i + 1) % n) + ".org";
    std::string vdl =
        "TR cmpsim( input a1, inout mid=@{inout:\"m\":\"\"}, output a2 ) {"
        "  \"vdp://" + next + "/sim\"( in=${input:a1}, out=${output:mid} );"
        "  \"vdp://" + next + "/cmp\"( in=${input:mid}, out=${output:a2} );"
        "}";
    if (!fed->catalogs[static_cast<size_t>(i)]->ImportVdl(vdl).ok()) {
      std::abort();
    }
  }
  Federation* raw = fed.get();
  cache->emplace(n, std::move(fed));
  return raw;
}

void BM_ResolveLocal(benchmark::State& state) {
  Federation* fed = BuildFederation(static_cast<int>(state.range(0)));
  VirtualDataCatalog* home = fed->catalogs[0].get();
  for (auto _ : state) {
    Result<ResolvedRef> ref = fed->registry.Resolve(home, "sim");
    benchmark::DoNotOptimize(ref);
    if (!ref.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolveLocal)->Arg(2)->Arg(8)->Arg(32);

void BM_ResolveRemoteVdp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Federation* fed = BuildFederation(n);
  VirtualDataCatalog* home = fed->catalogs[0].get();
  std::vector<std::string> refs;
  for (int i = 0; i < n; ++i) {
    refs.push_back("vdp://site" + std::to_string(i) + ".org/sim");
  }
  size_t i = 0;
  for (auto _ : state) {
    Result<ResolvedRef> ref =
        fed->registry.Resolve(home, refs[i++ % refs.size()]);
    benchmark::DoNotOptimize(ref);
    if (!ref.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["remote_lookups"] =
      static_cast<double>(fed->registry.remote_lookups());
}
BENCHMARK(BM_ResolveRemoteVdp)->Arg(2)->Arg(8)->Arg(32);

void BM_FetchRemoteTransformation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Federation* fed = BuildFederation(n);
  VirtualDataCatalog* home = fed->catalogs[0].get();
  size_t i = 0;
  for (auto _ : state) {
    std::string ref =
        "vdp://site" + std::to_string(i++ % n) + ".org/cmpsim";
    Result<Transformation> tr =
        fed->registry.FetchTransformation(home, ref);
    benchmark::DoNotOptimize(tr);
    if (!tr.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchRemoteTransformation)->Arg(2)->Arg(8)->Arg(32);

void BM_ImportTransformationAcrossServers(benchmark::State& state) {
  Federation* fed = BuildFederation(4);
  VirtualDataCatalog* home = fed->catalogs[0].get();
  int64_t i = 0;
  for (auto _ : state) {
    // Import under a unique name each time by round-tripping through a
    // scratch catalog.
    VirtualDataCatalog scratch("scratch" + std::to_string(i++));
    if (!scratch.Open().ok()) std::abort();
    Status s = fed->registry.ImportTransformation(
        home, "vdp://site1.org/cmpsim", &scratch);
    if (!s.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImportTransformationAcrossServers);

}  // namespace
}  // namespace vdg
