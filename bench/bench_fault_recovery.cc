// EXP-FAULT — the fault-tolerance experiment: canonical derivation
// DAGs executed on the GriPhyN testbed under injected faults (random
// job/transfer failures plus a mid-run site crash that destroys
// unpinned replicas), driven by the recovery engine's backoff,
// failover, and lost-input re-derivation machinery.
//
// Headline counter: `success_rate` — the fraction of workflows that
// complete despite the faults. With 10% job + 10% transfer failure
// rates and a mid-run crash, the retry budget must carry >= 99% of
// workflows to completion (tools/run_bench.sh asserts this into
// BENCH_fault.json).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "executor/executor.h"
#include "grid/simulator.h"
#include "planner/planner.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr const char* kSites[] = {"uchicago", "wisconsin", "fermilab",
                                  "caltech"};

struct RunOutcome {
  WorkflowResult result;
  bool ok = false;
};

// One full workflow under faults: a fresh catalog + grid (seeded), a
// canonical DAG with raw inputs pinned at every site, and the
// recovery-enabled engine executing the first sink.
RunOutcome RunFaultyWorkflow(uint64_t seed, double job_rate,
                             double transfer_rate, bool crash_mid_run) {
  Logger::set_threshold(LogLevel::kError);
  RunOutcome out;
  VirtualDataCatalog catalog("fault-" + std::to_string(seed));
  if (!catalog.Open().ok()) return out;
  workload::CanonicalGraphOptions options;
  options.num_derivations = 24;
  options.num_raw_inputs = 6;
  options.seed = seed;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(&catalog, options);
  if (!graph.ok() || graph->sinks.empty()) return out;

  GridSimulator grid(workload::GriphynTestbed(), seed);
  grid.set_job_failure_rate(job_rate);
  grid.set_transfer_failure_rate(transfer_rate);
  for (const std::string& raw : graph->raw_inputs) {
    for (const char* site : kSites) {
      if (!grid.PlaceFile(site, raw, 1 << 20, true).ok()) return out;
      Replica replica;
      replica.dataset = raw;
      replica.site = site;
      replica.size_bytes = 1 << 20;
      if (!catalog.AddReplica(std::move(replica)).ok()) return out;
    }
  }
  if (crash_mid_run) {
    // wisconsin crashes early in the run and is gone for 60 simulated
    // seconds: running jobs die, unpinned intermediates are wiped.
    if (!grid.ScheduleOutage("wisconsin", 6.0, 60.0, /*crash=*/true)
             .ok()) {
      return out;
    }
  }

  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(),
                         estimator);
  PlannerOptions popt;
  popt.target_site = "uchicago";
  if (crash_mid_run) {
    // Spread nodes across all four sites so the crashed one actually
    // holds running jobs and freshly materialized replicas.
    popt.site_policy = SiteSelectionPolicy::kRoundRobin;
  }
  Result<ExecutionPlan> plan = planner.Plan(graph->sinks.front(), popt);
  if (!plan.ok()) return out;

  ExecutorOptions eopt;
  eopt.max_retries = 10;
  eopt.faults.backoff_base_s = 2.0;
  eopt.faults.rederive_lost_inputs = true;
  WorkflowEngine engine(&grid, &catalog, eopt);
  Result<WorkflowResult> result = engine.Execute(*plan);
  if (!result.ok()) return out;
  out.result = *result;
  out.ok = true;
  return out;
}

void AccumulateCounters(benchmark::State& state, uint64_t runs,
                        uint64_t successes, const RecoveryStats& total,
                        double makespan_total) {
  double n = runs > 0 ? static_cast<double>(runs) : 1.0;
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["success_rate"] =
      runs > 0 ? static_cast<double>(successes) / n : 0.0;
  state.counters["job_failures_per_run"] =
      static_cast<double>(total.job_failures) / n;
  state.counters["transfer_failures_per_run"] =
      static_cast<double>(total.transfer_failures) / n;
  state.counters["submit_rejections_per_run"] =
      static_cast<double>(total.submit_rejections) / n;
  state.counters["backoff_s_per_run"] = total.total_backoff_s / n;
  state.counters["failovers_per_run"] =
      static_cast<double>(total.failovers) / n;
  state.counters["rederivations_per_run"] =
      static_cast<double>(total.rederivations) / n;
  state.counters["replicas_lost_per_run"] =
      static_cast<double>(total.replicas_lost_detected) / n;
  state.counters["sim_makespan_s_avg"] = makespan_total / n;
}

void Accumulate(RecoveryStats* total, const RecoveryStats& r) {
  total->job_attempts += r.job_attempts;
  total->job_failures += r.job_failures;
  total->transfer_attempts += r.transfer_attempts;
  total->transfer_failures += r.transfer_failures;
  total->submit_rejections += r.submit_rejections;
  total->backoff_waits += r.backoff_waits;
  total->total_backoff_s += r.total_backoff_s;
  total->node_timeouts += r.node_timeouts;
  total->failovers += r.failovers;
  total->sites_blacklisted += r.sites_blacklisted;
  total->replicas_lost_detected += r.replicas_lost_detected;
  total->rederivations += r.rederivations;
  total->datasets_regenerated += r.datasets_regenerated;
}

// Fault-rate matrix without a crash: args are percentages.
void BM_FaultSweep(benchmark::State& state) {
  double job_rate = static_cast<double>(state.range(0)) / 100.0;
  double transfer_rate = static_cast<double>(state.range(1)) / 100.0;
  uint64_t seed = 1;
  uint64_t runs = 0;
  uint64_t successes = 0;
  RecoveryStats total;
  double makespan_total = 0;
  for (auto _ : state) {
    RunOutcome out = RunFaultyWorkflow(seed++, job_rate, transfer_rate,
                                       /*crash_mid_run=*/false);
    if (!out.ok) std::abort();
    ++runs;
    if (out.result.succeeded) ++successes;
    Accumulate(&total, out.result.recovery);
    makespan_total += out.result.makespan_s;
  }
  state.SetItemsProcessed(static_cast<int64_t>(runs));
  state.counters["job_fail_pct"] = static_cast<double>(state.range(0));
  state.counters["transfer_fail_pct"] =
      static_cast<double>(state.range(1));
  AccumulateCounters(state, runs, successes, total, makespan_total);
}
BENCHMARK(BM_FaultSweep)
    ->Args({0, 0})
    ->Args({5, 5})
    ->Args({10, 10})
    ->Args({20, 10})
    ->Args({20, 20})
    ->Unit(benchmark::kMillisecond);

// The acceptance scenario: 10%/10% fault rates plus a mid-run crash
// of an entire site (with replica loss). success_rate must stay
// >= 0.99.
void BM_CrashRecovery(benchmark::State& state) {
  double job_rate = static_cast<double>(state.range(0)) / 100.0;
  double transfer_rate = static_cast<double>(state.range(1)) / 100.0;
  uint64_t seed = 1000;
  uint64_t runs = 0;
  uint64_t successes = 0;
  RecoveryStats total;
  double makespan_total = 0;
  for (auto _ : state) {
    RunOutcome out = RunFaultyWorkflow(seed++, job_rate, transfer_rate,
                                       /*crash_mid_run=*/true);
    if (!out.ok) std::abort();
    ++runs;
    if (out.result.succeeded) ++successes;
    Accumulate(&total, out.result.recovery);
    makespan_total += out.result.makespan_s;
  }
  state.SetItemsProcessed(static_cast<int64_t>(runs));
  state.counters["job_fail_pct"] = static_cast<double>(state.range(0));
  state.counters["transfer_fail_pct"] =
      static_cast<double>(state.range(1));
  AccumulateCounters(state, runs, successes, total, makespan_total);
}
BENCHMARK(BM_CrashRecovery)
    ->Args({10, 10})
    ->Unit(benchmark::kMillisecond);

// Cost of the virtual-data recovery promise: a consumer whose input
// replicas were silently destroyed re-derives them from the catalog's
// derivation record instead of failing.
void BM_LostInputRederivation(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  uint64_t seed = 7;
  uint64_t rederivations = 0;
  uint64_t runs = 0;
  uint64_t successes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    VirtualDataCatalog catalog("rederive-" + std::to_string(seed));
    if (!catalog.Open().ok()) std::abort();
    if (!catalog
             .ImportVdl("TR conv( output out, input in ) {"
                        "  argument stdin = ${input:in};"
                        "  argument stdout = ${output:out};"
                        "  exec = \"/bin/conv\"; }"
                        "DS raw : Dataset size=\"1048576\";"
                        "DV mkMid->conv( out=@{output:\"mid\"},"
                        "               in=@{input:\"raw\"} );"
                        "DV mkOut->conv( out=@{output:\"out\"},"
                        "               in=@{input:\"mid\"} );")
             .ok()) {
      std::abort();
    }
    GridSimulator grid(workload::SmallTestbed(), seed++);
    if (!grid.PlaceFile("east", "raw", 1 << 20, true).ok()) std::abort();
    Replica replica;
    replica.dataset = "raw";
    replica.site = "east";
    replica.size_bytes = 1 << 20;
    if (!catalog.AddReplica(std::move(replica)).ok()) std::abort();

    CostEstimator estimator;
    RequestPlanner planner(catalog, grid.topology(), &grid.rls(),
                           estimator);
    PlannerOptions popt;
    popt.target_site = "east";
    ExecutorOptions eopt;
    eopt.faults.rederive_lost_inputs = true;
    {
      // Materialize mid, then destroy its only physical copy while the
      // catalog still claims a replica.
      WorkflowEngine warm(&grid, &catalog, eopt);
      Result<ExecutionPlan> plan = planner.Plan("mid", popt);
      if (!plan.ok() || !warm.Execute(*plan)->succeeded) std::abort();
      for (const char* site : {"east", "west"}) {
        if (grid.rls().ExistsAt("mid", site)) {
          if (!grid.EvictFile(site, "mid").ok()) std::abort();
        }
      }
    }
    Result<ExecutionPlan> plan = planner.Plan("out", popt);
    if (!plan.ok()) std::abort();
    WorkflowEngine engine(&grid, &catalog, eopt);
    state.ResumeTiming();

    Result<WorkflowResult> result = engine.Execute(*plan);
    if (!result.ok()) std::abort();
    ++runs;
    if (result->succeeded) ++successes;
    rederivations += result->recovery.rederivations;
  }
  state.SetItemsProcessed(static_cast<int64_t>(runs));
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["success_rate"] =
      runs > 0 ? static_cast<double>(successes) / runs : 0.0;
  state.counters["rederivations_per_run"] =
      runs > 0 ? static_cast<double>(rederivations) / runs : 0.0;
}
BENCHMARK(BM_LostInputRederivation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vdg
