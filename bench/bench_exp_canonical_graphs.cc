// EXP-CANON — Section 6: "We also created 'canonical' applications
// that could mimic arbitrary argument passing conventions and file I/O
// behavior, and used these to create large application dependency
// graphs to validate our provenance tracking mechanism."
//
// Series reproduced: dependency-graph construction rate, provenance
// validation (catalog answer == generator ground truth) across graph
// sizes from 10 to 5000 derivations, and lineage-query latency as the
// graph grows.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "provenance/provenance.h"

namespace vdg {
namespace {

void BM_GraphConstruction(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  size_t n = static_cast<size_t>(state.range(0));
  int64_t run = 0;
  for (auto _ : state) {
    VirtualDataCatalog catalog("canon" + std::to_string(run++));
    if (!catalog.Open().ok()) std::abort();
    workload::CanonicalGraphOptions options;
    options.num_derivations = n;
    options.num_raw_inputs = std::max<size_t>(4, n / 20);
    options.seed = 42;
    Result<workload::CanonicalGraph> graph =
        workload::GenerateCanonicalGraph(&catalog, options);
    if (!graph.ok()) std::abort();
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["graph_size"] = static_cast<double>(n);
}
BENCHMARK(BM_GraphConstruction)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// The validation itself: every output's ancestor closure from the
// catalog must equal the generator's ground truth. The counter
// `mismatches` must be 0 — that is the experiment's result.
void BM_ProvenanceValidation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(n);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(n);
  ProvenanceTracker tracker(*catalog);
  size_t mismatches = 0;
  size_t checked = 0;
  for (auto _ : state) {
    mismatches = 0;
    checked = 0;
    for (const std::string& output : graph.outputs) {
      Result<std::set<std::string>> ancestors = tracker.Ancestors(output);
      if (!ancestors.ok()) std::abort();
      if (*ancestors != graph.TrueAncestors(output)) ++mismatches;
      ++checked;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(checked));
  state.counters["graph_size"] = static_cast<double>(n);
  state.counters["mismatches"] = static_cast<double>(mismatches);
}
BENCHMARK(BM_ProvenanceValidation)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_LineageQueryLatency(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(n);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(n);
  ProvenanceTracker tracker(*catalog);
  // Query the sinks: the deepest lineages in the graph.
  size_t i = 0;
  size_t nodes = 0;
  for (auto _ : state) {
    const std::string& sink = graph.sinks[i++ % graph.sinks.size()];
    Result<std::set<std::string>> ancestors = tracker.Ancestors(sink);
    benchmark::DoNotOptimize(ancestors);
    if (!ancestors.ok()) std::abort();
    nodes = ancestors->size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["graph_size"] = static_cast<double>(n);
  state.counters["closure_size_last"] = static_cast<double>(nodes);
}
BENCHMARK(BM_LineageQueryLatency)->Arg(100)->Arg(1000)->Arg(5000);

void BM_DescendantsQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(n);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(n);
  ProvenanceTracker tracker(*catalog);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& raw = graph.raw_inputs[i++ % graph.raw_inputs.size()];
    Result<std::set<std::string>> descendants = tracker.Descendants(raw);
    benchmark::DoNotOptimize(descendants);
    if (!descendants.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["graph_size"] = static_cast<double>(n);
}
BENCHMARK(BM_DescendantsQuery)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace vdg
