#ifndef VDG_BENCH_BENCH_COMMON_H_
#define VDG_BENCH_BENCH_COMMON_H_

// Shared helpers for the reproduction benchmarks. Each bench binary
// regenerates one figure/experiment of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md); these helpers build the catalogs and grids they
// sweep over.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/logging.h"
#include "workload/canonical.h"

namespace vdg {
namespace bench {

/// Builds (once per distinct size, cached) a catalog populated with a
/// canonical dependency graph of `num_derivations` derivations.
inline VirtualDataCatalog* CachedCanonicalCatalog(size_t num_derivations) {
  static std::map<size_t, std::unique_ptr<VirtualDataCatalog>>* cache =
      new std::map<size_t, std::unique_ptr<VirtualDataCatalog>>();
  auto it = cache->find(num_derivations);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto catalog = std::make_unique<VirtualDataCatalog>(
      "bench-" + std::to_string(num_derivations));
  Status opened = catalog->Open();
  if (!opened.ok()) std::abort();
  workload::CanonicalGraphOptions options;
  options.num_derivations = num_derivations;
  options.num_raw_inputs = std::max<size_t>(4, num_derivations / 20);
  options.num_transformations = 8;
  options.seed = 42;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(catalog.get(), options);
  if (!graph.ok()) std::abort();
  VirtualDataCatalog* raw = catalog.get();
  cache->emplace(num_derivations, std::move(catalog));
  return raw;
}

/// The matching ground-truth graph for CachedCanonicalCatalog sizes.
inline const workload::CanonicalGraph& CachedCanonicalGraph(
    size_t num_derivations) {
  static std::map<size_t, workload::CanonicalGraph>* cache =
      new std::map<size_t, workload::CanonicalGraph>();
  auto it = cache->find(num_derivations);
  if (it != cache->end()) return it->second;
  // Regenerate against a throwaway catalog; same seed -> same graph.
  VirtualDataCatalog scratch("scratch");
  Status opened = scratch.Open();
  if (!opened.ok()) std::abort();
  workload::CanonicalGraphOptions options;
  options.num_derivations = num_derivations;
  options.num_raw_inputs = std::max<size_t>(4, num_derivations / 20);
  options.num_transformations = 8;
  options.seed = 42;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(&scratch, options);
  if (!graph.ok()) std::abort();
  return cache->emplace(num_derivations, std::move(*graph)).first->second;
}

}  // namespace bench
}  // namespace vdg

#endif  // VDG_BENCH_BENCH_COMMON_H_
