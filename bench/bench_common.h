#ifndef VDG_BENCH_BENCH_COMMON_H_
#define VDG_BENCH_BENCH_COMMON_H_

// Shared helpers for the reproduction benchmarks. Each bench binary
// regenerates one figure/experiment of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md); these helpers build the catalogs and grids they
// sweep over.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/logging.h"
#include "workload/canonical.h"

namespace vdg {
namespace bench {

/// Builds (once per distinct size, cached) a catalog populated with a
/// canonical dependency graph of `num_derivations` derivations.
inline VirtualDataCatalog* CachedCanonicalCatalog(size_t num_derivations) {
  static std::map<size_t, std::unique_ptr<VirtualDataCatalog>>* cache =
      new std::map<size_t, std::unique_ptr<VirtualDataCatalog>>();
  auto it = cache->find(num_derivations);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto catalog = std::make_unique<VirtualDataCatalog>(
      "bench-" + std::to_string(num_derivations));
  Status opened = catalog->Open();
  if (!opened.ok()) std::abort();
  workload::CanonicalGraphOptions options;
  options.num_derivations = num_derivations;
  options.num_raw_inputs = std::max<size_t>(4, num_derivations / 20);
  options.num_transformations = 8;
  options.seed = 42;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(catalog.get(), options);
  if (!graph.ok()) std::abort();
  VirtualDataCatalog* raw = catalog.get();
  cache->emplace(num_derivations, std::move(catalog));
  return raw;
}

/// The matching ground-truth graph for CachedCanonicalCatalog sizes.
inline const workload::CanonicalGraph& CachedCanonicalGraph(
    size_t num_derivations) {
  static std::map<size_t, workload::CanonicalGraph>* cache =
      new std::map<size_t, workload::CanonicalGraph>();
  auto it = cache->find(num_derivations);
  if (it != cache->end()) return it->second;
  // Regenerate against a throwaway catalog; same seed -> same graph.
  VirtualDataCatalog scratch("scratch");
  Status opened = scratch.Open();
  if (!opened.ok()) std::abort();
  workload::CanonicalGraphOptions options;
  options.num_derivations = num_derivations;
  options.num_raw_inputs = std::max<size_t>(4, num_derivations / 20);
  options.num_transformations = 8;
  options.seed = 42;
  Result<workload::CanonicalGraph> graph =
      workload::GenerateCanonicalGraph(&scratch, options);
  if (!graph.ok()) std::abort();
  return cache->emplace(num_derivations, std::move(*graph)).first->second;
}

/// VDL for a one-input/one-output pass-through transformation — the
/// minimal TR several benches need before defining derivation chains.
inline std::string SingleStepTransformationVdl(const std::string& name,
                                               const std::string& exec) {
  return "TR " + name +
         "( output out, input in ) {"
         "  argument stdin = ${input:in};"
         "  argument stdout = ${output:out};"
         "  exec = \"" +
         exec + "\"; }";
}

/// Builds a catalog holding a linear derivation chain d0 -> d1 -> ...
/// -> d<depth> through a single `refine` transformation — the Figure 3
/// provenance shape.
inline std::unique_ptr<VirtualDataCatalog> BuildChainCatalog(
    const std::string& authority, int depth) {
  Logger::set_threshold(LogLevel::kError);
  auto catalog = std::make_unique<VirtualDataCatalog>(authority);
  if (!catalog->Open().ok()) std::abort();
  if (!catalog->ImportVdl(SingleStepTransformationVdl("refine", "/bin/refine"))
           .ok()) {
    std::abort();
  }
  if (!catalog->ImportVdl("DS d0 : Dataset size=\"1024\";").ok()) {
    std::abort();
  }
  for (int k = 1; k <= depth; ++k) {
    std::string vdl = "DV l" + std::to_string(k) +
                      "->refine( out=@{output:\"d" + std::to_string(k) +
                      "\"}, in=@{input:\"d" + std::to_string(k - 1) +
                      "\"} );";
    if (!catalog->ImportVdl(vdl).ok()) std::abort();
  }
  return catalog;
}

/// The equality query the sharded-catalog benches issue: datasets
/// annotated shard == `shard`, served by the attribute index.
inline DatasetQuery ShardQuery(int64_t shard) {
  DatasetQuery q;
  q.predicates.push_back(
      AttributePredicate{"shard", PredicateOp::kEq, AttributeValue(shard)});
  return q;
}

/// A cached canonical catalog whose datasets carry an indexed "shard"
/// annotation (i % 16) so ShardQuery hits the attribute-index path.
inline VirtualDataCatalog* ShardedCatalog(size_t num_derivations) {
  static std::map<size_t, VirtualDataCatalog*>* cache =
      new std::map<size_t, VirtualDataCatalog*>();
  auto it = cache->find(num_derivations);
  if (it != cache->end()) return it->second;
  VirtualDataCatalog* c = CachedCanonicalCatalog(num_derivations);
  NameList names = c->AllDatasetNames();
  for (size_t i = 0; i < names.size(); ++i) {
    Status s = c->Annotate("dataset", names[i], "shard",
                           AttributeValue(static_cast<int64_t>(i % 16)));
    if (!s.ok()) std::abort();
  }
  cache->emplace(num_derivations, c);
  return c;
}

}  // namespace bench
}  // namespace vdg

#endif  // VDG_BENCH_BENCH_COMMON_H_
