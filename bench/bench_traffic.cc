// TRAFFIC — sharded catalog scale-out under a million-user open-loop
// load (ISSUE 10). One benchmark, swept over the shard count: the
// harness models `users` independent clients as a Poisson arrival
// stream at a FIXED offered rate (calibrated once, from the 1-shard
// run, then pinned for every other topology, so all points see equal
// load), with every service time measured for real against the shard
// catalogs and queueing simulated in virtual time — the only honest
// way to show 8-way scaling on a one-core host. The claims gated in
// tools/run_bench.sh: aggregate predicate-query throughput grows >= 3x
// from 1 to 8 shards, and p99 latency at 8 shards is no worse than the
// saturated 1-shard baseline.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "workload/traffic_gen.h"

namespace vdg {
namespace {

// The offered rate every topology runs at, calibrated by the first
// (1-shard) run. Benchmarks registered with Arg(1) first, so the
// ordering is deterministic.
double g_offered_rate = 0.0;

void BM_Traffic(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  workload::TrafficOptions options;
  options.offered_rate = g_offered_rate;  // 0 on the first run: calibrate
  Result<std::unique_ptr<workload::TrafficWorld>> world =
      workload::MakeTrafficWorld(shards, options);
  if (!world.ok()) std::abort();
  workload::TrafficHarness& harness = *(*world)->harness;

  workload::TrafficReport report;
  for (auto _ : state) {
    Result<workload::TrafficReport> ran = harness.Run();
    if (!ran.ok()) std::abort();
    report = *std::move(ran);
  }
  if (g_offered_rate == 0.0) g_offered_rate = report.offered_rate;

  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(report.operations));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["users"] = static_cast<double>(options.users);
  state.counters["errors"] = static_cast<double>(report.errors);
  state.counters["offered_rate"] = report.offered_rate;
  state.counters["completed_rate"] = report.completed_rate;
  state.counters["query_rate"] = report.query_rate;
  state.counters["p50_us"] =
      static_cast<double>(report.latency.ValueAtQuantile(0.50)) / 1e3;
  state.counters["p95_us"] =
      static_cast<double>(report.latency.ValueAtQuantile(0.95)) / 1e3;
  state.counters["p99_us"] =
      static_cast<double>(report.latency.ValueAtQuantile(0.99)) / 1e3;
  state.counters["query_p99_us"] =
      static_cast<double>(report.discovery_latency.ValueAtQuantile(0.99)) /
      1e3;
}
BENCHMARK(BM_Traffic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vdg
