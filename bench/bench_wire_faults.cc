// WIRE-FAULTS — availability of the fault-hardened wire path under a
// hostile transport: ResilientCatalogClient over two replica catalog
// servers, every byte routed through a seeded FaultyChannel injecting
// 5% connection resets and 5% frame corruption. Each iteration is one
// client-visible call (a FIG3 provenance hop, with a tokened executor
// write-back every 64th call); `availability` is the fraction that
// succeeded after the resilient layer's reconnects, failovers, and
// idempotent retries.
//
// tools/run_bench.sh merges this into BENCH_fault.json ("wire"
// section) and gates availability >= 0.999 via
// tools/check_bench_floor.py — the acceptance bar from DESIGN.md §14.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "catalog/client.h"
#include "federation/faulty_transport.h"
#include "federation/resilient_client.h"
#include "federation/server.h"

namespace vdg {
namespace {

constexpr int kChainDepth = 8;

/// Two wire servers over one backend catalog (shared batch-dedup
/// window), dialed through one seeded fault injector — the same
/// replicated deployment tests/test_wire_faults.cc exercises.
struct Replicated {
  std::unique_ptr<VirtualDataCatalog> catalog;
  std::shared_ptr<BatchDedupRegistry> dedup;
  std::unique_ptr<CatalogServer> a;
  std::unique_ptr<CatalogServer> b;
  std::shared_ptr<FaultInjector> injector;
  std::unique_ptr<ResilientCatalogClient> client;
};

Replicated MakeReplicated(const FaultProfile& profile, uint64_t seed) {
  Replicated r;
  r.catalog = bench::BuildChainCatalog("chaos.org", kChainDepth);
  r.dedup = std::make_shared<BatchDedupRegistry>();
  ServerOptions sopts;
  sopts.batch_dedup = r.dedup;
  auto backend =
      std::make_shared<InProcessCatalogClient>(r.catalog.get(), false);
  r.a = std::make_unique<CatalogServer>(backend, sopts);
  r.b = std::make_unique<CatalogServer>(backend, sopts);
  r.injector = std::make_shared<FaultInjector>(profile, seed);
  std::vector<ResilientEndpoint> endpoints;
  for (CatalogServer* server : {r.a.get(), r.b.get()}) {
    ResilientEndpoint ep;
    ep.name = server == r.a.get() ? "replica-a" : "replica-b";
    ep.connect = [server, injector = r.injector]()
        -> Result<std::shared_ptr<CatalogClient>> {
      // Wire deadline well under the retry budget: a corrupted length
      // prefix hangs the stream until the deadline, and the resilient
      // layer needs budget left to reconnect and retry.
      WireClientOptions copts;
      copts.default_deadline = std::chrono::milliseconds(250);
      auto c = ConnectFaulty(server, injector, copts);
      if (!c.ok()) return c.status();
      return std::static_pointer_cast<CatalogClient>(*c);
    };
    endpoints.push_back(std::move(ep));
  }
  ResilientOptions ropts;
  ropts.seed = seed;
  ropts.max_attempts = 12;
  ropts.retry_budget = std::chrono::seconds(10);
  ropts.backoff_base = std::chrono::milliseconds(1);
  r.client =
      std::make_unique<ResilientCatalogClient>(std::move(endpoints), ropts);
  return r;
}

// The acceptance scenario: 5% resets + 5% corruption, two replicas.
// Arg pair is (reset%, corrupt%) so the sweep can grow later.
void BM_WireFaultAvailability(benchmark::State& state) {
  FaultProfile profile;
  profile.reset_rate = static_cast<double>(state.range(0)) / 100.0;
  profile.corrupt_rate = static_cast<double>(state.range(1)) / 100.0;
  Replicated r = MakeReplicated(profile, /*seed=*/42);

  uint64_t calls = 0;
  uint64_t successes = 0;
  int serial = 0;
  std::string cursor = "d" + std::to_string(kChainDepth);
  for (auto _ : state) {
    ++calls;
    if (calls % 64 == 0) {
      // Tokened executor write-back: the resilient client stamps an
      // idempotency token, so retries dedup instead of double-apply.
      Replica rep;
      rep.dataset = "d1";
      rep.site = "chaos.org";
      rep.physical_path = "/store/d1." + std::to_string(serial++);
      std::vector<CatalogMutation> batch;
      batch.push_back(CatalogMutation::AddReplica(rep));
      batch.push_back(CatalogMutation::Annotate(
          "dataset", "d1", "bench_pass", AttributeValue(int64_t{serial})));
      Result<BatchResult> applied = r.client->ApplyBatch(batch);
      if (applied.ok() && applied->applied) ++successes;
      continue;
    }
    // One FIG3 lineage hop; wrap at the raw input.
    Result<ProvenanceStep> step = r.client->GetProvenanceStep(cursor);
    if (step.ok()) {
      ++successes;
      if (step->derivation.has_value() &&
          !step->derivation->InputDatasets().empty()) {
        cursor = step->derivation->InputDatasets().front();
      } else {
        cursor = "d" + std::to_string(kChainDepth);
      }
    } else {
      cursor = "d" + std::to_string(kChainDepth);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(calls));
  state.counters["availability"] =
      calls ? static_cast<double>(successes) / static_cast<double>(calls)
            : 0.0;
  const FaultStats& faults = r.injector->stats();
  state.counters["faults_injected"] = static_cast<double>(faults.total());
  state.counters["resets"] = static_cast<double>(faults.resets.load());
  state.counters["corruptions"] =
      static_cast<double>(faults.corruptions.load());
  const ResilientStats& rs = r.client->stats();
  state.counters["retries"] = static_cast<double>(rs.retries);
  state.counters["reconnects"] = static_cast<double>(rs.reconnects);
  state.counters["failovers"] = static_cast<double>(rs.failovers);
  state.counters["exhausted_calls"] = static_cast<double>(rs.exhausted_calls);
}
BENCHMARK(BM_WireFaultAvailability)->Args({5, 5})->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vdg
