// FIG3 — Figure 3 shows dataset dependency hyperlinks crossing virtual
// data servers: personal derivations depend on group data, group data
// on collaboration data. This bench builds derivation chains of
// configurable depth that alternate across a ring of catalogs and
// measures federated lineage traversal: latency vs chain depth and the
// cross-server hop count.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "federation/fed_provenance.h"

namespace vdg {
namespace {

struct ChainWorld {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  CatalogRegistry registry;
  std::string tip;  // the most-derived dataset, on catalogs[0]
};

// A derivation chain of `depth` links distributed round-robin over
// `servers` catalogs; link k's input is a vdp:// reference to link
// k-1's output on the previous server.
ChainWorld* BuildChain(int servers, int depth) {
  static std::map<std::pair<int, int>, std::unique_ptr<ChainWorld>>* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<ChainWorld>>();
  auto key = std::make_pair(servers, depth);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto world = std::make_unique<ChainWorld>();
  for (int i = 0; i < servers; ++i) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "tier" + std::to_string(i) + ".org");
    if (!catalog->Open().ok()) std::abort();
    if (!catalog
             ->ImportVdl("TR refine( output out, input in ) {"
                         "  argument stdin = ${input:in};"
                         "  argument stdout = ${output:out};"
                         "  exec = \"/bin/refine\"; }")
             .ok()) {
      std::abort();
    }
    world->catalogs.push_back(std::move(catalog));
  }
  for (auto& catalog : world->catalogs) {
    if (!world->registry.Register(catalog.get()).ok()) std::abort();
  }
  // Raw data at the last tier; each link lives on tier (depth-k) % n.
  {
    Dataset raw;
    raw.name = "level0";
    raw.size_bytes = 1;
    int owner = depth % servers;
    if (!world->catalogs[static_cast<size_t>(owner)]
             ->DefineDataset(raw)
             .ok()) {
      std::abort();
    }
  }
  for (int k = 1; k <= depth; ++k) {
    int owner = (depth - k) % servers;
    int prev_owner = (depth - k + 1) % servers;
    Derivation dv("make-level" + std::to_string(k), "refine");
    // Same-owner links use bare local names; cross-owner links are
    // vdp:// hyperlinks (Figure 3's mixture).
    std::string prev_name = "level" + std::to_string(k - 1);
    std::string input =
        owner == prev_owner
            ? prev_name
            : "vdp://tier" + std::to_string(prev_owner) + ".org/" +
                  prev_name;
    if (!dv.AddArg(ActualArg::DatasetRef("out", "level" + std::to_string(k),
                                         ArgDirection::kOut))
             .ok() ||
        !dv.AddArg(ActualArg::DatasetRef("in", input, ArgDirection::kIn))
             .ok()) {
      std::abort();
    }
    if (!world->catalogs[static_cast<size_t>(owner)]
             ->DefineDerivation(std::move(dv))
             .ok()) {
      std::abort();
    }
  }
  world->tip = "level" + std::to_string(depth);
  ChainWorld* raw = world.get();
  cache->emplace(key, std::move(world));
  return raw;
}

void BM_FederatedLineageByDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ChainWorld* world = BuildChain(/*servers=*/3, depth);
  FederatedProvenance prov(world->registry);
  uint64_t hops = 0;
  for (auto _ : state) {
    Result<LineageNode> lineage =
        prov.Lineage(world->catalogs[0].get(), world->tip);
    benchmark::DoNotOptimize(lineage);
    if (!lineage.ok()) std::abort();
    hops = prov.last_hop_count();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["chain_depth"] = depth;
  state.counters["cross_server_hops"] = static_cast<double>(hops);
}
BENCHMARK(BM_FederatedLineageByDepth)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_FederatedLineageByServerCount(benchmark::State& state) {
  int servers = static_cast<int>(state.range(0));
  ChainWorld* world = BuildChain(servers, /*depth=*/32);
  FederatedProvenance prov(world->registry);
  uint64_t hops = 0;
  for (auto _ : state) {
    Result<LineageNode> lineage =
        prov.Lineage(world->catalogs[0].get(), world->tip);
    if (!lineage.ok()) std::abort();
    hops = prov.last_hop_count();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["servers"] = servers;
  state.counters["cross_server_hops"] = static_cast<double>(hops);
}
BENCHMARK(BM_FederatedLineageByServerCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Baseline: the same chain depth on a single catalog with the plain
// (non-federated) tracker — the cost of distribution is the gap.
void BM_LocalLineageByDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ChainWorld* world = BuildChain(/*servers=*/1, depth);
  ProvenanceTracker tracker(*world->catalogs[0]);
  // Local names (no vdp prefix resolution needed at each level):
  // the single-server chain still used vdp self-references, so use the
  // federated path for apples-to-apples but note hops=chain length...
  // Instead measure Ancestors(), the set-based walk.
  for (auto _ : state) {
    Result<std::set<std::string>> ancestors =
        tracker.Ancestors(world->tip);
    benchmark::DoNotOptimize(ancestors);
    if (!ancestors.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["chain_depth"] = depth;
}
BENCHMARK(BM_LocalLineageByDepth)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace vdg
