// FIG5 — Figure 5 is the virtual-data process flow: composition ->
// planning (-> estimation) -> derivation -> discovery/sharing. This
// bench times each facet of the loop separately and then the whole
// loop end-to-end for one virtual data product on the simulated grid.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

constexpr const char* kPipelineVdl = R"(
TR simulate( output events, input config, none nevents="1000" ) {
  argument n = "-n "${none:nevents};
  argument stdin = ${input:config};
  argument stdout = ${output:events};
  exec = "/bin/simulate";
}
TR analyze( output summary, input events ) {
  argument stdin = ${input:events};
  argument stdout = ${output:summary};
  exec = "/bin/analyze";
}
)";

// Composition: parse + define a TR/DV pair (fresh names each time).
void BM_Composition(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("flow.org");
  if (!catalog.Open().ok()) std::abort();
  if (!catalog.ImportVdl(kPipelineVdl).ok()) std::abort();
  if (!catalog.ImportVdl("DS cfg : Dataset size=\"1024\";").ok()) {
    std::abort();
  }
  int64_t i = 0;
  for (auto _ : state) {
    std::string n = std::to_string(i++);
    Status s = catalog.ImportVdl(
        "DV sim" + n + "->simulate( events=@{output:\"evts" + n +
        "\"}, config=@{input:\"cfg\"}, nevents=\"" + n + "\" );");
    if (!s.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Composition);

struct FlowWorld {
  VirtualDataCatalog catalog{"flow.org"};
  GridSimulator grid{workload::SmallTestbed(), 1};
  CostEstimator estimator;
  std::unique_ptr<RequestPlanner> planner;
  std::unique_ptr<WorkflowEngine> engine;

  FlowWorld() {
    Logger::set_threshold(LogLevel::kError);
    if (!catalog.Open().ok()) std::abort();
    if (!catalog.ImportVdl(kPipelineVdl).ok()) std::abort();
    if (!catalog.ImportVdl("DS cfg : Dataset size=\"65536\";").ok()) {
      std::abort();
    }
    if (!grid.PlaceFile("east", "cfg", 65536, true).ok()) std::abort();
    Replica r;
    r.dataset = "cfg";
    r.site = "east";
    r.size_bytes = 65536;
    if (!catalog.AddReplica(r).ok()) std::abort();
    planner = std::make_unique<RequestPlanner>(catalog, grid.topology(),
                                               &grid.rls(), estimator);
    engine = std::make_unique<WorkflowEngine>(&grid, &catalog);
  }

  // Adds the two-stage derivation chain for generation `i`.
  void Compose(int64_t i) {
    std::string n = std::to_string(i);
    Status s = catalog.ImportVdl(
        "DV sim" + n + "->simulate( events=@{output:\"evts" + n +
        "\"}, config=@{input:\"cfg\"}, nevents=\"" + n + "\" );"
        "DV ana" + n + "->analyze( summary=@{output:\"sum" + n +
        "\"}, events=@{input:\"evts" + n + "\"} );");
    if (!s.ok()) std::abort();
  }
};

// Planning: resolve the two-stage chain into an execution plan.
void BM_Planning(benchmark::State& state) {
  FlowWorld world;
  world.Compose(0);
  PlannerOptions options;
  options.target_site = "east";
  for (auto _ : state) {
    Result<ExecutionPlan> plan = world.planner->Plan("sum0", options);
    benchmark::DoNotOptimize(plan);
    if (!plan.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Planning);

// Estimation: the rerun-vs-fetch cost decision alone.
void BM_Estimation(benchmark::State& state) {
  FlowWorld world;
  world.Compose(0);
  PlannerOptions options;
  options.target_site = "east";
  for (auto _ : state) {
    Result<RequestPlanner::ModeDecision> decision =
        world.planner->DecideMode("sum0", options);
    benchmark::DoNotOptimize(decision);
    if (!decision.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Estimation);

// Derivation: execute the planned workflow on the simulated grid
// (plan + simulate + provenance recording).
void BM_Derivation(benchmark::State& state) {
  FlowWorld world;
  PlannerOptions options;
  options.target_site = "east";
  int64_t i = 0;
  for (auto _ : state) {
    world.Compose(i);
    Result<ExecutionPlan> plan =
        world.planner->Plan("sum" + std::to_string(i), options);
    if (!plan.ok()) std::abort();
    Result<WorkflowResult> result = world.engine->Execute(*plan);
    if (!result.ok() || !result->succeeded) std::abort();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Derivation);

// Discovery: find what exists now and trace one product's lineage.
void BM_Discovery(benchmark::State& state) {
  FlowWorld world;
  PlannerOptions options;
  options.target_site = "east";
  for (int64_t i = 0; i < 32; ++i) {
    world.Compose(i);
    Result<ExecutionPlan> plan =
        world.planner->Plan("sum" + std::to_string(i), options);
    if (!plan.ok()) std::abort();
    if (!world.engine->Execute(*plan).ok()) std::abort();
  }
  ProvenanceTracker tracker(world.catalog);
  DatasetQuery query;
  query.name_prefix = "sum";
  query.require_materialized = true;
  for (auto _ : state) {
    NameList found = world.catalog.FindDatasets(query);
    if (found.size() != 32) std::abort();
    Result<LineageNode> lineage = tracker.Lineage(found[0]);
    benchmark::DoNotOptimize(lineage);
    if (!lineage.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Discovery);

// The full Figure 5 loop: compose -> plan -> estimate -> derive ->
// discover, once per iteration, each on a fresh virtual product.
void BM_FullCycle(benchmark::State& state) {
  FlowWorld world;
  PlannerOptions options;
  options.target_site = "east";
  ProvenanceTracker tracker(world.catalog);
  int64_t i = 0;
  double sim_seconds = 0;
  for (auto _ : state) {
    world.Compose(i);
    std::string target = "sum" + std::to_string(i);
    Result<RequestPlanner::ModeDecision> decision =
        world.planner->DecideMode(target, options);
    if (!decision.ok()) std::abort();
    Result<ExecutionPlan> plan = world.planner->Plan(target, options);
    if (!plan.ok()) std::abort();
    Result<WorkflowResult> result = world.engine->Execute(*plan);
    if (!result.ok() || !result->succeeded) std::abort();
    sim_seconds += result->makespan_s;
    Result<LineageNode> lineage = tracker.Lineage(target);
    if (!lineage.ok()) std::abort();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["simulated_makespan_s"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullCycle);

}  // namespace
}  // namespace vdg
