// FIG1 — Figure 1 of the paper defines the five-object virtual data
// schema (dataset, replica, transformation, derivation, invocation).
// This bench measures the catalog operations over that schema at
// growing catalog sizes: definition throughput, point lookup,
// provenance navigation, attribute discovery, and the
// "has-this-been-computed" signature probe.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "catalog/catalog.h"

namespace vdg {
namespace {

void BM_DefineDerivation(benchmark::State& state) {
  Logger::set_threshold(LogLevel::kError);
  // Fresh catalog per run; derivations appended during timing.
  VirtualDataCatalog catalog("define-bench");
  if (!catalog.Open().ok()) std::abort();
  if (!catalog
           .ImportVdl(bench::SingleStepTransformationVdl("step", "/bin/step") +
                      "DS seed0 : Dataset size=\"1\";")
           .ok()) {
    std::abort();
  }
  int64_t i = 0;
  for (auto _ : state) {
    Derivation dv("dv" + std::to_string(i), "step");
    Status s1 = dv.AddArg(ActualArg::DatasetRef(
        "out", "out" + std::to_string(i), ArgDirection::kOut));
    Status s2 = dv.AddArg(ActualArg::DatasetRef(
        "in", i == 0 ? "seed0" : "out" + std::to_string(i - 1),
        ArgDirection::kIn));
    Status s3 = catalog.DefineDerivation(std::move(dv));
    if (!s1.ok() || !s2.ok() || !s3.ok()) std::abort();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DefineDerivation);

void BM_PointLookup(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& name = graph.outputs[i++ % graph.outputs.size()];
    Result<Dataset> ds = catalog->GetDataset(name);
    benchmark::DoNotOptimize(ds);
    if (!ds.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["catalog_objects"] =
      static_cast<double>(catalog->Stats().total());
}
BENCHMARK(BM_PointLookup)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ProducerNavigation(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& name = graph.outputs[i++ % graph.outputs.size()];
    Result<std::string> producer = catalog->ProducerOf(name);
    benchmark::DoNotOptimize(producer);
    NameList consumers = catalog->ConsumersOf(name);
    benchmark::DoNotOptimize(consumers);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProducerNavigation)->Arg(100)->Arg(1000)->Arg(5000);

void BM_AttributeDiscovery(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  DatasetQuery query;
  query.name_prefix = "canon-out1";
  for (auto _ : state) {
    NameList hits = catalog->FindDatasets(query);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttributeDiscovery)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);

// Equality discovery through the attribute index: should stay ~flat in
// catalog size, unlike the predicate scan above.
void BM_AttributeDiscoveryIndexed(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  // Tag a fixed-size subset once (idempotent across iterations).
  static std::set<size_t>* tagged = new std::set<size_t>();
  if (tagged->insert(size).second) {
    for (size_t i = 0; i < 20 && i < graph.outputs.size(); ++i) {
      Status s = catalog->Annotate("dataset", graph.outputs[i], "quality",
                                   "approved");
      if (!s.ok()) std::abort();
    }
  }
  DatasetQuery query;
  query.predicates = {{"quality", PredicateOp::kEq, "approved"}};
  size_t hits = 0;
  for (auto _ : state) {
    NameList found = catalog->FindDatasets(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_AttributeDiscoveryIndexed)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);

// Broad shard discovery through the zero-copy result plane: every
// query returns a NameList whose string_views point into the pinned
// snapshot's symbol spine, so no per-result string is allocated or
// copied.  Items = names surfaced per second.
void BM_ShardScanView(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  const VirtualDataCatalog* catalog = bench::ShardedCatalog(size);
  int64_t shard = 0;
  size_t found = 0;
  for (auto _ : state) {
    NameList names = catalog->FindDatasets(bench::ShardQuery(shard++ % 16));
    benchmark::DoNotOptimize(names);
    found += names.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(found));
}
BENCHMARK(BM_ShardScanView)->Arg(1000)->Arg(10000);

// The pre-refactor result contract: same shard query, but every
// result list is materialized as owned std::strings (what the old
// Result<std::vector<std::string>> plane did on every call).  Kept as
// the comparison baseline for the view path above.
void BM_ShardScanLegacyCopy(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  const VirtualDataCatalog* catalog = bench::ShardedCatalog(size);
  int64_t shard = 0;
  size_t found = 0;
  for (auto _ : state) {
    std::vector<std::string> names =
        catalog->FindDatasets(bench::ShardQuery(shard++ % 16)).ToStrings();
    benchmark::DoNotOptimize(names);
    found += names.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(found));
}
BENCHMARK(BM_ShardScanLegacyCopy)->Arg(1000)->Arg(10000);

// Type-conformance discovery through the type-closure index: the
// planner enumerates the subtype posting list instead of running
// Conforms() against every dataset row.
void BM_TypeDiscovery(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  DatasetQuery query;
  query.type = DatasetType{};
  query.type->content = "canon-data";
  size_t hits = 0;
  for (auto _ : state) {
    NameList found = catalog->FindDatasets(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_TypeDiscovery)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);

// "Which results actually exist as real data?" — served from the
// incrementally maintained materialized-name set, so cost tracks the
// number of materialized datasets, not catalog size.
void BM_MaterializedDiscovery(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  // Materialize a fixed-size subset once (idempotent across runs).
  static std::set<size_t>* seeded = new std::set<size_t>();
  if (seeded->insert(size).second) {
    for (size_t i = 0; i < 20 && i < graph.outputs.size(); ++i) {
      Replica r;
      r.dataset = graph.outputs[i];
      r.site = "uchicago";
      r.size_bytes = 1 << 20;
      if (!catalog->AddReplica(r).ok()) std::abort();
    }
  }
  DatasetQuery query;
  query.require_materialized = true;
  size_t hits = 0;
  for (auto _ : state) {
    NameList found = catalog->FindDatasets(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_MaterializedDiscovery)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000);

// Lineage-style discovery: "which derivations read this dataset?"
// answered from the consumer edge index instead of scanning every
// derivation's argument list.
void BM_DerivationDiscoveryByInput(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  DerivationQuery query;
  size_t i = 0;
  size_t hits = 0;
  for (auto _ : state) {
    query.reads_dataset = graph.raw_inputs[i++ % graph.raw_inputs.size()];
    NameList found = catalog->FindDerivations(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_DerivationDiscoveryByInput)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10000);

void BM_SignatureDedupProbe(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(size);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(size);
  // Probe with real (hit) derivations re-materialized from the catalog.
  std::vector<Derivation> probes;
  for (size_t i = 0; i < 16 && i < graph.derivations.size(); ++i) {
    Result<Derivation> dv = catalog->GetDerivation(graph.derivations[i]);
    if (!dv.ok()) std::abort();
    probes.push_back(std::move(*dv));
  }
  size_t i = 0;
  for (auto _ : state) {
    Result<std::string> hit =
        catalog->FindEquivalentDerivation(probes[i++ % probes.size()]);
    benchmark::DoNotOptimize(hit);
    if (!hit.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureDedupProbe)->Arg(100)->Arg(1000)->Arg(5000);

void BM_InvocationRecording(benchmark::State& state) {
  VirtualDataCatalog* catalog = bench::CachedCanonicalCatalog(1000);
  const workload::CanonicalGraph& graph = bench::CachedCanonicalGraph(1000);
  size_t i = 0;
  for (auto _ : state) {
    Invocation iv;
    iv.derivation = graph.derivations[i++ % graph.derivations.size()];
    iv.context.site = "uchicago";
    iv.context.host = "n0";
    iv.start_time = static_cast<double>(i);
    iv.duration_s = 10;
    Result<std::string> id = catalog->RecordInvocation(std::move(iv));
    if (!id.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvocationRecording);

}  // namespace
}  // namespace vdg
