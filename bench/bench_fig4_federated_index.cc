// FIG4 — Figure 4 shows federating indexes at multiple levels
// (personal / group / collaboration-wide) over a set of virtual data
// servers. The claim to verify: discovery through an index beats a
// direct scan across N catalogs, with the gap growing in N, at the
// price of refresh cost and staleness. This bench measures all three
// sides: index query, direct multi-catalog scan, and refresh.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "federation/index.h"

namespace vdg {
namespace {

struct IndexedWorld {
  std::vector<std::unique_ptr<VirtualDataCatalog>> catalogs;
  std::unique_ptr<FederatedIndex> index;
};

IndexedWorld* BuildWorld(int catalogs, size_t derivations_each) {
  static std::map<std::pair<int, size_t>, std::unique_ptr<IndexedWorld>>*
      cache = new std::map<std::pair<int, size_t>,
                           std::unique_ptr<IndexedWorld>>();
  auto key = std::make_pair(catalogs, derivations_each);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  Logger::set_threshold(LogLevel::kError);
  auto world = std::make_unique<IndexedWorld>();
  for (int i = 0; i < catalogs; ++i) {
    auto catalog = std::make_unique<VirtualDataCatalog>(
        "vds" + std::to_string(i) + ".org");
    if (!catalog->Open().ok()) std::abort();
    workload::CanonicalGraphOptions options;
    options.num_derivations = derivations_each;
    options.num_raw_inputs = 8;
    options.seed = static_cast<uint64_t>(i) + 1;
    options.prefix = "vds" + std::to_string(i);
    Result<workload::CanonicalGraph> graph =
        workload::GenerateCanonicalGraph(catalog.get(), options);
    if (!graph.ok()) std::abort();
    // Annotate a selective subset so queries have real work to do.
    for (size_t d = 0; d < graph->outputs.size(); d += 10) {
      Status s = catalog->Annotate("dataset", graph->outputs[d], "quality",
                                   "approved");
      if (!s.ok()) std::abort();
    }
    world->catalogs.push_back(std::move(catalog));
  }
  world->index = std::make_unique<FederatedIndex>("collaboration-wide");
  for (auto& catalog : world->catalogs) {
    if (!world->index->AddSource(catalog.get()).ok()) std::abort();
  }
  if (!world->index->Refresh().ok()) std::abort();
  IndexedWorld* raw = world.get();
  cache->emplace(key, std::move(world));
  return raw;
}

DatasetQuery ApprovedQuery() {
  DatasetQuery query;
  query.predicates = {{"quality", PredicateOp::kEq, "approved"}};
  return query;
}

void BM_IndexQuery(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(static_cast<int>(state.range(0)), 500);
  DatasetQuery query = ApprovedQuery();
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<IndexEntry> found = world->index->FindDatasets(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["catalogs"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_IndexQuery)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DirectScan(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(static_cast<int>(state.range(0)), 500);
  DatasetQuery query = ApprovedQuery();
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<IndexEntry> found = world->index->ScanDatasets(query);
    benchmark::DoNotOptimize(found);
    hits = found.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["catalogs"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_DirectScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_IndexRefresh(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(static_cast<int>(state.range(0)), 500);
  for (auto _ : state) {
    if (!world->index->Refresh().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["indexed_entries"] =
      static_cast<double>(world->index->size());
}
BENCHMARK(BM_IndexRefresh)->Arg(2)->Arg(8)->Arg(16);

// The refresh-cost half of the delta-refresh claim: bring the index
// current after K entries changed in one catalog. Delta refresh reads
// the catalog changelog and touches K entries; the full rebuild
// baseline below rescans every object in every source. The mutation
// burst itself happens outside the timed region.
void BM_DeltaRefresh(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(8, 500);
  int churn = static_cast<int>(state.range(0));
  if (!world->index->Refresh().ok()) std::abort();
  int64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    VirtualDataCatalog* catalog = world->catalogs[0].get();
    for (int k = 0; k < churn; ++k) {
      Status s = catalog->Annotate("dataset", "vds0-out" + std::to_string(k),
                                   "touch", ++tick);
      if (!s.ok()) std::abort();
    }
    state.ResumeTiming();
    if (!world->index->Refresh().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["indexed_entries"] =
      static_cast<double>(world->index->size());
  state.counters["changed_entries"] = static_cast<double>(churn);
}
BENCHMARK(BM_DeltaRefresh)->Arg(1)->Arg(16)->Arg(256);

// Baseline: identical churn, but the index is rebuilt from scratch —
// the pre-delta Refresh() behavior.
void BM_FullRebuild(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(8, 500);
  int churn = static_cast<int>(state.range(0));
  if (!world->index->Refresh().ok()) std::abort();
  int64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    VirtualDataCatalog* catalog = world->catalogs[0].get();
    for (int k = 0; k < churn; ++k) {
      Status s = catalog->Annotate("dataset", "vds0-out" + std::to_string(k),
                                   "touch", ++tick);
      if (!s.ok()) std::abort();
    }
    state.ResumeTiming();
    if (!world->index->RebuildAll().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["indexed_entries"] =
      static_cast<double>(world->index->size());
  state.counters["changed_entries"] = static_cast<double>(churn);
}
BENCHMARK(BM_FullRebuild)->Arg(1)->Arg(16)->Arg(256);

void BM_StalenessCheck(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(8, 500);
  if (!world->index->Refresh().ok()) std::abort();
  for (auto _ : state) {
    bool stale = world->index->IsStale();
    benchmark::DoNotOptimize(stale);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StalenessCheck);

// Scoped indexes: a personal index over one catalog vs the
// collaboration index over all — the multi-level structure of Fig 4.
void BM_PersonalVsCollaborationLookup(benchmark::State& state) {
  IndexedWorld* world = BuildWorld(8, 500);
  FederatedIndex personal("personal");
  if (!personal.AddSource(world->catalogs[0].get()).ok()) std::abort();
  if (!personal.Refresh().ok()) std::abort();
  bool use_personal = state.range(0) == 0;
  FederatedIndex* index = use_personal ? &personal : world->index.get();
  for (auto _ : state) {
    std::vector<IndexEntry> hits = index->LookupName("dataset", "vds0-out42");
    benchmark::DoNotOptimize(hits);
    if (hits.empty()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(use_personal ? "personal-index" : "collaboration-index");
}
BENCHMARK(BM_PersonalVsCollaborationLookup)->Arg(0)->Arg(1);

}  // namespace
}  // namespace vdg
