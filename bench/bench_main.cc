// Shared benchmark entry point. Replaces benchmark::benchmark_main so
// every bench binary reports how THIS code was compiled: the library's
// built-in "library_build_type" context key describes how the Debian
// libbenchmark package itself was built (debug), not our flags, so
// tools/run_bench.sh gates on vdg_build_type instead.
#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("vdg_build_type", "release");
#else
  benchmark::AddCustomContext("vdg_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
