// ABL-PAT — Section 5.2 lists four patterns for applying procedures to
// datasets: (1) procedure collocated with data, (2) ship procedure to
// data, (3) ship data to procedure, (4) ship both to a third site.
// This ablation executes the same derivation under each pattern while
// sweeping input size, measuring simulated completion time. Expected
// shape: collocated ~ procedure-to-data << data-to-procedure for large
// inputs; ship-both only pays when the compute site is faster.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

// Three sites: `data` holds the input, `user` is where the requester
// sits, `hpc` is a faster third-party compute site.
GridTopology PatternTopology() {
  GridTopology topology;
  auto add_site = [&topology](const std::string& name, double factor) {
    SiteConfig site;
    site.name = name;
    for (int i = 0; i < 8; ++i) {
      site.hosts.push_back(
          {name + "-n" + std::to_string(i), factor, 1});
    }
    StorageElementConfig se;
    se.name = "se0";
    site.storage.push_back(se);
    Status s = topology.AddSite(site);
    if (!s.ok()) std::abort();
  };
  add_site("data", 1.0);
  add_site("user", 1.0);
  add_site("hpc", 4.0);  // the reason pattern 4 exists
  auto link = [&topology](const std::string& a, const std::string& b) {
    LinkConfig l;
    l.from = a;
    l.to = b;
    l.bandwidth_bytes_per_s = 12.5e6;  // 100 Mbps everywhere
    l.latency_s = 0.02;
    Status s = topology.AddLink(l);
    if (!s.ok()) std::abort();
  };
  link("data", "user");
  link("data", "hpc");
  link("user", "hpc");
  return topology;
}

double RunPattern(const std::string& exec_site, int64_t input_mb,
                  double runtime_s) {
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("pat.org");
  if (!catalog.Open().ok()) std::abort();
  if (!catalog
           .ImportVdl("TR analyze( output out, input in ) {"
                      "  argument stdin = ${input:in};"
                      "  argument stdout = ${output:out};"
                      "  exec = \"/bin/analyze\"; }"
                      "DS big : Dataset size=\"" +
                      std::to_string(input_mb << 20) +
                      "\";"
                      "DV run->analyze( out=@{output:\"result\"}, "
                      "in=@{input:\"big\"} );")
           .ok()) {
    std::abort();
  }
  Status annotated = catalog.Annotate("transformation", "analyze",
                                      "sim.runtime_s", runtime_s);
  if (!annotated.ok()) std::abort();

  GridSimulator grid(PatternTopology(), 5);
  if (!grid.PlaceFile("data", "big", input_mb << 20, true).ok()) {
    std::abort();
  }
  Replica r;
  r.dataset = "big";
  r.site = "data";
  r.size_bytes = input_mb << 20;
  if (!catalog.AddReplica(r).ok()) std::abort();

  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  WorkflowEngine engine(&grid, &catalog);
  PlannerOptions popts;
  popts.target_site = "user";
  popts.site_policy = SiteSelectionPolicy::kFixed;
  popts.fixed_site = exec_site;
  Result<ExecutionPlan> plan = planner.Plan("result", popts);
  if (!plan.ok()) std::abort();
  Result<WorkflowResult> result = engine.Execute(*plan);
  if (!result.ok() || !result->succeeded) std::abort();
  return result->makespan_s;
}

void RunPatternBench(benchmark::State& state, const std::string& site,
                     const char* label) {
  int64_t input_mb = state.range(0);
  double makespan = 0;
  for (auto _ : state) {
    // Host speed at hpc is 4x: nominal 200s of work.
    makespan = RunPattern(site, input_mb, /*runtime_s=*/200.0);
  }
  state.SetLabel(label);
  state.counters["input_mb"] = static_cast<double>(input_mb);
  state.counters["sim_completion_s"] = makespan;
}

// Pattern 1/2 (collocated / ship procedure to data): run at `data`.
void BM_PatternProcedureToData(benchmark::State& state) {
  RunPatternBench(state, "data", "procedure-to-data");
}
BENCHMARK(BM_PatternProcedureToData)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Pattern 3 (ship data to procedure): run at the user's site.
void BM_PatternDataToProcedure(benchmark::State& state) {
  RunPatternBench(state, "user", "data-to-procedure");
}
BENCHMARK(BM_PatternDataToProcedure)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Pattern 4 (ship both to a bigger computer): run at `hpc`.
void BM_PatternShipBoth(benchmark::State& state) {
  RunPatternBench(state, "hpc", "ship-both-to-hpc");
}
BENCHMARK(BM_PatternShipBoth)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The planner's own choice (min-cost) should track the best pattern
// as input size changes.
void BM_PlannerPicksPattern(benchmark::State& state) {
  int64_t input_mb = state.range(0);
  Logger::set_threshold(LogLevel::kError);
  VirtualDataCatalog catalog("pat.org");
  if (!catalog.Open().ok()) std::abort();
  if (!catalog
           .ImportVdl("TR analyze( output out, input in ) {"
                      "  argument stdin = ${input:in};"
                      "  argument stdout = ${output:out};"
                      "  exec = \"/bin/analyze\"; }"
                      "DS big : Dataset size=\"" +
                      std::to_string(input_mb << 20) +
                      "\";"
                      "DV run->analyze( out=@{output:\"result\"}, "
                      "in=@{input:\"big\"} );")
           .ok()) {
    std::abort();
  }
  GridTopology topology = PatternTopology();
  Replica r;
  r.dataset = "big";
  r.site = "data";
  r.size_bytes = input_mb << 20;
  if (!catalog.AddReplica(r).ok()) std::abort();
  CostEstimator estimator;
  // Teach the estimator the hpc speed advantage.
  estimator.RecordRuntime("analyze", "hpc", 50.0);
  estimator.RecordRuntime("analyze", "data", 200.0);
  estimator.RecordRuntime("analyze", "user", 200.0);
  RequestPlanner planner(catalog, topology, nullptr, estimator);
  PlannerOptions popts;
  popts.target_site = "user";
  std::string chosen;
  for (auto _ : state) {
    Result<ExecutionPlan> plan = planner.Plan("result", popts);
    if (!plan.ok()) std::abort();
    chosen = plan->nodes[0].site;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("chose:" + chosen);
  state.counters["input_mb"] = static_cast<double>(input_mb);
}
BENCHMARK(BM_PlannerPicksPattern)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace vdg
