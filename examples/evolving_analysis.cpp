// The Section-8 "future directions", running: an analysis code evolves
// from v1 to v2, a compatibility assertion lets v2 requests reuse v1
// results (transformation versioning + equivalence); a shared event
// store is updated in place with a transaction log and rolled back
// (update-with-undo); and several analysis windows are carved as
// overlay datasets out of one physical file, garbage-collected when
// released (virtual datasets).
#include <cstdio>

#include "catalog/catalog.h"
#include "grid/overlay.h"
#include "grid/storage.h"
#include "versioning/versions.h"

#define CHECK_OK(expr)                                           \
  do {                                                           \
    ::vdg::Status vdg_check_status = (expr);                     \
    if (!vdg_check_status.ok()) {                                \
      std::fprintf(stderr, "FATAL %s\n",                         \
                   vdg_check_status.ToString().c_str());         \
      return 1;                                                  \
    }                                                            \
  } while (false)

int main() {
  using namespace vdg;  // NOLINT: example brevity

  VirtualDataCatalog catalog("evolve.org");
  CHECK_OK(catalog.Open());
  CHECK_OK(catalog.ImportVdl(R"(
TR select-v1( output cuts, input events, none cut="pt>20" ) {
  argument c = "-c "${none:cut};
  argument stdin = ${input:events};
  argument stdout = ${output:cuts};
  exec = "/opt/ana/select-v1";
}
TR select-v2( output cuts, input events, none cut="pt>20" ) {
  argument c = "-c "${none:cut};
  argument stdin = ${input:events};
  argument stdout = ${output:cuts};
  exec = "/opt/ana/select-v2";
}
DS events.2026 : Dataset size="1000000";
DV first-pass->select-v1( cuts=@{output:"cuts.muon"},
                          events=@{input:"events.2026"}, cut="mu>2" );
)"));

  // v1 ran months ago and its output is materialized.
  Replica done;
  done.dataset = "cuts.muon";
  done.site = "uchicago";
  done.size_bytes = 4096;
  CHECK_OK(catalog.AddReplica(done).status());

  // --- Versioning: v2 is asserted result-equivalent to v1. ---
  TransformationVersionGraph versions;
  CHECK_OK(versions.RegisterVersion("select", "select-v1"));
  CHECK_OK(versions.RegisterVersion("select", "select-v2"));
  std::printf("latest version of 'select': %s\n",
              versions.LatestOf("select")->c_str());

  Derivation rerun("second-pass", "select-v2");
  CHECK_OK(rerun.AddArg(
      ActualArg::DatasetRef("cuts", "cuts.muon", ArgDirection::kOut)));
  CHECK_OK(rerun.AddArg(
      ActualArg::DatasetRef("events", "events.2026", ArgDirection::kIn)));
  CHECK_OK(rerun.AddArg(ActualArg::String("cut", "mu>2")));

  std::printf("before assertion: computed already? %s\n",
              HasBeenComputedModuloVersion(catalog, versions, rerun)
                  ? "yes"
                  : "no - would recompute");
  CHECK_OK(versions.AssertEquivalent("select-v1", "select-v2"));
  Result<std::string> hit =
      FindEquivalentDerivationModuloVersion(catalog, versions, rerun);
  CHECK_OK(hit.status());
  std::printf("after assertion:  computed already? yes - reuse %s\n",
              hit->c_str());

  // --- Update-with-undo: the event store grows in place. ---
  DatasetUpdateLog updates;
  CHECK_OK(catalog.ImportVdl(R"(
TR append-run( inout store, input delta ) {
  argument stdin = ${input:delta};
  argument stdout = ${inout:store};
  exec = "/opt/ana/append-run";
}
DS delta.run9 : Dataset size="50000";
DV ingest-run9->append-run( store=@{inout:"events.2026"},
                            delta=@{input:"delta.run9"} );
)"));
  Result<UpdateRecord> update = updates.RecordUpdate(
      &catalog, "events.2026", "ingest-run9", 1050000, /*now=*/100.0,
      "appended run 9");
  CHECK_OK(update.status());
  std::printf("\nevents.2026 updated: %lld -> %lld bytes (update #%llu)\n",
              static_cast<long long>(update->size_before),
              static_cast<long long>(update->size_after),
              static_cast<unsigned long long>(update->sequence));
  std::printf("re-createable from recipe alone? %s\n",
              updates.IsPristine("events.2026")
                  ? "yes"
                  : "no - replay the update log too");
  Result<UpdateRecord> undone =
      updates.UndoLastUpdate(&catalog, "events.2026");
  CHECK_OK(undone.status());
  std::printf("undo: back to %lld bytes, pristine again: %s\n",
              static_cast<long long>(
                  catalog.GetDataset("events.2026")->size_bytes),
              updates.IsPristine("events.2026") ? "yes" : "no");

  // --- Virtual datasets: three windows over one physical file. ---
  StorageElement se("uchicago", "se0", 10 << 20);
  OverlayManager overlays(&se);
  CHECK_OK(overlays.StoreBase("events.2026.bytes", 1 << 20, 0));
  CHECK_OK(overlays.CreateOverlay("window.early", "events.2026.bytes", 0,
                                  400 << 10));
  CHECK_OK(overlays.CreateOverlay("window.late", "events.2026.bytes",
                                  600 << 10, 424 << 10));
  CHECK_OK(overlays.CreateOverlay("window.all", "events.2026.bytes", 0,
                                  1 << 20));
  std::printf("\n3 overlay windows over one 1 MiB file: storage used "
              "%lld bytes, %lld bytes saved vs copies\n",
              static_cast<long long>(se.used_bytes()),
              static_cast<long long>(overlays.BytesSaved()));
  std::printf("bytes [500k,700k) corrupted -> affected windows:");
  for (const OverlayMapping& m : overlays.OverlaysIntersecting(
           "events.2026.bytes", 500 << 10, 200 << 10)) {
    std::printf(" %s", m.dataset.c_str());
  }
  std::printf("\n");
  CHECK_OK(overlays.ReleaseOverlay("window.early").status());
  CHECK_OK(overlays.ReleaseOverlay("window.late").status());
  Result<int64_t> reclaimed = overlays.ReleaseOverlay("window.all");
  CHECK_OK(reclaimed.status());
  std::printf("last window released: %lld bytes garbage-collected, "
              "storage now %lld\n",
              static_cast<long long>(*reclaimed),
              static_cast<long long>(se.used_bytes()));
  return 0;
}
