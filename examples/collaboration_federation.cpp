// Federation and trust (Sections 4.1-4.2, Figures 2-4): personal,
// group, and collaboration catalogs linked by vdp:// hyperlinks;
// multi-level federated indexes; cross-server provenance chains; and
// signed, quality-asserted entries validated through certificate
// chains rooted at the collaboration authority.
#include <cstdio>

#include "federation/annotation_overlay.h"
#include "federation/fed_provenance.h"
#include "federation/index.h"
#include "federation/promotion.h"
#include "federation/registry.h"
#include "security/signed_entry.h"
#include "vdl/xml.h"

#define CHECK_OK(expr)                                           \
  do {                                                           \
    ::vdg::Status vdg_check_status = (expr);                     \
    if (!vdg_check_status.ok()) {                                \
      std::fprintf(stderr, "FATAL %s\n",                         \
                   vdg_check_status.ToString().c_str());         \
      return 1;                                                  \
    }                                                            \
  } while (false)

int main() {
  using namespace vdg;  // NOLINT: example brevity

  // --- Three virtual data servers (Figure 3's tiers). ---
  VirtualDataCatalog collab("physics.collab.org");
  VirtualDataCatalog group("physics.wisconsin.edu");
  VirtualDataCatalog personal("alice.wisconsin.edu");
  CHECK_OK(collab.Open());
  CHECK_OK(group.Open());
  CHECK_OK(personal.Open());

  CatalogRegistry registry;
  CHECK_OK(registry.Register(&collab));
  CHECK_OK(registry.Register(&group));
  CHECK_OK(registry.Register(&personal));

  // Collaboration: curated raw data + the official calibration.
  CHECK_OK(collab.ImportVdl(R"(
TR calibrate( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/official/bin/calibrate";
}
DS detector.raw : Dataset size="100000000";
DV official-calib->calibrate( out=@{output:"detector.calibrated"},
                              in=@{input:"detector.raw"} );
)"));

  // Group: the Figure 2 scenario — a compound transformation whose
  // stages live on *another* server.
  CHECK_OK(collab.ImportVdl(R"(
TR sim( output out, input in ) {
  argument stdout = ${output:out};
  argument stdin = ${input:in};
  exec = "/official/bin/sim";
}
TR cmp( output out, input in ) {
  argument stdout = ${output:out};
  argument stdin = ${input:in};
  exec = "/official/bin/cmp";
}
)"));
  CHECK_OK(group.ImportVdl(R"(
TR srch( output hits, input data, none class="any" ) {
  argument c = "-c "${none:class};
  argument stdin = ${input:data};
  argument stdout = ${output:hits};
  exec = "/group/bin/srch";
}
DV srch-muon->srch( hits=@{output:"muon.hits"},
                    data=@{input:"vdp://physics.collab.org/detector.calibrated"},
                    class="muon" );
)"));
  // Import the collaboration's sim/cmp definitions into the group
  // catalog — knowledge propagating across the web of servers.
  CHECK_OK(registry.ImportTransformation(
      &group, "vdp://physics.collab.org/sim", &group));
  CHECK_OK(registry.ImportTransformation(
      &group, "vdp://physics.collab.org/cmp", &group));
  std::printf("group catalog now holds %zu transformations "
              "(2 imported, origin-tagged)\n",
              group.Stats().transformations);

  // Personal: Alice's analysis over the group's hits.
  CHECK_OK(personal.ImportVdl(R"(
TR plot( output fig, input hits ) {
  argument stdin = ${input:hits};
  argument stdout = ${output:fig};
  exec = "/home/alice/bin/plot";
}
DV my-plot->plot( fig=@{output:"muon-rate.fig"},
                  hits=@{input:"vdp://physics.wisconsin.edu/muon.hits"} );
)"));

  // --- Cross-server provenance (Figure 3). ---
  FederatedProvenance prov(registry);
  Result<LineageNode> lineage = prov.Lineage(&personal, "muon-rate.fig");
  CHECK_OK(lineage.status());
  std::printf("\ncross-server lineage of muon-rate.fig (%lu hops):\n%s",
              static_cast<unsigned long>(prov.last_hop_count()),
              RenderLineage(*lineage).c_str());

  // --- Multi-level indexes (Figure 4). ---
  FederatedIndex personal_index("alice-personal");
  CHECK_OK(personal_index.AddSource(&personal));
  CHECK_OK(personal_index.Refresh());
  FederatedIndex collab_index("collaboration-wide");
  CHECK_OK(collab_index.AddSource(&collab));
  CHECK_OK(collab_index.AddSource(&group));
  CHECK_OK(collab_index.AddSource(&personal));
  CHECK_OK(collab_index.Refresh());
  std::printf("\nindexes: personal=%zu entries, collaboration=%zu "
              "entries\n",
              personal_index.size(), collab_index.size());
  DatasetQuery everything;
  std::printf("discovery 'muon.hits': personal index %zu hit(s), "
              "collaboration index %zu hit(s)\n",
              personal_index.LookupName("dataset", "muon.hits").size(),
              collab_index.LookupName("dataset", "muon.hits").size());
  (void)everything;

  // --- Signed quality assertions (Section 4.2). ---
  KeyPair root_keys = KeyPair::FromSeed("collab-root-secret");
  KeyPair curator_keys = KeyPair::FromSeed("curator-secret");
  Identity root{"collab-root", root_keys.public_key};
  Identity curator{"data-curator", curator_keys.public_key};
  TrustStore trust;
  trust.AddRoot(root);
  Certificate curator_cert = IssueCertificate(curator, "collab-root",
                                              root_keys);

  Result<Dataset> calibrated = collab.GetDataset("detector.calibrated");
  CHECK_OK(calibrated.status());
  std::string canonical = DatasetToXml(*calibrated);
  SignatureRegistry signatures;
  signatures.Add(SignEntry("dataset", "detector.calibrated", canonical,
                           "approved", curator, curator_keys));
  std::map<std::string, std::vector<Certificate>> chains{
      {"data-curator", {curator_cert}}};
  bool approved = signatures.HasVerifiedAssertion(
      "dataset", "detector.calibrated", "approved", canonical, chains,
      trust);
  std::printf("\n'detector.calibrated' approved by a trusted curator? %s\n",
              approved ? "yes" : "no");

  // Tampering is caught: change the object, the assertion dies.
  CHECK_OK(collab.Annotate("dataset", "detector.calibrated", "edited",
                           AttributeValue(true)));
  Result<Dataset> edited = collab.GetDataset("detector.calibrated");
  CHECK_OK(edited.status());
  bool still_approved = signatures.HasVerifiedAssertion(
      "dataset", "detector.calibrated", "approved", DatasetToXml(*edited),
      chains, trust);
  std::printf("after an edit, assertion still verifies? %s\n",
              still_approved ? "yes (BUG)" : "no - re-approval required");

  // --- Knowledge propagation: Alice's code climbs the tiers. ---
  CHECK_OK(personal.ImportVdl(R"(
TR clever-cut( output out, input in ) {
  argument stdin = ${input:in};
  argument stdout = ${output:out};
  exec = "/home/alice/bin/clever-cut";
}
)"));
  PromotionPipeline pipeline({&personal, &group, &collab}, &trust,
                             &signatures);
  pipeline.RegisterSignerChain("data-curator", {curator_cert});
  Status blocked = pipeline.PromoteTransformation(0, "clever-cut");
  std::printf("\npromotion without endorsement: %s\n",
              blocked.ToString().c_str());
  CHECK_OK(pipeline.PromoteToTop(0, "clever-cut", curator, curator_keys));
  Result<Transformation> promoted = collab.GetTransformation("clever-cut");
  CHECK_OK(promoted.status());
  std::printf("after endorsement, 'clever-cut' reached %s (origin %s, "
              "approved by %s)\n",
              collab.name().c_str(),
              promoted->annotations().GetString("vdg.origin")->c_str(),
              promoted->annotations().GetString("vdg.approved_by")->c_str());

  // --- Personal overlay: Alice's notes on other people's objects. ---
  AnnotationOverlay notes("alice");
  CHECK_OK(notes.Annotate("dataset",
                          "vdp://physics.collab.org/detector.calibrated",
                          "my-verdict", "systematics look off in run 7"));
  Result<AttributeSet> merged = notes.EffectiveAnnotations(
      registry, "dataset", "vdp://physics.collab.org/detector.calibrated");
  CHECK_OK(merged.status());
  std::printf("\nAlice's merged view of detector.calibrated: %s\n",
              merged->ToString().c_str());
  std::printf("the collaboration's record is untouched: %s\n",
              collab.GetDataset("detector.calibrated")
                  ->annotations.ToString()
                  .c_str());
  return 0;
}
