// The paper's first challenge problem (Section 6): a high-energy
// physics collision-event simulation consisting of four program
// executions chained by intermediate datasets — expressed here as a
// *compound transformation* and invoked per batch, so the planner
// expands the pipeline into its DAG automatically. The intermediates
// are multi-modal (files, a Zebra file set, an OODB object closure).
#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "vdl/printer.h"
#include "workload/hep.h"
#include "workload/testbed.h"

#define CHECK_OK(expr)                                           \
  do {                                                           \
    ::vdg::Status vdg_check_status = (expr);                     \
    if (!vdg_check_status.ok()) {                                \
      std::fprintf(stderr, "FATAL %s\n",                         \
                   vdg_check_status.ToString().c_str());         \
      return 1;                                                  \
    }                                                            \
  } while (false)

int main(int argc, char** argv) {
  using namespace vdg;  // NOLINT: example brevity

  workload::HepOptions options;
  options.num_batches = argc > 1 ? std::atoi(argv[1]) : 5;

  VirtualDataCatalog catalog("cms.org");
  CHECK_OK(catalog.Open());
  Result<workload::HepWorkload> workload =
      workload::GenerateHep(&catalog, options);
  CHECK_OK(workload.status());

  // Show the compound pipeline as the VDL the physicists would write.
  Result<Transformation> pipeline = catalog.GetTransformation("cms-pipeline");
  CHECK_OK(pipeline.status());
  std::printf("compound transformation:\n%s\n",
              PrintTransformation(*pipeline).c_str());

  GridSimulator grid(workload::GriphynTestbed(), /*seed=*/7);
  const std::vector<std::string> sites = grid.topology().SiteNames();
  for (size_t b = 0; b < workload->config_datasets.size(); ++b) {
    const std::string& config = workload->config_datasets[b];
    const std::string& site = sites[b % sites.size()];
    CHECK_OK(grid.PlaceFile(site, config, 64 * 1024, /*pinned=*/true));
    Replica r;
    r.dataset = config;
    r.site = site;
    r.size_bytes = 64 * 1024;
    CHECK_OK(catalog.AddReplica(r).status());
  }

  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  WorkflowEngine engine(&grid, &catalog);
  PlannerOptions popts;
  popts.target_site = "uchicago";

  int finished = 0;
  for (const std::string& ntuple : workload->ntuples) {
    Result<ExecutionPlan> plan = planner.Plan(ntuple, popts);
    CHECK_OK(plan.status());
    std::printf("plan for %s: %zu expanded stages at [", ntuple.c_str(),
                plan->nodes.size());
    for (size_t i = 0; i < plan->nodes.size(); ++i) {
      std::printf("%s%s", i ? " " : "", plan->nodes[i].site.c_str());
    }
    std::printf("]\n");
    CHECK_OK(engine.Submit(*plan, [&finished](const WorkflowResult&) {
                     ++finished;
                   })
                 .status());
  }
  SimTime makespan = grid.RunUntilIdle();
  std::printf("\n%d batches complete at t=%.0fs\n", finished, makespan);

  // Per-point lineage: where did batch 0's ntuple come from, exactly?
  ProvenanceTracker tracker(catalog);
  Result<LineageNode> lineage = tracker.Lineage(workload->ntuples[0]);
  CHECK_OK(lineage.status());
  std::printf("\nlineage of %s:\n%s", workload->ntuples[0].c_str(),
              RenderLineage(*lineage).c_str());

  // The calibration-error story, HEP flavour: a bad generator config
  // invalidates everything downstream.
  Result<InvalidationReport> report =
      tracker.Invalidate(workload->config_datasets[0], &catalog);
  CHECK_OK(report.status());
  std::printf("\nbad generator config %s -> recompute %zu datasets via "
              "%zu derivations\n",
              workload->config_datasets[0].c_str(),
              report->affected_datasets.size(),
              report->derivations_to_rerun.size());
  return 0;
}
