// Quickstart: the virtual-data cycle in one file.
//
// 1. Define transformations and derivations in VDL.
// 2. Ask the planner to materialize a dataset that does not exist yet.
// 3. Execute the plan on the simulated grid.
// 4. Ask the catalog where the data came from (provenance) and whether
//    an equivalent computation already ran (dedup).
#include <cstdio>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/testbed.h"

namespace {

constexpr const char* kVdl = R"(
# Two-stage pipeline, exactly in the style of the paper's Appendix A.
TR simulate( output events, input config, none nevents="1000" ) {
  argument n = "-n "${none:nevents};
  argument stdin = ${input:config};
  argument stdout = ${output:events};
  exec = "/opt/science/bin/simulate";
}
TR analyze( output summary, input events ) {
  argument stdin = ${input:events};
  argument stdout = ${output:summary};
  exec = "/opt/science/bin/analyze";
}
DS run1.config : Dataset size="65536" path="/configs/run1";
DV sim-run1->simulate( events=@{output:"run1.events"},
                       config=@{input:"run1.config"}, nevents="5000" );
DV ana-run1->analyze( summary=@{output:"run1.summary"},
                      events=@{input:"run1.events"} );
)";

#define CHECK_OK(expr)                                           \
  do {                                                           \
    ::vdg::Status vdg_check_status = (expr);                     \
    if (!vdg_check_status.ok()) {                                \
      std::fprintf(stderr, "FATAL %s\n",                         \
                   vdg_check_status.ToString().c_str());         \
      return 1;                                                  \
    }                                                            \
  } while (false)

}  // namespace

int main() {
  using namespace vdg;  // NOLINT: example brevity

  // --- Compose: a catalog holding the community's definitions. ---
  VirtualDataCatalog catalog("quickstart.org");
  CHECK_OK(catalog.Open());
  CHECK_OK(catalog.ImportVdl(kVdl));
  CHECK_OK(catalog.Annotate("transformation", "simulate", "sim.runtime_s",
                            AttributeValue(120.0)));
  CHECK_OK(catalog.Annotate("transformation", "analyze", "sim.runtime_s",
                            AttributeValue(30.0)));
  std::printf("catalog holds %zu transformations, %zu derivations, "
              "%zu datasets\n",
              catalog.Stats().transformations, catalog.Stats().derivations,
              catalog.Stats().datasets);

  // --- A small two-site grid; the raw config lives at 'east'. ---
  GridSimulator grid(workload::SmallTestbed(), /*seed=*/1);
  CHECK_OK(grid.PlaceFile("east", "run1.config", 65536, /*pinned=*/true));
  Replica config_replica;
  config_replica.dataset = "run1.config";
  config_replica.site = "east";
  config_replica.size_bytes = 65536;
  CHECK_OK(catalog.AddReplica(config_replica).status());

  // --- Plan: run1.summary is virtual; how do we make it real? ---
  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  PlannerOptions options;
  options.target_site = "east";
  Result<ExecutionPlan> plan = planner.Plan("run1.summary", options);
  CHECK_OK(plan.status());
  std::printf("\n%s\n", plan->ToString().c_str());

  // --- Derive: execute on the grid, recording provenance. ---
  WorkflowEngine engine(&grid, &catalog);
  Result<WorkflowResult> result = engine.Execute(*plan);
  CHECK_OK(result.status());
  std::printf("workflow %s in %.1f simulated seconds "
              "(%zu/%zu nodes succeeded)\n",
              result->succeeded ? "succeeded" : "FAILED",
              result->makespan_s, result->nodes_succeeded,
              result->nodes_total);

  // --- Provenance: where did run1.summary come from? ---
  ProvenanceTracker tracker(catalog);
  Result<LineageNode> lineage = tracker.Lineage("run1.summary");
  CHECK_OK(lineage.status());
  std::printf("\nlineage of run1.summary:\n%s",
              RenderLineage(*lineage).c_str());

  Result<std::vector<Invocation>> trail = tracker.AuditTrail("run1.summary");
  CHECK_OK(trail.status());
  std::printf("\naudit trail (%zu invocations):\n", trail->size());
  for (const Invocation& iv : *trail) {
    std::printf("  t=%-8.1f %-12s at %s/%s (%.1fs)\n", iv.start_time,
                iv.derivation.c_str(), iv.context.site.c_str(),
                iv.context.host.c_str(), iv.duration_s);
  }

  // --- Dedup: has this computation been performed before? ---
  Derivation duplicate("someone-elses-request", "analyze");
  CHECK_OK(duplicate.AddArg(ActualArg::DatasetRef(
      "summary", "run1.summary", ArgDirection::kOut)));
  CHECK_OK(duplicate.AddArg(ActualArg::DatasetRef(
      "events", "run1.events", ArgDirection::kIn)));
  std::printf("\nequivalent computation already performed? %s\n",
              catalog.HasBeenComputed(duplicate) ? "yes - reuse it"
                                                 : "no");

  // --- Re-plan: the planner now sees materialized data. ---
  Result<ExecutionPlan> replan = planner.Plan("run1.summary", options);
  CHECK_OK(replan.status());
  std::printf("second request resolves to: %s\n",
              MaterializationModeToString(replan->mode));
  return 0;
}
