// The paper's astronomy challenge (Section 6, ref [1]): searching for
// galaxy clusters in the Sloan Digital Sky Survey with the MaxBCG
// algorithm, planned and executed across a 4-site / 800-host grid.
//
// The run reproduces the published shape at configurable scale:
// per-field brightest-cluster-galaxy searches fan out wide, per-stripe
// merges join them, and the catalog accumulates the full provenance
// record of the campaign.
#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "workload/sdss.h"
#include "workload/testbed.h"

#define CHECK_OK(expr)                                           \
  do {                                                           \
    ::vdg::Status vdg_check_status = (expr);                     \
    if (!vdg_check_status.ok()) {                                \
      std::fprintf(stderr, "FATAL %s\n",                         \
                   vdg_check_status.ToString().c_str());         \
      return 1;                                                  \
    }                                                            \
  } while (false)

int main(int argc, char** argv) {
  using namespace vdg;  // NOLINT: example brevity

  workload::SdssOptions options;
  options.num_stripes = argc > 1 ? std::atoi(argv[1]) : 8;
  options.fields_per_stripe = argc > 2 ? std::atoi(argv[2]) : 25;

  VirtualDataCatalog catalog("griphyn.org");
  CHECK_OK(catalog.Open());
  Result<workload::SdssWorkload> workload =
      workload::GenerateSdss(&catalog, options);
  CHECK_OK(workload.status());
  std::printf("SDSS MaxBCG campaign: %d stripes x %d fields = %zu "
              "derivations defined\n",
              options.num_stripes, options.fields_per_stripe,
              workload->derivation_count);

  // The survey archive is distributed across the 4-site testbed.
  GridSimulator grid(workload::GriphynTestbed(), /*seed=*/2003);
  grid.set_runtime_jitter(0.1);
  CHECK_OK(workload::StageSdssInputs(*workload, options, &grid, &catalog));
  std::printf("grid: %zu sites, %zu hosts; %zu field images staged\n",
              grid.topology().site_count(), grid.topology().total_hosts(),
              workload->field_datasets.size());

  CostEstimator estimator;
  RequestPlanner planner(catalog, grid.topology(), &grid.rls(), estimator);
  WorkflowEngine engine(&grid, &catalog);
  PlannerOptions popts;
  popts.target_site = "fermilab";  // where the astronomers sit

  // Materialize every stripe's cluster catalog; workflows overlap on
  // the grid like the paper's concurrent DAGs.
  double total_compute = 0;
  size_t total_nodes = 0;
  int finished = 0;
  for (const std::string& clusters : workload->cluster_catalogs) {
    Result<ExecutionPlan> plan = planner.Plan(clusters, popts);
    CHECK_OK(plan.status());
    total_compute += plan->est_compute_s;
    total_nodes += plan->nodes.size();
    CHECK_OK(engine
                 .Submit(*plan,
                         [&finished](const WorkflowResult& result) {
                           (void)result;
                           ++finished;
                         })
                 .status());
  }
  SimTime makespan = grid.RunUntilIdle();
  std::printf("\n%d workflows (%zu derivation nodes) completed in %.0f "
              "simulated seconds\n",
              finished, total_nodes, makespan);
  for (const std::string& site : grid.topology().SiteNames()) {
    Result<SiteStats> stats = grid.StatsFor(site);
    Result<double> util = grid.Utilization(site);
    if (stats.ok() && util.ok()) {
      std::printf("  %-10s jobs=%-5lu utilization=%4.1f%%\n", site.c_str(),
                  static_cast<unsigned long>(stats->jobs_completed),
                  *util * 100);
    }
  }

  // Every cluster catalog is now real data with a full audit trail.
  ProvenanceTracker tracker(catalog);
  const std::string& sample = workload->cluster_catalogs[0];
  Result<std::vector<Invocation>> trail = tracker.AuditTrail(sample);
  CHECK_OK(trail.status());
  std::printf("\naudit trail of %s: %zu invocations across sites\n",
              sample.c_str(), trail->size());

  // The virtual-data payoff: a second community request for the same
  // sky region needs no computation at all.
  Result<ExecutionPlan> again = planner.Plan(sample, popts);
  CHECK_OK(again.status());
  std::printf("re-request of %s resolves to '%s' (zero new jobs)\n",
              sample.c_str(), MaterializationModeToString(again->mode));

  // Simulate the paper's calibration-error scenario on one field.
  const std::string& bad_field = workload->field_datasets[0];
  Result<InvalidationReport> report =
      tracker.Invalidate(bad_field, &catalog);
  CHECK_OK(report.status());
  std::printf("\ncalibration error in %s: %zu derived datasets to "
              "recompute (%zu replicas invalidated)\n",
              bad_field.c_str(), report->affected_datasets.size(),
              report->invalidated_replicas.size());
  Result<ExecutionPlan> repair =
      planner.Plan(workload->cluster_catalogs[0], popts);
  CHECK_OK(repair.status());
  std::printf("repair plan re-runs only %zu of %d derivations\n",
              repair->nodes.size(), options.fields_per_stripe + 1);
  return 0;
}
