// vdg — command-line interface to a persistent Virtual Data Catalog,
// in the spirit of Chimera's vdlt tool: define virtual data in VDL,
// query it, plan and (simulated-)run materializations, and trace
// provenance, all against a journal file on disk.
//
// Usage:
//   vdg init <catalog.vdc>
//   vdg import <catalog.vdc> <file.vdl>
//   vdg list <catalog.vdc> [datasets|transformations|derivations|
//                           replicas|invocations]
//   vdg show <catalog.vdc> <object-name>
//   vdg search <catalog.vdc> <name-prefix> [--materialized|--virtual]
//   vdg lineage <catalog.vdc> <dataset> [--fed]
//   vdg audit <catalog.vdc> <dataset>
//   vdg invalidate <catalog.vdc> <dataset>
//   vdg plan <catalog.vdc> <dataset> [--site <site>] [--dax]
//   vdg run <catalog.vdc> <dataset> [--site <site>]
//   vdg xml <catalog.vdc> <object-name>
//
// plan/run use the built-in two-site testbed (east/west); raw input
// datasets without replica records are assumed staged at the target
// site (this is a simulation tool — see README).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "executor/executor.h"
#include "federation/fed_provenance.h"
#include "federation/registry.h"
#include "planner/dax.h"
#include "planner/planner.h"
#include "provenance/provenance.h"
#include "vdl/printer.h"
#include "vdl/xml.h"
#include "workload/testbed.h"

namespace vdg {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "vdg: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: vdg <command> <catalog.vdc> [args]\n"
      "commands: init, import, list, show, search, lineage, audit,\n"
      "          invalidate, plan, run, xml, dump, compact\n");
  return 2;
}

Result<std::unique_ptr<VirtualDataCatalog>> OpenCatalog(
    const std::string& path) {
  auto catalog = std::make_unique<VirtualDataCatalog>(
      "local", std::make_unique<FileJournal>(path));
  VDG_RETURN_IF_ERROR(catalog->Open());
  return catalog;
}

int CmdInit(const std::string& path) {
  std::ifstream probe(path);
  if (probe.good()) {
    return Fail(Status::AlreadyExists("catalog already exists: " + path));
  }
  Result<std::unique_ptr<VirtualDataCatalog>> catalog = OpenCatalog(path);
  if (!catalog.ok()) return Fail(catalog.status());
  Status preset = (*catalog)->LoadTypePreset();
  if (!preset.ok()) return Fail(preset);
  Status synced = (*catalog)->SyncJournal();
  if (!synced.ok()) return Fail(synced);
  std::printf("initialized catalog %s (%zu preset type names)\n",
              path.c_str(), (*catalog)->TypesSnapshot().size());
  return 0;
}

int CmdImport(VirtualDataCatalog* catalog, const std::string& vdl_path) {
  std::ifstream in(vdl_path);
  if (!in.good()) {
    return Fail(Status::IoError("cannot read " + vdl_path));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  CatalogStats before = catalog->Stats();
  Status imported = catalog->ImportVdl(buffer.str());
  if (!imported.ok()) return Fail(imported);
  Status synced = catalog->SyncJournal();
  if (!synced.ok()) return Fail(synced);
  CatalogStats after = catalog->Stats();
  std::printf("imported: +%zu datasets, +%zu transformations, "
              "+%zu derivations\n",
              after.datasets - before.datasets,
              after.transformations - before.transformations,
              after.derivations - before.derivations);
  return 0;
}

int CmdList(const VirtualDataCatalog& catalog, const std::string& kind) {
  // Generic over NameList (view elements) and vector<string> (replica
  // and invocation ids).
  auto print_all = [](const auto& names, const char* label) {
    std::printf("%s (%zu):\n", label, static_cast<size_t>(names.size()));
    for (std::string_view name : names) {
      std::printf("  %.*s\n", static_cast<int>(name.size()), name.data());
    }
  };
  if (kind.empty() || kind == "datasets") {
    print_all(catalog.AllDatasetNames(), "datasets");
  }
  if (kind.empty() || kind == "transformations") {
    print_all(catalog.AllTransformationNames(), "transformations");
  }
  if (kind.empty() || kind == "derivations") {
    print_all(catalog.AllDerivationNames(), "derivations");
  }
  if (kind == "replicas") print_all(catalog.AllReplicaIds(), "replicas");
  if (kind == "invocations") {
    print_all(catalog.AllInvocationIds(), "invocations");
  }
  return 0;
}

int CmdShow(const VirtualDataCatalog& catalog, const std::string& name) {
  if (Result<Dataset> ds = catalog.GetDataset(name); ds.ok()) {
    std::printf("%s", PrintDatasetDecl(*ds).c_str());
    std::printf("  materialized: %s\n",
                catalog.IsMaterialized(name) ? "yes" : "no (virtual)");
    for (const Replica& replica : catalog.ReplicasOf(name, false)) {
      std::printf("  replica %s at %s/%s (%lld bytes)%s\n",
                  replica.id.c_str(), replica.site.c_str(),
                  replica.storage_element.c_str(),
                  static_cast<long long>(replica.size_bytes),
                  replica.valid ? "" : " [invalid]");
    }
    if (!ds->annotations.empty()) {
      std::printf("  annotations: %s\n", ds->annotations.ToString().c_str());
    }
    return 0;
  }
  if (Result<Transformation> tr = catalog.GetTransformation(name); tr.ok()) {
    std::printf("%s", PrintTransformation(*tr).c_str());
    std::printf("  signature: %s\n", tr->TypeSignature().c_str());
    if (!tr->annotations().empty()) {
      std::printf("  annotations: %s\n",
                  tr->annotations().ToString().c_str());
    }
    return 0;
  }
  if (Result<Derivation> dv = catalog.GetDerivation(name); dv.ok()) {
    std::printf("%s", PrintDerivation(*dv).c_str());
    std::vector<Invocation> invocations = catalog.InvocationsOf(name);
    std::printf("  invocations: %zu\n", invocations.size());
    for (const Invocation& iv : invocations) {
      std::printf("    %s at %s/%s t=%.1f (%.1fs)%s\n", iv.id.c_str(),
                  iv.context.site.c_str(), iv.context.host.c_str(),
                  iv.start_time, iv.duration_s,
                  iv.succeeded ? "" : " FAILED");
    }
    return 0;
  }
  return Fail(Status::NotFound("no object named " + name));
}

// `vdg search <cat> <prefix> [--materialized|--virtual]
//              [--where key=value]...`
int CmdSearch(const VirtualDataCatalog& catalog, const std::string& prefix,
              const std::vector<std::string>& args) {
  DatasetQuery query;
  query.name_prefix = prefix == "*" ? "" : prefix;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--materialized") query.require_materialized = true;
    if (args[i] == "--virtual") query.only_virtual = true;
    if (args[i] == "--where" && i + 1 < args.size()) {
      size_t eq = args[i + 1].find('=');
      if (eq == std::string::npos) {
        return Fail(Status::InvalidArgument("--where expects key=value"));
      }
      query.predicates.push_back(
          {args[i + 1].substr(0, eq), PredicateOp::kEq,
           AttributeValue(args[i + 1].substr(eq + 1))});
      ++i;
    }
  }
  for (std::string_view name : catalog.FindDatasets(query)) {
    std::printf("%.*s%s\n", static_cast<int>(name.size()), name.data(),
                catalog.IsMaterialized(name) ? "" : "  (virtual)");
  }
  return 0;
}

int CmdLineage(VirtualDataCatalog* catalog, const std::string& dataset,
               bool federated) {
  if (federated) {
    // Walk through the service boundary instead of the in-process
    // tracker: same chain, but each link is one compound
    // GetProvenanceStep call and node names are vdp:// qualified.
    CatalogRegistry registry;
    registry.Register(catalog);
    FederatedProvenance fed(registry);
    Result<LineageNode> lineage = fed.Lineage(catalog, dataset);
    if (!lineage.ok()) return Fail(lineage.status());
    std::printf("%s", RenderLineage(*lineage).c_str());
    return 0;
  }
  ProvenanceTracker tracker(*catalog);
  Result<LineageNode> lineage = tracker.Lineage(dataset);
  if (!lineage.ok()) return Fail(lineage.status());
  std::printf("%s", RenderLineage(*lineage).c_str());
  return 0;
}

int CmdAudit(const VirtualDataCatalog& catalog, const std::string& dataset) {
  ProvenanceTracker tracker(catalog);
  Result<std::vector<Invocation>> trail = tracker.AuditTrail(dataset);
  if (!trail.ok()) return Fail(trail.status());
  for (const Invocation& iv : *trail) {
    std::printf("t=%-10.1f %-24s %s/%s (%.1fs)%s\n", iv.start_time,
                iv.derivation.c_str(), iv.context.site.c_str(),
                iv.context.host.c_str(), iv.duration_s,
                iv.succeeded ? "" : " FAILED");
  }
  return 0;
}

int CmdInvalidate(VirtualDataCatalog* catalog, const std::string& dataset) {
  ProvenanceTracker tracker(*catalog);
  Result<InvalidationReport> report = tracker.Invalidate(dataset, catalog);
  if (!report.ok()) return Fail(report.status());
  Status synced = catalog->SyncJournal();
  if (!synced.ok()) return Fail(synced);
  std::printf("invalidated %zu replica(s) across %zu derived dataset(s); "
              "%zu derivation(s) need re-running:\n",
              report->invalidated_replicas.size(),
              report->affected_datasets.size(),
              report->derivations_to_rerun.size());
  for (const std::string& dv : report->derivations_to_rerun) {
    std::printf("  %s\n", dv.c_str());
  }
  return 0;
}

// Shared setup for plan/run: testbed + assumed staging of raw inputs.
struct Session {
  GridSimulator grid{workload::SmallTestbed(), 1};
  CostEstimator estimator;
  std::string site;
};

Status StageRawInputs(Session* session, VirtualDataCatalog* catalog,
                      const std::string& dataset) {
  ProvenanceTracker tracker(*catalog);
  VDG_ASSIGN_OR_RETURN(std::set<std::string> raw,
                       tracker.RawSources(dataset));
  for (const std::string& name : raw) {
    VDG_ASSIGN_OR_RETURN(Dataset ds, catalog->GetDataset(name));
    int64_t bytes = ds.size_bytes > 0 ? ds.size_bytes : 1 << 20;
    std::vector<Replica> replicas = catalog->ReplicasOf(name);
    if (replicas.empty()) {
      std::printf("note: assuming raw input %s staged at %s\n",
                  name.c_str(), session->site.c_str());
      Replica replica;
      replica.dataset = name;
      replica.site = session->site;
      replica.size_bytes = bytes;
      VDG_RETURN_IF_ERROR(catalog->AddReplica(std::move(replica)).status());
      replicas = catalog->ReplicasOf(name);
    }
    for (const Replica& replica : replicas) {
      Status placed =
          session->grid.PlaceFile(replica.site, name, bytes, true);
      if (!placed.ok() && !placed.IsAlreadyExists()) return placed;
    }
  }
  return Status::OK();
}

int CmdPlan(VirtualDataCatalog* catalog, const std::string& dataset,
            const std::string& site, bool emit_dax) {
  Session session;
  session.site = site;
  Status staged = StageRawInputs(&session, catalog, dataset);
  if (!staged.ok()) return Fail(staged);
  RequestPlanner planner(*catalog, session.grid.topology(),
                         &session.grid.rls(), session.estimator);
  PlannerOptions options;
  options.target_site = site;
  Result<ExecutionPlan> plan = planner.Plan(dataset, options);
  if (!plan.ok()) return Fail(plan.status());
  if (emit_dax) {
    std::printf("%s", PlanToDax(*plan).c_str());
  } else {
    std::printf("%s", plan->ToString().c_str());
  }
  return 0;
}

int CmdRun(VirtualDataCatalog* catalog, const std::string& dataset,
           const std::string& site) {
  Session session;
  session.site = site;
  Status staged = StageRawInputs(&session, catalog, dataset);
  if (!staged.ok()) return Fail(staged);
  RequestPlanner planner(*catalog, session.grid.topology(),
                         &session.grid.rls(), session.estimator);
  PlannerOptions options;
  options.target_site = site;
  Result<ExecutionPlan> plan = planner.Plan(dataset, options);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("%s", plan->ToString().c_str());
  WorkflowEngine engine(&session.grid, catalog);
  Result<WorkflowResult> result = engine.Execute(*plan);
  if (!result.ok()) return Fail(result.status());
  Status synced = catalog->SyncJournal();
  if (!synced.ok()) return Fail(synced);
  std::printf("%s: %zu/%zu nodes in %.1f simulated seconds\n",
              result->succeeded ? "succeeded" : "FAILED",
              result->nodes_succeeded, result->nodes_total,
              result->makespan_s);
  return result->succeeded ? 0 : 1;
}

int CmdDump(const VirtualDataCatalog& catalog, bool as_xml) {
  if (as_xml) {
    std::printf("%s", ProgramToXml(catalog.ExportProgram()).c_str());
  } else {
    std::printf("%s", catalog.ExportVdl().c_str());
  }
  return 0;
}

int CmdCompact(VirtualDataCatalog* catalog) {
  Status compacted = catalog->CompactJournal();
  if (!compacted.ok()) return Fail(compacted);
  std::printf("journal compacted to %zu records\n",
              catalog->CurrentStateRecords().size());
  return 0;
}

int CmdXml(const VirtualDataCatalog& catalog, const std::string& name) {
  if (Result<Transformation> tr = catalog.GetTransformation(name); tr.ok()) {
    std::printf("%s", TransformationToXml(*tr).c_str());
    return 0;
  }
  if (Result<Derivation> dv = catalog.GetDerivation(name); dv.ok()) {
    std::printf("%s", DerivationToXml(*dv).c_str());
    return 0;
  }
  if (Result<Dataset> ds = catalog.GetDataset(name); ds.ok()) {
    std::printf("%s", DatasetToXml(*ds).c_str());
    return 0;
  }
  return Fail(Status::NotFound("no object named " + name));
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::string path = argv[2];
  std::vector<std::string> args;
  for (int i = 3; i < argc; ++i) args.emplace_back(argv[i]);

  auto arg_or = [&args](size_t i, const char* fallback) {
    return i < args.size() ? args[i] : std::string(fallback);
  };
  auto flag_value = [&args](const char* flag,
                            const char* fallback) -> std::string {
    for (size_t i = 0; i + 1 < args.size(); ++i) {
      if (args[i] == flag) return args[i + 1];
    }
    return fallback;
  };
  auto has_flag = [&args](const char* flag) {
    for (const std::string& a : args) {
      if (a == flag) return true;
    }
    return false;
  };

  if (command == "init") return CmdInit(path);

  Result<std::unique_ptr<VirtualDataCatalog>> catalog = OpenCatalog(path);
  if (!catalog.ok()) return Fail(catalog.status());
  VirtualDataCatalog& cat = **catalog;

  if (command == "import") {
    if (args.empty()) return Usage();
    return CmdImport(&cat, args[0]);
  }
  if (command == "list") return CmdList(cat, arg_or(0, ""));
  if (command == "show") {
    if (args.empty()) return Usage();
    return CmdShow(cat, args[0]);
  }
  if (command == "search") {
    if (args.empty()) return Usage();
    return CmdSearch(cat, args[0],
                     std::vector<std::string>(args.begin() + 1, args.end()));
  }
  if (command == "lineage") {
    if (args.empty()) return Usage();
    return CmdLineage(&cat, args[0], has_flag("--fed"));
  }
  if (command == "audit") {
    if (args.empty()) return Usage();
    return CmdAudit(cat, args[0]);
  }
  if (command == "invalidate") {
    if (args.empty()) return Usage();
    return CmdInvalidate(&cat, args[0]);
  }
  if (command == "plan") {
    if (args.empty()) return Usage();
    return CmdPlan(&cat, args[0], flag_value("--site", "east"),
                   has_flag("--dax"));
  }
  if (command == "run") {
    if (args.empty()) return Usage();
    return CmdRun(&cat, args[0], flag_value("--site", "east"));
  }
  if (command == "xml") {
    if (args.empty()) return Usage();
    return CmdXml(cat, args[0]);
  }
  if (command == "dump") return CmdDump(cat, has_flag("--xml"));
  if (command == "compact") return CmdCompact(&cat);
  return Usage();
}

}  // namespace
}  // namespace vdg

int main(int argc, char** argv) { return vdg::Main(argc, argv); }
