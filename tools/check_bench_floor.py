#!/usr/bin/env python3
"""Asserts a benchmark's aggregate items/s rate meets a floor.

Usage: check_bench_floor.py <bench.json> <benchmark-name> <floor-items-per-sec>

Reads Google Benchmark JSON output and checks the named benchmark's
`agg_items_per_sec` counter (falling back to `items_per_second`)
against the floor. Exits nonzero, printing every rate it saw, when the
benchmark is missing or below the floor. CI uses this to keep the
compressed discovery-index path honest: the floor is a multiple of the
pre-compression seed rate, loose enough for shared runners yet tight
enough to catch the index degrading to a scan.
"""

import json
import sys


def rate_of(bench):
    counter = bench.get("agg_items_per_sec")
    if counter is not None:
        return counter
    return bench.get("items_per_second", 0.0)


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__.strip())
    path, name, floor = sys.argv[1], sys.argv[2], float(sys.argv[3])
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rates[bench.get("name", "?")] = rate_of(bench)
    for bench_name, rate in sorted(rates.items()):
        print(f"  {bench_name}: {rate:,.0f} items/s")
    rate = rates.get(name)
    if rate is None:
        sys.exit(f"benchmark {name} not found in {path}")
    if rate < floor:
        sys.exit(f"{name} rate {rate:,.0f} items/s is below floor {floor:,.0f}")
    print(f"{name} meets floor {floor:,.0f} items/s")


if __name__ == "__main__":
    main()
