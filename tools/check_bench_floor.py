#!/usr/bin/env python3
"""Asserts a benchmark's rate (or a named counter) meets a floor.

Usage: check_bench_floor.py [--ceiling] <bench.json> <benchmark-name> \
           <bound> [counter]

Reads Google Benchmark JSON output and checks the named benchmark's
`agg_items_per_sec` counter (falling back to `items_per_second`)
against the floor. Exits nonzero, printing every rate it saw, when the
benchmark is missing or below the floor. CI uses this to keep the
compressed discovery-index path honest: the floor is a multiple of the
pre-compression seed rate, loose enough for shared runners yet tight
enough to catch the index degrading to a scan.

With the optional fourth argument the named counter is gated instead of
the items/s rate — e.g. `availability 0.999` holds the wire chaos
bench (bench_wire_faults) to its client-visible success-rate floor.

With --ceiling the bound is an upper limit instead: the check fails
when the value EXCEEDS it. Latency counters gate this way — e.g.
`--ceiling ... BM_Traffic/8 <p99-of-1-shard> p99_us` holds sharded
tail latency to the single-shard baseline.
"""

import json
import sys


def rate_of(bench, counter=None):
    if counter is not None:
        return bench.get(counter)
    agg = bench.get("agg_items_per_sec")
    if agg is not None:
        return agg
    return bench.get("items_per_second", 0.0)


def fmt(value):
    # Success-rate style counters need decimals; throughputs do not.
    return f"{value:.4f}" if abs(value) < 10 else f"{value:,.0f}"


def main():
    argv = list(sys.argv[1:])
    ceiling = "--ceiling" in argv
    if ceiling:
        argv.remove("--ceiling")
    if len(argv) not in (3, 4):
        sys.exit(__doc__.strip())
    path, name, bound = argv[0], argv[1], float(argv[2])
    counter = argv[3] if len(argv) == 4 else None
    unit = counter if counter else "items/s"
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rates[bench.get("name", "?")] = rate_of(bench, counter)
    for bench_name, rate in sorted(rates.items()):
        if rate is not None:
            print(f"  {bench_name}: {fmt(rate)} {unit}")
    rate = rates.get(name)
    if rate is None:
        sys.exit(f"benchmark {name} has no {unit} value in {path}")
    if ceiling:
        if rate > bound:
            sys.exit(f"{name} {unit} {fmt(rate)} exceeds ceiling {fmt(bound)}")
        print(f"{name} meets ceiling {fmt(bound)} {unit}")
        return
    if rate < bound:
        sys.exit(f"{name} {unit} {fmt(rate)} is below floor {fmt(bound)}")
    print(f"{name} meets floor {fmt(bound)} {unit}")


if __name__ == "__main__":
    main()
