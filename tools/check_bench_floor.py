#!/usr/bin/env python3
"""Asserts a benchmark's rate (or a named counter) meets a floor.

Usage: check_bench_floor.py <bench.json> <benchmark-name> <floor> [counter]

Reads Google Benchmark JSON output and checks the named benchmark's
`agg_items_per_sec` counter (falling back to `items_per_second`)
against the floor. Exits nonzero, printing every rate it saw, when the
benchmark is missing or below the floor. CI uses this to keep the
compressed discovery-index path honest: the floor is a multiple of the
pre-compression seed rate, loose enough for shared runners yet tight
enough to catch the index degrading to a scan.

With the optional fourth argument the named counter is gated instead of
the items/s rate — e.g. `availability 0.999` holds the wire chaos
bench (bench_wire_faults) to its client-visible success-rate floor.
"""

import json
import sys


def rate_of(bench, counter=None):
    if counter is not None:
        return bench.get(counter)
    agg = bench.get("agg_items_per_sec")
    if agg is not None:
        return agg
    return bench.get("items_per_second", 0.0)


def fmt(value):
    # Success-rate style counters need decimals; throughputs do not.
    return f"{value:.4f}" if abs(value) < 10 else f"{value:,.0f}"


def main():
    if len(sys.argv) not in (4, 5):
        sys.exit(__doc__.strip())
    path, name, floor = sys.argv[1], sys.argv[2], float(sys.argv[3])
    counter = sys.argv[4] if len(sys.argv) == 5 else None
    unit = counter if counter else "items/s"
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rates[bench.get("name", "?")] = rate_of(bench, counter)
    for bench_name, rate in sorted(rates.items()):
        if rate is not None:
            print(f"  {bench_name}: {fmt(rate)} {unit}")
    rate = rates.get(name)
    if rate is None:
        sys.exit(f"benchmark {name} has no {unit} value in {path}")
    if rate < floor:
        sys.exit(f"{name} {unit} {fmt(rate)} is below floor {fmt(floor)}")
    print(f"{name} meets floor {fmt(floor)} {unit}")


if __name__ == "__main__":
    main()
