#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs the discovery-engine
# benchmark suite (FIG1 discovery paths + FIG4 index refresh), merging
# the results into BENCH_discovery.json at the repo root.
#
# Usage: tools/run_bench.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench}"
OUT_JSON="$REPO_ROOT/BENCH_discovery.json"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_fig1_schema_ops bench_fig4_federated_index >/dev/null

FIG1_FILTER='BM_AttributeDiscovery|BM_TypeDiscovery|BM_MaterializedDiscovery|BM_DerivationDiscoveryByInput'
FIG4_FILTER='BM_IndexQuery|BM_DirectScan|BM_IndexRefresh|BM_DeltaRefresh|BM_FullRebuild'

FIG1_OUT="$BUILD_DIR/bench_fig1_discovery.json"
FIG4_OUT="$BUILD_DIR/bench_fig4_refresh.json"

"$BUILD_DIR/bench/bench_fig1_schema_ops" \
  --benchmark_filter="$FIG1_FILTER" \
  --benchmark_out="$FIG1_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

"$BUILD_DIR/bench/bench_fig4_federated_index" \
  --benchmark_filter="$FIG4_FILTER" \
  --benchmark_out="$FIG4_OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2

# Merge the two result files and compute the headline delta-vs-full
# refresh speedup. Python (stdlib only) ships with the toolchain.
python3 - "$FIG1_OUT" "$FIG4_OUT" "$OUT_JSON" <<'PYEOF'
import json
import sys

fig1_path, fig4_path, out_path = sys.argv[1:4]
with open(fig1_path) as f:
    fig1 = json.load(f)
with open(fig4_path) as f:
    fig4 = json.load(f)

merged = {
    "context": fig1.get("context", {}),
    "benchmarks": fig1.get("benchmarks", []) + fig4.get("benchmarks", []),
}

# Headline number: delta refresh vs full rebuild at matching churn.
times = {b["name"]: b["real_time"] for b in merged["benchmarks"]}
speedups = {}
for name, t in times.items():
    if not name.startswith("BM_DeltaRefresh/"):
        continue
    churn = name.split("/")[1]
    full = times.get("BM_FullRebuild/" + churn)
    if full and t > 0:
        speedups["changed_entries_" + churn] = round(full / t, 1)
merged["delta_refresh_speedup"] = speedups

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

print("wrote", out_path)
for k, v in sorted(speedups.items()):
    print(f"  delta vs full rebuild, {k}: {v}x")
PYEOF
